// Package simulate is a deterministic discrete-event latency model for
// PP-Stream pipelines. The reproduction testbed is a single-CPU host, so
// wall-clock multi-core speedups cannot be observed directly; instead,
// the latency experiments profile every merged primitive layer's real
// single-thread execution time (actual Paillier arithmetic on actual
// models) and predict deployment latency with the paper's own cost
// model:
//
//	service_i = T_i / y_i + comm_i · c_elem
//
// where T_i is the profiled stage time, y_i the allocated thread count
// (Section IV-C), comm_i the number of ciphertext elements the stage
// copies to its threads (Section IV-D: the whole tensor per thread
// without partitioning, per-thread sub-tensors with it), and c_elem the
// measured per-element copy cost. Requests flow through the stages with
// the classic pipeline recurrence, so pipelining, bottlenecks, and
// diminishing returns all emerge from the schedule.
//
// DESIGN.md documents this substitution; on a real multi-core cluster
// the same experiments can run in wall-clock mode via the streaming
// engine (core.Engine.InferStream).
package simulate

import (
	"errors"
	"math/big"
	"sync"
	"time"
)

// Stage models one pipeline stage.
type Stage struct {
	// Name identifies the stage.
	Name string
	// Base is the profiled single-thread execution time per request, in
	// seconds.
	Base float64
	// Threads is the allocated thread count y_i (≥ 1).
	Threads int
	// CommElems is the number of ciphertext elements the stage copies
	// into thread-local views per request (0 if not modelled).
	CommElems int
}

// Service returns the stage's per-request service time given the
// per-element copy cost.
func (s Stage) Service(perElem float64) float64 {
	threads := s.Threads
	if threads < 1 {
		threads = 1
	}
	return s.Base/float64(threads) + float64(s.CommElems)*perElem
}

// Result summarizes a simulated run.
type Result struct {
	// First is the end-to-end latency of the first request.
	First time.Duration
	// Makespan is the completion time of the last request.
	Makespan time.Duration
	// Effective is Makespan / Requests: the steady-state per-request
	// latency the paper's streaming experiments report.
	Effective time.Duration
	// Bottleneck is the largest stage service time.
	Bottleneck time.Duration
}

// Pipeline simulates requests flowing through the stages: stage i starts
// request r when both the previous stage has finished r and this stage
// has finished r−1.
func Pipeline(stages []Stage, requests int, perElem float64) (*Result, error) {
	if len(stages) == 0 {
		return nil, errors.New("simulate: no stages")
	}
	if requests <= 0 {
		return nil, errors.New("simulate: need at least one request")
	}
	service := make([]float64, len(stages))
	bottleneck := 0.0
	for i, s := range stages {
		service[i] = s.Service(perElem)
		if service[i] > bottleneck {
			bottleneck = service[i]
		}
	}
	done := make([]float64, len(stages)) // completion time of previous request per stage
	var first, last float64
	for r := 0; r < requests; r++ {
		prev := 0.0 // completion of this request at the previous stage
		for i := range stages {
			start := prev
			if done[i] > start {
				start = done[i]
			}
			prev = start + service[i]
			done[i] = prev
		}
		if r == 0 {
			first = prev
		}
		last = prev
	}
	return &Result{
		First:      seconds(first),
		Makespan:   seconds(last),
		Effective:  seconds(last / float64(requests)),
		Bottleneck: seconds(bottleneck),
	}, nil
}

// Sequential returns the centralized (no pipelining, single thread per
// stage at the allocated counts) per-request latency: the sum of
// service times.
func Sequential(stages []Stage, perElem float64) time.Duration {
	var sum float64
	for _, s := range stages {
		sum += s.Service(perElem)
	}
	return seconds(sum)
}

func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

var (
	costMu    sync.Mutex
	costCache = map[int]float64{}
)

// PerElementTransferCost measures (once per width) the real cost of
// serializing and deserializing one ciphertext-sized big integer of the
// given bit width — the constant behind the communication term. The
// width should be 2× the key size (ciphertexts live mod n²). In the
// deployed system this is the stage dispatcher's per-element
// serialization work when feeding worker threads/servers, which is what
// tensor partitioning reduces.
func PerElementTransferCost(bits int) float64 {
	if bits < 256 {
		bits = 256
	}
	costMu.Lock()
	defer costMu.Unlock()
	if c, ok := costCache[bits]; ok {
		return c
	}
	src := new(big.Int).Lsh(big.NewInt(1), uint(bits-1))
	src.Sub(src, big.NewInt(12345))
	// Minimum over several trials: the standard noise-robust cost
	// estimator — transient scheduler interference only ever inflates a
	// trial, never deflates it.
	const trials = 5
	const n = 2000
	best := 0.0
	var sink int
	for t := 0; t < trials; t++ {
		start := time.Now()
		for i := 0; i < n; i++ {
			b := src.Bytes()
			round := new(big.Int).SetBytes(b)
			sink += round.BitLen()
		}
		elapsed := time.Since(start).Seconds()
		if t == 0 || elapsed < best {
			best = elapsed
		}
	}
	if sink == 0 {
		best = 0 // unreachable; keeps the loop from being elided
	}
	c := best / n
	costCache[bits] = c
	return c
}
