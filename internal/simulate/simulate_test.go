package simulate

import (
	"testing"
	"time"
)

func TestStageService(t *testing.T) {
	s := Stage{Base: 1.0, Threads: 4}
	if got := s.Service(0); got != 0.25 {
		t.Errorf("Service = %v, want 0.25", got)
	}
	// zero threads defends to 1
	s0 := Stage{Base: 1.0}
	if got := s0.Service(0); got != 1.0 {
		t.Errorf("zero-thread Service = %v", got)
	}
	// communication term
	sc := Stage{Base: 1.0, Threads: 2, CommElems: 1000}
	if got := sc.Service(0.001); got != 0.5+1.0 {
		t.Errorf("comm Service = %v, want 1.5", got)
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := Pipeline(nil, 1, 0); err == nil {
		t.Error("empty stages accepted")
	}
	if _, err := Pipeline([]Stage{{Base: 1, Threads: 1}}, 0, 0); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestPipelineSingleRequestIsSum(t *testing.T) {
	stages := []Stage{
		{Base: 1, Threads: 1},
		{Base: 2, Threads: 1},
		{Base: 0.5, Threads: 1},
	}
	res, err := Pipeline(stages, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 3500 * time.Millisecond
	if res.First != want || res.Makespan != want || res.Effective != want {
		t.Errorf("single-request result %+v, want all %v", res, want)
	}
	if res.Bottleneck != 2*time.Second {
		t.Errorf("bottleneck %v", res.Bottleneck)
	}
	if got := Sequential(stages, 0); got != want {
		t.Errorf("Sequential = %v", got)
	}
}

func TestPipelineSteadyStateIsBottleneck(t *testing.T) {
	stages := []Stage{
		{Base: 1, Threads: 1},
		{Base: 3, Threads: 1}, // bottleneck
		{Base: 1, Threads: 1},
	}
	const requests = 100
	res, err := Pipeline(stages, requests, 0)
	if err != nil {
		t.Fatal(err)
	}
	// makespan ≈ fill (5) + (requests−1)·bottleneck (3)
	want := 5.0 + 99*3
	got := res.Makespan.Seconds()
	if got < want-1e-6 || got > want+1e-6 {
		t.Errorf("makespan %v, want %v", got, want)
	}
	// effective latency approaches the bottleneck
	if res.Effective.Seconds() > 3.1 {
		t.Errorf("effective %v, want ≈ bottleneck 3s", res.Effective)
	}
	if res.First.Seconds() != 5 {
		t.Errorf("first %v, want 5s", res.First)
	}
}

func TestThreadsReduceLatency(t *testing.T) {
	mk := func(threads int) []Stage {
		return []Stage{
			{Base: 4, Threads: threads},
			{Base: 2, Threads: threads},
		}
	}
	one, _ := Pipeline(mk(1), 10, 0)
	four, _ := Pipeline(mk(4), 10, 0)
	if four.Effective*3 >= one.Effective {
		t.Errorf("4 threads %v not ≥3× faster than 1 thread %v", four.Effective, one.Effective)
	}
}

func TestCommTermCreatesPartitioningGain(t *testing.T) {
	// Fig 9's mechanism: at high thread counts compute shrinks but the
	// no-partitioning communication term stays, so partitioning wins
	// more with more threads.
	perElem := 1e-6
	withPart := []Stage{{Base: 1, Threads: 16, CommElems: 1_000}}
	withoutPart := []Stage{{Base: 1, Threads: 16, CommElems: 500_000}}
	a, _ := Pipeline(withPart, 10, perElem)
	b, _ := Pipeline(withoutPart, 10, perElem)
	if b.Effective <= a.Effective {
		t.Errorf("no-partitioning %v should exceed partitioning %v", b.Effective, a.Effective)
	}
}

func TestPerElementTransferCost(t *testing.T) {
	c1 := PerElementTransferCost(512)
	if c1 <= 0 {
		t.Fatalf("cost %v", c1)
	}
	// cached: same value back
	if c2 := PerElementTransferCost(512); c2 != c1 {
		t.Errorf("cache miss: %v vs %v", c1, c2)
	}
	// bigger integers cost at least as much (allow small jitter)
	c4 := PerElementTransferCost(4096)
	if c4 < c1/2 {
		t.Errorf("4096-bit cost %v suspiciously below 512-bit %v", c4, c1)
	}
	// sub-minimum widths clamp
	if PerElementTransferCost(1) != PerElementTransferCost(256) {
		t.Error("clamping failed")
	}
}
