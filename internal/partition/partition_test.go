package partition

import (
	"crypto/rand"
	mathrand "math/rand"
	"sync"
	"testing"
	"testing/quick"

	"ppstream/internal/nn"
	"ppstream/internal/paillier"
	"ppstream/internal/qnn"
	"ppstream/internal/tensor"
)

var (
	keyOnce sync.Once
	testKey *paillier.PrivateKey
)

func key(t testing.TB) *paillier.PrivateKey {
	keyOnce.Do(func() {
		k, err := paillier.GenerateKey(rand.Reader, 256)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	})
	return testKey
}

func TestSplitOutputs(t *testing.T) {
	ranges := SplitOutputs(10, 3)
	if len(ranges) != 3 {
		t.Fatalf("got %d ranges", len(ranges))
	}
	want := []Range{{0, 4}, {4, 7}, {7, 10}}
	for i, r := range want {
		if ranges[i] != r {
			t.Errorf("range %d = %+v, want %+v", i, ranges[i], r)
		}
	}
	// more threads than elements: capped
	if got := SplitOutputs(2, 8); len(got) != 2 {
		t.Errorf("overcommitted split gave %d ranges", len(got))
	}
	if SplitOutputs(0, 3) != nil {
		t.Error("empty output should give nil")
	}
	if SplitOutputs(3, 0) != nil {
		t.Error("zero threads should give nil")
	}
}

// Property: SplitOutputs covers [0,n) exactly once, in order.
func TestSplitOutputsProperty(t *testing.T) {
	f := func(nRaw, tRaw uint8) bool {
		n, th := int(nRaw%100)+1, int(tRaw%16)+1
		ranges := SplitOutputs(n, th)
		next := 0
		for _, r := range ranges {
			if r.Lo != next || r.Hi <= r.Lo {
				return false
			}
			next = r.Hi
		}
		return next == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFigure5Partitioning reproduces the paper's Figure 5(b): a 3×3 input
// with a 2×2 filter and two threads — each thread produces 2 of the 4
// output elements and receives only 6 of the 9 input elements.
func TestFigure5Partitioning(t *testing.T) {
	p := tensor.ConvParams{InC: 1, InH: 3, InW: 3, OutC: 1, KH: 2, KW: 2, Stride: 1}
	r := mathrand.New(mathrand.NewSource(1))
	conv, err := nn.NewConv("c", p, r)
	if err != nil {
		t.Fatal(err)
	}
	op, err := qnn.Quantize(conv, 100)
	if err != nil {
		t.Fatal(err)
	}
	tasks, err := PlanOp(op.(qnn.ElementOp), tensor.Shape{1, 3, 3}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("%d tasks", len(tasks))
	}
	for i, task := range tasks {
		if task.Len() != 2 {
			t.Errorf("thread %d produces %d elements, want 2", i, task.Len())
		}
		if len(task.Inputs) != 6 {
			t.Errorf("thread %d receives %d input elements, want 6 (Figure 5b)", i, len(task.Inputs))
		}
	}
}

func TestPlanOpFCNeedsWholeInput(t *testing.T) {
	fc := nn.NewFC("fc", 6, 4, mathrand.New(mathrand.NewSource(2)))
	op, _ := qnn.Quantize(fc, 100)
	tasks, err := PlanOp(op.(qnn.ElementOp), tensor.Shape{6}, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if task.Inputs != nil {
			t.Error("FC thread should require the whole input (output partitioning only)")
		}
	}
}

// TestExecuteMatchesReference: partitioned execution (both modes) equals
// the unpartitioned qnn path exactly.
func TestExecuteMatchesReference(t *testing.T) {
	k := key(t)
	const F = 100
	p := tensor.ConvParams{InC: 1, InH: 4, InW: 4, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv, err := nn.NewConv("c", p, mathrand.New(mathrand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	op, _ := qnn.Quantize(conv, F)
	x := tensor.Zeros(1, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = float64(i%7)/7 - 0.5
	}
	scaled := qnn.ScaleInput(x, F)
	ct, err := paillier.EncryptTensor(&k.PublicKey, rand.Reader, scaled, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := op.Apply(paillier.NewEvaluator(&k.PublicKey), ct, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	refDec, err := paillier.DecryptTensorBig(k, ref, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, inputPart := range []bool{false, true} {
		out, stats, err := Execute(paillier.NewEvaluator(&k.PublicKey), op.(qnn.ElementOp), ct, 1, 3, inputPart)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := paillier.DecryptTensorBig(k, out, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range refDec.Data() {
			if refDec.AtFlat(i).Cmp(dec.AtFlat(i)) != 0 {
				t.Fatalf("inputPart=%v element %d differs", inputPart, i)
			}
		}
		if inputPart {
			if stats.ElementsSent >= stats.ElementsTotal {
				t.Errorf("input partitioning saved nothing: %+v", stats)
			}
			if stats.Saved() <= 0 {
				t.Errorf("Saved() = %v", stats.Saved())
			}
		} else {
			if stats.ElementsSent != stats.ElementsTotal {
				t.Errorf("baseline should send everything: %+v", stats)
			}
		}
	}
}

func TestExecuteStageSequence(t *testing.T) {
	k := key(t)
	const F = 100
	r := mathrand.New(mathrand.NewSource(6))
	p := tensor.ConvParams{InC: 1, InH: 4, InW: 4, OutC: 2, KH: 2, KW: 2, Stride: 2}
	conv, err := nn.NewConv("c", p, r)
	if err != nil {
		t.Fatal(err)
	}
	fl := nn.NewFlatten("fl")
	fc := nn.NewFC("fc", 8, 3, r)
	stage := &nn.PrimitiveLayer{Kind: nn.Linear, Layers: []nn.Layer{conv, fl, fc}}
	ops, err := qnn.QuantizeStage(stage, F)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Zeros(1, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = r.Float64() - 0.5
	}
	scaled := qnn.ScaleInput(x, F)
	ct, err := paillier.EncryptTensor(&k.PublicKey, rand.Reader, scaled, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, exp, stats, err := ExecuteStage(paillier.NewEvaluator(&k.PublicKey), ops, ct, 1, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	if exp != 3 {
		t.Errorf("exponent %d, want 3", exp)
	}
	if len(stats) != 3 {
		t.Errorf("stats for %d ops, want 3", len(stats))
	}
	// compare against the reference path
	refOut, refExp, err := qnn.ApplyStage(paillier.NewEvaluator(&k.PublicKey), ops, ct, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if refExp != exp {
		t.Fatalf("exp mismatch %d vs %d", refExp, exp)
	}
	refDec, _ := paillier.DecryptTensorBig(k, refOut, 4)
	dec, _ := paillier.DecryptTensorBig(k, out, 4)
	for i := range refDec.Data() {
		if refDec.AtFlat(i).Cmp(dec.AtFlat(i)) != 0 {
			t.Fatalf("element %d differs from reference", i)
		}
	}
}

func TestCommStatsSaved(t *testing.T) {
	s := CommStats{ElementsSent: 25, ElementsTotal: 100}
	if s.Saved() != 0.75 {
		t.Errorf("Saved = %v", s.Saved())
	}
	if (CommStats{}).Saved() != 0 {
		t.Error("empty stats should save 0")
	}
}
