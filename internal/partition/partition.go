// Package partition implements PP-Stream's tensor partitioning
// (paper Section IV-D). A stage with y threads evenly splits the output
// tensor's elements across threads (output tensor partitioning); for
// convolution operations each thread additionally receives only the
// union of receptive fields its output elements read — a sub-tensor of
// the input — instead of the whole tensor (input tensor partitioning),
// cutting the stage-to-thread communication volume.
//
// Execute materializes each thread's input view as an actual copy of the
// ciphertexts it receives, so the communication saving is physically
// exercised (copied bytes), not just accounted: with partitioning off,
// every thread copies the entire input tensor, as in the paper's
// baseline where "the whole input tensor is fed to each thread".
package partition

import (
	"fmt"

	"sort"
	"sync"

	"ppstream/internal/paillier"
	"ppstream/internal/qnn"
	"ppstream/internal/tensor"
)

// Range is a half-open output element interval assigned to one thread.
type Range struct {
	Lo, Hi int
}

// Len returns the number of elements in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// SplitOutputs evenly partitions n output elements over t threads; the
// first n%t threads receive one extra element. Empty ranges are omitted,
// so at most min(n,t) tasks return.
func SplitOutputs(n, t int) []Range {
	if n <= 0 || t <= 0 {
		return nil
	}
	if t > n {
		t = n
	}
	base, extra := n/t, n%t
	out := make([]Range, 0, t)
	lo := 0
	for i := 0; i < t; i++ {
		size := base
		if i < extra {
			size++
		}
		if size == 0 {
			continue
		}
		out = append(out, Range{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// Task describes one thread's work for an op: its output range plus the
// input offsets it must receive (nil = the whole input tensor).
type Task struct {
	Range
	// Inputs is the sorted set of flat input offsets this thread needs;
	// nil means the entire input is required.
	Inputs []int
}

// PlanOp computes the per-thread tasks for an op, with or without input
// tensor partitioning. With partitioning enabled, the task's Inputs is
// the union of the op's per-element needs over the thread's range; ops
// that read everything (fully-connected) keep Inputs nil — they support
// only output partitioning, as the paper notes.
func PlanOp(op qnn.ElementOp, in tensor.Shape, threads int, inputPartition bool) ([]Task, error) {
	n, err := op.OutSize(in)
	if err != nil {
		return nil, err
	}
	ranges := SplitOutputs(n, threads)
	tasks := make([]Task, len(ranges))
	for i, r := range ranges {
		tasks[i] = Task{Range: r}
		if !inputPartition {
			continue
		}
		needAll := false
		seen := map[int]bool{}
		for idx := r.Lo; idx < r.Hi && !needAll; idx++ {
			needs := op.InputNeeds(in, idx)
			if needs == nil {
				needAll = true
				break
			}
			for _, off := range needs {
				seen[off] = true
			}
		}
		if needAll {
			continue // whole input
		}
		inputs := make([]int, 0, len(seen))
		for off := range seen {
			inputs = append(inputs, off)
		}
		sort.Ints(inputs)
		tasks[i].Inputs = inputs
	}
	return tasks, nil
}

// CommStats accounts for the stage-to-thread communication of one op
// execution, in ciphertext elements.
type CommStats struct {
	// ElementsSent counts ciphertexts copied into thread-local views.
	ElementsSent int
	// ElementsTotal is threads × input size: what the no-partitioning
	// baseline sends.
	ElementsTotal int
	Threads       int
}

// Saved returns the fraction of communication avoided.
func (c CommStats) Saved() float64 {
	if c.ElementsTotal == 0 {
		return 0
	}
	return 1 - float64(c.ElementsSent)/float64(c.ElementsTotal)
}

// Execute runs one quantized op over threads with the given partitioning
// mode and returns the output ciphertext tensor at exponent
// inExp+op.ScaleSteps(), plus the communication accounting. Each thread
// receives a physically copied view of the input elements its task
// needs.
func Execute(ev *paillier.Evaluator, op qnn.ElementOp, x *paillier.CipherTensor, inExp, threads int, inputPartition bool) (*paillier.CipherTensor, CommStats, error) {
	in := x.Shape()
	tasks, err := PlanOp(op, in, threads, inputPartition)
	if err != nil {
		return nil, CommStats{}, err
	}
	outShape, err := op.OutShape(in)
	if err != nil {
		return nil, CommStats{}, err
	}
	out := tensor.New[*paillier.Ciphertext](outShape...)
	od := out.Data()
	xd := x.Flatten().Data()

	stats := CommStats{Threads: len(tasks), ElementsTotal: len(tasks) * len(xd)}
	var wg sync.WaitGroup
	errCh := make(chan error, len(tasks))
	var statsMu sync.Mutex
	for _, task := range tasks {
		wg.Add(1)
		go func(task Task) {
			defer wg.Done()
			// Materialize the thread's input view: copy the ciphertext
			// values it receives (the "communication" of Section IV-D).
			var get func(int) *paillier.Ciphertext
			var copied int
			if task.Inputs == nil {
				view := make([]*paillier.Ciphertext, len(xd))
				for i, c := range xd {
					view[i] = copyCiphertext(c)
				}
				copied = len(xd)
				get = func(i int) *paillier.Ciphertext { return view[i] }
			} else {
				view := make(map[int]*paillier.Ciphertext, len(task.Inputs))
				for _, off := range task.Inputs {
					view[off] = copyCiphertext(xd[off])
				}
				copied = len(task.Inputs)
				get = func(i int) *paillier.Ciphertext {
					c, ok := view[i]
					if !ok {
						panic(fmt.Sprintf("partition: thread read unplanned input offset %d", i))
					}
					return c
				}
			}
			statsMu.Lock()
			stats.ElementsSent += copied
			statsMu.Unlock()
			for idx := task.Lo; idx < task.Hi; idx++ {
				ct, err := op.ComputeElement(ev, get, in, idx, inExp)
				if err != nil {
					errCh <- fmt.Errorf("partition: op %s element %d: %w", op.Name(), idx, err)
					return
				}
				od[idx] = ct
			}
		}(task)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// ExecuteStage runs a sequence of ops through Execute, threading the
// scale exponent and summing communication stats.
func ExecuteStage(ev *paillier.Evaluator, ops []qnn.Op, x *paillier.CipherTensor, inExp, threads int, inputPartition bool) (*paillier.CipherTensor, int, []CommStats, error) {
	cur, exp := x, inExp
	stats := make([]CommStats, 0, len(ops))
	for _, op := range ops {
		eop, ok := op.(qnn.ElementOp)
		if !ok {
			return nil, 0, nil, fmt.Errorf("partition: op %s does not support element-wise execution", op.Name())
		}
		out, st, err := Execute(ev, eop, cur, exp, threads, inputPartition)
		if err != nil {
			return nil, 0, nil, err
		}
		stats = append(stats, st)
		cur = out
		exp += op.ScaleSteps()
	}
	return cur, exp, stats, nil
}

// copyCiphertext deep-copies a ciphertext, modelling the bytes a thread
// receives from its stage.
func copyCiphertext(c *paillier.Ciphertext) *paillier.Ciphertext {
	if c == nil {
		return nil
	}
	return paillier.UnsafeCiphertext(c.Value()) // Value already copies
}
