// Package dataset provides procedurally generated stand-ins for the
// datasets the paper evaluates on (MNIST, CIFAR-10, and the Kaggle
// Breast/Heart/Cardio healthcare sets). The real datasets are external
// downloads; per the reproduction's substitution rule, these generators
// produce learnable synthetic datasets with the same feature dimensions,
// class counts, and (optionally) sample counts as Table III, so every
// accuracy and latency experiment exercises the identical code paths.
//
// All generators are deterministic for a given seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"ppstream/internal/tensor"
)

// Dataset is a labelled sample collection split into train and test
// partitions, mirroring Table III's per-dataset splits.
type Dataset struct {
	Name       string
	NumClasses int
	TrainX     []*tensor.Dense
	TrainY     []int
	TestX      []*tensor.Dense
	TestY      []int
}

// InputShape returns the shape of one sample.
func (d *Dataset) InputShape() tensor.Shape {
	if len(d.TrainX) > 0 {
		return d.TrainX[0].Shape()
	}
	if len(d.TestX) > 0 {
		return d.TestX[0].Shape()
	}
	return nil
}

// Validate checks internal consistency: matching lengths, uniform shapes,
// labels in range.
func (d *Dataset) Validate() error {
	if len(d.TrainX) != len(d.TrainY) {
		return fmt.Errorf("dataset %s: train X/Y length mismatch %d/%d", d.Name, len(d.TrainX), len(d.TrainY))
	}
	if len(d.TestX) != len(d.TestY) {
		return fmt.Errorf("dataset %s: test X/Y length mismatch %d/%d", d.Name, len(d.TestX), len(d.TestY))
	}
	if len(d.TrainX) == 0 {
		return fmt.Errorf("dataset %s: empty training set", d.Name)
	}
	shape := d.InputShape()
	check := func(xs []*tensor.Dense, ys []int, part string) error {
		for i, x := range xs {
			if !x.Shape().Equal(shape) {
				return fmt.Errorf("dataset %s: %s sample %d shape %v != %v", d.Name, part, i, x.Shape(), shape)
			}
			if ys[i] < 0 || ys[i] >= d.NumClasses {
				return fmt.Errorf("dataset %s: %s label %d out of range [0,%d)", d.Name, part, ys[i], d.NumClasses)
			}
		}
		return nil
	}
	if err := check(d.TrainX, d.TrainY, "train"); err != nil {
		return err
	}
	return check(d.TestX, d.TestY, "test")
}

// TabularConfig parameterizes a synthetic tabular (healthcare-style)
// dataset: class-conditioned Gaussian clusters with controllable overlap.
type TabularConfig struct {
	Name     string
	Features int
	Classes  int
	Train    int
	Test     int
	Seed     int64
	// Separation scales the distance between class means; ~2 gives the
	// high-but-not-perfect accuracies the healthcare models show.
	Separation float64
	// Noise is the within-class standard deviation.
	Noise float64
}

// Tabular generates a class-conditioned Gaussian-cluster dataset.
func Tabular(cfg TabularConfig) (*Dataset, error) {
	if cfg.Features <= 0 || cfg.Classes < 2 || cfg.Train <= 0 || cfg.Test < 0 {
		return nil, fmt.Errorf("dataset: invalid tabular config %+v", cfg)
	}
	if cfg.Separation == 0 {
		cfg.Separation = 2.0
	}
	if cfg.Noise == 0 {
		cfg.Noise = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Class means on a noisy simplex-ish layout.
	means := make([][]float64, cfg.Classes)
	for c := range means {
		means[c] = make([]float64, cfg.Features)
		for f := range means[c] {
			means[c][f] = rng.NormFloat64() * cfg.Separation
		}
	}
	sample := func(n int) ([]*tensor.Dense, []int) {
		xs := make([]*tensor.Dense, n)
		ys := make([]int, n)
		for i := 0; i < n; i++ {
			c := rng.Intn(cfg.Classes)
			x := tensor.Zeros(cfg.Features)
			for f := 0; f < cfg.Features; f++ {
				x.Data()[f] = means[c][f] + rng.NormFloat64()*cfg.Noise
			}
			xs[i], ys[i] = x, c
		}
		return xs, ys
	}
	d := &Dataset{Name: cfg.Name, NumClasses: cfg.Classes}
	d.TrainX, d.TrainY = sample(cfg.Train)
	d.TestX, d.TestY = sample(cfg.Test)
	return d, d.Validate()
}

// ImageConfig parameterizes a synthetic image dataset.
type ImageConfig struct {
	Name     string
	Channels int
	Side     int // square images, Side×Side
	Classes  int
	Train    int
	Test     int
	Seed     int64
	// Noise is the additive pixel noise standard deviation.
	Noise float64
}

// Digits generates an MNIST-like dataset: 28×28 single-channel images of
// seven-segment style digit glyphs with random offset, thickness jitter,
// and pixel noise. Ten classes, one glyph per digit, drawn procedurally.
func Digits(cfg ImageConfig) (*Dataset, error) {
	if cfg.Side == 0 {
		cfg.Side = 28
	}
	if cfg.Channels == 0 {
		cfg.Channels = 1
	}
	if cfg.Classes == 0 {
		cfg.Classes = 10
	}
	if cfg.Classes > 10 {
		return nil, fmt.Errorf("dataset: digits supports ≤ 10 classes, got %d", cfg.Classes)
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.15
	}
	if cfg.Train <= 0 {
		return nil, fmt.Errorf("dataset: digits needs training samples")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample := func(n int) ([]*tensor.Dense, []int) {
		xs := make([]*tensor.Dense, n)
		ys := make([]int, n)
		for i := 0; i < n; i++ {
			c := rng.Intn(cfg.Classes)
			xs[i] = renderDigit(c, cfg.Side, cfg.Channels, cfg.Noise, rng)
			ys[i] = c
		}
		return xs, ys
	}
	d := &Dataset{Name: cfg.Name, NumClasses: cfg.Classes}
	d.TrainX, d.TrainY = sample(cfg.Train)
	d.TestX, d.TestY = sample(cfg.Test)
	return d, d.Validate()
}

// segment layout of a seven-segment display:
//
//	 _a_
//	f|   |b
//	 |_g_|
//	e|   |c
//	 |_d_|
var segmentsByDigit = [10][7]bool{
	//          a      b      c      d      e      f      g
	0: {true, true, true, true, true, true, false},
	1: {false, true, true, false, false, false, false},
	2: {true, true, false, true, true, false, true},
	3: {true, true, true, true, false, false, true},
	4: {false, true, true, false, false, true, true},
	5: {true, false, true, true, false, true, true},
	6: {true, false, true, true, true, true, true},
	7: {true, true, true, false, false, false, false},
	8: {true, true, true, true, true, true, true},
	9: {true, true, true, true, false, true, true},
}

func renderDigit(digit, side, channels int, noise float64, rng *rand.Rand) *tensor.Dense {
	img := tensor.Zeros(channels, side, side)
	// Glyph box, centred with small positional jitter — MNIST digits are
	// size-normalized and centred, which is what lets even MLPs learn
	// them.
	boxW := side * 5 / 10
	boxH := side * 7 / 10
	jitter := func() int { return rng.Intn(5) - 2 }
	ox := clampInt((side-boxW)/2+jitter(), 0, side-boxW-1)
	oy := clampInt((side-boxH)/2+jitter(), 0, side-boxH-1)
	th := 1 + rng.Intn(2) // stroke thickness jitter

	hseg := func(x0, y, w int) { fillRect(img, channels, side, x0, y, w, th) }
	vseg := func(x, y0, h int) { fillRect(img, channels, side, x, y0, th, h) }

	segs := segmentsByDigit[digit]
	midY := oy + boxH/2
	if segs[0] {
		hseg(ox, oy, boxW)
	}
	if segs[1] {
		vseg(ox+boxW-th, oy, boxH/2)
	}
	if segs[2] {
		vseg(ox+boxW-th, midY, boxH-boxH/2)
	}
	if segs[3] {
		hseg(ox, oy+boxH-th, boxW)
	}
	if segs[4] {
		vseg(ox, midY, boxH-boxH/2)
	}
	if segs[5] {
		vseg(ox, oy, boxH/2)
	}
	if segs[6] {
		hseg(ox, midY, boxW)
	}
	// Additive noise.
	d := img.Data()
	for i := range d {
		d[i] += rng.NormFloat64() * noise
		d[i] = clamp01(d[i])
	}
	return img
}

func fillRect(img *tensor.Dense, channels, side, x0, y0, w, h int) {
	d := img.Data()
	for c := 0; c < channels; c++ {
		for y := y0; y < y0+h && y < side; y++ {
			if y < 0 {
				continue
			}
			for x := x0; x < x0+w && x < side; x++ {
				if x < 0 {
					continue
				}
				d[(c*side+y)*side+x] = 1
			}
		}
	}
}

// Textures generates a CIFAR-like dataset: Side×Side RGB images whose
// classes are distinguished by oriented sinusoidal textures with
// class-specific frequency, orientation, and channel mixing, plus noise.
func Textures(cfg ImageConfig) (*Dataset, error) {
	if cfg.Side == 0 {
		cfg.Side = 32
	}
	if cfg.Channels == 0 {
		cfg.Channels = 3
	}
	if cfg.Classes == 0 {
		cfg.Classes = 10
	}
	if cfg.Noise == 0 {
		cfg.Noise = 0.2
	}
	if cfg.Train <= 0 {
		return nil, fmt.Errorf("dataset: textures needs training samples")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample := func(n int) ([]*tensor.Dense, []int) {
		xs := make([]*tensor.Dense, n)
		ys := make([]int, n)
		for i := 0; i < n; i++ {
			c := rng.Intn(cfg.Classes)
			xs[i] = renderTexture(c, cfg.Side, cfg.Channels, cfg.Classes, cfg.Noise, rng)
			ys[i] = c
		}
		return xs, ys
	}
	d := &Dataset{Name: cfg.Name, NumClasses: cfg.Classes}
	d.TrainX, d.TrainY = sample(cfg.Train)
	d.TestX, d.TestY = sample(cfg.Test)
	return d, d.Validate()
}

func renderTexture(class, side, channels, classes int, noise float64, rng *rand.Rand) *tensor.Dense {
	img := tensor.Zeros(channels, side, side)
	freq := 1.0 + float64(class%5)
	theta := math.Pi * float64(class) / float64(classes)
	phase := rng.Float64() * 2 * math.Pi
	cosT, sinT := math.Cos(theta), math.Sin(theta)
	d := img.Data()
	for c := 0; c < channels; c++ {
		chanGain := 0.5 + 0.5*math.Cos(float64(class)+float64(c)*2.1)
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				u := (float64(x)*cosT + float64(y)*sinT) / float64(side)
				v := 0.5 + 0.5*math.Sin(2*math.Pi*freq*u+phase)
				d[(c*side+y)*side+x] = clamp01(v*chanGain + rng.NormFloat64()*noise)
			}
		}
	}
	return img
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
