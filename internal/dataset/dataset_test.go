package dataset

import (
	"testing"

	"ppstream/internal/tensor"
)

func TestTabularGeneration(t *testing.T) {
	d, err := Tabular(TabularConfig{Name: "tab", Features: 13, Classes: 2, Train: 100, Test: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.TrainX) != 100 || len(d.TestX) != 30 {
		t.Errorf("sizes %d/%d", len(d.TrainX), len(d.TestX))
	}
	if !d.InputShape().Equal(tensor.Shape{13}) {
		t.Errorf("shape %v", d.InputShape())
	}
	// both classes present
	seen := map[int]bool{}
	for _, y := range d.TrainY {
		seen[y] = true
	}
	if len(seen) != 2 {
		t.Errorf("classes present: %v", seen)
	}
}

func TestTabularDeterministic(t *testing.T) {
	cfg := TabularConfig{Name: "t", Features: 5, Classes: 3, Train: 20, Test: 5, Seed: 42}
	a, _ := Tabular(cfg)
	b, _ := Tabular(cfg)
	for i := range a.TrainX {
		if a.TrainY[i] != b.TrainY[i] {
			t.Fatal("labels differ across runs with same seed")
		}
		for j := range a.TrainX[i].Data() {
			if a.TrainX[i].Data()[j] != b.TrainX[i].Data()[j] {
				t.Fatal("features differ across runs with same seed")
			}
		}
	}
}

func TestTabularValidation(t *testing.T) {
	if _, err := Tabular(TabularConfig{Features: 0, Classes: 2, Train: 10}); err == nil {
		t.Error("zero features accepted")
	}
	if _, err := Tabular(TabularConfig{Features: 5, Classes: 1, Train: 10}); err == nil {
		t.Error("single class accepted")
	}
	if _, err := Tabular(TabularConfig{Features: 5, Classes: 2, Train: 0}); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestDigitsGeneration(t *testing.T) {
	d, err := Digits(ImageConfig{Name: "digits", Train: 50, Test: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !d.InputShape().Equal(tensor.Shape{1, 28, 28}) {
		t.Errorf("digit shape %v", d.InputShape())
	}
	if d.NumClasses != 10 {
		t.Errorf("classes %d", d.NumClasses)
	}
	// pixels in [0,1]
	for _, x := range d.TrainX[:5] {
		for _, v := range x.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v out of range", v)
			}
		}
	}
	// images of different digits should differ meaningfully
	var zero, one *tensor.Dense
	for i, y := range d.TrainY {
		if y == 0 && zero == nil {
			zero = d.TrainX[i]
		}
		if y == 1 && one == nil {
			one = d.TrainX[i]
		}
	}
	if zero != nil && one != nil {
		var diff float64
		for i := range zero.Data() {
			dv := zero.Data()[i] - one.Data()[i]
			diff += dv * dv
		}
		if diff < 1 {
			t.Errorf("digit 0 and 1 images nearly identical (L2² = %v)", diff)
		}
	}
	if _, err := Digits(ImageConfig{Train: 0}); err == nil {
		t.Error("empty training set accepted")
	}
	if _, err := Digits(ImageConfig{Train: 5, Classes: 11}); err == nil {
		t.Error("11 digit classes accepted")
	}
}

func TestTexturesGeneration(t *testing.T) {
	d, err := Textures(ImageConfig{Name: "tex", Train: 40, Test: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !d.InputShape().Equal(tensor.Shape{3, 32, 32}) {
		t.Errorf("texture shape %v", d.InputShape())
	}
	for _, x := range d.TrainX[:3] {
		for _, v := range x.Data() {
			if v < 0 || v > 1 {
				t.Fatalf("pixel %v out of range", v)
			}
		}
	}
	if _, err := Textures(ImageConfig{Train: 0}); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestDatasetValidate(t *testing.T) {
	d := &Dataset{Name: "bad", NumClasses: 2,
		TrainX: []*tensor.Dense{tensor.Zeros(3)}, TrainY: []int{0, 1}}
	if err := d.Validate(); err == nil {
		t.Error("X/Y mismatch accepted")
	}
	d2 := &Dataset{Name: "bad2", NumClasses: 2,
		TrainX: []*tensor.Dense{tensor.Zeros(3)}, TrainY: []int{5}}
	if err := d2.Validate(); err == nil {
		t.Error("out-of-range label accepted")
	}
	d3 := &Dataset{Name: "bad3", NumClasses: 2,
		TrainX: []*tensor.Dense{tensor.Zeros(3), tensor.Zeros(4)}, TrainY: []int{0, 1}}
	if err := d3.Validate(); err == nil {
		t.Error("ragged shapes accepted")
	}
}
