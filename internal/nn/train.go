package nn

import (
	"fmt"
	"math"
	"math/rand"

	"ppstream/internal/tensor"
)

// TrainConfig controls the SGD trainer. The paper trains its models with
// PyTorch/Matlab; this trainer exists so the accuracy experiments
// (Tables IV/V) are runnable end-to-end without external frameworks.
type TrainConfig struct {
	Epochs       int
	LearningRate float64
	BatchSize    int
	Momentum     float64
	// WeightDecay is the L2 regularization coefficient; it keeps weight
	// magnitudes small, which (besides generalization) is what makes the
	// parameter-scaling accuracy/precision trade-off of Exp#1 visible.
	WeightDecay float64
	Seed        int64
	// Silent suppresses per-epoch progress via the Progress callback.
	Progress func(epoch int, loss float64)
}

// DefaultTrainConfig returns sensible defaults for the small synthetic
// datasets in this repository.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 20, LearningRate: 0.05, BatchSize: 16, Momentum: 0.9, Seed: 1}
}

// Train fits the network to a labelled classification set with
// mini-batch SGD and cross-entropy loss. The final layer must be SoftMax
// (the usual classification head, as in the paper's models).
func Train(n *Network, xs []*tensor.Dense, ys []int, cfg TrainConfig) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("nn: train needs matching non-empty inputs (%d) and labels (%d)", len(xs), len(ys))
	}
	if cfg.Epochs <= 0 || cfg.LearningRate <= 0 {
		return fmt.Errorf("nn: train needs positive epochs (%d) and learning rate (%g)", cfg.Epochs, cfg.LearningRate)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 16
	}
	last := n.Layers[len(n.Layers)-1]
	if _, ok := last.(*SoftMax); !ok {
		return fmt.Errorf("nn: train requires a SoftMax output layer, got %T", last)
	}
	outShape, err := n.OutputShape()
	if err != nil {
		return err
	}
	classes := outShape.Size()
	for i, y := range ys {
		if y < 0 || y >= classes {
			return fmt.Errorf("nn: label %d at sample %d out of range [0,%d)", y, i, classes)
		}
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}

	velocity := initVelocity(n)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			zeroGrads(n)
			for _, idx := range order[start:end] {
				loss, err := backpropSample(n, xs[idx], ys[idx], classes)
				if err != nil {
					return err
				}
				epochLoss += loss
			}
			applyGrads(n, velocity, cfg.LearningRate/float64(end-start), cfg.Momentum, cfg.WeightDecay)
		}
		if cfg.Progress != nil {
			cfg.Progress(epoch, epochLoss/float64(len(xs)))
		}
	}
	return nil
}

// backpropSample runs forward with activation caching, computes the
// cross-entropy loss against the label, and backpropagates, accumulating
// parameter gradients. The SoftMax+cross-entropy pair uses the fused
// gradient p − onehot(y).
func backpropSample(n *Network, x *tensor.Dense, y, classes int) (float64, error) {
	acts := make([]*tensor.Dense, len(n.Layers)+1)
	acts[0] = x
	for i, l := range n.Layers {
		out, err := l.Forward(acts[i])
		if err != nil {
			return 0, fmt.Errorf("nn: train forward layer %d (%s): %w", i, l.Name(), err)
		}
		acts[i+1] = out
	}
	probs := acts[len(acts)-1]
	p := probs.AtFlat(y)
	loss := -math.Log(math.Max(p, 1e-12))

	// Fused SoftMax + cross-entropy gradient w.r.t. the SoftMax *input*.
	grad := probs.Clone()
	grad.SetFlat(y, grad.AtFlat(y)-1)

	// Backward through layers below the SoftMax head.
	for i := len(n.Layers) - 2; i >= 0; i-- {
		bp, ok := n.Layers[i].(Backprop)
		if !ok {
			return 0, fmt.Errorf("nn: layer %s does not support backprop", n.Layers[i].Name())
		}
		g, err := bp.Backward(acts[i], grad)
		if err != nil {
			return 0, fmt.Errorf("nn: train backward layer %d (%s): %w", i, n.Layers[i].Name(), err)
		}
		grad = g
	}
	return loss, nil
}

func initVelocity(n *Network) [][]float64 {
	var v [][]float64
	for _, l := range n.Layers {
		if t, ok := l.(Trainable); ok {
			for _, p := range t.Params() {
				v = append(v, make([]float64, p.Size()))
			}
		}
	}
	return v
}

func zeroGrads(n *Network) {
	for _, l := range n.Layers {
		if t, ok := l.(Trainable); ok {
			for _, g := range t.Grads() {
				for i := range g.Data() {
					g.Data()[i] = 0
				}
			}
		}
	}
}

func applyGrads(n *Network, velocity [][]float64, lr, momentum, weightDecay float64) {
	vi := 0
	for _, l := range n.Layers {
		t, ok := l.(Trainable)
		if !ok {
			continue
		}
		params, grads := t.Params(), t.Grads()
		for pi := range params {
			pd, gd, v := params[pi].Data(), grads[pi].Data(), velocity[vi]
			for i := range pd {
				v[i] = momentum*v[i] - lr*(gd[i]+weightDecay*pd[i])
				pd[i] += v[i]
			}
			vi++
		}
	}
}

// CalibrateBatchNorm runs a forward pass over the calibration samples and
// sets each BatchNorm layer's frozen statistics from the activations that
// reach it. Call after training (or after building a network whose BN
// layers should whiten real data).
func CalibrateBatchNorm(n *Network, xs []*tensor.Dense) error {
	if len(xs) == 0 {
		return fmt.Errorf("nn: batch-norm calibration needs samples")
	}
	// Activations feeding layer i, for every sample.
	cur := xs
	for _, l := range n.Layers {
		if bn, ok := l.(*BatchNorm); ok {
			if err := bn.Calibrate(cur); err != nil {
				return err
			}
		}
		next := make([]*tensor.Dense, len(cur))
		for si, x := range cur {
			out, err := l.Forward(x)
			if err != nil {
				return err
			}
			next[si] = out
		}
		cur = next
	}
	return nil
}
