package nn

import (
	"math"
	"math/rand"
	"testing"

	"ppstream/internal/tensor"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(7)) }

func TestKindString(t *testing.T) {
	if Linear.String() != "linear" || NonLinear.String() != "non-linear" || Mixed.String() != "mixed" {
		t.Error("Kind.String wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestFCForward(t *testing.T) {
	fc := NewFC("fc", 3, 2, rng())
	fc.W = tensor.MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	fc.B = tensor.MustFromSlice([]float64{0.5, -0.5}, 2)
	x := tensor.MustFromSlice([]float64{1, 0, -1}, 3)
	y, err := fc.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.At(0) != -1.5 || y.At(1) != -2.5 {
		t.Errorf("FC forward = %v", y.Data())
	}
	if fc.Kind() != Linear {
		t.Error("FC must be linear")
	}
	if _, err := fc.OutputShape(tensor.Shape{4}); err == nil {
		t.Error("bad input shape accepted")
	}
}

func TestConvKindAndShape(t *testing.T) {
	p := tensor.ConvParams{InC: 1, InH: 4, InW: 4, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	c, err := NewConv("c", p, rng())
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind() != Linear {
		t.Error("Conv must be linear")
	}
	out, err := c.OutputShape(tensor.Shape{1, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{2, 4, 4}) {
		t.Errorf("conv output shape %v", out)
	}
	if _, err := c.OutputShape(tensor.Shape{2, 4, 4}); err == nil {
		t.Error("wrong channel count accepted")
	}
	if _, err := NewConv("bad", tensor.ConvParams{}, rng()); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestBatchNormForward(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	bn.Mean = tensor.MustFromSlice([]float64{1, 2}, 2)
	bn.Var = tensor.MustFromSlice([]float64{4, 9}, 2)
	bn.Gamma = tensor.MustFromSlice([]float64{2, 3}, 2)
	bn.Beta = tensor.MustFromSlice([]float64{10, 20}, 2)
	x := tensor.MustFromSlice([]float64{3, 5}, 2)
	y, err := bn.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	want0 := 2*(3.0-1)/math.Sqrt(4+bn.Eps) + 10
	want1 := 3*(5.0-2)/math.Sqrt(9+bn.Eps) + 20
	if math.Abs(y.At(0)-want0) > 1e-9 || math.Abs(y.At(1)-want1) > 1e-9 {
		t.Errorf("BN forward = %v, want [%v %v]", y.Data(), want0, want1)
	}
	if bn.Kind() != Linear {
		t.Error("frozen-stats BN must be linear")
	}
	if _, err := bn.Forward(tensor.Zeros(3)); err == nil {
		t.Error("wrong feature count accepted")
	}
	if _, err := bn.OutputShape(tensor.Shape{2, 2}); err == nil {
		t.Error("rank-2 input accepted")
	}
}

func TestBatchNormChannelMode(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	bn.Mean = tensor.MustFromSlice([]float64{0, 10}, 2)
	x := tensor.Zeros(2, 2, 2)
	x.Fill(10)
	y, err := bn.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	// channel 0 normalizes (10-0)/√(1+ε) ≈ 10; channel 1 (10-10) = 0.
	if math.Abs(y.At(0, 0, 0)-10) > 1e-3 || math.Abs(y.At(1, 0, 0)) > 1e-9 {
		t.Errorf("per-channel normalization wrong: %v", y.Data())
	}
}

func TestBatchNormCalibrate(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	samples := []*tensor.Dense{
		tensor.MustFromSlice([]float64{2}, 1),
		tensor.MustFromSlice([]float64{4}, 1),
		tensor.MustFromSlice([]float64{6}, 1),
	}
	if err := bn.Calibrate(samples); err != nil {
		t.Fatal(err)
	}
	if math.Abs(bn.Mean.At(0)-4) > 1e-9 {
		t.Errorf("calibrated mean %v", bn.Mean.At(0))
	}
	wantVar := (4.0 + 0 + 4) / 3
	if math.Abs(bn.Var.At(0)-wantVar) > 1e-9 {
		t.Errorf("calibrated var %v, want %v", bn.Var.At(0), wantVar)
	}
	if err := bn.Calibrate(nil); err == nil {
		t.Error("empty calibration accepted")
	}
}

func TestReLUAndSigmoid(t *testing.T) {
	r := NewReLU("r")
	x := tensor.MustFromSlice([]float64{-2, 0, 3}, 3)
	y, _ := r.Forward(x)
	if y.At(0) != 0 || y.At(2) != 3 {
		t.Errorf("ReLU = %v", y.Data())
	}
	if r.Kind() != NonLinear {
		t.Error("ReLU kind")
	}
	var _ ElementWise = r

	s := NewSigmoid("s")
	ys, _ := s.Forward(tensor.MustFromSlice([]float64{0}, 1))
	if math.Abs(ys.At(0)-0.5) > 1e-12 {
		t.Errorf("Sigmoid(0) = %v", ys.At(0))
	}
	var _ ElementWise = s
}

func TestSoftMax(t *testing.T) {
	sm := NewSoftMax("sm")
	y, err := sm.Forward(tensor.MustFromSlice([]float64{1, 2, 3}, 3))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range y.Data() {
		if v <= 0 {
			t.Error("softmax output non-positive")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sums to %v", sum)
	}
	if y.At(2) <= y.At(0) {
		t.Error("softmax did not preserve order")
	}
	// numerical stability with large logits
	big, err := sm.Forward(tensor.MustFromSlice([]float64{1000, 1001}, 2))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(big.At(0)) || math.IsNaN(big.At(1)) {
		t.Error("softmax overflowed on large logits")
	}
	if _, err := sm.Forward(tensor.Zeros(1).Flatten().Clone()); err != nil {
		t.Errorf("size-1 softmax failed: %v", err)
	}
	// SoftMax must NOT be element-wise (position-dependent).
	if _, ok := interface{}(sm).(ElementWise); ok {
		t.Error("SoftMax must not be ElementWise")
	}
}

func TestMaxPoolLayer(t *testing.T) {
	mp := NewMaxPool("mp", 2, 2)
	out, err := mp.OutputShape(tensor.Shape{1, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(tensor.Shape{1, 2, 2}) {
		t.Errorf("maxpool shape %v", out)
	}
	if _, err := mp.OutputShape(tensor.Shape{4, 4}); err == nil {
		t.Error("rank-2 accepted")
	}
	if mp.Kind() != NonLinear {
		t.Error("MaxPool kind")
	}
}

func TestFlatten(t *testing.T) {
	f := NewFlatten("f")
	x := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 2, 2)
	y, _ := f.Forward(x)
	if y.Shape().Rank() != 1 || y.Size() != 4 {
		t.Errorf("flatten shape %v", y.Shape())
	}
	if f.Kind() != Linear {
		t.Error("Flatten kind should be linear (no-op)")
	}
}

func TestScaledSigmoidSplit(t *testing.T) {
	ss := NewScaledSigmoid("ss", 3)
	ss.Scale = tensor.MustFromSlice([]float64{2, 1, 0.5}, 3)
	if ss.Kind() != Mixed {
		t.Error("ScaledSigmoid kind")
	}
	x := tensor.MustFromSlice([]float64{1, -1, 4}, 3)
	direct, err := ss.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	lin, non := ss.Split()
	if lin.Kind() != Linear || non.Kind() != NonLinear {
		t.Fatal("split kinds wrong")
	}
	mid, err := lin.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	split, err := non.Forward(mid)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(direct, split, 1e-12) {
		t.Errorf("split result %v != direct %v", split.Data(), direct.Data())
	}
}

// gradient checking via central differences for every Backprop layer.
func TestBackwardGradcheck(t *testing.T) {
	r := rng()
	cases := []struct {
		name  string
		layer Layer
		in    tensor.Shape
	}{
		{"fc", NewFC("fc", 4, 3, r), tensor.Shape{4}},
		{"relu", NewReLU("r"), tensor.Shape{5}},
		{"sigmoid", NewSigmoid("s"), tensor.Shape{5}},
		{"softmax", NewSoftMax("sm"), tensor.Shape{4}},
		{"flatten", NewFlatten("f"), tensor.Shape{2, 3}},
		{"batchnorm", NewBatchNorm("bn", 3), tensor.Shape{3}},
		{"scaledsigmoid", NewScaledSigmoid("ss", 4), tensor.Shape{4}},
	}
	conv, err := NewConv("c", tensor.ConvParams{InC: 2, InH: 4, InW: 4, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name  string
		layer Layer
		in    tensor.Shape
	}{"conv", conv, tensor.Shape{2, 4, 4}})
	cases = append(cases, struct {
		name  string
		layer Layer
		in    tensor.Shape
	}{"maxpool", NewMaxPool("mp", 2, 2), tensor.Shape{1, 4, 4}})

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			bp, ok := c.layer.(Backprop)
			if !ok {
				t.Fatalf("%s does not implement Backprop", c.name)
			}
			x := tensor.Zeros(c.in...)
			for i := range x.Data() {
				x.Data()[i] = r.NormFloat64()
			}
			outShape, err := c.layer.OutputShape(c.in)
			if err != nil {
				t.Fatal(err)
			}
			// random downstream gradient
			dy := tensor.Zeros(outShape...)
			for i := range dy.Data() {
				dy.Data()[i] = r.NormFloat64()
			}
			dx, err := bp.Backward(x, dy)
			if err != nil {
				t.Fatal(err)
			}
			// numerically check d(dy·f(x))/dx
			const eps = 1e-5
			loss := func(xt *tensor.Dense) float64 {
				y, err := c.layer.Forward(xt)
				if err != nil {
					t.Fatal(err)
				}
				var sum float64
				for i, v := range y.Data() {
					sum += v * dy.Data()[i]
				}
				return sum
			}
			for i := 0; i < x.Size(); i++ {
				orig := x.Data()[i]
				x.Data()[i] = orig + eps
				up := loss(x)
				x.Data()[i] = orig - eps
				down := loss(x)
				x.Data()[i] = orig
				want := (up - down) / (2 * eps)
				got := dx.Data()[i]
				if math.Abs(got-want) > 1e-3*(1+math.Abs(want)) {
					t.Errorf("%s: dL/dx[%d] = %v, numeric %v", c.name, i, got, want)
				}
			}
		})
	}
}
