package nn

import (
	"fmt"
	"math"

	"ppstream/internal/tensor"
)

// ReLU is the rectified-linear activation, an element-wise non-linear
// layer: under PP-Stream the data provider evaluates it on permuted
// plaintext values (Section III-C).
type ReLU struct {
	LayerName string
}

// NewReLU creates a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{LayerName: name} }

// Name implements Layer.
func (l *ReLU) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *ReLU) Kind() Kind { return NonLinear }

// OutputShape implements Layer.
func (l *ReLU) OutputShape(in tensor.Shape) (tensor.Shape, error) { return in.Clone(), nil }

// ApplyElement implements ElementWise.
func (l *ReLU) ApplyElement(v float64) float64 { return math.Max(0, v) }

// Forward implements Layer.
func (l *ReLU) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	return tensor.Map(x, l.ApplyElement), nil
}

// Backward implements Backprop: the gradient passes where x > 0.
func (l *ReLU) Backward(x, dy *tensor.Dense) (*tensor.Dense, error) {
	return tensor.Zip(x, dy, func(xi, g float64) float64 {
		if xi > 0 {
			return g
		}
		return 0
	})
}

// Sigmoid is the logistic activation σ(x) = 1/(1+e^{-x}), element-wise
// and therefore permutation-compatible.
type Sigmoid struct {
	LayerName string
}

// NewSigmoid creates a Sigmoid layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{LayerName: name} }

// Name implements Layer.
func (l *Sigmoid) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Sigmoid) Kind() Kind { return NonLinear }

// OutputShape implements Layer.
func (l *Sigmoid) OutputShape(in tensor.Shape) (tensor.Shape, error) { return in.Clone(), nil }

// ApplyElement implements ElementWise.
func (l *Sigmoid) ApplyElement(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Forward implements Layer.
func (l *Sigmoid) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	return tensor.Map(x, l.ApplyElement), nil
}

// Backward implements Backprop: dσ/dx = σ(x)(1−σ(x)).
func (l *Sigmoid) Backward(x, dy *tensor.Dense) (*tensor.Dense, error) {
	return tensor.Zip(x, dy, func(xi, g float64) float64 {
		s := l.ApplyElement(xi)
		return g * s * (1 - s)
	})
}

// SoftMax normalizes a vector into a probability distribution. It is a
// non-linear layer that is NOT element-wise: the paper places it in the
// last round where the model provider skips obfuscation, so the data
// provider evaluates it on the non-permuted tensor (Section III-C).
type SoftMax struct {
	LayerName string
}

// NewSoftMax creates a SoftMax layer.
func NewSoftMax(name string) *SoftMax { return &SoftMax{LayerName: name} }

// Name implements Layer.
func (l *SoftMax) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *SoftMax) Kind() Kind { return NonLinear }

// OutputShape implements Layer.
func (l *SoftMax) OutputShape(in tensor.Shape) (tensor.Shape, error) { return in.Clone(), nil }

// Forward implements Layer using the max-shifted stable formulation.
func (l *SoftMax) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	xd := x.Data()
	if len(xd) == 0 {
		return nil, fmt.Errorf("nn: %s got empty input", l.LayerName)
	}
	maxV := xd[0]
	for _, v := range xd {
		if v > maxV {
			maxV = v
		}
	}
	out := tensor.Zeros(x.Shape()...)
	od := out.Data()
	var sum float64
	for i, v := range xd {
		e := math.Exp(v - maxV)
		od[i] = e
		sum += e
	}
	for i := range od {
		od[i] /= sum
	}
	return out, nil
}

// Backward implements Backprop with the full SoftMax Jacobian:
// dx_i = p_i·(dy_i − Σ_j dy_j·p_j).
func (l *SoftMax) Backward(x, dy *tensor.Dense) (*tensor.Dense, error) {
	p, err := l.Forward(x)
	if err != nil {
		return nil, err
	}
	pd, dyd := p.Data(), dy.Data()
	if len(pd) != len(dyd) {
		return nil, fmt.Errorf("nn: %s backward size mismatch", l.LayerName)
	}
	var dot float64
	for i := range pd {
		dot += dyd[i] * pd[i]
	}
	dx := tensor.Zeros(x.Shape()...)
	dxd := dx.Data()
	for i := range pd {
		dxd[i] = pd[i] * (dyd[i] - dot)
	}
	return dx, nil
}

// MaxPool down-samples a [C,H,W] tensor with a square window. It is
// non-linear and position-dependent, so it cannot run on permuted
// tensors; the paper notes it can be replaced by a stride-2 convolution
// plus ReLU (Section III-C) — see ReplaceMaxPool.
type MaxPool struct {
	LayerName string
	Window    int
	Stride    int
}

// NewMaxPool creates a max-pooling layer.
func NewMaxPool(name string, window, stride int) *MaxPool {
	return &MaxPool{LayerName: name, Window: window, Stride: stride}
}

// Name implements Layer.
func (l *MaxPool) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *MaxPool) Kind() Kind { return NonLinear }

// OutputShape implements Layer.
func (l *MaxPool) OutputShape(in tensor.Shape) (tensor.Shape, error) {
	if in.Rank() != 3 {
		return nil, fmt.Errorf("nn: %s expects rank-3 input, got %v", l.LayerName, in)
	}
	oh := (in[1]-l.Window)/l.Stride + 1
	ow := (in[2]-l.Window)/l.Stride + 1
	if l.Window <= 0 || l.Stride <= 0 || oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nn: %s invalid pooling geometry for input %v", l.LayerName, in)
	}
	return tensor.Shape{in[0], oh, ow}, nil
}

// Forward implements Layer.
func (l *MaxPool) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	return tensor.MaxPool2D(x, l.Window, l.Stride)
}

// Backward implements Backprop: gradients flow to the argmax position of
// each window (ties to the first maximum).
func (l *MaxPool) Backward(x, dy *tensor.Dense) (*tensor.Dense, error) {
	outShape, err := l.OutputShape(x.Shape())
	if err != nil {
		return nil, err
	}
	if !dy.Shape().Equal(outShape) {
		return nil, fmt.Errorf("nn: %s backward dy shape %v, want %v", l.LayerName, dy.Shape(), outShape)
	}
	c, h, w := x.Shape()[0], x.Shape()[1], x.Shape()[2]
	oh, ow := outShape[1], outShape[2]
	dx := tensor.Zeros(c, h, w)
	xd, dyd, dxd := x.Data(), dy.Data(), dx.Data()
	for ch := 0; ch < c; ch++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := math.Inf(-1)
				bi := -1
				for ky := 0; ky < l.Window; ky++ {
					for kx := 0; kx < l.Window; kx++ {
						idx := (ch*h+oy*l.Stride+ky)*w + ox*l.Stride + kx
						if xd[idx] > best {
							best, bi = xd[idx], idx
						}
					}
				}
				dxd[bi] += dyd[(ch*oh+oy)*ow+ox]
			}
		}
	}
	return dx, nil
}

// Flatten reshapes its input to rank 1; a structural no-op that is
// classified as linear (it moves no values and has no parameters).
type Flatten struct {
	LayerName string
}

// NewFlatten creates a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{LayerName: name} }

// Name implements Layer.
func (l *Flatten) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Flatten) Kind() Kind { return Linear }

// OutputShape implements Layer.
func (l *Flatten) OutputShape(in tensor.Shape) (tensor.Shape, error) {
	return tensor.Shape{in.Size()}, nil
}

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	return x.Clone().Flatten(), nil
}

// Backward implements Backprop: reshape the gradient back.
func (l *Flatten) Backward(x, dy *tensor.Dense) (*tensor.Dense, error) {
	return dy.Clone().Reshape(x.Shape()...)
}

// ScaledSigmoid is a mixed layer from the paper's Figure 2: it multiplies
// the input element-wise by learned model parameters (linear) and then
// applies the sigmoid (non-linear). It demonstrates mixed-layer
// decomposition (Section IV-B).
type ScaledSigmoid struct {
	LayerName string
	Scale     *tensor.Dense // per-element scale, model parameter

	dScale *tensor.Dense
}

// NewScaledSigmoid creates a mixed sigmoid layer over n elements with
// unit scales.
func NewScaledSigmoid(name string, n int) *ScaledSigmoid {
	return &ScaledSigmoid{LayerName: name, Scale: tensor.Ones(n), dScale: tensor.Zeros(n)}
}

// Name implements Layer.
func (l *ScaledSigmoid) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *ScaledSigmoid) Kind() Kind { return Mixed }

// OutputShape implements Layer.
func (l *ScaledSigmoid) OutputShape(in tensor.Shape) (tensor.Shape, error) {
	if in.Size() != l.Scale.Size() {
		return nil, fmt.Errorf("nn: %s expects %d elements, got %v", l.LayerName, l.Scale.Size(), in)
	}
	return in.Clone(), nil
}

// Forward implements Layer.
func (l *ScaledSigmoid) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	if x.Size() != l.Scale.Size() {
		return nil, fmt.Errorf("nn: %s expects %d elements, got %d", l.LayerName, l.Scale.Size(), x.Size())
	}
	out := tensor.Zeros(x.Shape()...)
	xd, sd, od := x.Data(), l.Scale.Data(), out.Data()
	for i := range xd {
		od[i] = 1 / (1 + math.Exp(-sd[i]*xd[i]))
	}
	return out, nil
}

// Params implements Trainable.
func (l *ScaledSigmoid) Params() []*tensor.Dense { return []*tensor.Dense{l.Scale} }

// Grads implements Trainable.
func (l *ScaledSigmoid) Grads() []*tensor.Dense { return []*tensor.Dense{l.dScale} }

// Backward implements Backprop for y = σ(s·x).
func (l *ScaledSigmoid) Backward(x, dy *tensor.Dense) (*tensor.Dense, error) {
	if x.Size() != l.Scale.Size() || dy.Size() != l.Scale.Size() {
		return nil, fmt.Errorf("nn: %s backward size mismatch", l.LayerName)
	}
	dx := tensor.Zeros(x.Shape()...)
	xd, sd, dyd, dxd, dsd := x.Data(), l.Scale.Data(), dy.Data(), dx.Data(), l.dScale.Data()
	for i := range xd {
		s := 1 / (1 + math.Exp(-sd[i]*xd[i]))
		base := dyd[i] * s * (1 - s)
		dxd[i] = base * sd[i]
		dsd[i] += base * xd[i]
	}
	return dx, nil
}

// Split implements Splitter: the linear primitive scales element-wise by
// the model parameters; the non-linear primitive is the plain sigmoid.
func (l *ScaledSigmoid) Split() (Layer, Layer) {
	return &ElemScale{LayerName: l.LayerName + "/scale", Scale: l.Scale},
		NewSigmoid(l.LayerName + "/sigmoid")
}

// ElemScale multiplies the input element-wise by fixed model parameters;
// the linear half of a decomposed ScaledSigmoid.
type ElemScale struct {
	LayerName string
	Scale     *tensor.Dense
}

// Name implements Layer.
func (l *ElemScale) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *ElemScale) Kind() Kind { return Linear }

// OutputShape implements Layer.
func (l *ElemScale) OutputShape(in tensor.Shape) (tensor.Shape, error) {
	if in.Size() != l.Scale.Size() {
		return nil, fmt.Errorf("nn: %s expects %d elements, got %v", l.LayerName, l.Scale.Size(), in)
	}
	return in.Clone(), nil
}

// Forward implements Layer.
func (l *ElemScale) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	if x.Size() != l.Scale.Size() {
		return nil, fmt.Errorf("nn: %s expects %d elements, got %d", l.LayerName, l.Scale.Size(), x.Size())
	}
	out, err := tensor.Mul(x.Flatten(), l.Scale.Flatten())
	if err != nil {
		return nil, err
	}
	return out.Reshape(x.Shape()...)
}
