package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ppstream/internal/tensor"
)

// serialized forms: tensors and layers flatten into plain structs so gob
// does not need to chase unexported fields or interfaces.

type tensorBlob struct {
	Shape []int
	Data  []float64
}

func blobOf(t *tensor.Dense) *tensorBlob {
	if t == nil {
		return nil
	}
	return &tensorBlob{Shape: t.Shape(), Data: append([]float64(nil), t.Data()...)}
}

func (b *tensorBlob) tensor() (*tensor.Dense, error) {
	if b == nil {
		return nil, nil
	}
	return tensor.FromSlice(append([]float64(nil), b.Data...), b.Shape...)
}

type layerBlob struct {
	Type    string
	Name    string
	Ints    map[string]int
	Floats  map[string]float64
	Tensors map[string]*tensorBlob
}

type networkBlob struct {
	Name   string
	Input  []int
	Layers []layerBlob
}

// Save writes the network to w in gob format.
func Save(n *Network, w io.Writer) error {
	blob := networkBlob{Name: n.ModelName, Input: n.InputShape}
	for _, l := range n.Layers {
		lb, err := encodeLayer(l)
		if err != nil {
			return err
		}
		blob.Layers = append(blob.Layers, lb)
	}
	return gob.NewEncoder(w).Encode(blob)
}

// Load reads a network previously written with Save.
func Load(r io.Reader) (*Network, error) {
	var blob networkBlob
	if err := gob.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("nn: decoding network: %w", err)
	}
	layers := make([]Layer, len(blob.Layers))
	for i, lb := range blob.Layers {
		l, err := decodeLayer(lb)
		if err != nil {
			return nil, err
		}
		layers[i] = l
	}
	return NewNetwork(blob.Name, blob.Input, layers...)
}

// SaveFile writes the network to the named file.
func SaveFile(n *Network, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := Save(n, f); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a network from the named file.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func encodeLayer(l Layer) (layerBlob, error) {
	lb := layerBlob{Name: l.Name(), Ints: map[string]int{}, Floats: map[string]float64{}, Tensors: map[string]*tensorBlob{}}
	switch v := l.(type) {
	case *FC:
		lb.Type = "fc"
		lb.Tensors["w"], lb.Tensors["b"] = blobOf(v.W), blobOf(v.B)
	case *Conv:
		lb.Type = "conv"
		lb.Ints["inc"], lb.Ints["inh"], lb.Ints["inw"] = v.P.InC, v.P.InH, v.P.InW
		lb.Ints["outc"], lb.Ints["kh"], lb.Ints["kw"] = v.P.OutC, v.P.KH, v.P.KW
		lb.Ints["stride"], lb.Ints["pad"] = v.P.Stride, v.P.Pad
		lb.Tensors["w"], lb.Tensors["b"] = blobOf(v.W), blobOf(v.B)
	case *BatchNorm:
		lb.Type = "batchnorm"
		lb.Ints["channels"] = v.Channels
		lb.Floats["eps"] = v.Eps
		lb.Tensors["gamma"], lb.Tensors["beta"] = blobOf(v.Gamma), blobOf(v.Beta)
		lb.Tensors["mean"], lb.Tensors["var"] = blobOf(v.Mean), blobOf(v.Var)
	case *ReLU:
		lb.Type = "relu"
	case *Sigmoid:
		lb.Type = "sigmoid"
	case *SoftMax:
		lb.Type = "softmax"
	case *MaxPool:
		lb.Type = "maxpool"
		lb.Ints["window"], lb.Ints["stride"] = v.Window, v.Stride
	case *Flatten:
		lb.Type = "flatten"
	case *ScaledSigmoid:
		lb.Type = "scaledsigmoid"
		lb.Tensors["scale"] = blobOf(v.Scale)
	case *ElemScale:
		lb.Type = "elemscale"
		lb.Tensors["scale"] = blobOf(v.Scale)
	default:
		return lb, fmt.Errorf("nn: cannot serialize layer type %T", l)
	}
	return lb, nil
}

func decodeLayer(lb layerBlob) (Layer, error) {
	t := func(k string) (*tensor.Dense, error) {
		b, ok := lb.Tensors[k]
		if !ok || b == nil {
			return nil, fmt.Errorf("nn: layer %q (%s) missing tensor %q", lb.Name, lb.Type, k)
		}
		return b.tensor()
	}
	switch lb.Type {
	case "fc":
		w, err := t("w")
		if err != nil {
			return nil, err
		}
		b, err := t("b")
		if err != nil {
			return nil, err
		}
		return &FC{LayerName: lb.Name, W: w, B: b,
			dW: tensor.Zeros(w.Shape()...), dB: tensor.Zeros(b.Shape()...)}, nil
	case "conv":
		w, err := t("w")
		if err != nil {
			return nil, err
		}
		b, err := t("b")
		if err != nil {
			return nil, err
		}
		p := tensor.ConvParams{
			InC: lb.Ints["inc"], InH: lb.Ints["inh"], InW: lb.Ints["inw"],
			OutC: lb.Ints["outc"], KH: lb.Ints["kh"], KW: lb.Ints["kw"],
			Stride: lb.Ints["stride"], Pad: lb.Ints["pad"],
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return &Conv{LayerName: lb.Name, P: p, W: w, B: b,
			dW: tensor.Zeros(w.Shape()...), dB: tensor.Zeros(b.Shape()...)}, nil
	case "batchnorm":
		gamma, err := t("gamma")
		if err != nil {
			return nil, err
		}
		beta, err := t("beta")
		if err != nil {
			return nil, err
		}
		mean, err := t("mean")
		if err != nil {
			return nil, err
		}
		variance, err := t("var")
		if err != nil {
			return nil, err
		}
		ch := lb.Ints["channels"]
		return &BatchNorm{LayerName: lb.Name, Channels: ch, Eps: lb.Floats["eps"],
			Gamma: gamma, Beta: beta, Mean: mean, Var: variance,
			dGamma: tensor.Zeros(ch), dBeta: tensor.Zeros(ch)}, nil
	case "relu":
		return NewReLU(lb.Name), nil
	case "sigmoid":
		return NewSigmoid(lb.Name), nil
	case "softmax":
		return NewSoftMax(lb.Name), nil
	case "maxpool":
		return NewMaxPool(lb.Name, lb.Ints["window"], lb.Ints["stride"]), nil
	case "flatten":
		return NewFlatten(lb.Name), nil
	case "scaledsigmoid":
		s, err := t("scale")
		if err != nil {
			return nil, err
		}
		return &ScaledSigmoid{LayerName: lb.Name, Scale: s, dScale: tensor.Zeros(s.Shape()...)}, nil
	case "elemscale":
		s, err := t("scale")
		if err != nil {
			return nil, err
		}
		return &ElemScale{LayerName: lb.Name, Scale: s}, nil
	default:
		return nil, fmt.Errorf("nn: unknown serialized layer type %q", lb.Type)
	}
}
