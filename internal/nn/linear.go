package nn

import (
	"fmt"
	"math"
	"math/rand"

	"ppstream/internal/tensor"
)

// FC is a fully-connected (dense) layer: y = W·x + b. It is a linear
// layer: under PP-Stream it executes homomorphically on the model
// provider.
type FC struct {
	LayerName string
	W         *tensor.Dense // [out, in]
	B         *tensor.Dense // [out]

	dW, dB *tensor.Dense
}

// NewFC creates a fully-connected layer with Xavier/Glorot-initialized
// weights drawn from rng.
func NewFC(name string, in, out int, rng *rand.Rand) *FC {
	w := tensor.Zeros(out, in)
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range w.Data() {
		w.Data()[i] = (rng.Float64()*2 - 1) * limit
	}
	return &FC{
		LayerName: name,
		W:         w,
		B:         tensor.Zeros(out),
		dW:        tensor.Zeros(out, in),
		dB:        tensor.Zeros(out),
	}
}

// Name implements Layer.
func (l *FC) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *FC) Kind() Kind { return Linear }

// In returns the layer's input width.
func (l *FC) In() int { return l.W.Shape()[1] }

// Out returns the layer's output width.
func (l *FC) Out() int { return l.W.Shape()[0] }

// OutputShape implements Layer.
func (l *FC) OutputShape(in tensor.Shape) (tensor.Shape, error) {
	if in.Size() != l.In() {
		return nil, fmt.Errorf("nn: %s expects %d inputs, got shape %v", l.LayerName, l.In(), in)
	}
	return tensor.Shape{l.Out()}, nil
}

// Forward implements Layer.
func (l *FC) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	return tensor.MatVec(l.W, x.Flatten(), l.B)
}

// Params implements Trainable.
func (l *FC) Params() []*tensor.Dense { return []*tensor.Dense{l.W, l.B} }

// Grads implements Trainable.
func (l *FC) Grads() []*tensor.Dense { return []*tensor.Dense{l.dW, l.dB} }

// Backward implements Backprop: dx = Wᵀ·dy; dW += dy·xᵀ; dB += dy.
func (l *FC) Backward(x, dy *tensor.Dense) (*tensor.Dense, error) {
	xf := x.Flatten()
	in, out := l.In(), l.Out()
	if xf.Size() != in || dy.Size() != out {
		return nil, fmt.Errorf("nn: %s backward shape mismatch (x %d, dy %d)", l.LayerName, xf.Size(), dy.Size())
	}
	dx := tensor.Zeros(in)
	wd, xd, dyd, dxd, dwd, dbd := l.W.Data(), xf.Data(), dy.Data(), dx.Data(), l.dW.Data(), l.dB.Data()
	for o := 0; o < out; o++ {
		g := dyd[o]
		dbd[o] += g
		row := wd[o*in : (o+1)*in]
		drow := dwd[o*in : (o+1)*in]
		for i := 0; i < in; i++ {
			dxd[i] += row[i] * g
			drow[i] += xd[i] * g
		}
	}
	return dx, nil
}

// Conv is a 2-D convolution layer, a linear layer in the paper's
// taxonomy.
type Conv struct {
	LayerName string
	P         tensor.ConvParams
	W         *tensor.Dense // [F, C, KH, KW]
	B         *tensor.Dense // [F]

	dW, dB *tensor.Dense
}

// NewConv creates a convolution layer with He-initialized weights.
func NewConv(name string, p tensor.ConvParams, rng *rand.Rand) (*Conv, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	w := tensor.Zeros(p.OutC, p.InC, p.KH, p.KW)
	std := math.Sqrt(2.0 / float64(p.InC*p.KH*p.KW))
	for i := range w.Data() {
		w.Data()[i] = rng.NormFloat64() * std
	}
	return &Conv{
		LayerName: name,
		P:         p,
		W:         w,
		B:         tensor.Zeros(p.OutC),
		dW:        tensor.Zeros(p.OutC, p.InC, p.KH, p.KW),
		dB:        tensor.Zeros(p.OutC),
	}, nil
}

// Name implements Layer.
func (l *Conv) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *Conv) Kind() Kind { return Linear }

// OutputShape implements Layer.
func (l *Conv) OutputShape(in tensor.Shape) (tensor.Shape, error) {
	want := tensor.Shape{l.P.InC, l.P.InH, l.P.InW}
	if !in.Equal(want) {
		return nil, fmt.Errorf("nn: %s expects input %v, got %v", l.LayerName, want, in)
	}
	return tensor.Shape{l.P.OutC, l.P.OutH(), l.P.OutW()}, nil
}

// Forward implements Layer.
func (l *Conv) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	return tensor.Conv2D(x, l.W, l.B, l.P)
}

// Params implements Trainable.
func (l *Conv) Params() []*tensor.Dense { return []*tensor.Dense{l.W, l.B} }

// Grads implements Trainable.
func (l *Conv) Grads() []*tensor.Dense { return []*tensor.Dense{l.dW, l.dB} }

// Backward implements Backprop using the im2col decomposition.
func (l *Conv) Backward(x, dy *tensor.Dense) (*tensor.Dense, error) {
	p := l.P
	oh, ow := p.OutH(), p.OutW()
	wantDy := tensor.Shape{p.OutC, oh, ow}
	if !dy.Shape().Equal(wantDy) {
		return nil, fmt.Errorf("nn: %s backward dy shape %v, want %v", l.LayerName, dy.Shape(), wantDy)
	}
	cols, err := tensor.Im2Col(x, p)
	if err != nil {
		return nil, err
	}
	rowLen := p.InC * p.KH * p.KW
	cd, dyd, wd := cols.Data(), dy.Data(), l.W.Data()
	dwd, dbd := l.dW.Data(), l.dB.Data()
	// dcols[pos][k] = Σ_f dy[f][pos]·W[f][k]; dW[f][k] += Σ_pos dy[f][pos]·cols[pos][k]
	dcols := make([]float64, oh*ow*rowLen)
	for f := 0; f < p.OutC; f++ {
		filt := wd[f*rowLen : (f+1)*rowLen]
		dfilt := dwd[f*rowLen : (f+1)*rowLen]
		for pos := 0; pos < oh*ow; pos++ {
			g := dyd[f*oh*ow+pos]
			if g == 0 {
				continue
			}
			dbdelta := g
			row := cd[pos*rowLen : (pos+1)*rowLen]
			drow := dcols[pos*rowLen : (pos+1)*rowLen]
			for k := 0; k < rowLen; k++ {
				dfilt[k] += row[k] * g
				drow[k] += filt[k] * g
			}
			dbd[f] += dbdelta
		}
	}
	// col2im: scatter-add dcols back to input positions.
	dx := tensor.Zeros(p.InC, p.InH, p.InW)
	dxd := dx.Data()
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			drow := dcols[(oy*ow+ox)*rowLen : (oy*ow+ox+1)*rowLen]
			k := 0
			for c := 0; c < p.InC; c++ {
				for ky := 0; ky < p.KH; ky++ {
					iy := oy*p.Stride + ky - p.Pad
					for kx := 0; kx < p.KW; kx++ {
						ix := ox*p.Stride + kx - p.Pad
						if iy >= 0 && iy < p.InH && ix >= 0 && ix < p.InW {
							dxd[(c*p.InH+iy)*p.InW+ix] += drow[k]
						}
						k++
					}
				}
			}
		}
	}
	return dx, nil
}

// BatchNorm normalizes per channel (rank-3 inputs) or per feature (rank-1
// inputs) with frozen statistics and learnable scale/shift:
// y = γ·(x − μ)/√(σ² + ε) + β. It is a linear layer: with fixed μ, σ² the
// transform is an affine function of x, so PP-Stream evaluates it
// homomorphically. Statistics are calibrated from data (Calibrate) and
// then frozen, matching inference-time batch-norm semantics.
type BatchNorm struct {
	LayerName string
	Channels  int
	Eps       float64
	Gamma     *tensor.Dense // [C]
	Beta      *tensor.Dense // [C]
	Mean      *tensor.Dense // [C], frozen running mean
	Var       *tensor.Dense // [C], frozen running variance

	dGamma, dBeta *tensor.Dense
}

// NewBatchNorm creates an identity-initialized batch-norm layer over the
// given number of channels/features.
func NewBatchNorm(name string, channels int) *BatchNorm {
	bn := &BatchNorm{
		LayerName: name,
		Channels:  channels,
		Eps:       1e-5,
		Gamma:     tensor.Ones(channels),
		Beta:      tensor.Zeros(channels),
		Mean:      tensor.Zeros(channels),
		Var:       tensor.Ones(channels),
		dGamma:    tensor.Zeros(channels),
		dBeta:     tensor.Zeros(channels),
	}
	return bn
}

// Name implements Layer.
func (l *BatchNorm) Name() string { return l.LayerName }

// Kind implements Layer.
func (l *BatchNorm) Kind() Kind { return Linear }

// OutputShape implements Layer.
func (l *BatchNorm) OutputShape(in tensor.Shape) (tensor.Shape, error) {
	if err := l.checkShape(in); err != nil {
		return nil, err
	}
	return in.Clone(), nil
}

func (l *BatchNorm) checkShape(in tensor.Shape) error {
	switch in.Rank() {
	case 1:
		if in[0] != l.Channels {
			return fmt.Errorf("nn: %s expects %d features, got %v", l.LayerName, l.Channels, in)
		}
	case 3:
		if in[0] != l.Channels {
			return fmt.Errorf("nn: %s expects %d channels, got %v", l.LayerName, l.Channels, in)
		}
	default:
		return fmt.Errorf("nn: %s expects rank-1 or rank-3 input, got %v", l.LayerName, in)
	}
	return nil
}

// channelOf maps a flat offset to its channel index.
func (l *BatchNorm) channelOf(shape tensor.Shape, flat int) int {
	if shape.Rank() == 1 {
		return flat
	}
	perChannel := shape[1] * shape[2]
	return flat / perChannel
}

// Forward implements Layer.
func (l *BatchNorm) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	if err := l.checkShape(x.Shape()); err != nil {
		return nil, err
	}
	out := tensor.Zeros(x.Shape()...)
	xd, od := x.Data(), out.Data()
	g, b, mu, v := l.Gamma.Data(), l.Beta.Data(), l.Mean.Data(), l.Var.Data()
	for i := range xd {
		c := l.channelOf(x.Shape(), i)
		od[i] = g[c]*(xd[i]-mu[c])/math.Sqrt(v[c]+l.Eps) + b[c]
	}
	return out, nil
}

// Params implements Trainable (γ and β learn; μ and σ² are frozen).
func (l *BatchNorm) Params() []*tensor.Dense { return []*tensor.Dense{l.Gamma, l.Beta} }

// Grads implements Trainable.
func (l *BatchNorm) Grads() []*tensor.Dense { return []*tensor.Dense{l.dGamma, l.dBeta} }

// Backward implements Backprop with frozen statistics:
// dx = dy·γ/√(σ²+ε); dγ += dy·x̂; dβ += dy.
func (l *BatchNorm) Backward(x, dy *tensor.Dense) (*tensor.Dense, error) {
	if !x.Shape().Equal(dy.Shape()) {
		return nil, fmt.Errorf("nn: %s backward shape mismatch %v vs %v", l.LayerName, x.Shape(), dy.Shape())
	}
	dx := tensor.Zeros(x.Shape()...)
	xd, dyd, dxd := x.Data(), dy.Data(), dx.Data()
	g, mu, v := l.Gamma.Data(), l.Mean.Data(), l.Var.Data()
	dg, db := l.dGamma.Data(), l.dBeta.Data()
	for i := range xd {
		c := l.channelOf(x.Shape(), i)
		inv := 1 / math.Sqrt(v[c]+l.Eps)
		xhat := (xd[i] - mu[c]) * inv
		dg[c] += dyd[i] * xhat
		db[c] += dyd[i]
		dxd[i] = dyd[i] * g[c] * inv
	}
	return dx, nil
}

// Calibrate sets the frozen per-channel statistics from a sample of
// activations that would feed this layer.
func (l *BatchNorm) Calibrate(samples []*tensor.Dense) error {
	if len(samples) == 0 {
		return fmt.Errorf("nn: %s calibrate needs at least one sample", l.LayerName)
	}
	count := make([]float64, l.Channels)
	mean := make([]float64, l.Channels)
	m2 := make([]float64, l.Channels)
	for _, s := range samples {
		if err := l.checkShape(s.Shape()); err != nil {
			return err
		}
		for i, val := range s.Data() {
			c := l.channelOf(s.Shape(), i)
			count[c]++
			delta := val - mean[c]
			mean[c] += delta / count[c]
			m2[c] += delta * (val - mean[c])
		}
	}
	for c := 0; c < l.Channels; c++ {
		l.Mean.Data()[c] = mean[c]
		if count[c] > 1 {
			l.Var.Data()[c] = m2[c] / count[c]
		} else {
			l.Var.Data()[c] = 1
		}
	}
	return nil
}
