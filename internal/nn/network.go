package nn

import (
	"fmt"

	"ppstream/internal/tensor"
)

// Network is an ordered sequence of hidden layers plus metadata. The
// first layer receives the raw input tensor; the last layer's output is
// the inference result (paper Section II-A).
type Network struct {
	ModelName  string
	InputShape tensor.Shape
	Layers     []Layer
}

// NewNetwork creates a network and validates that the layer shapes chain
// correctly from the given input shape.
func NewNetwork(name string, input tensor.Shape, layers ...Layer) (*Network, error) {
	n := &Network{ModelName: name, InputShape: input.Clone(), Layers: layers}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// Validate checks the shape chain across all layers.
func (n *Network) Validate() error {
	if err := n.InputShape.Validate(); err != nil {
		return err
	}
	if len(n.Layers) == 0 {
		return fmt.Errorf("nn: network %q has no layers", n.ModelName)
	}
	shape := n.InputShape
	for i, l := range n.Layers {
		out, err := l.OutputShape(shape)
		if err != nil {
			return fmt.Errorf("nn: network %q layer %d (%s): %w", n.ModelName, i, l.Name(), err)
		}
		shape = out
	}
	return nil
}

// OutputShape returns the network's final output shape.
func (n *Network) OutputShape() (tensor.Shape, error) {
	shape := n.InputShape
	for _, l := range n.Layers {
		out, err := l.OutputShape(shape)
		if err != nil {
			return nil, err
		}
		shape = out
	}
	return shape, nil
}

// Forward runs plaintext inference on one sample. This is the reference
// the privacy-preserving protocol must match bit-for-bit up to parameter
// scaling (the paper's correctness guarantee, Section II-C).
func (n *Network) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	if !x.Shape().Equal(n.InputShape) {
		return nil, fmt.Errorf("nn: network %q expects input %v, got %v", n.ModelName, n.InputShape, x.Shape())
	}
	cur := x
	for i, l := range n.Layers {
		out, err := l.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("nn: network %q layer %d (%s): %w", n.ModelName, i, l.Name(), err)
		}
		cur = out
	}
	return cur, nil
}

// Predict returns the argmax class of the network's output.
func (n *Network) Predict(x *tensor.Dense) (int, error) {
	out, err := n.Forward(x)
	if err != nil {
		return 0, err
	}
	return tensor.ArgMax(out), nil
}

// Accuracy evaluates classification accuracy over a labelled set. With
// two classes this equals the paper's (TP+TN)/(TP+TN+FP+FN) definition
// (Section IV-A); with k classes it is the usual top-1 generalization.
func (n *Network) Accuracy(xs []*tensor.Dense, ys []int) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("nn: accuracy needs matching inputs (%d) and labels (%d)", len(xs), len(ys))
	}
	if len(xs) == 0 {
		return 0, fmt.Errorf("nn: accuracy over empty set")
	}
	correct := 0
	for i, x := range xs {
		pred, err := n.Predict(x)
		if err != nil {
			return 0, err
		}
		if pred == ys[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(xs)), nil
}

// Params returns all trainable parameter tensors across layers.
func (n *Network) Params() []*tensor.Dense {
	var out []*tensor.Dense
	for _, l := range n.Layers {
		if t, ok := l.(Trainable); ok {
			out = append(out, t.Params()...)
		}
	}
	return out
}

// ParamCount returns the total number of scalar parameters.
func (n *Network) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Size()
	}
	return total
}

// Clone deep-copies the network, duplicating all parameter tensors so the
// copy can be mutated (e.g. by parameter scaling) without affecting the
// original.
func (n *Network) Clone() *Network {
	layers := make([]Layer, len(n.Layers))
	for i, l := range n.Layers {
		layers[i] = cloneLayer(l)
	}
	return &Network{ModelName: n.ModelName, InputShape: n.InputShape.Clone(), Layers: layers}
}

func cloneLayer(l Layer) Layer {
	switch v := l.(type) {
	case *FC:
		return &FC{LayerName: v.LayerName, W: v.W.Clone(), B: v.B.Clone(),
			dW: tensor.Zeros(v.W.Shape()...), dB: tensor.Zeros(v.B.Shape()...)}
	case *Conv:
		return &Conv{LayerName: v.LayerName, P: v.P, W: v.W.Clone(), B: v.B.Clone(),
			dW: tensor.Zeros(v.W.Shape()...), dB: tensor.Zeros(v.B.Shape()...)}
	case *BatchNorm:
		return &BatchNorm{LayerName: v.LayerName, Channels: v.Channels, Eps: v.Eps,
			Gamma: v.Gamma.Clone(), Beta: v.Beta.Clone(), Mean: v.Mean.Clone(), Var: v.Var.Clone(),
			dGamma: tensor.Zeros(v.Channels), dBeta: tensor.Zeros(v.Channels)}
	case *ReLU:
		return &ReLU{LayerName: v.LayerName}
	case *Sigmoid:
		return &Sigmoid{LayerName: v.LayerName}
	case *SoftMax:
		return &SoftMax{LayerName: v.LayerName}
	case *MaxPool:
		return &MaxPool{LayerName: v.LayerName, Window: v.Window, Stride: v.Stride}
	case *Flatten:
		return &Flatten{LayerName: v.LayerName}
	case *ScaledSigmoid:
		return &ScaledSigmoid{LayerName: v.LayerName, Scale: v.Scale.Clone(),
			dScale: tensor.Zeros(v.Scale.Shape()...)}
	case *ElemScale:
		return &ElemScale{LayerName: v.LayerName, Scale: v.Scale.Clone()}
	default:
		panic(fmt.Sprintf("nn: cloneLayer: unknown layer type %T", l))
	}
}

// ReplaceMaxPool rewrites every MaxPool layer into a stride-2 convolution
// followed by ReLU, the substitution the paper cites from Springenberg et
// al. (Section III-C). The convolution averages the pooling window
// (weights 1/window²), which preserves shape and keeps the layer linear
// so it can run homomorphically; the ReLU keeps a non-linearity in place.
// The rewrite requires knowing the tensor shape flowing into each pool,
// so it walks the shape chain.
func ReplaceMaxPool(n *Network) (*Network, error) {
	shape := n.InputShape
	var out []Layer
	for _, l := range n.Layers {
		if mp, ok := l.(*MaxPool); ok {
			if shape.Rank() != 3 {
				return nil, fmt.Errorf("nn: ReplaceMaxPool: %s fed by non rank-3 shape %v", mp.Name(), shape)
			}
			c := shape[0]
			p := tensor.ConvParams{
				InC: c, InH: shape[1], InW: shape[2],
				OutC: c, KH: mp.Window, KW: mp.Window, Stride: mp.Stride,
			}
			conv := &Conv{
				LayerName: mp.Name() + "/conv",
				P:         p,
				W:         tensor.Zeros(c, c, mp.Window, mp.Window),
				B:         tensor.Zeros(c),
				dW:        tensor.Zeros(c, c, mp.Window, mp.Window),
				dB:        tensor.Zeros(c),
			}
			// Depthwise averaging kernel: channel i reads only channel i.
			inv := 1 / float64(mp.Window*mp.Window)
			for ch := 0; ch < c; ch++ {
				for ky := 0; ky < mp.Window; ky++ {
					for kx := 0; kx < mp.Window; kx++ {
						conv.W.Set(inv, ch, ch, ky, kx)
					}
				}
			}
			out = append(out, conv, NewReLU(mp.Name()+"/relu"))
		} else {
			out = append(out, l)
		}
		next, err := l.OutputShape(shape)
		if err != nil {
			return nil, err
		}
		shape = next
	}
	return NewNetwork(n.ModelName, n.InputShape, out...)
}
