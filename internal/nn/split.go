package nn

import (
	"fmt"

	"ppstream/internal/tensor"
)

// PrimitiveLayer is a merged primitive layer in the paper's Section IV-B
// sense: a maximal run of adjacent same-kind primitive layers. Each
// PrimitiveLayer maps to exactly one pipelined stage: linear primitive
// layers execute on the model provider, non-linear ones on the data
// provider.
type PrimitiveLayer struct {
	Index  int     // position in the merged network
	Kind   Kind    // Linear or NonLinear (never Mixed)
	Layers []Layer // the constituent layers, in order
	// InShape and OutShape are the tensor shapes entering and leaving
	// the merged layer, needed for obfuscation restore and partitioning.
	InShape  tensor.Shape
	OutShape tensor.Shape
}

// Name returns a readable identifier like "stage2-linear(conv1+bn1)".
func (p *PrimitiveLayer) Name() string {
	names := ""
	for i, l := range p.Layers {
		if i > 0 {
			names += "+"
		}
		names += l.Name()
	}
	return fmt.Sprintf("stage%d-%s(%s)", p.Index, p.Kind, names)
}

// Forward applies all constituent layers in order.
func (p *PrimitiveLayer) Forward(x *tensor.Dense) (*tensor.Dense, error) {
	cur := x
	for _, l := range p.Layers {
		out, err := l.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("nn: %s: %w", p.Name(), err)
		}
		cur = out
	}
	return cur, nil
}

// ElementWiseOnly reports whether every constituent non-linear layer is
// element-wise (so the whole merged layer commutes with permutation).
// SoftMax and MaxPool make this false.
func (p *PrimitiveLayer) ElementWiseOnly() bool {
	for _, l := range p.Layers {
		if _, ok := l.(ElementWise); !ok {
			return false
		}
	}
	return true
}

// Decompose expands a network's layers into primitive layers: each
// linear/non-linear layer passes through, each mixed layer splits into
// its linear and non-linear halves (Section IV-B).
func Decompose(n *Network) ([]Layer, error) {
	var out []Layer
	for _, l := range n.Layers {
		switch l.Kind() {
		case Linear, NonLinear:
			out = append(out, l)
		case Mixed:
			s, ok := l.(Splitter)
			if !ok {
				return nil, fmt.Errorf("nn: mixed layer %s does not implement Splitter", l.Name())
			}
			lin, non := s.Split()
			if lin.Kind() != Linear || non.Kind() != NonLinear {
				return nil, fmt.Errorf("nn: %s split into kinds %v/%v, want linear/non-linear", l.Name(), lin.Kind(), non.Kind())
			}
			out = append(out, lin, non)
		default:
			return nil, fmt.Errorf("nn: layer %s has unknown kind %v", l.Name(), l.Kind())
		}
	}
	return out, nil
}

// Merge groups adjacent primitive layers of the same kind into merged
// primitive layers (Section IV-B), computing the shape entering and
// leaving each merged layer.
//
// Encapsulating one primitive layer per stage would serialize excessively,
// while a single stage would co-locate linear and non-linear operations
// and break privacy; merged layers are the paper's middle ground.
func Merge(n *Network) ([]*PrimitiveLayer, error) {
	prims, err := Decompose(n)
	if err != nil {
		return nil, err
	}
	if len(prims) == 0 {
		return nil, fmt.Errorf("nn: network %q has no primitive layers", n.ModelName)
	}
	var merged []*PrimitiveLayer
	shape := n.InputShape
	var cur *PrimitiveLayer
	for _, l := range prims {
		if cur == nil || l.Kind() != cur.Kind {
			cur = &PrimitiveLayer{Index: len(merged), Kind: l.Kind(), InShape: shape.Clone()}
			merged = append(merged, cur)
		}
		out, err := l.OutputShape(shape)
		if err != nil {
			return nil, fmt.Errorf("nn: merge at %s: %w", l.Name(), err)
		}
		cur.Layers = append(cur.Layers, l)
		shape = out
		cur.OutShape = shape.Clone()
	}
	return merged, nil
}

// CheckAlternating verifies the merged sequence alternates between linear
// and non-linear kinds — the structural invariant of the PP-Stream
// workflow (the collaboration protocol assumes a linear start and a
// non-linear finish, Fig. 3).
func CheckAlternating(merged []*PrimitiveLayer) error {
	for i := 1; i < len(merged); i++ {
		if merged[i].Kind == merged[i-1].Kind {
			return fmt.Errorf("nn: merged layers %d and %d share kind %v — merge invariant broken", i-1, i, merged[i].Kind)
		}
	}
	return nil
}

// ProtocolShape validates the paper's workflow assumption: the network
// starts with a linear primitive layer and ends with a non-linear one.
func ProtocolShape(merged []*PrimitiveLayer) error {
	if len(merged) < 2 {
		return fmt.Errorf("nn: protocol needs at least one linear and one non-linear stage, got %d stage(s)", len(merged))
	}
	if merged[0].Kind != Linear {
		return fmt.Errorf("nn: protocol requires the first primitive layer to be linear, got %v", merged[0].Kind)
	}
	if merged[len(merged)-1].Kind != NonLinear {
		return fmt.Errorf("nn: protocol requires the last primitive layer to be non-linear, got %v", merged[len(merged)-1].Kind)
	}
	return nil
}
