package nn

import (
	"bytes"
	"math"
	"testing"

	"ppstream/internal/tensor"
)

func smallNet(t *testing.T) *Network {
	t.Helper()
	r := rng()
	net, err := NewNetwork("test", tensor.Shape{4},
		NewFC("fc1", 4, 6, r),
		NewReLU("relu1"),
		NewFC("fc2", 6, 3, r),
		NewSoftMax("softmax"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNetworkValidate(t *testing.T) {
	r := rng()
	if _, err := NewNetwork("bad", tensor.Shape{4}); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := NewNetwork("bad", tensor.Shape{4},
		NewFC("fc1", 4, 6, r), NewFC("fc2", 5, 3, r)); err == nil {
		t.Error("shape-mismatched chain accepted")
	}
	if _, err := NewNetwork("bad", tensor.Shape{0}, NewReLU("r")); err == nil {
		t.Error("invalid input shape accepted")
	}
}

func TestNetworkForwardPredict(t *testing.T) {
	net := smallNet(t)
	x := tensor.MustFromSlice([]float64{1, -1, 0.5, 2}, 4)
	out, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 3 {
		t.Fatalf("output size %d", out.Size())
	}
	var sum float64
	for _, v := range out.Data() {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax output sums to %v", sum)
	}
	pred, err := net.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	if pred != tensor.ArgMax(out) {
		t.Error("Predict disagrees with ArgMax")
	}
	if _, err := net.Forward(tensor.Zeros(5)); err == nil {
		t.Error("wrong input shape accepted")
	}
}

func TestNetworkAccuracy(t *testing.T) {
	net := smallNet(t)
	xs := []*tensor.Dense{tensor.Zeros(4), tensor.Ones(4)}
	p0, _ := net.Predict(xs[0])
	p1, _ := net.Predict(xs[1])
	acc, err := net.Accuracy(xs, []int{p0, p1})
	if err != nil || acc != 1 {
		t.Errorf("accuracy with true labels = %v (%v)", acc, err)
	}
	wrong0 := (p0 + 1) % 3
	acc, _ = net.Accuracy(xs, []int{wrong0, p1})
	if acc != 0.5 {
		t.Errorf("half-right accuracy = %v", acc)
	}
	if _, err := net.Accuracy(xs, []int{0}); err == nil {
		t.Error("mismatched label count accepted")
	}
	if _, err := net.Accuracy(nil, nil); err == nil {
		t.Error("empty set accepted")
	}
}

func TestNetworkCloneIndependence(t *testing.T) {
	net := smallNet(t)
	clone := net.Clone()
	x := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 4)
	orig, _ := net.Forward(x)
	// mutate the clone's first FC weights
	clone.Layers[0].(*FC).W.Data()[0] += 10
	after, _ := net.Forward(x)
	if !tensor.AllClose(orig, after, 0) {
		t.Error("mutating clone changed original")
	}
	cloneOut, _ := clone.Forward(x)
	if tensor.AllClose(orig, cloneOut, 1e-12) {
		t.Error("clone mutation had no effect on clone")
	}
}

func TestParamCount(t *testing.T) {
	net := smallNet(t)
	want := 4*6 + 6 + 6*3 + 3
	if got := net.ParamCount(); got != want {
		t.Errorf("ParamCount = %d, want %d", got, want)
	}
}

func TestDecomposeAndMerge(t *testing.T) {
	r := rng()
	ss := NewScaledSigmoid("mixed", 4)
	net, err := NewNetwork("m", tensor.Shape{4},
		NewFC("fc1", 4, 4, r), // linear
		ss,                    // mixed -> linear + nonlinear
		NewFC("fc2", 4, 2, r), // linear
		NewSoftMax("sm"),      // nonlinear
	)
	if err != nil {
		t.Fatal(err)
	}
	prims, err := Decompose(net)
	if err != nil {
		t.Fatal(err)
	}
	if len(prims) != 5 {
		t.Fatalf("Decompose produced %d primitives, want 5", len(prims))
	}
	merged, err := Merge(net)
	if err != nil {
		t.Fatal(err)
	}
	// fc1+scale | sigmoid | fc2 | softmax -> L,N,L,N
	wantKinds := []Kind{Linear, NonLinear, Linear, NonLinear}
	if len(merged) != len(wantKinds) {
		t.Fatalf("Merge produced %d stages: %v", len(merged), merged)
	}
	for i, m := range merged {
		if m.Kind != wantKinds[i] {
			t.Errorf("stage %d kind %v, want %v", i, m.Kind, wantKinds[i])
		}
	}
	if len(merged[0].Layers) != 2 {
		t.Errorf("first merged layer has %d layers, want 2 (fc1+scale)", len(merged[0].Layers))
	}
	if err := CheckAlternating(merged); err != nil {
		t.Errorf("alternation violated: %v", err)
	}
	if err := ProtocolShape(merged); err != nil {
		t.Errorf("protocol shape violated: %v", err)
	}
}

func TestMergedForwardEqualsNetwork(t *testing.T) {
	net := smallNet(t)
	merged, err := Merge(net)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{0.3, -1, 2, 0.1}, 4)
	direct, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	cur := x
	for _, m := range merged {
		cur, err = m.Forward(cur)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !tensor.AllClose(direct, cur, 1e-12) {
		t.Error("merged pipeline disagrees with direct forward")
	}
}

func TestPrimitiveLayerElementWiseOnly(t *testing.T) {
	p := &PrimitiveLayer{Kind: NonLinear, Layers: []Layer{NewReLU("r"), NewSigmoid("s")}}
	if !p.ElementWiseOnly() {
		t.Error("ReLU+Sigmoid should be element-wise only")
	}
	p2 := &PrimitiveLayer{Kind: NonLinear, Layers: []Layer{NewSoftMax("sm")}}
	if p2.ElementWiseOnly() {
		t.Error("SoftMax stage must not be element-wise")
	}
}

func TestProtocolShapeErrors(t *testing.T) {
	lin := &PrimitiveLayer{Kind: Linear}
	non := &PrimitiveLayer{Kind: NonLinear}
	if err := ProtocolShape([]*PrimitiveLayer{lin}); err == nil {
		t.Error("single stage accepted")
	}
	if err := ProtocolShape([]*PrimitiveLayer{non, lin}); err == nil {
		t.Error("non-linear start accepted")
	}
	if err := ProtocolShape([]*PrimitiveLayer{lin, non, lin}); err == nil {
		t.Error("linear finish accepted")
	}
}

func TestReplaceMaxPool(t *testing.T) {
	r := rng()
	conv, err := NewConv("c1", tensor.ConvParams{InC: 1, InH: 4, InW: 4, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork("mp", tensor.Shape{1, 4, 4},
		conv,
		NewMaxPool("pool", 2, 2),
		NewFlatten("fl"),
		NewFC("fc", 2*2*2, 2, r),
		NewSoftMax("sm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := ReplaceMaxPool(net)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range rewritten.Layers {
		if _, ok := l.(*MaxPool); ok {
			t.Fatal("MaxPool survived the rewrite")
		}
	}
	// Shapes must still chain (Validate ran inside NewNetwork), and
	// output must remain a distribution.
	x := tensor.Zeros(1, 4, 4)
	x.Fill(1)
	out, err := rewritten.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out.Data() {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("rewritten net output sums to %v", sum)
	}
}

func TestTrainLearnsSeparableData(t *testing.T) {
	r := rng()
	net, err := NewNetwork("sep", tensor.Shape{2},
		NewFC("fc1", 2, 8, r),
		NewReLU("relu"),
		NewFC("fc2", 8, 2, r),
		NewSoftMax("sm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Two linearly separable clusters.
	var xs []*tensor.Dense
	var ys []int
	for i := 0; i < 60; i++ {
		c := i % 2
		cx := float64(c*4 - 2)
		xs = append(xs, tensor.MustFromSlice([]float64{cx + r.NormFloat64()*0.3, cx + r.NormFloat64()*0.3}, 2))
		ys = append(ys, c)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 40
	if err := Train(net, xs, ys, cfg); err != nil {
		t.Fatal(err)
	}
	acc, err := net.Accuracy(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Errorf("training accuracy %v < 0.95 on separable data", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	net := smallNet(t)
	x := []*tensor.Dense{tensor.Zeros(4)}
	if err := Train(net, nil, nil, DefaultTrainConfig()); err == nil {
		t.Error("empty training set accepted")
	}
	if err := Train(net, x, []int{5}, DefaultTrainConfig()); err == nil {
		t.Error("out-of-range label accepted")
	}
	bad := DefaultTrainConfig()
	bad.Epochs = 0
	if err := Train(net, x, []int{0}, bad); err == nil {
		t.Error("zero epochs accepted")
	}
	r := rng()
	noSoftmax, _ := NewNetwork("ns", tensor.Shape{4}, NewFC("fc", 4, 2, r))
	if err := Train(noSoftmax, x, []int{0}, DefaultTrainConfig()); err == nil {
		t.Error("network without SoftMax head accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rng()
	conv, err := NewConv("c1", tensor.ConvParams{InC: 1, InH: 6, InW: 6, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	bn := NewBatchNorm("bn", 2)
	net, err := NewNetwork("roundtrip", tensor.Shape{1, 6, 6},
		conv,
		bn,
		NewReLU("relu"),
		NewMaxPool("mp", 2, 2),
		NewFlatten("fl"),
		NewFC("fc", 2*3*3, 4, r),
		NewScaledSigmoid("ss", 4),
		NewFC("fc2", 4, 2, r),
		NewSoftMax("sm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(net, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Zeros(1, 6, 6)
	for i := range x.Data() {
		x.Data()[i] = float64(i%5) / 5
	}
	want, err := net.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, got, 1e-12) {
		t.Error("loaded network computes different outputs")
	}
	if loaded.ModelName != "roundtrip" {
		t.Errorf("model name lost: %q", loaded.ModelName)
	}
	// Loaded network must remain trainable (grads allocated).
	fc := loaded.Layers[5].(*FC)
	if len(fc.Grads()) != 2 || fc.Grads()[0] == nil {
		t.Error("loaded FC lost gradient buffers")
	}
}

func TestCalibrateBatchNormPipeline(t *testing.T) {
	r := rng()
	net, err := NewNetwork("bncal", tensor.Shape{3},
		NewFC("fc", 3, 2, r),
		NewBatchNorm("bn", 2),
		NewReLU("relu"),
		NewFC("fc2", 2, 2, r),
		NewSoftMax("sm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	xs := []*tensor.Dense{
		tensor.MustFromSlice([]float64{1, 2, 3}, 3),
		tensor.MustFromSlice([]float64{-1, 0, 1}, 3),
		tensor.MustFromSlice([]float64{4, 4, 4}, 3),
	}
	if err := CalibrateBatchNorm(net, xs); err != nil {
		t.Fatal(err)
	}
	bn := net.Layers[1].(*BatchNorm)
	if bn.Mean.At(0) == 0 && bn.Mean.At(1) == 0 {
		t.Error("calibration left default statistics")
	}
	if err := CalibrateBatchNorm(net, nil); err == nil {
		t.Error("empty calibration accepted")
	}
}
