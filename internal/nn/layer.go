// Package nn implements the neural-network substrate PP-Stream operates
// on: the layer types from the paper's Section II-A (fully-connected,
// convolution, batch normalization, ReLU, Sigmoid, SoftMax, MaxPooling),
// plaintext forward inference, an SGD/backprop trainer (so the accuracy
// experiments are runnable without external frameworks), and the layer
// classification/decomposition/merging machinery of Section IV-B that
// turns a network into alternating linear and non-linear primitive layers.
package nn

import (
	"fmt"

	"ppstream/internal/tensor"
)

// Kind classifies a hidden layer by its operations, following the paper's
// Section II-A taxonomy.
type Kind int

const (
	// Linear layers contain only tensor additions and multiplications
	// with model parameters (conv, batch-norm, fully-connected).
	Linear Kind = iota
	// NonLinear layers contain only non-linear activation functions
	// (ReLU, SoftMax) or down-sampling (MaxPool).
	NonLinear
	// Mixed layers contain both, e.g. a parameterized Sigmoid that
	// scales its input with model parameters before the non-linearity.
	Mixed
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Linear:
		return "linear"
	case NonLinear:
		return "non-linear"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Layer is a neural-network hidden layer. Forward must be safe for
// concurrent use: PP-Stream's pipeline runs the same layer from many
// worker threads.
type Layer interface {
	// Name identifies the layer in logs and plans, e.g. "fc1".
	Name() string
	// Kind reports the paper's linear / non-linear / mixed taxonomy.
	Kind() Kind
	// OutputShape computes the output shape for a given input shape,
	// validating compatibility.
	OutputShape(in tensor.Shape) (tensor.Shape, error)
	// Forward applies the layer to one sample.
	Forward(x *tensor.Dense) (*tensor.Dense, error)
}

// Trainable is implemented by layers with learnable parameters. Params
// and Grads return parallel slices: Grads()[i] accumulates the loss
// gradient of Params()[i].
type Trainable interface {
	Layer
	Params() []*tensor.Dense
	Grads() []*tensor.Dense
}

// Backprop is implemented by layers that support gradient computation.
// Backward receives the layer's forward input x and the loss gradient dy
// with respect to the layer's output, accumulates parameter gradients
// (if any), and returns the gradient with respect to x.
type Backprop interface {
	Layer
	Backward(x *tensor.Dense, dy *tensor.Dense) (*tensor.Dense, error)
}

// ElementWise is implemented by non-linear layers whose function applies
// independently per element and therefore commutes with position
// permutation — the property PP-Stream's obfuscation protocol relies on
// (Section III-C). ReLU and Sigmoid are element-wise; SoftMax and
// MaxPooling are not.
type ElementWise interface {
	Layer
	// ApplyElement computes the activation for a single element.
	ApplyElement(v float64) float64
}

// Splitter is implemented by mixed layers that can decompose into a
// linear primitive layer followed by a non-linear primitive layer
// (Section IV-B).
type Splitter interface {
	Layer
	Split() (linear Layer, nonlinear Layer)
}
