package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestWritePrometheusLiveMetrics: windowed metrics ride the exposition
// as gauges (the strict 0.0.4 type set has no windowed family) and the
// whole output still passes the conformance scanner.
func TestWritePrometheusLiveMetrics(t *testing.T) {
	reg := NewRegistry("live")
	reg.Counter("serve.requests.ok").Add(7) // cumulative sibling
	reg.LiveCounter("serve.requests.ok").Add(7)
	h := reg.LiveHistogram("serve.latency")
	h.Observe(3 * time.Millisecond)
	h.Observe(5 * time.Millisecond)

	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	scanExposition(t, out)
	for _, want := range []string{
		"# TYPE ppstream_live_serve_requests_ok gauge",
		`ppstream_live_serve_requests_ok{registry="live"} 7`,
		"# TYPE ppstream_live_serve_latency_count gauge",
		`ppstream_live_serve_latency_count{registry="live"} 2`,
		"# TYPE ppstream_live_serve_latency_p50_seconds gauge",
		"# TYPE ppstream_live_serve_latency_p95_seconds gauge",
		"# TYPE ppstream_live_serve_latency_p99_seconds gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("live exposition missing %q:\n%s", want, out)
		}
	}
}

// TestWritePrometheusLiveMultiRegistry: shared live metric names across
// registries must still group under single TYPE lines.
func TestWritePrometheusLiveMultiRegistry(t *testing.T) {
	a := NewRegistry("a")
	b := NewRegistry("b")
	for _, reg := range []*Registry{a, b} {
		reg.LiveCounter("serve.requests.ok").Inc()
		reg.LiveHistogram("serve.latency").Observe(time.Millisecond)
	}
	var buf strings.Builder
	if err := WritePrometheus(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	scanExposition(t, out)
	if got := strings.Count(out, "# TYPE ppstream_live_serve_requests_ok gauge\n"); got != 1 {
		t.Errorf("%d TYPE lines for the live counter, want 1:\n%s", got, out)
	}
}

// TestHandlerLiveEndpoints drives /debug/live, /debug/slo, and
// /debug/traces through the HTTP mux, including query-parameter
// validation.
func TestHandlerLiveEndpoints(t *testing.T) {
	reg := NewRegistry("srv")
	reg.LiveCounter("serve.requests.ok").Add(3)
	reg.LiveHistogram("serve.latency").Observe(4 * time.Millisecond)

	slo, err := NewSLOEngine(SLOConfig{Specs: []SLOSpec{{Name: "avail", Objective: 0.999}}})
	if err != nil {
		t.Fatal(err)
	}
	slo.Observe(time.Millisecond, false)
	slo.Observe(0, true)

	traces, err := NewTraceStore(TraceStoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	traces.Record(testTree("t-slow", 80*time.Millisecond), nil)
	traces.Record(testTree("t-err", time.Millisecond), errors.New("boom"))

	srv := httptest.NewServer(HandlerOpts(HTTPOptions{Traces: traces, SLO: slo}, reg))
	defer srv.Close()
	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, data
	}

	code, body := get("/debug/live")
	if code != 200 {
		t.Fatalf("/debug/live status %d", code)
	}
	var live LiveSnapshot
	if err := json.Unmarshal(body, &live); err != nil {
		t.Fatalf("/debug/live payload: %v", err)
	}
	if live.Counters["serve.requests.ok"].Count != 3 || live.Histograms["serve.latency"].Count != 1 {
		t.Errorf("/debug/live snapshot %+v", live)
	}

	code, body = get("/debug/slo")
	if code != 200 {
		t.Fatalf("/debug/slo status %d", code)
	}
	var statuses []SLOStatus
	if err := json.Unmarshal(body, &statuses); err != nil {
		t.Fatalf("/debug/slo payload: %v", err)
	}
	if len(statuses) != 1 || statuses[0].Name != "avail" || statuses[0].Windows[0].Bad != 1 {
		t.Errorf("/debug/slo %+v", statuses)
	}

	code, body = get("/debug/traces?min_ms=50")
	if code != 200 {
		t.Fatalf("/debug/traces status %d", code)
	}
	var recs []TraceRecord
	if err := json.Unmarshal(body, &recs); err != nil {
		t.Fatalf("/debug/traces payload: %v", err)
	}
	if len(recs) != 1 || recs[0].Trace.ID != "t-slow" {
		t.Errorf("/debug/traces min_ms %+v", recs)
	}

	if code, _ := get("/debug/traces?id=t-err&since=10m"); code != 200 {
		t.Errorf("since=10m status %d", code)
	}
	for _, bad := range []string{"since=yesterday", "min_ms=-1", "limit=0", "limit=x"} {
		if code, _ := get("/debug/traces?" + bad); code != 400 {
			t.Errorf("%s status %d, want 400", bad, code)
		}
	}
}

// TestFlightRecordPlan: flight records carry the trace ID and backend
// plan so /debug/flight joins against the span store and the solver's
// assignment.
func TestFlightRecordPlan(t *testing.T) {
	f := NewFlightRecorder(4, 2, 4)
	f.RecordPlan(testTree("fp-1", 10*time.Millisecond), []string{"paillier-he", "ss-gc"}, nil)
	f.Record(testTree("fp-2", 20*time.Millisecond), errors.New("late"))
	dump := f.Dump()
	if len(dump.Recent) != 2 {
		t.Fatalf("recent %d", len(dump.Recent))
	}
	if dump.Recent[0].TraceID != "fp-1" || len(dump.Recent[0].Plan) != 2 || dump.Recent[0].Plan[0] != "paillier-he" {
		t.Errorf("planned record %+v", dump.Recent[0])
	}
	if dump.Recent[1].TraceID != "fp-2" || dump.Recent[1].Plan != nil || dump.Recent[1].Err != "late" {
		t.Errorf("plain record %+v", dump.Recent[1])
	}
	var buf strings.Builder
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"trace_id": "fp-1"`) || !strings.Contains(buf.String(), `"plan"`) {
		t.Errorf("flight JSON missing join fields:\n%s", buf.String())
	}
}
