package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) alongside the JSON
// snapshot, so a standard Prometheus scrape job can pull the same
// registries cmd tools read as JSON. Metric names are prefixed with
// "ppstream_" and sanitized (dots → underscores); the owning registry's
// name rides in a "registry" label so several registries can share one
// endpoint. Durations are exported in seconds, Prometheus convention.

// promName sanitizes a registry metric name into a Prometheus metric
// name component.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeLabel escapes a label value per the exposition format.
func promEscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// promFamily is one metric family: a single # TYPE line followed by
// every registry's samples for that metric name. The exposition format
// allows at most one TYPE line per metric name and requires all of a
// metric's samples to be contiguous, so families are collected across
// registries before anything is written.
type promFamily struct {
	typ   string // "counter", "gauge", or "histogram"
	lines []string
}

// WritePrometheus renders every registry in Prometheus text format.
// Counters and gauges map directly; each latency histogram becomes a
// Prometheus histogram with cumulative le-buckets in seconds plus _sum
// and _count series. Samples from different registries sharing a metric
// name are grouped under one # TYPE line (distinguished by the registry
// label); exposing one name with conflicting types is an error — the
// scrape would be rejected — and is reported instead of emitted.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	fams := map[string]*promFamily{}
	add := func(name, typ string, lines ...string) error {
		f, ok := fams[name]
		if !ok {
			fams[name] = &promFamily{typ: typ, lines: lines}
			return nil
		}
		if f.typ != typ {
			return fmt.Errorf("obs: metric %s exposed as both %s and %s across registries", name, f.typ, typ)
		}
		f.lines = append(f.lines, lines...)
		return nil
	}
	for _, r := range regs {
		if err := r.collectPrometheus(add); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		for _, line := range f.lines {
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// collectPrometheus renders the registry's samples into family lines via
// add, holding the registry lock only while reading.
func (r *Registry) collectPrometheus(add func(name, typ string, lines ...string) error) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	// promEscapeLabel already produces exposition-format escaping; %q
	// would escape the escapes (registry="quo\\\"te"), so build the label
	// with plain quoting.
	label := `{registry="` + promEscapeLabel(r.name) + `"}`

	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := "ppstream_" + promName(name)
		if err := add(m, "counter", fmt.Sprintf("%s%s %d\n", m, label, r.counters[name].Value())); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.gaugeFuncs {
		if _, shadowed := r.gauges[name]; !shadowed {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		var v int64
		if g, ok := r.gauges[name]; ok {
			v = g.Value()
		} else {
			v = r.gaugeFuncs[name]()
		}
		m := "ppstream_" + promName(name)
		if err := add(m, "gauge", fmt.Sprintf("%s%s %d\n", m, label, v)); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := "ppstream_" + promName(name) + "_seconds"
		if err := add(m, "histogram", r.hists[name].promLines(m, r.name)...); err != nil {
			return err
		}
	}

	// Windowed views export as gauges: the count over the trailing window
	// and, for histograms, interpolated quantiles in seconds. Gauges (not
	// summaries) keep the exposition inside the strict 0.0.4 type set;
	// the "live" prefix separates them from the cumulative families.
	names = names[:0]
	for name := range r.liveCounters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := "ppstream_live_" + promName(name)
		if err := add(m, "gauge", fmt.Sprintf("%s%s %d\n", m, label, r.liveCounters[name].Value())); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range r.liveHists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap := r.liveHists[name].Snapshot()
		base := "ppstream_live_" + promName(name)
		series := []struct {
			metric string
			line   string
		}{
			{base + "_count", fmt.Sprintf("%s%s %d\n", base+"_count", label, snap.Count)},
			{base + "_p50_seconds", fmt.Sprintf("%s%s %g\n", base+"_p50_seconds", label, snap.P50.Seconds())},
			{base + "_p95_seconds", fmt.Sprintf("%s%s %g\n", base+"_p95_seconds", label, snap.P95.Seconds())},
			{base + "_p99_seconds", fmt.Sprintf("%s%s %g\n", base+"_p99_seconds", label, snap.P99.Seconds())},
		}
		for _, s := range series {
			if err := add(s.metric, "gauge", s.line); err != nil {
				return err
			}
		}
	}
	return nil
}

// promLines renders the histogram's cumulative buckets as exposition
// lines. Bounds are converted from nanoseconds to seconds; the overflow
// bucket maps to le="+Inf".
func (h *Histogram) promLines(metric, registry string) []string {
	reg := promEscapeLabel(registry)
	lines := make([]string, 0, len(h.buckets)+2)
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = fmt.Sprintf("%g", float64(h.bounds[i])/1e9)
		}
		lines = append(lines, fmt.Sprintf("%s_bucket{registry=\"%s\",le=\"%s\"} %d\n", metric, reg, le, cum))
	}
	lines = append(lines,
		fmt.Sprintf("%s_sum{registry=\"%s\"} %g\n", metric, reg, float64(h.sum.Load())/1e9),
		fmt.Sprintf("%s_count{registry=\"%s\"} %d\n", metric, reg, h.count.Load()))
	return lines
}
