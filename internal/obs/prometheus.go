package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4) alongside the JSON
// snapshot, so a standard Prometheus scrape job can pull the same
// registries cmd tools read as JSON. Metric names are prefixed with
// "ppstream_" and sanitized (dots → underscores); the owning registry's
// name rides in a "registry" label so several registries can share one
// endpoint. Durations are exported in seconds, Prometheus convention.

// promName sanitizes a registry metric name into a Prometheus metric
// name component.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscapeLabel escapes a label value per the exposition format.
func promEscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WritePrometheus renders every registry in Prometheus text format.
// Counters and gauges map directly; each latency histogram becomes a
// Prometheus histogram with cumulative le-buckets in seconds plus _sum
// and _count series.
func WritePrometheus(w io.Writer, regs ...*Registry) error {
	for _, r := range regs {
		if err := r.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

func (r *Registry) writePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	label := fmt.Sprintf(`{registry=%q}`, promEscapeLabel(r.name))

	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := "ppstream_" + promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", m, m, label, r.counters[name].Value()); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range r.gauges {
		names = append(names, name)
	}
	for name := range r.gaugeFuncs {
		if _, shadowed := r.gauges[name]; !shadowed {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		var v int64
		if g, ok := r.gauges[name]; ok {
			v = g.Value()
		} else {
			v = r.gaugeFuncs[name]()
		}
		m := "ppstream_" + promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %d\n", m, m, label, v); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range r.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := r.hists[name].writePrometheus(w, "ppstream_"+promName(name)+"_seconds", r.name); err != nil {
			return err
		}
	}
	return nil
}

// writePrometheus renders the histogram's cumulative buckets. Bounds
// are converted from nanoseconds to seconds; the overflow bucket maps
// to le="+Inf".
func (h *Histogram) writePrometheus(w io.Writer, metric, registry string) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", metric); err != nil {
		return err
	}
	reg := promEscapeLabel(registry)
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = fmt.Sprintf("%g", float64(h.bounds[i])/1e9)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{registry=%q,le=%q} %d\n", metric, reg, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum{registry=%q} %g\n%s_count{registry=%q} %d\n",
		metric, reg, float64(h.sum.Load())/1e9, metric, reg, h.count.Load())
	return err
}
