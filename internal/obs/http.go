package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
)

// HTTPOptions configures the exposition endpoint beyond the registries.
type HTTPOptions struct {
	// Ready, when non-nil, gates /readyz: the endpoint answers 200 only
	// while Ready() is true (503 otherwise). /healthz is liveness and
	// always answers 200. A nil Ready leaves /readyz always-ready.
	Ready func() bool
	// Flight, when non-nil, mounts /debug/flight serving the recorder's
	// JSON dump (recent, slowest, and errored traces with cost profiles).
	Flight *FlightRecorder
}

// Handler serves the registries' snapshots at /metrics (and /) — JSON
// by default, Prometheus text format under /metrics/prometheus or via
// ?format=prometheus / an Accept header preferring text/plain — and
// mounts /healthz, /readyz, and the standard pprof handlers under
// /debug/pprof/, so a running ppserver can be inspected with curl,
// a Prometheus scrape job, and `go tool pprof`.
func Handler(regs ...*Registry) http.Handler {
	return HandlerOpts(HTTPOptions{}, regs...)
}

// wantsPrometheus decides the exposition format for /metrics: an
// explicit ?format= wins; otherwise an Accept header that asks for
// text/plain or OpenMetrics (the Prometheus scraper's preference)
// without mentioning JSON selects the text format.
func wantsPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prometheus", "prom":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	if strings.Contains(accept, "json") {
		return false
	}
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// HandlerOpts is Handler with explicit endpoint options.
func HandlerOpts(opts HTTPOptions, regs ...*Registry) http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter) {
		snaps := make([]Snapshot, len(regs))
		for i, r := range regs {
			snaps[i] = r.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		var err error
		if len(snaps) == 1 {
			err = enc.Encode(snaps[0])
		} else {
			err = enc.Encode(snaps)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	writeProm := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, regs...); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	metrics := func(w http.ResponseWriter, req *http.Request) {
		if wantsPrometheus(req) {
			writeProm(w)
			return
		}
		writeJSON(w)
	}
	mux.HandleFunc("/metrics", metrics)
	mux.HandleFunc("/metrics/prometheus", func(w http.ResponseWriter, _ *http.Request) { writeProm(w) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Ready != nil && !opts.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		metrics(w, req)
	})
	if opts.Flight != nil {
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := opts.Flight.WriteJSON(w); err != nil {
				// Headers are likely already out; nothing to do for the
				// client beyond noting the failure in the status if possible.
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the exposition endpoint on addr (":0" picks a free port)
// and returns the bound address plus a shutdown function. The server
// runs until shutdown is called.
func Serve(addr string, regs ...*Registry) (string, func(context.Context) error, error) {
	return ServeOpts(addr, HTTPOptions{}, regs...)
}

// ServeOpts is Serve with explicit endpoint options (readiness gating).
func ServeOpts(addr string, opts HTTPOptions, regs ...*Registry) (string, func(context.Context) error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: HandlerOpts(opts, regs...)}
	go srv.Serve(l)
	return l.Addr().String(), srv.Shutdown, nil
}
