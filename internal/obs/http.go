package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"
)

// HTTPOptions configures the exposition endpoint beyond the registries.
type HTTPOptions struct {
	// Ready, when non-nil, gates /readyz: the endpoint answers 200 only
	// while Ready() is true (503 otherwise). /healthz is liveness and
	// always answers 200. A nil Ready leaves /readyz always-ready.
	Ready func() bool
	// Flight, when non-nil, mounts /debug/flight serving the recorder's
	// JSON dump (recent, slowest, and errored traces with cost profiles).
	Flight *FlightRecorder
	// Traces, when non-nil, mounts /debug/traces serving the tail-sampled
	// span store. Query parameters: since (RFC3339 instant or a trailing
	// duration like "5m"), min_ms (minimum request duration in
	// milliseconds), id (exact trace ID), limit.
	Traces *TraceStore
	// SLO, when non-nil, mounts /debug/slo serving every objective's
	// multi-window burn-rate evaluation.
	SLO *SLOEngine
}

// Handler serves the registries' snapshots at /metrics (and /) — JSON
// by default, Prometheus text format under /metrics/prometheus or via
// ?format=prometheus / an Accept header preferring text/plain — and
// mounts /healthz, /readyz, and the standard pprof handlers under
// /debug/pprof/, so a running ppserver can be inspected with curl,
// a Prometheus scrape job, and `go tool pprof`.
func Handler(regs ...*Registry) http.Handler {
	return HandlerOpts(HTTPOptions{}, regs...)
}

// wantsPrometheus decides the exposition format for /metrics: an
// explicit ?format= wins; otherwise an Accept header that asks for
// text/plain or OpenMetrics (the Prometheus scraper's preference)
// without mentioning JSON selects the text format.
func wantsPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prometheus", "prom":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	if strings.Contains(accept, "json") {
		return false
	}
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// HandlerOpts is Handler with explicit endpoint options.
func HandlerOpts(opts HTTPOptions, regs ...*Registry) http.Handler {
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter) {
		snaps := make([]Snapshot, len(regs))
		for i, r := range regs {
			snaps[i] = r.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		var err error
		if len(snaps) == 1 {
			err = enc.Encode(snaps[0])
		} else {
			err = enc.Encode(snaps)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	writeProm := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, regs...); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	metrics := func(w http.ResponseWriter, req *http.Request) {
		if wantsPrometheus(req) {
			writeProm(w)
			return
		}
		writeJSON(w)
	}
	mux.HandleFunc("/metrics", metrics)
	mux.HandleFunc("/metrics/prometheus", func(w http.ResponseWriter, _ *http.Request) { writeProm(w) })
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Ready != nil && !opts.Ready() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		metrics(w, req)
	})
	mux.HandleFunc("/debug/live", func(w http.ResponseWriter, _ *http.Request) {
		snaps := make([]LiveSnapshot, len(regs))
		for i, r := range regs {
			snaps[i] = r.LiveSnapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		var err error
		if len(snaps) == 1 {
			err = enc.Encode(snaps[0])
		} else {
			err = enc.Encode(snaps)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	if opts.Traces != nil {
		mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
			q, err := parseTraceQuery(req)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			if err := opts.Traces.WriteJSON(w, q); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if opts.SLO != nil {
		mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(opts.SLO.Evaluate()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	if opts.Flight != nil {
		mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			if err := opts.Flight.WriteJSON(w); err != nil {
				// Headers are likely already out; nothing to do for the
				// client beyond noting the failure in the status if possible.
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// parseTraceQuery reads /debug/traces query parameters: since accepts
// an RFC3339 instant or a trailing duration ("5m" = the last five
// minutes); min_ms is a float of milliseconds; id matches one trace;
// limit caps the result count.
func parseTraceQuery(req *http.Request) (TraceQuery, error) {
	var q TraceQuery
	vals := req.URL.Query()
	if s := vals.Get("since"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			q.Since = time.Now().Add(-d)
		} else if t, err := time.Parse(time.RFC3339, s); err == nil {
			q.Since = t
		} else {
			return q, fmt.Errorf("since=%q is neither a duration nor RFC3339", s)
		}
	}
	if s := vals.Get("min_ms"); s != "" {
		ms, err := strconv.ParseFloat(s, 64)
		if err != nil || ms < 0 {
			return q, fmt.Errorf("min_ms=%q is not a non-negative number", s)
		}
		q.MinDur = time.Duration(ms * float64(time.Millisecond))
	}
	q.ID = vals.Get("id")
	if s := vals.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return q, fmt.Errorf("limit=%q is not a positive integer", s)
		}
		q.Limit = n
	}
	return q, nil
}

// Serve starts the exposition endpoint on addr (":0" picks a free port)
// and returns the bound address plus a shutdown function. The server
// runs until shutdown is called.
func Serve(addr string, regs ...*Registry) (string, func(context.Context) error, error) {
	return ServeOpts(addr, HTTPOptions{}, regs...)
}

// ServeOpts is Serve with explicit endpoint options (readiness gating).
func ServeOpts(addr string, opts HTTPOptions, regs ...*Registry) (string, func(context.Context) error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: HandlerOpts(opts, regs...)}
	go srv.Serve(l)
	return l.Addr().String(), srv.Shutdown, nil
}
