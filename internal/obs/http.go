package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registries' JSON snapshots at /metrics (and /) and
// mounts the standard pprof handlers under /debug/pprof/, so a running
// ppserver can be inspected with curl and `go tool pprof`.
func Handler(regs ...*Registry) http.Handler {
	mux := http.NewServeMux()
	metrics := func(w http.ResponseWriter, req *http.Request) {
		snaps := make([]Snapshot, len(regs))
		for i, r := range regs {
			snaps[i] = r.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		var err error
		if len(snaps) == 1 {
			err = enc.Encode(snaps[0])
		} else {
			err = enc.Encode(snaps)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	mux.HandleFunc("/metrics", metrics)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		metrics(w, req)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the exposition endpoint on addr (":0" picks a free port)
// and returns the bound address plus a shutdown function. The server
// runs until shutdown is called.
func Serve(addr string, regs ...*Registry) (string, func(context.Context) error, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(regs...)}
	go srv.Serve(l)
	return l.Addr().String(), srv.Shutdown, nil
}
