package obs

import (
	"strings"
	"testing"
	"time"
)

func TestParseSLOSpecs(t *testing.T) {
	specs, err := ParseSLOSpecs("p99=250ms, avail=99.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d specs", len(specs))
	}
	if specs[0].Name != "p99" || specs[0].Objective != 0.99 || specs[0].LatencyTarget != 250*time.Millisecond {
		t.Errorf("latency spec %+v", specs[0])
	}
	if specs[1].Name != "avail" || specs[1].Objective < 0.9989 || specs[1].Objective > 0.9991 || specs[1].LatencyTarget != 0 {
		t.Errorf("availability spec %+v", specs[1])
	}

	for _, bad := range []string{
		"", "p99", "p99=", "p99=fast", "p0=1s", "p100=1s",
		"avail=0", "avail=100", "avail=x", "uptime=99", "p99=250ms,p99=1s",
	} {
		if _, err := ParseSLOSpecs(bad); err == nil {
			t.Errorf("ParseSLOSpecs(%q) accepted", bad)
		}
	}
}

// TestSLOBurnMath pins the burn-rate arithmetic: burn = (bad/total) /
// (1 - objective).
func TestSLOBurnMath(t *testing.T) {
	e, err := NewSLOEngine(SLOConfig{
		Specs: []SLOSpec{{Name: "avail", Objective: 0.99}},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	e.SetClock(func() time.Time { return now })
	for i := 0; i < 90; i++ {
		e.Observe(time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		e.Observe(0, true)
	}
	st := e.Evaluate()[0]
	// 10% bad against a 1% budget: burn 10 in every window.
	for _, wnd := range st.Windows {
		if wnd.Good != 90 || wnd.Bad != 10 {
			t.Errorf("window %v counts %d/%d", wnd.Window, wnd.Good, wnd.Bad)
		}
		if wnd.Burn < 9.99 || wnd.Burn > 10.01 {
			t.Errorf("window %v burn %v, want 10", wnd.Window, wnd.Burn)
		}
	}
	if st.FastAlert {
		t.Error("burn 10 < 14.4 must not fast-alert")
	}
	if !st.SlowAlert {
		t.Error("burn 10 >= 6 must slow-alert")
	}
}

// TestSLOLatencyObjective: slow-but-successful requests are bad under a
// latency objective, good under availability.
func TestSLOLatencyObjective(t *testing.T) {
	e, err := NewSLOEngine(SLOConfig{Specs: []SLOSpec{
		{Name: "p99", Objective: 0.99, LatencyTarget: 100 * time.Millisecond},
		{Name: "avail", Objective: 0.99},
	}})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	e.SetClock(func() time.Time { return now })
	e.Observe(500*time.Millisecond, false) // slow success
	e.Observe(time.Millisecond, false)     // fast success
	statuses := e.Evaluate()
	byName := map[string]SLOStatus{}
	for _, st := range statuses {
		byName[st.Name] = st
	}
	if got := byName["p99"].Windows[0]; got.Bad != 1 || got.Good != 1 {
		t.Errorf("latency objective counts %+v", got)
	}
	if got := byName["avail"].Windows[0]; got.Bad != 0 || got.Good != 2 {
		t.Errorf("availability objective counts %+v", got)
	}
}

// TestSLOFastAlertLifecycle: a latency spike trips the fast alert (all
// traffic inside both fast windows), and the alert clears once the bad
// observations age past the long fast window.
func TestSLOFastAlertLifecycle(t *testing.T) {
	reg := NewRegistry("slo")
	e, err := NewSLOEngine(SLOConfig{
		Specs:    []SLOSpec{{Name: "avail", Objective: 0.999}},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	e.SetClock(func() time.Time { return now })

	for i := 0; i < 10; i++ {
		e.Observe(time.Millisecond, false)
	}
	if e.Evaluate()[0].FastAlert {
		t.Fatal("healthy traffic fast-alerted")
	}
	// Spike: half the traffic fails. Burn = 0.5/0.001 = 500 >> 14.4 in
	// both fast windows.
	for i := 0; i < 10; i++ {
		e.Observe(0, true)
	}
	st := e.Evaluate()[0]
	if !st.FastAlert {
		t.Fatalf("spike did not fast-alert: %+v", st)
	}
	snap := reg.Snapshot()
	if snap.Gauges["slo.avail.alert.fast"] != 1 {
		t.Errorf("fast gauge %d, want 1", snap.Gauges["slo.avail.alert.fast"])
	}
	if snap.Gauges["slo.avail.burn_short_milli"] < 14400 {
		t.Errorf("burn gauge %d below threshold", snap.Gauges["slo.avail.burn_short_milli"])
	}
	// The budget heals: past the 1h fast-long window the alert clears.
	now = now.Add(DefaultSLOFastLong + time.Minute)
	e.Observe(time.Millisecond, false)
	if st := e.Evaluate()[0]; st.FastAlert {
		t.Errorf("alert still firing after the window healed: %+v", st)
	}
}

func TestSLOEngineNilAndErrors(t *testing.T) {
	var e *SLOEngine
	e.Observe(time.Second, true) // must not panic
	if e.Evaluate() != nil {
		t.Error("nil engine evaluated non-nil")
	}
	if _, err := NewSLOEngine(SLOConfig{}); err == nil {
		t.Error("empty spec list accepted")
	}
	if _, err := NewSLOEngine(SLOConfig{Specs: []SLOSpec{{Name: "x", Objective: 1.5}}}); err == nil {
		t.Error("objective out of range accepted")
	}
	if _, err := NewSLOEngine(SLOConfig{Specs: []SLOSpec{
		{Name: "x", Objective: 0.9}, {Name: "x", Objective: 0.99},
	}}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate spec: %v", err)
	}
}
