package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, active sessions).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics. Lookup methods get-or-create
// under a short lock; the returned primitives are then updated lock-free,
// so callers should hold onto them rather than re-looking up per
// observation on hot paths.
type Registry struct {
	name string

	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() int64
	hists      map[string]*Histogram

	// Live (windowed) views: same names as their cumulative siblings,
	// separate namespace in snapshots and expositions.
	liveCounters map[string]*WindowedCounter
	liveHists    map[string]*WindowedHistogram
}

// NewRegistry creates an empty registry with the given name (shown in
// snapshots so multiple registries can be told apart).
func NewRegistry(name string) *Registry {
	return &Registry{
		name:         name,
		counters:     map[string]*Counter{},
		gauges:       map[string]*Gauge{},
		gaugeFuncs:   map[string]func() int64{},
		hists:        map[string]*Histogram{},
		liveCounters: map[string]*WindowedCounter{},
		liveHists:    map[string]*WindowedHistogram{},
	}
}

// Name returns the registry's name.
func (r *Registry) Name() string { return r.name }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a callback evaluated at snapshot time — used for
// values that already live elsewhere, like channel-edge queue depths.
// Re-registering a name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	r.gaugeFuncs[name] = fn
	r.mu.Unlock()
}

// Histogram returns the named latency histogram, creating it (with the
// default exponential bounds) on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// LiveCounter returns the named windowed counter (default live-window
// geometry: one-second buckets spanning the last minute), creating it on
// first use. Live metrics reuse the names of their cumulative siblings —
// they live in a separate namespace in snapshots and expositions.
func (r *Registry) LiveCounter(name string) *WindowedCounter {
	r.mu.RLock()
	c := r.liveCounters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.liveCounters[name]; c == nil {
		c = NewWindowedCounter(DefaultLiveBucket, DefaultLiveBuckets)
		r.liveCounters[name] = c
	}
	return c
}

// LiveHistogram returns the named windowed latency histogram (default
// live-window geometry), creating it on first use.
func (r *Registry) LiveHistogram(name string) *WindowedHistogram {
	r.mu.RLock()
	h := r.liveHists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.liveHists[name]; h == nil {
		h = NewWindowedHistogram(DefaultLiveBucket, DefaultLiveBuckets)
		r.liveHists[name] = h
	}
	return h
}

// Snapshot is a JSON-marshalable point-in-time view of a registry.
type Snapshot struct {
	Name       string                       `json:"name"`
	TakenAt    time.Time                    `json:"taken_at"`
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`

	// Windowed views (last-minute rates/quantiles), when registered.
	LiveCounters   map[string]WindowedCounterSnapshot   `json:"live_counters,omitempty"`
	LiveHistograms map[string]WindowedHistogramSnapshot `json:"live_histograms,omitempty"`
}

// Snapshot captures all metrics. Gauge callbacks are evaluated while the
// registry lock is held read-only; they must not call back into the
// registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Name:       r.name,
		TakenAt:    time.Now().UTC(),
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFuncs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	if len(r.liveCounters) > 0 {
		s.LiveCounters = make(map[string]WindowedCounterSnapshot, len(r.liveCounters))
		for name, c := range r.liveCounters {
			s.LiveCounters[name] = c.Snapshot()
		}
	}
	if len(r.liveHists) > 0 {
		s.LiveHistograms = make(map[string]WindowedHistogramSnapshot, len(r.liveHists))
		for name, h := range r.liveHists {
			s.LiveHistograms[name] = h.Snapshot()
		}
	}
	return s
}

// LiveSnapshot is the /debug/live payload: only the windowed views, so
// pollers (ppbench top) get current rates without the cumulative bulk.
type LiveSnapshot struct {
	Name       string                               `json:"name"`
	TakenAt    time.Time                            `json:"taken_at"`
	Counters   map[string]WindowedCounterSnapshot   `json:"counters"`
	Histograms map[string]WindowedHistogramSnapshot `json:"histograms"`
}

// LiveSnapshot captures only the windowed metrics.
func (r *Registry) LiveSnapshot() LiveSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := LiveSnapshot{
		Name:       r.name,
		TakenAt:    time.Now().UTC(),
		Counters:   make(map[string]WindowedCounterSnapshot, len(r.liveCounters)),
		Histograms: make(map[string]WindowedHistogramSnapshot, len(r.liveHists)),
	}
	for name, c := range r.liveCounters {
		s.Counters[name] = c.Snapshot()
	}
	for name, h := range r.liveHists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}
