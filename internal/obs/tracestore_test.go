package obs

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func testTree(id string, total time.Duration) *TraceTree {
	return &TraceTree{
		ID:    id,
		Total: total,
		Segments: []Segment{
			{Party: "client", Name: "encrypt", Round: -1, Dur: total / 2},
			{Party: "server", Name: "kernel", Round: 0, Dur: total / 2},
		},
	}
}

// TestTraceStoreRetentionReasons: errors always kept, the slowest K of
// a window kept, everything else dropped when sampling is off.
func TestTraceStoreRetentionReasons(t *testing.T) {
	reg := NewRegistry("ts")
	ts, err := NewTraceStore(TraceStoreConfig{SlowestK: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1_700_000_000, 0)
	ts.SetClock(func() time.Time { return now })

	if reason, kept := ts.Record(testTree("err1", time.Millisecond), errors.New("boom")); !kept || reason != TraceKeptError {
		t.Fatalf("errored request: %q %v", reason, kept)
	}
	// First two completions seed the slowest-K window.
	for i, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond} {
		if reason, kept := ts.Record(testTree(fmt.Sprintf("slow%d", i), d), nil); !kept || reason != TraceKeptSlow {
			t.Fatalf("seed %d: %q %v", i, reason, kept)
		}
	}
	// Faster than both retained durations, sampling off: dropped.
	if _, kept := ts.Record(testTree("fast", time.Millisecond), nil); kept {
		t.Fatal("unremarkable request retained")
	}
	// Slower than the window's fastest retained: replaces it.
	if reason, kept := ts.Record(testTree("slower", 30*time.Millisecond), nil); !kept || reason != TraceKeptSlow {
		t.Fatalf("slow replacement: %q %v", reason, kept)
	}
	// The window resets with the clock: a modest request is slowest-K
	// again in the fresh window.
	now = now.Add(2 * time.Minute)
	if reason, kept := ts.Record(testTree("fresh", 2*time.Millisecond), nil); !kept || reason != TraceKeptSlow {
		t.Fatalf("fresh window: %q %v", reason, kept)
	}

	snap := reg.Snapshot()
	if snap.Counters["tracestore.kept.error"] != 1 ||
		snap.Counters["tracestore.kept.slow"] != 4 ||
		snap.Counters["tracestore.dropped"] != 1 {
		t.Errorf("retention counters %+v", snap.Counters)
	}

	// The error record answers an ID query.
	recs, err := ts.Query(TraceQuery{ID: "err1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Err != "boom" || recs[0].Reason != TraceKeptError {
		t.Errorf("ID query %+v", recs)
	}
	// MinDur filters the fast seeds out.
	recs, err = ts.Query(TraceQuery{MinDur: 25 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Trace.ID != "slower" {
		t.Errorf("MinDur query %+v", recs)
	}
}

// TestTraceSampledDeterministic: the hash-of-ID decision is stable (both
// parties agree), respects the edges, and lands near the target rate.
func TestTraceSampledDeterministic(t *testing.T) {
	if TraceSampled("abc", 0) || TraceSampled("", 0.5) {
		t.Error("prob 0 / empty ID must never sample")
	}
	if !TraceSampled("abc", 1) {
		t.Error("prob 1 must always sample")
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("trace-%d", i)
		a, b := TraceSampled(id, 0.2), TraceSampled(id, 0.2)
		if a != b {
			t.Fatalf("non-deterministic verdict for %s", id)
		}
		if a {
			hits++
		}
	}
	if hits < 120 || hits > 290 {
		t.Errorf("sampled %d of 1000 at prob 0.2", hits)
	}
}

// TestTraceStoreRotationAndPrune: the span log rotates on size and old
// files are pruned, while Query stays authoritative across files.
func TestTraceStoreRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	ts, err := NewTraceStore(TraceStoreConfig{
		Dir:          dir,
		MaxFileBytes: 2048,
		MaxFiles:     2,
		SampleProb:   1, // keep everything: rotation is the subject
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 64
	for i := 0; i < total; i++ {
		if _, kept := ts.Record(testTree(fmt.Sprintf("rot-%03d", i), time.Millisecond), nil); !kept {
			t.Fatalf("record %d dropped", i)
		}
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var logs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".jsonl") {
			logs = append(logs, e.Name())
			if fi, err := e.Info(); err == nil && fi.Size() > 2048+1024 {
				t.Errorf("log %s overgrew rotation bound: %d bytes", e.Name(), fi.Size())
			}
		}
	}
	if len(logs) == 0 || len(logs) > 2 {
		t.Fatalf("want 1..2 rotated logs, got %v", logs)
	}

	// Disk is authoritative: the oldest records were pruned with their
	// files, the newest survive.
	recs, err := ts.Query(TraceQuery{Limit: total})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || len(recs) >= total {
		t.Fatalf("disk query returned %d of %d (want pruned subset)", len(recs), total)
	}
	if last := recs[len(recs)-1].Trace.ID; last != fmt.Sprintf("rot-%03d", total-1) {
		t.Errorf("newest record %s lost", last)
	}

	// Reopening resumes after the highest sequence instead of clobbering.
	ts2, err := NewTraceStore(TraceStoreConfig{Dir: dir, MaxFileBytes: 2048, MaxFiles: 2, SampleProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, kept := ts2.Record(testTree("resumed", time.Millisecond), nil); !kept {
		t.Fatal("post-resume record dropped")
	}
	if err := ts2.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err = ts2.Query(TraceQuery{ID: "resumed"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("resumed record not queryable: %+v", recs)
	}
}

// TestTraceStoreTornLine: a torn final line (crash mid-write) is skipped
// instead of failing the whole query.
func TestTraceStoreTornLine(t *testing.T) {
	dir := t.TempDir()
	ts, err := NewTraceStore(TraceStoreConfig{Dir: dir, SampleProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts.Record(testTree("whole", time.Millisecond), nil)
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(filepath.Join(dir, traceLogName(0)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"when":"2026-01-01T00:00:00Z","reason":"slow","trace":{"trace_`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := ts.Query(TraceQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Trace.ID != "whole" {
		t.Errorf("torn-line query %+v", recs)
	}
}

// TestTraceStoreMemRing: without a directory the memory ring is bounded
// and newest-biased.
func TestTraceStoreMemRing(t *testing.T) {
	ts, err := NewTraceStore(TraceStoreConfig{MemRecords: 4, SampleProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		ts.Record(testTree(fmt.Sprintf("m%d", i), time.Millisecond), nil)
	}
	recs, err := ts.Query(TraceQuery{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[0].Trace.ID != "m6" || recs[3].Trace.ID != "m9" {
		t.Errorf("mem ring %+v", recs)
	}
}

// TestTraceStoreNil: a nil store ignores everything.
func TestTraceStoreNil(t *testing.T) {
	var ts *TraceStore
	if _, kept := ts.Record(testTree("x", time.Second), nil); kept {
		t.Error("nil store retained")
	}
	if recs, err := ts.Query(TraceQuery{}); err != nil || recs != nil {
		t.Error("nil store query")
	}
	if err := ts.Close(); err != nil {
		t.Error(err)
	}
}

// TestTraceStoreConcurrent hammers Record and Query together under
// -race, with the span log on disk so rotation races are exercised too.
func TestTraceStoreConcurrent(t *testing.T) {
	ts, err := NewTraceStore(TraceStoreConfig{
		Dir:          t.TempDir(),
		MaxFileBytes: 4096,
		MaxFiles:     2,
		SampleProb:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ts.Record(testTree(fmt.Sprintf("c%d-%d", w, i), time.Duration(i)*time.Millisecond), nil)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := ts.Query(TraceQuery{MinDur: time.Millisecond}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}
