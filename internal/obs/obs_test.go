package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// Uniform 1µs..1000µs: p50 ≈ 500µs, p99 ≈ 990µs.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count %d, want 1000", s.Count)
	}
	if s.Min != time.Microsecond {
		t.Errorf("min %v, want 1µs", s.Min)
	}
	if s.Max != 1000*time.Microsecond {
		t.Errorf("max %v, want 1000µs", s.Max)
	}
	wantMean := time.Duration(500500) * time.Nanosecond / 1 // (1+..+1000)/1000 µs = 500.5µs
	if diff := s.Mean - wantMean; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("mean %v, want ≈%v", s.Mean, wantMean)
	}
	within := func(got, want time.Duration, tol float64) bool {
		lo := time.Duration(float64(want) * (1 - tol))
		hi := time.Duration(float64(want) * (1 + tol))
		return got >= lo && got <= hi
	}
	if !within(s.P50, 500*time.Microsecond, 0.25) {
		t.Errorf("p50 %v, want ≈500µs", s.P50)
	}
	if !within(s.P95, 950*time.Microsecond, 0.25) {
		t.Errorf("p95 %v, want ≈950µs", s.P95)
	}
	if !within(s.P99, 990*time.Microsecond, 0.25) {
		t.Errorf("p99 %v, want ≈990µs", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v max=%v", s.P50, s.P95, s.P99, s.Max)
	}
}

func TestHistogramEmptyAndClamped(t *testing.T) {
	h := NewHistogram()
	if s := h.Snapshot(); s.Count != 0 || s.P99 != 0 {
		t.Errorf("empty histogram snapshot not zero: %+v", s)
	}
	h.Observe(-5 * time.Second) // clamped to zero
	if s := h.Snapshot(); s.Count != 1 || s.Min != 0 {
		t.Errorf("negative observation not clamped: %+v", s)
	}
	// Overflow bucket: far beyond the last bound.
	h2 := NewHistogram()
	h2.Observe(10 * time.Minute)
	if s := h2.Snapshot(); s.Max != 10*time.Minute || s.P99 != 10*time.Minute {
		t.Errorf("overflow observation mishandled: %+v", s)
	}
}

// TestHistogramDegenerateQuantiles covers the empty and single-bucket
// report paths: no sample may ever surface as a bucket upper bound.
func TestHistogramDegenerateQuantiles(t *testing.T) {
	// Empty histogram: every quantile is 0, not a bucket bound.
	h := NewHistogram()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}

	// Single sample: all percentiles collapse to the sample itself,
	// even though its bucket's upper bound is 4ms.
	h = NewHistogram()
	const v = 2500 * time.Microsecond
	h.Observe(v)
	s := h.Snapshot()
	if s.P50 != v || s.P95 != v || s.P99 != v {
		t.Errorf("single-sample percentiles %v/%v/%v, want all %v", s.P50, s.P95, s.P99, v)
	}
	if got := h.Quantile(1); got != v {
		t.Errorf("single-sample Quantile(1) = %v, want %v", got, v)
	}

	// Single-bucket pile-up of identical values: the min/max clamp keeps
	// interpolation at the observed value, not the bucket bound.
	h = NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(3 * time.Millisecond)
	}
	s = h.Snapshot()
	if s.P50 != 3*time.Millisecond || s.P99 != 3*time.Millisecond {
		t.Errorf("single-bucket percentiles p50=%v p99=%v, want 3ms", s.P50, s.P99)
	}
}

// TestHistogramQuantileEdgeInputs checks that out-of-range and NaN
// quantile requests stay finite and ordered.
func TestHistogramQuantileEdgeInputs(t *testing.T) {
	h := NewHistogram()
	h.Observe(time.Millisecond)
	h.Observe(9 * time.Millisecond)
	if got := h.Quantile(math.NaN()); got != 0 {
		t.Errorf("Quantile(NaN) = %v, want 0", got)
	}
	if got := h.Quantile(-0.5); got != time.Millisecond {
		t.Errorf("Quantile(-0.5) = %v, want min 1ms", got)
	}
	if got := h.Quantile(2); got < time.Millisecond || got > 9*time.Millisecond {
		t.Errorf("Quantile(2) = %v, want within [min,max]", got)
	}
	for _, q := range []float64{0.01, 0.5, 0.9, 1} {
		got := h.Quantile(q)
		if got < time.Millisecond || got > 9*time.Millisecond {
			t.Errorf("Quantile(%v) = %v escaped [min,max]", q, got)
		}
	}
}

// TestHistogramConcurrency hammers one histogram from parallel writers
// while readers snapshot it; run with -race.
func TestHistogramConcurrency(t *testing.T) {
	h := NewHistogram()
	const writers, perWriter = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.Snapshot()
				}
			}
		}()
	}
	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*perWriter+i) * time.Nanosecond)
			}
		}(w)
	}
	writeWG.Wait()
	close(stop)
	wg.Wait()
	if got := h.Snapshot().Count; got != writers*perWriter {
		t.Errorf("count %d, want %d", got, writers*perWriter)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry("test")
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter did not return the same instance")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge did not return the same instance")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram did not return the same instance")
	}
	r.Counter("c").Add(3)
	r.Gauge("g").Set(-7)
	r.GaugeFunc("fn", func() int64 { return 42 })
	r.Histogram("h").Observe(time.Millisecond)
	s := r.Snapshot()
	if s.Name != "test" {
		t.Errorf("snapshot name %q", s.Name)
	}
	if s.Counters["c"] != 3 {
		t.Errorf("counter %d, want 3", s.Counters["c"])
	}
	if s.Gauges["g"] != -7 || s.Gauges["fn"] != 42 {
		t.Errorf("gauges %v", s.Gauges)
	}
	if s.Histograms["h"].Count != 1 {
		t.Errorf("histogram count %d, want 1", s.Histograms["h"].Count)
	}
}

// TestRegistryConcurrency creates and updates metrics from many
// goroutines while snapshots are taken; run with -race.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry("race")
	names := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := names[(w+i)%len(names)]
				r.Counter(n).Inc()
				r.Gauge(n).Add(1)
				r.Histogram(n).Observe(time.Duration(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	var total uint64
	for _, n := range names {
		total += s.Counters[n]
	}
	if total != 8*2000 {
		t.Errorf("total counter %d, want %d", total, 8*2000)
	}
}
