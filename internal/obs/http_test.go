package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestHandlerServesSnapshotAndPprof(t *testing.T) {
	reg := NewRegistry("unit")
	reg.Counter("requests").Add(5)
	reg.Histogram("stage.encrypt.busy").Observe(3 * time.Millisecond)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Name != "unit" || snap.Counters["requests"] != 5 {
		t.Errorf("snapshot %+v", snap)
	}
	h, ok := snap.Histograms["stage.encrypt.busy"]
	if !ok || h.Count != 1 || h.P50 <= 0 {
		t.Errorf("histogram snapshot %+v (ok=%v)", h, ok)
	}

	pp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, pp.Body)
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/: %d", pp.StatusCode)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	reg := NewRegistry("serve")
	addr, shutdown, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /metrics via Serve: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
