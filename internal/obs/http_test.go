package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHandlerServesSnapshotAndPprof(t *testing.T) {
	reg := NewRegistry("unit")
	reg.Counter("requests").Add(5)
	reg.Histogram("stage.encrypt.busy").Observe(3 * time.Millisecond)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Name != "unit" || snap.Counters["requests"] != 5 {
		t.Errorf("snapshot %+v", snap)
	}
	h, ok := snap.Histograms["stage.encrypt.busy"]
	if !ok || h.Count != 1 || h.P50 <= 0 {
		t.Errorf("histogram snapshot %+v (ok=%v)", h, ok)
	}

	pp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, pp.Body)
	pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/: %d", pp.StatusCode)
	}
}

func TestHandlerPrometheusAndHealth(t *testing.T) {
	reg := NewRegistry("unit")
	reg.Counter("requests").Add(5)
	ready := false
	srv := httptest.NewServer(HandlerOpts(HTTPOptions{Ready: func() bool { return ready }}, reg))
	defer srv.Close()

	get := func(path string, hdr map[string]string) (int, string, string) {
		t.Helper()
		req, err := http.NewRequest("GET", srv.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	// Dedicated Prometheus path and ?format= both serve text format.
	for _, path := range []string{"/metrics/prometheus", "/metrics?format=prometheus"} {
		code, body, ct := get(path, nil)
		if code != http.StatusOK || !strings.Contains(body, `ppstream_requests{registry="unit"} 5`) {
			t.Errorf("GET %s: %d\n%s", path, code, body)
		}
		if !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("GET %s content type %q", path, ct)
		}
	}
	// A Prometheus scraper's Accept header selects text format on /metrics.
	if _, body, _ := get("/metrics", map[string]string{
		"Accept": "application/openmetrics-text;version=1.0.0,text/plain;version=0.0.4;q=0.5",
	}); !strings.Contains(body, "ppstream_requests") {
		t.Errorf("Accept negotiation did not yield Prometheus format:\n%s", body)
	}
	// No Accept header stays JSON (back-compat for curl and the cmd tools).
	if _, body, ct := get("/metrics", nil); !strings.Contains(ct, "json") || !strings.Contains(body, `"counters"`) {
		t.Errorf("default /metrics no longer JSON (ct %q):\n%s", ct, body)
	}

	if code, body, _ := get("/healthz", nil); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("GET /healthz: %d %q", code, body)
	}
	if code, _, _ := get("/readyz", nil); code != http.StatusServiceUnavailable {
		t.Errorf("GET /readyz before ready: %d, want 503", code)
	}
	ready = true
	if code, _, _ := get("/readyz", nil); code != http.StatusOK {
		t.Errorf("GET /readyz after ready: %d, want 200", code)
	}
}

func TestServeBindsAndShutsDown(t *testing.T) {
	reg := NewRegistry("serve")
	addr, shutdown, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /metrics via Serve: %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
