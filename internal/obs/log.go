package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

// Log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the lowercase level name used in the JSON "level" field.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// logField is one bound key/value pair; fields keep insertion order in
// the emitted line (ts, level, msg first, then bound fields, then
// per-call fields).
type logField struct {
	key string
	val any
}

// Logger emits structured JSON log lines, one object per line:
//
//	{"ts":"2026-08-06T10:00:00.000Z","level":"info","msg":"session open","trace_id":"4bf0...","addr":"..."}
//
// Loggers are cheap to derive: With/WithTrace return children sharing
// the parent's writer and mutex, carrying extra bound fields — the
// request-scoped shape where every line of one request carries its
// trace ID. All methods are safe for concurrent use and are no-ops on a
// nil receiver, so optional log plumbing needs no nil checks.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	min    Level
	slow   time.Duration
	fields []logField
	now    func() time.Time
}

// NewLogger creates a logger writing JSON lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, min: min, now: time.Now}
}

// With returns a child logger carrying the given alternating key/value
// pairs on every line it emits.
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.fields = append(append([]logField(nil), l.fields...), pairFields(kv)...)
	return &child
}

// WithTrace returns a request-scoped child logger: every line carries
// the request's trace ID for cross-party correlation.
func (l *Logger) WithTrace(traceID string) *Logger {
	return l.With("trace_id", traceID)
}

// SetSlowThreshold configures the latency above which Slow emits; zero
// or negative disables slow-request logging. Returns the logger for
// chaining at construction.
func (l *Logger) SetSlowThreshold(d time.Duration) *Logger {
	if l != nil {
		l.slow = d
	}
	return l
}

// SlowThreshold returns the configured slow-request latency bound.
func (l *Logger) SlowThreshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.slow
}

// Debug emits a debug-level line.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info emits an info-level line.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn emits a warn-level line.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error emits an error-level line.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

// Slow emits a warn-level line tagged slow=true when elapsed meets the
// configured threshold, and reports whether it logged. The request's
// latency rides along as "latency_ms".
func (l *Logger) Slow(msg string, elapsed time.Duration, kv ...any) bool {
	if l == nil || l.slow <= 0 || elapsed < l.slow {
		return false
	}
	args := append([]any{"slow", true, "latency_ms", float64(elapsed.Microseconds()) / 1000}, kv...)
	l.log(LevelWarn, msg, args)
	return true
}

func (l *Logger) log(lv Level, msg string, kv []any) {
	if l == nil || lv < l.min || l.w == nil {
		return
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, `{"ts":`...)
	buf = appendJSON(buf, l.now().UTC().Format(time.RFC3339Nano))
	buf = append(buf, `,"level":`...)
	buf = appendJSON(buf, lv.String())
	buf = append(buf, `,"msg":`...)
	buf = appendJSON(buf, msg)
	for _, f := range l.fields {
		buf = appendField(buf, f)
	}
	for _, f := range pairFields(kv) {
		buf = appendField(buf, f)
	}
	buf = append(buf, '}', '\n')
	l.mu.Lock()
	_, _ = l.w.Write(buf)
	l.mu.Unlock()
}

func appendField(buf []byte, f logField) []byte {
	buf = append(buf, ',')
	buf = appendJSON(buf, f.key)
	buf = append(buf, ':')
	return appendJSON(buf, f.val)
}

// appendJSON marshals v onto buf; unmarshalable values degrade to their
// fmt representation rather than dropping the line.
func appendJSON(buf []byte, v any) []byte {
	if d, ok := v.(time.Duration); ok {
		v = d.String()
	}
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	return append(buf, b...)
}

// pairFields folds an alternating key/value list into fields; a
// dangling or non-string key is preserved under a synthetic key instead
// of being dropped, so malformed call sites stay visible.
func pairFields(kv []any) []logField {
	if len(kv) == 0 {
		return nil
	}
	out := make([]logField, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key, ok := kv[i].(string)
		if !ok {
			out = append(out, logField{key: fmt.Sprintf("!badkey%d", i), val: fmt.Sprint(kv[i])})
			continue
		}
		if i+1 >= len(kv) {
			out = append(out, logField{key: "!dangling", val: key})
			break
		}
		out = append(out, logField{key: key, val: kv[i+1]})
	}
	return out
}
