package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"time"
)

// This file holds the continuous-profiling capture loop: a background
// goroutine that periodically writes labeled CPU profiles and heap
// snapshots into a directory, so a long-running server accumulates a
// trail of profiles without anyone attaching `go tool pprof` at the
// right moment. Samples carry the pprof labels set around pipeline
// stages and server rounds (stage, round, trace), so captured CPU time
// splits by protocol phase out of the box.

// ProfileLoopOptions configures StartProfileLoop.
type ProfileLoopOptions struct {
	// Dir receives the profile files. Created if missing.
	Dir string
	// Every is the capture period. Non-positive defaults to 1 minute.
	Every time.Duration
	// CPUDuration is how long each CPU profile samples. Non-positive
	// defaults to 10s; capped at Every/2 so captures never overlap.
	CPUDuration time.Duration
	// Keep bounds how many capture generations (one CPU + one heap file
	// each) are retained; older files are pruned. Non-positive keeps 16.
	Keep int
	// Log, when non-nil, receives capture failures (disk full, another
	// CPU profile already running). Failures never stop the loop.
	Log *Logger
}

const (
	defaultProfileEvery = time.Minute
	defaultProfileCPU   = 10 * time.Second
	defaultProfileKeep  = 16
)

// StartProfileLoop begins periodic profile capture and returns a stop
// function that halts the loop and waits for an in-flight capture to
// finish. The first capture happens after one period, not immediately.
func StartProfileLoop(opts ProfileLoopOptions) (func(), error) {
	if opts.Every <= 0 {
		opts.Every = defaultProfileEvery
	}
	if opts.CPUDuration <= 0 {
		opts.CPUDuration = defaultProfileCPU
	}
	if opts.CPUDuration > opts.Every/2 {
		opts.CPUDuration = opts.Every / 2
	}
	if opts.Keep <= 0 {
		opts.Keep = defaultProfileKeep
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: creating profile dir: %w", err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		ticker := time.NewTicker(opts.Every)
		defer ticker.Stop()
		gen := 0
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			gen++
			stamp := time.Now().UTC().Format("20060102T150405")
			if err := captureCPU(filepath.Join(opts.Dir, "cpu-"+stamp+".pprof"), opts.CPUDuration, stop); err != nil {
				opts.Log.Warn("cpu profile capture failed", "err", err.Error())
			}
			if err := captureHeap(filepath.Join(opts.Dir, "heap-"+stamp+".pprof")); err != nil {
				opts.Log.Warn("heap profile capture failed", "err", err.Error())
			}
			if err := pruneProfiles(opts.Dir, opts.Keep); err != nil {
				opts.Log.Warn("profile prune failed", "err", err.Error())
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}, nil
}

// captureCPU samples the CPU profile for dur into path. An early stop
// signal ends the sample short rather than blocking shutdown.
func captureCPU(path string, dur time.Duration, stop <-chan struct{}) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: creating cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("obs: starting cpu profile: %w", err)
	}
	select {
	case <-time.After(dur):
	case <-stop:
	}
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: closing cpu profile: %w", err)
	}
	return nil
}

func captureHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: creating heap profile: %w", err)
	}
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("obs: writing heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: closing heap profile: %w", err)
	}
	return nil
}

// pruneProfiles deletes the oldest capture files beyond keep generations
// per kind (cpu-, heap-). Timestamped names sort chronologically, so a
// lexical sort is a time sort.
func pruneProfiles(dir string, keep int) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("obs: reading profile dir: %w", err)
	}
	byKind := map[string][]string{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".pprof") {
			continue
		}
		switch {
		case strings.HasPrefix(name, "cpu-"):
			byKind["cpu"] = append(byKind["cpu"], name)
		case strings.HasPrefix(name, "heap-"):
			byKind["heap"] = append(byKind["heap"], name)
		}
	}
	var firstErr error
	for _, names := range byKind {
		sort.Strings(names)
		for len(names) > keep {
			if err := os.Remove(filepath.Join(dir, names[0])); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("obs: pruning profile: %w", err)
			}
			names = names[1:]
		}
	}
	return firstErr
}
