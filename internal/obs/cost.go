package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// This file holds the crypto-cost accounting model: every request
// accumulates the modular-arithmetic operations and ciphertext traffic
// it caused, per layer, so a traced request shows WHY a segment was slow
// (how many modexps, how many pool misses, how many ciphertext bytes)
// rather than only how slow. The paillier kernel, the qnn ops, and the
// protocol session layer all write into a per-request CostMeter; the
// aggregated CostStats ride on TraceTree segments and feed the
// registry's "cost.*" counters.

// CostStats is one aggregated crypto-cost profile: plain values, safe to
// copy, attached to trace segments and marshaled into flight-recorder
// dumps. All fields count operations (or bytes) caused by one request,
// one layer, or one whole process depending on where the snapshot was
// taken.
type CostStats struct {
	// ModExps counts full modular exponentiations (encryptions, fresh
	// blinding factors, scalar multiplications outside the kernel).
	ModExps uint64 `json:"modexps"`
	// MulMods counts modular multiplications (kernel squarings, table
	// digit multiplies, power-table builds, blinding applications).
	MulMods uint64 `json:"mulmods"`
	// ModInverses counts modular inversions (negative-weight columns).
	ModInverses uint64 `json:"modinverses"`
	// Rerands counts fresh r^n output re-randomizations consumed.
	Rerands uint64 `json:"rerands"`
	// PoolHits counts blinding factors served from a precomputed pool.
	PoolHits uint64 `json:"pool_hits"`
	// PoolMisses counts blinding factors computed inline because the
	// pool was empty (each one is a full n-bit exponentiation on the
	// critical path).
	PoolMisses uint64 `json:"pool_misses"`
	// Encrypts counts plaintext→ciphertext encryptions.
	Encrypts uint64 `json:"encrypts"`
	// Decrypts counts ciphertext→plaintext decryptions.
	Decrypts uint64 `json:"decrypts"`
	// CipherBytesIn counts ciphertext bytes received from the wire.
	CipherBytesIn uint64 `json:"cipher_bytes_in"`
	// CipherBytesOut counts ciphertext bytes sent to the wire.
	CipherBytesOut uint64 `json:"cipher_bytes_out"`
	// Triples counts Beaver multiplication triples consumed by the
	// secret-sharing backend's linear layers.
	Triples uint64 `json:"triples"`
	// OpenedWords counts 64-bit share words opened (exchanged) during
	// secret-sharing multiplications and reconstructions.
	OpenedWords uint64 `json:"opened_words"`
	// GCGates counts garbled AND gates evaluated (half-gates, two table
	// rows each) by the garbled-circuit ReLU of the ss-gc backend.
	GCGates uint64 `json:"gc_gates"`
	// ExtOTs counts extended oblivious transfers consumed by garbled
	// circuit evaluations.
	ExtOTs uint64 `json:"ext_ots"`
	// PlainOps counts plaintext multiply-accumulate operations executed
	// by the clear backend past the certified crypto-clear boundary.
	PlainOps uint64 `json:"plain_ops"`
}

// CostField binds one CostStats field to its canonical lowercase dotted
// metric name and its accessors. costFields is the single source of
// truth both exposition paths render from: the registry counters
// ("cost.<name>", JSON and Prometheus alike) and the CostMeter
// aggregation. The pplint metricnames analyzer checks that every
// CostStats struct field appears here and carries a JSON tag.
type CostField struct {
	// Name is the metric-name component, lowercase with underscores.
	Name string
	// Get reads the field from a snapshot.
	Get func(*CostStats) uint64
	// Add accumulates into a meter.
	Add func(*CostMeter, uint64)
}

// costFields enumerates every CostStats field exactly once.
var costFields = []CostField{
	{Name: "modexps", Get: func(c *CostStats) uint64 { return c.ModExps }, Add: func(m *CostMeter, n uint64) { m.modExps.Add(n) }},
	{Name: "mulmods", Get: func(c *CostStats) uint64 { return c.MulMods }, Add: func(m *CostMeter, n uint64) { m.mulMods.Add(n) }},
	{Name: "modinverses", Get: func(c *CostStats) uint64 { return c.ModInverses }, Add: func(m *CostMeter, n uint64) { m.modInverses.Add(n) }},
	{Name: "rerands", Get: func(c *CostStats) uint64 { return c.Rerands }, Add: func(m *CostMeter, n uint64) { m.rerands.Add(n) }},
	{Name: "pool_hits", Get: func(c *CostStats) uint64 { return c.PoolHits }, Add: func(m *CostMeter, n uint64) { m.poolHits.Add(n) }},
	{Name: "pool_misses", Get: func(c *CostStats) uint64 { return c.PoolMisses }, Add: func(m *CostMeter, n uint64) { m.poolMisses.Add(n) }},
	{Name: "encrypts", Get: func(c *CostStats) uint64 { return c.Encrypts }, Add: func(m *CostMeter, n uint64) { m.encrypts.Add(n) }},
	{Name: "decrypts", Get: func(c *CostStats) uint64 { return c.Decrypts }, Add: func(m *CostMeter, n uint64) { m.decrypts.Add(n) }},
	{Name: "cipher_bytes_in", Get: func(c *CostStats) uint64 { return c.CipherBytesIn }, Add: func(m *CostMeter, n uint64) { m.cipherBytesIn.Add(n) }},
	{Name: "cipher_bytes_out", Get: func(c *CostStats) uint64 { return c.CipherBytesOut }, Add: func(m *CostMeter, n uint64) { m.cipherBytesOut.Add(n) }},
	{Name: "triples", Get: func(c *CostStats) uint64 { return c.Triples }, Add: func(m *CostMeter, n uint64) { m.triples.Add(n) }},
	{Name: "opened_words", Get: func(c *CostStats) uint64 { return c.OpenedWords }, Add: func(m *CostMeter, n uint64) { m.openedWords.Add(n) }},
	{Name: "gc_gates", Get: func(c *CostStats) uint64 { return c.GCGates }, Add: func(m *CostMeter, n uint64) { m.gcGates.Add(n) }},
	{Name: "ext_ots", Get: func(c *CostStats) uint64 { return c.ExtOTs }, Add: func(m *CostMeter, n uint64) { m.extOTs.Add(n) }},
	{Name: "plain_ops", Get: func(c *CostStats) uint64 { return c.PlainOps }, Add: func(m *CostMeter, n uint64) { m.plainOps.Add(n) }},
}

// CostFields returns the canonical field list (name + snapshot reader)
// so exposition code outside the package renders every field without
// maintaining its own copy.
func CostFields() []CostField { return costFields }

// Add accumulates another profile into this one.
func (c *CostStats) Add(o CostStats) {
	c.ModExps += o.ModExps
	c.MulMods += o.MulMods
	c.ModInverses += o.ModInverses
	c.Rerands += o.Rerands
	c.PoolHits += o.PoolHits
	c.PoolMisses += o.PoolMisses
	c.Encrypts += o.Encrypts
	c.Decrypts += o.Decrypts
	c.CipherBytesIn += o.CipherBytesIn
	c.CipherBytesOut += o.CipherBytesOut
	c.Triples += o.Triples
	c.OpenedWords += o.OpenedWords
	c.GCGates += o.GCGates
	c.ExtOTs += o.ExtOTs
	c.PlainOps += o.PlainOps
}

// IsZero reports whether no operation was recorded.
func (c *CostStats) IsZero() bool {
	for _, f := range costFields {
		if f.Get(c) != 0 {
			return false
		}
	}
	return true
}

// PoolHitRate is the fraction of blinding factors served precomputed
// (0..1), or -1 when no factor was drawn at all.
func (c *CostStats) PoolHitRate() float64 {
	total := c.PoolHits + c.PoolMisses
	if total == 0 {
		return -1
	}
	return float64(c.PoolHits) / float64(total)
}

// String renders the non-zero fields compactly, the form trace trees and
// log lines embed.
func (c *CostStats) String() string {
	if c == nil || c.IsZero() {
		return "-"
	}
	var parts []string
	for _, f := range costFields {
		if v := f.Get(c); v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", f.Name, v))
		}
	}
	if rate := c.PoolHitRate(); rate >= 0 {
		parts = append(parts, fmt.Sprintf("pool_hit_rate=%.2f", rate))
	}
	return strings.Join(parts, " ")
}

// CostMeter accumulates crypto-op counts concurrently: the kernel's row
// workers, the pool, and the wire layer all add into the same
// per-request meter. Writes are single atomic adds; producers should
// batch locally and Add once per phase where possible so metering stays
// off the hot path.
type CostMeter struct {
	modExps        atomic.Uint64
	mulMods        atomic.Uint64
	modInverses    atomic.Uint64
	rerands        atomic.Uint64
	poolHits       atomic.Uint64
	poolMisses     atomic.Uint64
	encrypts       atomic.Uint64
	decrypts       atomic.Uint64
	cipherBytesIn  atomic.Uint64
	cipherBytesOut atomic.Uint64
	triples        atomic.Uint64
	openedWords    atomic.Uint64
	gcGates        atomic.Uint64
	extOTs         atomic.Uint64
	plainOps       atomic.Uint64
}

// Add accumulates a batch of counts into the meter. A nil meter is a
// no-op so unmetered paths pay only the nil check.
func (m *CostMeter) Add(st CostStats) {
	if m == nil {
		return
	}
	for _, f := range costFields {
		if v := f.Get(&st); v != 0 {
			f.Add(m, v)
		}
	}
}

// Snapshot reads the meter's current totals.
func (m *CostMeter) Snapshot() CostStats {
	if m == nil {
		return CostStats{}
	}
	return CostStats{
		ModExps:        m.modExps.Load(),
		MulMods:        m.mulMods.Load(),
		ModInverses:    m.modInverses.Load(),
		Rerands:        m.rerands.Load(),
		PoolHits:       m.poolHits.Load(),
		PoolMisses:     m.poolMisses.Load(),
		Encrypts:       m.encrypts.Load(),
		Decrypts:       m.decrypts.Load(),
		CipherBytesIn:  m.cipherBytesIn.Load(),
		CipherBytesOut: m.cipherBytesOut.Load(),
		Triples:        m.triples.Load(),
		OpenedWords:    m.openedWords.Load(),
		GCGates:        m.gcGates.Load(),
		ExtOTs:         m.extOTs.Load(),
		PlainOps:       m.plainOps.Load(),
	}
}

// Diff returns the counts accumulated since a previous snapshot —
// the per-layer attribution pattern: snapshot, run the layer, Diff.
func (m *CostMeter) Diff(prev CostStats) CostStats {
	cur := m.Snapshot()
	return CostStats{
		ModExps:        cur.ModExps - prev.ModExps,
		MulMods:        cur.MulMods - prev.MulMods,
		ModInverses:    cur.ModInverses - prev.ModInverses,
		Rerands:        cur.Rerands - prev.Rerands,
		PoolHits:       cur.PoolHits - prev.PoolHits,
		PoolMisses:     cur.PoolMisses - prev.PoolMisses,
		Encrypts:       cur.Encrypts - prev.Encrypts,
		Decrypts:       cur.Decrypts - prev.Decrypts,
		CipherBytesIn:  cur.CipherBytesIn - prev.CipherBytesIn,
		CipherBytesOut: cur.CipherBytesOut - prev.CipherBytesOut,
		Triples:        cur.Triples - prev.Triples,
		OpenedWords:    cur.OpenedWords - prev.OpenedWords,
		GCGates:        cur.GCGates - prev.GCGates,
		ExtOTs:         cur.ExtOTs - prev.ExtOTs,
		PlainOps:       cur.PlainOps - prev.PlainOps,
	}
}

// AddCostToRegistry folds a cost profile into reg's "cost.<field>"
// counters — the process-wide aggregate both the JSON snapshot and the
// Prometheus exposition serve. Registry counters are get-or-create, so
// the counters exist from the first request on.
func AddCostToRegistry(reg *Registry, st CostStats) {
	if reg == nil {
		return
	}
	for _, f := range costFields {
		if v := f.Get(&st); v != 0 {
			reg.Counter("cost." + f.Name).Add(v)
		}
	}
}

// AddCostToRegistryLabeled folds a cost profile into reg's
// "cost.<label>.<field>" counters — the per-backend attribution the
// mixed-backend serving plane exposes next to the unlabeled process-wide
// aggregate. label must be a lowercase metric-name component (e.g.
// "paillier_he", "ss_gc", "clear").
func AddCostToRegistryLabeled(reg *Registry, label string, st CostStats) {
	if reg == nil || label == "" {
		return
	}
	for _, f := range costFields {
		if v := f.Get(&st); v != 0 {
			name := "cost." + label + "." + f.Name
			reg.Counter(name).Add(v)
			// The windowed sibling makes per-backend op RATES readable
			// live (/debug/live, ppstream_live_cost_* gauges) without
			// diffing cumulative scrapes.
			reg.LiveCounter(name).Add(v)
		}
	}
}
