package obs

import (
	"sync"
	"testing"
	"time"
)

// TestWindowedCounterExpiry: counts age out of the trailing window as
// the clock moves, unlike a cumulative Counter.
func TestWindowedCounterExpiry(t *testing.T) {
	w := NewWindowedCounter(time.Second, 4)
	now := time.Unix(1_700_000_000, 0)
	w.SetClock(func() time.Time { return now })

	w.Add(3)
	now = now.Add(time.Second)
	w.Add(2)
	if got := w.Value(); got != 5 {
		t.Errorf("full window value %d, want 5", got)
	}
	// One more second on: a trailing 1s query no longer overlaps the
	// first bucket (buckets overlapping the window edge count fully, so
	// we step clear of the boundary).
	now = now.Add(time.Second)
	if got := w.ValueOver(time.Second); got != 2 {
		t.Errorf("1s value %d, want 2", got)
	}
	// Rate over the trailing 2s still overlaps both buckets: 5 / 2s.
	if got := w.Rate(2 * time.Second); got != 2.5 {
		t.Errorf("rate %v, want 2.5", got)
	}
	// Move past the full span: everything expires.
	now = now.Add(5 * time.Second)
	if got := w.Value(); got != 0 {
		t.Errorf("value after expiry %d, want 0", got)
	}
	snap := w.Snapshot()
	if snap.Window != 4*time.Second || snap.Count != 0 {
		t.Errorf("snapshot after expiry %+v", snap)
	}
}

// TestWindowedCounterRotationReuse: a ring slot revisited in a later
// epoch must start from zero, not resurrect the old epoch's count.
func TestWindowedCounterRotationReuse(t *testing.T) {
	w := NewWindowedCounter(time.Second, 2)
	now := time.Unix(1_700_000_000, 0)
	w.SetClock(func() time.Time { return now })
	w.Add(100)
	// Two seconds later the same slot covers a new epoch; its first use
	// must rotate the stale 100 away before counting.
	now = now.Add(2 * time.Second)
	w.Inc()
	if got := w.Value(); got != 1 {
		t.Errorf("value after slot reuse %d, want 1", got)
	}
}

// TestWindowedHistogramQuantiles: quantiles reflect only the in-window
// observations, and expire with the clock.
func TestWindowedHistogramQuantiles(t *testing.T) {
	h := NewWindowedHistogram(time.Second, 10)
	now := time.Unix(1_700_000_000, 0)
	h.SetClock(func() time.Time { return now })

	for i := 0; i < 95; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 5; i++ {
		h.Observe(200 * time.Millisecond)
	}
	if got := h.CountOver(0); got != 100 {
		t.Errorf("count %d, want 100", got)
	}
	// p50 lands in the 1ms region, p99 in the 200ms region. The ×2
	// exponential bounds make estimates coarse: accept up to one bucket
	// of overestimation.
	if p50 := h.QuantileOver(0, 0.50); p50 <= 0 || p50 > 3*time.Millisecond {
		t.Errorf("p50 %v outside (0, 3ms]", p50)
	}
	if p99 := h.QuantileOver(0, 0.99); p99 < 100*time.Millisecond || p99 > 500*time.Millisecond {
		t.Errorf("p99 %v outside [100ms, 500ms]", p99)
	}
	snap := h.Snapshot()
	if snap.Count != 100 || snap.Mean <= 0 || snap.Rate != 10 {
		t.Errorf("snapshot %+v", snap)
	}

	// Slow evidence ages out: after 2s only fresh fast observations
	// remain in a 1s query.
	now = now.Add(2 * time.Second)
	h.Observe(time.Millisecond)
	if p99 := h.QuantileOver(time.Second, 0.99); p99 > 3*time.Millisecond {
		t.Errorf("p99 after expiry %v, want fast", p99)
	}
	// Full-window p99 still sees the 200ms tail (window is 10s).
	if p99 := h.QuantileOver(0, 0.99); p99 < 100*time.Millisecond {
		t.Errorf("full-window p99 %v lost the tail", p99)
	}
}

// TestWindowedEmpty: zero-observation metrics answer zero everywhere.
func TestWindowedEmpty(t *testing.T) {
	h := NewWindowedHistogram(0, 0)
	if h.Window() != DefaultLiveBucket*DefaultLiveBuckets {
		t.Errorf("default window %v", h.Window())
	}
	if h.QuantileOver(0, 0.95) != 0 || h.CountOver(0) != 0 {
		t.Error("empty histogram not zero")
	}
	c := NewWindowedCounter(0, 0)
	if c.Value() != 0 || c.Rate(0) != 0 {
		t.Error("empty counter not zero")
	}
}

// TestWindowedConcurrent hammers writers and readers together; run
// under -race this is the lock-free hot path's correctness check.
func TestWindowedConcurrent(t *testing.T) {
	c := NewWindowedCounter(time.Millisecond, 8)
	h := NewWindowedHistogram(time.Millisecond, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(time.Microsecond)
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Value()
					h.Snapshot()
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestRegistryLiveViews: get-or-create semantics and the snapshot's
// live sections.
func TestRegistryLiveViews(t *testing.T) {
	reg := NewRegistry("live")
	if reg.LiveCounter("a") != reg.LiveCounter("a") {
		t.Error("LiveCounter not idempotent")
	}
	if reg.LiveHistogram("b") != reg.LiveHistogram("b") {
		t.Error("LiveHistogram not idempotent")
	}
	reg.LiveCounter("a").Add(4)
	reg.LiveHistogram("b").Observe(2 * time.Millisecond)
	snap := reg.Snapshot()
	if snap.LiveCounters["a"].Count != 4 {
		t.Errorf("snapshot live counter %+v", snap.LiveCounters["a"])
	}
	if snap.LiveHistograms["b"].Count != 1 {
		t.Errorf("snapshot live histogram %+v", snap.LiveHistograms["b"])
	}
	live := reg.LiveSnapshot()
	if live.Name != "live" || live.Counters["a"].Count != 4 || live.Histograms["b"].Count != 1 {
		t.Errorf("live snapshot %+v", live)
	}
	// Registries without live metrics omit the sections entirely.
	empty := NewRegistry("none").Snapshot()
	if empty.LiveCounters != nil || empty.LiveHistograms != nil {
		t.Errorf("empty registry grew live sections: %+v", empty)
	}
}
