package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q is not JSON: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestLoggerJSONAndLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Debug("hidden")
	l.Info("session open", "addr", "127.0.0.1:7100", "window", 8)
	l.Error("boom", "err", "hello rejected")
	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2 (debug filtered)", len(lines))
	}
	if lines[0]["level"] != "info" || lines[0]["msg"] != "session open" || lines[0]["addr"] != "127.0.0.1:7100" {
		t.Errorf("info line %v", lines[0])
	}
	if lines[0]["window"] != float64(8) {
		t.Errorf("window field %v", lines[0]["window"])
	}
	if _, err := time.Parse(time.RFC3339Nano, lines[0]["ts"].(string)); err != nil {
		t.Errorf("ts field: %v", err)
	}
	if lines[1]["level"] != "error" || lines[1]["err"] != "hello rejected" {
		t.Errorf("error line %v", lines[1])
	}
}

func TestLoggerWithTraceScoping(t *testing.T) {
	var buf bytes.Buffer
	root := NewLogger(&buf, LevelDebug).With("component", "ppserver")
	reqLog := root.WithTrace("4bf0aa11")
	reqLog.Info("round served", "round", 2)
	root.Info("no trace here")
	lines := decodeLines(t, &buf)
	if lines[0]["trace_id"] != "4bf0aa11" || lines[0]["component"] != "ppserver" {
		t.Errorf("request-scoped line %v", lines[0])
	}
	if _, ok := lines[1]["trace_id"]; ok {
		t.Errorf("parent logger leaked trace_id: %v", lines[1])
	}
}

func TestLoggerSlowThreshold(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo).SetSlowThreshold(100 * time.Millisecond)
	if l.Slow("fast request", 10*time.Millisecond) {
		t.Error("fast request logged as slow")
	}
	if !l.Slow("slow request", 250*time.Millisecond, "round", 1) {
		t.Error("slow request not logged")
	}
	lines := decodeLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("%d lines, want 1", len(lines))
	}
	if lines[0]["level"] != "warn" || lines[0]["slow"] != true || lines[0]["latency_ms"] != float64(250) {
		t.Errorf("slow line %v", lines[0])
	}
	// Threshold unset: Slow never fires.
	var buf2 bytes.Buffer
	if NewLogger(&buf2, LevelInfo).Slow("x", time.Hour) {
		t.Error("Slow fired without a threshold")
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("nothing")
	l.Error("nothing")
	if l.Slow("x", time.Hour) {
		t.Error("nil logger reported slow")
	}
	if l.With("a", 1) != nil || l.WithTrace("x") != nil {
		t.Error("nil logger derivation must stay nil")
	}
	l.SetSlowThreshold(time.Second) // must not panic
}

func TestLoggerMalformedPairs(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.Info("odd", "key-without-value")
	l.Info("badkey", 42, "v")
	lines := decodeLines(t, &buf)
	if lines[0]["!dangling"] != "key-without-value" {
		t.Errorf("dangling key line %v", lines[0])
	}
	if lines[1]["!badkey0"] != "42" {
		t.Errorf("bad key line %v", lines[1])
	}
}

// TestLoggerConcurrent hammers one writer from many goroutines; run
// with -race. Every emitted line must still be valid JSON.
func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.WithTrace(NewTraceID()).Info("msg", "g", g, "i", i)
			}
		}(g)
	}
	wg.Wait()
	if lines := decodeLines(t, &buf); len(lines) != 400 {
		t.Errorf("%d lines, want 400", len(lines))
	}
}
