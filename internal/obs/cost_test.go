package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestCostMeterAddSnapshotDiff(t *testing.T) {
	var m CostMeter
	m.Add(CostStats{ModExps: 3, MulMods: 10, CipherBytesIn: 128})
	m.Add(CostStats{ModExps: 2, PoolHits: 4, PoolMisses: 1, Rerands: 5})

	st := m.Snapshot()
	want := CostStats{ModExps: 5, MulMods: 10, Rerands: 5, PoolHits: 4, PoolMisses: 1, CipherBytesIn: 128}
	if st != want {
		t.Fatalf("snapshot = %+v, want %+v", st, want)
	}

	prev := st
	m.Add(CostStats{Encrypts: 7, Decrypts: 2, CipherBytesOut: 64})
	d := m.Diff(prev)
	wantDiff := CostStats{Encrypts: 7, Decrypts: 2, CipherBytesOut: 64}
	if d != wantDiff {
		t.Fatalf("diff = %+v, want %+v", d, wantDiff)
	}
}

func TestCostMeterNilSafe(t *testing.T) {
	var m *CostMeter
	m.Add(CostStats{ModExps: 1}) // must not panic
	if st := m.Snapshot(); !st.IsZero() {
		t.Fatalf("nil meter snapshot = %+v, want zero", st)
	}
}

func TestCostMeterConcurrentAdds(t *testing.T) {
	var m CostMeter
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Add(CostStats{ModExps: 1, MulMods: 2, CipherBytesOut: 3})
			}
		}()
	}
	wg.Wait()
	st := m.Snapshot()
	if st.ModExps != workers*per || st.MulMods != 2*workers*per || st.CipherBytesOut != 3*workers*per {
		t.Fatalf("concurrent totals wrong: %+v", st)
	}
}

// TestCostFieldsCoverStruct pins the single-source-of-truth property: every
// CostStats struct field must appear in costFields exactly once, carry a
// json tag matching the field's canonical name, and round-trip through
// Get/Add.
func TestCostFieldsCoverStruct(t *testing.T) {
	typ := reflect.TypeOf(CostStats{})
	if typ.NumField() != len(costFields) {
		t.Fatalf("CostStats has %d fields but costFields lists %d", typ.NumField(), len(costFields))
	}
	byName := map[string]CostField{}
	for _, f := range costFields {
		if f.Name != strings.ToLower(f.Name) {
			t.Errorf("cost field name %q is not lowercase", f.Name)
		}
		if _, dup := byName[f.Name]; dup {
			t.Errorf("cost field %q listed twice", f.Name)
		}
		byName[f.Name] = f
	}
	for i := 0; i < typ.NumField(); i++ {
		sf := typ.Field(i)
		tag := strings.Split(sf.Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			t.Errorf("CostStats.%s has no json tag", sf.Name)
			continue
		}
		f, ok := byName[tag]
		if !ok {
			t.Errorf("CostStats.%s (json %q) missing from costFields", sf.Name, tag)
			continue
		}
		// Round-trip: Add through the meter, read back through Get.
		var m CostMeter
		f.Add(&m, 41)
		st := m.Snapshot()
		if got := f.Get(&st); got != 41 {
			t.Errorf("field %q Add/Get mismatch: got %d, want 41", tag, got)
		}
	}
}

func TestCostStatsJSONFieldNames(t *testing.T) {
	st := CostStats{ModExps: 1, MulMods: 1, ModInverses: 1, Rerands: 1,
		PoolHits: 1, PoolMisses: 1, Encrypts: 1, Decrypts: 1,
		CipherBytesIn: 1, CipherBytesOut: 1,
		Triples: 1, OpenedWords: 1, GCGates: 1, ExtOTs: 1, PlainOps: 1}
	raw, err := json.Marshal(&st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]uint64
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, f := range costFields {
		if decoded[f.Name] != 1 {
			t.Errorf("JSON output missing cost field %q: %s", f.Name, raw)
		}
	}
}

func TestAddCostToRegistry(t *testing.T) {
	reg := NewRegistry("costtest")
	AddCostToRegistry(reg, CostStats{ModExps: 9, PoolHits: 3, CipherBytesIn: 77})
	AddCostToRegistry(reg, CostStats{ModExps: 1})
	snap := reg.Snapshot()
	if got := snap.Counters["cost.modexps"]; got != 10 {
		t.Fatalf("cost.modexps = %d, want 10", got)
	}
	if got := snap.Counters["cost.pool_hits"]; got != 3 {
		t.Fatalf("cost.pool_hits = %d, want 3", got)
	}
	if got := snap.Counters["cost.cipher_bytes_in"]; got != 77 {
		t.Fatalf("cost.cipher_bytes_in = %d, want 77", got)
	}
	AddCostToRegistry(nil, CostStats{ModExps: 1}) // must not panic
}

func TestPoolHitRate(t *testing.T) {
	st := CostStats{}
	if got := st.PoolHitRate(); got != -1 {
		t.Fatalf("empty hit rate = %v, want -1", got)
	}
	st = CostStats{PoolHits: 3, PoolMisses: 1}
	if got := st.PoolHitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}

func TestCostStatsString(t *testing.T) {
	var zero CostStats
	if got := zero.String(); got != "-" {
		t.Fatalf("zero String() = %q, want -", got)
	}
	st := CostStats{ModExps: 2, PoolHits: 1, PoolMisses: 1}
	s := st.String()
	for _, want := range []string{"modexps=2", "pool_hits=1", "pool_hit_rate=0.50"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestTraceTreeCostAndRender(t *testing.T) {
	tree := &TraceTree{
		ID:    "abc",
		Total: 100,
		Segments: []Segment{
			{Party: "server", Name: "kernel", Round: 0, Dur: 50,
				Cost: &CostStats{ModExps: 4, MulMods: 100}},
			{Party: "client", Name: "encrypt", Round: -1, Dur: 30,
				Cost: &CostStats{Encrypts: 8}},
			{Party: "wire", Name: "wire", Round: 0, Dur: 20},
		},
	}
	total := tree.Cost()
	if total.ModExps != 4 || total.MulMods != 100 || total.Encrypts != 8 {
		t.Fatalf("tree cost = %+v", total)
	}
	out := RenderTree(tree)
	for _, want := range []string{"cost: modexps=4 mulmods=100", "cost: encrypts=8", "request cost:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderTree output missing %q:\n%s", want, out)
		}
	}
}

func TestNewTraceIDFallback(t *testing.T) {
	old := traceRandom
	defer func() { traceRandom = old }()

	traceRandom = failReader{}
	id := NewTraceID()
	if !strings.HasPrefix(id, "fb") || len(id) != 16 {
		t.Fatalf("fallback ID = %q, want fb-prefixed 16 chars", id)
	}
	id2 := NewTraceID()
	if id2 == id {
		t.Fatalf("fallback IDs must stay unique, got %q twice", id)
	}

	traceRandom = strings.NewReader("abc") // short read
	if id := NewTraceID(); !strings.HasPrefix(id, "fb") {
		t.Fatalf("short-read ID = %q, want fallback", id)
	}

	traceRandom = old
	id = NewTraceID()
	if len(id) != 16 || strings.HasPrefix(id, "fb") {
		t.Fatalf("normal ID = %q, want 16 hex chars", id)
	}
}

type failReader struct{}

func (failReader) Read([]byte) (int, error) { return 0, errFail }

var errFail = &failErr{}

type failErr struct{}

func (*failErr) Error() string { return "entropy unavailable" }
