// Package obs is PP-Stream's observability layer: lock-cheap metric
// primitives (counters, gauges, fixed-bucket latency histograms) grouped
// in named registries, plus an HTTP exposition endpoint serving JSON
// snapshots and pprof. The stream runtime, the protocol session layer,
// and the core engine all publish here, so every deployment — in-process
// pipeline or distributed ppserver — can be profiled the way the paper's
// Tables IV–VI break latency down per stage.
//
// All write paths are single atomic operations (no locks, no
// allocation), so instrumenting the pipeline hot path costs nanoseconds.
// Snapshots are taken concurrently with writers and are therefore
// weakly consistent: bucket counts, sums, and totals may each lag a few
// in-flight observations, which is irrelevant for latency percentiles.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// defaultBounds are the histogram bucket upper bounds in nanoseconds:
// powers of two from 1µs to ~34s (36 buckets), plus an implicit
// overflow bucket. This covers everything from a single modular
// multiplication to a full VGG inference round.
var defaultBounds = func() []int64 {
	bounds := make([]int64, 36)
	b := int64(time.Microsecond)
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}()

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// Observations are clamped at zero; Observe is a handful of atomic
// operations and never allocates.
type Histogram struct {
	bounds  []int64 // ascending upper bounds (ns); last bucket is +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
}

// NewHistogram creates a histogram with the default exponential bounds
// (1µs … ~34s, ×2 per bucket).
func NewHistogram() *Histogram {
	h := &Histogram{bounds: defaultBounds, buckets: make([]atomic.Uint64, len(defaultBounds)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNanos(d.Nanoseconds()) }

// ObserveNanos records one duration given in nanoseconds.
func (h *Histogram) ObserveNanos(v int64) {
	if v < 0 {
		v = 0
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// HistogramSnapshot is a point-in-time summary. Durations marshal to
// JSON as integer nanoseconds.
type HistogramSnapshot struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P95   time.Duration `json:"p95_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// Snapshot summarizes the histogram. An empty histogram yields the zero
// snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	n := h.count.Load()
	if n == 0 {
		return HistogramSnapshot{}
	}
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	min, max := h.min.Load(), h.max.Load()
	s := HistogramSnapshot{
		Count: n,
		Sum:   time.Duration(h.sum.Load()),
		Min:   time.Duration(min),
		Max:   time.Duration(max),
		Mean:  time.Duration(h.sum.Load() / int64(n)),
	}
	s.P50 = h.quantile(counts, total, min, max, 0.50)
	s.P95 = h.quantile(counts, total, min, max, 0.95)
	s.P99 = h.quantile(counts, total, min, max, 0.99)
	return s
}

// Quantile estimates the q-th quantile (0 < q ≤ 1) by linear
// interpolation within the bucket containing it, clamped to the observed
// min/max. An empty histogram yields 0 for every q, as do NaN requests;
// q outside (0, 1] is clamped into the range, so callers can never read
// a bucket upper bound that no sample actually reached.
func (h *Histogram) Quantile(q float64) time.Duration {
	counts := make([]uint64, len(h.buckets))
	var total uint64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	return h.quantile(counts, total, h.min.Load(), h.max.Load(), q)
}

func (h *Histogram) quantile(counts []uint64, total uint64, min, max int64, q float64) time.Duration {
	return quantileFromCounts(h.bounds, counts, total, min, max, q)
}

// quantileFromCounts estimates the q-th quantile from per-bucket counts
// over ascending upper bounds (the last count is the overflow bucket).
// Shared by Histogram and WindowedHistogram.
func quantileFromCounts(bounds []int64, counts []uint64, total uint64, min, max int64, q float64) time.Duration {
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q > 1 {
		q = 1
	}
	if q <= 0 {
		// q→0⁺ is the distribution's lower edge.
		return time.Duration(min)
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		cum += float64(c)
		if cum < target || c == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := max
		if i < len(bounds) && bounds[i] < max {
			hi = bounds[i]
		}
		if lo < min {
			lo = min
		}
		if hi < lo {
			hi = lo
		}
		// Position of the target within this bucket's observations.
		frac := 1 - (cum-target)/float64(c)
		v := float64(lo) + frac*float64(hi-lo)
		return time.Duration(int64(v))
	}
	return time.Duration(max)
}
