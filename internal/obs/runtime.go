package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches runtime.ReadMemStats between snapshot evaluations:
// the several heap/GC gauges registered below would otherwise each pay
// the stop-the-world read on every scrape.
type memSampler struct {
	mu    sync.Mutex
	at    time.Time
	stats runtime.MemStats
}

// memSampleTTL bounds how stale a cached MemStats read may be.
const memSampleTTL = time.Second

func (s *memSampler) read(f func(*runtime.MemStats) int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if now := time.Now(); now.Sub(s.at) > memSampleTTL {
		runtime.ReadMemStats(&s.stats)
		s.at = now
	}
	return f(&s.stats)
}

// RegisterRuntimeMetrics publishes Go runtime health gauges into reg,
// evaluated lazily at snapshot/scrape time:
//
//	runtime.goroutines          live goroutine count
//	runtime.heap_alloc_bytes    bytes of allocated heap objects
//	runtime.heap_objects        live heap object count
//	runtime.gc_cycles           completed GC cycles
//	runtime.gc_pause_total_ns   cumulative stop-the-world pause time
//	runtime.gc_pause_last_ns    most recent stop-the-world pause
//
// MemStats reads are cached for a second so frequent scrapes stay cheap.
func RegisterRuntimeMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	s := &memSampler{}
	reg.GaugeFunc("runtime.goroutines", func() int64 { return int64(runtime.NumGoroutine()) })
	reg.GaugeFunc("runtime.heap_alloc_bytes", func() int64 {
		return s.read(func(m *runtime.MemStats) int64 { return int64(m.HeapAlloc) })
	})
	reg.GaugeFunc("runtime.heap_objects", func() int64 {
		return s.read(func(m *runtime.MemStats) int64 { return int64(m.HeapObjects) })
	})
	reg.GaugeFunc("runtime.gc_cycles", func() int64 {
		return s.read(func(m *runtime.MemStats) int64 { return int64(m.NumGC) })
	})
	reg.GaugeFunc("runtime.gc_pause_total_ns", func() int64 {
		return s.read(func(m *runtime.MemStats) int64 { return int64(m.PauseTotalNs) })
	})
	reg.GaugeFunc("runtime.gc_pause_last_ns", func() int64 {
		return s.read(func(m *runtime.MemStats) int64 {
			if m.NumGC == 0 {
				return 0
			}
			return int64(m.PauseNs[(m.NumGC+255)%256])
		})
	})
}
