package obs

import (
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q: want 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestSegmentLabel(t *testing.T) {
	cases := []struct {
		seg  Segment
		want string
	}{
		{Segment{Party: "client", Name: "queue"}, "client-queue"},
		{Segment{Party: "server", Name: "kernel"}, "server-kernel"},
		{Segment{Party: "wire", Name: "wire"}, "wire"},
		{Segment{Party: "", Name: "wire"}, "wire"},
	}
	for _, c := range cases {
		if got := c.seg.Label(); got != c.want {
			t.Errorf("label of %+v = %q, want %q", c.seg, got, c.want)
		}
	}
}

func mkTree(id string, kernel, nonlin time.Duration) *TraceTree {
	return &TraceTree{
		ID:    id,
		Total: 2*kernel + 2*nonlin + 3*time.Millisecond,
		Segments: []Segment{
			{Party: "client", Name: "encrypt", Round: -1, Dur: time.Millisecond},
			{Party: "server", Name: "kernel", Round: 0, Dur: kernel},
			{Party: "wire", Name: "wire", Round: 0, Dur: time.Millisecond},
			{Party: "client", Name: "nonlinear", Round: 0, Dur: nonlin},
			{Party: "server", Name: "kernel", Round: 1, Dur: kernel},
			{Party: "wire", Name: "wire", Round: 1, Dur: time.Millisecond},
			{Party: "client", Name: "nonlinear", Round: 1, Dur: nonlin},
		},
	}
}

func TestTraceTreeTotals(t *testing.T) {
	tree := mkTree("ab", 10*time.Millisecond, 2*time.Millisecond)
	if got := tree.PartyTotal("server"); got != 20*time.Millisecond {
		t.Errorf("server total %v, want 20ms", got)
	}
	if got := tree.SegmentTotal("client-nonlinear"); got != 4*time.Millisecond {
		t.Errorf("client-nonlinear total %v, want 4ms", got)
	}
	if got := tree.SegmentTotal("wire"); got != 2*time.Millisecond {
		t.Errorf("wire total %v, want 2ms", got)
	}
	if tree.Sum() != tree.Total {
		t.Errorf("sum %v != total %v", tree.Sum(), tree.Total)
	}
	parties := tree.Parties()
	if len(parties) != 3 {
		t.Errorf("parties %v, want client/server/wire", parties)
	}
	var nilTree *TraceTree
	if nilTree.Sum() != 0 || nilTree.PartyTotal("client") != 0 || nilTree.Parties() != nil {
		t.Error("nil tree accessors must be zero")
	}
}

func TestBreakdownAggregation(t *testing.T) {
	trees := []*TraceTree{
		mkTree("a", 10*time.Millisecond, 2*time.Millisecond),
		nil, // failed request: skipped, not fatal
		mkTree("b", 12*time.Millisecond, 3*time.Millisecond),
		mkTree("c", 11*time.Millisecond, 2*time.Millisecond),
	}
	rows := Breakdown(trees)
	if len(rows) != 4 {
		t.Fatalf("got %d rows %v, want 4 labels", len(rows), rows)
	}
	// Canonical segment order.
	wantOrder := []string{"client-encrypt", "wire", "server-kernel", "client-nonlinear"}
	for i, w := range wantOrder {
		if rows[i].Label != w {
			t.Fatalf("row %d = %q, want %q (rows %+v)", i, rows[i].Label, w, rows)
		}
	}
	var kernel BreakdownRow
	for _, r := range rows {
		if r.Label == "server-kernel" {
			kernel = r
		}
	}
	if kernel.Count != 3 {
		t.Errorf("kernel count %d, want 3 traces", kernel.Count)
	}
	// Per-request kernel totals are 20/24/22ms → p50 = 22ms.
	if kernel.P50 != 22*time.Millisecond {
		t.Errorf("kernel p50 %v, want 22ms", kernel.P50)
	}
	if kernel.Total != 66*time.Millisecond {
		t.Errorf("kernel total %v, want 66ms", kernel.Total)
	}
	var share float64
	for _, r := range rows {
		share += r.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("shares sum to %f, want 1", share)
	}

	out := RenderBreakdown(rows)
	for _, want := range []string{"segment", "server-kernel", "wire", "p99", "share"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered breakdown missing %q:\n%s", want, out)
		}
	}
	if Breakdown(nil) != nil {
		t.Error("empty breakdown should be nil")
	}
}

func TestRenderTree(t *testing.T) {
	tree := mkTree("deadbeef", 10*time.Millisecond, 2*time.Millisecond)
	tree.Total += 5 * time.Millisecond // unattributed remainder
	out := RenderTree(tree)
	for _, want := range []string{"deadbeef", "server-kernel", "round 1", "(unattributed)"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered tree missing %q:\n%s", want, out)
		}
	}
	if got := RenderTree(nil); !strings.Contains(got, "no trace") {
		t.Errorf("nil tree render %q", got)
	}
}
