package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file holds the windowed-metric family: counters and histograms
// that answer "what is happening NOW" instead of "what has happened
// since boot". Each metric is a ring of fixed-duration time buckets;
// observations land in the bucket covering the current instant with a
// couple of atomic operations, and a reader merges the trailing buckets
// into a rate or a latency distribution over the last W seconds. The
// family generalizes the Shedder's private p95 ring (which now uses it)
// and backs /debug/live, the SLO burn-rate engine, and `ppbench top`'s
// rate columns.
//
// Consistency model matches Histogram: writers never block readers and
// vice versa; a snapshot taken concurrently with writers may lag a few
// in-flight observations, and an observation racing a bucket rotation
// may be attributed to the neighbouring bucket. Both are irrelevant at
// monitoring granularity.

// Default live-window geometry used by Registry.LiveCounter and
// Registry.LiveHistogram: 60 one-second buckets, so /debug/live answers
// "the last minute" with one-second resolution.
const (
	DefaultLiveBucket  = time.Second
	DefaultLiveBuckets = 60
)

// windowEpochs computes the bucket-start epoch and ring index for an
// instant.
func windowEpoch(nanos, width int64, buckets int) (epoch int64, idx int) {
	slot := nanos / width
	return slot * width, int(slot % int64(buckets))
}

// WindowedCounter counts events over a sliding time window: a ring of
// fixed-duration buckets, each an atomic counter tagged with the bucket
// start it currently represents. The hot path (Add within the current
// bucket) is two atomic operations; a mutex is taken only when a bucket
// rotates to a new epoch, roughly once per bucket width.
type WindowedCounter struct {
	width   int64 // bucket duration, nanoseconds
	buckets []windowBucket

	rotate sync.Mutex
	now    func() time.Time
}

type windowBucket struct {
	epoch atomic.Int64 // bucket start, unix nanos; 0 = never used
	n     atomic.Uint64
	sum   atomic.Int64 // histograms only: sum of observed nanos
}

// NewWindowedCounter creates a counter spanning width×buckets. Non-
// positive arguments take the Default-Live geometry.
func NewWindowedCounter(width time.Duration, buckets int) *WindowedCounter {
	if width <= 0 {
		width = DefaultLiveBucket
	}
	if buckets <= 0 {
		buckets = DefaultLiveBuckets
	}
	return &WindowedCounter{
		width:   int64(width),
		buckets: make([]windowBucket, buckets),
		now:     time.Now,
	}
}

// SetClock replaces the counter's time source — a test hook so window
// expiry is exercised without sleeping. Not for production use.
func (w *WindowedCounter) SetClock(now func() time.Time) { w.now = now }

// Window returns the counter's total span.
func (w *WindowedCounter) Window() time.Duration {
	return time.Duration(w.width * int64(len(w.buckets)))
}

// bucketFor returns the ring bucket covering instant t, rotating it to
// t's epoch if it still holds an older window's counts.
func (w *WindowedCounter) bucketFor(nanos int64) *windowBucket {
	epoch, idx := windowEpoch(nanos, w.width, len(w.buckets))
	b := &w.buckets[idx]
	if b.epoch.Load() == epoch {
		return b
	}
	w.rotate.Lock()
	defer w.rotate.Unlock()
	if b.epoch.Load() != epoch {
		// Zero first, publish the epoch last: fast-path writers spin into
		// the mutex until the bucket is visibly current, so no count is
		// added to a half-reset bucket.
		b.n.Store(0)
		b.sum.Store(0)
		b.epoch.Store(epoch)
	}
	return b
}

// Add counts n events at the current instant.
func (w *WindowedCounter) Add(n uint64) {
	w.bucketFor(w.now().UnixNano()).n.Add(n)
}

// Inc counts one event.
func (w *WindowedCounter) Inc() { w.Add(1) }

// Value returns the event count over the counter's full window.
func (w *WindowedCounter) Value() uint64 { return w.ValueOver(w.Window()) }

// ValueOver returns the event count over the trailing duration d
// (clamped to the window). A bucket contributes when any part of it
// overlaps (now-d, now].
func (w *WindowedCounter) ValueOver(d time.Duration) uint64 {
	if d <= 0 || d > w.Window() {
		d = w.Window()
	}
	now := w.now().UnixNano()
	lo := now - int64(d)
	var total uint64
	for i := range w.buckets {
		b := &w.buckets[i]
		e := b.epoch.Load()
		if e == 0 || e > now || e+w.width <= lo {
			continue
		}
		total += b.n.Load()
	}
	return total
}

// Rate returns events per second over the trailing duration d.
func (w *WindowedCounter) Rate(d time.Duration) float64 {
	if d <= 0 || d > w.Window() {
		d = w.Window()
	}
	return float64(w.ValueOver(d)) / d.Seconds()
}

// WindowedCounterSnapshot is the JSON view of a windowed counter.
type WindowedCounterSnapshot struct {
	Window time.Duration `json:"window_ns"`
	Count  uint64        `json:"count"`
	// Rate is events per second over the window.
	Rate float64 `json:"rate"`
}

// Snapshot summarizes the full window.
func (w *WindowedCounter) Snapshot() WindowedCounterSnapshot {
	win := w.Window()
	n := w.ValueOver(win)
	return WindowedCounterSnapshot{Window: win, Count: n, Rate: float64(n) / win.Seconds()}
}

// WindowedHistogram is a latency distribution over a sliding time
// window: a ring of time buckets, each holding a fixed-bound value
// histogram (the same exponential bounds as Histogram). Observe is a
// handful of atomic operations in the common case; quantiles are
// computed by merging the trailing buckets' counts.
type WindowedHistogram struct {
	width   int64
	bounds  []int64
	buckets []windowHistBucket

	rotate sync.Mutex
	now    func() time.Time
}

type windowHistBucket struct {
	epoch atomic.Int64
	n     atomic.Uint64
	sum   atomic.Int64
	vals  []atomic.Uint64 // len(bounds)+1, last is overflow
}

// NewWindowedHistogram creates a histogram spanning width×buckets with
// the default exponential bounds. Non-positive arguments take the
// Default-Live geometry.
func NewWindowedHistogram(width time.Duration, buckets int) *WindowedHistogram {
	if width <= 0 {
		width = DefaultLiveBucket
	}
	if buckets <= 0 {
		buckets = DefaultLiveBuckets
	}
	h := &WindowedHistogram{
		width:   int64(width),
		bounds:  defaultBounds,
		buckets: make([]windowHistBucket, buckets),
		now:     time.Now,
	}
	for i := range h.buckets {
		h.buckets[i].vals = make([]atomic.Uint64, len(h.bounds)+1)
	}
	return h
}

// SetClock replaces the histogram's time source — a test hook so window
// expiry is exercised without sleeping. Not for production use.
func (h *WindowedHistogram) SetClock(now func() time.Time) { h.now = now }

// Window returns the histogram's total span.
func (h *WindowedHistogram) Window() time.Duration {
	return time.Duration(h.width * int64(len(h.buckets)))
}

func (h *WindowedHistogram) bucketFor(nanos int64) *windowHistBucket {
	epoch, idx := windowEpoch(nanos, h.width, len(h.buckets))
	b := &h.buckets[idx]
	if b.epoch.Load() == epoch {
		return b
	}
	h.rotate.Lock()
	defer h.rotate.Unlock()
	if b.epoch.Load() != epoch {
		b.n.Store(0)
		b.sum.Store(0)
		for i := range b.vals {
			b.vals[i].Store(0)
		}
		b.epoch.Store(epoch)
	}
	return b
}

// Observe records one duration at the current instant.
func (h *WindowedHistogram) Observe(d time.Duration) { h.ObserveNanos(d.Nanoseconds()) }

// ObserveNanos records one duration given in nanoseconds.
func (h *WindowedHistogram) ObserveNanos(v int64) {
	if v < 0 {
		v = 0
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	b := h.bucketFor(h.now().UnixNano())
	b.vals[i].Add(1)
	b.n.Add(1)
	b.sum.Add(v)
}

// merge collects the trailing-d value-bucket counts, total, and sum.
func (h *WindowedHistogram) merge(d time.Duration) (counts []uint64, total uint64, sum int64) {
	if d <= 0 || d > h.Window() {
		d = h.Window()
	}
	now := h.now().UnixNano()
	lo := now - int64(d)
	counts = make([]uint64, len(h.bounds)+1)
	for i := range h.buckets {
		b := &h.buckets[i]
		e := b.epoch.Load()
		if e == 0 || e > now || e+h.width <= lo {
			continue
		}
		for j := range counts {
			counts[j] += b.vals[j].Load()
		}
		total += b.n.Load()
		sum += b.sum.Load()
	}
	return counts, total, sum
}

// CountOver returns the observation count over the trailing duration d.
func (h *WindowedHistogram) CountOver(d time.Duration) uint64 {
	_, total, _ := h.merge(d)
	return total
}

// QuantileOver estimates the q-th quantile of observations in the
// trailing duration d by interpolation within the fixed bounds. Zero
// when the window holds no observations.
func (h *WindowedHistogram) QuantileOver(d time.Duration, q float64) time.Duration {
	counts, total, _ := h.merge(d)
	if total == 0 {
		return 0
	}
	hi := h.bounds[len(h.bounds)-1]
	return quantileFromCounts(h.bounds, counts, total, 0, hi, q)
}

// WindowedHistogramSnapshot is the JSON view of a windowed latency
// distribution. Durations marshal as integer nanoseconds.
type WindowedHistogramSnapshot struct {
	Window time.Duration `json:"window_ns"`
	Count  uint64        `json:"count"`
	// Rate is observations per second over the window.
	Rate float64       `json:"rate"`
	Mean time.Duration `json:"mean_ns"`
	P50  time.Duration `json:"p50_ns"`
	P95  time.Duration `json:"p95_ns"`
	P99  time.Duration `json:"p99_ns"`
}

// Snapshot summarizes the full window. Empty windows yield the zero
// snapshot (with the window span filled in).
func (h *WindowedHistogram) Snapshot() WindowedHistogramSnapshot {
	return h.SnapshotOver(h.Window())
}

// SnapshotOver summarizes the trailing duration d.
func (h *WindowedHistogram) SnapshotOver(d time.Duration) WindowedHistogramSnapshot {
	if d <= 0 || d > h.Window() {
		d = h.Window()
	}
	counts, total, sum := h.merge(d)
	s := WindowedHistogramSnapshot{Window: d}
	if total == 0 {
		return s
	}
	hi := h.bounds[len(h.bounds)-1]
	s.Count = total
	s.Rate = float64(total) / d.Seconds()
	s.Mean = time.Duration(sum / int64(total))
	s.P50 = quantileFromCounts(h.bounds, counts, total, 0, hi, 0.50)
	s.P95 = quantileFromCounts(h.bounds, counts, total, 0, hi, 0.95)
	s.P99 = quantileFromCounts(h.bounds, counts, total, 0, hi, 0.99)
	return s
}
