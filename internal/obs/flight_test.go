package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func flightTree(id string, total time.Duration) *TraceTree {
	return &TraceTree{
		ID:    id,
		Total: total,
		Segments: []Segment{{
			Party: "server", Name: "kernel", Round: 0, Dur: total,
			Cost: &CostStats{ModExps: 3, MulMods: 7},
		}},
	}
}

func TestFlightRecorderRings(t *testing.T) {
	f := NewFlightRecorder(3, 2, 2)
	for i := 0; i < 5; i++ {
		var err error
		if i%2 == 1 {
			err = fmt.Errorf("boom %d", i)
		}
		f.Record(flightTree(fmt.Sprintf("t%d", i), time.Duration(i+1)*time.Millisecond), err)
	}
	d := f.Dump()
	if d.Recorded != 5 {
		t.Fatalf("recorded = %d, want 5", d.Recorded)
	}
	// Recent keeps the last 3, oldest first.
	wantRecent := []string{"t2", "t3", "t4"}
	if len(d.Recent) != len(wantRecent) {
		t.Fatalf("recent = %d records, want %d", len(d.Recent), len(wantRecent))
	}
	for i, want := range wantRecent {
		if d.Recent[i].Trace.ID != want {
			t.Errorf("recent[%d] = %s, want %s", i, d.Recent[i].Trace.ID, want)
		}
	}
	// Slowest keeps the 2 largest totals, slowest first.
	if len(d.Slowest) != 2 || d.Slowest[0].Trace.ID != "t4" || d.Slowest[1].Trace.ID != "t3" {
		t.Errorf("slowest ring wrong: %+v", idsOf(d.Slowest))
	}
	// Errors holds the last 2 errored traces (t1, t3), oldest first.
	if len(d.Errors) != 2 || d.Errors[0].Trace.ID != "t1" || d.Errors[1].Trace.ID != "t3" {
		t.Errorf("error ring wrong: %+v", idsOf(d.Errors))
	}
	for _, rec := range d.Errors {
		if !strings.HasPrefix(rec.Err, "boom") {
			t.Errorf("error record lost its message: %q", rec.Err)
		}
	}
	// Cost profiles survive the rings.
	if c := d.Recent[0].Trace.Cost(); c.ModExps != 3 || c.MulMods != 7 {
		t.Errorf("recent record lost cost profile: %+v", c)
	}
}

func idsOf(recs []FlightRecord) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Trace.ID
	}
	return out
}

func TestFlightRecorderSlowestEviction(t *testing.T) {
	f := NewFlightRecorder(8, 2, 2)
	f.Record(flightTree("slow", 100*time.Millisecond), nil)
	f.Record(flightTree("mid", 50*time.Millisecond), nil)
	// Faster than both keepers: must not evict.
	f.Record(flightTree("fast", 1*time.Millisecond), nil)
	d := f.Dump()
	if got := idsOf(d.Slowest); len(got) != 2 || got[0] != "slow" || got[1] != "mid" {
		t.Fatalf("slowest = %v, want [slow mid]", got)
	}
	// Slower than the fastest keeper: evicts it.
	f.Record(flightTree("slower", 75*time.Millisecond), nil)
	d = f.Dump()
	if got := idsOf(d.Slowest); len(got) != 2 || got[0] != "slow" || got[1] != "slower" {
		t.Fatalf("slowest after eviction = %v, want [slow slower]", got)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(flightTree("x", time.Millisecond), nil) // must not panic
	if f.Recorded() != 0 {
		t.Error("nil recorder recorded something")
	}
	d := f.Dump()
	if d.Recorded != 0 || d.Recent != nil {
		t.Errorf("nil recorder dump not empty: %+v", d)
	}
	// A live recorder ignores nil trees.
	live := NewFlightRecorder(2, 2, 2)
	live.Record(nil, errors.New("no tree"))
	if live.Recorded() != 0 {
		t.Error("nil tree was recorded")
	}
}

func TestFlightRecorderDefaults(t *testing.T) {
	f := NewFlightRecorder(0, -1, 0)
	for i := 0; i < DefaultFlightRecent+5; i++ {
		f.Record(flightTree(fmt.Sprintf("t%d", i), time.Duration(i+1)), nil)
	}
	d := f.Dump()
	if len(d.Recent) != DefaultFlightRecent {
		t.Errorf("recent capacity = %d, want default %d", len(d.Recent), DefaultFlightRecent)
	}
	if len(d.Slowest) != DefaultFlightSlowest {
		t.Errorf("slowest capacity = %d, want default %d", len(d.Slowest), DefaultFlightSlowest)
	}
}

// TestFlightRecorderConcurrent hammers Record, Dump, and the
// /debug/flight HTTP endpoint from concurrent goroutines; run under
// -race this is the recorder's thread-safety gate.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(16, 4, 8)
	handler := HandlerOpts(HTTPOptions{Flight: f}, NewRegistry("flight-concurrent"))

	const writers, perWriter, readers = 8, 200, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				var err error
				if i%17 == 0 {
					err = errors.New("synthetic failure")
				}
				f.Record(flightTree(fmt.Sprintf("w%d-%d", w, i), time.Duration(i+1)*time.Microsecond), err)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d := f.Dump()
				if len(d.Recent) > 16 || len(d.Slowest) > 4 || len(d.Errors) > 8 {
					t.Errorf("dump exceeded ring bounds: recent=%d slowest=%d errors=%d",
						len(d.Recent), len(d.Slowest), len(d.Errors))
					return
				}
				rr := httptest.NewRecorder()
				handler.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
				if rr.Code != 200 {
					t.Errorf("/debug/flight status %d", rr.Code)
					return
				}
				var dump FlightDump
				if err := json.Unmarshal(rr.Body.Bytes(), &dump); err != nil {
					t.Errorf("/debug/flight not valid JSON: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := f.Recorded(); got != writers*perWriter {
		t.Errorf("recorded = %d, want %d", got, writers*perWriter)
	}
	d := f.Dump()
	if len(d.Recent) != 16 || len(d.Slowest) != 4 || len(d.Errors) != 8 {
		t.Errorf("final rings not full: recent=%d slowest=%d errors=%d",
			len(d.Recent), len(d.Slowest), len(d.Errors))
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("pipe closed") }

func TestFlightWriteJSONError(t *testing.T) {
	f := NewFlightRecorder(2, 2, 2)
	f.Record(flightTree("t0", time.Millisecond), nil)
	err := f.WriteJSON(failWriter{})
	if err == nil {
		t.Fatal("WriteJSON swallowed the writer error")
	}
	if !strings.Contains(err.Error(), "flight dump") {
		t.Errorf("error not wrapped with context: %v", err)
	}
}

func TestFlightHTTPNotMountedWithoutRecorder(t *testing.T) {
	handler := Handler(NewRegistry("no-flight"))
	rr := httptest.NewRecorder()
	handler.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if rr.Code != 404 {
		t.Errorf("/debug/flight without a recorder: status %d, want 404", rr.Code)
	}
}
