package obs

import (
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry("ppserver")
	reg.Counter("rounds.served").Add(7)
	reg.Gauge("sessions.active").Set(2)
	reg.GaugeFunc("queue.depth", func() int64 { return 5 })
	h := reg.Histogram("round.linear")
	h.Observe(3 * time.Millisecond)
	h.Observe(5 * time.Millisecond)

	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ppstream_rounds_served counter",
		`ppstream_rounds_served{registry="ppserver"} 7`,
		"# TYPE ppstream_sessions_active gauge",
		`ppstream_sessions_active{registry="ppserver"} 2`,
		`ppstream_queue_depth{registry="ppserver"} 5`,
		"# TYPE ppstream_round_linear_seconds histogram",
		`ppstream_round_linear_seconds_count{registry="ppserver"} 2`,
		`le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// _sum is in seconds: 8ms total.
	if !strings.Contains(out, "_sum{registry=\"ppserver\"} 0.008") {
		t.Errorf("histogram sum not in seconds:\n%s", out)
	}
	// Buckets must be cumulative and end at the total count.
	if strings.Count(out, "ppstream_round_linear_seconds_bucket") != 37 {
		t.Errorf("want 37 buckets (36 bounds + +Inf):\n%s", out)
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"round.0.linear":  "round_0_linear",
		"tcp.bytes_sent":  "tcp_bytes_sent",
		"weird-name/x":    "weird_name_x",
		"0starts.numeric": "_0starts_numeric",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promEscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escape = %q", got)
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry("rt")
	RegisterRuntimeMetrics(reg)
	s := reg.Snapshot()
	if s.Gauges["runtime.goroutines"] < 1 {
		t.Errorf("goroutines gauge %d", s.Gauges["runtime.goroutines"])
	}
	if s.Gauges["runtime.heap_alloc_bytes"] <= 0 {
		t.Errorf("heap gauge %d", s.Gauges["runtime.heap_alloc_bytes"])
	}
	if _, ok := s.Gauges["runtime.gc_pause_total_ns"]; !ok {
		t.Error("gc pause gauge missing")
	}
	RegisterRuntimeMetrics(nil) // must not panic
}
