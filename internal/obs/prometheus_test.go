package obs

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry("ppserver")
	reg.Counter("rounds.served").Add(7)
	reg.Gauge("sessions.active").Set(2)
	reg.GaugeFunc("queue.depth", func() int64 { return 5 })
	h := reg.Histogram("round.linear")
	h.Observe(3 * time.Millisecond)
	h.Observe(5 * time.Millisecond)

	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ppstream_rounds_served counter",
		`ppstream_rounds_served{registry="ppserver"} 7`,
		"# TYPE ppstream_sessions_active gauge",
		`ppstream_sessions_active{registry="ppserver"} 2`,
		`ppstream_queue_depth{registry="ppserver"} 5`,
		"# TYPE ppstream_round_linear_seconds histogram",
		`ppstream_round_linear_seconds_count{registry="ppserver"} 2`,
		`le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// _sum is in seconds: 8ms total.
	if !strings.Contains(out, "_sum{registry=\"ppserver\"} 0.008") {
		t.Errorf("histogram sum not in seconds:\n%s", out)
	}
	// Buckets must be cumulative and end at the total count.
	if strings.Count(out, "ppstream_round_linear_seconds_bucket") != 37 {
		t.Errorf("want 37 buckets (36 bounds + +Inf):\n%s", out)
	}
}

func TestPromNameSanitization(t *testing.T) {
	cases := map[string]string{
		"round.0.linear":  "round_0_linear",
		"tcp.bytes_sent":  "tcp_bytes_sent",
		"weird-name/x":    "weird_name_x",
		"0starts.numeric": "_0starts_numeric",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
	if got := promEscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("escape = %q", got)
	}
}

// scanExposition is a strict exposition-format (0.0.4) checker: every
// line must be a well-formed TYPE comment or sample, at most one TYPE
// line may exist per metric name, all of a metric's samples must sit
// contiguously under its TYPE line, histogram buckets must be cumulative
// with the +Inf bucket equal to _count, and metric names must match the
// Prometheus grammar. Returns the ordered family names.
func scanExposition(t *testing.T, out string) []string {
	t.Helper()
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)
	typeSeen := map[string]bool{}
	closed := map[string]bool{} // families whose sample block has ended
	var families []string
	current := ""
	baseOf := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suf); b != name && typeSeen[b] {
				return b
			}
		}
		return name
	}
	var bucketCum uint64
	bucketCounts := map[string]uint64{} // family+registry -> +Inf cumulative
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", i+1, line)
			}
			name, typ := parts[2], parts[3]
			if !nameRe.MatchString(name) {
				t.Fatalf("line %d: invalid metric name %q", i+1, name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown type %q", i+1, typ)
			}
			if typeSeen[name] {
				t.Fatalf("line %d: duplicate TYPE line for %s", i+1, name)
			}
			if current != "" {
				closed[current] = true
			}
			typeSeen[name] = true
			families = append(families, name)
			current = name
			bucketCum = 0
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or comment: allowed anywhere
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed sample %q", i+1, line)
		}
		base := baseOf(m[1])
		if base != current {
			if closed[base] {
				t.Fatalf("line %d: sample for %s outside its contiguous family block", i+1, base)
			}
			t.Fatalf("line %d: sample %s has no preceding TYPE line", i+1, m[1])
		}
		if strings.HasSuffix(m[1], "_bucket") && strings.Contains(m[2], "le=") {
			var v uint64
			if _, err := fmt.Sscanf(m[3], "%d", &v); err != nil {
				t.Fatalf("line %d: non-integer bucket count %q", i+1, m[3])
			}
			if strings.Contains(m[2], `le="+Inf"`) {
				bucketCounts[base+m[2][:strings.Index(m[2], ",")]] = v
				bucketCum = 0
			} else {
				if v < bucketCum {
					t.Fatalf("line %d: non-cumulative bucket: %d after %d", i+1, v, bucketCum)
				}
				bucketCum = v
			}
		}
		if strings.HasSuffix(m[1], "_count") && typeSeen[base] {
			var v uint64
			if _, err := fmt.Sscanf(m[3], "%d", &v); err == nil {
				key := base + m[2][:len(m[2])-1]
				if inf, ok := bucketCounts[key]; ok && inf != v {
					t.Fatalf("line %d: +Inf bucket %d != _count %d for %s", i+1, inf, v, key)
				}
			}
		}
	}
	return families
}

// TestWritePrometheusMultiRegistryGrouping is the conformance regression
// for shared metric names: two registries exposing the same counters and
// histograms must yield ONE TYPE line per family with both registries'
// samples contiguous beneath it — the exposition format rejects
// duplicate TYPE lines and split sample blocks.
func TestWritePrometheusMultiRegistryGrouping(t *testing.T) {
	a := NewRegistry("server-a")
	b := NewRegistry("server-b")
	for _, reg := range []*Registry{a, b} {
		reg.Counter("rounds.served").Add(3)
		reg.Gauge("sessions.active").Set(1)
		reg.Histogram("round.linear").Observe(2 * time.Millisecond)
	}
	var buf strings.Builder
	if err := WritePrometheus(&buf, a, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	scanExposition(t, out)
	for _, name := range []string{
		"# TYPE ppstream_rounds_served counter",
		"# TYPE ppstream_sessions_active gauge",
		"# TYPE ppstream_round_linear_seconds histogram",
	} {
		if got := strings.Count(out, name+"\n"); got != 1 {
			t.Errorf("%d TYPE lines for %q, want exactly 1:\n%s", got, name, out)
		}
	}
	for _, want := range []string{
		`ppstream_rounds_served{registry="server-a"} 3`,
		`ppstream_rounds_served{registry="server-b"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing sample %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusTypeConflict(t *testing.T) {
	a := NewRegistry("a")
	a.Counter("queue.depth").Add(1)
	b := NewRegistry("b")
	b.Gauge("queue.depth").Set(4)
	var buf strings.Builder
	err := WritePrometheus(&buf, a, b)
	if err == nil || !strings.Contains(err.Error(), "both") {
		t.Fatalf("cross-registry type conflict not rejected: %v", err)
	}
}

// TestWritePrometheusGolden pins the exact exposition output for a fixed
// registry, so format drift (ordering, spacing, escaping, unit suffixes)
// is a visible diff instead of a silent scrape breakage.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry(`quo"te`)
	reg.Counter("cost.modexps").Add(41)
	reg.Gauge("sessions.active").Set(2)
	var buf strings.Builder
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE ppstream_cost_modexps counter\n" +
		"ppstream_cost_modexps{registry=\"quo\\\"te\"} 41\n" +
		"# TYPE ppstream_sessions_active gauge\n" +
		"ppstream_sessions_active{registry=\"quo\\\"te\"} 2\n"
	if buf.String() != want {
		t.Errorf("golden mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
	scanExposition(t, buf.String())
}

// TestWritePrometheusCostCounters checks the full cost-meter field set
// survives into the Prometheus path with conformant names.
func TestWritePrometheusCostCounters(t *testing.T) {
	reg := NewRegistry("srv")
	AddCostToRegistry(reg, CostStats{
		ModExps: 1, MulMods: 2, ModInverses: 3, Rerands: 4, PoolHits: 5,
		PoolMisses: 6, Encrypts: 7, Decrypts: 8, CipherBytesIn: 9, CipherBytesOut: 10,
		Triples: 11, OpenedWords: 12, GCGates: 13, ExtOTs: 14, PlainOps: 15,
	})
	var buf strings.Builder
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	scanExposition(t, out)
	for _, f := range CostFields() {
		want := "ppstream_cost_" + promName(f.Name)
		if !strings.Contains(out, want+`{registry="srv"}`) {
			t.Errorf("cost field %s missing from Prometheus output as %s:\n%s", f.Name, want, out)
		}
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry("rt")
	RegisterRuntimeMetrics(reg)
	s := reg.Snapshot()
	if s.Gauges["runtime.goroutines"] < 1 {
		t.Errorf("goroutines gauge %d", s.Gauges["runtime.goroutines"])
	}
	if s.Gauges["runtime.heap_alloc_bytes"] <= 0 {
		t.Errorf("heap gauge %d", s.Gauges["runtime.heap_alloc_bytes"])
	}
	if _, ok := s.Gauges["runtime.gc_pause_total_ns"]; !ok {
		t.Error("gc pause gauge missing")
	}
	RegisterRuntimeMetrics(nil) // must not panic
}
