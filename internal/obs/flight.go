package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// This file holds the flight recorder: bounded in-memory rings of
// recently completed request traces (with their crypto-cost profiles)
// that a live process dumps on demand — /debug/flight over HTTP, SIGQUIT
// on the console — so the question "what did the last requests actually
// do" is answerable after the fact without having had tracing output
// enabled. Three views are kept: the last-N completed traces, the
// slowest-K traces seen so far, and every errored trace (bounded, newest
// wins), because the interesting request is rarely still in the
// last-N window by the time someone looks.

// FlightRecord is one recorded request: its merged trace tree, the
// wall-clock completion time, and the error text for failed requests.
type FlightRecord struct {
	// When is the completion timestamp.
	When time.Time `json:"when"`
	// TraceID duplicates the trace's ID at the top level so flight
	// entries join directly against the span store and server logs.
	TraceID string `json:"trace_id"`
	// Plan is the session's per-round backend assignment ("paillier-he",
	// "ss-gc", "clear"), when known.
	Plan []string `json:"plan,omitempty"`
	// Trace is the request's merged cross-party trace (segments carry
	// their cost annotations). Never nil.
	Trace *TraceTree `json:"trace"`
	// Err is the failure, empty for successful requests.
	Err string `json:"err,omitempty"`
}

// FlightDump is the JSON document /debug/flight and the SIGQUIT handler
// emit.
type FlightDump struct {
	// Recorded counts every Record call since construction, including
	// those that have since rotated out of the rings.
	Recorded uint64 `json:"recorded"`
	// Recent is the last-N completed traces, oldest first.
	Recent []FlightRecord `json:"recent"`
	// Slowest is the K slowest traces seen so far, slowest first.
	Slowest []FlightRecord `json:"slowest"`
	// Errors is the most recent errored traces, oldest first.
	Errors []FlightRecord `json:"errors"`
}

// Flight ring-size defaults, used when NewFlightRecorder receives
// non-positive sizes.
const (
	DefaultFlightRecent  = 64
	DefaultFlightSlowest = 16
	DefaultFlightErrors  = 64
)

// FlightRecorder keeps the bounded trace rings. Safe for concurrent
// Record and Dump calls; Record is a short critical section (no
// allocation beyond the record itself), so it stays off the request
// hot path's contention profile.
type FlightRecorder struct {
	mu       sync.Mutex
	recorded uint64
	recent   ring
	errors   ring
	slowest  []FlightRecord // max-K, unsorted; smallest evicted on insert
	slowCap  int
}

// ring is a fixed-capacity FIFO of flight records.
type ring struct {
	buf   []FlightRecord
	next  int
	count int
}

func (r *ring) push(rec FlightRecord) {
	if len(r.buf) == 0 {
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

// list returns the ring's records oldest first.
func (r *ring) list() []FlightRecord {
	out := make([]FlightRecord, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// NewFlightRecorder creates a recorder holding the last recentN completed
// traces, the slowestK slowest traces, and the last errorsN errored
// traces. Non-positive sizes take the DefaultFlight* values.
func NewFlightRecorder(recentN, slowestK, errorsN int) *FlightRecorder {
	if recentN <= 0 {
		recentN = DefaultFlightRecent
	}
	if slowestK <= 0 {
		slowestK = DefaultFlightSlowest
	}
	if errorsN <= 0 {
		errorsN = DefaultFlightErrors
	}
	return &FlightRecorder{
		recent:  ring{buf: make([]FlightRecord, recentN)},
		errors:  ring{buf: make([]FlightRecord, errorsN)},
		slowest: make([]FlightRecord, 0, slowestK),
		slowCap: slowestK,
	}
}

// Record adds one completed request. A nil tree is ignored (nothing to
// show); err non-nil routes the record into the error ring as well. A
// nil recorder is a no-op so unconfigured paths need no guard.
func (f *FlightRecorder) Record(tree *TraceTree, err error) {
	f.RecordPlan(tree, nil, err)
}

// RecordPlan is Record with the session's per-round backend plan
// attached, so the dump shows which backend mix produced each trace.
func (f *FlightRecorder) RecordPlan(tree *TraceTree, plan []string, err error) {
	if f == nil || tree == nil {
		return
	}
	rec := FlightRecord{When: time.Now(), TraceID: tree.ID, Plan: plan, Trace: tree}
	if err != nil {
		rec.Err = err.Error()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recorded++
	f.recent.push(rec)
	if rec.Err != "" {
		f.errors.push(rec)
	}
	if len(f.slowest) < f.slowCap {
		f.slowest = append(f.slowest, rec)
		return
	}
	// Evict the fastest of the keepers if this one is slower.
	min := 0
	for i := 1; i < len(f.slowest); i++ {
		if f.slowest[i].Trace.Total < f.slowest[min].Trace.Total {
			min = i
		}
	}
	if tree.Total > f.slowest[min].Trace.Total {
		f.slowest[min] = rec
	}
}

// Recorded returns the total number of Record calls.
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.recorded
}

// Dump snapshots the rings. Slowest is sorted slowest-first; the other
// views are oldest-first.
func (f *FlightRecorder) Dump() FlightDump {
	if f == nil {
		return FlightDump{}
	}
	f.mu.Lock()
	dump := FlightDump{
		Recorded: f.recorded,
		Recent:   f.recent.list(),
		Errors:   f.errors.list(),
		Slowest:  append([]FlightRecord(nil), f.slowest...),
	}
	f.mu.Unlock()
	sort.Slice(dump.Slowest, func(i, j int) bool {
		return dump.Slowest[i].Trace.Total > dump.Slowest[j].Trace.Total
	})
	return dump
}

// WriteJSON writes the dump as indented JSON. Encoder errors (a closed
// HTTP connection, a full pipe) are returned, never ignored, so the
// erraudit gate stays meaningful for this path.
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f.Dump()); err != nil {
		return fmt.Errorf("obs: encoding flight dump: %w", err)
	}
	return nil
}
