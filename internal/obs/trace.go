package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// This file holds the cross-party distributed-tracing model. A trace ID
// is assigned where a request enters the system (stream.Pipeline.Submit
// or protocol.Client.Infer) and propagated in every wire frame, so both
// the data provider and the model provider record spans under the same
// identity. The client merges its own spans with the server's shipped
// spans into one TraceTree — the Dapper-style end-to-end view the
// per-process stage traces of the pipeline cannot give on their own.

// traceFallback seeds trace IDs when crypto/rand is unavailable; the
// IDs stay unique within the process, which is all correlation needs.
var traceFallback atomic.Uint64

// traceRandom is the entropy source for trace IDs, a variable so tests
// can exercise the failure path. It is read once at ID generation; a
// short or failed read falls back to the process-unique counter, so
// NewTraceID never panics and never blocks on a broken entropy source.
var traceRandom io.Reader = rand.Reader

// NewTraceID returns a 16-hex-character request trace identifier. Under
// entropy failure it degrades to a process-unique "fb"-prefixed counter
// ID rather than failing: trace IDs need correlation, not secrecy.
func NewTraceID() string {
	var b [8]byte
	if n, err := io.ReadFull(traceRandom, b[:]); err != nil || n != len(b) {
		return fmt.Sprintf("fb%014x", traceFallback.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// Segment is one timed slice of a traced request, attributed to a party:
// "client" (data provider), "server" (model provider), or "wire" (the
// inferred transport gap between the two). Round is the protocol round
// the segment belongs to, or -1 for request-scoped segments such as
// input encryption.
type Segment struct {
	Party string        `json:"party"`
	Name  string        `json:"name"`
	Round int           `json:"round"`
	Dur   time.Duration `json:"dur_ns"`
	// Backend, when non-empty, names the crypto backend that executed
	// this segment's round ("paillier-he", "ss-gc", "clear"), so a
	// mixed-backend request's trace shows the ILP-chosen assignment.
	Backend string `json:"backend,omitempty"`
	// Cost, when non-nil, is the crypto-cost profile attributed to this
	// segment (modexps, ciphertext bytes, pool hit rate, ...), so the
	// tree explains why the segment took its duration.
	Cost *CostStats `json:"cost,omitempty"`
}

// Label renders the per-party segment name the breakdown tables group
// by ("client-nonlinear", "server-kernel[ss-gc]", "wire", ...). The
// backend suffix keeps per-backend timings separate in the breakdown.
func (s Segment) Label() string {
	base := s.Name
	if s.Party != "" && s.Party != s.Name {
		base = s.Party + "-" + s.Name
	}
	if s.Backend != "" {
		base += "[" + s.Backend + "]"
	}
	return base
}

// TraceTree is one request's merged cross-party trace: every segment of
// both parties under a single trace ID, plus the client-observed
// end-to-end latency. Segment durations sum to Total minus only the
// merge bookkeeping between measured slices (and any wire-gap clamping),
// so the tree accounts for where the request actually spent its time.
type TraceTree struct {
	ID       string        `json:"trace_id"`
	Total    time.Duration `json:"total_ns"`
	Segments []Segment     `json:"segments"`
}

// Sum adds up all segment durations — compare against Total to bound
// the unattributed remainder.
func (t *TraceTree) Sum() time.Duration {
	if t == nil {
		return 0
	}
	var d time.Duration
	for _, s := range t.Segments {
		d += s.Dur
	}
	return d
}

// PartyTotal sums the segments attributed to one party.
func (t *TraceTree) PartyTotal(party string) time.Duration {
	if t == nil {
		return 0
	}
	var d time.Duration
	for _, s := range t.Segments {
		if s.Party == party {
			d += s.Dur
		}
	}
	return d
}

// SegmentTotal sums the segments whose Label matches. A bare label
// ("server-kernel") also matches its backend-suffixed forms
// ("server-kernel[ss-gc]"), so callers that aggregate across backends
// keep working against plans that split a round set over several.
func (t *TraceTree) SegmentTotal(label string) time.Duration {
	if t == nil {
		return 0
	}
	var d time.Duration
	for _, s := range t.Segments {
		got := s.Label()
		if got == label || (s.Backend != "" && got == label+"["+s.Backend+"]") {
			d += s.Dur
		}
	}
	return d
}

// Cost sums every segment's crypto-cost profile: the request's total
// accounting across both parties.
func (t *TraceTree) Cost() CostStats {
	var total CostStats
	if t == nil {
		return total
	}
	for _, s := range t.Segments {
		if s.Cost != nil {
			total.Add(*s.Cost)
		}
	}
	return total
}

// Parties returns the distinct parties appearing in the tree.
func (t *TraceTree) Parties() []string {
	if t == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, s := range t.Segments {
		if !seen[s.Party] {
			seen[s.Party] = true
			out = append(out, s.Party)
		}
	}
	return out
}

// BreakdownRow is one segment label's distribution across a set of
// traces: per-request totals (a request's rounds of the same label are
// summed first), then percentiles across requests.
type BreakdownRow struct {
	Label string
	Count int
	Total time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	// Share is this label's fraction of the summed duration of all
	// labels (0..1).
	Share float64
}

// segmentOrder fixes the canonical row order of the protocol's merged
// breakdown; labels outside the list sort after it, alphabetically.
var segmentOrder = map[string]int{
	"client-queue":     0,
	"client-encrypt":   1,
	"wire":             2,
	"server-queue":     3,
	"server-kernel":    4,
	"server-permute":   5,
	"client-nonlinear": 6,
}

// Breakdown aggregates merged traces into per-segment-label rows with
// p50/p95/p99 of the per-request label totals. Nil trees (dropped or
// failed requests) are skipped.
func Breakdown(trees []*TraceTree) []BreakdownRow {
	perLabel := map[string][]time.Duration{}
	for _, t := range trees {
		if t == nil {
			continue
		}
		reqTotals := map[string]time.Duration{}
		for _, s := range t.Segments {
			reqTotals[s.Label()] += s.Dur
		}
		for label, d := range reqTotals {
			perLabel[label] = append(perLabel[label], d)
		}
	}
	var grand time.Duration
	for _, ds := range perLabel {
		for _, d := range ds {
			grand += d
		}
	}
	if len(perLabel) == 0 {
		return nil
	}
	rows := make([]BreakdownRow, 0, len(perLabel))
	for label, ds := range perLabel {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		var total time.Duration
		for _, d := range ds {
			total += d
		}
		row := BreakdownRow{
			Label: label,
			Count: len(ds),
			Total: total,
			P50:   exactPercentile(ds, 0.50),
			P95:   exactPercentile(ds, 0.95),
			P99:   exactPercentile(ds, 0.99),
		}
		if grand > 0 {
			row.Share = float64(total) / float64(grand)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		oi, iok := segmentOrder[rows[i].Label]
		oj, jok := segmentOrder[rows[j].Label]
		switch {
		case iok && jok:
			return oi < oj
		case iok != jok:
			return iok
		default:
			return rows[i].Label < rows[j].Label
		}
	})
	return rows
}

// exactPercentile reads the p-th percentile from an ascending slice.
func exactPercentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// RenderBreakdown formats the per-segment table the way ppbench trace
// and ppclient -trace print it.
func RenderBreakdown(rows []BreakdownRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %6s %10s %10s %10s %10s %7s\n",
		"segment", "count", "p50", "p95", "p99", "total", "share")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %6d %10s %10s %10s %10s %6.1f%%\n",
			r.Label, r.Count,
			fmtTraceDur(r.P50), fmtTraceDur(r.P95), fmtTraceDur(r.P99),
			fmtTraceDur(r.Total), 100*r.Share)
	}
	return b.String()
}

// RenderTree formats one merged trace, segment by segment in recorded
// order, with the unattributed remainder on the last line.
func RenderTree(t *TraceTree) string {
	if t == nil {
		return "(no trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  total %s\n", t.ID, fmtTraceDur(t.Total))
	for _, s := range t.Segments {
		round := "-"
		if s.Round >= 0 {
			round = fmt.Sprint(s.Round)
		}
		fmt.Fprintf(&b, "  %-18s round %-3s %10s\n", s.Label(), round, fmtTraceDur(s.Dur))
		if s.Cost != nil && !s.Cost.IsZero() {
			fmt.Fprintf(&b, "    cost: %s\n", s.Cost.String())
		}
	}
	if rem := t.Total - t.Sum(); rem > 0 {
		fmt.Fprintf(&b, "  %-18s %19s\n", "(unattributed)", fmtTraceDur(rem))
	}
	if total := t.Cost(); !total.IsZero() {
		fmt.Fprintf(&b, "  request cost: %s\n", total.String())
	}
	return b.String()
}

func fmtTraceDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}
