package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestProfileLoopCapturesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	stop, err := StartProfileLoop(ProfileLoopOptions{
		Dir:         dir,
		Every:       50 * time.Millisecond,
		CPUDuration: 10 * time.Millisecond,
		Keep:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until at least one capture lands (CPU + heap), bounded.
	deadline := time.After(5 * time.Second)
	for {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var cpu, heap int
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "cpu-") {
				cpu++
			}
			if strings.HasPrefix(e.Name(), "heap-") {
				heap++
			}
		}
		if cpu >= 1 && heap >= 1 {
			if cpu > 1 || heap > 1 {
				t.Errorf("prune kept %d cpu / %d heap profiles, want <=1 each", cpu, heap)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatalf("no profiles captured; dir holds %d entries", len(entries))
		case <-time.After(20 * time.Millisecond):
		}
	}
	stop()
	// The heap snapshot must be a readable non-empty file.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "heap-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Errorf("heap profile %s is empty", e.Name())
		}
	}
}

func TestProfileLoopStopDuringCapture(t *testing.T) {
	dir := t.TempDir()
	stop, err := StartProfileLoop(ProfileLoopOptions{
		Dir:         dir,
		Every:       20 * time.Millisecond,
		CPUDuration: 10 * time.Second, // capped to Every/2 by the loop
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // land inside a capture window
	finished := make(chan struct{})
	go func() { stop(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not interrupt an in-flight CPU capture")
	}
}

func TestProfileLoopBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := StartProfileLoop(ProfileLoopOptions{Dir: filepath.Join(file, "sub")}); err == nil {
		t.Fatal("StartProfileLoop accepted an uncreatable directory")
	}
}

func TestPruneProfilesKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	names := []string{
		"cpu-20250101T000000.pprof", "cpu-20250101T000100.pprof", "cpu-20250101T000200.pprof",
		"heap-20250101T000000.pprof", "heap-20250101T000100.pprof",
		"unrelated.txt",
	}
	for _, n := range names {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("p"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := pruneProfiles(dir, 1); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, e := range entries {
		got[e.Name()] = true
	}
	want := []string{"cpu-20250101T000200.pprof", "heap-20250101T000100.pprof", "unrelated.txt"}
	if len(got) != len(want) {
		t.Fatalf("after prune: %v, want %v", got, want)
	}
	for _, n := range want {
		if !got[n] {
			t.Errorf("prune removed %s", n)
		}
	}
}
