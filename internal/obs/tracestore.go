package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceStore is the tail-sampling span store: it sees every completed
// request's merged TraceTree and decides AFTER the fact — when the
// outcome is known — which ones are worth keeping. Retention policy,
// in priority order:
//
//  1. errored/shed/deadline-expired requests are always kept;
//  2. the slowest-K requests per window are kept (the tail an operator
//     actually debugs);
//  3. the rest are sampled with probability SampleProb, decided by
//     hashing the trace ID — both parties of a request compute the
//     identical decision from the ID already riding the TraceContext,
//     so client and server retain the same requests with no extra wire
//     state.
//
// Kept records append to a bounded on-disk JSONL span log with
// size-based rotation (or an in-memory ring when no directory is
// configured) and are queryable via /debug/traces and `ppbench traces`.
type TraceStore struct {
	cfg TraceStoreConfig

	mu      sync.Mutex
	file    *os.File
	size    int64
	seq     int
	mem     []TraceRecord // bounded ring, newest last
	winFrom time.Time     // current slowest-K window start
	winDurs []time.Duration
	now     func() time.Time

	kept    map[string]*Counter
	dropped *Counter
}

// TraceStoreConfig configures retention and the span log.
type TraceStoreConfig struct {
	// Dir receives the JSONL span log ("traces-<seq>.jsonl"). Empty
	// keeps records only in the in-memory ring.
	Dir string
	// MaxFileBytes rotates the current log file past this size
	// (default 4 MiB).
	MaxFileBytes int64
	// MaxFiles bounds how many rotated files are kept (default 4).
	MaxFiles int
	// SlowestK keeps the K slowest requests per Window (default 8).
	SlowestK int
	// Window is the slowest-K comparison window (default 1m).
	Window time.Duration
	// SampleProb is the probabilistic keep rate for unremarkable
	// requests, in [0,1]. Zero keeps none beyond the errored and
	// slowest-K records.
	SampleProb float64
	// MemRecords bounds the in-memory ring (default 256).
	MemRecords int
	// Registry, when non-nil, receives tracestore.kept.* / dropped
	// counters.
	Registry *Registry
}

// TraceRecord is one retained request in the span log.
type TraceRecord struct {
	When time.Time `json:"when"`
	// Reason is why the record was kept: "error", "slow", or "sampled".
	Reason string     `json:"reason"`
	Err    string     `json:"err,omitempty"`
	Trace  *TraceTree `json:"trace"`
}

// Retention reasons.
const (
	TraceKeptError   = "error"
	TraceKeptSlow    = "slow"
	TraceKeptSampled = "sampled"
)

// TraceSampled is the deterministic sampling decision for a trace ID:
// an FNV-1a hash of the ID mapped onto [0,1) and compared against prob.
// Both parties of a request reach the same verdict from the shared ID.
func TraceSampled(id string, prob float64) bool {
	if prob >= 1 {
		return true
	}
	if prob <= 0 || id == "" {
		return false
	}
	h := fnv.New64a()
	_, _ = io.WriteString(h, id) // hash.Hash.Write never errors
	const span = 1 << 53         // float64-exact range
	return float64(h.Sum64()%span)/span < prob
}

// NewTraceStore opens the store, creating cfg.Dir when needed. Close
// releases the current log file.
func NewTraceStore(cfg TraceStoreConfig) (*TraceStore, error) {
	if cfg.MaxFileBytes <= 0 {
		cfg.MaxFileBytes = 4 << 20
	}
	if cfg.MaxFiles <= 0 {
		cfg.MaxFiles = 4
	}
	if cfg.SlowestK <= 0 {
		cfg.SlowestK = 8
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.SampleProb < 0 {
		cfg.SampleProb = 0
	}
	if cfg.MemRecords <= 0 {
		cfg.MemRecords = 256
	}
	ts := &TraceStore{cfg: cfg, now: time.Now, kept: map[string]*Counter{}, dropped: &Counter{}}
	if reg := cfg.Registry; reg != nil {
		for _, reason := range []string{TraceKeptError, TraceKeptSlow, TraceKeptSampled} {
			ts.kept[reason] = reg.Counter("tracestore.kept." + reason)
		}
		ts.dropped = reg.Counter("tracestore.dropped")
	} else {
		for _, reason := range []string{TraceKeptError, TraceKeptSlow, TraceKeptSampled} {
			ts.kept[reason] = &Counter{}
		}
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("obs: trace store dir: %w", err)
		}
		// Resume after the highest existing sequence number so restarts
		// never clobber earlier logs.
		seqs, err := ts.logSeqs()
		if err != nil {
			return nil, err
		}
		if len(seqs) > 0 {
			ts.seq = seqs[len(seqs)-1] + 1
		}
	}
	return ts, nil
}

// SetClock replaces the store's time source — a test hook. Not for
// production use.
func (ts *TraceStore) SetClock(now func() time.Time) {
	ts.mu.Lock()
	ts.now = now
	ts.mu.Unlock()
}

func traceLogName(seq int) string { return fmt.Sprintf("traces-%06d.jsonl", seq) }

// logSeqs lists the directory's span-log sequence numbers, ascending.
func (ts *TraceStore) logSeqs() ([]int, error) {
	entries, err := os.ReadDir(ts.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("obs: trace store dir: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "traces-%d.jsonl", &n); err == nil && strings.HasSuffix(e.Name(), ".jsonl") {
			seqs = append(seqs, n)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// Record offers a completed request to the store and reports whether it
// was retained (with the reason). Nil-safe and nil-tree-safe: both
// report a drop without recording.
func (ts *TraceStore) Record(tree *TraceTree, err error) (string, bool) {
	if ts == nil || tree == nil {
		return "", false
	}
	now := func() time.Time { ts.mu.Lock(); defer ts.mu.Unlock(); return ts.now() }()
	reason := ""
	switch {
	case err != nil:
		reason = TraceKeptError
	case ts.keepSlow(now, tree.Total):
		reason = TraceKeptSlow
	case TraceSampled(tree.ID, ts.cfg.SampleProb):
		reason = TraceKeptSampled
	default:
		ts.dropped.Inc()
		return "", false
	}
	rec := TraceRecord{When: now.UTC(), Reason: reason, Trace: tree}
	if err != nil {
		rec.Err = err.Error()
	}
	ts.append(rec)
	ts.kept[reason].Inc()
	return reason, true
}

// keepSlow decides whether a request is among the slowest-K of the
// current window, tracking the window's retained durations.
func (ts *TraceStore) keepSlow(now time.Time, total time.Duration) bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if now.Sub(ts.winFrom) >= ts.cfg.Window {
		ts.winFrom = now
		ts.winDurs = ts.winDurs[:0]
	}
	if len(ts.winDurs) < ts.cfg.SlowestK {
		ts.winDurs = append(ts.winDurs, total)
		return true
	}
	// Replace the window's fastest retained duration if this one is
	// slower — keeps the invariant "winDurs holds the K slowest so far".
	minIdx := 0
	for i, d := range ts.winDurs {
		if d < ts.winDurs[minIdx] {
			minIdx = i
		}
	}
	if total <= ts.winDurs[minIdx] {
		return false
	}
	ts.winDurs[minIdx] = total
	return true
}

// append writes the record to the memory ring and, when configured, the
// JSONL span log, rotating and pruning as needed.
func (ts *TraceStore) append(rec TraceRecord) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.mem = append(ts.mem, rec)
	if over := len(ts.mem) - ts.cfg.MemRecords; over > 0 {
		ts.mem = append(ts.mem[:0], ts.mem[over:]...)
	}
	if ts.cfg.Dir == "" {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	if ts.file != nil && ts.size+int64(len(line)) > ts.cfg.MaxFileBytes {
		_ = ts.file.Close()
		ts.file = nil
		ts.seq++
	}
	if ts.file == nil {
		f, err := os.OpenFile(filepath.Join(ts.cfg.Dir, traceLogName(ts.seq)),
			os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return
		}
		ts.file = f
		ts.size = 0
		ts.prune()
	}
	n, err := ts.file.Write(line)
	ts.size += int64(n)
	if err != nil {
		// A failing span log must not take down serving; drop to the
		// memory ring only and retry the file on next rotation.
		_ = ts.file.Close()
		ts.file = nil
	}
}

// prune deletes rotated files beyond MaxFiles, oldest first. Called
// with the lock held.
func (ts *TraceStore) prune() {
	seqs, err := ts.logSeqs()
	if err != nil {
		return
	}
	for len(seqs) > ts.cfg.MaxFiles {
		_ = os.Remove(filepath.Join(ts.cfg.Dir, traceLogName(seqs[0])))
		seqs = seqs[1:]
	}
}

// Close flushes and closes the current span-log file.
func (ts *TraceStore) Close() error {
	if ts == nil {
		return nil
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.file == nil {
		return nil
	}
	err := ts.file.Close()
	ts.file = nil
	return err
}

// TraceQuery filters retained records.
type TraceQuery struct {
	// Since excludes records retained before this instant (zero = all).
	Since time.Time
	// MinDur excludes requests faster than this.
	MinDur time.Duration
	// ID, when set, matches one trace ID exactly.
	ID string
	// Limit bounds the result count, newest kept (0 = DefaultTraceQueryLimit).
	Limit int
}

// DefaultTraceQueryLimit bounds /debug/traces responses.
const DefaultTraceQueryLimit = 100

func (q TraceQuery) match(rec TraceRecord) bool {
	if !q.Since.IsZero() && rec.When.Before(q.Since) {
		return false
	}
	if rec.Trace == nil {
		return false
	}
	if q.MinDur > 0 && rec.Trace.Total < q.MinDur {
		return false
	}
	if q.ID != "" && rec.Trace.ID != q.ID {
		return false
	}
	return true
}

// Query returns matching retained records, oldest first. When a span
// log is configured it is authoritative (rotated files included);
// otherwise the memory ring answers.
func (ts *TraceStore) Query(q TraceQuery) ([]TraceRecord, error) {
	if ts == nil {
		return nil, nil
	}
	if q.Limit <= 0 {
		q.Limit = DefaultTraceQueryLimit
	}
	var out []TraceRecord
	if ts.cfg.Dir == "" {
		ts.mu.Lock()
		for _, rec := range ts.mem {
			if q.match(rec) {
				out = append(out, rec)
			}
		}
		ts.mu.Unlock()
	} else {
		ts.mu.Lock()
		seqs, err := ts.logSeqs()
		ts.mu.Unlock()
		if err != nil {
			return nil, err
		}
		for _, seq := range seqs {
			f, err := os.Open(filepath.Join(ts.cfg.Dir, traceLogName(seq)))
			if err != nil {
				continue // rotated away between listing and open
			}
			sc := bufio.NewScanner(f)
			sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
			for sc.Scan() {
				var rec TraceRecord
				if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
					continue // torn final line after a crash
				}
				if q.match(rec) {
					out = append(out, rec)
				}
			}
			_ = f.Close()
		}
	}
	if over := len(out) - q.Limit; over > 0 {
		out = out[over:]
	}
	return out, nil
}

// WriteJSON writes the query result as an indented JSON array.
func (ts *TraceStore) WriteJSON(w io.Writer, q TraceQuery) error {
	recs, err := ts.Query(q)
	if err != nil {
		return err
	}
	if recs == nil {
		recs = []TraceRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}
