package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SLO burn-rate engine: declarative objectives evaluated as
// multi-window multi-burn-rate alerts over windowed counters.
//
// Each observed request is classified good or bad per objective. A
// latency objective like "p99=250ms" means "99% of requests finish
// within 250ms", so a request is bad when it is slower than 250ms (or
// failed outright); an availability objective like "avail=99.9" marks
// failed requests bad. The burn rate over a window is
//
//	burn = (bad/total) / (1 - objective)
//
// i.e. how many times faster than budget the error budget is being
// consumed: burn 1 spends exactly the budget, burn 14.4 exhausts a
// 30-day budget in ~2 days. Following the multi-window pattern, the
// fast alert fires when burn ≥ 14.4 in BOTH the 5m and 1h windows
// (page-worthy, recent AND sustained), and the slow alert when burn ≥ 6
// in both the 30m and 6h windows (ticket-worthy). Short CI runs still
// trip the fast alert because all traffic lands inside both windows.
type SLOSpec struct {
	// Name keys the spec: "p99", "p95", "avail", … (lowercase; becomes a
	// slo.<name>.* gauge fragment and JSON key).
	Name string `json:"name"`
	// Objective is the good-fraction target in (0,1), e.g. 0.999.
	Objective float64 `json:"objective"`
	// LatencyTarget, when positive, makes this a latency objective: a
	// request is bad when slower than this. Zero means availability:
	// only failed (errored/shed/expired) requests are bad.
	LatencyTarget time.Duration `json:"latency_target_ns,omitempty"`
}

// ParseSLOSpecs parses the -slo flag syntax: a comma-separated list of
// "p<quantile>=<duration>" latency objectives and "avail=<percent>"
// availability objectives, e.g. "p99=250ms,avail=99.9".
func ParseSLOSpecs(s string) ([]SLOSpec, error) {
	var specs []SLOSpec
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("obs: SLO spec %q is not name=value", part)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if seen[key] {
			return nil, fmt.Errorf("obs: duplicate SLO spec %q", key)
		}
		seen[key] = true
		switch {
		case key == "avail":
			pct, err := strconv.ParseFloat(val, 64)
			if err != nil || pct <= 0 || pct >= 100 {
				return nil, fmt.Errorf("obs: availability objective %q must be a percentage in (0,100)", val)
			}
			specs = append(specs, SLOSpec{Name: key, Objective: pct / 100})
		case strings.HasPrefix(key, "p"):
			q, err := strconv.ParseFloat(key[1:], 64)
			if err != nil || q <= 0 || q >= 100 {
				return nil, fmt.Errorf("obs: latency quantile %q must be p<percent in (0,100)>", key)
			}
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("obs: latency target %q for %s is not a positive duration", val, key)
			}
			specs = append(specs, SLOSpec{Name: key, Objective: q / 100, LatencyTarget: d})
		default:
			return nil, fmt.Errorf("obs: unknown SLO spec %q (want p<quantile>=<duration> or avail=<percent>)", key)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("obs: empty SLO spec list")
	}
	return specs, nil
}

// Canonical multi-window multi-burn-rate thresholds.
const (
	DefaultSLOFastShort = 5 * time.Minute
	DefaultSLOFastLong  = time.Hour
	DefaultSLOSlowShort = 30 * time.Minute
	DefaultSLOSlowLong  = 6 * time.Hour
	DefaultSLOFastBurn  = 14.4
	DefaultSLOSlowBurn  = 6.0
)

// SLOConfig configures the engine. Zero window/threshold fields take
// the canonical defaults above.
type SLOConfig struct {
	Specs []SLOSpec

	FastShort, FastLong time.Duration
	SlowShort, SlowLong time.Duration
	FastBurn, SlowBurn  float64

	// Registry, when non-nil, receives slo.<name>.* gauges: burn rates
	// (×1000, since gauges are integral) over the fast windows and 0/1
	// alert flags.
	Registry *Registry
}

// sloState tracks one spec's good/bad counts over the longest window.
type sloState struct {
	spec SLOSpec
	good *WindowedCounter
	bad  *WindowedCounter
}

// SLOEngine classifies request outcomes against each objective and
// evaluates burn-rate alerts. Observe is a few atomic operations per
// spec; Evaluate is read-only and safe to call from gauge callbacks and
// HTTP handlers. A nil engine ignores observations, so callers need no
// "is SLO enabled" branches.
type SLOEngine struct {
	cfg    SLOConfig
	states []*sloState
}

// NewSLOEngine builds an engine for the given specs, registering
// slo.* gauges when cfg.Registry is set.
func NewSLOEngine(cfg SLOConfig) (*SLOEngine, error) {
	if len(cfg.Specs) == 0 {
		return nil, fmt.Errorf("obs: SLO engine needs at least one spec")
	}
	if cfg.FastShort <= 0 {
		cfg.FastShort = DefaultSLOFastShort
	}
	if cfg.FastLong <= 0 {
		cfg.FastLong = DefaultSLOFastLong
	}
	if cfg.SlowShort <= 0 {
		cfg.SlowShort = DefaultSLOSlowShort
	}
	if cfg.SlowLong <= 0 {
		cfg.SlowLong = DefaultSLOSlowLong
	}
	if cfg.FastBurn <= 0 {
		cfg.FastBurn = DefaultSLOFastBurn
	}
	if cfg.SlowBurn <= 0 {
		cfg.SlowBurn = DefaultSLOSlowBurn
	}
	span := cfg.FastLong
	for _, d := range []time.Duration{cfg.SlowShort, cfg.SlowLong, cfg.FastShort} {
		if d > span {
			span = d
		}
	}
	// Bucket width = the shortest window / 5 gives the 5m window a 1m
	// resolution at default settings; the ring spans the longest window.
	width := cfg.FastShort / 5
	if width <= 0 {
		width = time.Minute
	}
	buckets := int(span/width) + 1
	e := &SLOEngine{cfg: cfg}
	seen := map[string]bool{}
	for _, spec := range cfg.Specs {
		if spec.Name == "" || spec.Objective <= 0 || spec.Objective >= 1 {
			return nil, fmt.Errorf("obs: bad SLO spec %+v", spec)
		}
		if seen[spec.Name] {
			return nil, fmt.Errorf("obs: duplicate SLO spec %q", spec.Name)
		}
		seen[spec.Name] = true
		e.states = append(e.states, &sloState{
			spec: spec,
			good: NewWindowedCounter(width, buckets),
			bad:  NewWindowedCounter(width, buckets),
		})
	}
	if reg := cfg.Registry; reg != nil {
		for _, st := range e.states {
			st := st
			base := "slo." + st.spec.Name
			reg.GaugeFunc(base+".burn_short_milli", func() int64 {
				return int64(e.burn(st, e.cfg.FastShort) * 1000)
			})
			reg.GaugeFunc(base+".burn_long_milli", func() int64 {
				return int64(e.burn(st, e.cfg.FastLong) * 1000)
			})
			reg.GaugeFunc(base+".alert.fast", func() int64 {
				if e.evalState(st).FastAlert {
					return 1
				}
				return 0
			})
			reg.GaugeFunc(base+".alert.slow", func() int64 {
				if e.evalState(st).SlowAlert {
					return 1
				}
				return 0
			})
		}
	}
	return e, nil
}

// SetClock replaces the engine's time source on every windowed counter —
// a test hook. Not for production use.
func (e *SLOEngine) SetClock(now func() time.Time) {
	for _, st := range e.states {
		st.good.SetClock(now)
		st.bad.SetClock(now)
	}
}

// Observe classifies one finished request: its latency and whether it
// failed outright (error, shed, deadline expired). Failed requests are
// bad under every objective; slow-but-successful requests are bad under
// latency objectives only. Nil-safe.
func (e *SLOEngine) Observe(latency time.Duration, failed bool) {
	if e == nil {
		return
	}
	for _, st := range e.states {
		bad := failed
		if !bad && st.spec.LatencyTarget > 0 && latency > st.spec.LatencyTarget {
			bad = true
		}
		if bad {
			st.bad.Inc()
		} else {
			st.good.Inc()
		}
	}
}

// burn computes one spec's burn rate over the trailing window.
func (e *SLOEngine) burn(st *sloState, w time.Duration) float64 {
	good := st.good.ValueOver(w)
	bad := st.bad.ValueOver(w)
	total := good + bad
	if total == 0 {
		return 0
	}
	budget := 1 - st.spec.Objective
	return (float64(bad) / float64(total)) / budget
}

// SLOWindowBurn is one evaluation window's reading.
type SLOWindowBurn struct {
	Window time.Duration `json:"window_ns"`
	Good   uint64        `json:"good"`
	Bad    uint64        `json:"bad"`
	Burn   float64       `json:"burn"`
}

// SLOStatus is one objective's full evaluation.
type SLOStatus struct {
	Name          string          `json:"name"`
	Objective     float64         `json:"objective"`
	LatencyTarget time.Duration   `json:"latency_target_ns,omitempty"`
	Windows       []SLOWindowBurn `json:"windows"`
	FastAlert     bool            `json:"fast_alert"`
	SlowAlert     bool            `json:"slow_alert"`
}

func (e *SLOEngine) window(st *sloState, w time.Duration) SLOWindowBurn {
	return SLOWindowBurn{
		Window: w,
		Good:   st.good.ValueOver(w),
		Bad:    st.bad.ValueOver(w),
		Burn:   e.burn(st, w),
	}
}

func (e *SLOEngine) evalState(st *sloState) SLOStatus {
	s := SLOStatus{
		Name:          st.spec.Name,
		Objective:     st.spec.Objective,
		LatencyTarget: st.spec.LatencyTarget,
		Windows: []SLOWindowBurn{
			e.window(st, e.cfg.FastShort),
			e.window(st, e.cfg.FastLong),
			e.window(st, e.cfg.SlowShort),
			e.window(st, e.cfg.SlowLong),
		},
	}
	s.FastAlert = s.Windows[0].Burn >= e.cfg.FastBurn && s.Windows[1].Burn >= e.cfg.FastBurn
	s.SlowAlert = s.Windows[2].Burn >= e.cfg.SlowBurn && s.Windows[3].Burn >= e.cfg.SlowBurn
	return s
}

// Evaluate returns every objective's current status, sorted by name.
// Nil-safe (returns nil).
func (e *SLOEngine) Evaluate() []SLOStatus {
	if e == nil {
		return nil
	}
	out := make([]SLOStatus, 0, len(e.states))
	for _, st := range e.states {
		out = append(out, e.evalState(st))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
