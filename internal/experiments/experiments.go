// Package experiments regenerates every table and figure of the paper's
// evaluation (Section VI). Each experiment is a function returning typed
// rows plus a Render method producing the same series the paper reports;
// cmd/ppbench and the repository's bench_test.go both drive these.
//
// Absolute numbers differ from the paper's 9-server Xeon testbed (this
// is a pure-Go reproduction on one host); EXPERIMENTS.md records the
// expected *shapes* and the measured results side by side.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"ppstream/internal/dataset"
	"ppstream/internal/models"
	"ppstream/internal/nn"
)

// Config tunes experiment cost. Zero values select CI-friendly defaults;
// cmd/ppbench exposes flags for paper-scale runs.
type Config struct {
	// KeyBits is the Paillier key size for latency experiments
	// (default 512; the paper uses 2048).
	KeyBits int
	// Requests is the streaming batch size for effective-latency
	// measurements (default 4).
	Requests int
	// ProfileReps is the offline profiling repetition count
	// (default 2; the paper uses 100).
	ProfileReps int
	// Trials is the repetition count for statistical measurements
	// (default 3).
	Trials int
	// Quick restricts model sets to the smallest representatives so the
	// whole suite completes in CI time.
	Quick bool
	// RealTime measures wall-clock latency with the concurrent runtime
	// instead of the calibrated discrete-event model. Only meaningful on
	// multi-core hosts; this reproduction's default testbed has one CPU,
	// where parallel speedups can only be modelled (see
	// internal/simulate and DESIGN.md).
	RealTime bool
}

func (c Config) withDefaults() Config {
	if c.KeyBits == 0 {
		c.KeyBits = 512
	}
	if c.Requests == 0 {
		c.Requests = 4
	}
	if c.ProfileReps == 0 {
		c.ProfileReps = 2
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	return c
}

// prepared caches trained models so Table IV, Table V, Fig 6–9 and
// Table VII share one training run per model.
type prepared struct {
	net *nn.Network
	ds  *dataset.Dataset
}

var (
	cacheMu    sync.Mutex
	modelCache = map[string]*prepared{}
)

// preparedModel trains (or returns the cached) Table III model.
func preparedModel(name string) (*nn.Network, *dataset.Dataset, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if p, ok := modelCache[name]; ok {
		return p.net, p.ds, nil
	}
	spec, err := models.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	net, ds, err := models.Prepare(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: preparing %s: %w", name, err)
	}
	modelCache[name] = &prepared{net: net, ds: ds}
	return net, ds, nil
}

// ResetModelCache clears the trained-model cache (tests).
func ResetModelCache() {
	cacheMu.Lock()
	modelCache = map[string]*prepared{}
	cacheMu.Unlock()
}

// renderTable formats rows as an aligned text table.
func renderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// allSpecs returns the Table III registry (indirection for table
// rendering without importing models in every file).
func allSpecs() []models.Spec { return models.All() }
