package experiments

import (
	"strings"
	"testing"
)

// TestTraceBenchQuick runs the distributed-tracing benchmark end to end
// over a loopback TCP session and checks the rendered report carries
// both parties' segments and the percentile table.
func TestTraceBenchQuick(t *testing.T) {
	res, err := TraceBench(Config{KeyBits: 256, Requests: 4, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != res.Requests {
		t.Fatalf("%d trees for %d requests", len(res.Trees), res.Requests)
	}
	ids := map[string]bool{}
	for i, tree := range res.Trees {
		if tree == nil {
			t.Fatalf("request %d has no trace tree", i)
		}
		ids[tree.ID] = true
		if tree.SegmentTotal("server-kernel") <= 0 {
			t.Errorf("trace %s: no server kernel time crossed the wire", tree.ID)
		}
	}
	if len(ids) != res.Requests {
		t.Errorf("%d distinct trace IDs for %d requests", len(ids), res.Requests)
	}
	out := res.Render()
	for _, want := range []string{"server-kernel", "server-permute", "client-nonlinear", "wire", "p95", "trace "} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
}
