package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"ppstream/internal/obs"
)

// This file implements `ppbench top`: a live console view over a running
// ppserver's /metrics endpoint. Each tick fetches the JSON snapshot,
// diffs the cumulative counters against the previous tick, and renders
// the serving plane's vitals — request/round throughput, crypto-op rates
// from the cost meter, and the per-stage/per-round latency percentiles —
// without attaching a debugger or scraping Prometheus.
//
// When the server also exposes /debug/live (the windowed-metric
// snapshot), its last-minute rates and latency percentiles are rendered
// as a "live" section — truer than diffing cumulative counters, which
// smears bursts across the poll interval. Servers predating the live
// plane simply lack the endpoint; the fetch failure is silent and the
// cumulative diff remains the whole frame.

// TopOptions configures the live metrics view.
type TopOptions struct {
	// Addr is the metrics endpoint's host:port (ppserver -metrics).
	Addr string
	// Every is the poll interval. Non-positive defaults to 2s.
	Every time.Duration
	// Iterations bounds how many frames are rendered; 0 runs forever.
	Iterations int
	// Client overrides the HTTP client (tests). Nil uses a 5s-timeout
	// default.
	Client *http.Client
}

// Top polls addr's /metrics endpoint and writes one frame per tick to w.
// It returns when Iterations frames have rendered or a fetch fails twice
// in a row (one transient failure is reported and tolerated).
func Top(w io.Writer, opts TopOptions) error {
	if opts.Every <= 0 {
		opts.Every = 2 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	url := "http://" + opts.Addr + "/metrics?format=json"
	liveURL := "http://" + opts.Addr + "/debug/live"
	var prev *obs.Snapshot
	failures := 0
	for frame := 0; opts.Iterations == 0 || frame < opts.Iterations; frame++ {
		if frame > 0 {
			time.Sleep(opts.Every)
		}
		snap, err := fetchSnapshot(client, url)
		if err != nil {
			failures++
			if failures >= 2 {
				return fmt.Errorf("experiments: metrics fetch failed twice: %w", err)
			}
			fmt.Fprintf(w, "[fetch failed, retrying: %v]\n", err)
			continue
		}
		failures = 0
		// Best-effort: older servers have no /debug/live; fall back to
		// the cumulative-diff rates alone.
		live, _ := fetchLive(client, liveURL)
		fmt.Fprint(w, renderTopFrame(snap, prev, live, opts.Every))
		prev = snap
	}
	return nil
}

// fetchLive fetches the windowed-metric snapshot, tolerating the
// multi-registry array form. Any error (including 404 from servers
// predating /debug/live) returns nil.
func fetchLive(client *http.Client, url string) (*obs.LiveSnapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	var snap obs.LiveSnapshot
	if err := json.Unmarshal(data, &snap); err == nil && (snap.Name != "" || len(snap.Counters) > 0) {
		return &snap, nil
	}
	var snaps []obs.LiveSnapshot
	if err := json.Unmarshal(data, &snaps); err != nil || len(snaps) == 0 {
		return nil, fmt.Errorf("unrecognized live payload (%d bytes)", len(data))
	}
	return &snaps[0], nil
}

// fetchSnapshot fetches and decodes one registry snapshot. A multi-
// registry endpoint returns an array; the first registry wins.
func fetchSnapshot(client *http.Client, url string) (*obs.Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, err
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err == nil && (snap.Name != "" || len(snap.Counters) > 0) {
		return &snap, nil
	}
	var snaps []obs.Snapshot
	if err := json.Unmarshal(data, &snaps); err != nil || len(snaps) == 0 {
		return nil, fmt.Errorf("unrecognized metrics payload (%d bytes)", len(data))
	}
	return &snaps[0], nil
}

// counterRate renders a cumulative counter as total plus per-second rate
// against the previous frame.
func counterRate(name string, cur *obs.Snapshot, prev *obs.Snapshot, every time.Duration) string {
	v := cur.Counters[name]
	if prev == nil {
		return fmt.Sprintf("%d", v)
	}
	d := v - prev.Counters[name]
	return fmt.Sprintf("%d (+%.1f/s)", v, float64(d)/every.Seconds())
}

// renderTopFrame formats one tick: throughput counters, crypto-op rates,
// and latency histograms, each sorted for stable output, plus the
// windowed last-minute section when the server exposes /debug/live.
func renderTopFrame(cur, prev *obs.Snapshot, live *obs.LiveSnapshot, every time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s @ %s ===\n", cur.Name, cur.TakenAt.Format("15:04:05"))

	if live != nil && (len(live.Counters) > 0 || len(live.Histograms) > 0) {
		b.WriteString("  live (last minute):\n")
		var names []string
		for name := range live.Counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c := live.Counters[name]
			fmt.Fprintf(&b, "    %-24s %d (%.1f/s)\n", name, c.Count, c.Rate)
		}
		names = names[:0]
		for name := range live.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			h := live.Histograms[name]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "    %-24s %.1f/s  %s / %s / %s  (n=%d)\n",
				name, h.Rate, fmtDur(h.P50), fmtDur(h.P95), fmtDur(h.P99), h.Count)
		}
	}

	serving := []string{"sessions.total", "requests.completed", "requests.evicted", "rounds.served", "rounds.errors"}
	for _, name := range serving {
		if _, ok := cur.Counters[name]; ok {
			fmt.Fprintf(&b, "  %-24s %s\n", name, counterRate(name, cur, prev, every))
		}
	}

	var costNames []string
	for name := range cur.Counters {
		if strings.HasPrefix(name, "cost.") {
			costNames = append(costNames, name)
		}
	}
	if len(costNames) > 0 {
		sort.Strings(costNames)
		b.WriteString("  crypto cost:\n")
		for _, name := range costNames {
			fmt.Fprintf(&b, "    %-24s %s\n", strings.TrimPrefix(name, "cost."), counterRate(name, cur, prev, every))
		}
	}

	var histNames []string
	for name := range cur.Histograms {
		histNames = append(histNames, name)
	}
	if len(histNames) > 0 {
		sort.Strings(histNames)
		b.WriteString("  latency (p50/p95/p99):\n")
		for _, name := range histNames {
			h := cur.Histograms[name]
			if h.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "    %-24s %s / %s / %s  (n=%d)\n",
				name, fmtDur(h.P50), fmtDur(h.P95), fmtDur(h.P99), h.Count)
		}
	}
	return b.String()
}
