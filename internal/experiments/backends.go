package experiments

import (
	"context"
	"fmt"
	mathrand "math/rand"
	"sort"
	"strings"
	"time"

	"ppstream/internal/backend"
	"ppstream/internal/nn"
	"ppstream/internal/obs"
	"ppstream/internal/protocol"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// This file benchmarks the pluggable per-round crypto backends: one
// live TCP session per deployment profile against the same three-round
// network, so the rows compare what each profile's ILP-chosen
// assignment costs per round and in crypto-op counters. The mixed
// profile with the certified boundary at round 2 exercises all three
// backends (paillier-he, ss-gc, clear) inside a single request.

// backendsBoundary is the leakage-certified clear boundary used by the
// benchmark: the last round of the three-round net runs plaintext under
// the latency/mixed profiles.
const backendsBoundary = 2

// backendsNet builds the three-linear-round network the backend
// benchmark plans over: round 0 must stay Paillier, round 1 is followed
// by a ReLU (the garbled-circuit case for ss-gc) and is sized so ss-gc
// beats Paillier even at the benchmark's small key sizes, and round 2
// sits past the certified boundary.
func backendsNet() (*nn.Network, error) {
	r := mathrand.New(mathrand.NewSource(23))
	return nn.NewNetwork("backends-bench", tensor.Shape{8},
		nn.NewFC("fc1", 8, 16, r),
		nn.NewReLU("relu1"),
		nn.NewFC("fc2", 16, 20, r),
		nn.NewReLU("relu2"),
		nn.NewFC("fc3", 20, 3, r),
		nn.NewSoftMax("softmax"),
	)
}

// BackendsRound is one linear round's measurement under one profile:
// which backend the ILP assigned and the median kernel / client
// non-linear times across requests.
type BackendsRound struct {
	Round        int           `json:"round"`
	Backend      string        `json:"backend"`
	KernelP50    time.Duration `json:"kernel_p50_ns"`
	NonlinearP50 time.Duration `json:"nonlinear_p50_ns"`
}

// BackendsProfile is one profile's full measurement: the solved
// assignment (read back from the merged traces' per-segment backend
// labels — the same visibility operators get), per-round medians, the
// mean end-to-end latency, and the server's per-backend cost counters.
type BackendsProfile struct {
	Profile     string          `json:"profile"`
	Requests    int             `json:"requests"`
	Assignment  []string        `json:"assignment"`
	MeanLatency time.Duration   `json:"mean_latency_ns"`
	Rounds      []BackendsRound `json:"rounds"`
	// Costs holds the server registry's nonzero per-backend cost
	// counters ("cost.ss_gc.triples", "cost.clear.plain_ops", ...).
	Costs map[string]uint64 `json:"costs"`
}

// BackendsBenchResult is the `ppbench backends` output, one row set per
// deployment profile over identical sessions.
type BackendsBenchResult struct {
	KeyBits       int               `json:"key_bits"`
	ClearBoundary int               `json:"clear_boundary"`
	Profiles      []BackendsProfile `json:"profiles"`
}

// BackendsBench measures every deployment profile over a live TCP
// session each: the server policy is latency (the least strict cap) so
// the client's requested profile decides the posture, and the clear
// boundary is fixed at backendsBoundary.
func BackendsBench(cfg Config) (*BackendsBenchResult, error) {
	cfg = cfg.withDefaults()
	protocol.RegisterServiceWire()
	n := cfg.Requests
	if n < 4 {
		n = 4
	}
	if cfg.Quick && n > 4 {
		n = 4
	}
	res := &BackendsBenchResult{KeyBits: cfg.KeyBits, ClearBoundary: backendsBoundary}
	for _, prof := range backend.Profiles() {
		row, err := backendsProfileRun(cfg, prof, n)
		if err != nil {
			return nil, fmt.Errorf("experiments: backends profile %s: %w", prof, err)
		}
		res.Profiles = append(res.Profiles, *row)
	}
	return res, nil
}

// backendsProfileRun serves one session under the given client profile
// and measures n traced requests.
func backendsProfileRun(cfg Config, prof backend.Profile, n int) (*BackendsProfile, error) {
	netw, err := backendsNet()
	if err != nil {
		return nil, err
	}
	key, err := sharedKey(cfg.KeyBits)
	if err != nil {
		return nil, err
	}
	serverEdge, addr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	reg := obs.NewRegistry("backends-bench/" + string(prof))
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- protocol.ServeSessionConfig(ctx, serverEdge, serverEdge, netw, protocol.SessionConfig{
			Factor:        serveFactor,
			MaxWorkers:    2,
			Window:        2,
			Registry:      reg,
			Profile:       backend.ProfileLatency,
			ClearBoundary: backendsBoundary,
		})
	}()
	clientEdge, err := stream.DialEdge(addr)
	if err != nil {
		return nil, err
	}
	client, err := protocol.NewClientOpts(ctx, clientEdge, clientEdge, netw, key, serveFactor,
		protocol.ClientOptions{Workers: 1, Window: 2, Profile: prof})
	if err != nil {
		return nil, err
	}

	r := mathrand.New(mathrand.NewSource(31))
	trees := make([]*obs.TraceTree, 0, n)
	var total time.Duration
	for i := 0; i < n; i++ {
		x := tensor.Zeros(8)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()
		}
		_, tree, ierr := client.InferTraced(ctx, x)
		if ierr != nil {
			client.Close()
			<-serveErr
			return nil, fmt.Errorf("request %d: %w", i, ierr)
		}
		trees = append(trees, tree)
		total += tree.Total
	}
	if cerr := client.Close(); cerr != nil {
		return nil, cerr
	}
	if serr := <-serveErr; serr != nil {
		return nil, fmt.Errorf("server session: %w", serr)
	}

	row := &BackendsProfile{
		Profile:     string(prof),
		Requests:    n,
		MeanLatency: total / time.Duration(n),
		Costs:       map[string]uint64{},
	}
	// Per-round attribution straight from the merged traces: the kernel
	// segment's backend label IS the assignment the server announced.
	rounds := backendsRoundCount(trees)
	for rd := 0; rd < rounds; rd++ {
		var kernel, nonlinear []time.Duration
		backendName := ""
		for _, t := range trees {
			for _, s := range t.Segments {
				if s.Round != rd {
					continue
				}
				switch {
				case s.Party == "server" && s.Name == "kernel":
					kernel = append(kernel, s.Dur)
					if s.Backend != "" {
						backendName = s.Backend
					}
				case s.Party == "client" && s.Name == "nonlinear":
					nonlinear = append(nonlinear, s.Dur)
				}
			}
		}
		row.Assignment = append(row.Assignment, backendName)
		row.Rounds = append(row.Rounds, BackendsRound{
			Round:        rd,
			Backend:      backendName,
			KernelP50:    median(kernel),
			NonlinearP50: median(nonlinear),
		})
	}
	for name, v := range reg.Snapshot().Counters {
		if v == 0 || !strings.HasPrefix(name, "cost.") {
			continue
		}
		for _, k := range backend.Kinds() {
			if strings.HasPrefix(name, "cost."+k.MetricName()+".") {
				row.Costs[name] = v
			}
		}
	}
	return row, nil
}

// backendsRoundCount reads the round count from the traces' largest
// round index.
func backendsRoundCount(trees []*obs.TraceTree) int {
	max := -1
	for _, t := range trees {
		for _, s := range t.Segments {
			if s.Round > max {
				max = s.Round
			}
		}
	}
	return max + 1
}

// median returns the p50 of an unsorted duration set.
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// Render formats per-profile assignment tables and the per-backend cost
// counters.
func (r *BackendsBenchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Backend profiles over live TCP sessions (%d-bit key, clear boundary %d):\n",
		r.KeyBits, r.ClearBoundary)
	for _, p := range r.Profiles {
		fmt.Fprintf(&b, "\nprofile %-12s  %d requests, mean latency %v\n",
			p.Profile, p.Requests, p.MeanLatency.Round(time.Microsecond))
		fmt.Fprintf(&b, "  %-6s %-12s %12s %14s\n", "round", "backend", "kernel p50", "nonlinear p50")
		for _, rd := range p.Rounds {
			fmt.Fprintf(&b, "  %-6d %-12s %12v %14v\n",
				rd.Round, rd.Backend, rd.KernelP50.Round(time.Microsecond), rd.NonlinearP50.Round(time.Microsecond))
		}
		costs := make([]string, 0, len(p.Costs))
		for name := range p.Costs {
			costs = append(costs, name)
		}
		sort.Strings(costs)
		for _, name := range costs {
			fmt.Fprintf(&b, "  %-40s %d\n", name, p.Costs[name])
		}
	}
	return b.String()
}
