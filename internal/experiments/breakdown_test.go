package experiments

import (
	"strings"
	"testing"
	"time"

	"ppstream/internal/stream"
)

func TestBreakdownFromTraces(t *testing.T) {
	mk := func(encBusy, linBusy time.Duration) *stream.Trace {
		return &stream.Trace{Spans: []stream.Span{
			{Stage: "encrypt", Wait: time.Millisecond, Busy: encBusy},
			{Stage: "linear-0", Wait: 2 * time.Millisecond, Busy: linBusy},
		}}
	}
	traces := []*stream.Trace{
		mk(10*time.Millisecond, 40*time.Millisecond),
		mk(12*time.Millisecond, 44*time.Millisecond),
		nil, // a dropped/errored request must not break aggregation
		mk(11*time.Millisecond, 42*time.Millisecond),
	}
	res := BreakdownFromTraces("Heart", traces)
	if res.Requests != 3 {
		t.Fatalf("requests %d, want 3", res.Requests)
	}
	if len(res.Stages) != 2 || res.Stages[0].Stage != "encrypt" || res.Stages[1].Stage != "linear-0" {
		t.Fatalf("stages %+v, want encrypt then linear-0", res.Stages)
	}
	for _, s := range res.Stages {
		if s.Count != 3 {
			t.Errorf("stage %s count %d, want 3", s.Stage, s.Count)
		}
		if s.Busy.P50 <= 0 || s.Busy.P99 < s.Busy.P50 {
			t.Errorf("stage %s percentiles not sane: %+v", s.Stage, s.Busy)
		}
	}
	// Total per-request latency ≈ 1ms+2ms wait + busy sums (53–59ms).
	if res.Total.Count != 3 || res.Total.Min < 50*time.Millisecond || res.Total.Max > 70*time.Millisecond {
		t.Errorf("total distribution %+v out of expected range", res.Total)
	}
	out := res.Render()
	for _, want := range []string{"Heart", "encrypt", "linear-0", "TOTAL", "busy p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
