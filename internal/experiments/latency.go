package experiments

import (
	"context"
	"crypto/rand"
	"fmt"
	"strings"
	"sync"
	"time"

	"ppstream/internal/baselines"
	"ppstream/internal/core"
	"ppstream/internal/models"
	"ppstream/internal/obs"
	"ppstream/internal/paillier"
	"ppstream/internal/stream"
)

var (
	keyMu   sync.Mutex
	keyPool = map[int]*paillier.PrivateKey{}
)

// profileCache shares offline profiling results across the feature
// on/off and core-sweep variants, which reuse the same (model, factor,
// key) stage costs — profiling is the expensive part of engine
// construction.
type profileEntry struct {
	times   []float64
	encrypt float64
}

var (
	profMu       sync.Mutex
	profileCache = map[string]*profileEntry{}
)

func profileKey(name string, factor int64, bits int) string {
	return fmt.Sprintf("%s/%d/%d", name, factor, bits)
}

func cachedProfile(name string, factor int64, bits int) *profileEntry {
	profMu.Lock()
	defer profMu.Unlock()
	return profileCache[profileKey(name, factor, bits)]
}

func storeProfile(name string, factor int64, bits int, eng *core.Engine) {
	times := make([]float64, len(eng.Layers))
	for i, l := range eng.Layers {
		times[i] = l.Time
	}
	profMu.Lock()
	profileCache[profileKey(name, factor, bits)] = &profileEntry{times: times, encrypt: eng.EncryptTime}
	profMu.Unlock()
}

// sharedKey caches one key per size across experiments.
func sharedKey(bits int) (*paillier.PrivateKey, error) {
	keyMu.Lock()
	defer keyMu.Unlock()
	if k, ok := keyPool[bits]; ok {
		return k, nil
	}
	k, err := paillier.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, err
	}
	keyPool[bits] = k
	return k, nil
}

// topologyFor builds the Table III server layout for a model with the
// given total core budget spread uniformly.
func topologyFor(spec models.Spec, totalCores int) core.Topology {
	n := spec.ModelServers + spec.DataServers
	per := totalCores / n
	if per < 1 {
		per = 1
	}
	return core.Topology{ModelServers: spec.ModelServers, DataServers: spec.DataServers, CoresPerServer: per}
}

// engineLatency builds an engine with the given features and returns the
// streaming effective latency over cfg.Requests requests. By default it
// uses the calibrated discrete-event model over real profiled stage
// costs (this testbed is a single-CPU host — see internal/simulate);
// with cfg.RealTime it measures the concurrent runtime's wall clock,
// which is meaningful on multi-core machines.
func engineLatency(name string, factor int64, totalCores int, lb, part bool, cfg Config) (time.Duration, error) {
	net, ds, err := preparedModel(name)
	if err != nil {
		return 0, err
	}
	spec, err := models.ByName(name)
	if err != nil {
		return 0, err
	}
	key, err := sharedKey(cfg.KeyBits)
	if err != nil {
		return 0, err
	}
	opts := core.Options{
		Factor:          factor,
		Topology:        topologyFor(spec, totalCores),
		LoadBalance:     lb,
		TensorPartition: part,
		ProfileReps:     cfg.ProfileReps,
		ProfileSample:   ds.TestX[0],
	}
	if prof := cachedProfile(name, factor, cfg.KeyBits); prof != nil {
		opts.ProfiledTimes = prof.times
		opts.ProfiledEncrypt = prof.encrypt
	}
	eng, err := core.NewEngine(net, key, opts)
	if err != nil {
		return 0, err
	}
	if opts.ProfiledTimes == nil {
		storeProfile(name, factor, cfg.KeyBits, eng)
	}
	defer eng.Close()
	if cfg.RealTime {
		n := cfg.Requests
		if n > len(ds.TestX) {
			n = len(ds.TestX)
		}
		_, stats, err := eng.InferStream(context.Background(), ds.TestX[:n])
		if err != nil {
			return 0, err
		}
		return stats.EffectiveLatency, nil
	}
	res, err := eng.Simulate(cfg.Requests)
	if err != nil {
		return 0, err
	}
	return res.Effective, nil
}

// StageLatencyRow is one pipeline stage's latency distribution across a
// streaming run.
type StageLatencyRow struct {
	Stage string
	Count uint64
	Wait  obs.HistogramSnapshot
	Busy  obs.HistogramSnapshot
}

// StageBreakdownResult is a per-stage latency percentile table for one
// model's streaming deployment — the runtime-measured analogue of the
// paper's Table IV/V per-stage profiling, with distribution tails
// instead of bare means.
type StageBreakdownResult struct {
	Model    string
	Requests int
	Stages   []StageLatencyRow
	// Total is the distribution of per-request in-pipeline latency
	// (sum of every stage's wait + busy).
	Total obs.HistogramSnapshot
}

// BreakdownFromTraces aggregates completed-request traces into the
// per-stage percentile table. Stage order follows the first trace.
func BreakdownFromTraces(model string, traces []*stream.Trace) *StageBreakdownResult {
	res := &StageBreakdownResult{Model: model}
	waits := map[string]*obs.Histogram{}
	busys := map[string]*obs.Histogram{}
	var order []string
	total := obs.NewHistogram()
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		res.Requests++
		total.Observe(tr.Total())
		for _, span := range tr.Spans {
			if waits[span.Stage] == nil {
				waits[span.Stage] = obs.NewHistogram()
				busys[span.Stage] = obs.NewHistogram()
				order = append(order, span.Stage)
			}
			waits[span.Stage].Observe(span.Wait)
			busys[span.Stage].Observe(span.Busy)
		}
	}
	for _, name := range order {
		w, b := waits[name].Snapshot(), busys[name].Snapshot()
		res.Stages = append(res.Stages, StageLatencyRow{Stage: name, Count: b.Count, Wait: w, Busy: b})
	}
	res.Total = total.Snapshot()
	return res
}

// StageBreakdown runs cfg.Requests inferences through one model's real
// streaming pipeline and returns the measured per-stage breakdown.
func StageBreakdown(cfg Config, name string) (*StageBreakdownResult, error) {
	cfg = cfg.withDefaults()
	net, ds, err := preparedModel(name)
	if err != nil {
		return nil, err
	}
	spec, err := models.ByName(name)
	if err != nil {
		return nil, err
	}
	factor, err := SelectedFactor(name)
	if err != nil {
		return nil, err
	}
	key, err := sharedKey(cfg.KeyBits)
	if err != nil {
		return nil, err
	}
	opts := core.Options{
		Factor:          factor,
		Topology:        topologyFor(spec, 12),
		LoadBalance:     true,
		TensorPartition: true,
		ProfileReps:     cfg.ProfileReps,
		ProfileSample:   ds.TestX[0],
	}
	if prof := cachedProfile(name, factor, cfg.KeyBits); prof != nil {
		opts.ProfiledTimes = prof.times
		opts.ProfiledEncrypt = prof.encrypt
	}
	eng, err := core.NewEngine(net, key, opts)
	if err != nil {
		return nil, err
	}
	if opts.ProfiledTimes == nil {
		storeProfile(name, factor, cfg.KeyBits, eng)
	}
	defer eng.Close()
	n := cfg.Requests
	if n > len(ds.TestX) {
		n = len(ds.TestX)
	}
	_, stats, err := eng.InferStream(context.Background(), ds.TestX[:n])
	if err != nil {
		return nil, err
	}
	return BreakdownFromTraces(name, stats.Traces), nil
}

// StageBreakdowns runs StageBreakdown for a representative model set
// (one healthcare MLP and one MNIST model; quick mode keeps just the
// former).
func StageBreakdowns(cfg Config) ([]*StageBreakdownResult, error) {
	names := []string{"Heart", "MNIST-1"}
	if cfg.Quick {
		names = []string{"Heart"}
	}
	out := make([]*StageBreakdownResult, 0, len(names))
	for _, name := range names {
		res, err := StageBreakdown(cfg, name)
		if err != nil {
			return nil, fmt.Errorf("experiments: stage breakdown %s: %w", name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

// Render formats the per-stage percentile table.
func (r *StageBreakdownResult) Render() string {
	header := []string{"stage", "n", "wait p50", "busy p50", "busy p95", "busy p99", "busy max"}
	var rows [][]string
	for _, s := range r.Stages {
		rows = append(rows, []string{
			s.Stage, fmt.Sprint(s.Count),
			fmtDur(s.Wait.P50), fmtDur(s.Busy.P50), fmtDur(s.Busy.P95), fmtDur(s.Busy.P99), fmtDur(s.Busy.Max),
		})
	}
	rows = append(rows, []string{
		"TOTAL (per request)", fmt.Sprint(r.Total.Count),
		"-", fmtDur(r.Total.P50), fmtDur(r.Total.P95), fmtDur(r.Total.P99), fmtDur(r.Total.Max),
	})
	return fmt.Sprintf("Per-stage latency breakdown: %s (%d streamed requests)\n%s",
		r.Model, r.Requests, renderTable(header, rows))
}

// Fig6Row is one (model, factor) latency point.
type Fig6Row struct {
	Model   string
	Factors []int64
	Latency []time.Duration
}

// Fig6Result holds the latency-vs-scaling-factor series (Exp#1, Fig 6).
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 measures inference latency versus the scaling factor with all
// PP-Stream features enabled, for an MNIST model and a CIFAR-10 model
// (the healthcare models are too small to show differences, as the paper
// notes).
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.withDefaults()
	names := []string{"MNIST-2", "CIFAR-10-1"}
	factors := []int64{1, 100, 10_000, 1_000_000}
	if cfg.Quick {
		names = []string{"MNIST-2"}
		factors = []int64{1, 10_000}
	}
	res := &Fig6Result{}
	for _, name := range names {
		row := Fig6Row{Model: name}
		// The VGG models have many more stages (Table III deploys them
		// on 9 servers); give them a matching core budget so every
		// stage gets its constraint-(7) thread.
		cores := 12
		if strings.HasPrefix(name, "CIFAR") {
			cores = 45
		}
		for _, f := range factors {
			lat, err := engineLatency(name, f, cores, true, true, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig6 %s F=%d: %w", name, f, err)
			}
			row.Factors = append(row.Factors, f)
			row.Latency = append(row.Latency, lat)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats Fig 6.
func (r *Fig6Result) Render() string {
	header := []string{"model", "factor", "latency"}
	var rows [][]string
	for _, row := range r.Rows {
		for i := range row.Factors {
			rows = append(rows, []string{row.Model, fmt.Sprint(row.Factors[i]), row.Latency[i].String()})
		}
	}
	return "Fig 6 (Exp#1): inference latency vs scaling factor (all features on)\n" + renderTable(header, rows)
}

// Fig8Row is one model's Fig 8 bar group.
type Fig8Row struct {
	Model      string
	PlainBase  time.Duration
	CipherBase time.Duration
	PPStreamA  time.Duration // smaller core budget (paper: 25)
	PPStreamB  time.Duration // larger core budget (paper: 50)
}

// Fig8Result holds Exp#2's comparison of centralized vs streaming
// execution.
type Fig8Result struct {
	CoresA, CoresB int
	Rows           []Fig8Row
}

// Fig8 reproduces Exp#2: PlainBase (centralized plaintext), CipherBase
// (centralized single-threaded ciphertext), and PP-Stream with two core
// budgets, even core split, load balancing and partitioning disabled —
// isolating the gain of distributed stream processing alone.
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.withDefaults()
	names := []string{"Breast", "Heart", "Cardio", "MNIST-1", "MNIST-2", "MNIST-3"}
	coresA, coresB := 12, 24
	if cfg.Quick {
		names = []string{"Heart", "MNIST-1"}
		coresA, coresB = 6, 12
	}
	res := &Fig8Result{CoresA: coresA, CoresB: coresB}
	for _, name := range names {
		net, ds, err := preparedModel(name)
		if err != nil {
			return nil, err
		}
		factor, err := SelectedFactor(name)
		if err != nil {
			return nil, err
		}
		key, err := sharedKey(cfg.KeyBits)
		if err != nil {
			return nil, err
		}
		row := Fig8Row{Model: name}
		_, row.PlainBase, err = baselines.PlainBase(net, ds.TestX[0])
		if err != nil {
			return nil, err
		}
		cb, err := baselines.NewCipherBase(net, key, factor)
		if err != nil {
			return nil, err
		}
		_, row.CipherBase, err = cb.Infer(1, ds.TestX[0])
		if err != nil {
			return nil, err
		}
		row.PPStreamA, err = engineLatency(name, factor, coresA, false, false, cfg)
		if err != nil {
			return nil, err
		}
		row.PPStreamB, err = engineLatency(name, factor, coresB, false, false, cfg)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats Fig 8.
func (r *Fig8Result) Render() string {
	header := []string{"model", "PlainBase", "CipherBase",
		fmt.Sprintf("PP-Stream-%d", r.CoresA), fmt.Sprintf("PP-Stream-%d", r.CoresB), "reduction vs CipherBase"}
	var rows [][]string
	for _, row := range r.Rows {
		red := 1 - row.PPStreamB.Seconds()/row.CipherBase.Seconds()
		rows = append(rows, []string{
			row.Model, row.PlainBase.String(), row.CipherBase.String(),
			row.PPStreamA.String(), row.PPStreamB.String(), fmt.Sprintf("%.1f%%", red*100),
		})
	}
	return "Fig 8 (Exp#2): distributed stream processing vs centralized baselines\n" + renderTable(header, rows)
}

// SweepRow is one (model, cores) point of a with/without comparison
// (Fig 7 load balancing, Fig 9 partitioning).
type SweepRow struct {
	Model   string
	Cores   int
	Without time.Duration
	With    time.Duration
}

// Reduction returns the latency reduction fraction of the feature.
func (s SweepRow) Reduction() float64 {
	if s.Without == 0 {
		return 0
	}
	return 1 - s.With.Seconds()/s.Without.Seconds()
}

// SweepResult holds a Fig 7 or Fig 9 series.
type SweepResult struct {
	Feature string
	Rows    []SweepRow
}

// Fig7 reproduces Exp#3: latency with and without load-balanced resource
// allocation across a core sweep (partitioning enabled in both, as the
// paper configures).
func Fig7(cfg Config) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	names := []string{"Breast", "Heart", "Cardio", "MNIST-1", "MNIST-2", "MNIST-3"}
	coreSweep := []int{6, 12, 24}
	if cfg.Quick {
		names = []string{"Heart", "MNIST-1"}
		coreSweep = []int{6, 12}
	}
	res := &SweepResult{Feature: "load-balanced allocation"}
	for _, name := range names {
		factor, err := SelectedFactor(name)
		if err != nil {
			return nil, err
		}
		for _, cores := range coreSweep {
			without, err := engineLatency(name, factor, cores, false, true, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig7 %s without: %w", name, err)
			}
			with, err := engineLatency(name, factor, cores, true, true, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig7 %s with: %w", name, err)
			}
			res.Rows = append(res.Rows, SweepRow{Model: name, Cores: cores, Without: without, With: with})
		}
	}
	return res, nil
}

// Fig9 reproduces Exp#4: latency with and without tensor partitioning
// across a core sweep (load balancing enabled in both).
func Fig9(cfg Config) (*SweepResult, error) {
	cfg = cfg.withDefaults()
	names := []string{"Breast", "Heart", "Cardio", "MNIST-1", "MNIST-2", "MNIST-3"}
	coreSweep := []int{6, 12, 24}
	if cfg.Quick {
		names = []string{"MNIST-2"}
		coreSweep = []int{6, 12}
	}
	res := &SweepResult{Feature: "tensor partitioning"}
	for _, name := range names {
		factor, err := SelectedFactor(name)
		if err != nil {
			return nil, err
		}
		for _, cores := range coreSweep {
			without, err := engineLatency(name, factor, cores, true, false, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig9 %s without: %w", name, err)
			}
			with, err := engineLatency(name, factor, cores, true, true, cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig9 %s with: %w", name, err)
			}
			res.Rows = append(res.Rows, SweepRow{Model: name, Cores: cores, Without: without, With: with})
		}
	}
	return res, nil
}

// Render formats a with/without sweep.
func (r *SweepResult) Render() string {
	label := "Fig 7 (Exp#3)"
	if r.Feature == "tensor partitioning" {
		label = "Fig 9 (Exp#4)"
	}
	header := []string{"model", "cores", "without", "with", "reduction"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Model, fmt.Sprint(row.Cores), row.Without.String(), row.With.String(),
			fmt.Sprintf("%.1f%%", row.Reduction()*100),
		})
	}
	return fmt.Sprintf("%s: latency with vs without %s\n%s", label, r.Feature, renderTable(header, rows))
}
