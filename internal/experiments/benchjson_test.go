package experiments

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ppstream/internal/obs"
)

func TestBenchJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	res := &KernelResult{
		Rows: 32, Cols: 128, Reps: 2,
		Series: []KernelRow{{KeyBits: 256, Kernel: 5 * time.Millisecond, Ref: 20 * time.Millisecond}},
	}
	host := BenchHost{GOOS: "linux", GOARCH: "amd64", NumCPU: 4}
	path, err := WriteBenchJSON(dir, "kernel", Config{KeyBits: 256}.withDefaults(), host, res)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_kernel.json" {
		t.Errorf("artifact name = %s, want BENCH_kernel.json", filepath.Base(path))
	}
	rec, err := ReadBenchJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Version != BenchRecordVersion || rec.Bench != "kernel" {
		t.Errorf("envelope = version %d bench %q", rec.Version, rec.Bench)
	}
	if rec.Host != host {
		t.Errorf("host = %+v, want %+v", rec.Host, host)
	}
	if rec.Config.KeyBits != 256 {
		t.Errorf("config keybits = %d", rec.Config.KeyBits)
	}
	result, ok := rec.Result.(map[string]any)
	if !ok {
		t.Fatalf("result decoded as %T", rec.Result)
	}
	series, ok := result["Series"].([]any)
	if !ok || len(series) != 1 {
		t.Fatalf("series lost in round trip: %v", result["Series"])
	}
	// No temp litter from the atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("dir holds %d files after write, want 1", len(entries))
	}
}

func TestReadBenchJSONRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	if err := os.WriteFile(path, []byte(`{"version": 999, "bench": "x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchJSON(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong-version record accepted: %v", err)
	}
}

// topSnapshot builds a serving-plane-shaped registry snapshot.
func topSnapshot(requests uint64) obs.Snapshot {
	reg := obs.NewRegistry("ppserver-test")
	reg.Counter("requests.completed").Add(requests)
	reg.Counter("rounds.served").Add(2 * requests)
	obs.AddCostToRegistry(reg, obs.CostStats{ModExps: 10 * requests, MulMods: 50 * requests})
	reg.Histogram("round.latency").Observe(3 * time.Millisecond)
	return reg.Snapshot()
}

func TestTopRendersFramesAndRates(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls++
		snap := topSnapshot(uint64(10 * calls))
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(snap); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()

	var out strings.Builder
	err := Top(&out, TopOptions{
		Addr:       strings.TrimPrefix(srv.URL, "http://"),
		Every:      time.Millisecond,
		Iterations: 2,
		Client:     srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"ppserver-test", "requests.completed", "crypto cost:", "modexps", "mulmods", "round.latency"} {
		if !strings.Contains(got, want) {
			t.Errorf("top output missing %q:\n%s", want, got)
		}
	}
	// Second frame shows a rate against the first.
	if !strings.Contains(got, "/s)") {
		t.Errorf("top output shows no per-second rates:\n%s", got)
	}
}

func TestTopToleratesOneFetchFailure(t *testing.T) {
	var calls int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls++
		if calls == 1 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		if err := json.NewEncoder(w).Encode(topSnapshot(5)); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()

	var out strings.Builder
	err := Top(&out, TopOptions{
		Addr:       strings.TrimPrefix(srv.URL, "http://"),
		Every:      time.Millisecond,
		Iterations: 2,
		Client:     srv.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "retrying") || !strings.Contains(out.String(), "ppserver-test") {
		t.Errorf("top did not recover from a transient failure:\n%s", out.String())
	}
}

func TestTopFailsAfterConsecutiveErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	var out strings.Builder
	err := Top(&out, TopOptions{
		Addr:       strings.TrimPrefix(srv.URL, "http://"),
		Every:      time.Millisecond,
		Iterations: 5,
		Client:     srv.Client(),
	})
	if err == nil {
		t.Fatal("top kept polling a dead endpoint")
	}
}
