package experiments

import (
	"context"
	"fmt"
	mathrand "math/rand"
	"sync"
	"time"

	"ppstream/internal/obs"
	"ppstream/internal/protocol"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// TraceBenchResult is the distributed-tracing benchmark's output: one
// merged cross-party TraceTree per request over a real TCP session,
// aggregated into the per-segment percentile breakdown, plus one sample
// tree rendered span by span.
type TraceBenchResult struct {
	KeyBits     int
	Requests    int
	Concurrency int
	Elapsed     time.Duration
	Trees       []*obs.TraceTree
	Rows        []obs.BreakdownRow
	Sample      *obs.TraceTree
}

// TraceBench runs traced inferences over one multiplexed TCP session and
// merges both parties' spans: the client's queue/encrypt/non-linear
// time, the server's queue/kernel/permute time shipped back in the final
// round frame, and the inferred per-round wire gap. The breakdown is the
// per-party latency attribution the paper's per-stage tables motivate,
// here measured on a live two-party deployment rather than in-process.
func TraceBench(cfg Config) (*TraceBenchResult, error) {
	cfg = cfg.withDefaults()
	protocol.RegisterServiceWire()
	concurrency := 4
	if cfg.Quick {
		concurrency = 2
	}
	n := cfg.Requests
	if n < 2*concurrency {
		n = 2 * concurrency
	}

	netw, err := serveNet()
	if err != nil {
		return nil, err
	}
	key, err := sharedKey(cfg.KeyBits)
	if err != nil {
		return nil, err
	}
	serverEdge, addr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- protocol.ServeSessionConfig(ctx, serverEdge, serverEdge, netw, protocol.SessionConfig{
			Factor:     serveFactor,
			MaxWorkers: 2,
			Window:     concurrency,
		})
	}()
	clientEdge, err := stream.DialEdge(addr)
	if err != nil {
		return nil, err
	}
	client, err := protocol.NewClientOpts(ctx, clientEdge, clientEdge, netw, key, serveFactor,
		protocol.ClientOptions{Workers: 1, Window: concurrency})
	if err != nil {
		return nil, err
	}

	r := mathrand.New(mathrand.NewSource(29))
	inputs := make([]*tensor.Dense, n)
	for i := range inputs {
		x := tensor.Zeros(4)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()
		}
		inputs[i] = x
	}

	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		jobs  = make(chan int)
		trees = make([]*obs.TraceTree, n)
		ferr  error
	)
	begin := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				_, tree, ierr := client.InferTraced(ctx, inputs[i])
				mu.Lock()
				if ierr != nil && ferr == nil {
					ferr = fmt.Errorf("experiments: traced request %d: %w", i, ierr)
				}
				trees[i] = tree
				mu.Unlock()
			}
		}()
	}
	for i := range inputs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(begin)
	if cerr := client.Close(); cerr != nil && ferr == nil {
		ferr = cerr
	}
	if serr := <-serveErr; serr != nil && ferr == nil {
		ferr = fmt.Errorf("experiments: server session: %w", serr)
	}
	if ferr != nil {
		return nil, ferr
	}

	res := &TraceBenchResult{
		KeyBits:     cfg.KeyBits,
		Requests:    n,
		Concurrency: concurrency,
		Elapsed:     elapsed,
		Trees:       trees,
		Rows:        obs.Breakdown(trees),
		Sample:      trees[0],
	}
	return res, nil
}

// Render formats the sample tree and the per-segment percentile table.
func (r *TraceBenchResult) Render() string {
	return fmt.Sprintf(
		"Distributed trace: %d requests, %d concurrent, one TCP session (%d-bit key), %s total\n\n"+
			"sample request:\n%s\n"+
			"per-segment breakdown across %d requests (per-request totals):\n%s",
		r.Requests, r.Concurrency, r.KeyBits, r.Elapsed.Round(time.Millisecond),
		obs.RenderTree(r.Sample),
		len(r.Trees), obs.RenderBreakdown(r.Rows))
}
