package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// This file defines the machine-readable benchmark trajectory format:
// each ppbench run with -json writes a versioned BENCH_<name>.json
// record next to the console output, so CI can archive benchmark
// results as artifacts and plot trends across commits without scraping
// the human-facing tables.

// BenchRecordVersion is bumped when the record envelope changes shape.
// Consumers should skip records with a version they do not understand.
const BenchRecordVersion = 1

// BenchRecord is the envelope written to BENCH_<name>.json: the
// versioned schema marker, which benchmark ran under what configuration,
// and the benchmark's full typed result (the same struct Render prints).
type BenchRecord struct {
	Version int       `json:"version"`
	Bench   string    `json:"bench"`
	When    time.Time `json:"when"`
	// Host pins the run's environment coarsely (GOOS/GOARCH, CPU count)
	// so trajectories across heterogeneous runners are comparable.
	Host   BenchHost `json:"host"`
	Config Config    `json:"config"`
	Result any       `json:"result"`
}

// BenchHost records the coarse hardware/environment facts that move
// benchmark numbers.
type BenchHost struct {
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	NumCPU int    `json:"num_cpu"`
}

// BenchFileName is the conventional artifact name for one benchmark.
func BenchFileName(bench string) string {
	return "BENCH_" + bench + ".json"
}

// WriteBenchJSON writes the record for one benchmark run to
// BENCH_<bench>.json inside dir ("." for the working directory). The
// write is atomic (temp file + rename) so a crashed run never leaves a
// truncated artifact for CI to upload.
func WriteBenchJSON(dir, bench string, cfg Config, host BenchHost, result any) (string, error) {
	rec := BenchRecord{
		Version: BenchRecordVersion,
		Bench:   bench,
		When:    time.Now().UTC(),
		Host:    host,
		Config:  cfg,
		Result:  result,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return "", fmt.Errorf("experiments: marshaling bench record %s: %w", bench, err)
	}
	data = append(data, '\n')
	path := filepath.Join(dir, BenchFileName(bench))
	tmp, err := os.CreateTemp(dir, ".bench-*.json")
	if err != nil {
		return "", fmt.Errorf("experiments: creating bench temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", fmt.Errorf("experiments: writing bench record: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("experiments: closing bench record: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", fmt.Errorf("experiments: publishing bench record: %w", err)
	}
	return path, nil
}

// ReadBenchJSON loads a record, validating the envelope version. Result
// is decoded as generic JSON (map/slice) since the concrete type depends
// on Bench.
func ReadBenchJSON(path string) (*BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: reading bench record: %w", err)
	}
	var rec BenchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("experiments: parsing bench record %s: %w", path, err)
	}
	if rec.Version != BenchRecordVersion {
		return nil, fmt.Errorf("experiments: bench record %s has version %d, want %d", path, rec.Version, BenchRecordVersion)
	}
	return &rec, nil
}
