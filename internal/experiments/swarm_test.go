package experiments

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ppstream/internal/obs"
)

// TestSwarmSmoke runs the open-loop load harness once in quick mode and
// lets its own invariants gate: a knee must appear, the fast burn-rate
// alert must fire under the overload points, and the slowest request's
// merged trace must be retained. Under -race this exercises the whole
// serving plane concurrently — Poisson arrival goroutines, shedder,
// limiter, SLO engine, trace store, and windowed metrics.
func TestSwarmSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("swarm harness in -short mode")
	}
	res, err := Swarm(quickCfg())
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Render())
	}
	if res.KneeIndex < 0 {
		t.Error("no knee detected")
	}
	if !res.FastAlertFired {
		t.Error("fast burn-rate alert did not fire under overload")
	}
	if !res.SlowTraceRetained || res.SlowTraceID == "" {
		t.Errorf("slow trace not retained: %+v", res.SlowTraceID)
	}
	if res.LiveChecked && res.LiveOK != res.CumulativeOK {
		t.Errorf("live ok %d != cumulative ok %d", res.LiveOK, res.CumulativeOK)
	}

	// The retained slow trace is retrievable over the wire: mount the
	// harness's trace store behind /debug/traces and pull the full merged
	// tree back out, exactly as an operator would.
	srv := httptest.NewServer(obs.HandlerOpts(obs.HTTPOptions{Traces: res.Traces}))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/traces?id=" + res.SlowTraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/traces status %d: %s", resp.StatusCode, body)
	}
	var recs []obs.TraceRecord
	if err := json.Unmarshal(body, &recs); err != nil {
		t.Fatalf("/debug/traces payload: %v", err)
	}
	if len(recs) == 0 {
		t.Fatal("slow trace query returned no records")
	}
	// Both sides may have retained the same ID (the server keeps its own
	// view, the client the merged one) — the merged client+server tree
	// must be among them.
	merged := false
	for _, rec := range recs {
		if rec.Trace == nil || rec.Trace.ID != res.SlowTraceID {
			t.Fatalf("ID query returned foreign record %+v", rec)
		}
		parties := map[string]bool{}
		for _, seg := range rec.Trace.Segments {
			parties[seg.Party] = true
		}
		if rec.Trace.Total > 0 && parties["client"] && parties["server"] {
			merged = true
		}
	}
	if !merged {
		t.Errorf("no merged client+server tree among %d records for %s", len(recs), res.SlowTraceID)
	}

	out := res.Render()
	for _, want := range []string{"offered/s", "<- knee", "slo ", "slow trace retained: true"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	t.Log("\n" + out)
}

// TestRenderTraceRecords: the ppbench traces table lists every record
// and expands the slowest retained tree.
func TestRenderTraceRecords(t *testing.T) {
	if out := RenderTraceRecords(nil); !strings.Contains(out, "no retained traces") {
		t.Errorf("empty render:\n%s", out)
	}
	recs := []obs.TraceRecord{
		{
			When:   time.Unix(1_700_000_000, 0).UTC(),
			Reason: obs.TraceKeptError,
			Err:    "deadline exceeded",
			Trace: &obs.TraceTree{ID: "t-err", Total: 2 * time.Millisecond, Segments: []obs.Segment{
				{Party: "client", Name: "encrypt", Round: -1, Dur: 2 * time.Millisecond},
			}},
		},
		{
			When:   time.Unix(1_700_000_001, 0).UTC(),
			Reason: obs.TraceKeptSlow,
			Trace: &obs.TraceTree{ID: "t-slow", Total: 90 * time.Millisecond, Segments: []obs.Segment{
				{Party: "client", Name: "encrypt", Round: -1, Dur: 40 * time.Millisecond},
				{Party: "server", Name: "kernel", Round: 0, Dur: 50 * time.Millisecond},
			}},
		},
	}
	out := RenderTraceRecords(recs)
	for _, want := range []string{"t-err", "t-slow", "deadline exceeded", "slowest retained (t-slow)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
