package experiments

import (
	"fmt"
	"time"

	"ppstream/internal/baselines"
)

// Table7Row is one system×model latency entry.
type Table7Row struct {
	System   string
	Model    string
	Latency  time.Duration
	Reported bool // true for published numbers (the paper's * entries)
}

// Table7Result holds Exp#6's comparison.
type Table7Result struct {
	Rows []Table7Row
}

// Table7 reproduces Exp#6: PP-Stream vs state-of-the-art systems on the
// MNIST models. SecureML/CryptoNets/CryptoDL use the numbers reported in
// their publications — exactly as the paper does (its starred entries) —
// while the EzPC-style baseline and PP-Stream are executed.
func Table7(cfg Config) (*Table7Result, error) {
	cfg = cfg.withDefaults()
	names := []string{"MNIST-1", "MNIST-2", "MNIST-3"}
	if cfg.Quick {
		names = []string{"MNIST-1"}
	}
	res := &Table7Result{}
	for _, rep := range baselines.ReportedLatencies() {
		res.Rows = append(res.Rows, Table7Row{
			System:   rep.System,
			Model:    rep.Model,
			Latency:  time.Duration(rep.Seconds * float64(time.Second)),
			Reported: true,
		})
	}
	for _, name := range names {
		net, ds, err := preparedModel(name)
		if err != nil {
			return nil, err
		}
		factor, err := SelectedFactor(name)
		if err != nil {
			return nil, err
		}
		// EzPC-style measured baseline.
		ez, err := baselines.NewEzPC(net, 1234)
		if err != nil {
			return nil, err
		}
		_, ezLat, err := ez.Infer(ds.TestX[0])
		if err != nil {
			return nil, fmt.Errorf("experiments: table7 ezpc %s: %w", name, err)
		}
		res.Rows = append(res.Rows, Table7Row{System: "EzPC", Model: name, Latency: ezLat})

		// PP-Stream with all features.
		lat, err := engineLatency(name, factor, 12, true, true, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: table7 ppstream %s: %w", name, err)
		}
		res.Rows = append(res.Rows, Table7Row{System: "PP-Stream", Model: name, Latency: lat})
	}
	return res, nil
}

// Render formats Table VII.
func (r *Table7Result) Render() string {
	header := []string{"system", "model", "latency", "source"}
	var rows [][]string
	for _, row := range r.Rows {
		src := "measured"
		if row.Reported {
			src = "reported*"
		}
		rows = append(rows, []string{row.System, row.Model, row.Latency.String(), src})
	}
	return "Table VII (Exp#6): comparison with state-of-the-art systems\n" +
		renderTable(header, rows) +
		"(* = numbers from the corresponding publications, as in the paper)\n"
}

// Table3Render prints the dataset/model inventory (Table III).
func Table3Render() string {
	header := []string{"dataset", "model", "train", "test", "servers (model/data)", "generated train/test"}
	var rows [][]string
	for _, s := range allSpecs() {
		rows = append(rows, []string{
			s.Name, s.Arch,
			fmt.Sprint(s.PaperTrain), fmt.Sprint(s.PaperTest),
			fmt.Sprintf("%d / %d", s.ModelServers, s.DataServers),
			fmt.Sprintf("%d / %d", s.TrainCount(), s.TestCount()),
		})
	}
	return "Table III: datasets and models (paper sample counts vs generated synthetic counts)\n" +
		renderTable(header, rows)
}
