package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ppstream/internal/obs"
)

// This file implements `ppbench traces`: a console view over a running
// ppserver's /debug/traces endpoint — the tail-sampled span store. It
// lists the retained records (why each was kept, its latency, its
// error) and renders the slowest one span by span, so "why was that
// request slow" is answerable from a terminal without jq.

// TracesOptions configures the span-store query.
type TracesOptions struct {
	// Addr is the metrics endpoint's host:port (ppserver -metrics).
	Addr string
	// Since restricts to records retained in the trailing window (e.g.
	// "10m"); empty fetches everything retained.
	Since string
	// MinMS excludes requests faster than this many milliseconds.
	MinMS float64
	// Limit bounds the record count (0 = server default).
	Limit int
	// Client overrides the HTTP client (tests). Nil uses a 5s-timeout
	// default.
	Client *http.Client
}

// Traces fetches and renders the span store's retained records.
func Traces(w io.Writer, opts TracesOptions) error {
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	q := url.Values{}
	if opts.Since != "" {
		q.Set("since", opts.Since)
	}
	if opts.MinMS > 0 {
		q.Set("min_ms", strconv.FormatFloat(opts.MinMS, 'f', -1, 64))
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	u := "http://" + opts.Addr + "/debug/traces"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := client.Get(u)
	if err != nil {
		return fmt.Errorf("experiments: trace fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("experiments: trace fetch: status %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("experiments: trace fetch: %w", err)
	}
	var recs []obs.TraceRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return fmt.Errorf("experiments: trace payload: %w", err)
	}
	fmt.Fprint(w, RenderTraceRecords(recs))
	return nil
}

// RenderTraceRecords formats span-store records: a table of what was
// kept and why, then the slowest record's full tree.
func RenderTraceRecords(recs []obs.TraceRecord) string {
	if len(recs) == 0 {
		return "span store: no retained traces match\n"
	}
	header := []string{"when", "reason", "trace", "total", "spans", "err"}
	var rows [][]string
	slowest := -1
	for i, rec := range recs {
		var id string
		var total time.Duration
		spans := 0
		if rec.Trace != nil {
			id = rec.Trace.ID
			total = rec.Trace.Total
			spans = len(rec.Trace.Segments)
		}
		if slowest < 0 || (recs[slowest].Trace != nil && total > recs[slowest].Trace.Total) {
			slowest = i
		}
		errStr := rec.Err
		if len(errStr) > 48 {
			errStr = errStr[:45] + "..."
		}
		rows = append(rows, []string{
			rec.When.Format("15:04:05.000"), rec.Reason, id, fmtDur(total), fmt.Sprint(spans), errStr,
		})
	}
	out := fmt.Sprintf("span store: %d retained traces\n%s", len(recs), renderTable(header, rows))
	if slowest >= 0 && recs[slowest].Trace != nil && len(recs[slowest].Trace.Segments) > 0 {
		out += fmt.Sprintf("\nslowest retained (%s):\n%s", recs[slowest].Trace.ID, obs.RenderTree(recs[slowest].Trace))
	}
	return out
}
