package experiments

import (
	"context"
	"fmt"
	mathrand "math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"ppstream/internal/obs"
	"ppstream/internal/protocol"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// This file implements `ppbench swarm`: an open-loop load harness over a
// live TCP deployment of the serving plane. Unlike the closed-loop
// ServeBench (whose workers wait for each completion before submitting
// again, so offered load self-throttles under overload), the swarm fires
// requests on a Poisson arrival schedule regardless of how the server is
// coping — the only way to see the latency-vs-offered-load knee and to
// exercise the shedder the way real traffic does. The run doubles as a
// ground-truth check on the live telemetry plane: the windowed serve
// metrics, the SLO burn-rate engine, and the tail-sampled trace store
// are all asserted against the client's own accounting.

// Swarm deployment shape: enough client sessions that the server-global
// shedder (not the per-session window) is the contended resource at
// overload.
const (
	swarmClients     = 4
	swarmWindow      = 8
	swarmMaxInFlight = 8
)

// SwarmPoint is one offered-load level's measurement.
type SwarmPoint struct {
	// Offered is the open-loop arrival rate, requests/second.
	Offered  float64 `json:"offered_rps"`
	Arrivals int     `json:"arrivals"`
	// Completed / Rejected / Failed partition the arrivals: rejected
	// means a retryable shed/throttle rejection, failed anything else.
	Completed int           `json:"completed"`
	Rejected  int           `json:"rejected"`
	Failed    int           `json:"failed"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	// Achieved is the completion throughput, requests/second.
	Achieved float64       `json:"achieved_rps"`
	P50      time.Duration `json:"p50_ns"`
	P95      time.Duration `json:"p95_ns"`
	P99      time.Duration `json:"p99_ns"`
}

// SwarmResult is the swarm run's full accounting: the offered-load
// sweep, the detected knee, and the telemetry-plane cross-checks.
type SwarmResult struct {
	KeyBits int `json:"key_bits"`
	// Baseline percentiles from an unloaded sequential warm-up; the SLO
	// latency target and the knee's p99 threshold derive from these.
	BaselineP50 time.Duration `json:"baseline_p50_ns"`
	BaselineP99 time.Duration `json:"baseline_p99_ns"`
	Points      []SwarmPoint  `json:"points"`
	// KneeIndex is the first sweep point where the server stopped
	// keeping up: achieved < 85% of offered, or p99 beyond 3× the first
	// (low-load) point's p99 — the sequential baseline is not the
	// reference because even healthy interleaving inflates tail latency
	// over a one-at-a-time run. -1 when the sweep never found one.
	KneeIndex   int     `json:"knee_index"`
	KneeOffered float64 `json:"knee_offered_rps"`
	// SLO is the engine's final evaluation; FastAlertFired reports
	// whether any objective's fast-burn alert was firing by the end of
	// the overload point, FastAlertBeforeKnee whether one was already
	// firing after the first (unloaded) point — it must not be.
	SLO                 []obs.SLOStatus `json:"slo"`
	FastAlertFired      bool            `json:"fast_alert_fired"`
	FastAlertBeforeKnee bool            `json:"fast_alert_before_knee"`
	// SlowTraceID names a retained merged (client+server) trace slower
	// than baseline p99 — the "why was this one slow" artifact the span
	// store exists for.
	SlowTraceID       string `json:"slow_trace_id"`
	SlowTraceRetained bool   `json:"slow_trace_retained"`
	// LiveOK / CumulativeOK cross-check the windowed serve counter
	// against the since-boot counter; they must agree when the whole run
	// fits inside the live window (LiveChecked).
	LiveOK       uint64 `json:"live_ok"`
	CumulativeOK uint64 `json:"cumulative_ok"`
	LiveChecked  bool   `json:"live_checked"`

	Elapsed time.Duration `json:"elapsed_ns"`

	// Traces is the harness's span store (memory-mode), kept so callers
	// — `ppbench swarm` tests, the /debug/traces handler — can query the
	// retained traces after the run.
	Traces *obs.TraceStore `json:"-"`
}

// swarmValidate is the invariant list a swarm run must satisfy to gate
// CI: the knee exists, the SLO engine saw it, the span store kept the
// evidence, and the windowed metrics agree with ground truth.
func (r *SwarmResult) swarmValidate() error {
	total := 0
	for _, p := range r.Points {
		total += p.Completed
	}
	switch {
	case total == 0:
		return fmt.Errorf("experiments: swarm completed no requests")
	case r.KneeIndex < 0:
		return fmt.Errorf("experiments: swarm found no knee up to %.1f req/s — overload point too gentle",
			r.Points[len(r.Points)-1].Offered)
	case !r.FastAlertFired:
		return fmt.Errorf("experiments: overload did not trip the SLO fast-burn alert")
	case r.KneeIndex > 0 && r.FastAlertBeforeKnee:
		return fmt.Errorf("experiments: SLO fast-burn alert fired before the knee (false positive)")
	case !r.SlowTraceRetained:
		return fmt.Errorf("experiments: span store retained no slow merged trace")
	case r.LiveChecked && r.LiveOK != r.CumulativeOK:
		return fmt.Errorf("experiments: windowed serve.requests.ok (%d) disagrees with cumulative (%d)",
			r.LiveOK, r.CumulativeOK)
	}
	return nil
}

// Swarm runs the open-loop load harness against a live TCP server and
// validates the telemetry plane against the run's own ground truth. The
// returned error is non-nil when an invariant fails, so `ppbench swarm`
// can gate CI.
func Swarm(cfg Config) (*SwarmResult, error) {
	cfg = cfg.withDefaults()
	protocol.RegisterServiceWire()
	begin := time.Now()

	// Phase 1 — baseline: sequential requests on a throwaway unloaded
	// session give the zero-queueing latency the knee thresholds and the
	// SLO latency target are calibrated from.
	baseLats, _, _, err := serveLevel(cfg, 1, 8, false)
	if err != nil {
		return nil, fmt.Errorf("experiments: swarm baseline: %w", err)
	}
	sort.Slice(baseLats, func(i, j int) bool { return baseLats[i] < baseLats[j] })
	res := &SwarmResult{
		KeyBits:     cfg.KeyBits,
		BaselineP50: percentile(baseLats, 0.50),
		BaselineP99: percentile(baseLats, 0.99),
		KneeIndex:   -1,
	}

	netw, err := serveNet()
	if err != nil {
		return nil, err
	}
	key, err := sharedKey(cfg.KeyBits)
	if err != nil {
		return nil, err
	}

	// Phase 2 — deployment: a real listener, one session per client
	// connection, all sessions sharing one shedder, rate limiter, SLO
	// engine, and span store. The SLO latency target sits well above
	// baseline so only genuine overload (not bucket noise) burns budget.
	sloTarget := 10 * res.BaselineP99
	if sloTarget < 100*time.Millisecond {
		sloTarget = 100 * time.Millisecond
	}
	reg := obs.NewRegistry("swarm/server")
	slo, err := obs.NewSLOEngine(obs.SLOConfig{
		Specs: []obs.SLOSpec{
			{Name: "p99", Objective: 0.99, LatencyTarget: sloTarget},
			{Name: "avail", Objective: 0.999},
		},
		Registry: reg,
	})
	if err != nil {
		return nil, err
	}
	traces, err := obs.NewTraceStore(obs.TraceStoreConfig{
		SlowestK: 8,
		Registry: reg,
	})
	if err != nil {
		return nil, err
	}
	res.Traces = traces
	shed := protocol.NewShedder(protocol.ShedConfig{MaxInFlight: swarmMaxInFlight, Registry: reg})
	limiter, err := protocol.NewRateLimiter(4096, time.Second)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var sessions sync.WaitGroup
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed: shutdown
			}
			sessions.Add(1)
			go func() {
				defer sessions.Done()
				defer conn.Close()
				edge := stream.NewTCPEdge(conn)
				_ = protocol.ServeSessionConfig(ctx, edge, edge, netw, protocol.SessionConfig{
					Factor:     serveFactor,
					MaxWorkers: 2,
					Window:     swarmWindow,
					Shed:       shed,
					Limiter:    limiter,
					Registry:   reg,
					Traces:     traces,
					SLO:        slo,
				})
			}()
		}
	}()
	addr := ln.Addr().String()

	clients := make([]*protocol.Client, swarmClients)
	for i := range clients {
		edge, err := stream.DialEdge(addr)
		if err != nil {
			return nil, err
		}
		clients[i], err = protocol.NewClientOpts(ctx, edge, edge, netw, key, serveFactor, protocol.ClientOptions{
			Workers:  1,
			Window:   swarmWindow,
			Deadline: time.Minute,
		})
		if err != nil {
			return nil, err
		}
	}

	// Phase 3 — the sweep. Offered rates are multiples of a capacity
	// estimate from the baseline (two workers' worth of serial service
	// rate); the last point is a deliberate heavy overload so the knee,
	// the shedder, and the fast-burn alert are all exercised every run.
	capacity := 2 / res.BaselineP50.Seconds()
	multiples := []float64{0.2, 0.5, 1, 2, 4, 8}
	if cfg.Quick {
		multiples = []float64{0.2, 1, 8}
	}
	r := mathrand.New(mathrand.NewSource(41))
	inputs := make([]*tensor.Dense, 64)
	for i := range inputs {
		x := tensor.Zeros(4)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()
		}
		inputs[i] = x
	}

	perPoint := cfg.Requests * 6
	if perPoint < 24 {
		perPoint = 24
	}
	for pi, m := range multiples {
		offered := m * capacity
		n := perPoint
		if m >= 4 {
			// The overload point doubles its arrivals so the shed fraction
			// dominates the SLO windows regardless of scheduler luck.
			n = 2 * perPoint
		}
		point := swarmPoint(ctx, clients, traces, inputs, r, offered, n)
		res.Points = append(res.Points, point)
		// The first point is the low-load latency reference; it can only
		// be the knee by failing to keep up with its own offered rate.
		lowLoadP99 := res.Points[0].P99
		if res.KneeIndex < 0 &&
			(point.Achieved < 0.85*point.Offered || (pi > 0 && point.P99 > 3*lowLoadP99)) {
			res.KneeIndex = pi
			res.KneeOffered = point.Offered
		}
		if pi == 0 {
			for _, st := range slo.Evaluate() {
				if st.FastAlert {
					res.FastAlertBeforeKnee = true
				}
			}
		}
	}

	res.SLO = slo.Evaluate()
	for _, st := range res.SLO {
		if st.FastAlert {
			res.FastAlertFired = true
		}
	}

	// Telemetry cross-checks against the run's own ground truth. The
	// windowed counter must agree with the cumulative one as long as the
	// whole serving phase fits inside the live window.
	res.CumulativeOK = reg.Snapshot().Counters["requests.completed"]
	res.LiveOK = reg.LiveCounter("serve.requests.ok").Value()
	res.LiveChecked = time.Since(begin) < 45*time.Second

	// The span store must have kept a slow merged trace: client+server
	// spans joined under one trace ID, slower than the unloaded p99.
	recs, err := traces.Query(obs.TraceQuery{})
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		t := rec.Trace
		if t == nil || t.Total <= res.BaselineP99 {
			continue
		}
		var hasClient, hasServer bool
		for _, s := range t.Segments {
			switch s.Party {
			case "client":
				hasClient = true
			case "server":
				hasServer = true
			}
		}
		if hasClient && hasServer {
			res.SlowTraceID = t.ID
			res.SlowTraceRetained = true
			break
		}
	}

	for _, cl := range clients {
		_ = cl.Close() // overload runs legitimately end with torn requests
	}
	ln.Close()
	cancel()
	sessions.Wait()
	res.Elapsed = time.Since(begin)

	return res, res.swarmValidate()
}

// swarmPoint fires n Poisson arrivals at the offered rate and waits for
// every outcome. Arrivals are open-loop: each fires at its scheduled
// instant in its own goroutine, regardless of how many are still in
// flight — under overload they pile onto the client windows and the
// server's shedder, exactly like real traffic.
func swarmPoint(ctx context.Context, clients []*protocol.Client, traces *obs.TraceStore,
	inputs []*tensor.Dense, r *mathrand.Rand, offered float64, n int) SwarmPoint {
	point := SwarmPoint{Offered: offered, Arrivals: n}
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		lats []time.Duration
	)
	begin := time.Now()
	next := begin
	for i := 0; i < n; i++ {
		// Exponential interarrival gaps = Poisson arrivals; the seeded
		// source keeps the schedule reproducible across runs.
		next = next.Add(time.Duration(r.ExpFloat64() / offered * float64(time.Second)))
		time.Sleep(time.Until(next))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			_, tree, err := clients[i%len(clients)].InferTraced(ctx, inputs[i%len(inputs)])
			lat := time.Since(start)
			traces.Record(tree, err)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				point.Completed++
				lats = append(lats, lat)
			case protocol.Retryable(err):
				point.Rejected++
			default:
				point.Failed++
			}
		}(i)
	}
	wg.Wait()
	point.Elapsed = time.Since(begin)
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	point.Achieved = float64(point.Completed) / point.Elapsed.Seconds()
	point.P50 = percentile(lats, 0.50)
	point.P95 = percentile(lats, 0.95)
	point.P99 = percentile(lats, 0.99)
	return point
}

// Render formats the sweep, the knee, and the telemetry verdicts.
func (r *SwarmResult) Render() string {
	header := []string{"offered/s", "arrivals", "completed", "rejected", "failed", "achieved/s", "p50", "p95", "p99"}
	var rows [][]string
	for i, p := range r.Points {
		mark := ""
		if i == r.KneeIndex {
			mark = " <- knee"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.Offered), fmt.Sprint(p.Arrivals), fmt.Sprint(p.Completed),
			fmt.Sprint(p.Rejected), fmt.Sprint(p.Failed),
			fmt.Sprintf("%.1f", p.Achieved),
			fmtDur(p.P50), fmtDur(p.P95), fmtDur(p.P99) + mark,
		})
	}
	var b []byte
	b = append(b, fmt.Sprintf(
		"Swarm: open-loop Poisson load sweep (%d-bit key), baseline p50 %s / p99 %s, %s total\n%s",
		r.KeyBits, fmtDur(r.BaselineP50), fmtDur(r.BaselineP99),
		r.Elapsed.Round(time.Millisecond), renderTable(header, rows))...)
	for _, st := range r.SLO {
		b = append(b, fmt.Sprintf("slo %-5s objective %.3f: fast_alert=%v slow_alert=%v (burn %.1f/%.1f)\n",
			st.Name, st.Objective, st.FastAlert, st.SlowAlert,
			st.Windows[0].Burn, st.Windows[1].Burn)...)
	}
	b = append(b, fmt.Sprintf("slow trace retained: %v (%s); windowed ok %d vs cumulative %d (checked=%v)\n",
		r.SlowTraceRetained, r.SlowTraceID, r.LiveOK, r.CumulativeOK, r.LiveChecked)...)
	return string(b)
}
