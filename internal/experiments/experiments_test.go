package experiments

import (
	"strings"
	"testing"
	"time"
)

// quickCfg keeps experiment tests CI-friendly: tiny keys, few requests.
func quickCfg() Config {
	return Config{KeyBits: 256, Requests: 6, ProfileReps: 1, Trials: 2, Quick: true}
}

func TestFig1SmallKeys(t *testing.T) {
	res, err := Fig1([]int{128, 256}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Larger keys must cost more for encryption and decryption.
	if res.Rows[1].Encrypt <= res.Rows[0].Encrypt {
		t.Errorf("encrypt did not grow with key size: %v vs %v", res.Rows[0].Encrypt, res.Rows[1].Encrypt)
	}
	// Homomorphic add must be far cheaper than encryption (Fig 1 shape).
	if res.Rows[1].Add*10 > res.Rows[1].Encrypt {
		t.Errorf("add (%v) not ≪ encrypt (%v)", res.Rows[1].Add, res.Rows[1].Encrypt)
	}
	out := res.Render()
	if !strings.Contains(out, "Fig 1") || !strings.Contains(out, "256") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestTables4And5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	train, test, err := Tables4And5(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Rows) == 0 || len(train.Rows) != len(test.Rows) {
		t.Fatalf("row counts %d/%d", len(train.Rows), len(test.Rows))
	}
	for _, row := range train.Rows {
		if len(row.Sweep) != 7 {
			t.Fatalf("%s sweep has %d entries", row.Model, len(row.Sweep))
		}
		// Accuracy at the selected factor must be near the original.
		sel := row.Sweep[row.Selected]
		if row.Original-sel > 0.02 && row.Selected < 6 {
			t.Errorf("%s: selected factor accuracy %.3f far from original %.3f", row.Model, sel, row.Original)
		}
		// High factors should beat factor 10^0 (paper shape).
		if row.Sweep[6] < row.Sweep[0]-1e-9 {
			t.Errorf("%s: accuracy decreased with precision: %v", row.Model, row.Sweep)
		}
	}
	if !strings.Contains(train.Render(), "Table IV") || !strings.Contains(test.Render(), "Table V") {
		t.Error("render labels wrong")
	}
}

func TestFig8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("latency experiments in -short mode")
	}
	res, err := Fig8(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		// Core Fig 8 shape: CipherBase ≫ PlainBase, and streaming beats
		// centralized ciphertext execution.
		if row.CipherBase < row.PlainBase*10 {
			t.Errorf("%s: CipherBase %v not ≫ PlainBase %v", row.Model, row.CipherBase, row.PlainBase)
		}
		if row.PPStreamB >= row.CipherBase {
			t.Errorf("%s: PP-Stream %v did not beat CipherBase %v", row.Model, row.PPStreamB, row.CipherBase)
		}
	}
	if !strings.Contains(res.Render(), "Fig 8") {
		t.Error("render label wrong")
	}
}

func TestFig7And9Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("latency experiments in -short mode")
	}
	cfg := quickCfg()
	f7, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Rows) == 0 {
		t.Fatal("fig7 empty")
	}
	f9, err := Fig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Rows) == 0 {
		t.Fatal("fig9 empty")
	}
	for _, row := range f9.Rows {
		if row.With <= 0 || row.Without <= 0 {
			t.Errorf("non-positive latency in %+v", row)
		}
	}
	if !strings.Contains(f7.Render(), "Fig 7") || !strings.Contains(f9.Render(), "Fig 9") {
		t.Error("render labels wrong")
	}
}

func TestTable6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("leakage sweep in -short mode")
	}
	res, err := Table6(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Table VI shape: dcor decreases with tensor length.
	first, last := res.Rows[0].Dcor, res.Rows[len(res.Rows)-1].Dcor
	if last >= first {
		t.Errorf("dcor did not decrease: 2^5 %.4f vs max %.4f", first, last)
	}
	for _, row := range res.Rows {
		if row.Dcor < 0 || row.Dcor > 1 {
			t.Errorf("dcor %v out of range", row.Dcor)
		}
	}
}

func TestTable7Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison experiments in -short mode")
	}
	res, err := Table7(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var ppstream, ezpc time.Duration
	reported := 0
	for _, row := range res.Rows {
		if row.Reported {
			reported++
		}
		if row.Model == "MNIST-1" {
			switch row.System {
			case "PP-Stream":
				ppstream = row.Latency
			case "EzPC":
				ezpc = row.Latency
			}
		}
	}
	if reported != 3 {
		t.Errorf("%d reported rows, want 3", reported)
	}
	if ppstream == 0 || ezpc == 0 {
		t.Fatal("missing measured rows")
	}
	t.Logf("MNIST-1: PP-Stream %v vs EzPC-style %v", ppstream, ezpc)
	if !strings.Contains(res.Render(), "Table VII") {
		t.Error("render label wrong")
	}
}

func TestTable3Render(t *testing.T) {
	out := Table3Render()
	for _, name := range []string{"Breast", "MNIST-3", "CIFAR-10-3", "VGG19"} {
		if !strings.Contains(out, name) {
			t.Errorf("Table III missing %s", name)
		}
	}
}
