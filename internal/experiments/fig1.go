package experiments

import (
	"crypto/rand"
	"fmt"
	"math/big"
	"time"

	"ppstream/internal/paillier"
)

// Fig1Row is one key-size point of the paper's Figure 1 benchmark:
// average per-tensor latency of encryption, decryption, homomorphic
// scalar multiplication (constant 10^6), and homomorphic addition over a
// 28×28 tensor.
type Fig1Row struct {
	KeyBits   int
	Encrypt   time.Duration
	Decrypt   time.Duration
	ScalarMul time.Duration
	Add       time.Duration
}

// Fig1Result holds the figure's series.
type Fig1Result struct {
	TensorElems int
	Reps        int
	Rows        []Fig1Row
}

// Fig1 reproduces the homomorphic-encryption benchmark of Figure 1: for
// each key size, encrypt a 28×28 tensor, scalar-multiply it by 10^6, add
// the products to the originals, and decrypt; report per-step latency
// averaged over reps input tensors. The paper uses MNIST images and
// 1,000 repetitions with keys up to 2048 bits; reps and key sizes are
// caller-tunable.
func Fig1(keyBits []int, reps int) (*Fig1Result, error) {
	if len(keyBits) == 0 {
		keyBits = []int{256, 512, 1024, 2048}
	}
	if reps <= 0 {
		reps = 3
	}
	const elems = 28 * 28
	res := &Fig1Result{TensorElems: elems, Reps: reps}
	scalar := big.NewInt(1_000_000)
	for _, bits := range keyBits {
		key, err := paillier.GenerateKey(rand.Reader, bits)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig1 keygen %d: %w", bits, err)
		}
		var encT, decT, mulT, addT time.Duration
		for rep := 0; rep < reps; rep++ {
			// A synthetic MNIST-like image: pixel values 0..255.
			msgs := make([]*big.Int, elems)
			for i := range msgs {
				msgs[i] = big.NewInt(int64((i*7 + rep*13) % 256))
			}
			cts := make([]*paillier.Ciphertext, elems)
			start := time.Now()
			for i, m := range msgs {
				cts[i], err = key.PublicKey.Encrypt(rand.Reader, m)
				if err != nil {
					return nil, err
				}
			}
			encT += time.Since(start)

			prods := make([]*paillier.Ciphertext, elems)
			start = time.Now()
			for i, ct := range cts {
				prods[i], err = key.PublicKey.MulScalar(ct, scalar)
				if err != nil {
					return nil, err
				}
			}
			mulT += time.Since(start)

			sums := make([]*paillier.Ciphertext, elems)
			start = time.Now()
			for i := range cts {
				sums[i] = key.PublicKey.Add(cts[i], prods[i])
			}
			addT += time.Since(start)

			start = time.Now()
			for i, ct := range sums {
				got, err := key.Decrypt(ct)
				if err != nil {
					return nil, err
				}
				want := new(big.Int).Mul(msgs[i], big.NewInt(1_000_001))
				if got.Cmp(want) != 0 {
					return nil, fmt.Errorf("experiments: fig1 correctness failure at %d bits", bits)
				}
			}
			decT += time.Since(start)
		}
		res.Rows = append(res.Rows, Fig1Row{
			KeyBits:   bits,
			Encrypt:   encT / time.Duration(reps),
			Decrypt:   decT / time.Duration(reps),
			ScalarMul: mulT / time.Duration(reps),
			Add:       addT / time.Duration(reps),
		})
	}
	return res, nil
}

// Render formats the figure's series as text.
func (r *Fig1Result) Render() string {
	header := []string{"key bits", "encrypt/tensor", "decrypt/tensor", "scalar-mul/tensor", "add/tensor"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.KeyBits),
			row.Encrypt.String(),
			row.Decrypt.String(),
			row.ScalarMul.String(),
			row.Add.String(),
		})
	}
	return fmt.Sprintf("Fig 1: Paillier benchmark (28×28 tensor, scalar 10^6, %d reps)\n%s",
		r.Reps, renderTable(header, rows))
}
