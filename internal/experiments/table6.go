package experiments

import (
	"fmt"

	"ppstream/internal/leakage"
	"ppstream/internal/nn"
	"ppstream/internal/tensor"
)

// Table6Row is one tensor-length point of the paper's Table VI.
type Table6Row struct {
	Log2Len int
	Dcor    float64
}

// Table6Result holds the leakage table.
type Table6Result struct {
	Trials int
	Rows   []Table6Row
}

// Table6 reproduces Exp#5: distance correlation between before- and
// after-obfuscation tensors versus tensor length 2^5..2^13. As in the
// paper, the measured tensors are the ones the protocol obfuscates —
// linear-stage outputs captured from inference runs of a trained model —
// resampled to each target length (the paper pools tensors of matching
// lengths across its nine models; a single activation-value pool is the
// single-host equivalent).
func Table6(cfg Config) (*Table6Result, error) {
	cfg = cfg.withDefaults()
	maxLog := 13
	if cfg.Quick {
		maxLog = 10
	}
	pool, err := activationPool("MNIST-2", 1<<maxLog)
	if err != nil {
		return nil, err
	}
	res := &Table6Result{Trials: cfg.Trials}
	for logN := 5; logN <= maxLog; logN++ {
		n := 1 << logN
		t, err := tensor.FromSlice(append([]float64(nil), pool[:n]...), n)
		if err != nil {
			return nil, err
		}
		d, err := leakage.MeasureMean(t, cfg.Trials)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table6Row{Log2Len: logN, Dcor: d})
	}
	return res, nil
}

// activationPool collects at least n real linear-stage output values by
// running plaintext inference of a trained model over its test set.
func activationPool(model string, n int) ([]float64, error) {
	net, ds, err := preparedModel(model)
	if err != nil {
		return nil, err
	}
	merged, err := nn.Merge(net)
	if err != nil {
		return nil, err
	}
	var pool []float64
	for _, x := range ds.TestX {
		cur := x
		for _, m := range merged {
			out, err := m.Forward(cur)
			if err != nil {
				return nil, err
			}
			if m.Kind == nn.Linear {
				// These are exactly the tensors the model provider
				// obfuscates before returning them.
				pool = append(pool, out.Data()...)
			}
			cur = out
		}
		if len(pool) >= n {
			return pool[:n], nil
		}
	}
	if len(pool) < n {
		return nil, fmt.Errorf("experiments: activation pool has %d values, need %d", len(pool), n)
	}
	return pool[:n], nil
}

// Render formats Table VI.
func (r *Table6Result) Render() string {
	header := []string{"tensor length", "distance correlation"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{fmt.Sprintf("2^%d", row.Log2Len), fmt.Sprintf("%.4f", row.Dcor)})
	}
	return fmt.Sprintf("Table VI (Exp#5): information leakage (mean over %d fresh permutations)\n%s",
		r.Trials, renderTable(header, rows))
}
