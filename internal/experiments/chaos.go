package experiments

import (
	"context"
	"errors"
	"fmt"
	mathrand "math/rand"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ppstream/internal/obs"
	"ppstream/internal/protocol"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// Chaos is the serving plane's fault-injection smoke: a live TCP server
// under admission control and rate limiting, driven by concurrent
// clients whose connections pass through a stream.ChaosConn injecting
// delays and resets. It proves the failure layer end to end — typed
// throttle/shed rejections are retried, torn sessions are redialed,
// every request ends in exactly one of completed / gave-up / fatal, and
// no goroutine outlives the run.

// ChaosResult is one chaos run's accounting. The invariant the run
// asserts is Completed + GaveUp + Fatal == Requests: the failure layer
// may reject or fail requests, but it may never lose one.
type ChaosResult struct {
	Requests  int
	Completed int
	// GaveUp counts requests that exhausted their retry budget on
	// retryable errors (shed, throttle, torn sessions).
	GaveUp int
	// Fatal counts requests failing with a non-retryable error.
	Fatal int

	// Client-side retry activity (from the retry.* counters).
	Retries uint64
	Redials uint64
	Giveups uint64

	// Server-side rejections.
	Shed      uint64
	Throttled uint64

	// Injected faults across all chaos connections.
	InjectedResets uint64
	InjectedDelays uint64

	// Goroutine accounting: After is sampled once the run has fully shut
	// down and must settle back to Before (small slack for runtime
	// background goroutines).
	GoroutinesBefore int
	GoroutinesAfter  int

	Elapsed time.Duration
}

// chaosAccounted reports whether every request is accounted for.
func (r *ChaosResult) chaosAccounted() bool {
	return r.Completed+r.GaveUp+r.Fatal == r.Requests
}

// chaosLeaked reports whether goroutines survived the run beyond slack.
func (r *ChaosResult) chaosLeaked() bool {
	return r.GoroutinesAfter > r.GoroutinesBefore+chaosGoroutineSlack
}

// chaosGoroutineSlack tolerates runtime-internal goroutines (GC workers,
// netpoller) that come and go independently of the serving plane.
const chaosGoroutineSlack = 4

// Chaos runs the fault-injection smoke and returns an error when one of
// its invariants — full accounting, observed retries, no goroutine
// leaks — does not hold, so `ppbench chaos` can gate CI.
func Chaos(cfg Config) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	protocol.RegisterServiceWire()

	requests := cfg.Requests
	if requests < 24 {
		requests = 24
	}
	const clients = 4

	netw, err := serveNet()
	if err != nil {
		return nil, err
	}
	key, err := sharedKey(cfg.KeyBits)
	if err != nil {
		return nil, err
	}

	res := &ChaosResult{Requests: requests}
	runtime.GC()
	res.GoroutinesBefore = runtime.NumGoroutine()
	begin := time.Now()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	// Server: a real listener with one session per accepted connection
	// (resets tear sessions down, clients redial). Admission pressure is
	// deliberate: the shedder's in-flight bound sits below the client
	// concurrency and the limiter's window is tight, so the retry paths
	// are exercised on every run, not only under unlucky scheduling.
	serverReg := obs.NewRegistry("chaos/server")
	shed := protocol.NewShedder(protocol.ShedConfig{MaxInFlight: 2, Registry: serverReg})
	limiter, err := protocol.NewRateLimiter(64, 100*time.Millisecond)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	var (
		connMu   sync.Mutex
		conns    []net.Conn
		sessions sync.WaitGroup
	)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed: shutdown
			}
			connMu.Lock()
			conns = append(conns, conn)
			connMu.Unlock()
			sessions.Add(1)
			go func() {
				defer sessions.Done()
				edge := stream.NewTCPEdge(conn)
				// Session errors are expected here: chaos tears
				// connections down mid-frame by design.
				_ = protocol.ServeSessionConfig(ctx, edge, edge, netw, protocol.SessionConfig{
					Factor:     serveFactor,
					MaxWorkers: 2,
					Window:     clients,
					IdleTTL:    2 * time.Second,
					Shed:       shed,
					Limiter:    limiter,
					Registry:   serverReg,
				})
				conn.Close()
			}()
		}
	}()
	addr := ln.Addr().String()

	// Clients: one Redialer shared by the workers; every dial wraps the
	// connection in a chaos injector with its own derived seed, so each
	// session sees a fresh deterministic fault schedule.
	clientReg := obs.NewRegistry("chaos/client")
	var (
		dialSeq    atomic.Int64
		chaosMu    sync.Mutex
		chaosConns []*stream.ChaosConn
	)
	dial := func(ctx context.Context) (*protocol.Client, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		cc := stream.NewChaosConn(conn, stream.ChaosConfig{
			Seed:      1000 + dialSeq.Add(1),
			DelayProb: 0.05,
			DelayMin:  time.Millisecond,
			DelayMax:  5 * time.Millisecond,
			// High enough that the deterministic schedules tear at least
			// one session per run, exercising the redial path.
			ResetProb: 0.05,
		})
		chaosMu.Lock()
		chaosConns = append(chaosConns, cc)
		chaosMu.Unlock()
		edge := stream.NewTCPEdge(cc)
		return protocol.NewClientOpts(ctx, edge, edge, netw, key, serveFactor, protocol.ClientOptions{
			Workers:  1,
			Window:   clients,
			Deadline: time.Minute,
			Retry:    protocol.RetryPolicy{MaxAttempts: 6, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond},
			Registry: clientReg,
		})
	}
	redialer := protocol.NewRedialer(dial, protocol.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		Budget:      time.Minute,
	}, clientReg)

	inputs := make([]*tensor.Dense, requests)
	r := mathrand.New(mathrand.NewSource(29))
	for i := range inputs {
		x := tensor.Zeros(4)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()
		}
		inputs[i] = x
	}

	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		jobs = make(chan int)
	)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				_, err := redialer.Infer(ctx, inputs[i])
				mu.Lock()
				switch {
				case err == nil:
					res.Completed++
				case protocol.Retryable(err):
					res.GaveUp++
				default:
					res.Fatal++
				}
				mu.Unlock()
			}
		}()
	}
	for i := range inputs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	res.Elapsed = time.Since(begin)

	// Shutdown: close the client side, stop accepting, tear down every
	// server connection (sessions blocked in Recv unblock on conn close),
	// and wait for the session goroutines.
	redialer.Close()
	ln.Close()
	cancel()
	connMu.Lock()
	for _, c := range conns {
		c.Close()
	}
	connMu.Unlock()
	sessions.Wait()

	counter := func(snap obs.Snapshot, name string) uint64 {
		return snap.Counters[name]
	}
	clientSnap := clientReg.Snapshot()
	serverSnap := serverReg.Snapshot()
	res.Retries = counter(clientSnap, "retry.attempts")
	res.Redials = counter(clientSnap, "retry.redials")
	res.Giveups = counter(clientSnap, "retry.giveups")
	res.Shed = counter(serverSnap, "shed.rejected.total")
	res.Throttled = counter(serverSnap, "rounds.errors")
	chaosMu.Lock()
	for _, cc := range chaosConns {
		st := cc.Stats()
		res.InjectedResets += st.Resets
		res.InjectedDelays += st.Delays
	}
	chaosMu.Unlock()

	// Goroutine settle: client reader goroutines and session workers need
	// a beat to observe closed connections.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		res.GoroutinesAfter = runtime.NumGoroutine()
		if !res.chaosLeaked() || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}

	switch {
	case !res.chaosAccounted():
		return res, fmt.Errorf("experiments: chaos lost requests: %d completed + %d gave up + %d fatal != %d submitted",
			res.Completed, res.GaveUp, res.Fatal, res.Requests)
	case res.chaosLeaked():
		return res, fmt.Errorf("experiments: chaos leaked goroutines: %d before, %d after",
			res.GoroutinesBefore, res.GoroutinesAfter)
	case res.Retries == 0 && res.Redials == 0:
		return res, errors.New("experiments: chaos observed no retries or redials — fault injection is not biting")
	case res.Completed == 0:
		return res, errors.New("experiments: chaos completed no requests — the failure layer is rejecting everything")
	}
	return res, nil
}

// Render formats the chaos run's accounting.
func (r *ChaosResult) Render() string {
	header := []string{"requests", "completed", "gave_up", "fatal", "retries", "redials", "shed", "resets", "delays"}
	rows := [][]string{{
		fmt.Sprint(r.Requests), fmt.Sprint(r.Completed), fmt.Sprint(r.GaveUp), fmt.Sprint(r.Fatal),
		fmt.Sprint(r.Retries), fmt.Sprint(r.Redials), fmt.Sprint(r.Shed),
		fmt.Sprint(r.InjectedResets), fmt.Sprint(r.InjectedDelays),
	}}
	return fmt.Sprintf(
		"Chaos: %d requests through injected delays/resets with shedding and throttling in %v\n%s"+
			"accounting: %d+%d+%d == %d, goroutines %d -> %d\n",
		r.Requests, r.Elapsed.Round(time.Millisecond), renderTable(header, rows),
		r.Completed, r.GaveUp, r.Fatal, r.Requests, r.GoroutinesBefore, r.GoroutinesAfter)
}
