package experiments

import (
	"fmt"

	"ppstream/internal/models"
	"ppstream/internal/scaling"
)

// AccuracyRow is one model's row of Table IV (training set) or Table V
// (testing set): accuracy at scaling factors 10^0..10^6 plus the
// original (unscaled) accuracy and the factor the selection algorithm
// picks.
type AccuracyRow struct {
	Model    string
	Sweep    []float64 // accuracy at 10^0..10^6
	Original float64
	Selected int // selected exponent f
}

// AccuracyResult holds one of the two tables.
type AccuracyResult struct {
	OnTest bool
	Rows   []AccuracyRow
}

// accuracyModels picks the model set: all nine, or the quick trio
// covering tabular / conv / VGG.
func accuracyModels(quick bool) []string {
	if quick {
		return []string{"Heart", "MNIST-2"}
	}
	var out []string
	for _, s := range models.All() {
		out = append(out, s.Name)
	}
	return out
}

// Tables4And5 reproduces Exp#1's accuracy tables: for each model,
// evaluate the parameter-rounded variants at every factor on the
// training set (Table IV) and testing set (Table V), and run the
// selection algorithm on the training set.
func Tables4And5(cfg Config) (train *AccuracyResult, test *AccuracyResult, err error) {
	cfg = cfg.withDefaults()
	train = &AccuracyResult{OnTest: false}
	test = &AccuracyResult{OnTest: true}
	for _, name := range accuracyModels(cfg.Quick) {
		net, ds, err := preparedModel(name)
		if err != nil {
			return nil, nil, err
		}
		trainSweep, err := scaling.Sweep(net, ds.TrainX, ds.TrainY)
		if err != nil {
			return nil, nil, err
		}
		testSweep, err := scaling.Sweep(net, ds.TestX, ds.TestY)
		if err != nil {
			return nil, nil, err
		}
		origTrain, err := net.Accuracy(ds.TrainX, ds.TrainY)
		if err != nil {
			return nil, nil, err
		}
		origTest, err := net.Accuracy(ds.TestX, ds.TestY)
		if err != nil {
			return nil, nil, err
		}
		sel, err := scaling.SelectFactor(net, ds.TrainX, ds.TrainY, 0)
		if err != nil {
			return nil, nil, err
		}
		train.Rows = append(train.Rows, AccuracyRow{Model: name, Sweep: trainSweep, Original: origTrain, Selected: sel.Exponent})
		test.Rows = append(test.Rows, AccuracyRow{Model: name, Sweep: testSweep, Original: origTest, Selected: sel.Exponent})
	}
	return train, test, nil
}

// SelectedFactor returns the scaling factor the Exp#1 algorithm picks
// for a model (used by the latency experiments, which the paper runs at
// the selected factors).
func SelectedFactor(name string) (int64, error) {
	net, ds, err := preparedModel(name)
	if err != nil {
		return 0, err
	}
	sel, err := scaling.SelectFactor(net, ds.TrainX, ds.TrainY, 0)
	if err != nil {
		return 0, err
	}
	return sel.Factor, nil
}

// Render formats the table like the paper's Tables IV/V.
func (r *AccuracyResult) Render() string {
	set := "training"
	label := "Table IV"
	if r.OnTest {
		set = "testing"
		label = "Table V"
	}
	header := []string{"model"}
	for f := 0; f <= scaling.MaxExponent; f++ {
		header = append(header, fmt.Sprintf("10^%d", f))
	}
	header = append(header, "original", "selected")
	var rows [][]string
	for _, row := range r.Rows {
		cells := []string{row.Model}
		for f, acc := range row.Sweep {
			mark := ""
			if f == row.Selected {
				mark = "*"
			}
			cells = append(cells, fmt.Sprintf("%.2f%s", acc*100, mark))
		}
		cells = append(cells, fmt.Sprintf("%.2f", row.Original*100), fmt.Sprintf("10^%d", row.Selected))
		rows = append(rows, cells)
	}
	return fmt.Sprintf("%s (Exp#1): accuracy (%%) vs scaling factor on the %s set (* = selected)\n%s",
		label, set, renderTable(header, rows))
}
