package experiments

import (
	"context"
	"fmt"
	mathrand "math/rand"
	"sort"
	"sync"
	"time"

	"ppstream/internal/nn"
	"ppstream/internal/protocol"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// serveFactor is the agreed scaling factor for the serving benchmark;
// the tiny FC net below is well-conditioned at 1000.
const serveFactor = 1000

// serveNet builds the small two-round network used by the serving
// benchmark. It is deliberately tiny: the benchmark measures the
// serving runtime's multiplexing, not kernel throughput (ppbench fig6
// et al. cover that).
func serveNet() (*nn.Network, error) {
	r := mathrand.New(mathrand.NewSource(17))
	return nn.NewNetwork("serve-bench", tensor.Shape{4},
		nn.NewFC("fc1", 4, 6, r),
		nn.NewReLU("relu1"),
		nn.NewFC("fc2", 6, 3, r),
		nn.NewSoftMax("softmax"),
	)
}

// ServeBenchRow is one concurrency level's sustained-throughput
// measurement over a single multiplexed session.
type ServeBenchRow struct {
	Concurrency int
	Requests    int
	Elapsed     time.Duration
	Throughput  float64 // requests per second
	P50         time.Duration
	P95         time.Duration
	P99         time.Duration
}

// ServeBenchResult holds the serving-runtime throughput sweep. At the
// highest concurrency level one deliberately malformed request is
// injected; InjectedError records the isolated per-request error while
// CompletedAlongside counts the requests that still succeeded on the
// same session.
type ServeBenchResult struct {
	KeyBits            int
	Rows               []ServeBenchRow
	InjectedError      string
	CompletedAlongside int
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// serveLevel runs n requests from c concurrent goroutines over one
// fresh TCP session pair and returns per-request latencies plus, when
// injectFailure is set, the error of a deliberately wrong-shaped
// request (which must not disturb the others).
func serveLevel(cfg Config, c, n int, injectFailure bool) (lats []time.Duration, elapsed time.Duration, injected error, err error) {
	netw, buildErr := serveNet()
	if buildErr != nil {
		return nil, 0, nil, buildErr
	}
	key, keyErr := sharedKey(cfg.KeyBits)
	if keyErr != nil {
		return nil, 0, nil, keyErr
	}

	serverEdge, addr, listenErr := stream.ListenEdge("127.0.0.1:0")
	if listenErr != nil {
		return nil, 0, nil, listenErr
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- protocol.ServeSessionConfig(ctx, serverEdge, serverEdge, netw, protocol.SessionConfig{
			Factor:     serveFactor,
			MaxWorkers: 2,
			Window:     c,
		})
	}()
	clientEdge, dialErr := stream.DialEdge(addr)
	if dialErr != nil {
		return nil, 0, nil, dialErr
	}
	client, clientErr := protocol.NewClientOpts(ctx, clientEdge, clientEdge, netw, key, serveFactor,
		protocol.ClientOptions{Workers: 1, Window: c})
	if clientErr != nil {
		return nil, 0, nil, clientErr
	}

	r := mathrand.New(mathrand.NewSource(23))
	inputs := make([]*tensor.Dense, n)
	for i := range inputs {
		x := tensor.Zeros(4)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()
		}
		inputs[i] = x
	}
	badSlot := -1
	if injectFailure {
		// Wrong input size: the server rejects this request's first
		// round; the session and the other in-flight requests continue.
		badSlot = n / 2
		inputs[badSlot] = tensor.Zeros(9)
	}

	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		jobs = make(chan int)
		errs = make([]error, n)
	)
	begin := time.Now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				start := time.Now()
				_, ierr := client.Infer(ctx, inputs[i])
				lat := time.Since(start)
				mu.Lock()
				errs[i] = ierr
				if ierr == nil {
					lats = append(lats, lat)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range inputs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	elapsed = time.Since(begin)

	if cerr := client.Close(); cerr != nil {
		return nil, 0, nil, cerr
	}
	if serr := <-serveErr; serr != nil {
		return nil, 0, nil, fmt.Errorf("server session: %w", serr)
	}
	for i, e := range errs {
		if i == badSlot {
			injected = e
			continue
		}
		if e != nil {
			return nil, 0, nil, fmt.Errorf("request %d failed: %w", i, e)
		}
	}
	if injectFailure && injected == nil {
		return nil, 0, nil, fmt.Errorf("injected malformed request was not rejected")
	}
	return lats, elapsed, injected, nil
}

// ServeBench measures sustained throughput of the multiplexed serving
// runtime: one TCP session per concurrency level, c client goroutines
// interleaving their round frames over it, with request/second and
// latency percentiles per level. The highest level also demonstrates
// per-request error isolation by injecting one malformed request.
func ServeBench(cfg Config) (*ServeBenchResult, error) {
	cfg = cfg.withDefaults()
	protocol.RegisterServiceWire()
	levels := []int{1, 2, 4, 8}
	if cfg.Quick {
		levels = []int{1, 2, 4}
	}
	res := &ServeBenchResult{KeyBits: cfg.KeyBits}
	for li, c := range levels {
		n := cfg.Requests
		if n < 4*c {
			n = 4 * c
		}
		inject := li == len(levels)-1
		lats, elapsed, injected, err := serveLevel(cfg, c, n, inject)
		if err != nil {
			return nil, fmt.Errorf("experiments: serve bench c=%d: %w", c, err)
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res.Rows = append(res.Rows, ServeBenchRow{
			Concurrency: c,
			Requests:    n,
			Elapsed:     elapsed,
			Throughput:  float64(len(lats)) / elapsed.Seconds(),
			P50:         percentile(lats, 0.50),
			P95:         percentile(lats, 0.95),
			P99:         percentile(lats, 0.99),
		})
		if inject {
			res.InjectedError = injected.Error()
			res.CompletedAlongside = len(lats)
		}
	}
	return res, nil
}

// Render formats the throughput sweep.
func (r *ServeBenchResult) Render() string {
	header := []string{"concurrency", "requests", "elapsed", "req/s", "p50", "p95", "p99"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprint(row.Concurrency), fmt.Sprint(row.Requests),
			row.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", row.Throughput),
			fmtDur(row.P50), fmtDur(row.P95), fmtDur(row.P99),
		})
	}
	return fmt.Sprintf(
		"Serving runtime: sustained throughput over one multiplexed session (%d-bit key)\n%s"+
			"error isolation at c=%d: 1 injected malformed request rejected (%q), %d others completed\n",
		r.KeyBits, renderTable(header, rows),
		r.Rows[len(r.Rows)-1].Concurrency, r.InjectedError, r.CompletedAlongside)
}
