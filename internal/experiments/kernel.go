package experiments

import (
	"crypto/rand"
	"fmt"
	mrand "math/rand"
	"strings"
	"time"

	"ppstream/internal/paillier"
)

// KernelRow is one key-size point of the linear-kernel benchmark: average
// per-layer latency of the two-phase kernel (shared inverses + interleaved
// multi-exponentiation, blinded outputs) against the pre-kernel row-by-row
// reference, over a fully-connected layer with ~60% negative weights.
type KernelRow struct {
	KeyBits int
	Kernel  time.Duration
	Ref     time.Duration
}

// Speedup is the reference-to-kernel latency ratio.
func (r KernelRow) Speedup() float64 {
	if r.Kernel <= 0 {
		return 0
	}
	return float64(r.Ref) / float64(r.Kernel)
}

// KernelResult holds the benchmark's series.
type KernelResult struct {
	Rows, Cols int
	Reps       int
	Series     []KernelRow
}

// Kernel benchmarks the homomorphic linear kernel against the scalar
// reference for each key size: a 32×128 layer with 16–17-bit weight
// magnitudes, ~60% of them negative — the post-scaling regime where the
// reference pays one ModInverse per negative weight per row. Both paths
// are checked to decrypt identically before timing.
func Kernel(keyBits []int, reps int) (*KernelResult, error) {
	if len(keyBits) == 0 {
		keyBits = []int{256, 512, 1024}
	}
	if reps <= 0 {
		reps = 3
	}
	const rows, cols = 32, 128
	res := &KernelResult{Rows: rows, Cols: cols, Reps: reps}
	rng := mrand.New(mrand.NewSource(99))
	w := make([][]int64, rows)
	for o := range w {
		w[o] = make([]int64, cols)
		for i := range w[o] {
			mag := rng.Int63n(1<<17-1<<16) + 1<<16
			if rng.Intn(10) < 6 {
				mag = -mag
			}
			w[o][i] = mag
		}
	}
	bias := make([]int64, rows)
	for o := range bias {
		bias[o] = rng.Int63n(1 << 20)
	}
	for _, bits := range keyBits {
		key, err := paillier.GenerateKey(rand.Reader, bits)
		if err != nil {
			return nil, fmt.Errorf("experiments: kernel keygen %d: %w", bits, err)
		}
		xs := make([]*paillier.Ciphertext, cols)
		for i := range xs {
			xs[i], err = key.PublicKey.EncryptInt64(rand.Reader, rng.Int63n(2000)-1000)
			if err != nil {
				return nil, err
			}
		}
		// Correctness gate before timing.
		got, err := paillier.MatVecScaled(&key.PublicKey, w, bias, xs, 1)
		if err != nil {
			return nil, err
		}
		want, err := paillier.MatVecScaledRef(&key.PublicKey, w, bias, xs, 1)
		if err != nil {
			return nil, err
		}
		for o := range got {
			g, err := key.Decrypt(got[o])
			if err != nil {
				return nil, err
			}
			wv, err := key.Decrypt(want[o])
			if err != nil {
				return nil, err
			}
			if g.Cmp(wv) != 0 {
				return nil, fmt.Errorf("experiments: kernel differential failure at %d bits row %d", bits, o)
			}
		}
		row := KernelRow{KeyBits: bits}
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			if _, err := paillier.MatVecScaled(&key.PublicKey, w, bias, xs, 1); err != nil {
				return nil, err
			}
			row.Kernel += time.Since(start)
			start = time.Now()
			if _, err := paillier.MatVecScaledRef(&key.PublicKey, w, bias, xs, 1); err != nil {
				return nil, err
			}
			row.Ref += time.Since(start)
		}
		row.Kernel /= time.Duration(reps)
		row.Ref /= time.Duration(reps)
		res.Series = append(res.Series, row)
	}
	return res, nil
}

// Render formats the benchmark as a table.
func (r *KernelResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Linear kernel: %dx%d FC layer, ~60%% negative 16-17 bit weights, avg of %d reps\n", r.Rows, r.Cols, r.Reps)
	fmt.Fprintf(&b, "%-8s  %12s  %12s  %8s\n", "keybits", "kernel", "reference", "speedup")
	for _, row := range r.Series {
		fmt.Fprintf(&b, "%-8d  %12s  %12s  %7.2fx\n",
			row.KeyBits, row.Kernel.Round(time.Microsecond), row.Ref.Round(time.Microsecond), row.Speedup())
	}
	return b.String()
}
