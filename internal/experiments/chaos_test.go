package experiments

import "testing"

// TestChaosSmoke runs the fault-injection harness once and lets its own
// invariants gate: full request accounting, observed retries/redials, no
// goroutine leaks. Under -race this covers the whole failure layer —
// shedder, limiter, retry loop, redialer, chaos conn — concurrently.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness in -short mode")
	}
	res, err := Chaos(quickCfg())
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Render())
	}
	if res.Completed == 0 || !res.chaosAccounted() {
		t.Errorf("accounting: %+v", res)
	}
	t.Log("\n" + res.Render())
}
