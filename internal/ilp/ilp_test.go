package ilp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := (&Problem{}).Validate(); err == nil {
		t.Error("empty problem accepted")
	}
	p := &Problem{Obj: []float64{1}, Upper: []float64{1, 2}}
	if err := p.Validate(); err == nil {
		t.Error("bound-length mismatch accepted")
	}
	p2 := &Problem{Obj: []float64{1}, Cons: []Constraint{{Coeffs: []float64{1, 2}, RHS: 1}}}
	if err := p2.Validate(); err == nil {
		t.Error("oversized constraint accepted")
	}
}

// A continuous LP: min -x-y s.t. x+y ≤ 4, x ≤ 2, y ≤ 3 -> (2,2) or (1,3),
// objective -4.
func TestPureLP(t *testing.T) {
	p := &Problem{
		Obj: []float64{-1, -1},
		Cons: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 4},
		},
		Upper: []float64{2, 3},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective+4) > 1e-6 {
		t.Errorf("objective %v, want -4", sol.Objective)
	}
}

// The classic knapsack-ish IP: max 5x+4y (min -5x-4y) s.t. 6x+4y ≤ 24,
// x+2y ≤ 6, integers -> LP optimum (3, 1.5) obj -21; IP optimum x=4? no:
// 6·4=24, y=0 -> obj -20; or x=3,y=1 -> 18+4? 6·3+4=22 ≤ 24, 3+2=5 ≤ 6 ->
// obj -19. x=2,y=2: 12+8=20 ≤ 24, 2+4=6 ≤ 6 -> -18. Best integer is x=4 y=0 (-20).
func TestIntegerKnapsack(t *testing.T) {
	p := &Problem{
		Obj: []float64{-5, -4},
		Cons: []Constraint{
			{Coeffs: []float64{6, 4}, Sense: LE, RHS: 24},
			{Coeffs: []float64{1, 2}, Sense: LE, RHS: 6},
		},
		Integer: []bool{true, true},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Objective+20) > 1e-6 {
		t.Errorf("objective %v, want -20 (x=4,y=0), x=%v", sol.Objective, sol.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x+y s.t. x+y = 5, x ≤ 3 -> any split, objective 5.
	p := &Problem{
		Obj: []float64{1, 1},
		Cons: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: EQ, RHS: 5},
		},
		Upper: []float64{3, math.Inf(1)},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-6 {
		t.Errorf("status %v obj %v", sol.Status, sol.Objective)
	}
	if math.Abs(sol.X[0]+sol.X[1]-5) > 1e-6 {
		t.Errorf("equality violated: %v", sol.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// min 2x+3y s.t. x+y ≥ 4, x ≥ 0, y ≥ 0 -> x=4 y=0, obj 8.
	p := &Problem{
		Obj: []float64{2, 3},
		Cons: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 4},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-8) > 1e-6 {
		t.Errorf("status %v obj %v x %v", sol.Status, sol.Objective, sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2 simultaneously.
	p := &Problem{
		Obj: []float64{1},
		Cons: []Constraint{
			{Coeffs: []float64{1}, Sense: LE, RHS: 1},
			{Coeffs: []float64{1}, Sense: GE, RHS: 2},
		},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Errorf("status %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with no constraints.
	p := &Problem{Obj: []float64{-1}}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Errorf("status %v, want unbounded", sol.Status)
	}
}

// Binary assignment: 3 jobs to 2 machines, each job on exactly one
// machine, machine capacity 2 jobs, minimize cost.
func TestBinaryAssignment(t *testing.T) {
	// vars x[j][m] flattened: cost matrix
	cost := []float64{
		1, 9, // job0: m0 cheap
		9, 1, // job1: m1 cheap
		5, 5, // job2: either
	}
	var cons []Constraint
	// each job exactly one machine
	for j := 0; j < 3; j++ {
		c := make([]float64, 6)
		c[j*2], c[j*2+1] = 1, 1
		cons = append(cons, Constraint{Coeffs: c, Sense: EQ, RHS: 1})
	}
	// machine capacity ≤ 2
	for m := 0; m < 2; m++ {
		c := make([]float64, 6)
		for j := 0; j < 3; j++ {
			c[j*2+m] = 1
		}
		cons = append(cons, Constraint{Coeffs: c, Sense: LE, RHS: 2})
	}
	p := &Problem{
		Obj:     cost,
		Cons:    cons,
		Upper:   []float64{1, 1, 1, 1, 1, 1},
		Integer: []bool{true, true, true, true, true, true},
	}
	sol, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-7) > 1e-6 {
		t.Errorf("status %v obj %v x %v (want 1+1+5=7)", sol.Status, sol.Objective, sol.X)
	}
}

func TestNodeBudget(t *testing.T) {
	// A problem needing branching with a budget of 1 node can at best be
	// Feasible or report nothing — never claim Optimal falsely unless it
	// proved it within budget.
	p := &Problem{
		Obj: []float64{-1, -1},
		Cons: []Constraint{
			{Coeffs: []float64{2, 2}, Sense: LE, RHS: 3},
		},
		Integer: []bool{true, true},
		Upper:   []float64{10, 10},
	}
	sol, err := Solve(p, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == Optimal && sol.Nodes >= 1 && sol.X == nil {
		t.Error("claimed optimal with no solution")
	}
}

// Property: for random small bounded IPs, the BnB solution is never
// better than the LP relaxation and always satisfies all constraints.
func TestSolutionFeasibleProperty(t *testing.T) {
	f := func(seedA, seedB, seedC int8) bool {
		a, b, c := float64(seedA%5)+6, float64(seedB%5)+6, float64(seedC%4)+4
		p := &Problem{
			Obj: []float64{-1, -2},
			Cons: []Constraint{
				{Coeffs: []float64{a, 1}, Sense: LE, RHS: 3 * a},
				{Coeffs: []float64{1, b}, Sense: LE, RHS: 2 * b},
				{Coeffs: []float64{1, 1}, Sense: LE, RHS: c},
			},
			Integer: []bool{true, true},
		}
		sol, err := Solve(p, Options{})
		if err != nil || sol.Status != Optimal {
			return false
		}
		relax := solveLP(p)
		if sol.Objective < relax.obj-1e-6 {
			return false // integer solution cannot beat the relaxation
		}
		x, y := sol.X[0], sol.X[1]
		if x < -1e-9 || y < -1e-9 {
			return false
		}
		if a*x+y > 3*a+1e-6 || x+b*y > 2*b+1e-6 || x+y > c+1e-6 {
			return false
		}
		// integrality
		return math.Abs(x-math.Round(x)) < 1e-6 && math.Abs(y-math.Round(y)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
