package ilp

import (
	"math"
	"testing"
)

func threeWay(name string, paillier, ssgc, clear float64, allowed [3]bool, penalty [3]float64) BackendLayer {
	return BackendLayer{Name: name, Choices: []BackendChoice{
		{Name: "paillier-he", Cost: paillier, Penalty: penalty[0], Allowed: allowed[0]},
		{Name: "ss-gc", Cost: ssgc, Penalty: penalty[1], Allowed: allowed[1]},
		{Name: "clear", Cost: clear, Penalty: penalty[2], Allowed: allowed[2]},
	}}
}

func TestAssignBackendsPicksCheapest(t *testing.T) {
	layers := []BackendLayer{
		threeWay("l0", 1, 5, 0.1, [3]bool{true, false, false}, [3]float64{}),
		threeWay("l1", 10, 2, 0.1, [3]bool{true, true, false}, [3]float64{}),
		threeWay("l2", 10, 5, 0.1, [3]bool{true, true, true}, [3]float64{}),
	}
	a, err := AssignBackends(layers, AssignOptions{MonotoneSuffix: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2}
	for l, b := range a.Chosen {
		if b != want[l] {
			t.Fatalf("chosen = %v, want %v", a.Chosen, want)
		}
	}
	if math.Abs(a.Objective-(1+2+0.1)) > 1e-9 {
		t.Fatalf("objective = %v", a.Objective)
	}
}

func TestAssignBackendsMonotoneSuffix(t *testing.T) {
	// Clear is cheapest in the middle but disallowed from being followed
	// by a non-clear round: the suffix constraint must forbid the
	// sandwich even though it is cost-optimal.
	layers := []BackendLayer{
		threeWay("l0", 1, 9, 9, [3]bool{true, true, true}, [3]float64{}),
		threeWay("l1", 9, 9, 0.1, [3]bool{true, true, true}, [3]float64{}),
		threeWay("l2", 1, 9, 9, [3]bool{true, true, true}, [3]float64{}),
	}
	a, err := AssignBackends(layers, AssignOptions{MonotoneSuffix: 2})
	if err != nil {
		t.Fatal(err)
	}
	sawNonClear := false
	for l := len(a.Chosen) - 1; l >= 0; l-- {
		if a.Chosen[l] != 2 {
			sawNonClear = true
		} else if sawNonClear {
			t.Fatalf("clear round %d precedes a non-clear round: %v", l, a.Chosen)
		}
	}
}

func TestAssignBackendsPenaltyWeight(t *testing.T) {
	// ss-gc is cheaper but penalized; at λ=0 it wins, at high λ paillier
	// takes over.
	layers := []BackendLayer{
		threeWay("l0", 5, 2, 99, [3]bool{true, true, false}, [3]float64{0, 10, 0}),
	}
	a, err := AssignBackends(layers, AssignOptions{PenaltyWeight: 0, MonotoneSuffix: -1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Chosen[0] != 1 {
		t.Fatalf("λ=0 chose %d, want ss-gc", a.Chosen[0])
	}
	a, err = AssignBackends(layers, AssignOptions{PenaltyWeight: 1, MonotoneSuffix: -1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Chosen[0] != 0 {
		t.Fatalf("λ=1 chose %d, want paillier", a.Chosen[0])
	}
}

func TestAssignBackendsDisallowedPinned(t *testing.T) {
	layers := []BackendLayer{
		threeWay("l0", 100, 0.001, 0.0001, [3]bool{true, false, false}, [3]float64{}),
	}
	a, err := AssignBackends(layers, AssignOptions{MonotoneSuffix: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Chosen[0] != 0 {
		t.Fatalf("disallowed backend chosen: %v", a.Chosen)
	}
}

func TestAssignBackendsErrors(t *testing.T) {
	if _, err := AssignBackends(nil, AssignOptions{}); err == nil {
		t.Error("empty layers accepted")
	}
	bad := []BackendLayer{threeWay("l0", 1, 1, 1, [3]bool{false, false, false}, [3]float64{})}
	if _, err := AssignBackends(bad, AssignOptions{}); err == nil {
		t.Error("all-disallowed layer accepted")
	}
	ragged := []BackendLayer{
		threeWay("l0", 1, 1, 1, [3]bool{true, true, true}, [3]float64{}),
		{Name: "l1", Choices: []BackendChoice{{Name: "x", Allowed: true}}},
	}
	if _, err := AssignBackends(ragged, AssignOptions{}); err == nil {
		t.Error("ragged choice lists accepted")
	}
	nan := []BackendLayer{threeWay("l0", math.NaN(), 1, 1, [3]bool{true, true, true}, [3]float64{})}
	if _, err := AssignBackends(nan, AssignOptions{}); err == nil {
		t.Error("NaN cost accepted")
	}
	oob := []BackendLayer{threeWay("l0", 1, 1, 1, [3]bool{true, true, true}, [3]float64{})}
	if _, err := AssignBackends(oob, AssignOptions{MonotoneSuffix: 3}); err == nil {
		t.Error("out-of-range suffix index accepted")
	}
}
