// Package ilp is a from-scratch integer linear programming solver: a
// dense two-phase primal simplex for the LP relaxation and depth-first
// branch-and-bound for integrality. It replaces the Gurobi dependency the
// paper uses for load-balanced resource allocation (Section IV-C); the
// allocation instances are small, so a dense exact solver is adequate.
package ilp

import (
	"errors"
	"fmt"
	"math"
)

// Sense describes a constraint's relation.
type Sense int

const (
	// LE is a ≤ constraint.
	LE Sense = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an = constraint.
	EQ
)

// Constraint is one linear row: Coeffs·x (Sense) RHS. Coeffs is indexed by
// variable; missing trailing entries are zero.
type Constraint struct {
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a minimization over non-negative variables with optional
// upper bounds and integrality flags.
type Problem struct {
	// Obj holds the objective coefficients (minimize Obj·x).
	Obj []float64
	// Cons are the linear constraints.
	Cons []Constraint
	// Upper holds per-variable upper bounds; math.Inf(1) (or a nil
	// slice) means unbounded above. Variables are always ≥ 0.
	Upper []float64
	// Integer marks variables that must take integer values.
	Integer []bool
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.Obj) }

// Validate checks structural consistency.
func (p *Problem) Validate() error {
	n := p.NumVars()
	if n == 0 {
		return errors.New("ilp: no variables")
	}
	if p.Upper != nil && len(p.Upper) != n {
		return fmt.Errorf("ilp: %d upper bounds for %d variables", len(p.Upper), n)
	}
	if p.Integer != nil && len(p.Integer) != n {
		return fmt.Errorf("ilp: %d integer flags for %d variables", len(p.Integer), n)
	}
	for i, c := range p.Cons {
		if len(c.Coeffs) > n {
			return fmt.Errorf("ilp: constraint %d has %d coefficients for %d variables", i, len(c.Coeffs), n)
		}
		if math.IsNaN(c.RHS) {
			return fmt.Errorf("ilp: constraint %d has NaN RHS", i)
		}
	}
	return nil
}

// lpResult is the outcome of an LP relaxation solve.
type lpResult struct {
	x          []float64
	obj        float64
	infeasible bool
	unbounded  bool
}

const simplexEps = 1e-9

// solveLP solves the LP relaxation with a dense two-phase simplex,
// folding variable upper bounds in as explicit ≤ rows.
func solveLP(p *Problem) lpResult {
	n := p.NumVars()
	// Expand rows: user constraints plus upper-bound rows.
	type row struct {
		coeffs []float64
		sense  Sense
		rhs    float64
	}
	var rows []row
	for _, c := range p.Cons {
		coeffs := make([]float64, n)
		copy(coeffs, c.Coeffs)
		rhs := c.RHS
		sense := c.Sense
		// Normalize to non-negative RHS (flip sense).
		if rhs < 0 {
			for i := range coeffs {
				coeffs[i] = -coeffs[i]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		rows = append(rows, row{coeffs, sense, rhs})
	}
	if p.Upper != nil {
		for i, ub := range p.Upper {
			if math.IsInf(ub, 1) {
				continue
			}
			coeffs := make([]float64, n)
			coeffs[i] = 1
			rows = append(rows, row{coeffs, LE, ub})
		}
	}
	m := len(rows)

	// Tableau columns: n structural + slack/surplus + artificial + RHS.
	nSlack := 0
	nArt := 0
	for _, r := range rows {
		switch r.sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	total := n + nSlack + nArt
	tab := make([][]float64, m+1)
	for i := range tab {
		tab[i] = make([]float64, total+1)
	}
	basis := make([]int, m)
	si, ai := n, n+nSlack
	artRows := map[int]bool{}
	for r, rw := range rows {
		copy(tab[r], rw.coeffs)
		tab[r][total] = rw.rhs
		switch rw.sense {
		case LE:
			tab[r][si] = 1
			basis[r] = si
			si++
		case GE:
			tab[r][si] = -1
			si++
			tab[r][ai] = 1
			basis[r] = ai
			artRows[r] = true
			ai++
		case EQ:
			tab[r][ai] = 1
			basis[r] = ai
			artRows[r] = true
			ai++
		}
	}

	pivot := func(objRow []float64) bool {
		// Returns false if unbounded. Bland's rule for anti-cycling.
		for iter := 0; iter < 20000; iter++ {
			// entering: lowest-index column with negative reduced cost
			col := -1
			for j := 0; j < total; j++ {
				if objRow[j] < -simplexEps {
					col = j
					break
				}
			}
			if col < 0 {
				return true // optimal
			}
			// leaving: min ratio, Bland tie-break on basis index
			rowIdx := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				a := tab[i][col]
				if a > simplexEps {
					ratio := tab[i][total] / a
					if ratio < best-simplexEps || (math.Abs(ratio-best) <= simplexEps && (rowIdx < 0 || basis[i] < basis[rowIdx])) {
						best = ratio
						rowIdx = i
					}
				}
			}
			if rowIdx < 0 {
				return false // unbounded
			}
			// pivot on (rowIdx, col)
			pv := tab[rowIdx][col]
			prow := tab[rowIdx]
			for j := 0; j <= total; j++ {
				prow[j] /= pv
			}
			for i := 0; i <= m; i++ {
				var target []float64
				if i == m {
					target = objRow
				} else {
					target = tab[i]
				}
				if i == rowIdx {
					continue
				}
				f := target[col]
				if f == 0 {
					continue
				}
				for j := 0; j <= total; j++ {
					target[j] -= f * prow[j]
				}
			}
			basis[rowIdx] = col
		}
		return true // iteration cap: treat current point as final
	}

	// Phase 1: minimize sum of artificials.
	if nArt > 0 {
		obj1 := make([]float64, total+1)
		for j := n + nSlack; j < total; j++ {
			obj1[j] = 1
		}
		// Make reduced costs consistent with the basis (artificials basic).
		for r := range rows {
			if artRows[r] {
				for j := 0; j <= total; j++ {
					obj1[j] -= tab[r][j]
				}
			}
		}
		if !pivot(obj1) {
			return lpResult{infeasible: true}
		}
		if -obj1[total] > 1e-6 { // phase-1 objective > 0
			return lpResult{infeasible: true}
		}
		// Drive any artificial still in the basis out (degenerate rows).
		for i := 0; i < m; i++ {
			if basis[i] >= n+nSlack {
				// find a non-artificial column to pivot in
				done := false
				for j := 0; j < n+nSlack && !done; j++ {
					if math.Abs(tab[i][j]) > simplexEps {
						pv := tab[i][j]
						for k := 0; k <= total; k++ {
							tab[i][k] /= pv
						}
						for r := 0; r < m; r++ {
							if r == i {
								continue
							}
							f := tab[r][j]
							if f == 0 {
								continue
							}
							for k := 0; k <= total; k++ {
								tab[r][k] -= f * tab[i][k]
							}
						}
						basis[i] = j
						done = true
					}
				}
				// if the row is all-zero it is redundant; leave it
			}
		}
	}

	// Phase 2: original objective, artificials pinned at zero.
	obj2 := make([]float64, total+1)
	copy(obj2, p.Obj)
	for j := n + nSlack; j < total; j++ {
		obj2[j] = 1e7 // strongly discourage re-entering artificials
	}
	// Reduce against current basis.
	for i := 0; i < m; i++ {
		f := obj2[basis[i]]
		if f == 0 {
			continue
		}
		for j := 0; j <= total; j++ {
			obj2[j] -= f * tab[i][j]
		}
	}
	if !pivot(obj2) {
		return lpResult{unbounded: true}
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = tab[i][total]
		}
	}
	var obj float64
	for j := 0; j < n; j++ {
		obj += p.Obj[j] * x[j]
	}
	return lpResult{x: x, obj: obj}
}
