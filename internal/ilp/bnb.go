package ilp

import (
	"fmt"
	"math"
)

// Status reports how a solve ended.
type Status int

const (
	// Optimal means the returned solution is provably optimal.
	Optimal Status = iota
	// Feasible means a feasible integer solution was found but the node
	// budget expired before optimality was proven.
	Feasible
	// Infeasible means no feasible solution exists.
	Infeasible
	// Unbounded means the relaxation is unbounded below.
	Unbounded
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of Solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes caps the number of explored nodes (0 = default 200000).
	MaxNodes int
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// IncumbentBound, when non-nil, seeds the search with a known
	// feasible objective value (e.g. from a heuristic): nodes whose
	// relaxation cannot beat it are pruned immediately. The solution
	// may come back empty if nothing better exists.
	IncumbentBound *float64
}

const defaultMaxNodes = 200000

// Solve minimizes the problem with branch-and-bound over its integer
// variables. Purely continuous problems reduce to a single LP solve.
func Solve(p *Problem, opts Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = defaultMaxNodes
	}
	if opts.IntTol <= 0 {
		opts.IntTol = 1e-6
	}

	sol := &Solution{Status: Infeasible, Objective: math.Inf(1)}
	if opts.IncumbentBound != nil {
		sol.Objective = *opts.IncumbentBound
	}

	// Node-local bounds applied as extra constraints.
	type node struct {
		lower map[int]float64
		upper map[int]float64
	}
	stack := []node{{lower: map[int]float64{}, upper: map[int]float64{}}}

	for len(stack) > 0 && sol.Nodes < opts.MaxNodes {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sol.Nodes++

		sub := withBounds(p, nd.lower, nd.upper)
		res := solveLP(sub)
		if res.infeasible {
			continue
		}
		if res.unbounded {
			if sol.Nodes == 1 {
				return &Solution{Status: Unbounded, Nodes: sol.Nodes}, nil
			}
			continue
		}
		if res.obj >= sol.Objective-1e-9 {
			continue // pruned by incumbent bound
		}
		// Find most fractional integer variable.
		branchVar, frac := -1, 0.0
		for j := range p.Obj {
			if p.Integer == nil || !p.Integer[j] {
				continue
			}
			f := res.x[j] - math.Floor(res.x[j])
			dist := math.Min(f, 1-f)
			if dist > opts.IntTol && dist > frac {
				frac = dist
				branchVar = j
			}
		}
		if branchVar < 0 {
			// Integer-feasible: new incumbent.
			x := make([]float64, len(res.x))
			copy(x, res.x)
			// Snap near-integers exactly.
			for j := range x {
				if p.Integer != nil && p.Integer[j] {
					x[j] = math.Round(x[j])
				}
			}
			sol.X = x
			sol.Objective = res.obj
			sol.Status = Optimal // provisional; downgraded below on budget exhaustion
			continue
		}
		v := res.x[branchVar]
		// Branch: x ≤ floor(v) and x ≥ ceil(v). DFS, exploring the
		// rounded-nearest side first (pushed last).
		down := node{lower: cloneBounds(nd.lower), upper: cloneBounds(nd.upper)}
		tightenUpper(down.upper, branchVar, math.Floor(v))
		up := node{lower: cloneBounds(nd.lower), upper: cloneBounds(nd.upper)}
		tightenLower(up.lower, branchVar, math.Ceil(v))
		if v-math.Floor(v) < 0.5 {
			stack = append(stack, up, down)
		} else {
			stack = append(stack, down, up)
		}
	}

	if sol.Status == Optimal && sol.Nodes >= opts.MaxNodes && len(stack) >= 0 {
		// Budget expired with open nodes possible: can't certify optimality.
		if sol.Nodes >= opts.MaxNodes {
			sol.Status = Feasible
		}
	}
	if sol.X == nil {
		sol.Status = Infeasible
		sol.Objective = math.NaN()
	}
	return sol, nil
}

func cloneBounds(m map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func tightenUpper(m map[int]float64, j int, v float64) {
	if cur, ok := m[j]; !ok || v < cur {
		m[j] = v
	}
}

func tightenLower(m map[int]float64, j int, v float64) {
	if cur, ok := m[j]; !ok || v > cur {
		m[j] = v
	}
}

// withBounds augments the problem with node-local variable bounds as
// constraints (upper) and ≥ rows (lower).
func withBounds(p *Problem, lower, upper map[int]float64) *Problem {
	sub := &Problem{Obj: p.Obj, Upper: p.Upper, Integer: p.Integer}
	sub.Cons = make([]Constraint, len(p.Cons), len(p.Cons)+len(lower)+len(upper))
	copy(sub.Cons, p.Cons)
	n := p.NumVars()
	for j, v := range upper {
		coeffs := make([]float64, n)
		coeffs[j] = 1
		sub.Cons = append(sub.Cons, Constraint{Coeffs: coeffs, Sense: LE, RHS: v})
	}
	for j, v := range lower {
		if v <= 0 {
			continue // x ≥ 0 already
		}
		coeffs := make([]float64, n)
		coeffs[j] = 1
		sub.Cons = append(sub.Cons, Constraint{Coeffs: coeffs, Sense: GE, RHS: v})
	}
	return sub
}
