package ilp

import (
	"fmt"
	"math"
)

// This file hosts the backend-assignment model of the serving plane:
// pick one crypto backend per linear round to minimize estimated cost
// plus a weighted privacy penalty, subject to per-round allowed sets
// and a monotone clear suffix (once a round runs in the clear, every
// later round must too — the certified boundary is a suffix property,
// so a clear round sandwiched between encrypted ones would void the
// certification's premise).

// BackendChoice is one candidate backend for one layer.
type BackendChoice struct {
	// Name identifies the backend ("paillier-he", "ss-gc", "clear").
	Name string
	// Cost is the estimated execution cost of running this layer on
	// this backend (any consistent unit; the solver only compares).
	Cost float64
	// Penalty is the privacy penalty added as PenaltyWeight·Penalty —
	// zero for rounds past the certified boundary.
	Penalty float64
	// Allowed marks whether the profile permits this backend here.
	Allowed bool
}

// BackendLayer is one linear round's candidate set. Every layer must
// list the same backends in the same order.
type BackendLayer struct {
	Name    string
	Choices []BackendChoice
}

// AssignOptions tunes AssignBackends.
type AssignOptions struct {
	// PenaltyWeight is the λ multiplying each choice's Penalty in the
	// objective (0 = pure cost).
	PenaltyWeight float64
	// MonotoneSuffix, when ≥ 0, names the backend index whose selection
	// must be suffix-closed: x[l][s] ≤ x[l+1][s] for all l. Use the
	// index of the clear backend; -1 disables the constraint.
	MonotoneSuffix int
	// MaxNodes caps the branch-and-bound search (0 = solver default).
	MaxNodes int
}

// Assignment is the solved backend plan.
type Assignment struct {
	// Chosen[l] indexes the selected choice of layer l.
	Chosen []int
	// Objective is the achieved cost + λ·penalty.
	Objective float64
	// Nodes is the branch-and-bound effort expended.
	Nodes int
}

// AssignBackends solves the per-layer backend selection as a 0/1 ILP:
// variable x_{l,b} selects backend b for layer l, Σ_b x_{l,b} = 1,
// disallowed pairs are pinned to zero, and the optional monotone-suffix
// constraint keeps the clear region a contiguous tail.
func AssignBackends(layers []BackendLayer, opts AssignOptions) (*Assignment, error) {
	L := len(layers)
	if L == 0 {
		return nil, fmt.Errorf("ilp: no layers to assign")
	}
	B := len(layers[0].Choices)
	if B == 0 {
		return nil, fmt.Errorf("ilp: layer %s has no backend choices", layers[0].Name)
	}
	for _, l := range layers {
		if len(l.Choices) != B {
			return nil, fmt.Errorf("ilp: layer %s lists %d choices, want %d", l.Name, len(l.Choices), B)
		}
		any := false
		for _, c := range l.Choices {
			if c.Allowed {
				any = true
			}
			if math.IsNaN(c.Cost) || math.IsInf(c.Cost, 0) || math.IsNaN(c.Penalty) || math.IsInf(c.Penalty, 0) {
				return nil, fmt.Errorf("ilp: layer %s backend %s has non-finite cost terms", l.Name, c.Name)
			}
		}
		if !any {
			return nil, fmt.Errorf("ilp: layer %s allows no backend", l.Name)
		}
	}
	if opts.MonotoneSuffix >= B {
		return nil, fmt.Errorf("ilp: monotone-suffix index %d out of range (%d backends)", opts.MonotoneSuffix, B)
	}

	n := L * B
	v := func(l, b int) int { return l*B + b }
	p := &Problem{
		Obj:     make([]float64, n),
		Upper:   make([]float64, n),
		Integer: make([]bool, n),
	}
	for l, layer := range layers {
		for b, c := range layer.Choices {
			j := v(l, b)
			p.Obj[j] = c.Cost + opts.PenaltyWeight*c.Penalty
			p.Integer[j] = true
			if c.Allowed {
				p.Upper[j] = 1
			} else {
				p.Upper[j] = 0
			}
		}
		// Exactly one backend per layer.
		row := make([]float64, n)
		for b := 0; b < B; b++ {
			row[v(l, b)] = 1
		}
		p.Cons = append(p.Cons, Constraint{Coeffs: row, Sense: EQ, RHS: 1})
	}
	if s := opts.MonotoneSuffix; s >= 0 {
		for l := 0; l+1 < L; l++ {
			row := make([]float64, n)
			row[v(l, s)] = 1
			row[v(l+1, s)] = -1
			p.Cons = append(p.Cons, Constraint{Coeffs: row, Sense: LE, RHS: 0})
		}
	}

	sol, err := Solve(p, Options{MaxNodes: opts.MaxNodes})
	if err != nil {
		return nil, fmt.Errorf("ilp: backend assignment: %w", err)
	}
	if sol.Status != Optimal && sol.Status != Feasible {
		return nil, fmt.Errorf("ilp: backend assignment infeasible: %v", sol.Status)
	}
	out := &Assignment{Chosen: make([]int, L), Objective: sol.Objective, Nodes: sol.Nodes}
	for l := 0; l < L; l++ {
		best, bestV := -1, 0.5
		for b := 0; b < B; b++ {
			if x := sol.X[v(l, b)]; x > bestV {
				best, bestV = b, x
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("ilp: layer %s received no backend in the solution", layers[l].Name)
		}
		out.Chosen[l] = best
	}
	return out, nil
}
