package models

import (
	"testing"

	"ppstream/internal/nn"
)

func TestRegistryCoversTableIII(t *testing.T) {
	specs := All()
	if len(specs) != 9 {
		t.Fatalf("registry has %d models, Table III lists 9", len(specs))
	}
	wantArch := map[string]string{
		"Breast": "3FC", "Heart": "3FC", "Cardio": "3FC",
		"MNIST-1": "3FC", "MNIST-2": "1Conv+2FC", "MNIST-3": "2Conv+2FC",
		"CIFAR-10-1": "VGG13", "CIFAR-10-2": "VGG16", "CIFAR-10-3": "VGG19",
	}
	for _, s := range specs {
		if wantArch[s.Name] != s.Arch {
			t.Errorf("%s arch %q, want %q", s.Name, s.Arch, wantArch[s.Name])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("MNIST-2")
	if err != nil || s.Arch != "1Conv+2FC" {
		t.Errorf("ByName(MNIST-2) = %+v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestSampleScaling(t *testing.T) {
	s := Spec{PaperTrain: 60000, PaperTest: 10000, SampleScale: 0.01}
	if s.TrainCount() != 600 || s.TestCount() != 100 {
		t.Errorf("scaled counts %d/%d", s.TrainCount(), s.TestCount())
	}
	full := Spec{PaperTrain: 456, PaperTest: 113, SampleScale: 1}
	if full.TrainCount() != 456 || full.TestCount() != 113 {
		t.Errorf("full-scale counts %d/%d", full.TrainCount(), full.TestCount())
	}
	tiny := Spec{PaperTrain: 100, PaperTest: 100, SampleScale: 0.0001}
	if tiny.TrainCount() < 8 {
		t.Error("scaled counts should be floored at 8")
	}
}

func TestBuildAllArchitectures(t *testing.T) {
	for _, s := range All() {
		net, err := s.Build()
		if err != nil {
			t.Errorf("%s build: %v", s.Name, err)
			continue
		}
		if err := net.Validate(); err != nil {
			t.Errorf("%s validate: %v", s.Name, err)
		}
		// each model must merge into an alternating protocol-shaped chain
		merged, err := nn.Merge(net)
		if err != nil {
			t.Errorf("%s merge: %v", s.Name, err)
			continue
		}
		if err := nn.CheckAlternating(merged); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
		if err := nn.ProtocolShape(merged); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestVGGDepths(t *testing.T) {
	counts := map[string]int{"CIFAR-10-1": 10, "CIFAR-10-2": 13, "CIFAR-10-3": 16}
	for name, wantConvs := range counts {
		s, _ := ByName(name)
		net, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		convs := 0
		for _, l := range net.Layers {
			if c, ok := l.(*nn.Conv); ok && c.P.Stride == 1 {
				convs++
			}
		}
		if convs != wantConvs {
			t.Errorf("%s has %d 3x3 convs, want %d", name, convs, wantConvs)
		}
	}
}

func TestHealthcarePredicate(t *testing.T) {
	for _, s := range All() {
		want := s.Name == "Breast" || s.Name == "Heart" || s.Name == "Cardio"
		if s.Healthcare() != want {
			t.Errorf("%s Healthcare() = %v", s.Name, s.Healthcare())
		}
	}
}

// TestPrepareSmallModel trains the smallest model end-to-end and checks
// it learns above chance.
func TestPrepareSmallModel(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	s, _ := ByName("Heart")
	net, ds, err := Prepare(s)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := net.Accuracy(ds.TestX, ds.TestY)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.8 {
		t.Errorf("Heart test accuracy %.3f < 0.8", acc)
	}
}
