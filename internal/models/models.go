// Package models is the registry of the nine dataset/model pairs the
// paper evaluates (Table III): Breast/Heart/Cardio (3FC), MNIST-1 (3FC),
// MNIST-2 (1Conv+2FC), MNIST-3 (2Conv+2FC), and CIFAR-10-1/2/3
// (VGG-13/16/19 pattern).
//
// Substitutions (documented in DESIGN.md): datasets are synthetic
// generators with the paper's feature dimensions and class counts; VGG
// channel widths are reduced so pure-Go training and homomorphic
// inference complete in reasonable time while preserving depth and layer
// structure. Sample counts default to a scaled-down fraction of Table III
// and can be raised via Spec.SampleScale.
package models

import (
	"fmt"
	"math/rand"

	"ppstream/internal/dataset"
	"ppstream/internal/nn"
	"ppstream/internal/tensor"
)

// Spec identifies one Table III row plus generation knobs.
type Spec struct {
	Name string
	// Arch is the architecture label from Table III (3FC, 1Conv+2FC, …).
	Arch string
	// PaperTrain and PaperTest are the Table III sample counts.
	PaperTrain, PaperTest int
	// ModelServers and DataServers are the Table III server allocation.
	ModelServers, DataServers int
	// SampleScale scales sample counts relative to Table III
	// (1.0 = paper-sized). The default registry uses small scales so
	// the full experiment suite runs in minutes.
	SampleScale float64
	Seed        int64
}

// TrainCount returns the number of training samples to generate.
func (s Spec) TrainCount() int { return scaled(s.PaperTrain, s.SampleScale) }

// TestCount returns the number of testing samples to generate.
func (s Spec) TestCount() int { return scaled(s.PaperTest, s.SampleScale) }

func scaled(n int, f float64) int {
	v := int(float64(n) * f)
	if v < 8 {
		v = 8
	}
	if v > n {
		v = n
	}
	return v
}

// All returns the nine Table III specs with CI-friendly sample scales.
func All() []Spec {
	return []Spec{
		{Name: "Breast", Arch: "3FC", PaperTrain: 456, PaperTest: 113, ModelServers: 2, DataServers: 1, SampleScale: 1, Seed: 11},
		{Name: "Heart", Arch: "3FC", PaperTrain: 820, PaperTest: 205, ModelServers: 2, DataServers: 1, SampleScale: 1, Seed: 12},
		{Name: "Cardio", Arch: "3FC", PaperTrain: 60000, PaperTest: 10000, ModelServers: 2, DataServers: 1, SampleScale: 0.02, Seed: 13},
		{Name: "MNIST-1", Arch: "3FC", PaperTrain: 60000, PaperTest: 10000, ModelServers: 2, DataServers: 1, SampleScale: 0.03, Seed: 14},
		{Name: "MNIST-2", Arch: "1Conv+2FC", PaperTrain: 60000, PaperTest: 10000, ModelServers: 2, DataServers: 1, SampleScale: 0.02, Seed: 15},
		{Name: "MNIST-3", Arch: "2Conv+2FC", PaperTrain: 60000, PaperTest: 10000, ModelServers: 2, DataServers: 2, SampleScale: 0.02, Seed: 16},
		{Name: "CIFAR-10-1", Arch: "VGG13", PaperTrain: 50000, PaperTest: 10000, ModelServers: 6, DataServers: 3, SampleScale: 0.012, Seed: 17},
		{Name: "CIFAR-10-2", Arch: "VGG16", PaperTrain: 50000, PaperTest: 10000, ModelServers: 6, DataServers: 3, SampleScale: 0.012, Seed: 18},
		{Name: "CIFAR-10-3", Arch: "VGG19", PaperTrain: 50000, PaperTest: 10000, ModelServers: 6, DataServers: 3, SampleScale: 0.012, Seed: 19},
	}
}

// ByName returns the spec with the given Table III name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("models: unknown model %q", name)
}

// Healthcare reports whether the spec is one of the three small tabular
// healthcare models.
func (s Spec) Healthcare() bool {
	return s.Name == "Breast" || s.Name == "Heart" || s.Name == "Cardio"
}

// Dataset generates the spec's synthetic dataset.
func (s Spec) Dataset() (*dataset.Dataset, error) {
	switch s.Name {
	case "Breast":
		return dataset.Tabular(dataset.TabularConfig{Name: s.Name, Features: 30, Classes: 2,
			Train: s.TrainCount(), Test: s.TestCount(), Seed: s.Seed, Separation: 0.75, Noise: 1})
	case "Heart":
		return dataset.Tabular(dataset.TabularConfig{Name: s.Name, Features: 13, Classes: 2,
			Train: s.TrainCount(), Test: s.TestCount(), Seed: s.Seed, Separation: 0.9, Noise: 1})
	case "Cardio":
		// Cardio tops out near 71% in the paper: heavily overlapping classes.
		return dataset.Tabular(dataset.TabularConfig{Name: s.Name, Features: 11, Classes: 2,
			Train: s.TrainCount(), Test: s.TestCount(), Seed: s.Seed, Separation: 0.28, Noise: 1})
	case "MNIST-1", "MNIST-2", "MNIST-3":
		return dataset.Digits(dataset.ImageConfig{Name: s.Name, Side: 28, Channels: 1, Classes: 10,
			Train: s.TrainCount(), Test: s.TestCount(), Seed: s.Seed, Noise: 0.35})
	case "CIFAR-10-1", "CIFAR-10-2", "CIFAR-10-3":
		return dataset.Textures(dataset.ImageConfig{Name: s.Name, Side: 32, Channels: 3, Classes: 10,
			Train: s.TrainCount(), Test: s.TestCount(), Seed: s.Seed, Noise: 0.3})
	default:
		return nil, fmt.Errorf("models: no dataset for %q", s.Name)
	}
}

// Build constructs the untrained network for the spec.
func (s Spec) Build() (*nn.Network, error) {
	rng := rand.New(rand.NewSource(s.Seed + 1000))
	switch s.Arch {
	case "3FC":
		in, hidden := tabularDims(s.Name)
		if s.Name == "MNIST-1" {
			// MNIST-1 consumes 28×28 images: flatten, then the 3FC stack.
			return threeFCImage(s.Name, tensor.Shape{1, 28, 28}, hidden, 10, rng)
		}
		return threeFC(s.Name, in, hidden, classesOf(s.Name), rng)
	case "1Conv+2FC":
		return convNet(s.Name, 1, rng)
	case "2Conv+2FC":
		return convNet(s.Name, 2, rng)
	case "VGG13":
		return vgg(s.Name, 13, rng)
	case "VGG16":
		return vgg(s.Name, 16, rng)
	case "VGG19":
		return vgg(s.Name, 19, rng)
	default:
		return nil, fmt.Errorf("models: unknown architecture %q", s.Arch)
	}
}

func classesOf(name string) int {
	switch name {
	case "Breast", "Heart", "Cardio":
		return 2
	default:
		return 10
	}
}

func tabularDims(name string) (in, hidden int) {
	switch name {
	case "Breast":
		return 30, 16
	case "Heart":
		return 13, 16
	case "Cardio":
		return 11, 16
	case "MNIST-1":
		return 28 * 28, 64
	default:
		return 16, 16
	}
}

// threeFC builds the 3FC architecture: FC → ReLU → FC → ReLU → FC →
// SoftMax (three fully-connected layers, the paper's smallest models).
func threeFC(name string, in, hidden, classes int, rng *rand.Rand) (*nn.Network, error) {
	inputShape := tensor.Shape{in}
	layers := []nn.Layer{
		nn.NewFC("fc1", in, hidden, rng),
		nn.NewReLU("relu1"),
		nn.NewFC("fc2", hidden, hidden/2, rng),
		nn.NewReLU("relu2"),
		nn.NewFC("fc3", hidden/2, classes, rng),
		nn.NewSoftMax("softmax"),
	}
	return nn.NewNetwork(name, inputShape, layers...)
}

// threeFCImage is threeFC over an image input with a leading Flatten
// (which is linear and merges into the first stage).
func threeFCImage(name string, input tensor.Shape, hidden, classes int, rng *rand.Rand) (*nn.Network, error) {
	in := input.Size()
	layers := []nn.Layer{
		nn.NewFlatten("flatten"),
		nn.NewFC("fc1", in, hidden, rng),
		nn.NewReLU("relu1"),
		nn.NewFC("fc2", hidden, hidden/2, rng),
		nn.NewReLU("relu2"),
		nn.NewFC("fc3", hidden/2, classes, rng),
		nn.NewSoftMax("softmax"),
	}
	return nn.NewNetwork(name, input, layers...)
}

// convNet builds the MNIST conv architectures: nConv×(Conv+ReLU) with
// stride-2 convolutions for down-sampling, then Flatten + 2FC + SoftMax.
func convNet(name string, nConv int, rng *rand.Rand) (*nn.Network, error) {
	const side = 28
	shape := tensor.Shape{1, side, side}
	var layers []nn.Layer
	inC, h, w := 1, side, side
	channels := []int{6, 12}
	for i := 0; i < nConv; i++ {
		outC := channels[i]
		p := tensor.ConvParams{InC: inC, InH: h, InW: w, OutC: outC, KH: 3, KW: 3, Stride: 2, Pad: 1}
		conv, err := nn.NewConv(fmt.Sprintf("conv%d", i+1), p, rng)
		if err != nil {
			return nil, err
		}
		layers = append(layers, conv, nn.NewReLU(fmt.Sprintf("relu%d", i+1)))
		inC, h, w = outC, p.OutH(), p.OutW()
	}
	flatSize := inC * h * w
	layers = append(layers,
		nn.NewFlatten("flatten"),
		nn.NewFC("fc1", flatSize, 32, rng),
		nn.NewReLU("reluFC"),
		nn.NewFC("fc2", 32, 10, rng),
		nn.NewSoftMax("softmax"),
	)
	return nn.NewNetwork(name, shape, layers...)
}

// vgg builds a reduced-width VGG-style network preserving the VGG-13/16/19
// conv-layer counts and block structure (conv blocks separated by
// down-sampling) but with small channel widths so pure-Go experiments
// remain tractable. Down-sampling uses stride-2 convolutions, matching
// the paper's MaxPool replacement (Section III-C).
func vgg(name string, depth int, rng *rand.Rand) (*nn.Network, error) {
	// Conv layers per block for VGG-13/16/19 (conv counts 10/13/16).
	var blocks []int
	switch depth {
	case 13:
		blocks = []int{2, 2, 2, 2, 2}
	case 16:
		blocks = []int{2, 2, 3, 3, 3}
	case 19:
		blocks = []int{2, 2, 4, 4, 4}
	default:
		return nil, fmt.Errorf("models: unsupported VGG depth %d", depth)
	}
	widths := []int{4, 8, 8, 16, 16} // reduced from 64..512
	const side = 32
	shape := tensor.Shape{3, side, side}
	var layers []nn.Layer
	inC, h, w := 3, side, side
	li := 0
	for bi, reps := range blocks {
		outC := widths[bi]
		for r := 0; r < reps; r++ {
			li++
			p := tensor.ConvParams{InC: inC, InH: h, InW: w, OutC: outC, KH: 3, KW: 3, Stride: 1, Pad: 1}
			conv, err := nn.NewConv(fmt.Sprintf("conv%d", li), p, rng)
			if err != nil {
				return nil, err
			}
			// The original VGG [61] has no batch normalization; plain
			// conv+ReLU also trains stably with SGD at these widths.
			// (BatchNorm support is exercised elsewhere: the protocol
			// and baselines handle it as a linear affine stage.)
			layers = append(layers,
				conv,
				nn.NewReLU(fmt.Sprintf("relu%d", li)),
			)
			inC = outC
		}
		// Down-sample between blocks with a stride-2 conv (MaxPool
		// replacement) while the spatial size allows it.
		if h > 2 {
			li++
			p := tensor.ConvParams{InC: inC, InH: h, InW: w, OutC: inC, KH: 2, KW: 2, Stride: 2}
			down, err := nn.NewConv(fmt.Sprintf("down%d", bi+1), p, rng)
			if err != nil {
				return nil, err
			}
			layers = append(layers, down, nn.NewReLU(fmt.Sprintf("downrelu%d", bi+1)))
			h, w = p.OutH(), p.OutW()
		}
	}
	flatSize := inC * h * w
	layers = append(layers,
		nn.NewFlatten("flatten"),
		nn.NewFC("fc1", flatSize, 32, rng),
		nn.NewReLU("reluFC"),
		nn.NewFC("fc2", 32, 10, rng),
		nn.NewSoftMax("softmax"),
	)
	return nn.NewNetwork(name, shape, layers...)
}

// TrainConfigFor returns a training configuration tuned per architecture.
func TrainConfigFor(s Spec) nn.TrainConfig {
	cfg := nn.DefaultTrainConfig()
	cfg.Seed = s.Seed + 2000
	switch s.Arch {
	case "3FC":
		cfg.Epochs = 30
		cfg.LearningRate = 0.05
		cfg.WeightDecay = 0.02
	case "1Conv+2FC", "2Conv+2FC":
		cfg.Epochs = 20
		cfg.LearningRate = 0.02
		cfg.WeightDecay = 0.02
	default: // VGG
		// Deep narrow nets collapse at higher rates (dead ReLUs); a
		// gentle rate with momentum trains stably.
		cfg.Epochs = 30
		cfg.LearningRate = 0.005
		cfg.WeightDecay = 0.0005
	}
	return cfg
}

// Prepare builds, trains, and calibrates the spec's model on its
// generated dataset, returning the trained network and the dataset.
func Prepare(s Spec) (*nn.Network, *dataset.Dataset, error) {
	ds, err := s.Dataset()
	if err != nil {
		return nil, nil, err
	}
	net, err := s.Build()
	if err != nil {
		return nil, nil, err
	}
	// Calibrate any batch-norm layers on a sample of training data first:
	// statistics stay frozen through training (γ/β still learn), so the
	// trained network and the deployed network are identical.
	calib := ds.TrainX
	if len(calib) > 32 {
		calib = calib[:32]
	}
	if err := nn.CalibrateBatchNorm(net, calib); err != nil {
		return nil, nil, err
	}
	cfg := TrainConfigFor(s)
	if err := nn.Train(net, ds.TrainX, ds.TrainY, cfg); err != nil {
		return nil, nil, err
	}
	return net, ds, nil
}
