package secshare

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1, -1, 3.14159, -123.456, 0.0001} {
		got := Decode(Encode(v))
		if math.Abs(got-v) > 1.0/float64(uint64(1)<<FracBits)+1e-12 {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestSplitReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		v := rng.Uint64()
		s := Split(rng, v)
		if s.Reconstruct() != v {
			t.Fatalf("reconstruct %d != %d", s.Reconstruct(), v)
		}
		if s.S[0] == v {
			// possible but astronomically unlikely repeatedly; single
			// occurrence fine, so only check shares are not trivially the value
			continue
		}
	}
}

// Property: sharing hides nothing structurally — reconstruct inverts
// split for random values and seeds.
func TestSplitReconstructProperty(t *testing.T) {
	f := func(seed int64, v uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		return Split(rng, v).Reconstruct() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddVecAndConst(t *testing.T) {
	e := NewEngine(2)
	a := e.ShareVec([]float64{1.5, -2})
	b := e.ShareVec([]float64{0.25, 4})
	sum, err := e.AddVec(a, b)
	if err != nil {
		t.Fatal(err)
	}
	got := e.OpenVec(sum)
	if math.Abs(got[0]-1.75) > 1e-3 || math.Abs(got[1]-2) > 1e-3 {
		t.Errorf("AddVec = %v", got)
	}
	if _, err := e.AddVec(a, a[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
	c := e.AddConst(a[0], Encode(10))
	if math.Abs(Decode(c.Reconstruct())-11.5) > 1e-3 {
		t.Errorf("AddConst = %v", Decode(c.Reconstruct()))
	}
}

func TestMulVecBeaver(t *testing.T) {
	e := NewEngine(3)
	x := e.ShareVec([]float64{1.5, -2.25, 0, 7})
	y := e.ShareVec([]float64{2, 3, 5, -0.5})
	prod, err := e.MulVec(x, y)
	if err != nil {
		t.Fatal(err)
	}
	got := e.OpenVec(prod)
	want := []float64{3, -6.75, 0, -3.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-3 {
			t.Errorf("MulVec[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if e.Stats.TriplesUsed != 4 {
		t.Errorf("triples used %d, want 4", e.Stats.TriplesUsed)
	}
	if e.Stats.Rounds == 0 || e.Stats.OpenedWords == 0 {
		t.Error("communication not accounted")
	}
	if _, err := e.MulVec(x, y[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDotAndMatVec(t *testing.T) {
	e := NewEngine(4)
	x := e.ShareVec([]float64{1, -2, 3})
	dot, err := e.DotShared(x, []float64{0.5, 0.25, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := Decode(dot.Reconstruct())
	want := 0.5 - 0.5 + 6 + 1
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("Dot = %v, want %v", got, want)
	}
	w := [][]float64{{1, 0, 0}, {0, 1, 0}, {1, 1, 1}}
	bias := []float64{0, 10, -1}
	out, err := e.MatVec(w, bias, x)
	if err != nil {
		t.Fatal(err)
	}
	opened := e.OpenVec(out)
	wantVec := []float64{1, 8, 1}
	for i := range wantVec {
		if math.Abs(opened[i]-wantVec[i]) > 1e-3 {
			t.Errorf("MatVec[%d] = %v, want %v", i, opened[i], wantVec[i])
		}
	}
	if _, err := e.DotShared(x, []float64{1}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := e.MatVec(w, []float64{1}, x); err == nil {
		t.Error("bias mismatch accepted")
	}
}

func TestSquareVec(t *testing.T) {
	e := NewEngine(5)
	x := e.ShareVec([]float64{3, -4, 0.5})
	sq, err := e.SquareVec(x)
	if err != nil {
		t.Fatal(err)
	}
	got := e.OpenVec(sq)
	want := []float64{9, 16, 0.25}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-2 {
			t.Errorf("Square[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Property: Beaver multiplication matches plain multiplication for
// moderate fixed-point values.
func TestBeaverProperty(t *testing.T) {
	f := func(seed int64, aRaw, bRaw int16) bool {
		e := NewEngine(seed)
		a := float64(aRaw) / 64
		b := float64(bRaw) / 64
		x := e.ShareVec([]float64{a})
		y := e.ShareVec([]float64{b})
		prod, err := e.MulVec(x, y)
		if err != nil {
			return false
		}
		got := e.OpenVec(prod)[0]
		return math.Abs(got-a*b) < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMulPublic(t *testing.T) {
	e := NewEngine(6)
	x := e.ShareVec([]float64{4})
	y := e.MulPublic(x[0], -2.5)
	got := Decode(y.Reconstruct())
	if math.Abs(got-(-10)) > 1e-2 {
		t.Errorf("MulPublic = %v, want -10", got)
	}
}
