package secshare

import (
	"math"
	"testing"
	"testing/quick"
)

// TestMatVecPrivateMatchesPublic: with the same weights, the
// private-weight path (Beaver triples) and the public-weight path agree.
func TestMatVecPrivateMatchesPublic(t *testing.T) {
	w := [][]float64{{0.5, -1, 2}, {1, 1, 1}}
	bias := []float64{0.25, -0.5}
	vals := []float64{1.5, -2, 0.75}

	ePub := NewEngine(21)
	xPub := ePub.ShareVec(vals)
	pub, err := ePub.MatVec(w, bias, xPub)
	if err != nil {
		t.Fatal(err)
	}
	pubOut := ePub.OpenVec(pub)

	ePriv := NewEngine(22)
	xPriv := ePriv.ShareVec(vals)
	priv, err := ePriv.MatVecPrivate(w, bias, xPriv)
	if err != nil {
		t.Fatal(err)
	}
	privOut := ePriv.OpenVec(priv)

	for i := range pubOut {
		if math.Abs(pubOut[i]-privOut[i]) > 0.01 {
			t.Errorf("row %d: public %v vs private %v", i, pubOut[i], privOut[i])
		}
	}
	// The private path must consume triples (weights hidden); the
	// public path must not.
	if ePriv.Stats.TriplesUsed == 0 {
		t.Error("private path consumed no triples")
	}
	if ePub.Stats.TriplesUsed != 0 {
		t.Error("public path consumed triples")
	}
}

// Property: private dot products track float arithmetic for bounded
// random vectors.
func TestDotPrivateProperty(t *testing.T) {
	f := func(seed int64, wRaw, xRaw []int16) bool {
		n := len(wRaw)
		if len(xRaw) < n {
			n = len(xRaw)
		}
		if n == 0 {
			return true
		}
		if n > 32 {
			n = 32
		}
		e := NewEngine(seed)
		w := make([]float64, n)
		xs := make([]float64, n)
		var want float64
		for i := 0; i < n; i++ {
			w[i] = float64(wRaw[i]) / 1024
			xs[i] = float64(xRaw[i]) / 1024
			want += w[i] * xs[i]
		}
		shares := e.ShareVec(xs)
		dot, err := e.DotPrivate(w, shares, 0)
		if err != nil {
			return false
		}
		got := Decode(dot.Reconstruct())
		return math.Abs(got-want) < 0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDealerDeterminism(t *testing.T) {
	a := NewDealer(5)
	b := NewDealer(5)
	for i := 0; i < 10; i++ {
		ta, tb := a.Triple(), b.Triple()
		if ta.A.Reconstruct() != tb.A.Reconstruct() || ta.C.Reconstruct() != tb.C.Reconstruct() {
			t.Fatal("dealer not deterministic for equal seeds")
		}
		if ta.A.Reconstruct()*ta.B.Reconstruct() != ta.C.Reconstruct() {
			t.Fatal("triple invariant c = a·b violated")
		}
	}
}
