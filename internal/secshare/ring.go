package secshare

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
)

// This file holds the integer-exact ring arithmetic the live ss-gc
// backend runs on: values are the SAME scaled integers the quantized
// network (internal/qnn) computes over — x·F^exp with int64 weights at
// scale F — shared additively in Z_{2^64} and multiplied with Beaver
// triples WITHOUT truncation. Because ring arithmetic mod 2^64 agrees
// with integer arithmetic whenever |value| < 2^63, a layer executed here
// reconstructs bit-identically to qnn's big-integer ApplyPlain reference
// (the protocol's scale guard keeps magnitudes in range). This is what
// makes the differential backend tests exact rather than approximate —
// unlike the fixed-point FracBits ops above, which truncate after every
// multiplication as SecureML does.

// RingOfBig reduces a big integer into Z_{2^64} (two's complement for
// negatives) — how quantized biases at scale F^(exp+1) enter the ring.
func RingOfBig(v *big.Int) uint64 {
	// big.Int bitwise ops act on the infinite two's-complement form, so
	// masking to 64 bits IS reduction mod 2^64, negatives included.
	var m big.Int
	return m.And(v, ringMask).Uint64()
}

var ringMask = new(big.Int).SetUint64(^uint64(0))

// SignedOfRing interprets a reconstructed ring value as the signed
// integer it represents (exact while |value| < 2^63).
func SignedOfRing(v uint64) int64 { return int64(v) }

// SplitRandom shares a ring value with randomness drawn from r — the
// data provider's share split, which must use crypto/rand so neither
// share alone reveals anything about the value.
func SplitRandom(r io.Reader, v uint64) (Shares, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return Shares{}, fmt.Errorf("secshare: share randomness: %w", err)
	}
	s0 := binary.BigEndian.Uint64(b[:])
	return Shares{S: [2]uint64{s0, v - s0}}, nil
}

// MulPrivateInt multiplies a sharing by party 0's private int64
// multiplicand through one Beaver triple, with NO truncation: the
// product stays at the combined scale, exactly as integer arithmetic
// would produce. Openings are accounted by mulRaw.
func (e *Engine) MulPrivateInt(w int64, x Shares) Shares {
	return e.mulRaw(Shares{S: [2]uint64{uint64(w), 0}}, x)
}

// DotPrivateInt computes Σ_j w_j·x_j + bias over the ring with party
// 0's private int64 weights and big-integer bias (reduced into the
// ring), skipping zero weights exactly like the plaintext reference.
// No truncation is applied: the result is at scale F^(inExp+1) when the
// inputs are at F^inExp and the weights at F.
func (e *Engine) DotPrivateInt(w []int64, x []Shares, bias *big.Int) (Shares, error) {
	if len(w) != len(x) {
		return Shares{}, fmt.Errorf("secshare: int dot length mismatch %d vs %d", len(w), len(x))
	}
	var acc Shares
	if bias != nil {
		acc.S[0] = RingOfBig(bias)
	}
	for j, wj := range w {
		if wj == 0 {
			continue
		}
		p := e.mulRaw(Shares{S: [2]uint64{uint64(wj), 0}}, x[j])
		acc.S[0] += p.S[0]
		acc.S[1] += p.S[1]
	}
	return acc, nil
}

// ScalePrivateInt applies party 0's private per-element int64 scale and
// big-integer shift to one sharing (the quantized affine op's element
// step), untruncated.
func (e *Engine) ScalePrivateInt(scale int64, shift *big.Int, x Shares) Shares {
	out := e.mulRaw(Shares{S: [2]uint64{uint64(scale), 0}}, x)
	if shift != nil {
		out.S[0] += RingOfBig(shift)
	}
	return out
}

// OpenRing reconstructs a shared ring vector into signed integers,
// charging one batched opening round. This is the data provider's
// reconstruction step; the opened words are what actually crosses the
// wire in a two-server deployment.
func (e *Engine) OpenRing(xs []Shares) []int64 {
	e.Stats.Rounds++
	e.Stats.OpenedWords += 2 * len(xs)
	out := make([]int64, len(xs))
	for i, s := range xs {
		out[i] = SignedOfRing(s.Reconstruct())
	}
	return out
}
