// Package secshare implements two-party additive secret sharing over the
// ring Z_{2^64} with Beaver-triple multiplication — the arithmetic
// substrate of the SecureML- and EzPC-style baselines the paper compares
// against (Exp#6). Values use fixed-point encoding with local truncation
// after multiplication, as in SecureML.
//
// The engine executes the real protocol arithmetic between two party
// states and accounts every opened value, so communication volume and
// round counts are faithful; network latency is the caller's concern
// (the baselines charge per-round costs explicitly).
package secshare

import (
	"errors"
	"fmt"
	"math/rand"
)

// FracBits is the fixed-point fractional precision (SecureML uses 13;
// 16 gives headroom for deeper models).
const FracBits = 16

// Encode converts a float to ring fixed-point.
func Encode(v float64) uint64 {
	return uint64(int64(v * float64(uint64(1)<<FracBits)))
}

// Decode converts ring fixed-point back to float.
func Decode(v uint64) float64 {
	return float64(int64(v)) / float64(uint64(1)<<FracBits)
}

// Shares is a two-party additive sharing: value = S[0] + S[1] (mod 2^64).
type Shares struct {
	S [2]uint64
}

// Split shares a ring value with fresh randomness.
func Split(rng *rand.Rand, v uint64) Shares {
	r := rng.Uint64()
	return Shares{S: [2]uint64{r, v - r}}
}

// Reconstruct opens a sharing.
func (s Shares) Reconstruct() uint64 { return s.S[0] + s.S[1] }

// Triple is a Beaver multiplication triple: C = A·B, all shared.
type Triple struct {
	A, B, C Shares
}

// Dealer produces Beaver triples (the trusted-dealer / offline phase,
// standard in semi-honest 2PC evaluations).
type Dealer struct {
	rng *rand.Rand
}

// NewDealer creates a deterministic dealer for reproducible benchmarks.
func NewDealer(seed int64) *Dealer {
	return &Dealer{rng: rand.New(rand.NewSource(seed))}
}

// Triple draws one multiplication triple.
func (d *Dealer) Triple() Triple {
	a, b := d.rng.Uint64(), d.rng.Uint64()
	return Triple{
		A: Split(d.rng, a),
		B: Split(d.rng, b),
		C: Split(d.rng, a*b),
	}
}

// Stats accounts protocol cost.
type Stats struct {
	// OpenedWords counts 64-bit values exchanged during openings (each
	// opening sends one word per party).
	OpenedWords int
	// Rounds counts communication rounds (batched openings count once).
	Rounds int
	// TriplesUsed counts consumed Beaver triples.
	TriplesUsed int
}

// Engine holds both parties' shares and executes protocol steps,
// tracking costs. It models the data flow of a semi-honest two-party
// deployment inside one process.
type Engine struct {
	dealer *Dealer
	rng    *rand.Rand
	Stats  Stats
}

// NewEngine creates an engine with its own dealer.
func NewEngine(seed int64) *Engine {
	return &Engine{dealer: NewDealer(seed + 1), rng: rand.New(rand.NewSource(seed))}
}

// ShareVec secret-shares a float vector.
func (e *Engine) ShareVec(vals []float64) []Shares {
	out := make([]Shares, len(vals))
	for i, v := range vals {
		out[i] = Split(e.rng, Encode(v))
	}
	return out
}

// OpenVec reconstructs a shared vector, charging one round and the
// exchanged words.
func (e *Engine) OpenVec(xs []Shares) []float64 {
	e.Stats.Rounds++
	e.Stats.OpenedWords += 2 * len(xs)
	out := make([]float64, len(xs))
	for i, s := range xs {
		out[i] = Decode(s.Reconstruct())
	}
	return out
}

// AddVec adds two shared vectors locally (no communication).
func (e *Engine) AddVec(a, b []Shares) ([]Shares, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("secshare: add length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]Shares, len(a))
	for i := range a {
		out[i] = Shares{S: [2]uint64{a[i].S[0] + b[i].S[0], a[i].S[1] + b[i].S[1]}}
	}
	return out, nil
}

// AddConst adds a public constant (party 0 adjusts its share).
func (e *Engine) AddConst(a Shares, c uint64) Shares {
	return Shares{S: [2]uint64{a.S[0] + c, a.S[1]}}
}

// MulPublic multiplies a sharing by a public fixed-point constant and
// truncates locally.
func (e *Engine) MulPublic(a Shares, c float64) Shares {
	cc := Encode(c)
	return Shares{S: [2]uint64{
		truncate(a.S[0] * cc),
		uint64(-truncateNeg(-(a.S[1] * cc))),
	}}
}

// MulVec multiplies two shared vectors element-wise using one Beaver
// triple per element; all openings batch into a single round.
func (e *Engine) MulVec(x, y []Shares) ([]Shares, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("secshare: mul length mismatch %d vs %d", len(x), len(y))
	}
	n := len(x)
	out := make([]Shares, n)
	// One round: open d = x−a and ev = y−b for all elements.
	e.Stats.Rounds++
	e.Stats.OpenedWords += 4 * n // two openings, two words each
	for i := 0; i < n; i++ {
		t := e.dealer.Triple()
		e.Stats.TriplesUsed++
		d := (x[i].S[0] - t.A.S[0]) + (x[i].S[1] - t.A.S[1])
		ev := (y[i].S[0] - t.B.S[0]) + (y[i].S[1] - t.B.S[1])
		// z_p = c_p + d·b_p + ev·a_p (+ d·ev for party 0)
		z0 := t.C.S[0] + d*t.B.S[0] + ev*t.A.S[0] + d*ev
		z1 := t.C.S[1] + d*t.B.S[1] + ev*t.A.S[1]
		// fixed-point truncation (SecureML local truncation)
		out[i] = truncateShares(Shares{S: [2]uint64{z0, z1}})
	}
	return out, nil
}

// DotShared computes the inner product of a shared vector with a public
// float weight vector plus a public bias — the linear-layer primitive.
// Public-weight linear algebra is communication-free in additive sharing.
func (e *Engine) DotShared(x []Shares, w []float64, bias float64) (Shares, error) {
	if len(x) != len(w) {
		return Shares{}, fmt.Errorf("secshare: dot length mismatch %d vs %d", len(x), len(w))
	}
	var acc0, acc1 uint64
	for i := range x {
		cc := Encode(w[i])
		acc0 += x[i].S[0] * cc
		acc1 += x[i].S[1] * cc
	}
	out := truncateShares(Shares{S: [2]uint64{acc0, acc1}})
	return e.AddConst(out, Encode(bias)), nil
}

// MatVec applies a public weight matrix to a shared vector.
func (e *Engine) MatVec(w [][]float64, bias []float64, x []Shares) ([]Shares, error) {
	out := make([]Shares, len(w))
	for o, rowW := range w {
		var b float64
		if bias != nil {
			if len(bias) != len(w) {
				return nil, errors.New("secshare: bias length mismatch")
			}
			b = bias[o]
		}
		s, err := e.DotShared(x, rowW, b)
		if err != nil {
			return nil, err
		}
		out[o] = s
	}
	return out, nil
}

// SquareVec computes element-wise x², SecureML's polynomial-friendly
// activation, one triple per element.
func (e *Engine) SquareVec(x []Shares) ([]Shares, error) {
	return e.MulVec(x, x)
}

// mulRaw multiplies two sharings with one Beaver triple and NO
// truncation: the result is at doubled fixed-point scale. Openings are
// accounted by the caller (they batch into the layer's round).
func (e *Engine) mulRaw(x, y Shares) Shares {
	t := e.dealer.Triple()
	e.Stats.TriplesUsed++
	e.Stats.OpenedWords += 4
	d := (x.S[0] - t.A.S[0]) + (x.S[1] - t.A.S[1])
	ev := (y.S[0] - t.B.S[0]) + (y.S[1] - t.B.S[1])
	z0 := t.C.S[0] + d*t.B.S[0] + ev*t.A.S[0] + d*ev
	z1 := t.C.S[1] + d*t.B.S[1] + ev*t.A.S[1]
	return Shares{S: [2]uint64{z0, z1}}
}

// DotPrivate computes Σ_j w_j·x_j + bias where the weights and bias are
// party 0's PRIVATE inputs (the model provider's parameters in a
// two-party deployment, as in SecureML/EzPC): each weight is implicitly
// shared as (Encode(w), 0) and multiplied with a Beaver triple. One
// truncation applies after the accumulation.
func (e *Engine) DotPrivate(w []float64, x []Shares, bias float64) (Shares, error) {
	if len(w) != len(x) {
		return Shares{}, fmt.Errorf("secshare: private dot length mismatch %d vs %d", len(w), len(x))
	}
	var acc Shares
	for j := range w {
		ws := Shares{S: [2]uint64{Encode(w[j]), 0}}
		p := e.mulRaw(ws, x[j])
		acc.S[0] += p.S[0]
		acc.S[1] += p.S[1]
	}
	out := truncateShares(acc)
	return e.AddConst(out, Encode(bias)), nil
}

// MatVecPrivate applies a party-0-private weight matrix (plus optional
// private bias) to a shared vector: the linear layer of the 2PC
// baselines. All Beaver openings batch into one communication round.
func (e *Engine) MatVecPrivate(w [][]float64, bias []float64, x []Shares) ([]Shares, error) {
	if bias != nil && len(bias) != len(w) {
		return nil, errors.New("secshare: bias length mismatch")
	}
	e.Stats.Rounds++
	out := make([]Shares, len(w))
	for o, rowW := range w {
		var b float64
		if bias != nil {
			b = bias[o]
		}
		s, err := e.DotPrivate(rowW, x, b)
		if err != nil {
			return nil, err
		}
		out[o] = s
	}
	return out, nil
}

// truncateShares performs SecureML-style local truncation: each party
// shifts its share arithmetically. Correct with probability
// 1 − |x|/2^(63−2f) for fixed-point values in range.
func truncateShares(s Shares) Shares {
	return Shares{S: [2]uint64{
		truncate(s.S[0]),
		uint64(-truncateNeg(-s.S[1])),
	}}
}

func truncate(v uint64) uint64 {
	return uint64(int64(v) >> FracBits)
}

func truncateNeg(v uint64) int64 {
	return int64(v) >> FracBits
}
