package secshare

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"
)

func TestRingOfBig(t *testing.T) {
	cases := []struct {
		in   *big.Int
		want uint64
	}{
		{big.NewInt(0), 0},
		{big.NewInt(1), 1},
		{big.NewInt(-1), ^uint64(0)},
		{big.NewInt(1 << 40), 1 << 40},
		{big.NewInt(-(1 << 40)), ^uint64(1<<40) + 1},
		{new(big.Int).Lsh(big.NewInt(1), 64), 0},
		{new(big.Int).Add(new(big.Int).Lsh(big.NewInt(1), 64), big.NewInt(7)), 7},
		{new(big.Int).Neg(new(big.Int).Lsh(big.NewInt(1), 64)), 0},
	}
	for _, c := range cases {
		if got := RingOfBig(c.in); got != c.want {
			t.Errorf("RingOfBig(%s) = %d, want %d", c.in, got, c.want)
		}
	}
	// Signed round trip within int64 range.
	rng := mrand.New(mrand.NewSource(5))
	for i := 0; i < 200; i++ {
		v := rng.Int63n(1<<62) - 1<<61
		if got := SignedOfRing(RingOfBig(big.NewInt(v))); got != v {
			t.Fatalf("round trip %d -> %d", v, got)
		}
	}
}

func TestSplitRandomReconstructs(t *testing.T) {
	for _, v := range []uint64{0, 1, ^uint64(0), 1 << 63, 0xdeadbeefcafe} {
		s, err := SplitRandom(rand.Reader, v)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Reconstruct(); got != v {
			t.Fatalf("Reconstruct = %d, want %d", got, v)
		}
	}
	if _, err := SplitRandom(failingReader{}, 1); err == nil {
		t.Fatal("broken entropy source must surface an error")
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errEntropy }

var errEntropy = &entropyErr{}

type entropyErr struct{}

func (*entropyErr) Error() string { return "no entropy" }

// TestDotPrivateIntExact proves the untruncated ring dot product is
// bit-identical to big-integer arithmetic for magnitudes below 2^63 —
// the exactness property the ss-gc backend's differential tests build on.
func TestDotPrivateIntExact(t *testing.T) {
	rng := mrand.New(mrand.NewSource(7))
	e := NewEngine(11)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(24)
		w := make([]int64, n)
		xs := make([]Shares, n)
		ref := big.NewInt(0)
		for j := 0; j < n; j++ {
			// Weights at a ~F=100 scale, inputs at ~F^2: products stay
			// far below 2^63 even summed.
			w[j] = rng.Int63n(20000) - 10000
			if rng.Intn(5) == 0 {
				w[j] = 0 // exercise the zero-weight skip
			}
			xv := rng.Int63n(2_000_000) - 1_000_000
			var err error
			xs[j], err = SplitRandom(rand.Reader, RingOfBig(big.NewInt(xv)))
			if err != nil {
				t.Fatal(err)
			}
			ref.Add(ref, new(big.Int).Mul(big.NewInt(w[j]), big.NewInt(xv)))
		}
		bias := big.NewInt(rng.Int63n(2_000_000_000) - 1_000_000_000)
		ref.Add(ref, bias)

		before := e.Stats.TriplesUsed
		got, err := e.DotPrivateInt(w, xs, bias)
		if err != nil {
			t.Fatal(err)
		}
		if sv := SignedOfRing(got.Reconstruct()); sv != ref.Int64() {
			t.Fatalf("trial %d: dot = %d, want %s", trial, sv, ref)
		}
		nonzero := 0
		for _, wj := range w {
			if wj != 0 {
				nonzero++
			}
		}
		if used := e.Stats.TriplesUsed - before; used != nonzero {
			t.Fatalf("trial %d: %d triples for %d nonzero weights", trial, used, nonzero)
		}
	}
}

func TestDotPrivateIntLengthMismatch(t *testing.T) {
	e := NewEngine(1)
	if _, err := e.DotPrivateInt([]int64{1, 2}, make([]Shares, 3), nil); err == nil {
		t.Fatal("length mismatch must error")
	}
}

func TestMulPrivateIntExact(t *testing.T) {
	e := NewEngine(3)
	rng := mrand.New(mrand.NewSource(9))
	for i := 0; i < 100; i++ {
		w := rng.Int63n(1<<20) - 1<<19
		x := rng.Int63n(1<<40) - 1<<39
		xs, err := SplitRandom(rand.Reader, RingOfBig(big.NewInt(x)))
		if err != nil {
			t.Fatal(err)
		}
		got := SignedOfRing(e.MulPrivateInt(w, xs).Reconstruct())
		if want := w * x; got != want {
			t.Fatalf("mul %d*%d = %d, want %d", w, x, got, want)
		}
	}
}

func TestScalePrivateIntExact(t *testing.T) {
	e := NewEngine(4)
	xs, err := SplitRandom(rand.Reader, RingOfBig(big.NewInt(1234)))
	if err != nil {
		t.Fatal(err)
	}
	out := e.ScalePrivateInt(-3, big.NewInt(500), xs)
	if got := SignedOfRing(out.Reconstruct()); got != -3*1234+500 {
		t.Fatalf("scale = %d, want %d", got, -3*1234+500)
	}
	out = e.ScalePrivateInt(2, nil, xs)
	if got := SignedOfRing(out.Reconstruct()); got != 2468 {
		t.Fatalf("scale nil shift = %d", got)
	}
}

func TestOpenRingChargesStats(t *testing.T) {
	e := NewEngine(6)
	xs := make([]Shares, 5)
	for i := range xs {
		var err error
		xs[i], err = SplitRandom(rand.Reader, RingOfBig(big.NewInt(int64(i)-2)))
		if err != nil {
			t.Fatal(err)
		}
	}
	vals := e.OpenRing(xs)
	for i, v := range vals {
		if v != int64(i)-2 {
			t.Fatalf("open[%d] = %d", i, v)
		}
	}
	if e.Stats.Rounds != 1 || e.Stats.OpenedWords != 10 {
		t.Fatalf("stats = %+v, want 1 round / 10 words", e.Stats)
	}
}
