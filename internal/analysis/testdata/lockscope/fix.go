// Package stream is the lockscope fixture: blocking operations under a
// held sync.Mutex/RWMutex must be flagged; non-blocking critical
// sections, select-with-default, and post-unlock blocking must not.
// BadResolve and BadClose reproduce the two real bug shapes: the
// pendingEdge receive-under-mutex and the pre-PR 7 dispatcher Close
// holding the lock across Wait (Submit/Close hang).
package stream

import (
	"encoding/gob"
	"net"
	"sync"
	"time"
)

type box struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	down chan struct{}
	wg   sync.WaitGroup
	conn net.Conn
	enc  *gob.Encoder
	v    int
}

// BadResolve is the pendingEdge.resolve shape: a channel receive while
// holding the mutex every other accessor needs.
func (b *box) BadResolve() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want "channel receive while holding b.mu"
}

// BadClose is the pre-PR 7 dispatcher hang: Close holds the lock across
// the wait that in-flight Submits need the lock to finish.
func (b *box) BadClose() {
	b.mu.Lock()
	b.wg.Wait() // want "sync Wait while holding b.mu"
	b.mu.Unlock()
}

// BadSubmit blocks sending into the window channel under the lock.
func (b *box) BadSubmit(v int) {
	b.mu.Lock()
	b.ch <- v // want "channel send while holding b.mu"
	b.mu.Unlock()
}

// GoodSubmit releases before blocking.
func (b *box) GoodSubmit(v int) {
	b.mu.Lock()
	b.v++
	b.mu.Unlock()
	b.ch <- v
}

// BadSleep sleeps inside the critical section.
func (b *box) BadSleep() {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding b.mu"
	b.mu.Unlock()
}

// BadReadLock does gob I/O under a read lock: readers convoy writers
// just the same.
func (b *box) BadReadLock(v any) error {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.enc.Encode(v) // want "gob Encode while holding b.rw"
}

// BadConnIO performs network I/O while holding the lock.
func (b *box) BadConnIO(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.conn.Read(p) // want "net I/O .Read. while holding b.mu"
}

// BadSelect parks on a no-default select under the lock; the comm
// clauses themselves must not produce extra diagnostics.
func (b *box) BadSelect() {
	b.mu.Lock()
	select { // want "select with no default clause while holding b.mu"
	case v := <-b.ch:
		b.v = v
	case <-b.down:
	}
	b.mu.Unlock()
}

// GoodSelect is non-blocking: a default clause makes the dispatch a poll.
func (b *box) GoodSelect() {
	b.mu.Lock()
	select {
	case v := <-b.ch:
		b.v = v
	default:
	}
	b.mu.Unlock()
}

// BadRange parks on channel receives for the lifetime of the producer.
func (b *box) BadRange() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for v := range b.ch { // want "range over channel while holding b.mu"
		b.v += v
	}
}

// GoodBranchUnlock releases on both arms before blocking.
func (b *box) GoodBranchUnlock(fast bool) {
	b.mu.Lock()
	if fast {
		b.mu.Unlock()
	} else {
		b.v++
		b.mu.Unlock()
	}
	b.ch <- b.v
}

// BadOneArm keeps the lock on one arm: the join may still hold it.
func (b *box) BadOneArm(fast bool) {
	b.mu.Lock()
	if fast {
		b.mu.Unlock()
	}
	b.ch <- b.v // want "channel send while holding b.mu"
	if !fast {
		b.mu.Unlock()
	}
}

// IgnoredFramedSend shows the documented escape hatch: serializing one
// gob frame under the send mutex is the wire invariant, not a bug.
func (b *box) IgnoredFramedSend(v any) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	//pplint:ignore lockscope one frame per sendMu hold is the wire framing invariant
	return b.enc.Encode(v)
}

// GoodNoLock blocks freely without any lock held.
func (b *box) GoodNoLock(v int) {
	b.ch <- v
	time.Sleep(time.Microsecond)
	<-b.down
}
