// Package wire is a pplint fixture for the erraudit analyzer: discarded
// errors from gob Encode/Decode, net.Conn writes, and rand.Read next to
// their checked forms.
package wire

import (
	"bytes"
	crand "crypto/rand"
	"encoding/gob"
	"net"
)

// Broken drops every audited error.
func Broken(conn net.Conn, v any) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	enc.Encode(v)           // want "unchecked error from gob.Encode"
	conn.Write(buf.Bytes()) // want "unchecked error from net.Conn.Write"
	var b [8]byte
	crand.Read(b[:]) // want "unchecked error from rand.Read"
}

// BrokenAsync drops errors behind go and defer, where they are even
// harder to observe.
func BrokenAsync(enc *gob.Encoder, dec *gob.Decoder, v any) {
	go enc.Encode(v)    // want "unchecked error from gob.Encode"
	defer dec.Decode(v) // want "unchecked error from gob.Decode"
}

// Checked handles every audited error: clean.
func Checked(conn net.Conn, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	if _, err := conn.Write(buf.Bytes()); err != nil {
		return err
	}
	var b [8]byte
	_, err := crand.Read(b[:])
	return err
}

// ExplicitDiscard uses a visible `_ =` decision: not flagged (the
// discard is auditable in review).
func ExplicitDiscard(enc *gob.Encoder, v any) {
	_ = enc.Encode(v)
}
