// Package ignoredemo is a pplint fixture for the //pplint:ignore
// directive: three identical erraudit violations, two suppressed (one
// by named rule as a trailing comment, one by "all" on the line above)
// and one still firing.
package ignoredemo

import "encoding/gob"

// Demo exercises both directive placements.
func Demo(enc *gob.Encoder, v any) {
	enc.Encode(v) // want "unchecked error from gob.Encode"
	enc.Encode(v) //pplint:ignore erraudit fire-and-forget by design
	//pplint:ignore all demo of the blanket form
	enc.Encode(v)
}
