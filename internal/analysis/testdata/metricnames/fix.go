// Package obs is the metricnames fixture: a Registry shaped like the
// real one, metric registrations in every grammar bucket, and a
// CostStats/costFields pair that has drifted apart.
package obs

// Counter is a stub metric.
type Counter struct{}

// Add is a stub.
func (c *Counter) Add(uint64) {}

// Gauge is a stub metric.
type Gauge struct{}

// Set is a stub.
func (g *Gauge) Set(int64) {}

// Histogram is a stub metric.
type Histogram struct{}

// Registry mirrors the real obs.Registry registration surface.
type Registry struct{}

// Counter registers a counter.
func (r *Registry) Counter(name string) *Counter { _ = name; return &Counter{} }

// Gauge registers a gauge.
func (r *Registry) Gauge(name string) *Gauge { _ = name; return &Gauge{} }

// GaugeFunc registers a callback gauge.
func (r *Registry) GaugeFunc(name string, f func() int64) { _, _ = name, f }

// Histogram registers a histogram.
func (r *Registry) Histogram(name string) *Histogram { _ = name; return &Histogram{} }

// NotARegistry has a Counter method too, but is not a Registry: the
// analyzer must leave it alone.
type NotARegistry struct{}

// Counter is a decoy.
func (n *NotARegistry) Counter(name string) *Counter { _ = name; return &Counter{} }

func registerAll(r *Registry, stage string) {
	r.Counter("rounds.served").Add(1)       // conformant
	r.Gauge("sessions.active").Set(2)       // conformant
	r.Histogram("round.linear")             // conformant
	r.GaugeFunc("queue.depth0", nil)        // conformant: digits allowed after the first rune
	r.Counter("Rounds.Served")              // want "metric name .Rounds.Served. is not lowercase dotted"
	r.Counter("rounds-served")              // want "metric name .rounds-served. is not lowercase dotted"
	r.Gauge("0rounds.served")               // want "metric name .0rounds.served. is not lowercase dotted"
	r.Histogram("stage." + stage + ".wait") // conformant: fragments are lowercase dotted
	r.Histogram("Stage." + stage + ".wait") // want "metric name fragment .Stage.. contains characters outside"
	decoy := &NotARegistry{}
	decoy.Counter("NOT.CHECKED") // decoy receiver: no diagnostic
}

func conflictingTypes(r *Registry) {
	r.Counter("queue.pending")
	r.Gauge("queue.pending") // want "registered as gauge here but as counter"
	//pplint:ignore metricnames demonstrating the suppressed form
	r.Gauge("rounds.served")
}

// CostStats mirrors the real struct with three deliberate defects: a
// missing json tag, a tag absent from costFields, and a costFields entry
// with no backing field.
type CostStats struct {
	ModExps uint64 `json:"modexps"`
	MulMods uint64 // want "CostStats field MulMods has no json tag"
	Rerands uint64 `json:"rerands"` // want "json tag .rerands. is missing from the costFields table"
}

// CostMeter is the stub accumulation target.
type CostMeter struct{}

// CostField mirrors the real table entry shape.
type CostField struct {
	Name string
	Get  func(*CostStats) uint64
	Add  func(*CostMeter, uint64)
}

var costFields = []CostField{
	{Name: "modexps", Get: func(c *CostStats) uint64 { return c.ModExps }},
	// The untagged MulMods field never lands in the tag set, so its table
	// entry is flagged as orphaned too.
	{Name: "mulmods", Get: func(c *CostStats) uint64 { return c.MulMods }}, // want "costFields entry .mulmods. has no matching CostStats json tag"
	{Name: "ghost_field"}, // want "costFields entry .ghost_field. has no matching CostStats json tag"
}
