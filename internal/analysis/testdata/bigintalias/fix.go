// Package keys is a pplint fixture for the bigintalias analyzer: the
// two aliasing hazards (mutate-through-alias and leaky accessors) next
// to their safe forms.
package keys

import "math/big"

// Key holds big.Int key material.
type Key struct{ n *big.Int }

// Modulus leaks the internal modulus by reference: a caller mutating
// the result corrupts the key.
func (k *Key) Modulus() *big.Int {
	return k.n // want "returns internal \*big.Int k.n by reference"
}

// ModulusCopy is the safe accessor.
func (k *Key) ModulusCopy() *big.Int {
	return new(big.Int).Set(k.n)
}

// Reduce mutates the key's modulus through a field alias: always
// flagged, whether or not the field is read again here.
func (k *Key) Reduce(e *big.Int) *big.Int {
	m := k.n
	m.Mul(m, e) // want "mutates k.n through alias m"
	return m
}

// ReduceCopy copies before mutating: clean.
func (k *Key) ReduceCopy(e *big.Int) *big.Int {
	m := new(big.Int).Set(k.n)
	m.Mul(m, e)
	return m
}

// InPlace is the idiomatic receiver-equals-argument form: exempt.
func InPlace(t, d *big.Int) *big.Int {
	t.Div(t, d)
	return t
}

// AliasReadAfter mutates through an alias of a, then reads a again:
// the read observes the clobbered value.
func AliasReadAfter(a, b *big.Int) *big.Int {
	x := a
	x.Add(x, b) // want "read again afterwards"
	return new(big.Int).Set(a)
}

// AliasNoReadAfter rebinds the name but never reads the source again:
// clean (an intentional consume-and-mutate).
func AliasNoReadAfter(a, b *big.Int) *big.Int {
	x := a
	x.Add(x, b)
	return x
}

// FreshFromCall assigns from a constructor call, which breaks any
// alias: clean.
func FreshFromCall(a, b *big.Int) *big.Int {
	x := new(big.Int).Set(a)
	x.Add(x, b)
	return x
}
