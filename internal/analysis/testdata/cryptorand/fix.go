// Package obfuscate is a pplint fixture reproducing the pre-fix
// obfuscate.NewRandom pattern: a crypto/rand seed squeezed through a
// 64-bit math/rand generator, which caps the reachable permutation
// space at 2^64 << P!.
package obfuscate

import (
	crand "crypto/rand"
	"encoding/binary"
	mrand "math/rand"
)

// Permutation is a minimal stand-in for obfuscate.Permutation.
type Permutation struct{ fwd []int }

// NewRandom is the original buggy construction: cryptographically
// seeded, but the permutation is drawn through math/rand.
func NewRandom(n int) *Permutation {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic(err)
	}
	seed := int64(binary.LittleEndian.Uint64(b[:]))
	rng := mrand.New(mrand.NewSource(seed)) // want "math/rand used in security-critical package obfuscate"
	return &Permutation{fwd: rng.Perm(n)}
}

// NewSeeded is deterministic by documented contract (reproducible test
// and experiment permutations) and is allowlisted.
func NewSeeded(n int, seed int64) *Permutation {
	rng := mrand.New(mrand.NewSource(seed))
	return &Permutation{fwd: rng.Perm(n)}
}

// shuffleForBench exercises the trailing-comment ignore placement.
func shuffleForBench(xs []int) {
	mrand.Shuffle(len(xs), func(i, j int) { //pplint:ignore cryptorand benchmark-only shuffle
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// jitter exercises the standalone-comment-above ignore placement.
func jitter(n int) int {
	//pplint:ignore cryptorand non-security jitter
	return mrand.Intn(n)
}

// pick still fires: no directive, not allowlisted.
func pick(n int) int {
	return mrand.Intn(n) // want "math/rand used in security-critical package obfuscate"
}
