// Package paillier is a pplint fixture for the rerandomize analyzer: a
// minimal Paillier-shaped package whose exported functions derive
// ciphertexts homomorphically, with and without blinding the result
// before it is returned.
package paillier

import "math/big"

// Ciphertext mirrors paillier.Ciphertext.
type Ciphertext struct{ c *big.Int }

// Key carries the modulus state the homomorphic ops reduce against.
type Key struct {
	n  *big.Int
	n2 *big.Int
}

// freshBlinding is the fixture's stand-in for drawing r^n with
// cryptographic randomness.
func (k *Key) freshBlinding() *big.Int {
	return new(big.Int).Set(k.n)
}

// Rerandomize multiplies in a fresh blinding factor; it is the
// re-randomization operation itself and therefore exempt by name.
func (k *Key) Rerandomize(ct *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(ct.c, k.freshBlinding())
	c.Mod(c, k.n2)
	return &Ciphertext{c: c}
}

// Add is an Eq. 1 homomorphic primitive: derives without blinding by
// documented contract, exempt by name.
func (k *Key) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.c, b.c)
	c.Mod(c, k.n2)
	return &Ciphertext{c: c}
}

// BadDot reproduces the PR 2 unblinded-row bug: the accumulated
// ciphertext inherits randomness only from its inputs and leaves the
// function without a fresh r^n factor.
func (k *Key) BadDot(row []int64, cts []*Ciphertext) *Ciphertext {
	acc := big.NewInt(1)
	for i, w := range row {
		t := new(big.Int).Exp(cts[i].c, big.NewInt(w), k.n2)
		acc.Mul(acc, t)
		acc.Mod(acc, k.n2)
	}
	return &Ciphertext{c: acc} // want "without re-randomization"
}

// GoodDot is the fixed form: a blinding factor is definitely multiplied
// in before every return.
func (k *Key) GoodDot(row []int64, cts []*Ciphertext) *Ciphertext {
	acc := big.NewInt(1)
	for i, w := range row {
		t := new(big.Int).Exp(cts[i].c, big.NewInt(w), k.n2)
		acc.Mul(acc, t)
		acc.Mod(acc, k.n2)
	}
	acc.Mul(acc, k.freshBlinding())
	acc.Mod(acc, k.n2)
	return &Ciphertext{c: acc}
}

// BadDotRef matches BadDot but is a *Ref differential-test reference
// implementation (documented as never leaving the model provider):
// exempt by suffix.
func (k *Key) BadDotRef(row []int64, cts []*Ciphertext) *Ciphertext {
	acc := big.NewInt(1)
	for i, w := range row {
		t := new(big.Int).Exp(cts[i].c, big.NewInt(w), k.n2)
		acc.Mul(acc, t)
		acc.Mod(acc, k.n2)
	}
	return &Ciphertext{c: acc}
}

// BranchDot blinds the main path but leaks an unblinded ciphertext on
// the single-element early return.
func (k *Key) BranchDot(cts []*Ciphertext) *Ciphertext {
	if len(cts) == 1 {
		return k.scale(cts[0]) // want "without re-randomization"
	}
	acc := big.NewInt(1)
	for _, ct := range cts {
		acc.Mul(acc, ct.c)
		acc.Mod(acc, k.n2)
	}
	acc.Mul(acc, k.freshBlinding())
	acc.Mod(acc, k.n2)
	return &Ciphertext{c: acc}
}

// scale is an unexported homomorphic helper: not reported itself (only
// exported egress points are), but it does not blind, so returning its
// result directly is a violation upstream.
func (k *Key) scale(ct *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(ct.c, ct.c)
	c.Mod(c, k.n2)
	return &Ciphertext{c: c}
}

// Rescale derives and then routes the result through Rerandomize: the
// assignment taints out as blinded, so the return is clean.
func (k *Key) Rescale(ct *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(ct.c, ct.c)
	c.Mod(c, k.n2)
	out := k.Rerandomize(&Ciphertext{c: c})
	return out
}

// EncryptEach accumulates blinded ciphertexts into a slice: taint flows
// through append, so the returned slice is clean.
func (k *Key) EncryptEach(vals []*Ciphertext) []*Ciphertext {
	var out []*Ciphertext
	for _, v := range vals {
		ct := k.Rerandomize(v)
		out = append(out, ct)
	}
	return out
}

// BadBatch accumulates unblinded derived ciphertexts: the slice stays
// untainted and the return is flagged.
func (k *Key) BadBatch(vals []*Ciphertext) []*Ciphertext {
	var out []*Ciphertext
	for _, v := range vals {
		out = append(out, k.scale(v))
	}
	return out // want "without re-randomization"
}

// NilOnEmpty returns nil on the guard path (nil is never a leak) and a
// blinded ciphertext otherwise.
func (k *Key) NilOnEmpty(cts []*Ciphertext) *Ciphertext {
	if len(cts) == 0 {
		return nil
	}
	acc := new(big.Int).Mul(cts[0].c, cts[0].c)
	acc.Mod(acc, k.n2)
	return k.Rerandomize(&Ciphertext{c: acc})
}
