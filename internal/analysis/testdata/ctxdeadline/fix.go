// Package protocol is the ctxdeadline fixture: ctx-taking request-path
// functions must thread their context into every blocking call that
// accepts one. Detaching with context.Background/TODO or parking in
// time.Sleep silently breaks the DeadlineMS contract the client
// negotiated.
package protocol

import (
	"context"
	"time"
)

type client struct{}

func (c *client) send(ctx context.Context, v int) error { return ctx.Err() }
func (c *client) recv(ctx context.Context) (int, error) { return 0, ctx.Err() }

// BadDetach drops the caller's deadline on the floor.
func (c *client) BadDetach(ctx context.Context, v int) error {
	return c.send(context.Background(), v) // want "passes context.Background"
}

// BadTODO is the same hole spelled TODO.
func (c *client) BadTODO(ctx context.Context) (int, error) {
	return c.recv(context.TODO()) // want "passes context.TODO"
}

// BadSleep parks unconditionally: a canceled request still pays the
// full sleep.
func (c *client) BadSleep(ctx context.Context, v int) error {
	time.Sleep(10 * time.Millisecond) // want "calls time.Sleep"
	return c.send(ctx, v)
}

// GoodThreaded passes ctx through, including derived contexts.
func (c *client) GoodThreaded(ctx context.Context, v int) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	if err := c.send(tctx, v); err != nil {
		return err
	}
	_, err := c.recv(ctx)
	return err
}

// GoodTimer waits with a cancelable select instead of sleeping.
func (c *client) GoodTimer(ctx context.Context) error {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// NoCtx has no context parameter: background maintenance may sleep.
func (c *client) NoCtx() {
	time.Sleep(time.Millisecond)
}

// IgnoredWarmup documents an intentional detach: cache warmup outlives
// any single request by design.
func (c *client) IgnoredWarmup(ctx context.Context, v int) error {
	//pplint:ignore ctxdeadline warmup is shared across requests and must outlive any one deadline
	return c.send(context.Background(), v)
}
