// Package protocol is the pairedrelease fixture: every tracked acquire
// (shed slot, pipeline reservation, tracked request state) must reach
// its paired release on all return paths. LeakOnComplete reproduces the
// PR 3 permutation-state leak (Forget never reached on the completion
// path) and EvictWithoutRelease the PR 7 shed-slot-at-eviction bug.
package protocol

import (
	"context"
	"errors"
)

type shedder struct{ n int }

func (s *shedder) Acquire() error { return nil }
func (s *shedder) Release()       { s.n-- }

type model struct{ live map[uint64]int }

func (m *model) Track(seq uint64)  { m.live[seq] = 1 }
func (m *model) Forget(seq uint64) { delete(m.live, seq) }

type pipe struct{ seq uint64 }

func (p *pipe) Reserve() uint64 { p.seq++; return p.seq }
func (p *pipe) SubmitReserved(ctx context.Context, seq uint64, v any) error {
	return nil
}
func (p *pipe) CancelReserve(seq uint64) {}

type server struct {
	shed  *shedder
	model *model
	p     *pipe
}

var errEvict = errors.New("evicted")

// LeakOnComplete is the PR 3 bug shape: per-request obfuscation state is
// tracked, the error path forgets it, but the completion path returns
// with the state still live — leaking one permutation per successful
// request.
func (s *server) LeakOnComplete(seq uint64, fail bool) error {
	s.model.Track(seq) // want "s.model.Track is not matched by a paired release"
	if fail {
		s.model.Forget(seq)
		return errEvict
	}
	return nil
}

// GoodComplete forgets on both paths.
func (s *server) GoodComplete(seq uint64, fail bool) error {
	s.model.Track(seq)
	if fail {
		s.model.Forget(seq)
		return errEvict
	}
	s.model.Forget(seq)
	return nil
}

// GoodDeferForget releases via defer, covering every return.
func (s *server) GoodDeferForget(seq uint64, fail bool) error {
	s.model.Track(seq)
	defer s.model.Forget(seq)
	if fail {
		return errEvict
	}
	return nil
}

// EvictWithoutRelease is the PR 7 shed-slot bug shape: the eviction
// branch drops the request state and returns without releasing the shed
// slot it holds, permanently shrinking admission capacity.
func (s *server) EvictWithoutRelease(evict bool) error {
	if err := s.shed.Acquire(); err != nil { // want "s.shed.Acquire is not matched by a paired release"
		return err
	}
	if evict {
		return errEvict // leaks the slot
	}
	s.shed.Release()
	return nil
}

// GoodGuardedAcquire releases on every success-path return; the guarded
// error return without a release is correct (nothing was acquired) and
// must not be flagged.
func (s *server) GoodGuardedAcquire(evict bool) error {
	if err := s.shed.Acquire(); err != nil {
		return err
	}
	if evict {
		s.shed.Release()
		return errEvict
	}
	s.shed.Release()
	return nil
}

// GoodDeferRelease is the canonical engine-Submit shape.
func (s *server) GoodDeferRelease(ctx context.Context) error {
	if err := s.shed.Acquire(); err != nil {
		return err
	}
	defer s.shed.Release()
	return ctx.Err()
}

// GoodDeferClosureRelease releases inside a deferred closure (the
// conditional-release wrapper idiom).
func (s *server) GoodDeferClosureRelease(fail bool) error {
	if err := s.shed.Acquire(); err != nil {
		return err
	}
	done := false
	defer func() {
		if !done {
			s.shed.Release()
		}
	}()
	if fail {
		return errEvict
	}
	done = true
	s.shed.Release()
	return nil
}

// DroppedReservation reserves a pipeline sequence but returns early on
// the backpressure branch without submitting or canceling: the sequence
// is torn from the delivery order and its completion slot never fires.
func (s *server) DroppedReservation(ctx context.Context, v any, full bool) error {
	seq := s.p.Reserve() // want "s.p.Reserve is not matched by a paired release"
	if full {
		return errEvict
	}
	return s.p.SubmitReserved(ctx, seq, v)
}

// GoodReservation cancels on the abandon branch.
func (s *server) GoodReservation(ctx context.Context, v any, full bool) error {
	seq := s.p.Reserve()
	if full {
		s.p.CancelReserve(seq)
		return errEvict
	}
	return s.p.SubmitReserved(ctx, seq, v)
}

// IgnoredOwnershipTransfer hands the slot to a registry another
// goroutine releases from — the documented escape hatch.
func (s *server) IgnoredOwnershipTransfer(seq uint64) error {
	//pplint:ignore pairedrelease slot ownership transfers to the live map; the janitor releases it at drop/expire
	if err := s.shed.Acquire(); err != nil {
		return err
	}
	s.model.Track(seq) // want "s.model.Track is not matched by a paired release"
	return nil
}
