// Package protocol is a pplint fixture for the wirecompat analyzer:
// the committed fixture lock (wire.lock in this directory) records
// Factor as int64 and two fields that no longer exist.
package protocol

// Hello mirrors the protocol handshake frame. Factor was retyped from
// int64 (as locked) to int32, and the locked field Gone was deleted.
// Profile and Plan mirror the backend-negotiation evolution: both are
// ADDITIVE fields absent from the fixture lock, which the analyzer must
// accept silently — gob decodes frames lacking them to zero values, so
// old peers keep interoperating.
type Hello struct {
	N       []byte
	Factor  int32
	Workers int
	Profile string
	Plan    []int32
	hidden  int // unexported: gob never encodes it, so it is not locked
}

var _ = Hello{hidden: 0}
