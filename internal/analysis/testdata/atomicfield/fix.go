// Package obs is the atomicfield fixture: a struct field accessed
// through sync/atomic anywhere must be accessed atomically everywhere.
// The mixed counter reproduces the windowed-metrics hazard: one relaxed
// read beside atomic writers is a data race the race detector only sees
// when the schedules collide.
package obs

import "sync/atomic"

type counter struct {
	// n is written atomically by the hot path but read plainly below.
	n int64
	// hits is used atomically everywhere: no diagnostics.
	hits int64
	// plainOnly is never touched by sync/atomic: plain access is fine.
	plainOnly int64
}

func (c *counter) Inc() {
	atomic.AddInt64(&c.n, 1)
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) Read() int64 {
	return c.n // want "non-atomic access of field obs.n"
}

func (c *counter) Reset() {
	c.n = 0 // want "non-atomic access of field obs.n"
}

func (c *counter) Hits() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) Plain() int64 {
	c.plainOnly++
	return c.plainOnly
}

// NewCounter's composite literal is initialization before the value is
// shared: field keys are not accesses.
func NewCounter() *counter {
	return &counter{n: 0, hits: 0}
}
