// Package stream is the goroleak fixture: every `go` statement in
// long-lived packages needs a shutdown edge. BadReader reproduces the
// pre-PR 7 dispatcher bug — a reader goroutine whose only exit was the
// results channel closing, which a failed pipeline never did, leaving
// Submit blocked on the window and Close blocked on Submit.
package stream

import (
	"context"
	"sync"
)

type message struct{ seq uint64 }

type pump struct {
	results chan message
	work    chan int
	down    chan struct{}
	wg      sync.WaitGroup
}

func deliver(m message) {}

// BadReader loops on a bare receive with no done edge: when the producer
// dies without closing results, the goroutine is stranded forever.
func (p *pump) BadReader() {
	go func() { // want "no shutdown edge"
		for {
			m := <-p.results
			deliver(m)
		}
	}()
}

// GoodReaderDown is the PR 7 fix shape: every blocking point also
// selects on the down channel.
func (p *pump) GoodReaderDown() {
	go func() {
		for {
			select {
			case m := <-p.results:
				deliver(m)
			case <-p.down:
				return
			}
		}
	}()
}

// GoodReaderCtx exits when the context is canceled.
func (p *pump) GoodReaderCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case m := <-p.results:
				deliver(m)
			case <-ctx.Done():
				return
			}
		}
	}()
}

// GoodReaderRange terminates when the producer closes the channel.
func (p *pump) GoodReaderRange() {
	go func() {
		for m := range p.results {
			deliver(m)
		}
	}()
}

// GoodReaderCommaOk exits on the closed-channel sentinel.
func (p *pump) GoodReaderCommaOk() {
	go func() {
		for {
			m, ok := <-p.results
			if !ok {
				return
			}
			deliver(m)
		}
	}()
}

// GoodWaitGroup registers with the WaitGroup some Close waits on.
func (p *pump) GoodWaitGroup() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		for i := 0; i < 16; i++ {
			p.work <- i
		}
	}()
}

// BadSender pushes forever with no exit.
func (p *pump) BadSender() {
	go func() { // want "no shutdown edge"
		for {
			p.work <- 1
		}
	}()
}

// GoodCtxArg hands the goroutine a context: the callee's ctx handling
// is checked where readLoop is defined.
func (p *pump) GoodCtxArg(ctx context.Context) {
	go p.readLoop(ctx)
}

func (p *pump) readLoop(ctx context.Context) {
	for {
		select {
		case m := <-p.results:
			deliver(m)
		case <-ctx.Done():
			return
		}
	}
}

// BadNamedLoop spins a same-package function with an unbounded loop and
// no shutdown edge: flagged at the go statement.
func (p *pump) BadNamedLoop() {
	go p.spin() // want "no shutdown edge"
}

func (p *pump) spin() {
	for {
		p.work <- 1
	}
}

// GoodOneShot has no loop: it terminates on its own (the bounded-send
// accept-goroutine shape).
func (p *pump) GoodOneShot() {
	ch := make(chan message, 1)
	go func() {
		ch <- message{seq: 1}
	}()
	<-ch
}

// IgnoredSupervised documents an intentional detached loop.
func (p *pump) IgnoredSupervised() {
	//pplint:ignore goroleak supervised by the process watchdog; restarts are the shutdown story
	go func() {
		for {
			p.work <- 1
		}
	}()
}
