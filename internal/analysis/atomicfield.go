package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// NewAtomicfieldAnalyzer returns the atomic-field hygiene check: a
// struct field accessed through sync/atomic anywhere must be accessed
// atomically everywhere. Mixing `atomic.AddInt64(&c.n, 1)` with a plain
// `c.n` read is a data race the race detector only catches when the two
// sites actually collide under test; the analyzer catches it from the
// source alone. This is the invariant the obs windowed counters'
// lock-free hot path depends on (their typed atomic.Int64 fields are
// safe by construction — only address-taken sync/atomic calls create the
// mixed-access hazard).
//
// The check is whole-module: uses are collected per package during Run
// and judged in Finish, so an atomic use in one package convicts a plain
// access in another. Composite-literal keys are not accesses (`&c{n: 0}`
// initializes before the value is shared), and the &field operand of the
// sync/atomic call itself is exempt.
func NewAtomicfieldAnalyzer() *Analyzer {
	s := &atomicfieldState{
		atomicAt: map[*types.Var]token.Position{},
		plain:    map[*types.Var][]token.Position{},
	}
	return &Analyzer{
		Name:   "atomicfield",
		Doc:    "a struct field accessed through sync/atomic anywhere must be accessed atomically everywhere",
		Run:    s.run,
		Finish: s.finish,
	}
}

type atomicfieldState struct {
	// atomicAt records, per field object, one position where it is
	// accessed through sync/atomic.
	atomicAt map[*types.Var]token.Position
	// plain records every non-atomic access of any field; Finish
	// intersects with atomicAt.
	plain map[*types.Var][]token.Position
}

func (s *atomicfieldState) run(pass *Pass) error {
	info := pass.Pkg.Info
	fset := pass.Pkg.Fset
	for _, file := range pass.Pkg.Files {
		// First pass: find &x.f operands of sync/atomic calls. They mark
		// the field as atomic and are exempt from the plain-access scan.
		exempt := map[*ast.SelectorExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if calleePkgPath(info, call) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				ue, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(ue.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := fieldOf(info, sel); f != nil {
					exempt[sel] = true
					if _, seen := s.atomicAt[f]; !seen {
						s.atomicAt[f] = fset.Position(sel.Pos())
					}
				}
			}
			return true
		})
		// Second pass: every other selector access of a field.
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || exempt[sel] {
				return true
			}
			if f := fieldOf(info, sel); f != nil {
				s.plain[f] = append(s.plain[f], fset.Position(sel.Sel.Pos()))
			}
			return true
		})
	}
	return nil
}

func (s *atomicfieldState) finish(report func(Diagnostic)) error {
	type finding struct {
		pos      token.Position
		field    *types.Var
		atomicAt token.Position
	}
	var findings []finding
	for f, atomicPos := range s.atomicAt {
		for _, p := range s.plain[f] {
			findings = append(findings, finding{pos: p, field: f, atomicAt: atomicPos})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, f := range findings {
		report(Diagnostic{
			Pos:  f.pos,
			Rule: "atomicfield",
			Msg: fmt.Sprintf("non-atomic access of field %s, which is accessed via sync/atomic at %s:%d: mixed access is a data race — use the atomic accessors everywhere (or a typed atomic.Int64-style field, which makes plain access impossible)",
				fieldLabel(f.field), f.atomicAt.Filename, f.atomicAt.Line),
		})
	}
	return nil
}

// fieldOf resolves a selector to a struct-field object, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// fieldLabel renders "pkg.field" for diagnostics.
func fieldLabel(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}
