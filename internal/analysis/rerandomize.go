package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RerandomizeAnalyzer enforces the paper's ciphertext-egress invariant
// (§III-B, and the PR 2 unblinded-row fix): every exported paillier
// function whose result is a ciphertext derived from homomorphic
// operations must reach a re-randomization (fresh r^n blinding) on every
// return path. Otherwise an output's randomness is only inherited from
// its inputs — and absent entirely for an all-zero weight row, which
// previously leaked the deterministic embedding of the bias.
//
// The check walks a package-local call graph: a function "derives" if it
// (or a package function it calls) performs homomorphic arithmetic, and a
// return path is "blinded" if a blinding call (freshBlinding / Blinding /
// Encrypt* / Rerandomize*) is definitely executed before it, or the
// returned expression itself comes from an always-blinding function.
//
// Allowlisted: the low-level homomorphic primitives Add, AddPlain,
// MulScalar, and MulScalarInt64 (Eq. 1/2 building blocks whose contract
// puts blinding at the egress boundary, i.e. the kernel and protocol
// layers), and *Ref-suffixed differential-test reference implementations,
// which are documented as never leaving the model provider.
var RerandomizeAnalyzer = &Analyzer{
	Name: "rerandomize",
	Doc:  "exported paillier ciphertext producers must re-randomize on every return path",
	Run:  runRerandomize,
}

// blindingNames are the functions that introduce fresh r^n randomness (or
// are themselves the re-randomization operation). A call to any of these,
// resolved to the package under analysis, marks the path blinded.
var blindingNames = map[string]bool{
	"freshBlinding":       true,
	"encryptWithBlinding": true,
	"Blinding":            true,
	"blinding":            true,
	"BlindingTracked":     true,
	"Encrypt":             true,
	"EncryptTracked":      true,
	"EncryptWithBlinding": true,
	"EncryptZero":         true,
	"EncryptInt64":        true,
	"Rerandomize":         true,
	"RerandomizeWith":     true,
}

// homomorphicPrimitives are the exported Eq. 1/2 building blocks: they
// derive ciphertexts homomorphically by design and are exempt from the
// egress rule (their documented contract defers blinding to the caller).
var homomorphicPrimitives = map[string]bool{
	"Add":            true,
	"AddPlain":       true,
	"MulScalar":      true,
	"MulScalarInt64": true,
}

// bigIntHomomorphicOps are the math/big methods whose use on ring
// elements marks a function as homomorphically deriving: modular
// multiplication (Eq. 1), exponentiation (Eq. 2), and inversion
// (negative weights).
var bigIntHomomorphicOps = map[string]bool{
	"Mul":        true,
	"Exp":        true,
	"ModInverse": true,
}

type rerandomizer struct {
	pass  *Pass
	pkg   *types.Package
	decls map[*types.Func]*ast.FuncDecl
	// derives marks functions that perform (transitively) homomorphic
	// arithmetic; alwaysBlinds marks functions whose every non-nil
	// ciphertext return is blinded.
	derives      map[*types.Func]bool
	alwaysBlinds map[*types.Func]bool
}

func runRerandomize(pass *Pass) error {
	if pkgBase(pass.Pkg.Path) != "paillier" {
		return nil
	}
	r := &rerandomizer{
		pass:         pass,
		pkg:          pass.Pkg.Types,
		decls:        map[*types.Func]*ast.FuncDecl{},
		derives:      map[*types.Func]bool{},
		alwaysBlinds: map[*types.Func]bool{},
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				r.decls[obj] = fd
			}
		}
	}
	r.computeDerives()
	r.computeAlwaysBlinds()

	for obj, fd := range r.decls {
		name := obj.Name()
		if !fd.Name.IsExported() || !r.derives[obj] || !r.returnsCiphertext(obj) {
			continue
		}
		if blindingNames[name] || homomorphicPrimitives[name] || strings.HasSuffix(name, "Ref") {
			continue
		}
		w := r.newWalker()
		w.walkStmts(fd.Body.List, false)
		for _, bad := range w.violations {
			r.pass.Reportf(bad.Pos(), "exported %s returns a homomorphically-derived ciphertext without re-randomization on this path: multiply in a fresh r^n blinding factor before the ciphertext leaves the model provider (paper §III-B)", name)
		}
	}
	return nil
}

// calleeObj resolves a call expression to its function object, or nil.
func (r *rerandomizer) calleeObj(call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := r.pass.Pkg.Info.Uses[f].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := r.pass.Pkg.Info.Uses[f.Sel].(*types.Func)
		return obj
	}
	return nil
}

// computeDerives marks functions performing homomorphic arithmetic,
// propagated transitively through package-local calls.
func (r *rerandomizer) computeDerives() {
	callers := map[*types.Func][]*types.Func{} // callee -> callers
	var work []*types.Func
	for obj, fd := range r.decls {
		seeded := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := r.calleeObj(call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch callee.Pkg().Path() {
			case r.pkg.Path():
				if homomorphicPrimitives[callee.Name()] {
					seeded = true
				}
				callers[callee] = append(callers[callee], obj)
			case "math/big":
				if bigIntHomomorphicOps[callee.Name()] {
					seeded = true
				}
			}
			return true
		})
		if seeded {
			r.derives[obj] = true
			work = append(work, obj)
		}
	}
	for len(work) > 0 {
		callee := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[callee] {
			if !r.derives[caller] {
				r.derives[caller] = true
				work = append(work, caller)
			}
		}
	}
}

// computeAlwaysBlinds iterates to a fixpoint over ciphertext-returning
// package functions: a function always blinds when every return of a
// non-nil ciphertext happens in blinded path state (or returns the result
// of another always-blinding function). Growing the set can only make
// more functions pass, so iteration is monotone.
func (r *rerandomizer) computeAlwaysBlinds() {
	for changed := true; changed; {
		changed = false
		for obj, fd := range r.decls {
			if r.alwaysBlinds[obj] || !r.returnsCiphertext(obj) {
				continue
			}
			w := r.newWalker()
			w.walkStmts(fd.Body.List, false)
			if len(w.violations) == 0 {
				r.alwaysBlinds[obj] = true
				changed = true
			}
		}
	}
}

// returnsCiphertext reports whether the function's result tuple contains
// the package's Ciphertext type (directly, behind pointers/slices/maps,
// or as a generic type argument).
func (r *rerandomizer) returnsCiphertext(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if r.typeHasCiphertext(res.At(i).Type(), 0) {
			return true
		}
	}
	return false
}

func (r *rerandomizer) typeHasCiphertext(t types.Type, depth int) bool {
	if depth > 6 {
		return false
	}
	switch tt := t.(type) {
	case *types.Named:
		if obj := tt.Obj(); obj != nil && obj.Name() == "Ciphertext" && obj.Pkg() == r.pkg {
			return true
		}
		for i := 0; i < tt.TypeArgs().Len(); i++ {
			if r.typeHasCiphertext(tt.TypeArgs().At(i), depth+1) {
				return true
			}
		}
		return false
	case *types.Alias:
		return r.typeHasCiphertext(types.Unalias(tt), depth+1)
	case *types.Pointer:
		return r.typeHasCiphertext(tt.Elem(), depth+1)
	case *types.Slice:
		return r.typeHasCiphertext(tt.Elem(), depth+1)
	case *types.Array:
		return r.typeHasCiphertext(tt.Elem(), depth+1)
	case *types.Map:
		return r.typeHasCiphertext(tt.Elem(), depth+1)
	}
	return false
}

// isBlindingCall reports whether a call introduces fresh blinding: a
// blinding-named function of this package, or an always-blinding package
// function.
func (r *rerandomizer) isBlindingCall(call *ast.CallExpr) bool {
	callee := r.calleeObj(call)
	if callee == nil || callee.Pkg() != r.pkg {
		return false
	}
	return blindingNames[callee.Name()] || r.alwaysBlinds[callee]
}

// containsBlinding reports whether any call under n is a blinding call.
func (r *rerandomizer) containsBlinding(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && r.isBlindingCall(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// blindWalker is the per-function "definitely blinded before return"
// analysis: an abstract state (has a blinding call definitely executed?)
// flows through the statement tree; branches merge with AND, loop bodies
// do not leak state out. Returns of non-nil ciphertexts in unblinded
// state are violations.
type blindWalker struct {
	r       *rerandomizer
	tainted map[types.Object]bool // idents holding blinded ciphertexts
	// violations are the returned expressions (or return statements) that
	// may carry an unblinded derived ciphertext.
	violations []ast.Node
}

func (r *rerandomizer) newWalker() *blindWalker {
	return &blindWalker{r: r, tainted: map[types.Object]bool{}}
}

// walkStmts flows the blinded state through a statement list and returns
// the state after it.
func (w *blindWalker) walkStmts(stmts []ast.Stmt, blinded bool) bool {
	for _, s := range stmts {
		blinded = w.walkStmt(s, blinded)
	}
	return blinded
}

func (w *blindWalker) walkStmt(s ast.Stmt, blinded bool) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		w.checkReturn(st, blinded)
		return blinded
	case *ast.BlockStmt:
		return w.walkStmts(st.List, blinded)
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, blinded)
	case *ast.IfStmt:
		if st.Init != nil {
			blinded = w.walkStmt(st.Init, blinded)
		}
		if w.r.containsBlinding(st.Cond) {
			blinded = true
		}
		thenState := w.walkStmts(st.Body.List, blinded)
		elseState := blinded
		if st.Else != nil {
			elseState = w.walkStmt(st.Else, blinded)
		}
		return thenState && elseState
	case *ast.ForStmt:
		if st.Init != nil {
			blinded = w.walkStmt(st.Init, blinded)
		}
		w.walkStmts(st.Body.List, blinded)
		return blinded // body may run zero times
	case *ast.RangeStmt:
		w.walkStmts(st.Body.List, blinded)
		return blinded
	case *ast.SwitchStmt:
		if st.Init != nil {
			blinded = w.walkStmt(st.Init, blinded)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, blinded)
			}
		}
		return blinded
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			blinded = w.walkStmt(st.Init, blinded)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, blinded)
			}
		}
		return blinded
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, blinded)
			}
		}
		return blinded
	case *ast.AssignStmt:
		w.recordTaint(st)
		if w.r.containsBlinding(st) {
			return true
		}
		return blinded
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/concurrent blinding cannot blind the value a return
		// statement has already evaluated: no state change.
		return blinded
	default:
		if w.r.containsBlinding(s) {
			return true
		}
		return blinded
	}
}

// recordTaint marks idents assigned from blinding calls (or from already
// tainted idents) as holding blinded ciphertexts; assignment into an
// element of a composite (out[i] = ct) propagates to the root ident.
func (w *blindWalker) recordTaint(st *ast.AssignStmt) {
	blindedRHS := len(st.Rhs) == 1 && w.rhsBlinded(st.Rhs[0])
	if !blindedRHS {
		return
	}
	for _, lhs := range st.Lhs {
		if root := rootIdent(lhs); root != nil {
			if obj := w.identObj(root); obj != nil {
				w.tainted[obj] = true
			}
		}
	}
}

func (w *blindWalker) rhsBlinded(e ast.Expr) bool {
	switch ex := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if w.r.isBlindingCall(ex) {
			return true
		}
		// append(xs, ct, ...) propagates taint: accumulating blinded
		// ciphertexts into a slice keeps the slice blinded.
		if id, ok := ast.Unparen(ex.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := w.identObj(id).(*types.Builtin); isBuiltin {
				for _, arg := range ex.Args {
					if w.exprBlinded(arg) {
						return true
					}
				}
			}
		}
		return false
	case *ast.Ident:
		obj := w.identObj(ex)
		return obj != nil && w.tainted[obj]
	}
	return false
}

func (w *blindWalker) identObj(id *ast.Ident) types.Object {
	info := w.r.pass.Pkg.Info
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// checkReturn validates one return statement: every returned expression
// of ciphertext type must be nil, blinded by path state, or itself the
// result of a blinding call / tainted ident.
func (w *blindWalker) checkReturn(ret *ast.ReturnStmt, blinded bool) {
	if blinded {
		return
	}
	if len(ret.Results) == 0 {
		// Naked return with named ciphertext results in unblinded state.
		w.violations = append(w.violations, ret)
		return
	}
	info := w.r.pass.Pkg.Info
	for _, e := range ret.Results {
		tv, ok := info.Types[e]
		if !ok || !w.r.typeHasCiphertext(tv.Type, 0) {
			continue
		}
		if tv.IsNil() || w.exprBlinded(e) {
			continue
		}
		w.violations = append(w.violations, e)
	}
}

func (w *blindWalker) exprBlinded(e ast.Expr) bool {
	switch ex := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return w.r.isBlindingCall(ex)
	case *ast.Ident:
		obj := w.identObj(ex)
		return obj != nil && w.tainted[obj]
	case *ast.UnaryExpr:
		// &Ciphertext{c: x} with x tainted.
		if cl, ok := ex.X.(*ast.CompositeLit); ok {
			return w.compositeBlinded(cl)
		}
	case *ast.CompositeLit:
		return w.compositeBlinded(ex)
	}
	return false
}

func (w *blindWalker) compositeBlinded(cl *ast.CompositeLit) bool {
	for _, elt := range cl.Elts {
		v := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if id, ok := ast.Unparen(v).(*ast.Ident); ok {
			if obj := w.identObj(id); obj != nil && w.tainted[obj] {
				return true
			}
		}
	}
	return false
}

// rootIdent returns the base identifier of an lvalue chain
// (out, out[i], out.f, *p ...), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch ex := ast.Unparen(e).(type) {
		case *ast.Ident:
			return ex
		case *ast.IndexExpr:
			e = ex.X
		case *ast.SelectorExpr:
			e = ex.X
		case *ast.StarExpr:
			e = ex.X
		default:
			return nil
		}
	}
}
