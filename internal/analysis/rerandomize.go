package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RerandomizeAnalyzer enforces the paper's ciphertext-egress invariant
// (§III-B, and the PR 2 unblinded-row fix): every exported paillier
// function whose result is a ciphertext derived from homomorphic
// operations must reach a re-randomization (fresh r^n blinding) on every
// return path. Otherwise an output's randomness is only inherited from
// its inputs — and absent entirely for an all-zero weight row, which
// previously leaked the deterministic embedding of the bias.
//
// The check walks a package-local call graph: a function "derives" if it
// (or a package function it calls) performs homomorphic arithmetic, and a
// return path is "blinded" if a blinding call (freshBlinding / Blinding /
// Encrypt* / Rerandomize*) is definitely executed before it, or the
// returned expression itself comes from an always-blinding function. The
// per-path question is answered by a forward must-analysis over the
// shared CFG (cfg.go / dataflow.go): the blinded fact meets with AND at
// joins, so only blinding that dominates a return counts.
//
// Allowlisted: the low-level homomorphic primitives Add, AddPlain,
// MulScalar, and MulScalarInt64 (Eq. 1/2 building blocks whose contract
// puts blinding at the egress boundary, i.e. the kernel and protocol
// layers), and *Ref-suffixed differential-test reference implementations,
// which are documented as never leaving the model provider.
var RerandomizeAnalyzer = &Analyzer{
	Name: "rerandomize",
	Doc:  "exported paillier ciphertext producers must re-randomize on every return path",
	Run:  runRerandomize,
}

// blindingNames are the functions that introduce fresh r^n randomness (or
// are themselves the re-randomization operation). A call to any of these,
// resolved to the package under analysis, marks the path blinded.
var blindingNames = map[string]bool{
	"freshBlinding":       true,
	"encryptWithBlinding": true,
	"Blinding":            true,
	"blinding":            true,
	"BlindingTracked":     true,
	"Encrypt":             true,
	"EncryptTracked":      true,
	"EncryptWithBlinding": true,
	"EncryptZero":         true,
	"EncryptInt64":        true,
	"Rerandomize":         true,
	"RerandomizeWith":     true,
}

// homomorphicPrimitives are the exported Eq. 1/2 building blocks: they
// derive ciphertexts homomorphically by design and are exempt from the
// egress rule (their documented contract defers blinding to the caller).
var homomorphicPrimitives = map[string]bool{
	"Add":            true,
	"AddPlain":       true,
	"MulScalar":      true,
	"MulScalarInt64": true,
}

// bigIntHomomorphicOps are the math/big methods whose use on ring
// elements marks a function as homomorphically deriving: modular
// multiplication (Eq. 1), exponentiation (Eq. 2), and inversion
// (negative weights).
var bigIntHomomorphicOps = map[string]bool{
	"Mul":        true,
	"Exp":        true,
	"ModInverse": true,
}

type rerandomizer struct {
	pass  *Pass
	pkg   *types.Package
	decls map[*types.Func]*ast.FuncDecl
	// derives marks functions that perform (transitively) homomorphic
	// arithmetic; alwaysBlinds marks functions whose every non-nil
	// ciphertext return is blinded.
	derives      map[*types.Func]bool
	alwaysBlinds map[*types.Func]bool
}

func runRerandomize(pass *Pass) error {
	if pkgBase(pass.Pkg.Path) != "paillier" {
		return nil
	}
	r := &rerandomizer{
		pass:         pass,
		pkg:          pass.Pkg.Types,
		decls:        map[*types.Func]*ast.FuncDecl{},
		derives:      map[*types.Func]bool{},
		alwaysBlinds: map[*types.Func]bool{},
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				r.decls[obj] = fd
			}
		}
	}
	r.computeDerives()
	r.computeAlwaysBlinds()

	for obj, fd := range r.decls {
		name := obj.Name()
		if !fd.Name.IsExported() || !r.derives[obj] || !r.returnsCiphertext(obj) {
			continue
		}
		if blindingNames[name] || homomorphicPrimitives[name] || strings.HasSuffix(name, "Ref") {
			continue
		}
		for _, bad := range r.blindViolations(fd.Body) {
			r.pass.Reportf(bad.Pos(), "exported %s returns a homomorphically-derived ciphertext without re-randomization on this path: multiply in a fresh r^n blinding factor before the ciphertext leaves the model provider (paper §III-B)", name)
		}
	}
	return nil
}

// calleeObj resolves a call expression to its function object, or nil.
func (r *rerandomizer) calleeObj(call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := r.pass.Pkg.Info.Uses[f].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := r.pass.Pkg.Info.Uses[f.Sel].(*types.Func)
		return obj
	}
	return nil
}

// computeDerives marks functions performing homomorphic arithmetic,
// propagated transitively through package-local calls.
func (r *rerandomizer) computeDerives() {
	callers := map[*types.Func][]*types.Func{} // callee -> callers
	var work []*types.Func
	for obj, fd := range r.decls {
		seeded := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := r.calleeObj(call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			switch callee.Pkg().Path() {
			case r.pkg.Path():
				if homomorphicPrimitives[callee.Name()] {
					seeded = true
				}
				callers[callee] = append(callers[callee], obj)
			case "math/big":
				if bigIntHomomorphicOps[callee.Name()] {
					seeded = true
				}
			}
			return true
		})
		if seeded {
			r.derives[obj] = true
			work = append(work, obj)
		}
	}
	for len(work) > 0 {
		callee := work[len(work)-1]
		work = work[:len(work)-1]
		for _, caller := range callers[callee] {
			if !r.derives[caller] {
				r.derives[caller] = true
				work = append(work, caller)
			}
		}
	}
}

// computeAlwaysBlinds iterates to a fixpoint over ciphertext-returning
// package functions: a function always blinds when every return of a
// non-nil ciphertext happens in blinded path state (or returns the result
// of another always-blinding function). Growing the set can only make
// more functions pass, so iteration is monotone.
func (r *rerandomizer) computeAlwaysBlinds() {
	for changed := true; changed; {
		changed = false
		for obj, fd := range r.decls {
			if r.alwaysBlinds[obj] || !r.returnsCiphertext(obj) {
				continue
			}
			if len(r.blindViolations(fd.Body)) == 0 {
				r.alwaysBlinds[obj] = true
				changed = true
			}
		}
	}
}

// returnsCiphertext reports whether the function's result tuple contains
// the package's Ciphertext type (directly, behind pointers/slices/maps,
// or as a generic type argument).
func (r *rerandomizer) returnsCiphertext(obj *types.Func) bool {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if r.typeHasCiphertext(res.At(i).Type(), 0) {
			return true
		}
	}
	return false
}

func (r *rerandomizer) typeHasCiphertext(t types.Type, depth int) bool {
	if depth > 6 {
		return false
	}
	switch tt := t.(type) {
	case *types.Named:
		if obj := tt.Obj(); obj != nil && obj.Name() == "Ciphertext" && obj.Pkg() == r.pkg {
			return true
		}
		for i := 0; i < tt.TypeArgs().Len(); i++ {
			if r.typeHasCiphertext(tt.TypeArgs().At(i), depth+1) {
				return true
			}
		}
		return false
	case *types.Alias:
		return r.typeHasCiphertext(types.Unalias(tt), depth+1)
	case *types.Pointer:
		return r.typeHasCiphertext(tt.Elem(), depth+1)
	case *types.Slice:
		return r.typeHasCiphertext(tt.Elem(), depth+1)
	case *types.Array:
		return r.typeHasCiphertext(tt.Elem(), depth+1)
	case *types.Map:
		return r.typeHasCiphertext(tt.Elem(), depth+1)
	}
	return false
}

// isBlindingCall reports whether a call introduces fresh blinding: a
// blinding-named function of this package, or an always-blinding package
// function.
func (r *rerandomizer) isBlindingCall(call *ast.CallExpr) bool {
	callee := r.calleeObj(call)
	if callee == nil || callee.Pkg() != r.pkg {
		return false
	}
	return blindingNames[callee.Name()] || r.alwaysBlinds[callee]
}

// containsBlinding reports whether any call under n is a blinding call.
// The walk is scoped to one CFG node — a range header contributes only
// its ranged operand (the body lives in successor blocks) and a select
// dispatch contributes nothing — but it does descend into function
// literals: a closure argument (the parallelFor worker in EncryptTensor)
// executes within the call it is passed to, so its blinding blinds the
// path, exactly as the pre-CFG tree walker treated it.
func (r *rerandomizer) containsBlinding(n ast.Node) bool {
	if n == nil {
		return false
	}
	switch nn := n.(type) {
	case *ast.RangeStmt:
		return r.containsBlinding(nn.X)
	case *ast.SelectStmt:
		return false
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		if call, ok := c.(*ast.CallExpr); ok && r.isBlindingCall(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// blindFlow is the per-function "definitely blinded before return"
// analysis, phrased as a forward must-analysis over the shared CFG: the
// fact is a single boolean (has a blinding call definitely executed?),
// seeded false at entry, meeting with AND at joins. Loop back-edges
// therefore cannot leak body-only blinding past the loop (the
// zero-iteration path wins the meet), and blinding inside only one arm
// of a branch does not survive the join — exactly the old tree-walker
// semantics, now derived from real control-flow edges.
type blindFlow struct {
	r *rerandomizer
	// tainted holds idents bound to blinded ciphertexts, computed by a
	// flow-insensitive fixpoint over the body's assignments before the
	// path analysis runs.
	tainted map[types.Object]bool
	// violations are the returned expressions (or return statements) that
	// may carry an unblinded derived ciphertext.
	violations []ast.Node
}

// blindViolations runs the must-blinded analysis over one function body
// and returns the unblinded-return nodes.
func (r *rerandomizer) blindViolations(body *ast.BlockStmt) []ast.Node {
	cfg := BuildCFG(body)
	if cfg == nil {
		return nil
	}
	f := &blindFlow{r: r, tainted: map[types.Object]bool{}}
	f.computeTaint(body)

	res := SolveForward(cfg, false,
		func(b *Block, in bool) bool {
			for _, n := range b.Nodes {
				in = f.transfer(n, in)
			}
			return in
		},
		func(a, b bool) bool { return a && b },
		func(a, b bool) bool { return a == b },
	)
	// Replay each reachable block from its entry fact to check the return
	// statements with the state holding exactly there.
	for _, b := range cfg.Blocks {
		in, reachable := res.In[b]
		if !reachable {
			continue
		}
		for _, n := range b.Nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				f.checkReturn(ret, in)
			}
			in = f.transfer(n, in)
		}
	}
	return f.violations
}

// transfer applies one CFG node to the blinded fact.
func (f *blindFlow) transfer(n ast.Node, blinded bool) bool {
	switch n.(type) {
	case *ast.ReturnStmt:
		// Checked separately; evaluating the results does not blind.
		return blinded
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred/concurrent blinding cannot blind the value a return
		// statement has already evaluated: no state change.
		return blinded
	}
	if f.r.containsBlinding(n) {
		return true
	}
	return blinded
}

// computeTaint marks idents assigned from blinding calls (or from
// already-tainted idents, or appends of tainted values) as holding
// blinded ciphertexts, iterated to a fixpoint so chains of assignments
// converge regardless of source order. Assignment into an element of a
// composite (out[i] = ct) propagates to the root ident.
func (f *blindFlow) computeTaint(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(st.Rhs) != 1 || !f.rhsBlinded(st.Rhs[0]) {
				return true
			}
			for _, lhs := range st.Lhs {
				if root := rootIdent(lhs); root != nil {
					if obj := f.identObj(root); obj != nil && !f.tainted[obj] {
						f.tainted[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
}

func (f *blindFlow) rhsBlinded(e ast.Expr) bool {
	switch ex := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if f.r.isBlindingCall(ex) {
			return true
		}
		// append(xs, ct, ...) propagates taint: accumulating blinded
		// ciphertexts into a slice keeps the slice blinded.
		if id, ok := ast.Unparen(ex.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := f.identObj(id).(*types.Builtin); isBuiltin {
				for _, arg := range ex.Args {
					if f.exprBlinded(arg) {
						return true
					}
				}
			}
		}
		return false
	case *ast.Ident:
		obj := f.identObj(ex)
		return obj != nil && f.tainted[obj]
	}
	return false
}

func (f *blindFlow) identObj(id *ast.Ident) types.Object {
	info := f.r.pass.Pkg.Info
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// checkReturn validates one return statement: every returned expression
// of ciphertext type must be nil, blinded by path state, or itself the
// result of a blinding call / tainted ident.
func (f *blindFlow) checkReturn(ret *ast.ReturnStmt, blinded bool) {
	if blinded {
		return
	}
	if len(ret.Results) == 0 {
		// Naked return with named ciphertext results in unblinded state.
		f.violations = append(f.violations, ret)
		return
	}
	info := f.r.pass.Pkg.Info
	for _, e := range ret.Results {
		tv, ok := info.Types[e]
		if !ok || !f.r.typeHasCiphertext(tv.Type, 0) {
			continue
		}
		if tv.IsNil() || f.exprBlinded(e) {
			continue
		}
		f.violations = append(f.violations, e)
	}
}

func (f *blindFlow) exprBlinded(e ast.Expr) bool {
	switch ex := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return f.r.isBlindingCall(ex)
	case *ast.Ident:
		obj := f.identObj(ex)
		return obj != nil && f.tainted[obj]
	case *ast.UnaryExpr:
		// &Ciphertext{c: x} with x tainted.
		if cl, ok := ex.X.(*ast.CompositeLit); ok {
			return f.compositeBlinded(cl)
		}
	case *ast.CompositeLit:
		return f.compositeBlinded(ex)
	}
	return false
}

func (f *blindFlow) compositeBlinded(cl *ast.CompositeLit) bool {
	for _, elt := range cl.Elts {
		v := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v = kv.Value
		}
		if id, ok := ast.Unparen(v).(*ast.Ident); ok {
			if obj := f.identObj(id); obj != nil && f.tainted[obj] {
				return true
			}
		}
	}
	return false
}

// rootIdent returns the base identifier of an lvalue chain
// (out, out[i], out.f, *p ...), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch ex := ast.Unparen(e).(type) {
		case *ast.Ident:
			return ex
		case *ast.IndexExpr:
			e = ex.X
		case *ast.SelectorExpr:
			e = ex.X
		case *ast.StarExpr:
			e = ex.X
		default:
			return nil
		}
	}
}
