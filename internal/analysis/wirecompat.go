package analysis

import (
	"fmt"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// WirecompatConfig parameterizes the wire-schema compatibility analyzer.
type WirecompatConfig struct {
	// LockPath is the committed golden-schema file.
	LockPath string
	// Structs maps package import paths to the gob wire structs whose
	// exported fields are locked.
	Structs map[string][]string
	// Update regenerates the lock from the current tree instead of
	// diffing against it.
	Update bool
}

// DefaultWireLockPath is the module-relative location of the committed
// wire schema.
const DefaultWireLockPath = "internal/protocol/wire.lock"

// DefaultWireStructs lists every gob struct that crosses a process
// boundary: the protocol session frames (internal/protocol/wire.go and
// service.go), the stream layer's TCP frame and trace records, the
// persisted Paillier key format, and the persisted model format.
func DefaultWireStructs() map[string][]string {
	return map[string][]string{
		"ppstream/internal/protocol": {"Hello", "roundFrame", "TraceContext", "WireSpan", "WireCost", "WireEnvelope"},
		"ppstream/internal/stream":   {"Message", "Span", "Trace", "wireFrame"},
		"ppstream/internal/paillier": {"wireKey"},
		"ppstream/internal/nn":       {"tensorBlob", "layerBlob", "networkBlob"},
	}
}

// wireField is one locked (package, struct, field, type) entry.
type wireField struct {
	Pkg, Struct, Field, Type string
}

func (f wireField) key() string { return f.Pkg + " " + f.Struct + " " + f.Field }

// NewWirecompatAnalyzer builds the wire-schema analyzer.
//
// Invariant: the gob wire format must evolve additively. Old peers decode
// frames with unknown fields skipped and missing fields zero, so ADDING a
// field keeps both directions interoperating — but REMOVING or RETYPING
// one silently breaks every deployed peer (gob fails or, worse, decodes
// garbage). The analyzer extracts the exported field sets of the wire
// structs and diffs them against the committed lock; pplint -update
// regenerates the lock when an additive change lands.
func NewWirecompatAnalyzer(cfg WirecompatConfig) *Analyzer {
	state := &wirecompatState{
		cfg:      cfg,
		current:  map[string]wireField{},
		fieldPos: map[string]token.Position{},
		visited:  map[string]bool{},
	}
	return &Analyzer{
		Name:   "wirecompat",
		Doc:    "gob wire structs must evolve additively against the committed wire.lock schema",
		Run:    state.run,
		Finish: state.finish,
	}
}

type wirecompatState struct {
	cfg      WirecompatConfig
	current  map[string]wireField      // key() -> entry
	fieldPos map[string]token.Position // key() -> source position
	visited  map[string]bool           // package paths seen this run
}

func (s *wirecompatState) run(pass *Pass) error {
	names, ok := s.cfg.Structs[pass.Pkg.Path]
	if !ok {
		return nil
	}
	s.visited[pass.Pkg.Path] = true
	scope := pass.Pkg.Types.Scope()
	for _, name := range names {
		obj := scope.Lookup(name)
		if obj == nil {
			pass.Reportf(pass.Pkg.Files[0].Pos(), "wire struct %s not found in %s: if it was renamed or removed, the wire format is no longer decodable by old peers", name, pass.Pkg.Path)
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(obj.Pos(), "wire type %s is no longer a struct", name)
			continue
		}
		qual := types.RelativeTo(pass.Pkg.Types)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue // gob only encodes exported fields
			}
			entry := wireField{
				Pkg:    pass.Pkg.Path,
				Struct: name,
				Field:  f.Name(),
				Type:   types.TypeString(f.Type(), qual),
			}
			s.current[entry.key()] = entry
			s.fieldPos[entry.key()] = pass.Pkg.Fset.Position(f.Pos())
		}
	}
	return nil
}

func (s *wirecompatState) finish(report func(Diagnostic)) error {
	if s.cfg.Update {
		return s.writeLock()
	}
	locked, lockLines, err := readLock(s.cfg.LockPath)
	if err != nil {
		if os.IsNotExist(err) {
			report(Diagnostic{
				Pos:  token.Position{Filename: s.cfg.LockPath, Line: 1},
				Rule: "wirecompat",
				Msg:  "wire schema lock missing: run pplint -update to generate it",
			})
			return nil
		}
		return err
	}
	for _, entry := range locked {
		if !s.visited[entry.Pkg] {
			continue // package outside this run's patterns
		}
		cur, ok := s.current[entry.key()]
		if !ok {
			report(Diagnostic{
				Pos:  token.Position{Filename: s.cfg.LockPath, Line: lockLines[entry.key()]},
				Rule: "wirecompat",
				Msg:  fmt.Sprintf("wire field %s.%s (%s) was removed: the gob wire format must evolve additively — old peers still send/expect it (run pplint -update only for intentional, coordinated breaks)", entry.Struct, entry.Field, entry.Type),
			})
			continue
		}
		if cur.Type != entry.Type {
			report(Diagnostic{
				Pos:  s.fieldPos[entry.key()],
				Rule: "wirecompat",
				Msg:  fmt.Sprintf("wire field %s.%s retyped from %s to %s: gob decodes this as garbage or an error on old peers — add a new field instead", entry.Struct, entry.Field, entry.Type, cur.Type),
			})
		}
	}
	return nil
}

const lockHeader = `# pplint wirecompat schema lock — generated by "pplint -update"; do not edit.
# One line per exported field of every gob wire struct:
#   <package> <struct> <field> <type>
# Removing or retyping a locked field fails pplint: the wire format must
# evolve additively so old peers keep interoperating.
`

func (s *wirecompatState) writeLock() error {
	keys := make([]string, 0, len(s.current))
	for k := range s.current {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(lockHeader)
	for _, k := range keys {
		e := s.current[k]
		fmt.Fprintf(&b, "%s %s %s %s\n", e.Pkg, e.Struct, e.Field, e.Type)
	}
	return os.WriteFile(s.cfg.LockPath, []byte(b.String()), 0o644)
}

// readLock parses the lock file into entries plus each entry's line
// number for diagnostics.
func readLock(path string) ([]wireField, map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var entries []wireField
	lines := map[string]int{}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) < 4 {
			return nil, nil, fmt.Errorf("analysis: %s:%d: malformed lock entry %q", path, i+1, line)
		}
		e := wireField{Pkg: parts[0], Struct: parts[1], Field: parts[2], Type: strings.Join(parts[3:], " ")}
		entries = append(entries, e)
		lines[e.key()] = i + 1
	}
	return entries, lines, nil
}
