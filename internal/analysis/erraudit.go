package analysis

import (
	"go/ast"
	"go/types"
)

// ErrauditAnalyzer flags discarded error returns on the crypto and wire
// layers: gob Encode/Decode (a dropped encode error desynchronizes the
// gob stream and every later frame misparses), net.Conn writes (a lost
// frame with no error surfaces as a protocol hang), and crypto/rand
// reads (a failed read silently downgrades randomness to zeros). Only
// fully discarded results (expression statements, go/defer) are flagged;
// an explicit `_ =` assignment is a visible decision and the per-line
// //pplint:ignore directive documents intentional cases.
var ErrauditAnalyzer = &Analyzer{
	Name: "erraudit",
	Doc:  "unchecked errors from gob Encode/Decode, net.Conn writes, and rand.Read",
	Run:  runErraudit,
}

func runErraudit(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.GoStmt:
				call = st.Call
			case *ast.DeferStmt:
				call = st.Call
			default:
				return true
			}
			if call == nil {
				return true
			}
			if kind := auditedCall(pass.Pkg.Info, call); kind != "" {
				pass.Reportf(call.Pos(), "unchecked error from %s: a silent failure here desynchronizes the wire stream or degrades randomness — handle the error or discard it explicitly", kind)
			}
			return true
		})
	}
	return nil
}

// auditedCall classifies a call as one of the audited error sources,
// returning a human-readable name or "".
func auditedCall(info *types.Info, call *ast.CallExpr) string {
	var obj types.Object
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	default:
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "encoding/gob":
		switch name {
		case "Encode", "EncodeValue", "Decode", "DecodeValue":
			return "gob." + name
		}
	case "net":
		if name == "Write" {
			return "net.Conn.Write"
		}
	case "crypto/rand", "math/rand", "math/rand/v2":
		if name == "Read" {
			return "rand.Read"
		}
	}
	return ""
}
