package analysis

import (
	"go/ast"
	"go/types"
)

// Shared plumbing for the concurrency/lifecycle analyzers (lockscope,
// pairedrelease, goroleak, ctxdeadline): package scoping and call
// resolution against go/types.

// concurrencyCriticalPackages are the long-lived, deeply concurrent
// packages of the serving plane: multiplexed sessions and shedding
// (protocol), the pipeline/dispatcher runtime (stream), the lock-free
// metrics hot path (obs), and the engine lifecycle (core). The
// concurrency analyzers scope to these; elsewhere short-lived or
// single-goroutine code would drown the signal in noise.
var concurrencyCriticalPackages = map[string]bool{
	"protocol": true,
	"stream":   true,
	"obs":      true,
	"core":     true,
}

// calleeFunc resolves a call to its *types.Func (function, method, or
// interface method), or nil for builtins, conversions, and indirect
// calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := info.Uses[f].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := info.Uses[f.Sel].(*types.Func)
		return obj
	}
	return nil
}

// calleePkgPath returns the import path of a call's callee, or "".
func calleePkgPath(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// callReceiver returns the receiver expression of a method-shaped call
// (the x in x.m(...) / x.y.m(...)), or nil for plain function calls.
func callReceiver(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// typeOf returns the type of e, or nil when untypeable.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isChanType reports whether t's core type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// selectHasDefault reports whether a select statement carries a default
// clause (making the dispatch non-blocking).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
