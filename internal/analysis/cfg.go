package analysis

import (
	"go/ast"
	"go/token"
)

// This file is the shared intraprocedural control-flow-graph builder the
// dataflow analyzers (rerandomize, lockscope, pairedrelease) run on. A
// CFG decomposes one function body into basic blocks of *leaf* nodes —
// simple statements and the control expressions of compound statements —
// connected by the edges execution can actually take, including loop
// back-edges, break/continue/goto, switch/select dispatch, and panics.
// Analyses then solve forward or backward fixpoints over the graph (see
// dataflow.go) instead of re-deriving control flow from the statement
// tree in every analyzer.
//
// Node granularity: a block's Nodes are executed in order and are either
// leaf statements (assignments, sends, expression statements, defers, go
// statements, returns) or the governing expressions of compound
// statements (an if/for condition, a switch tag, a range operand, or the
// *ast.SelectStmt itself, which models the blocking dispatch point).
// Compound statements never appear as nodes with their bodies attached —
// bodies are split into successor blocks — so an analysis may inspect a
// node without double-visiting code, provided it uses InspectNode (which
// knows not to descend into the few compound nodes and skips nested
// function literals).

// Block is one basic block: nodes executed strictly in order, with
// control transferring to exactly one successor afterwards.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is one function body's control-flow graph. Entry starts the body;
// Exit is the single synthetic block every return, panic, and
// fall-off-the-end path reaches. Defers collects the function's defer
// statements, which conceptually run between any path's last block and
// Exit (in reverse order, if ever reached).
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	Defers []*ast.DeferStmt

	// SelectComm marks statements that are a select case's communication
	// clause: they execute only once the select has already committed, so
	// they are not independently blocking operations.
	SelectComm map[ast.Stmt]bool
	// Branches maps an if condition node to its then/else successor
	// blocks — the hook path-sensitive analyses use to refine facts along
	// one side of a branch (e.g. the err != nil arm after an acquire).
	Branches map[ast.Expr]*CondBranch
}

// CondBranch is the pair of successors of an if condition.
type CondBranch struct {
	Then *Block
	// Else is the explicit else branch, or the join block control falls
	// through to when the condition is false.
	Else *Block
}

// BuildCFG constructs the control-flow graph of one function body.
// Returns nil for bodyless declarations.
func BuildCFG(body *ast.BlockStmt) *CFG {
	if body == nil {
		return nil
	}
	b := &cfgBuilder{
		cfg: &CFG{
			SelectComm: map[ast.Stmt]bool{},
			Branches:   map[ast.Expr]*CondBranch{},
		},
		labels: map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	end := b.stmts(body.List, b.cfg.Entry)
	if end != nil {
		b.edge(end, b.cfg.Exit)
	}
	for _, g := range b.pendingGotos {
		if target := b.labels[g.label]; target != nil {
			b.edge(g.from, target)
		} else {
			// Unresolvable goto (should not parse): conservatively exits.
			b.edge(g.from, b.cfg.Exit)
		}
	}
	return b.cfg
}

// loopScope is one enclosing breakable/continuable construct.
type loopScope struct {
	label        string
	breakTo      *Block
	continueTo   *Block // nil for switch/select scopes
	isSwitchLike bool
}

type pendingGoto struct {
	from  *Block
	label string
}

type cfgBuilder struct {
	cfg          *CFG
	scopes       []loopScope
	labels       map[string]*Block
	pendingGotos []pendingGoto
	// pendingLabel is the label attached to the next loop/switch/select
	// statement (labeled break/continue target).
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// ensure returns cur, or a fresh unreachable block when control cannot
// reach here (dead code still gets blocks, with no predecessors).
func (b *cfgBuilder) ensure(cur *Block) *Block {
	if cur == nil {
		return b.newBlock()
	}
	return cur
}

// stmts threads a statement list through the graph and returns the block
// control falls out of (nil when every path terminated).
func (b *cfgBuilder) stmts(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		cur = b.stmt(s, cur)
	}
	return cur
}

// takeLabel consumes the pending label for a labeled loop/switch/select.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findScope resolves a break/continue to its target scope.
func (b *cfgBuilder) findScope(label string, forContinue bool) *loopScope {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := &b.scopes[i]
		if label != "" && sc.label != label {
			continue
		}
		if forContinue && sc.continueTo == nil {
			continue
		}
		return sc
	}
	return nil
}

func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	switch st := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(st.List, b.ensure(cur))

	case *ast.LabeledStmt:
		// The label targets the statement it annotates: a fresh block so a
		// goto (or labeled continue) has a join point to land on.
		target := b.newBlock()
		if cur != nil {
			b.edge(cur, target)
		}
		b.labels[st.Label.Name] = target
		switch st.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = st.Label.Name
		}
		return b.stmt(st.Stmt, target)

	case *ast.ReturnStmt:
		cur = b.ensure(cur)
		cur.Nodes = append(cur.Nodes, st)
		b.edge(cur, b.cfg.Exit)
		return nil

	case *ast.BranchStmt:
		cur = b.ensure(cur)
		label := ""
		if st.Label != nil {
			label = st.Label.Name
		}
		switch st.Tok {
		case token.BREAK:
			if sc := b.findScope(label, false); sc != nil {
				b.edge(cur, sc.breakTo)
			} else {
				b.edge(cur, b.cfg.Exit)
			}
		case token.CONTINUE:
			if sc := b.findScope(label, true); sc != nil {
				b.edge(cur, sc.continueTo)
			} else {
				b.edge(cur, b.cfg.Exit)
			}
		case token.GOTO:
			b.pendingGotos = append(b.pendingGotos, pendingGoto{from: cur, label: label})
		case token.FALLTHROUGH:
			// Handled structurally by the switch builder; a stray
			// fallthrough terminates the block.
		}
		return nil

	case *ast.IfStmt:
		cur = b.ensure(cur)
		if st.Init != nil {
			cur = b.ensure(b.stmt(st.Init, cur))
		}
		cur.Nodes = append(cur.Nodes, st.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenEnd := b.stmts(st.Body.List, thenB)
		var elseEnd *Block
		branch := &CondBranch{Then: thenB}
		if st.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			branch.Else = elseB
			elseEnd = b.stmt(st.Else, elseB)
		} else {
			// Fall-through on a false condition: the join block doubles as
			// the else target.
			elseEnd = cur
		}
		b.cfg.Branches[st.Cond] = branch
		if thenEnd == nil && st.Else != nil && elseEnd == nil {
			return nil
		}
		join := b.newBlock()
		if thenEnd != nil {
			b.edge(thenEnd, join)
		}
		if elseEnd != nil {
			b.edge(elseEnd, join)
		}
		if branch.Else == nil {
			branch.Else = join
		}
		return join

	case *ast.ForStmt:
		cur = b.ensure(cur)
		label := b.takeLabel()
		if st.Init != nil {
			cur = b.ensure(b.stmt(st.Init, cur))
		}
		header := b.newBlock()
		b.edge(cur, header)
		exitB := b.newBlock()
		if st.Cond != nil {
			header.Nodes = append(header.Nodes, st.Cond)
			b.edge(header, exitB)
		}
		continueTo := header
		var postB *Block
		if st.Post != nil {
			postB = b.newBlock()
			b.stmt(st.Post, postB)
			b.edge(postB, header)
			continueTo = postB
		}
		bodyB := b.newBlock()
		b.edge(header, bodyB)
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: exitB, continueTo: continueTo})
		bodyEnd := b.stmts(st.Body.List, bodyB)
		b.scopes = b.scopes[:len(b.scopes)-1]
		if bodyEnd != nil {
			b.edge(bodyEnd, continueTo)
		}
		return exitB

	case *ast.RangeStmt:
		cur = b.ensure(cur)
		label := b.takeLabel()
		header := b.newBlock()
		b.edge(cur, header)
		// The whole RangeStmt is the header node: analyses see the ranged
		// operand (a blocking receive when it is a channel) via
		// InspectNode, which does not descend into the body.
		header.Nodes = append(header.Nodes, st)
		exitB := b.newBlock()
		b.edge(header, exitB)
		bodyB := b.newBlock()
		b.edge(header, bodyB)
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: exitB, continueTo: header})
		bodyEnd := b.stmts(st.Body.List, bodyB)
		b.scopes = b.scopes[:len(b.scopes)-1]
		if bodyEnd != nil {
			b.edge(bodyEnd, header)
		}
		return exitB

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		cur = b.ensure(cur)
		label := b.takeLabel()
		var clauses []ast.Stmt
		switch sw := st.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				cur = b.ensure(b.stmt(sw.Init, cur))
			}
			if sw.Tag != nil {
				cur.Nodes = append(cur.Nodes, sw.Tag)
			}
			clauses = sw.Body.List
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				cur = b.ensure(b.stmt(sw.Init, cur))
			}
			cur.Nodes = append(cur.Nodes, sw.Assign)
			clauses = sw.Body.List
		}
		exitB := b.newBlock()
		hasDefault := false
		// Two passes so fallthrough can edge into the next case body.
		caseBlocks := make([]*Block, len(clauses))
		for i := range clauses {
			caseBlocks[i] = b.newBlock()
			b.edge(cur, caseBlocks[i])
		}
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: exitB, isSwitchLike: true})
		for i, c := range clauses {
			cc, ok := c.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				caseBlocks[i].Nodes = append(caseBlocks[i].Nodes, e)
			}
			body := cc.Body
			fallsThrough := false
			if n := len(body); n > 0 {
				if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					body = body[:n-1]
					fallsThrough = true
				}
			}
			end := b.stmts(body, caseBlocks[i])
			if end != nil {
				if fallsThrough && i+1 < len(caseBlocks) {
					b.edge(end, caseBlocks[i+1])
				} else {
					b.edge(end, exitB)
				}
			}
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		if !hasDefault {
			b.edge(cur, exitB)
		}
		return exitB

	case *ast.SelectStmt:
		cur = b.ensure(cur)
		label := b.takeLabel()
		// The SelectStmt itself is the dispatch node: with no default
		// clause it is a blocking point.
		cur.Nodes = append(cur.Nodes, st)
		exitB := b.newBlock()
		b.scopes = append(b.scopes, loopScope{label: label, breakTo: exitB, isSwitchLike: true})
		for _, c := range st.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			caseB := b.newBlock()
			b.edge(cur, caseB)
			if cc.Comm != nil {
				caseB.Nodes = append(caseB.Nodes, cc.Comm)
				b.cfg.SelectComm[cc.Comm] = true
			}
			if end := b.stmts(cc.Body, caseB); end != nil {
				b.edge(end, exitB)
			}
		}
		b.scopes = b.scopes[:len(b.scopes)-1]
		return exitB

	case *ast.DeferStmt:
		cur = b.ensure(cur)
		cur.Nodes = append(cur.Nodes, st)
		b.cfg.Defers = append(b.cfg.Defers, st)
		return cur

	default:
		cur = b.ensure(cur)
		cur.Nodes = append(cur.Nodes, s)
		if isTerminating(s) {
			b.edge(cur, b.cfg.Exit)
			return nil
		}
		return cur
	}
}

// isTerminating recognizes statements control never flows past: panic
// and os.Exit calls.
func isTerminating(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			return (pkg.Name == "os" && fn.Sel.Name == "Exit") ||
				(pkg.Name == "runtime" && fn.Sel.Name == "Goexit")
		}
	}
	return false
}

// InspectNode walks one CFG node the way analyses must: nested function
// literals are skipped (their bodies are separate functions), and the
// two compound node kinds a block may carry — a RangeStmt header and a
// SelectStmt dispatch — expose only their governing parts, never the
// bodies that live in successor blocks.
func InspectNode(n ast.Node, f func(ast.Node) bool) {
	switch nn := n.(type) {
	case *ast.RangeStmt:
		if !f(n) {
			return
		}
		if nn.Key != nil {
			InspectNode(nn.Key, f)
		}
		if nn.Value != nil {
			InspectNode(nn.Value, f)
		}
		InspectNode(nn.X, f)
		return
	case *ast.SelectStmt:
		// The dispatch point has no sub-expressions of its own; the comm
		// clauses are nodes of the case blocks.
		f(n)
		return
	}
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		return f(c)
	})
}

// funcUnit is one analyzable function: a declaration or a function
// literal, with the body the CFG is built from.
type funcUnit struct {
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	body *ast.BlockStmt
}

func (u funcUnit) name() string {
	if u.decl != nil {
		return u.decl.Name.Name
	}
	return "func literal"
}

// funcType returns the unit's type expression (for parameter scans).
func (u funcUnit) funcType() *ast.FuncType {
	if u.decl != nil {
		return u.decl.Type
	}
	return u.lit.Type
}

// funcUnits lists every function declaration and function literal in the
// file, each with its own body: analyses treat literals as independent
// functions (their control flow is not the enclosing function's).
func funcUnits(file *ast.File) []funcUnit {
	var units []funcUnit
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				units = append(units, funcUnit{decl: fn, body: fn.Body})
			}
		case *ast.FuncLit:
			units = append(units, funcUnit{lit: fn, body: fn.Body})
		}
		return true
	})
	return units
}
