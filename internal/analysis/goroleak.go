package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// GoroleakAnalyzer requires every `go` statement in the long-lived
// serving-plane packages to have a recognizable shutdown edge. A
// goroutine looping on channel work with no exit path is how the
// pre-PR 7 dispatcher hung: its reader exited only when the results
// channel closed, so a failed pipeline left Submit blocked on the window
// and Close blocked on Submit, forever. At production concurrency every
// leaked goroutine also pins its request state for the process lifetime.
//
// A goroutine passes when its body (a function literal, or a
// same-package function the `go` statement calls) satisfies any of:
//
//   - it contains no loop: straight-line goroutines terminate on their
//     own (e.g. a one-shot bounded send or a delegated Close);
//   - it selects on / receives from ctx.Done() or a done-like channel
//     (done/stop/quit/exit/close/down/kill, or any chan struct{});
//   - it registers with a sync.WaitGroup via Done (some Close/Shutdown
//     waits on it);
//   - it ranges over a channel, or uses a comma-ok receive (both
//     terminate when the producer closes the channel);
//   - inside its loop it calls something that takes a context, the
//     conventional deadline-or-cancel exit (ctxdeadline keeps those
//     callees honest);
//   - the `go` call itself receives a context argument (the callee's
//     ctx handling is checked where the callee is defined).
//
// Goroutines running functions defined outside the package (e.g.
// http.Server.Serve) are not analyzable here and are trusted — their
// shutdown contract lives with whoever owns the value.
var GoroleakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement in long-lived packages needs a shutdown edge (done/ctx select, WaitGroup, channel close, or bounded work)",
	Run:  runGoroleak,
}

var doneChanName = regexp.MustCompile(`(?i)(done|stop|quit|exit|close|down|kill)`)

func runGoroleak(pass *Pass) error {
	if !concurrencyCriticalPackages[pkgBase(pass.Pkg.Path)] {
		return nil
	}
	// Same-package function bodies, for `go pkgFunc(...)` / `go x.m(...)`
	// where the method is declared in this package.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, decls, gs)
			return true
		})
	}
	return nil
}

func checkGoStmt(pass *Pass, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) {
	info := pass.Pkg.Info
	// A context handed to the goroutine is its shutdown edge.
	for _, arg := range gs.Call.Args {
		if isContextType(typeOf(info, arg)) {
			return
		}
	}
	var body *ast.BlockStmt
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		fn := calleeFunc(info, gs.Call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Types.Path() {
			return // external or indirect: not analyzable here
		}
		if fd := decls[fn]; fd != nil {
			body = fd.Body
		}
	}
	if body == nil {
		return
	}
	if !hasLoop(body) {
		return // straight-line goroutine: terminates on its own
	}
	if hasShutdownEdge(info, body) {
		return
	}
	pass.Reportf(gs.Pos(), "goroutine loops with no shutdown edge: no done/ctx select, WaitGroup registration, channel-close exit, or ctx-taking call in the loop — a failed peer strands it forever and Close hangs behind it (the pre-PR 7 dispatcher reader bug); add a select on a done channel or thread a context through")
}

// hasLoop reports whether the body contains any for/range loop, nested
// function literals excluded.
func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// hasShutdownEdge scans the goroutine body (excluding nested function
// literals) for any recognized exit mechanism.
func hasShutdownEdge(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch nn := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if nn.Op == token.ARROW && isDoneChannel(info, nn.X) {
				found = true
			}
		case *ast.RangeStmt:
			if isChanType(typeOf(info, nn.X)) {
				found = true
			}
		case *ast.AssignStmt:
			// Comma-ok receive: `v, ok := <-ch` exits via channel close.
			if len(nn.Lhs) == 2 && len(nn.Rhs) == 1 {
				if ue, ok := ast.Unparen(nn.Rhs[0]).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
					found = true
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, nn)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
				found = true // WaitGroup registration
				return false
			}
			for _, arg := range nn.Args {
				if isContextType(typeOf(info, arg)) {
					found = true // ctx threaded into loop work
					return false
				}
			}
		}
		return !found
	})
	return found
}

// isDoneChannel recognizes shutdown channels: ctx.Done() (any
// zero-argument Done() call), a done-like identifier/selector name, or
// any chan struct{} (the conventional signal-only type).
func isDoneChannel(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" && len(call.Args) == 0 {
			return true
		}
		return false
	}
	name := ""
	switch ee := e.(type) {
	case *ast.Ident:
		name = ee.Name
	case *ast.SelectorExpr:
		name = ee.Sel.Name
	}
	if name != "" && doneChanName.MatchString(name) {
		return true
	}
	if t := typeOf(info, e); t != nil {
		if ch, ok := t.Underlying().(*types.Chan); ok {
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true
			}
		}
	}
	return false
}
