package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// Direct unit tests for the CFG builder and the generic dataflow
// solvers: the fixture tests exercise them through the analyzers, these
// pin the structural properties the analyzers rely on.

// parseFuncBody parses `src` as the body of a function and builds its
// CFG.
func parseFuncBody(t *testing.T, src string) *CFG {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", file, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	cfg := BuildCFG(fd.Body)
	if cfg == nil {
		t.Fatal("BuildCFG returned nil for non-nil body")
	}
	return cfg
}

// reachable walks Succs from Entry.
func reachable(cfg *CFG) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(cfg.Entry)
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	cfg := parseFuncBody(t, "x := 1\n_ = x\nreturn")
	if !reachable(cfg)[cfg.Exit] {
		t.Fatal("exit unreachable in straight-line function")
	}
	if len(cfg.Entry.Nodes) != 3 {
		t.Fatalf("entry block has %d nodes, want 3", len(cfg.Entry.Nodes))
	}
}

func TestCFGIfBranchesRecorded(t *testing.T) {
	cfg := parseFuncBody(t, "x := 1\nif x > 0 {\n x = 2\n} else {\n x = 3\n}\n_ = x")
	if len(cfg.Branches) != 1 {
		t.Fatalf("recorded %d branches, want 1", len(cfg.Branches))
	}
	for _, br := range cfg.Branches {
		if br.Then == nil || br.Else == nil {
			t.Fatalf("branch with nil arm: %+v", br)
		}
		if br.Then == br.Else {
			t.Fatal("then and else resolve to the same block")
		}
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	cfg := parseFuncBody(t, "for i := 0; i < 3; i++ {\n _ = i\n}")
	// Some block reachable from entry must have a back edge (a successor
	// already on the path): detect any cycle among reachable blocks.
	seen := reachable(cfg)
	cycle := false
	var walk func(*Block, map[*Block]bool)
	walk = func(cur *Block, onPath map[*Block]bool) {
		if cycle {
			return
		}
		if onPath[cur] {
			cycle = true
			return
		}
		onPath[cur] = true
		for _, s := range cur.Succs {
			walk(s, onPath)
		}
		delete(onPath, cur)
	}
	walk(cfg.Entry, map[*Block]bool{})
	if !cycle {
		t.Fatal("for loop produced an acyclic CFG")
	}
	if !seen[cfg.Exit] {
		t.Fatal("bounded loop cannot reach exit")
	}
}

func TestCFGDeadCodeUnreachable(t *testing.T) {
	cfg := parseFuncBody(t, "return\nx := 1\n_ = x")
	seen := reachable(cfg)
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && seen[b] {
				t.Fatalf("dead assignment %v reachable", as)
			}
		}
	}
}

func TestCFGSelectCommMarked(t *testing.T) {
	cfg := parseFuncBody(t, "ch := make(chan int, 1)\ndone := make(chan int)\nselect {\ncase v := <-ch:\n _ = v\ncase done <- 1:\n}")
	if len(cfg.SelectComm) != 2 {
		t.Fatalf("marked %d select comm statements, want 2", len(cfg.SelectComm))
	}
	// The select dispatch node itself must sit in some block.
	found := false
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.SelectStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("select dispatch node missing from CFG")
	}
}

func TestCFGPanicTerminates(t *testing.T) {
	cfg := parseFuncBody(t, "x := 1\nif x > 0 {\n panic(\"boom\")\n}\n_ = x")
	// The node after the if must be reachable only via the non-panicking
	// arm; the panic block must edge straight to exit.
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if len(b.Succs) != 1 || b.Succs[0] != cfg.Exit {
						t.Fatalf("panic block succs = %v, want exit only", b.Succs)
					}
				}
			}
		}
	}
}

func TestCFGDefersCollected(t *testing.T) {
	cfg := parseFuncBody(t, "defer func() {}()\nif true {\n defer func() {}()\n}")
	if len(cfg.Defers) != 2 {
		t.Fatalf("collected %d defers, want 2", len(cfg.Defers))
	}
}

func TestCFGLabeledBreakContinue(t *testing.T) {
	cfg := parseFuncBody(t, `
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 {
				continue outer
			}
			if j == 2 {
				break outer
			}
		}
	}
	return`)
	if !reachable(cfg)[cfg.Exit] {
		t.Fatal("labeled loops cannot reach exit")
	}
}

// TestSolveForwardMustFact runs the canonical must-analysis shape: a
// boolean fact set in only one branch must not survive the join, and a
// fact set before a loop must survive it.
func TestSolveForwardMustFact(t *testing.T) {
	cfg := parseFuncBody(t, `
	a := 0
	if a > 0 {
		a = 1 // set
	}
	_ = a
	for i := 0; i < 2; i++ {
		a = 1 // set inside loop
	}
	a = 2`)
	isSet := func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		lit, ok := as.Rhs[0].(*ast.BasicLit)
		return ok && lit.Value == "1"
	}
	res := SolveForward(cfg, false,
		func(b *Block, in bool) bool {
			for _, n := range b.Nodes {
				if isSet(n) {
					in = true
				}
			}
			return in
		},
		func(a, b bool) bool { return a && b },
		func(a, b bool) bool { return a == b },
	)
	// The final assignment a = 2 must still see in=false: neither the
	// one-armed branch nor the may-skip loop establishes the fact.
	for _, b := range cfg.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		for _, n := range b.Nodes {
			if as, isAssign := n.(*ast.AssignStmt); isAssign {
				if lit, okL := as.Rhs[0].(*ast.BasicLit); okL && lit.Value == "2" {
					if in {
						t.Fatal("must-fact leaked through a one-armed branch and a zero-iteration loop")
					}
					return
				}
			}
			if isSet(n) {
				in = true
			}
		}
	}
	t.Fatal("final assignment not found")
}

// TestSolveBackwardInevitable pins the release-inevitability shape: an
// event on only one path to exit is not inevitable, an event on every
// path is.
func TestSolveBackwardInevitable(t *testing.T) {
	cfg := parseFuncBody(t, `
	a := 0
	if a > 0 {
		a = 1 // the event
		return
	}
	_ = a
	return`)
	isEvent := func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return false
		}
		lit, ok := as.Rhs[0].(*ast.BasicLit)
		return ok && lit.Value == "1"
	}
	res := SolveBackward(cfg, false,
		func(b *Block, after bool) bool {
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				if isEvent(b.Nodes[i]) {
					after = true
				}
			}
			return after
		},
		func(a, b bool) bool { return a && b },
		func(a, b bool) bool { return a == b },
	)
	// At entry the event is not inevitable (the else path skips it).
	if got := res.Out[cfg.Entry]; got {
		t.Fatal("event on one branch reported inevitable at entry")
	}
	// Inside the then-branch it is.
	for _, br := range cfg.Branches {
		if got, ok := res.Out[br.Then]; !ok || !got {
			t.Fatalf("event not inevitable at entry of its own branch (ok=%v got=%v)", ok, got)
		}
	}
}

// TestErrGuards pins the guarded-acquire recognition both fixture and
// production releases rely on.
func TestErrGuards(t *testing.T) {
	cfg := parseFuncBody(t, `
	if err := work(); err != nil {
		return
	}
	err2 := work()
	if err2 == nil {
		return
	}
	return`)
	guards := ErrGuards(cfg, nil)
	if len(guards) != 2 {
		t.Fatalf("recognized %d guards, want 2", len(guards))
	}
	for cond, g := range guards {
		if g.Call == nil || g.NonNil == nil || g.Nil == nil {
			t.Fatalf("incomplete guard for %v: %+v", cond, g)
		}
		if g.Nil == g.NonNil {
			t.Fatalf("nil and non-nil arms coincide for %v", cond)
		}
	}
}

// TestInspectNodeScoping: range headers expose only their governing
// parts, and function literals are skipped.
func TestInspectNodeScoping(t *testing.T) {
	cfg := parseFuncBody(t, `
	xs := []int{1}
	for _, v := range xs {
		bodyCall(v)
	}
	f := func() { litCall() }
	f()`)
	var names []string
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			InspectNode(n, func(c ast.Node) bool {
				if call, ok := c.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						names = append(names, id.Name)
					}
				}
				return true
			})
		}
	}
	joined := strings.Join(names, ",")
	if strings.Contains(joined, "litCall") {
		t.Fatalf("InspectNode descended into a function literal: %s", joined)
	}
	// bodyCall lives in the loop-body block and must be seen exactly once
	// across all blocks (no double visit via the range header).
	count := strings.Count(joined, "bodyCall")
	if count != 1 {
		t.Fatalf("bodyCall visited %d times, want 1 (%s)", count, joined)
	}
}
