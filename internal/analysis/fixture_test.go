package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
)

// Fixture tests: each analyzer runs over a standalone package under
// testdata/, and the diagnostics are matched line-exactly against
// `// want "regex"` comments in the fixture sources. Every diagnostic
// must match a want on its own line, and every want must be hit.

var (
	loaderOnce sync.Once
	fixLoader  *Loader
	loaderErr  error
)

// fixturePkg loads testdata/<sub> as a standalone package with a
// synthetic import path. The loader is shared across tests so the std
// dependency closure (math/big, encoding/gob, net, ...) is type-checked
// once.
func fixturePkg(t *testing.T, sub, importPath string) *Package {
	t.Helper()
	loaderOnce.Do(func() { fixLoader, loaderErr = NewLoader("") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	pkg, err := fixLoader.LoadDir(filepath.Join("testdata", sub), importPath)
	if err != nil {
		t.Fatalf("LoadDir(testdata/%s): %v", sub, err)
	}
	if len(pkg.TypeErrors) > 0 {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("fixture type error: %v", terr)
		}
		t.Fatalf("fixture testdata/%s does not type-check", sub)
	}
	return pkg
}

var wantRe = regexp.MustCompile(`want "([^"]*)"`)

type wantDiag struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants indexes every `// want "regex"` comment by file and line.
func collectWants(t *testing.T, pkg *Package) map[string]map[int][]*wantDiag {
	t.Helper()
	wants := map[string]map[int][]*wantDiag{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					lines := wants[pos.Filename]
					if lines == nil {
						lines = map[int][]*wantDiag{}
						wants[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], &wantDiag{re: re})
				}
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over one fixture package through the
// full driver (including //pplint:ignore filtering) and diffs the
// diagnostics against the want comments.
func checkFixture(t *testing.T, pkg *Package, a *Analyzer) {
	t.Helper()
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("Run(%s): %v", a.Name, err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Pos.Filename][d.Pos.Line] {
			if w.re.MatchString(d.Msg) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: expected a %s diagnostic matching %q, got none", file, line, a.Name, w.re)
				}
			}
		}
	}
}

func TestCryptorandFixture(t *testing.T) {
	// The fixture reproduces the original obfuscate.NewRandom bug: a
	// crypto/rand seed squeezed through a 64-bit math/rand generator.
	checkFixture(t, fixturePkg(t, "cryptorand", "fix/obfuscate"), CryptorandAnalyzer)
}

func TestCryptorandSkipsNonCriticalPackages(t *testing.T) {
	// Same sources under a non-security-critical import path: no
	// diagnostics at all.
	pkg := fixturePkg(t, "cryptorand", "fix/benchutil")
	diags, err := Run([]*Package{pkg}, []*Analyzer{CryptorandAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("cryptorand fired outside security-critical packages: %v", diags)
	}
}

func TestRerandomizeFixture(t *testing.T) {
	// The fixture reproduces the PR 2 unblinded-row pattern (BadDot) and
	// a branch that leaks an unblinded early return (BranchDot).
	checkFixture(t, fixturePkg(t, "rerandomize", "fix/paillier"), RerandomizeAnalyzer)
}

func TestBigintaliasFixture(t *testing.T) {
	checkFixture(t, fixturePkg(t, "bigintalias", "fix/keys"), BigintaliasAnalyzer)
}

func TestErrauditFixture(t *testing.T) {
	checkFixture(t, fixturePkg(t, "erraudit", "fix/wire"), ErrauditAnalyzer)
}

func TestIgnoreDirective(t *testing.T) {
	// Three identical violations; two carry //pplint:ignore (named-rule
	// and "all" forms, trailing and standalone placement) and must be
	// suppressed, the third must still fire.
	checkFixture(t, fixturePkg(t, "ignore", "fix/ignoredemo"), ErrauditAnalyzer)
}

func TestMetricnamesFixture(t *testing.T) {
	// The fixture covers all three rules: literal and composed name
	// grammar, cross-type reuse of one name, and CostStats/costFields
	// divergence (missing tag, orphaned table entry).
	checkFixture(t, fixturePkg(t, "metricnames", "fix/obs"), NewMetricnamesAnalyzer())
}

func TestLockscopeFixture(t *testing.T) {
	// BadResolve reproduces the pendingEdge receive-under-mutex and
	// BadClose/BadSubmit the pre-PR 7 dispatcher Submit/Close hang;
	// select-with-default and post-unlock blocking stay silent.
	checkFixture(t, fixturePkg(t, "lockscope", "fix/lockscope/stream"), LockscopeAnalyzer)
}

func TestLockscopeSkipsNonConcurrencyPackages(t *testing.T) {
	pkg := fixturePkg(t, "lockscope", "fix/lockscope/benchutil")
	diags, err := Run([]*Package{pkg}, []*Analyzer{LockscopeAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("lockscope fired outside concurrency-critical packages: %v", diags)
	}
}

func TestPairedreleaseFixture(t *testing.T) {
	// LeakOnComplete reproduces the PR 3 permutation-state leak (Forget
	// never reached on the completion path) and EvictWithoutRelease the
	// PR 7 shed-slot-at-eviction bug; guarded error returns, deferred
	// releases, and branch-alternative releases stay silent.
	checkFixture(t, fixturePkg(t, "pairedrelease", "fix/pairedrelease/protocol"), PairedreleaseAnalyzer)
}

func TestGoroleakFixture(t *testing.T) {
	// BadReader reproduces the pre-PR 7 dispatcher reader (exit only via
	// results close ⇒ Submit/Close hang); done-select, ctx, range,
	// comma-ok, WaitGroup, and one-shot goroutines stay silent.
	checkFixture(t, fixturePkg(t, "goroleak", "fix/goroleak/stream"), GoroleakAnalyzer)
}

func TestAtomicfieldFixture(t *testing.T) {
	checkFixture(t, fixturePkg(t, "atomicfield", "fix/atomicfield/obs"), NewAtomicfieldAnalyzer())
}

func TestCtxdeadlineFixture(t *testing.T) {
	checkFixture(t, fixturePkg(t, "ctxdeadline", "fix/ctxdeadline/protocol"), CtxdeadlineAnalyzer)
}

func TestWirecompatFixture(t *testing.T) {
	// The fixture lock declares Factor as int64 (source retyped it to
	// int32), a removed field Hello.Gone, and a removed struct Dropped.
	// Hello also carries two ADDITIVE fields the lock predates (Profile,
	// Plan — the backend-negotiation evolution); those must not fire.
	pkg := fixturePkg(t, "wirecompat", "fix/protocol")
	a := NewWirecompatAnalyzer(WirecompatConfig{
		LockPath: filepath.Join("testdata", "wirecompat", "wire.lock"),
		Structs:  map[string][]string{"fix/protocol": {"Hello"}},
	})
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	type expect struct {
		file    string
		msgPart string
	}
	expects := []expect{
		{filepath.Join("testdata", "wirecompat", "fix.go"), "Hello.Factor retyped from int64 to int32"},
		{filepath.Join("testdata", "wirecompat", "wire.lock"), "Hello.Gone (string) was removed"},
		{filepath.Join("testdata", "wirecompat", "wire.lock"), "Dropped.Field (int) was removed"},
	}
	if len(diags) != len(expects) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(expects), diags)
	}
	for _, e := range expects {
		found := false
		for _, d := range diags {
			if d.Pos.Filename == e.file && d.Pos.Line > 0 && d.Rule == "wirecompat" &&
				regexp.MustCompile(regexp.QuoteMeta(e.msgPart)).MatchString(d.Msg) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing diagnostic %q at %s:\n%v", e.msgPart, e.file, diags)
		}
	}
	// Additive evolution stays silent: the new fields the lock predates
	// must produce no diagnostic.
	for _, d := range diags {
		if regexp.MustCompile(`Profile|Plan`).MatchString(d.Msg) {
			t.Errorf("additive field flagged: %v", d)
		}
	}
}

func TestWirecompatUpdateRoundTrip(t *testing.T) {
	pkg := fixturePkg(t, "wirecompat", "fix/protocol")
	lock := filepath.Join(t.TempDir(), "wire.lock")
	structs := map[string][]string{"fix/protocol": {"Hello"}}

	// -update writes a lock reflecting the current tree.
	if _, err := Run([]*Package{pkg}, []*Analyzer{NewWirecompatAnalyzer(WirecompatConfig{
		LockPath: lock, Structs: structs, Update: true,
	})}); err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(lock)
	if err != nil {
		t.Fatal(err)
	}

	// Diffing the unchanged tree against the fresh lock is clean.
	diags, err := Run([]*Package{pkg}, []*Analyzer{NewWirecompatAnalyzer(WirecompatConfig{
		LockPath: lock, Structs: structs,
	})})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("fresh lock should be clean, got: %v", diags)
	}

	// A second -update is byte-identical (deterministic output).
	if _, err := Run([]*Package{pkg}, []*Analyzer{NewWirecompatAnalyzer(WirecompatConfig{
		LockPath: lock, Structs: structs, Update: true,
	})}); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(lock)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatalf("-update is not deterministic:\n--- first\n%s\n--- second\n%s", first, second)
	}
}

func TestWirecompatMissingLock(t *testing.T) {
	pkg := fixturePkg(t, "wirecompat", "fix/protocol")
	diags, err := Run([]*Package{pkg}, []*Analyzer{NewWirecompatAnalyzer(WirecompatConfig{
		LockPath: filepath.Join(t.TempDir(), "absent.lock"),
		Structs:  map[string][]string{"fix/protocol": {"Hello"}},
	})})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !regexp.MustCompile("lock missing").MatchString(diags[0].Msg) {
		t.Fatalf("want a single 'lock missing' diagnostic, got: %v", diags)
	}
}
