package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BigintaliasAnalyzer flags the two big.Int aliasing hazards that corrupt
// key or ciphertext material silently:
//
//  1. mutate-through-alias: a local variable bound to another *big.Int by
//     plain assignment (x := y, or x := s.field) used as the receiver of a
//     mutating method — the mutation clobbers the aliased value. Aliases
//     of struct fields are always flagged (the struct's internals change
//     behind its back); aliases of plain variables are flagged only when
//     the source is read again after the mutation. The idiomatic in-place
//     form t.Div(t, d) (receiver == argument, same variable) is exempt.
//
//  2. leaky accessor: an exported method returning a *big.Int field of its
//     receiver by reference instead of a copy — callers can then mutate
//     key/ciphertext internals (cf. Ciphertext.Value, which copies).
var BigintaliasAnalyzer = &Analyzer{
	Name: "bigintalias",
	Doc:  "big.Int mutation through aliases and accessors leaking internal *big.Int references",
	Run:  runBigintalias,
}

// bigIntMutators are the math/big.Int methods that write to their
// receiver.
var bigIntMutators = map[string]bool{
	"Abs": true, "Add": true, "And": true, "AndNot": true, "Binomial": true,
	"Div": true, "DivMod": true, "Exp": true, "GCD": true, "Lsh": true,
	"Mod": true, "ModInverse": true, "ModSqrt": true, "Mul": true,
	"MulRange": true, "Neg": true, "Not": true, "Or": true, "Quo": true,
	"QuoRem": true, "Rand": true, "Rem": true, "Rsh": true, "Set": true,
	"SetBit": true, "SetBits": true, "SetBytes": true, "SetInt64": true,
	"SetString": true, "SetUint64": true, "Sqrt": true, "Sub": true,
	"Xor": true,
}

func runBigintalias(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLeakyAccessor(pass, fd)
			checkMutateThroughAlias(pass, fd)
		}
	}
	return nil
}

// isBigIntPtr reports whether t is *math/big.Int.
func isBigIntPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Int" && obj.Pkg() != nil && obj.Pkg().Path() == "math/big"
}

// checkLeakyAccessor flags exported methods returning a receiver field of
// type *big.Int by reference.
func checkLeakyAccessor(pass *Pass, fd *ast.FuncDecl) {
	if fd.Recv == nil || !fd.Name.IsExported() || len(fd.Recv.List) == 0 {
		return
	}
	var recvObj types.Object
	if names := fd.Recv.List[0].Names; len(names) == 1 {
		recvObj = pass.Pkg.Info.Defs[names[0]]
	}
	if recvObj == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ret.Results {
			sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			tv, ok := pass.Pkg.Info.Types[e]
			if !ok || !isBigIntPtr(tv.Type) {
				continue
			}
			root := rootIdent(sel.X)
			if root == nil || pass.Pkg.Info.Uses[root] != recvObj {
				continue
			}
			pass.Reportf(e.Pos(), "exported %s returns internal *big.Int %s by reference: return new(big.Int).Set(%s) so callers cannot mutate key/ciphertext state", fd.Name.Name, exprString(e), exprString(e))
		}
		return true
	})
}

// aliasBinding records x := y (or x := s.field) for *big.Int values.
type aliasBinding struct {
	obj        types.Object // the alias variable
	sourceObj  types.Object // source variable object (nil for field sources)
	fromField  bool         // source is a selector (struct internals)
	sourceText string
}

// checkMutateThroughAlias flags mutating big.Int method calls whose
// receiver is a plain-assignment alias of another *big.Int.
func checkMutateThroughAlias(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	aliases := map[types.Object]*aliasBinding{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
			for i, lhs := range as.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				var lobj types.Object
				if as.Tok == token.DEFINE {
					lobj = info.Defs[lid]
				} else {
					lobj = info.Uses[lid]
				}
				if lobj == nil || !isBigIntPtr(lobj.Type()) {
					continue
				}
				switch rhs := ast.Unparen(as.Rhs[i]).(type) {
				case *ast.Ident:
					if robj := info.Uses[rhs]; robj != nil && isBigIntPtr(robj.Type()) {
						aliases[lobj] = &aliasBinding{obj: lobj, sourceObj: robj, sourceText: rhs.Name}
					}
				case *ast.SelectorExpr:
					if tv, ok := info.Types[as.Rhs[i]]; ok && isBigIntPtr(tv.Type) {
						if _, isField := info.Selections[rhs]; isField {
							aliases[lobj] = &aliasBinding{obj: lobj, fromField: true, sourceText: exprString(as.Rhs[i])}
						}
					}
				default:
					// Assignment from a call (new(big.Int)..., lFunc(...))
					// or literal breaks any previous alias.
					delete(aliases, lobj)
				}
			}
		}
		return true
	})
	if len(aliases) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !bigIntMutators[sel.Sel.Name] {
			return true
		}
		recvID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		recvObj := info.Uses[recvID]
		binding := aliases[recvObj]
		if binding == nil {
			return true
		}
		// Confirm this resolves to a math/big.Int method, not a same-named
		// method on some other type.
		if fn, ok := info.Uses[sel.Sel].(*types.Func); !ok || fn.Pkg() == nil || fn.Pkg().Path() != "math/big" {
			return true
		}
		if binding.fromField {
			pass.Reportf(call.Pos(), "%s.%s mutates %s through alias %s: the aliased struct internals change in place — copy with new(big.Int).Set(%s) first", recvID.Name, sel.Sel.Name, binding.sourceText, recvID.Name, binding.sourceText)
			return true
		}
		if binding.sourceObj == recvObj {
			return true // x := x self-alias: meaningless but harmless
		}
		if readAfter(info, fd, binding.sourceObj, call.End()) {
			pass.Reportf(call.Pos(), "%s.%s mutates the value aliased from %s, which is read again afterwards: copy with new(big.Int).Set(%s) before mutating", recvID.Name, sel.Sel.Name, binding.sourceText, binding.sourceText)
		}
		return true
	})
}

// readAfter reports whether obj is referenced anywhere after pos in the
// function body.
func readAfter(info *types.Info, fd *ast.FuncDecl, obj types.Object, pos token.Pos) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if ok && id.Pos() > pos && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
