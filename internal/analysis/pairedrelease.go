package analysis

import (
	"go/ast"
	"strings"
)

// PairedreleaseAnalyzer enforces the acquire/release pairing of the
// serving plane's tracked resources: a shed slot (Shedder.Acquire →
// Release), a pipeline sequence reservation (Pipeline.Reserve →
// SubmitReserved/CancelReserve), and per-request tracked state
// (Track → Forget, the obfuscation-state lifecycle). Both landmark
// lifecycle bugs were exactly this pattern escaping review: PR 3's
// permutation-state leak (per-request state registered but Forget never
// reached on the completion path) and PR 7's shed-slot leak (the session
// janitor evicted request state without releasing its shed slot,
// permanently shrinking admission capacity).
//
// Implementation: a backward must-analysis over the shared CFG. The fact
// at a program point is the set of resource keys (method name + receiver
// source text) whose release is inevitable — executed on *every* path
// from that point to function exit. A `defer x.Release()` anywhere in
// the function releases at every return, so its keys hold at exit.
// Each acquire call site is then checked at the point where the resource
// is actually held: for the guarded form
//
//	if err := x.Acquire(); err != nil { return err }
//
// the failure branch holds nothing (returning without release there is
// correct), so the fact is read at the entry of the success branch;
// unguarded acquires are checked immediately after the call.
//
// An acquire whose release intentionally transfers to another owner
// (e.g. stored in a registry the janitor releases from) is exactly what
// `//pplint:ignore pairedrelease <reason>` is for — the reason documents
// the new owner.
var PairedreleaseAnalyzer = &Analyzer{
	Name: "pairedrelease",
	Doc:  "every acquire of a tracked resource (shed slot, pipeline reservation, tracked request state) must reach its paired release on all return paths",
	Run:  runPairedrelease,
}

// releasePairs maps an acquire method name to the method names that
// release it (any one suffices). Matching is by method name plus
// receiver source text, so s.shed.Acquire pairs with s.shed.Release but
// not with t.shed.Release.
var releasePairs = map[string][]string{
	"Acquire": {"Release"},
	"Reserve": {"SubmitReserved", "CancelReserve"},
	"Track":   {"Forget"},
}

func runPairedrelease(pass *Pass) error {
	if !concurrencyCriticalPackages[pkgBase(pass.Pkg.Path)] {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, u := range funcUnits(file) {
			pairedreleaseFunc(pass, u)
		}
	}
	return nil
}

// resourceKey identifies one tracked resource instance within a
// function: "recv.Acquire" style, built from the acquire method name and
// the receiver's source text.
func resourceKey(recv ast.Expr, acquireName string) string {
	return exprString(recv) + "." + acquireName
}

// acquireSite is one tracked acquire call in a function body.
type acquireSite struct {
	call *ast.CallExpr
	name string // acquire method name
	key  string
}

// releaseSet is the must-release fact: resource keys whose release is
// inevitable from this point on.
type releaseSet map[string]bool

func releaseSetEqual(a, b releaseSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// releaseSetMeet intersects (must-analysis: inevitable on every path).
func releaseSetMeet(a, b releaseSet) releaseSet {
	m := releaseSet{}
	for k := range a {
		if b[k] {
			m[k] = true
		}
	}
	return m
}

func pairedreleaseFunc(pass *Pass, u funcUnit) {
	cfg := BuildCFG(u.body)
	if cfg == nil {
		return
	}
	// Collect the acquire sites; nothing to do without one.
	var sites []acquireSite
	ast.Inspect(u.body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(u.lit) {
			return false // literals are their own funcUnits
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, recv := trackedAcquire(call)
		if name == "" {
			return true
		}
		sites = append(sites, acquireSite{call: call, name: name, key: resourceKey(recv, name)})
		return true
	})
	if len(sites) == 0 {
		return
	}

	// Releases registered via defer hold at every exit. Defer bodies are
	// scanned in full (including function literals: `defer func() {
	// x.Release() }()` is the idiomatic conditional-release wrapper).
	exitFact := releaseSet{}
	for _, d := range cfg.Defers {
		for k := range releasesIn(d, true) {
			exitFact[k] = true
		}
	}

	transfer := func(b *Block, after releaseSet) releaseSet {
		// Backward: walk the block's nodes in reverse; a release makes the
		// key inevitable before it.
		out := after
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			if rel := releasesIn(b.Nodes[i], false); len(rel) > 0 {
				grown := releaseSet{}
				for k := range out {
					grown[k] = true
				}
				for k := range rel {
					grown[k] = true
				}
				out = grown
			}
		}
		return out
	}
	res := SolveBackward(cfg, exitFact, transfer, releaseSetMeet, releaseSetEqual)
	guards := ErrGuards(cfg, nil)
	guardByCall := map[*ast.CallExpr]*ErrGuard{}
	for _, g := range guards {
		guardByCall[g.Call] = g
	}

	for _, site := range sites {
		releases := releasePairs[site.name]
		if g := guardByCall[site.call]; g != nil && g.Nil != nil {
			// Guarded acquire: the resource is held only on the success
			// branch; judge inevitability at that branch's entry.
			if fact, ok := res.Out[g.Nil]; ok && !fact[site.key] {
				reportUnreleased(pass, site, releases)
			}
			continue
		}
		// Unguarded: judge right after the acquire call, by replaying the
		// containing block backward from its exit fact down to the call.
		blk, idx := findNode(cfg, site.call)
		if blk == nil {
			continue
		}
		fact, ok := res.In[blk]
		if !ok {
			continue // unreachable code
		}
		for i := len(blk.Nodes) - 1; i > idx; i-- {
			if rel := releasesIn(blk.Nodes[i], false); len(rel) > 0 {
				grown := releaseSet{}
				for k := range fact {
					grown[k] = true
				}
				for k := range rel {
					grown[k] = true
				}
				fact = grown
			}
		}
		if !fact[site.key] {
			reportUnreleased(pass, site, releases)
		}
	}
}

func reportUnreleased(pass *Pass, site acquireSite, releases []string) {
	pass.Reportf(site.call.Pos(), "%s is not matched by a paired release (%s) on every return path: a leaked slot permanently shrinks capacity and leaked per-request state accretes forever (the PR 3 Forget / PR 7 shed-slot bug class); release on all paths, defer it, or document the ownership transfer with an ignore directive", site.key, strings.Join(releases, "/"))
}

// trackedAcquire classifies a call as a tracked acquire, returning the
// method name and receiver.
func trackedAcquire(call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	if _, tracked := releasePairs[sel.Sel.Name]; !tracked {
		return "", nil
	}
	return sel.Sel.Name, sel.X
}

// releasesIn collects the release events under one CFG node, normalized
// to the acquire-side key ("recv.Acquire") so that alternative releases
// of the same resource (SubmitReserved on one branch, CancelReserve on
// the other) survive the must-meet. With deep=true nested function
// literals are scanned too (defer wrappers); otherwise InspectNode's
// literal-skipping walk applies.
func releasesIn(n ast.Node, deep bool) releaseSet {
	out := releaseSet{}
	visit := func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		for _, acq := range acquiresForRelease(sel.Sel.Name) {
			out[exprString(sel.X)+"."+acq] = true
		}
		return true
	}
	if deep {
		ast.Inspect(n, visit)
	} else {
		InspectNode(n, visit)
	}
	return out
}

// acquiresForRelease lists the acquire method names a release method
// name pairs with.
func acquiresForRelease(name string) []string {
	var acqs []string
	for acq, rels := range releasePairs {
		for _, r := range rels {
			if r == name {
				acqs = append(acqs, acq)
			}
		}
	}
	return acqs
}

// findNode locates the block and node index carrying n.
func findNode(cfg *CFG, n ast.Node) (*Block, int) {
	for _, b := range cfg.Blocks {
		for i, bn := range b.Nodes {
			found := false
			InspectNode(bn, func(c ast.Node) bool {
				if c == n {
					found = true
					return false
				}
				return !found
			})
			if found {
				return b, i
			}
		}
	}
	return nil, -1
}
