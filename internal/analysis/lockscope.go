package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockscopeAnalyzer enforces the serving plane's lock-discipline
// invariant: no blocking operation — channel send/receive, select
// without default, net.Conn / gob I/O, time.Sleep, sync.WaitGroup.Wait —
// while a sync.Mutex/RWMutex is held. Blocking under a lock is exactly
// how the PR 7 dispatcher Submit/Close hang arose (Close held the mutex
// the delivery path needed while waiting on in-flight work), and on the
// session hot path it turns one slow peer into a convoy for every
// request sharing the lock.
//
// Implementation: a forward may-analysis over the shared CFG. The fact
// is the set of held-lock receiver expressions (keyed by source text, so
// s.mu.Lock / s.mu.Unlock pair up); Lock/RLock/TryLock add, Unlock /
// RUnlock remove, and facts union at joins — "possibly held" is the
// right polarity for a hang detector. `defer mu.Unlock()` does not clear
// the fact: the lock stays held until return, so later blocking
// operations in the same function are still convoy points. Statements
// that are a select case's communication clause are exempt (the select
// itself is the single blocking node, and it is only flagged when it has
// no default).
var LockscopeAnalyzer = &Analyzer{
	Name: "lockscope",
	Doc:  "no blocking operations (channel ops, select, net/gob I/O, time.Sleep, Wait) while holding a sync.Mutex/RWMutex",
	Run:  runLockscope,
}

func runLockscope(pass *Pass) error {
	if !concurrencyCriticalPackages[pkgBase(pass.Pkg.Path)] {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		for _, u := range funcUnits(file) {
			lockscopeFunc(pass, u)
		}
	}
	return nil
}

// lockSet is the may-held lock fact: receiver source text -> held.
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func lockSetEqual(a, b lockSet) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func lockSetUnion(a, b lockSet) lockSet {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	u := a.clone()
	for k := range b {
		u[k] = true
	}
	return u
}

func (s lockSet) names() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

func lockscopeFunc(pass *Pass, u funcUnit) {
	cfg := BuildCFG(u.body)
	if cfg == nil {
		return
	}
	info := pass.Pkg.Info
	transfer := func(b *Block, in lockSet) lockSet {
		for _, n := range b.Nodes {
			in = lockTransfer(info, cfg, n, in, nil)
		}
		return in
	}
	res := SolveForward(cfg, lockSet{}, transfer, lockSetUnion, lockSetEqual)
	// Replay reachable blocks to attribute each blocking node to the
	// exact lock set held there.
	for _, b := range cfg.Blocks {
		in, reachable := res.In[b]
		if !reachable {
			continue
		}
		for _, n := range b.Nodes {
			in = lockTransfer(info, cfg, n, in, func(pos token.Pos, what string, held lockSet) {
				pass.Reportf(pos, "%s while holding %s: a blocked holder convoys every request sharing the lock — release before blocking, or use a non-blocking/deadline-aware form (the PR 7 dispatcher hang class)", what, held.names())
			})
		}
	}
}

// lockTransfer applies one CFG node to the held-lock fact; when report is
// non-nil, blocking operations under a non-empty fact are reported.
func lockTransfer(info *types.Info, cfg *CFG, n ast.Node, in lockSet, report func(token.Pos, string, lockSet)) lockSet {
	// A select case's communication clause executes only once the select
	// has committed: not independently blocking (the SelectStmt dispatch
	// node carries the blocking semantics).
	if st, ok := n.(ast.Stmt); ok && cfg.SelectComm[st] {
		return in
	}
	if _, ok := n.(*ast.DeferStmt); ok {
		// A deferred unlock releases at return, not here: the lock remains
		// held for everything that follows in this function. A deferred
		// blocking call runs after returns, outside the replayed path
		// state, so it is not checked here either.
		return in
	}
	InspectNode(n, func(c ast.Node) bool {
		switch cn := c.(type) {
		case *ast.CallExpr:
			if key, op, ok := lockOp(info, cn); ok {
				if op > 0 {
					if !in[key] {
						in = in.clone()
						in[key] = true
					}
				} else if in[key] {
					in = in.clone()
					delete(in, key)
				}
				return true
			}
			if report != nil && len(in) > 0 {
				if what := blockingCall(info, cn); what != "" {
					report(cn.Pos(), what, in)
				}
			}
		case *ast.SendStmt:
			if report != nil && len(in) > 0 {
				report(cn.Arrow, "channel send", in)
			}
		case *ast.UnaryExpr:
			if cn.Op == token.ARROW && report != nil && len(in) > 0 {
				report(cn.OpPos, "channel receive", in)
			}
		case *ast.SelectStmt:
			if report != nil && len(in) > 0 && !selectHasDefault(cn) {
				report(cn.Select, "select with no default clause", in)
			}
		case *ast.RangeStmt:
			if report != nil && len(in) > 0 && isChanType(typeOf(info, cn.X)) {
				report(cn.For, "range over channel", in)
			}
		}
		return true
	})
	return in
}

// lockOp classifies a call as a mutex acquire (+1) or release (-1),
// returning the receiver's source text as the lock key.
func lockOp(info *types.Info, call *ast.CallExpr) (key string, op int, ok bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	recv := callReceiver(call)
	if recv == nil {
		return "", 0, false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		return exprString(recv), 1, true
	case "Unlock", "RUnlock":
		return exprString(recv), -1, true
	}
	return "", 0, false
}

// blockingCall names a call that can block indefinitely, or returns "".
func blockingCall(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if name == "Wait" {
			return "sync Wait"
		}
	case "net":
		switch name {
		case "Read", "Write", "Accept", "Dial", "DialTimeout":
			return "net I/O (" + name + ")"
		}
	case "encoding/gob":
		switch name {
		case "Encode", "EncodeValue", "Decode", "DecodeValue":
			return "gob " + name
		}
	}
	return ""
}

