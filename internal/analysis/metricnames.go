package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricnamesAnalyzer enforces the observability naming contract.
//
// Invariant: metric names are the API between the serving plane and its
// dashboards. Three rules keep them stable and conformant:
//
//  1. Names passed to Registry.Counter/Gauge/Histogram/GaugeFunc are
//     lowercase dotted ("rounds.served", "stage.<name>.wait") — the JSON
//     snapshot serves them verbatim and the Prometheus path derives
//     "ppstream_rounds_served" mechanically, so a stray uppercase or
//     exotic character silently forks the two expositions.
//  2. One metric name has one type. Registering "queue.depth" as a
//     counter in one place and a gauge in another yields conflicting
//     Prometheus TYPE families — WritePrometheus rejects the scrape at
//     runtime; this catches it at lint time, whole-program.
//  3. obs.CostStats stays in lock-step with its costFields table: every
//     struct field carries a lowercase json tag, and the tag set exactly
//     matches the names enumerated in costFields — the single source of
//     truth both the JSON and Prometheus cost expositions render from. A
//     field added to the struct but not the table would vanish from
//     /metrics without any test noticing the asymmetry.
func NewMetricnamesAnalyzer() *Analyzer {
	state := &metricnamesState{registrations: map[string]metricReg{}}
	return &Analyzer{
		Name:   "metricnames",
		Doc:    "registry metric names must be lowercase dotted, one type per name, and CostStats must match costFields",
		Run:    state.run,
		Finish: state.finish,
	}
}

// metricMethods maps Registry method names to their metric family type.
var metricMethods = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"GaugeFunc": "gauge", // same exposition family as Gauge
	"Histogram": "histogram",
}

// metricNameRe is the full-name grammar: lowercase dotted components of
// letters, digits, and underscores.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$`)

// metricFragmentRe is the relaxed grammar for string literals inside
// concatenations ("stage." + name + ".wait"): the same character set,
// with leading/trailing dots allowed since the neighbour supplies the
// missing component.
var metricFragmentRe = regexp.MustCompile(`^[a-z0-9_.]+$`)

type metricReg struct {
	kind string
	pos  token.Position
}

type metricnamesState struct {
	registrations map[string]metricReg // literal name -> first site
	conflicts     []Diagnostic
}

func (s *metricnamesState) run(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, ok := metricMethods[sel.Sel.Name]
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !isRegistryMethod(fn) {
				return true
			}
			s.checkNameArg(pass, kind, call.Args[0])
			return true
		})
	}
	s.checkCostStats(pass)
	return nil
}

// isRegistryMethod reports whether fn is a method on a type named
// Registry (matched structurally so fixtures under synthetic import
// paths exercise the same code as ppstream/internal/obs).
func isRegistryMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// checkNameArg validates the metric-name expression: a plain literal
// must match the full grammar; literal fragments of a concatenation must
// match the relaxed grammar. Fully dynamic names pass (nothing to check
// statically).
func (s *metricnamesState) checkNameArg(pass *Pass, kind string, arg ast.Expr) {
	switch e := arg.(type) {
	case *ast.BasicLit:
		if e.Kind != token.STRING {
			return
		}
		name, err := strconv.Unquote(e.Value)
		if err != nil {
			return
		}
		if !metricNameRe.MatchString(name) {
			pass.Reportf(e.Pos(), "metric name %q is not lowercase dotted (want e.g. %q): the JSON snapshot serves it verbatim and the Prometheus name is derived mechanically", name, suggestMetricName(name))
			return
		}
		s.recordRegistration(pass, kind, name, e.Pos())
	case *ast.BinaryExpr:
		if e.Op != token.ADD {
			return
		}
		for _, lit := range stringLits(e) {
			name, err := strconv.Unquote(lit.Value)
			if err != nil || name == "" {
				continue
			}
			if !metricFragmentRe.MatchString(name) {
				pass.Reportf(lit.Pos(), "metric name fragment %q contains characters outside [a-z0-9_.]: composed metric names must stay lowercase dotted", name)
			}
		}
	}
}

// suggestMetricName lowercases and strips a rejected name into the
// nearest conformant spelling for the diagnostic.
func suggestMetricName(name string) string {
	var b strings.Builder
	for i, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r == '.', r == '_':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('n')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return strings.Trim(b.String(), "._")
}

// stringLits collects the string literals of a concatenation tree.
func stringLits(e ast.Expr) []*ast.BasicLit {
	switch v := e.(type) {
	case *ast.BasicLit:
		if v.Kind == token.STRING {
			return []*ast.BasicLit{v}
		}
	case *ast.BinaryExpr:
		if v.Op == token.ADD {
			return append(stringLits(v.X), stringLits(v.Y)...)
		}
	case *ast.ParenExpr:
		return stringLits(v.X)
	}
	return nil
}

// recordRegistration tracks literal-name registrations whole-program and
// queues a conflict diagnostic when a name reappears with another type.
func (s *metricnamesState) recordRegistration(pass *Pass, kind, name string, pos token.Pos) {
	position := pass.Pkg.Fset.Position(pos)
	prev, seen := s.registrations[name]
	if !seen {
		s.registrations[name] = metricReg{kind: kind, pos: position}
		return
	}
	if prev.kind != kind {
		s.conflicts = append(s.conflicts, Diagnostic{
			Pos:  position,
			Rule: "metricnames",
			Msg: fmt.Sprintf("metric %q registered as %s here but as %s at %s:%d: one name must have one Prometheus type family",
				name, kind, prev.kind, prev.pos.Filename, prev.pos.Line),
		})
	}
}

func (s *metricnamesState) finish(report func(Diagnostic)) error {
	sort.Slice(s.conflicts, func(i, j int) bool {
		a, b := s.conflicts[i].Pos, s.conflicts[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, d := range s.conflicts {
		report(d)
	}
	return nil
}

// checkCostStats runs only in a package declaring both CostStats and
// costFields (obs and its fixtures): the struct's json-tag set must
// exactly match the names enumerated in the costFields table.
func (s *metricnamesState) checkCostStats(pass *Pass) {
	scope := pass.Pkg.Types.Scope()
	statsObj := scope.Lookup("CostStats")
	fieldsObj := scope.Lookup("costFields")
	if statsObj == nil || fieldsObj == nil {
		return
	}
	st, ok := statsObj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}

	tagNames := map[string]token.Pos{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		name := strings.Split(tag, ",")[0]
		if name == "" || name == "-" {
			pass.Reportf(f.Pos(), "CostStats field %s has no json tag: the flight-recorder and /metrics JSON paths would drop or misname it", f.Name())
			continue
		}
		if !metricNameRe.MatchString(name) {
			pass.Reportf(f.Pos(), "CostStats field %s json tag %q is not a lowercase metric-name component", f.Name(), name)
			continue
		}
		tagNames[name] = f.Pos()
	}

	tableNames := costFieldsTableNames(pass)
	for name, pos := range tagNames {
		if _, ok := tableNames[name]; !ok {
			pass.Reportf(pos, "CostStats field with json tag %q is missing from the costFields table: it will not reach the cost.* registry counters or the Prometheus exposition", name)
		}
	}
	for name, pos := range tableNames {
		if _, ok := tagNames[name]; !ok {
			pass.Reportf(pos, "costFields entry %q has no matching CostStats json tag: the table and the struct have diverged", name)
		}
	}
}

// costFieldsTableNames extracts the Name literals of the costFields
// composite literal from the package AST.
func costFieldsTableNames(pass *Pass) map[string]token.Pos {
	names := map[string]token.Pos{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "costFields" || len(vs.Values) != 1 {
					continue
				}
				outer, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				for _, elt := range outer.Elts {
					entry, ok := elt.(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, field := range entry.Elts {
						kv, ok := field.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok || key.Name != "Name" {
							continue
						}
						lit, ok := kv.Value.(*ast.BasicLit)
						if !ok || lit.Kind != token.STRING {
							continue
						}
						if name, err := strconv.Unquote(lit.Value); err == nil {
							names[name] = lit.Pos()
						}
					}
				}
			}
		}
	}
	return names
}
