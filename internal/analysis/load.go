package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis: the parsed non-test
// sources plus the go/types objects the analyzers resolve against.
type Package struct {
	// Path is the package's import path (module-relative for repo
	// packages, synthetic for test fixtures).
	Path string
	// Dir is the directory holding the sources.
	Dir string
	// Name is the package clause name.
	Name string
	// Fset positions every token of Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries identifier resolution (Uses/Defs/Selections/Types).
	Info *types.Info
	// TypeErrors collects soft type-check errors (analysis proceeds; the
	// driver surfaces them so a broken tree is not silently half-checked).
	TypeErrors []error
}

// Loader parses and type-checks packages using only the standard library:
// module-local import paths resolve to source directories under the module
// root, and everything else goes through go/importer's source importer.
// One Loader shares a FileSet and package cache across all loads.
type Loader struct {
	fset    *token.FileSet
	root    string // module root directory ("" disables module mapping)
	modPath string // module path from go.mod
	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at the module directory root. When
// root is non-empty it must contain a go.mod naming the module; import
// paths under that module resolve to subdirectories. An empty root loads
// standalone directories (fixtures) whose imports are std-only.
func NewLoader(root string) (*Loader, error) {
	l := &Loader{
		fset:    token.NewFileSet(),
		root:    root,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	if root != "" {
		mod, err := modulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, err
		}
		l.modPath = mod
	}
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load from
// source under the module root, everything else delegates to the std
// source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.root, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// LoadDir parses and type-checks the non-test .go files of one directory
// as the package importPath. Results are cached by import path.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goSources(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go sources in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Name:  files[0].Name.Name,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, pkg.Info)
	if tpkg == nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// goSources lists the directory's non-test .go files, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadModule loads every package of the loader's module whose directory
// matches one of the patterns. Patterns follow the go tool's shape:
// "./..." loads everything, "./dir/..." a subtree, "./dir" one package.
// Directories named testdata, hidden directories, and _-prefixed
// directories are skipped.
func (l *Loader) LoadModule(patterns []string) ([]*Package, error) {
	if l.root == "" {
		return nil, fmt.Errorf("analysis: loader has no module root")
	}
	dirs, err := l.matchDirs(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		names, err := goSources(dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue
		}
		rel, err := filepath.Rel(l.root, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.modPath
		if rel != "." {
			importPath = l.modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// matchDirs expands patterns into the sorted set of candidate package
// directories under the module root.
func (l *Loader) matchDirs(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "" || pat == "." {
			pat = "./"
		}
		base := filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: walking %s: %w", base, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
