// Package analysis is pplint's repo-specific static-analysis framework:
// a stdlib-only (go/ast, go/parser, go/token, go/types, go/importer)
// analyzer driver that walks every package of the module and enforces the
// security invariants PP-Stream's correctness argument rests on but the
// compiler cannot check — cryptographic randomness in security-critical
// packages, re-randomization of every ciphertext leaving the model
// provider, big.Int aliasing hygiene, additive-only wire-schema
// evolution, and audited error handling on the crypto and wire layers.
//
// Since PR 10 the suite is built on a CFG-based dataflow core (cfg.go,
// dataflow.go): a shared intraprocedural control-flow-graph builder with
// generic forward/backward worklist solvers and an error-guard
// path-sensitivity helper. On top of it ride the concurrency/lifecycle
// analyzers — lockscope, pairedrelease, goroleak, atomicfield,
// ctxdeadline — which machine-check the invariants behind every
// historical serving-plane bug (the PR 3 permutation-state leak, the
// PR 7 dispatcher hang and shed-slot eviction leak).
//
// Each analyzer is a self-contained pass producing position-accurate
// diagnostics. A diagnostic on a line carrying (or directly below) a
// "//pplint:ignore rule [reason]" comment is suppressed.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at an exact source position.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.Analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one self-contained invariant check. Run is invoked once per
// package; Finish, when non-nil, is invoked once after every package has
// been visited (for cross-package checks like the wire-schema diff).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// Finish reports whole-program diagnostics after all Run calls.
	Finish func(report func(Diagnostic)) error
}

// Run applies every analyzer to every package, filters diagnostics
// suppressed by //pplint:ignore directives, and returns the remainder
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores := ignoreIndex{}
	for _, pkg := range pkgs {
		ignores.addPackage(pkg)
	}
	var diags []Diagnostic
	report := func(d Diagnostic) {
		if !ignores.suppressed(d) {
			diags = append(diags, d)
		}
	}
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Pkg: pkg, report: report}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		if err := a.Finish(report); err != nil {
			return nil, fmt.Errorf("analysis: %s finish: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return diags, nil
}

// ignoreDirective is the comment prefix of the per-line escape hatch:
//
//	//pplint:ignore rule1,rule2 optional reason
//
// The directive suppresses the named rules ("all" suppresses every rule)
// on the directive's own line and on the line directly below it, covering
// both trailing-comment and standalone-comment placement.
const ignoreDirective = "pplint:ignore"

// ignoreIndex maps filename -> line -> rule names suppressed there.
type ignoreIndex map[string]map[int]map[string]bool

func (ix ignoreIndex) addPackage(pkg *Package) {
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, ignoreDirective)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				rules := []string{"all"}
				if len(fields) > 0 {
					rules = strings.Split(fields[0], ",")
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := ix[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					ix[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := lines[line]
					if set == nil {
						set = map[string]bool{}
						lines[line] = set
					}
					for _, r := range rules {
						set[strings.TrimSpace(r)] = true
					}
				}
			}
		}
	}
}

func (ix ignoreIndex) suppressed(d Diagnostic) bool {
	set := ix[d.Pos.Filename][d.Pos.Line]
	return set != nil && (set[d.Rule] || set["all"])
}

// enclosingFuncName returns the name of the function declaration covering
// pos in file, or "" at file scope.
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd.Name.Name
		}
	}
	return ""
}

// securityCriticalPackages are the packages where the paper's security
// argument lives: Paillier encryption (§III-B), permutation obfuscation
// (§III-C/D), the cross-party protocol, and the garbled-circuit baseline.
var securityCriticalPackages = map[string]bool{
	"paillier":  true,
	"obfuscate": true,
	"protocol":  true,
	"garble":    true,
}

// pkgBase returns the last element of an import path.
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// exprString renders an expression for diagnostics.
func exprString(e ast.Expr) string { return types.ExprString(e) }

// Analyzers returns the full pplint suite with the given wirecompat
// configuration.
func Analyzers(wire WirecompatConfig) []*Analyzer {
	return []*Analyzer{
		CryptorandAnalyzer,
		RerandomizeAnalyzer,
		BigintaliasAnalyzer,
		NewWirecompatAnalyzer(wire),
		ErrauditAnalyzer,
		NewMetricnamesAnalyzer(),
		LockscopeAnalyzer,
		PairedreleaseAnalyzer,
		GoroleakAnalyzer,
		NewAtomicfieldAnalyzer(),
		CtxdeadlineAnalyzer,
	}
}
