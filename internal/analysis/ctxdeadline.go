package analysis

import (
	"go/ast"
)

// CtxdeadlineAnalyzer keeps deadline propagation honest on the request
// path: a function that takes a context.Context must thread it into the
// blocking work it performs. Concretely, inside any ctx-taking function
// of the serving-plane packages it flags
//
//   - context.Background() / context.TODO() passed to a callee that
//     accepts a context — that detaches the callee from the caller's
//     deadline, so a wire DeadlineMS the client negotiated silently
//     stops applying (derive with context.WithTimeout(ctx, ...) instead);
//   - time.Sleep — an unconditional sleep outlives a canceled request;
//     wait on a timer channel together with ctx.Done().
//
// Function literals are judged as their own functions: a closure that
// declares its own ctx parameter is checked, one that merely captures
// the outer ctx is not (its blocking calls execute under the enclosing
// function's dynamic extent, where patterns like single-flight refresh
// legitimately detach).
var CtxdeadlineAnalyzer = &Analyzer{
	Name: "ctxdeadline",
	Doc:  "ctx-taking functions on the request path must thread ctx into every blocking call that accepts one (no context.Background/TODO, no bare time.Sleep)",
	Run:  runCtxdeadline,
}

func runCtxdeadline(pass *Pass) error {
	if !concurrencyCriticalPackages[pkgBase(pass.Pkg.Path)] {
		return nil
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, u := range funcUnits(file) {
			if !funcTakesContext(pass, u) {
				continue
			}
			ast.Inspect(u.body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false // separate funcUnit
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(info, call)
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
					pass.Reportf(call.Pos(), "%s takes a context but calls time.Sleep, which cannot be canceled: the sleep outlives a canceled request and breaks DeadlineMS propagation — select on a timer and ctx.Done() instead", u.name())
					return true
				}
				for _, arg := range call.Args {
					ac, ok := ast.Unparen(arg).(*ast.CallExpr)
					if !ok {
						continue
					}
					afn := calleeFunc(info, ac)
					if afn == nil || afn.Pkg() == nil || afn.Pkg().Path() != "context" {
						continue
					}
					if afn.Name() == "Background" || afn.Name() == "TODO" {
						pass.Reportf(ac.Pos(), "%s takes a context but passes context.%s to %s: the callee detaches from the request deadline, so DeadlineMS stops propagating — pass the function's ctx (or derive from it with context.WithTimeout)", u.name(), afn.Name(), callLabel(call))
					}
				}
				return true
			})
		}
	}
	return nil
}

// funcTakesContext reports whether the unit declares a context.Context
// parameter.
func funcTakesContext(pass *Pass, u funcUnit) bool {
	ft := u.funcType()
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(typeOf(pass.Pkg.Info, field.Type)) {
			return true
		}
	}
	return false
}

// callLabel names a call target for diagnostics.
func callLabel(call *ast.CallExpr) string {
	return exprString(call.Fun)
}
