package analysis

import (
	"go/ast"
	"go/token"
)

// Generic worklist dataflow solvers over the CFG in cfg.go. Analyses
// supply a transfer function (how one block's nodes change a fact), a
// meet (how facts joining at a block merge), and an equality test for
// the fixpoint check. The solvers are optimistic: a block with no
// computed predecessor facts yet contributes nothing to a meet, so loop
// back-edges converge to the strongest fact the loop actually sustains
// rather than seeding pessimistic bottoms.

// FlowResult carries the per-block fixpoint of a dataflow run. In maps
// the fact at block entry (exit for backward runs), Out the fact after
// (before) the block's transfer.
type FlowResult[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// SolveForward runs a forward worklist fixpoint: facts flow along Succs
// edges from Entry (seeded with entry). transfer must be pure — it gets
// the block and the incoming fact and returns the outgoing fact. meet
// merges two facts at a join; equal bounds the iteration.
func SolveForward[F any](cfg *CFG, entry F, transfer func(*Block, F) F, meet func(F, F) F, equal func(F, F) bool) FlowResult[F] {
	return solve(cfg, entry, transfer, meet, equal, forwardDir)
}

// SolveBackward runs the mirror-image fixpoint: facts flow along Preds
// edges from Exit (seeded with exit). A backward transfer receives the
// fact holding *after* the block and returns the fact required *before*
// it; In then holds block-exit facts and Out block-entry facts.
func SolveBackward[F any](cfg *CFG, exit F, transfer func(*Block, F) F, meet func(F, F) F, equal func(F, F) bool) FlowResult[F] {
	return solve(cfg, exit, transfer, meet, equal, backwardDir)
}

type flowDir int

const (
	forwardDir flowDir = iota
	backwardDir
)

func solve[F any](cfg *CFG, seed F, transfer func(*Block, F) F, meet func(F, F) F, equal func(F, F) bool, dir flowDir) FlowResult[F] {
	res := FlowResult[F]{In: map[*Block]F{}, Out: map[*Block]F{}}
	start := cfg.Entry
	next := func(b *Block) []*Block { return b.Succs }
	prev := func(b *Block) []*Block { return b.Preds }
	if dir == backwardDir {
		start = cfg.Exit
		next, prev = prev, next
	}
	res.In[start] = seed
	work := []*Block{start}
	inWork := map[*Block]bool{start: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b] = false

		if b != start {
			var in F
			have := false
			for _, p := range prev(b) {
				po, ok := res.Out[p]
				if !ok {
					continue // optimistic: unvisited edge contributes nothing
				}
				if !have {
					in, have = po, true
				} else {
					in = meet(in, po)
				}
			}
			if !have {
				continue // unreachable so far
			}
			res.In[b] = in
		}

		out := transfer(b, res.In[b])
		old, seen := res.Out[b]
		if seen && equal(old, out) {
			continue
		}
		res.Out[b] = out
		for _, s := range next(b) {
			if !inWork[s] {
				inWork[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}

// --- path sensitivity -------------------------------------------------

// ErrGuard describes one recognized `if err != nil`-shape condition over
// a call's error result: Call is the acquire/producer call whose error
// is tested, and NonNil reports which branch sees the non-nil error (the
// Then branch for `err != nil`, the Else branch for `err == nil`).
type ErrGuard struct {
	Call   *ast.CallExpr
	NonNil *Block // branch taken when the error is non-nil (failure path)
	Nil    *Block // branch taken when the error is nil (success path)
}

// ErrGuards recognizes the dominant Go error-handling shapes in a
// function body and maps each guarded condition to its failure/success
// successor blocks, letting path-sensitive analyses evaluate facts only
// along the branch where they hold (e.g. a resource is held only on the
// success arm of `if err := x.Acquire(); err != nil { return err }`).
//
// Recognized shapes, matched against the CFG's recorded if-branches:
//
//	if err := f(); err != nil { ... }
//	err := f(); if err != nil { ... }   (same-block assignment)
//	if err == nil { ... } else { ... }
func ErrGuards(cfg *CFG, info importedTypes) map[ast.Expr]*ErrGuard {
	guards := map[ast.Expr]*ErrGuard{}
	// errDefs maps an error-typed identifier object (by name within the
	// function — good enough intraprocedurally) to the call that last
	// defined it in each block. Simplification: we look back within the
	// same block only, which covers both recognized shapes because the if
	// Init statement lands in the same block as the condition.
	for cond, br := range cfg.Branches {
		bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
			continue
		}
		ident, okL := errSide(bin.X, bin.Y)
		if !okL {
			continue
		}
		call := definingCall(cfg, cond, ident)
		if call == nil {
			continue
		}
		g := &ErrGuard{Call: call}
		if bin.Op == token.NEQ {
			g.NonNil, g.Nil = br.Then, br.Else
		} else {
			g.NonNil, g.Nil = br.Else, br.Then
		}
		guards[cond] = g
	}
	return guards
}

// importedTypes is the minimal surface ErrGuards needs; kept as an
// interface-free placeholder so the helper stays usable from fixtures
// without threading a full *types.Info.
type importedTypes interface{}

// errSide picks the identifier from an `x op nil` / `nil op x`
// comparison.
func errSide(x, y ast.Expr) (*ast.Ident, bool) {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if id, ok := ast.Unparen(x).(*ast.Ident); ok && isNil(y) {
		return id, true
	}
	if id, ok := ast.Unparen(y).(*ast.Ident); ok && isNil(x) {
		return id, true
	}
	return nil, false
}

// definingCall finds, in the block carrying cond, the most recent
// assignment `ident, ... = call(...)` (any position) before the
// condition node.
func definingCall(cfg *CFG, cond ast.Expr, ident *ast.Ident) *ast.CallExpr {
	for _, b := range cfg.Blocks {
		at := -1
		for i, n := range b.Nodes {
			if n == ast.Node(cond) {
				at = i
				break
			}
		}
		if at < 0 {
			continue
		}
		for i := at - 1; i >= 0; i-- {
			if call := assignsErrFromCall(b.Nodes[i], ident.Name); call != nil {
				return call
			}
		}
		return nil
	}
	return nil
}

// assignsErrFromCall matches `..., name, ... := f(...)` (or =) and
// returns f's call when name is among the left-hand sides.
func assignsErrFromCall(n ast.Node, name string) *ast.CallExpr {
	as, ok := n.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == name {
			return call
		}
	}
	return nil
}
