package analysis

import (
	"go/ast"
	"go/types"
)

// CryptorandAnalyzer forbids math/rand in security-critical packages.
//
// Invariant (paper §III-C/D): permutations and blinding factors must be
// drawn with cryptographic randomness — the guessing bound of 1/P! only
// holds if all P! permutations are reachable, and a math/rand generator
// seeded with 64 bits caps the reachable space at 2⁶⁴ ≪ P! for P ≥ 21.
// Deterministic-by-contract helpers (reproducible test/experiment seeds)
// are allowlisted by function name; _test.go files are never loaded.
var CryptorandAnalyzer = &Analyzer{
	Name: "cryptorand",
	Doc:  "math/rand is forbidden in security-critical packages (paillier, obfuscate, protocol, garble)",
	Run:  runCryptorand,
}

// cryptorandAllow maps security-critical package base names to functions
// that are deterministic by documented contract and may use math/rand.
var cryptorandAllow = map[string]map[string]bool{
	"obfuscate": {"NewSeeded": true},
}

// mathRandPaths are the forbidden import paths.
var mathRandPaths = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

func runCryptorand(pass *Pass) error {
	base := pkgBase(pass.Pkg.Path)
	if !securityCriticalPackages[base] {
		return nil
	}
	allow := cryptorandAllow[base]
	for _, file := range pass.Pkg.Files {
		// Blank or dot imports of math/rand leave no resolvable uses;
		// flag the import spec itself.
		for _, spec := range file.Imports {
			path := importPathOf(spec)
			if !mathRandPaths[path] {
				continue
			}
			if spec.Name != nil && (spec.Name.Name == "_" || spec.Name.Name == ".") {
				pass.Reportf(spec.Pos(), "%s import of %s in security-critical package %s (use crypto/rand; paper §III-D)", spec.Name.Name, path, base)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
			if !ok || !mathRandPaths[pn.Imported().Path()] {
				return true
			}
			if fn := enclosingFuncName(file, id.Pos()); fn != "" && allow[fn] {
				return true
			}
			pass.Reportf(id.Pos(), "math/rand used in security-critical package %s: draw from crypto/rand so the full randomness space is reachable (paper §III-D), or allowlist the function as deterministic-by-contract", base)
			return true
		})
	}
	return nil
}

// importPathOf unquotes an import spec's path.
func importPathOf(spec *ast.ImportSpec) string {
	p := spec.Path.Value
	if len(p) >= 2 {
		return p[1 : len(p)-1]
	}
	return p
}
