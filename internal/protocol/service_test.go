package protocol

import (
	"context"
	mathrand "math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"ppstream/internal/nn"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// TestServiceSessionEndToEnd runs the server/client session layer over
// an in-memory connection pair: the deployment path of cmd/ppserver and
// cmd/ppclient.
func TestServiceSessionEndToEnd(t *testing.T) {
	RegisterServiceWire()
	k := key(t)
	netw := buildNet(t)
	const factor = 1000

	c2s1, s2c1 := net.Pipe() // client -> server
	c2s2, s2c2 := net.Pipe() // server -> client
	serverIn := stream.NewTCPEdge(s2c1)
	serverOut := stream.NewTCPEdge(c2s2)
	clientOut := stream.NewTCPEdge(c2s1)
	clientIn := stream.NewTCPEdge(s2c2)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeSession(ctx, serverIn, serverOut, netw, factor, 4)
	}()

	client, err := NewClient(ctx, clientIn, clientOut, netw, k, factor, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := mathrand.New(mathrand.NewSource(201))
	for trial := 0; trial < 3; trial++ {
		x := tensor.Zeros(4)
		for i := range x.Data() {
			x.Data()[i] = r.NormFloat64()
		}
		got, err := client.Infer(ctx, x)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := netw.Forward(x)
		if !tensor.AllClose(want, got, 1e-2) {
			t.Errorf("trial %d: remote inference diverges", trial)
		}
	}
	client.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestServiceRejectsFactorMismatch: the server refuses a client whose
// scaling factor differs (the quantized weights would not match).
func TestServiceRejectsFactorMismatch(t *testing.T) {
	RegisterServiceWire()
	k := key(t)
	netw := buildNet(t)

	c2s, s2c := net.Pipe()
	serverIn := stream.NewTCPEdge(s2c)
	clientOut := stream.NewTCPEdge(c2s)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeSession(ctx, serverIn, nil, netw, 1000, 4)
	}()
	hello := &Hello{N: k.N.Bytes(), Factor: 999, Workers: 1}
	if err := clientOut.Send(ctx, &stream.Message{Payload: hello}); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err == nil {
		t.Error("factor mismatch accepted")
	}
}

// hostileHello sends a handcrafted Hello to a server over a full
// connection pair and returns the server's exit error plus the first frame
// (if any) the server sent back.
func hostileHello(t *testing.T, hello *Hello) (error, *stream.Message) {
	t.Helper()
	RegisterServiceWire()
	netw := buildNet(t)
	c2s1, s2c1 := net.Pipe()
	c2s2, s2c2 := net.Pipe()
	serverIn := stream.NewTCPEdge(s2c1)
	serverOut := stream.NewTCPEdge(c2s2)
	clientOut := stream.NewTCPEdge(c2s1)
	clientIn := stream.NewTCPEdge(s2c2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeSession(ctx, serverIn, serverOut, netw, 1000, 4)
	}()
	if err := clientOut.Send(ctx, &stream.Message{Payload: hello}); err != nil {
		t.Fatal(err)
	}
	reply, _ := clientIn.Recv(ctx)
	return <-serveErr, reply
}

// TestServiceRejectsTinyModulus: a Hello announcing a modulus far below
// the minimum key size must be rejected at session setup with a clear
// error frame — not fail deep inside the linear kernel.
func TestServiceRejectsTinyModulus(t *testing.T) {
	err, reply := hostileHello(t, &Hello{N: []byte{7}, Factor: 1000, Workers: 1})
	if err == nil {
		t.Fatal("tiny modulus accepted")
	}
	if !strings.Contains(err.Error(), "hello public key rejected") {
		t.Errorf("unexpected error: %v", err)
	}
	if reply == nil || reply.Err == "" {
		t.Error("client did not receive an error frame")
	}
}

// TestServiceRejectsEmptyKey: a Hello with no modulus bytes fails fast.
func TestServiceRejectsEmptyKey(t *testing.T) {
	err, reply := hostileHello(t, &Hello{Factor: 1000, Workers: 1})
	if err == nil {
		t.Fatal("empty public key accepted")
	}
	if reply == nil || reply.Err == "" {
		t.Error("client did not receive an error frame")
	}
}

// TestServiceRejectsOversizedKey: a hostile modulus above the size cap is
// rejected before the server allocates power tables over it.
func TestServiceRejectsOversizedKey(t *testing.T) {
	huge := make([]byte, maxHelloKeyBytes+1)
	huge[0] = 1
	err, reply := hostileHello(t, &Hello{N: huge, Factor: 1000, Workers: 1})
	if err == nil {
		t.Fatal("oversized public key accepted")
	}
	if !strings.Contains(err.Error(), "limit") {
		t.Errorf("unexpected error: %v", err)
	}
	if reply == nil || reply.Err == "" {
		t.Error("client did not receive an error frame")
	}
}

// TestHelloPublicKeyAcceptsValid: the validator passes a well-formed key
// through unchanged.
func TestHelloPublicKeyAcceptsValid(t *testing.T) {
	k := key(t)
	pk, err := helloPublicKey(&Hello{N: k.N.Bytes(), Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if pk.N.Cmp(k.N) != 0 {
		t.Error("modulus mangled")
	}
}

// TestDataProviderNeedsNoWeights: the client role builds from an
// architecture whose linear weights are zeroed — proving the data
// provider never depends on the vendor's parameters.
func TestDataProviderNeedsNoWeights(t *testing.T) {
	k := key(t)
	netw := buildNet(t)
	skeleton := netw.Clone()
	for _, l := range skeleton.Layers {
		if fc, ok := l.(*nn.FC); ok {
			fc.W.Fill(0)
			fc.B.Fill(0)
		}
	}
	dp, err := BuildDataProvider(skeleton, k, Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Pair the skeleton-built data provider with the real model
	// provider and run a full inference.
	mp, err := BuildModelProvider(netw, &k.PublicKey, Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{0.4, -0.2, 1.0, 0.3}, 4)
	env, err := dp.Encrypt(1, x)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < dp.Stages(); r++ {
		env, err = mp.ProcessLinear(r, env)
		if err != nil {
			t.Fatal(err)
		}
		env, err = dp.ProcessNonLinear(r, env)
		if err != nil {
			t.Fatal(err)
		}
	}
	want, _ := netw.Forward(x)
	if !tensor.AllClose(want, env.Result, 1e-2) {
		t.Error("skeleton-built data provider produced wrong result")
	}
}
