package protocol

import (
	"context"
	mathrand "math/rand"
	"testing"
	"time"

	"ppstream/internal/nn"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// TestProtocolOverTCP runs the full collaborative workflow with the two
// providers in separate goroutines connected by real TCP sockets and
// gob-encoded wire envelopes — the integration shape of the paper's
// distributed deployment.
func TestProtocolOverTCP(t *testing.T) {
	RegisterWire()
	k := key(t)
	net := buildNet(t)
	proto, err := Build(net, k, Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}

	toModel, modelAddr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	toData, dataAddr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Model provider service.
	errCh := make(chan error, 1)
	go func() {
		replies, err := stream.DialEdge(dataAddr)
		if err != nil {
			errCh <- err
			return
		}
		pk := proto.Model.PublicKey()
		for {
			msg, err := toModel.Recv(ctx)
			if err != nil {
				errCh <- nil // closed: normal shutdown
				return
			}
			w, ok := msg.Payload.(*WireEnvelope)
			if !ok {
				errCh <- err
				return
			}
			env, err := FromWire(w, pk)
			if err != nil {
				errCh <- err
				return
			}
			out, err := proto.Model.ProcessLinear(int(msg.Seq), env)
			if err != nil {
				errCh <- err
				return
			}
			reply, err := ToWire(out)
			if err != nil {
				errCh <- err
				return
			}
			if err := replies.Send(ctx, &stream.Message{Seq: msg.Seq, Payload: reply}); err != nil {
				errCh <- err
				return
			}
		}
	}()

	requests, err := stream.DialEdge(modelAddr)
	if err != nil {
		t.Fatal(err)
	}
	r := mathrand.New(mathrand.NewSource(101))
	x := tensor.Zeros(4)
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64()
	}
	env, err := proto.Data.Encrypt(1, x)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < proto.Rounds(); round++ {
		w, err := ToWire(env)
		if err != nil {
			t.Fatal(err)
		}
		if err := requests.Send(ctx, &stream.Message{Seq: uint64(round), Payload: w}); err != nil {
			t.Fatal(err)
		}
		msg, err := toData.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		reply, ok := msg.Payload.(*WireEnvelope)
		if !ok {
			t.Fatalf("unexpected payload %T", msg.Payload)
		}
		env, err = FromWire(reply, proto.Model.PublicKey())
		if err != nil {
			t.Fatal(err)
		}
		env, err = proto.Data.ProcessNonLinear(round, env)
		if err != nil {
			t.Fatal(err)
		}
	}
	requests.CloseSend()
	if err := <-errCh; err != nil {
		t.Fatalf("model provider service: %v", err)
	}
	if env.Result == nil {
		t.Fatal("no result")
	}
	want, _ := net.Forward(x)
	if !tensor.AllClose(want, env.Result, 1e-2) {
		t.Errorf("TCP protocol diverges: %v vs %v", env.Result.Data(), want.Data())
	}
}

// TestMixedLayerProtocol runs a network containing a mixed
// (ScaledSigmoid) layer end-to-end, exercising the IV-B decomposition
// inside the protocol.
func TestMixedLayerProtocol(t *testing.T) {
	k := key(t)
	r := mathrand.New(mathrand.NewSource(102))
	ss := nn.NewScaledSigmoid("mixed", 5)
	for i := range ss.Scale.Data() {
		ss.Scale.Data()[i] = 0.5 + r.Float64()
	}
	net, err := nn.NewNetwork("mixed-net", tensor.Shape{4},
		nn.NewFC("fc1", 4, 5, r),
		ss,
		nn.NewFC("fc2", 5, 3, r),
		nn.NewSoftMax("sm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := Build(net, k, Config{Factor: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if proto.Rounds() != 2 {
		t.Fatalf("mixed net rounds %d, want 2 (fc1+scale | sigmoid | fc2 | softmax)", proto.Rounds())
	}
	x := tensor.MustFromSlice([]float64{0.2, -0.7, 1.1, 0.4}, 4)
	want, _ := net.Forward(x)
	got, err := proto.Infer(1, x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, got, 5e-3) {
		t.Errorf("mixed-layer protocol diverges: %v vs %v", got.Data(), want.Data())
	}
}

// TestConcurrentRequests checks the model provider's per-request
// obfuscation state isolates interleaved requests.
func TestConcurrentRequests(t *testing.T) {
	k := key(t)
	net := buildNet(t)
	proto, err := Build(net, k, Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	r := mathrand.New(mathrand.NewSource(103))
	const n = 4
	inputs := make([]*tensor.Dense, n)
	envs := make([]*Envelope, n)
	for i := range inputs {
		x := tensor.Zeros(4)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()
		}
		inputs[i] = x
		env, err := proto.Data.Encrypt(uint64(i), x)
		if err != nil {
			t.Fatal(err)
		}
		envs[i] = env
	}
	// Interleave: all requests round 0, then all round 1 — the state
	// map must keep each request's permutations separate.
	for round := 0; round < proto.Rounds(); round++ {
		for i := range envs {
			out, err := proto.Model.ProcessLinear(round, envs[i])
			if err != nil {
				t.Fatal(err)
			}
			envs[i], err = proto.Data.ProcessNonLinear(round, out)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range envs {
		want, _ := net.Forward(inputs[i])
		if envs[i].Result == nil {
			t.Fatalf("request %d has no result", i)
		}
		if !tensor.AllClose(want, envs[i].Result, 1e-2) {
			t.Errorf("request %d diverges under interleaving", i)
		}
	}
}
