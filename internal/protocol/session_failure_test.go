package protocol

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ppstream/internal/obs"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// startRawSession spins up a server session over TCP and returns a raw
// client edge plus the registry, with the Hello already exchanged — the
// harness for tests that drive round frames by hand.
func startRawSession(t *testing.T, cfg SessionConfig) (stream.Edge, *obs.Registry, chan error, context.Context) {
	t.Helper()
	RegisterServiceWire()
	k := key(t)
	netw := buildNet(t)
	cfg.Factor = 1000
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry("raw-session")
	}
	serverEdge, addr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeSessionConfig(ctx, serverEdge, serverEdge, netw, cfg)
	}()
	edge, err := stream.DialEdge(addr)
	if err != nil {
		t.Fatal(err)
	}
	hello := &Hello{N: k.N.Bytes(), Factor: 1000, Workers: 1}
	if err := edge.Send(ctx, &stream.Message{Payload: hello}); err != nil {
		t.Fatal(err)
	}
	return edge, cfg.Registry, serveErr, ctx
}

// roundZero encrypts a fresh input for req and returns its round-0 wire
// envelope.
func roundZero(t *testing.T, req uint64) *WireEnvelope {
	t.Helper()
	proto, err := Build(buildNet(t), key(t), Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	env, err := proto.Data.Encrypt(req, tensor.Zeros(4))
	if err != nil {
		t.Fatal(err)
	}
	w, err := ToWire(env)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestSessionEvictionRaceTypedError: a round frame arriving after the
// janitor evicted the request's state must get a clean typed
// CodeEvicted error frame — not stale permutation state — and the
// session must keep serving new requests. Run under -race.
func TestSessionEvictionRaceTypedError(t *testing.T) {
	edge, reg, serveErr, ctx := startRawSession(t, SessionConfig{IdleTTL: 60 * time.Millisecond})
	k := key(t)
	proto, err := Build(buildNet(t), k, Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	env, err := proto.Data.Encrypt(1, tensor.Zeros(4))
	if err != nil {
		t.Fatal(err)
	}
	w, err := ToWire(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := edge.Send(ctx, &stream.Message{Seq: 1, Payload: &roundFrame{Round: 0, Env: w}}); err != nil {
		t.Fatal(err)
	}
	reply, err := edge.Recv(ctx)
	if err != nil || reply.Err != "" {
		t.Fatalf("round 0: %v %q", err, reply.Err)
	}
	// Build a legitimate round-1 frame from the reply, but stall past the
	// idle TTL first so the janitor evicts the request under us.
	renv, err := FromWire(reply.Payload.(*roundFrame).Env, &k.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	renv.Req = 1
	renv, err = proto.Data.ProcessNonLinear(0, renv)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := ToWire(renv)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for reg.Snapshot().Counters["requests.evicted"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := edge.Send(ctx, &stream.Message{Seq: 1, Payload: &roundFrame{Round: 1, Env: w1}}); err != nil {
		t.Fatal(err)
	}
	late, err := edge.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if late.Err == "" {
		t.Fatal("late round frame for evicted request was processed against stale state")
	}
	if late.ErrCode != CodeEvicted {
		t.Errorf("late round error code %d, want CodeEvicted; err %q", late.ErrCode, late.Err)
	}
	if got := reg.Snapshot().Counters["requests.stale_rounds"]; got != 1 {
		t.Errorf("requests.stale_rounds = %d", got)
	}
	// The session survives: a fresh request completes normally.
	if err := edge.Send(ctx, &stream.Message{Seq: 2, Payload: &roundFrame{Round: 0, Env: roundZero(t, 2)}}); err != nil {
		t.Fatal(err)
	}
	if reply, err := edge.Recv(ctx); err != nil || reply.Err != "" {
		t.Fatalf("fresh request after eviction: %v %q", err, reply.Err)
	}
	edge.CloseSend()
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestSessionDeadlineEviction: a request whose propagated deadline
// expires mid-protocol is evicted by the janitor ahead of the idle TTL
// (TTL 400ms -> 100ms ticks; the 30ms budget expires long before the
// idle cutoff) and is accounted by the deadline counter, not the idle
// one.
func TestSessionDeadlineEviction(t *testing.T) {
	edge, reg, serveErr, ctx := startRawSession(t, SessionConfig{IdleTTL: 400 * time.Millisecond})
	if err := edge.Send(ctx, &stream.Message{Seq: 7, Payload: &roundFrame{
		Round: 0, Env: roundZero(t, 7), DeadlineMS: 30,
	}}); err != nil {
		t.Fatal(err)
	}
	reply, err := edge.Recv(ctx)
	if err != nil || reply.Err != "" {
		t.Fatalf("round 0: %v %q", err, reply.Err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		snap := reg.Snapshot()
		if snap.Counters["requests.deadline_evicted"] == 1 {
			if snap.Counters["requests.evicted"] != 0 {
				t.Errorf("deadline-expired request double-counted as idle eviction")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deadline-expired request never evicted: %+v", snap.Counters)
		}
		time.Sleep(10 * time.Millisecond)
	}
	edge.CloseSend()
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestSessionShedTypedRejection: with a shared in-flight bound of 1, a
// second request's first round is rejected with CodeShed while the
// first is mid-protocol, and admitted once the first completes — the
// slot is released with the request, not leaked.
func TestSessionShedTypedRejection(t *testing.T) {
	reg := obs.NewRegistry("shed-session")
	shed := NewShedder(ShedConfig{MaxInFlight: 1, Registry: reg})
	edge, _, serveErr, ctx := startRawSession(t, SessionConfig{Shed: shed, Registry: reg})
	k := key(t)
	proto, err := Build(buildNet(t), k, Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	env, err := proto.Data.Encrypt(1, tensor.Zeros(4))
	if err != nil {
		t.Fatal(err)
	}
	w, err := ToWire(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := edge.Send(ctx, &stream.Message{Seq: 1, Payload: &roundFrame{Round: 0, Env: w}}); err != nil {
		t.Fatal(err)
	}
	reply, err := edge.Recv(ctx)
	if err != nil || reply.Err != "" {
		t.Fatalf("request 1 round 0: %v %q", err, reply.Err)
	}
	// Request 1 holds the only slot mid-protocol: request 2 must shed.
	if err := edge.Send(ctx, &stream.Message{Seq: 2, Payload: &roundFrame{Round: 0, Env: roundZero(t, 2)}}); err != nil {
		t.Fatal(err)
	}
	shedReply, err := edge.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if shedReply.Err == "" || shedReply.ErrCode != CodeShed {
		t.Fatalf("second request not shed: code %d err %q", shedReply.ErrCode, shedReply.Err)
	}
	// Finish request 1 (round 1 is the last for the 2-round net).
	renv, err := FromWire(reply.Payload.(*roundFrame).Env, &k.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	renv.Req = 1
	renv, err = proto.Data.ProcessNonLinear(0, renv)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := ToWire(renv)
	if err != nil {
		t.Fatal(err)
	}
	if err := edge.Send(ctx, &stream.Message{Seq: 1, Payload: &roundFrame{Round: 1, Env: w1}}); err != nil {
		t.Fatal(err)
	}
	if fin, err := edge.Recv(ctx); err != nil || fin.Err != "" {
		t.Fatalf("request 1 final round: %v %q", err, fin.Err)
	}
	// Slot released with the completed request: request 2 now admits.
	if err := edge.Send(ctx, &stream.Message{Seq: 2, Payload: &roundFrame{Round: 0, Env: roundZero(t, 2)}}); err != nil {
		t.Fatal(err)
	}
	if retry, err := edge.Recv(ctx); err != nil || retry.Err != "" {
		t.Fatalf("request 2 after release: %v %q", err, retry.Err)
	}
	if got := reg.Snapshot().Counters["shed.rejected.total"]; got != 1 {
		t.Errorf("shed.rejected.total = %d", got)
	}
	edge.CloseSend()
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	if shed.InFlight() != 0 {
		t.Errorf("shed slots leaked: %d in flight after session close", shed.InFlight())
	}
}

// TestClientRetriesRoundZero: the client transparently retries a typed
// round-0 shed rejection with backoff and succeeds on the next attempt,
// counting the retry; the deadline budget rides every frame.
func TestClientRetriesRoundZero(t *testing.T) {
	RegisterServiceWire()
	k := key(t)
	netw := buildNet(t)
	proto, err := Build(netw, k, Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	serverEdge, addr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Synthetic server: sheds the first round-0 frame it sees, then
	// serves every later frame off the real model provider — a
	// deterministic script for the client's retry path.
	var sawDeadline atomic.Int64
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- func() error {
			first, err := serverEdge.Recv(ctx)
			if err != nil {
				return err
			}
			if _, ok := first.Payload.(*Hello); !ok {
				return errors.New("expected hello")
			}
			rejected := false
			for {
				msg, err := serverEdge.Recv(ctx)
				if err != nil {
					if errors.Is(err, stream.ErrEdgeClosed) {
						return nil
					}
					return err
				}
				frame := msg.Payload.(*roundFrame)
				if frame.DeadlineMS > 0 {
					sawDeadline.Store(frame.DeadlineMS)
				}
				if frame.Round == 0 && !rejected {
					rejected = true
					if err := serverEdge.Send(ctx, &stream.Message{
						Seq: msg.Seq, Err: "synthetic overload", ErrCode: CodeShed,
					}); err != nil {
						return err
					}
					continue
				}
				env, err := FromWire(frame.Env, &k.PublicKey)
				if err != nil {
					return err
				}
				out, err := proto.Model.ProcessLinear(frame.Round, env)
				if err != nil {
					return err
				}
				wout, err := ToWire(out)
				if err != nil {
					return err
				}
				if err := serverEdge.Send(ctx, &stream.Message{
					Seq: msg.Seq, Payload: &roundFrame{Round: frame.Round, Env: wout, TC: frame.TC},
				}); err != nil {
					return err
				}
			}
		}()
	}()

	clientEdge, err := stream.DialEdge(addr)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry("client-retry")
	client, err := NewClientOpts(ctx, clientEdge, clientEdge, netw, k, 1000, ClientOptions{
		Workers:  1,
		Deadline: 30 * time.Second,
		Retry:    RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := client.Infer(ctx, tensor.MustFromSlice([]float64{1, 2, 3, 4}, 4))
	if err != nil {
		t.Fatalf("inference did not survive a retryable round-0 rejection: %v", err)
	}
	if out == nil {
		t.Fatal("nil result")
	}
	if got := reg.Snapshot().Counters["retry.attempts"]; got != 1 {
		t.Errorf("retry.attempts = %d, want 1", got)
	}
	if sawDeadline.Load() <= 0 {
		t.Error("deadline budget did not ride the round frames")
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}

// TestClientDeadlineLocal: an already-spent budget fails the inference
// locally with ErrDeadline before any frame is sent — terminal, not
// retryable.
func TestClientDeadlineLocal(t *testing.T) {
	RegisterServiceWire()
	k := key(t)
	netw := buildNet(t)
	serverEdge, addr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeSessionConfig(ctx, serverEdge, serverEdge, netw, SessionConfig{
			Factor:   1000,
			Registry: obs.NewRegistry("deadline-local"),
		})
	}()
	edge, err := stream.DialEdge(addr)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClientOpts(ctx, edge, edge, netw, k, 1000, ClientOptions{
		Workers:  1,
		Deadline: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Infer(ctx, tensor.Zeros(4))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("spent budget returned %v, want ErrDeadline", err)
	}
	if Retryable(err) {
		t.Error("deadline expiry must not be retryable")
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}
