// Package protocol implements PP-Stream's hybrid privacy-preserving
// inference workflow (paper Section III, Figure 3) between the two
// honest-but-curious parties:
//
//   - the model provider executes all linear operations homomorphically
//     over Paillier ciphertexts and obfuscates tensors (random position
//     permutation) before they return to the data provider;
//   - the data provider encrypts its input, and for each non-linear stage
//     decrypts the (permuted) tensor, applies the element-wise non-linear
//     functions in plaintext, re-encrypts, and returns it.
//
// The last round skips obfuscation so the data provider can evaluate the
// final position-dependent SoftMax and read the inference result
// (Section III-A); the model parameters of the last linear stage remain
// safe because the data provider never sees that stage's de-obfuscated
// input (Section III-D).
package protocol

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"math/big"
	"sync"
	"time"

	"ppstream/internal/backend"
	"ppstream/internal/nn"
	"ppstream/internal/obfuscate"
	"ppstream/internal/obs"
	"ppstream/internal/paillier"
	"ppstream/internal/partition"
	"ppstream/internal/qnn"
	"ppstream/internal/scaling"
	"ppstream/internal/secshare"
	"ppstream/internal/tensor"
)

// Envelope is the in-process message flowing between protocol stages:
// one round's activation tensor in its backend's representation plus the
// scale exponent, or the final plaintext result.
type Envelope struct {
	// Req identifies the inference request.
	Req uint64
	// Backend names the representation this envelope carries; empty means
	// paillier-he (the legacy protocol, and frames from peers predating
	// backend negotiation).
	Backend backend.Kind
	// CT is the encrypted tensor (paillier-he rounds). Between the model
	// and data provider it is obfuscated except in the last round.
	CT *paillier.CipherTensor
	// Sh is the additively shared tensor (ss-gc rounds).
	Sh *tensor.Tensor[secshare.Shares]
	// Plain is the plaintext integer tensor (clear rounds past the
	// certified boundary).
	Plain *tensor.Tensor[*big.Int]
	// Exp is the plaintext scale exponent: values are real·F^Exp.
	Exp int
	// Obfuscated records whether the element positions are permuted.
	Obfuscated bool
	// Result is the final inference output (last stage only).
	Result *tensor.Dense
}

// BackendKind resolves the envelope's backend, mapping the empty legacy
// value to paillier-he.
func (env *Envelope) BackendKind() backend.Kind {
	if env.Backend == "" {
		return backend.PaillierHE
	}
	return env.Backend
}

// payload views the envelope's activation tensor as a backend payload,
// verifying the representation matching the declared kind is present.
func (env *Envelope) payload() (*backend.Payload, error) {
	p := &backend.Payload{Kind: env.BackendKind(), CT: env.CT, Sh: env.Sh, Plain: env.Plain, Exp: env.Exp}
	if _, err := p.Shape(); err != nil {
		return nil, err
	}
	return p, nil
}

// envelopeWith wraps a backend payload back into an envelope.
func envelopeWith(req uint64, p *backend.Payload, obfuscated bool) *Envelope {
	return &Envelope{Req: req, Backend: p.Kind, CT: p.CT, Sh: p.Sh, Plain: p.Plain, Exp: p.Exp, Obfuscated: obfuscated}
}

// Config parameterizes protocol construction.
type Config struct {
	// Factor is the parameter scaling factor F (from scaling.SelectFactor).
	Factor int64
	// Workers is the default thread count used by stages when no
	// per-stage plan overrides it.
	Workers int
	// Pool, when non-nil, provides precomputed encryption blinding for
	// the data provider's re-encryption step. The model provider's linear
	// kernel also draws output re-randomization factors from it unless
	// BlindPool overrides.
	Pool *paillier.Pool
	// BlindPool, when non-nil, supplies the model provider's output
	// re-randomization factors (the kernel blinds every ciphertext before
	// it leaves the provider). Falls back to Pool, then to inline
	// crypto/rand factors.
	BlindPool *paillier.Pool
}

// Protocol binds a model provider and a data provider for one scaled
// network. Stages alternate linear (model provider) and non-linear (data
// provider), matching the merged primitive layers.
type Protocol struct {
	Model *ModelProvider
	Data  *DataProvider
	// Merged is the alternating stage list the roles were built from.
	Merged []*nn.PrimitiveLayer
	cfg    Config
}

// validateWorkflow merges the network and checks the workflow's
// structural requirements (alternation, linear start, non-linear finish,
// element-wise intermediate non-linear stages).
func validateWorkflow(net *nn.Network) ([]*nn.PrimitiveLayer, error) {
	merged, err := nn.Merge(net)
	if err != nil {
		return nil, err
	}
	if err := nn.CheckAlternating(merged); err != nil {
		return nil, err
	}
	if err := nn.ProtocolShape(merged); err != nil {
		return nil, err
	}
	// Middle non-linear stages run on permuted tensors: they must be
	// element-wise (Section III-C). The final stage may contain SoftMax.
	for i, m := range merged {
		if m.Kind == nn.NonLinear && i != len(merged)-1 && !m.ElementWiseOnly() {
			return nil, fmt.Errorf("protocol: intermediate non-linear stage %s contains position-dependent operations; replace MaxPool (nn.ReplaceMaxPool) or move SoftMax to the last layer", m.Name())
		}
	}
	return merged, nil
}

// BuildModelProvider constructs the model-provider role alone: it needs
// the network (its own weights) and only the data provider's PUBLIC key.
// This is the entry point for a real split deployment (cmd/ppserver).
func BuildModelProvider(net *nn.Network, pk *paillier.PublicKey, cfg Config) (*ModelProvider, error) {
	if cfg.Factor <= 0 {
		return nil, fmt.Errorf("protocol: scaling factor %d must be positive", cfg.Factor)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if err := pk.Validate(); err != nil {
		return nil, err
	}
	merged, err := validateWorkflow(net)
	if err != nil {
		return nil, err
	}
	var evOpts []paillier.EvalOption
	if blind := cfg.BlindPool; blind != nil {
		evOpts = append(evOpts, paillier.WithBlinder(blind))
	} else if cfg.Pool != nil {
		evOpts = append(evOpts, paillier.WithBlinder(cfg.Pool))
	}
	mp := &ModelProvider{
		pk:      pk,
		eval:    paillier.NewEvaluator(pk, evOpts...),
		factor:  cfg.Factor,
		workers: cfg.Workers,
		state:   map[uint64]*obfuscate.Rounds{},
	}
	for i, m := range merged {
		if m.Kind != nn.Linear {
			continue
		}
		ops, err := qnn.QuantizeStage(m, cfg.Factor)
		if err != nil {
			return nil, err
		}
		// The ss-gc backend pays a garbled-circuit ReLU on the nonlinear
		// side of intermediate rounds; the final nonlinear stage runs in
		// the clear on the reconstructed result, so it never garbles.
		reluFollows := false
		if i+1 < len(merged)-1 && len(merged[i+1].Layers) > 0 {
			_, reluFollows = merged[i+1].Layers[0].(*nn.ReLU)
		}
		mp.stages = append(mp.stages, &linearStage{
			name:        m.Name(),
			ops:         ops,
			inShape:     m.InShape.Clone(),
			outShape:    m.OutShape.Clone(),
			threads:     cfg.Workers,
			reluFollows: reluFollows,
		})
	}
	if len(mp.stages) == 0 {
		return nil, fmt.Errorf("protocol: network has no linear stages")
	}
	return mp, nil
}

// BuildDataProvider constructs the data-provider role alone: it needs
// the private key and the network ARCHITECTURE. Linear-layer weights are
// never read — only layer kinds and shapes — so the data provider can be
// built from an architecture skeleton without the vendor's parameters.
func BuildDataProvider(net *nn.Network, sk *paillier.PrivateKey, cfg Config) (*DataProvider, error) {
	if cfg.Factor <= 0 {
		return nil, fmt.Errorf("protocol: scaling factor %d must be positive", cfg.Factor)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	merged, err := validateWorkflow(net)
	if err != nil {
		return nil, err
	}
	dp := &DataProvider{
		sk:      sk,
		factor:  cfg.Factor,
		workers: cfg.Workers,
		pool:    cfg.Pool,
	}
	for _, m := range merged {
		if m.Kind != nn.NonLinear {
			continue
		}
		dp.stages = append(dp.stages, &nonLinearStage{
			layers:   m.Layers,
			inShape:  m.InShape.Clone(),
			outShape: m.OutShape.Clone(),
			threads:  cfg.Workers,
		})
	}
	if len(dp.stages) == 0 {
		return nil, fmt.Errorf("protocol: network has no non-linear stages")
	}
	return dp, nil
}

// Build validates the network's protocol shape, quantizes its linear
// stages at cfg.Factor, and wires the two roles in one process (tests,
// the CipherBase baseline, and the single-host engine). The private key
// stays inside the data provider; the model provider receives only the
// public key.
func Build(net *nn.Network, key *paillier.PrivateKey, cfg Config) (*Protocol, error) {
	mp, err := BuildModelProvider(net, &key.PublicKey, cfg)
	if err != nil {
		return nil, err
	}
	dp, err := BuildDataProvider(net, key, cfg)
	if err != nil {
		return nil, err
	}
	if len(mp.stages) != len(dp.stages) {
		return nil, fmt.Errorf("protocol: %d linear vs %d non-linear stages — workflow requires pairs", len(mp.stages), len(dp.stages))
	}
	merged, err := validateWorkflow(net)
	if err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &Protocol{Model: mp, Data: dp, Merged: merged, cfg: cfg}, nil
}

// BuildAuto selects the scaling factor with the paper's algorithm on the
// provided training subset, then builds the protocol.
func BuildAuto(net *nn.Network, key *paillier.PrivateKey, xs []*tensor.Dense, ys []int, cfg Config) (*Protocol, *scaling.Result, error) {
	res, err := scaling.SelectFactor(net, xs, ys, 0)
	if err != nil {
		return nil, nil, err
	}
	cfg.Factor = res.Factor
	p, err := Build(net, key, cfg)
	if err != nil {
		return nil, nil, err
	}
	return p, res, nil
}

// Rounds returns the number of linear/non-linear round pairs.
func (p *Protocol) Rounds() int { return len(p.Model.stages) }

// ApplyPlan installs one backend assignment on both roles of an
// in-process protocol. A nil plan restores the legacy all-Paillier
// behavior on both sides.
func (p *Protocol) ApplyPlan(plan []backend.Kind) error {
	if err := p.Model.SetBackendPlan(plan); err != nil {
		return err
	}
	if err := p.Data.SetBackendPlan(plan); err != nil {
		// Keep the two roles consistent: roll the model side back.
		_ = p.Model.SetBackendPlan(nil)
		return err
	}
	return nil
}

// ApplyProfile solves the backend assignment for the given deployment
// profile and certified clear boundary (rounds, i.e. no clear execution,
// when boundary <= 0) and installs it on both roles, returning the plan.
func (p *Protocol) ApplyProfile(profile backend.Profile, boundary int) (*backend.Plan, error) {
	if boundary <= 0 {
		boundary = p.Rounds()
	}
	plan, err := backend.PlanFor(profile, p.Model.LayerInfos(), boundary, p.Model.pk.N.BitLen())
	if err != nil {
		return nil, err
	}
	if err := p.ApplyPlan(plan.Assignment); err != nil {
		return nil, err
	}
	return plan, nil
}

// Infer runs the full collaborative workflow sequentially for one input:
// the reference execution used by tests, the CipherBase baseline, and
// offline profiling. The streaming engine (internal/core) runs the same
// per-stage methods inside pipeline stages.
func (p *Protocol) Infer(req uint64, x *tensor.Dense) (*tensor.Dense, error) {
	env, err := p.Data.Encrypt(req, x)
	if err != nil {
		return nil, err
	}
	rounds := p.Rounds()
	for r := 0; r < rounds; r++ {
		env, err = p.Model.ProcessLinear(r, env)
		if err != nil {
			return nil, fmt.Errorf("protocol: round %d linear: %w", r, err)
		}
		env, err = p.Data.ProcessNonLinear(r, env)
		if err != nil {
			return nil, fmt.Errorf("protocol: round %d non-linear: %w", r, err)
		}
	}
	if env.Result == nil {
		return nil, fmt.Errorf("protocol: workflow ended without a result")
	}
	p.Model.Forget(req)
	return env.Result, nil
}

// linearStage is one model-provider stage: quantized ops plus runtime
// configuration.
type linearStage struct {
	name     string
	ops      []qnn.Op
	inShape  tensor.Shape
	outShape tensor.Shape
	// threads is y_i from the resource allocation plan.
	threads int
	// inputPartition enables input tensor partitioning (conv stages).
	inputPartition bool
	// usePartitionExec routes execution through the partitioning
	// executor (physical per-thread input views); otherwise the stage
	// uses the shared-memory fast path.
	usePartitionExec bool
	// reluFollows marks that the intermediate nonlinear stage after this
	// round starts with ReLU (the ss-gc backend garbles there).
	reluFollows bool
}

// execStage views a linear stage as a backend stage description.
func (st *linearStage) execStage() *backend.Stage {
	return &backend.Stage{
		Ops:              st.ops,
		InShape:          st.inShape,
		OutShape:         st.outShape,
		Threads:          st.threads,
		InputPartition:   st.inputPartition,
		UsePartitionExec: st.usePartitionExec,
	}
}

// ModelProvider executes linear stages under the session's per-round
// backend plan (paillier-he unless a plan says otherwise) and manages
// per-request obfuscation state. It never sees the private key.
type ModelProvider struct {
	pk      *paillier.PublicKey
	eval    *paillier.Evaluator
	factor  int64
	workers int
	stages  []*linearStage

	mu      sync.Mutex
	state   map[uint64]*obfuscate.Rounds
	limiter *RateLimiter

	planMu sync.RWMutex
	plan   []backend.Kind
}

// PublicKey exposes the provider's encryption key.
func (mp *ModelProvider) PublicKey() *paillier.PublicKey { return mp.pk }

// Evaluator exposes the provider's homomorphic evaluation context (key,
// blinding supply, kernel configuration).
func (mp *ModelProvider) Evaluator() *paillier.Evaluator { return mp.eval }

// Instrument publishes the linear kernel's phase timings to reg as the
// "kernel.precompute" (per-layer preprocessing: shared inverses and
// power tables) and "kernel.dot" (per-row multi-exponentiation)
// histograms.
func (mp *ModelProvider) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	pre := reg.Histogram("kernel.precompute")
	dot := reg.Histogram("kernel.dot")
	mp.eval.SetMetrics(paillier.KernelMetrics{Precompute: pre.Observe, Dot: dot.Observe})
}

// Stages returns the number of linear stages.
func (mp *ModelProvider) Stages() int { return len(mp.stages) }

// LayerInfos returns the planner's view of every linear round: the
// non-zero weight multiplication count, output size, and whether a
// garbled ReLU would follow — the inputs backend.PlanFor consumes.
func (mp *ModelProvider) LayerInfos() []backend.LayerInfo {
	out := make([]backend.LayerInfo, len(mp.stages))
	for r, st := range mp.stages {
		muls := 0
		shape := st.inShape
		for _, op := range st.ops {
			muls += qnn.MulCount(op, shape)
			if next, err := op.OutShape(shape); err == nil {
				shape = next
			}
		}
		out[r] = backend.LayerInfo{
			Name:        st.name,
			Muls:        muls,
			Outs:        st.outShape.Size(),
			ReluFollows: st.reluFollows,
		}
	}
	return out
}

// SetBackendPlan installs the session's per-round backend assignment.
// Round 0 must stay paillier-he: the raw input never leaves the data
// provider unencrypted. A nil plan restores the legacy all-Paillier
// behavior. Safe to call concurrently with round processing.
func (mp *ModelProvider) SetBackendPlan(plan []backend.Kind) error {
	if plan != nil {
		if len(plan) != len(mp.stages) {
			return fmt.Errorf("protocol: plan covers %d rounds, provider has %d", len(plan), len(mp.stages))
		}
		for r, k := range plan {
			if _, err := backend.For(k); err != nil {
				return fmt.Errorf("protocol: plan round %d: %w", r, err)
			}
		}
		if plan[0] != backend.PaillierHE {
			return fmt.Errorf("protocol: plan runs round 0 on %q — the input must stay encrypted", plan[0])
		}
		plan = append([]backend.Kind(nil), plan...)
	}
	mp.planMu.Lock()
	mp.plan = plan
	mp.planMu.Unlock()
	return nil
}

// BackendPlan returns a copy of the installed plan, nil when the
// provider runs the legacy all-Paillier protocol.
func (mp *ModelProvider) BackendPlan() []backend.Kind {
	mp.planMu.RLock()
	defer mp.planMu.RUnlock()
	return append([]backend.Kind(nil), mp.plan...)
}

// RoundBackend returns the backend round r executes on.
func (mp *ModelProvider) RoundBackend(r int) backend.Kind {
	mp.planMu.RLock()
	defer mp.planMu.RUnlock()
	if r >= 0 && r < len(mp.plan) {
		return mp.plan[r]
	}
	return backend.PaillierHE
}

// SetBlindPool replaces the evaluator's blinding supply — sessions call
// this once the backend plan is known, so the pool can be sized to the
// plan's actual Paillier rounds.
func (mp *ModelProvider) SetBlindPool(pool *paillier.Pool) {
	var opts []paillier.EvalOption
	if pool != nil {
		opts = append(opts, paillier.WithBlinder(pool))
	}
	mp.eval = paillier.NewEvaluator(mp.pk, opts...)
}

// SetStagePlan overrides stage r's thread count and partitioning mode
// (from the load-balanced allocation plan).
func (mp *ModelProvider) SetStagePlan(r, threads int, inputPartition, usePartitionExec bool) error {
	if r < 0 || r >= len(mp.stages) {
		return fmt.Errorf("protocol: no linear stage %d", r)
	}
	if threads < 1 {
		return fmt.Errorf("protocol: stage %d needs ≥ 1 thread", r)
	}
	mp.stages[r].threads = threads
	mp.stages[r].inputPartition = inputPartition
	mp.stages[r].usePartitionExec = usePartitionExec
	return nil
}

func (mp *ModelProvider) rounds(req uint64) *obfuscate.Rounds {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	r, ok := mp.state[req]
	if !ok {
		r = &obfuscate.Rounds{}
		mp.state[req] = r
	}
	return r
}

// Forget drops per-request obfuscation state once a request completes.
func (mp *ModelProvider) Forget(req uint64) {
	mp.mu.Lock()
	delete(mp.state, req)
	mp.mu.Unlock()
}

// LinearTiming splits one linear round's server-side work into the
// homomorphic kernel proper and the obfuscation bookkeeping around it
// (inverse permutation on entry plus permutation on exit), feeding the
// "server-kernel" / "server-permute" trace segments.
type LinearTiming struct {
	Kernel  time.Duration
	Permute time.Duration
}

// ProcessLinear executes round r's steps at the model provider: inverse
// obfuscation (rounds > 0), the round's linear stage on the backend the
// session plan assigns, and obfuscation (except the last round) — steps
// 1.3–1.4, 2.5–2.7, and 3.2–3.3 of Figure 3.
func (mp *ModelProvider) ProcessLinear(r int, env *Envelope) (*Envelope, error) {
	out, _, err := mp.ProcessLinearTimed(r, env)
	return out, err
}

// ProcessLinearTimed is ProcessLinear reporting how the round's wall
// time divided between the execution kernel and permutation work.
func (mp *ModelProvider) ProcessLinearTimed(r int, env *Envelope) (*Envelope, LinearTiming, error) {
	return mp.processLinear(r, env, mp.eval, nil)
}

// ProcessLinearMetered is ProcessLinearTimed with crypto-op accounting:
// the round runs through a metered view of the provider's evaluator so
// its op counts land in m without touching other requests sharing the
// evaluator; non-Paillier backends meter their share, garbled-circuit,
// and plaintext op counts into m directly. A nil meter falls back to the
// unmetered path.
func (mp *ModelProvider) ProcessLinearMetered(r int, env *Envelope, m *obs.CostMeter) (*Envelope, LinearTiming, error) {
	ev := mp.eval
	if m != nil {
		ev = ev.WithCost(m)
	}
	return mp.processLinear(r, env, ev, m)
}

// cryptoSeed draws a secshare engine seed from crypto/rand: the triple
// dealer's stream must be unpredictable across rounds and requests.
func cryptoSeed() (int64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("protocol: share-engine seed: %w", err)
	}
	return int64(binary.BigEndian.Uint64(b[:])), nil
}

func (mp *ModelProvider) processLinear(r int, env *Envelope, ev *paillier.Evaluator, m *obs.CostMeter) (*Envelope, LinearTiming, error) {
	var tm LinearTiming
	if r < 0 || r >= len(mp.stages) {
		return nil, tm, fmt.Errorf("protocol: no linear stage %d", r)
	}
	st := mp.stages[r]
	kind := mp.RoundBackend(r)
	if got := env.BackendKind(); got != kind {
		return nil, tm, fmt.Errorf("protocol: round %d arrived as %q, session plan assigns %q", r, got, kind)
	}
	p, err := env.payload()
	if err != nil {
		return nil, tm, fmt.Errorf("protocol: linear stage %d: %w", r, err)
	}
	if r == 0 {
		if env.Obfuscated {
			return nil, tm, fmt.Errorf("protocol: first round input must not be obfuscated")
		}
		if err := mp.admit(); err != nil {
			return nil, tm, err
		}
	} else {
		if !env.Obfuscated {
			return nil, tm, fmt.Errorf("protocol: round %d input must be obfuscated", r)
		}
		permStart := time.Now()
		perm, err := mp.rounds(env.Req).Pop()
		if err != nil {
			return nil, tm, err
		}
		restored, err := p.InvertPerm(perm, st.inShape)
		if err != nil {
			return nil, tm, err
		}
		tm.Permute += time.Since(permStart)
		p = restored
	}
	size, err := p.Size()
	if err != nil {
		return nil, tm, err
	}
	if size != st.inShape.Size() {
		return nil, tm, fmt.Errorf("protocol: linear stage %d input size %d, want %v", r, size, st.inShape)
	}
	shaped, err := p.Reshape(st.inShape)
	if err != nil {
		return nil, tm, err
	}

	be, err := backend.For(kind)
	if err != nil {
		return nil, tm, err
	}
	execEnv := &backend.ExecEnv{Eval: ev, Workers: st.threads, Meter: m}
	if kind == backend.SSGC {
		seed, err := cryptoSeed()
		if err != nil {
			return nil, tm, err
		}
		// A fresh engine per round frame: the dealer stream is not shared
		// across concurrent requests, so rounds never race on its state.
		execEnv.SS = secshare.NewEngine(seed)
	}
	kernelStart := time.Now()
	out, err := be.Execute(execEnv, st.execStage(), shaped)
	if err != nil {
		return nil, tm, err
	}
	tm.Kernel = time.Since(kernelStart)

	last := r == len(mp.stages)-1
	if last {
		// Step 3.4: send without obfuscation so SoftMax can run.
		return envelopeWith(env.Req, out, false), tm, nil
	}
	outSize, err := out.Size()
	if err != nil {
		return nil, tm, err
	}
	permStart := time.Now()
	perm, err := mp.rounds(env.Req).Next(outSize)
	if err != nil {
		return nil, tm, err
	}
	obf, err := out.ApplyPerm(perm)
	if err != nil {
		return nil, tm, err
	}
	tm.Permute += time.Since(permStart)
	return envelopeWith(env.Req, obf, true), tm, nil
}

// nonLinearStage is one data-provider stage.
type nonLinearStage struct {
	layers   []nn.Layer
	inShape  tensor.Shape
	outShape tensor.Shape
	threads  int
}

// DataProvider holds the private key, encrypts inputs, and evaluates
// non-linear stages on plaintext. Under a backend plan it also decodes
// each round's payload per its backend (decrypt / reconstruct shares /
// pass plaintext through) and re-encodes for the next round's backend.
type DataProvider struct {
	sk      *paillier.PrivateKey
	factor  int64
	workers int
	pool    *paillier.Pool
	stages  []*nonLinearStage

	planMu sync.RWMutex
	plan   []backend.Kind
}

// SetBackendPlan installs the session's per-round backend assignment on
// the data-provider side (validated against the same safety rules the
// model provider enforces). Safe to call concurrently with inference.
func (dp *DataProvider) SetBackendPlan(plan []backend.Kind) error {
	if plan != nil {
		if err := backend.ValidateAssignment("", plan, len(dp.stages)); err != nil {
			return fmt.Errorf("protocol: %w", err)
		}
		plan = append([]backend.Kind(nil), plan...)
	}
	dp.planMu.Lock()
	dp.plan = plan
	dp.planMu.Unlock()
	return nil
}

// BackendPlan returns a copy of the installed plan, nil when legacy.
func (dp *DataProvider) BackendPlan() []backend.Kind {
	dp.planMu.RLock()
	defer dp.planMu.RUnlock()
	return append([]backend.Kind(nil), dp.plan...)
}

// RoundBackend returns the backend round r runs on under the plan.
func (dp *DataProvider) RoundBackend(r int) backend.Kind {
	dp.planMu.RLock()
	defer dp.planMu.RUnlock()
	if r >= 0 && r < len(dp.plan) {
		return dp.plan[r]
	}
	return backend.PaillierHE
}

// SetStageThreads overrides stage r's thread count.
func (dp *DataProvider) SetStageThreads(r, threads int) error {
	if r < 0 || r >= len(dp.stages) {
		return fmt.Errorf("protocol: no non-linear stage %d", r)
	}
	if threads < 1 {
		return fmt.Errorf("protocol: stage %d needs ≥ 1 thread", r)
	}
	dp.stages[r].threads = threads
	return nil
}

// Stages returns the number of non-linear stages.
func (dp *DataProvider) Stages() int { return len(dp.stages) }

// Encrypt performs step 1.1: scale the raw input to exponent 1 and
// encrypt it element-wise.
func (dp *DataProvider) Encrypt(req uint64, x *tensor.Dense) (*Envelope, error) {
	return dp.EncryptMetered(req, x, nil)
}

// EncryptMetered is Encrypt with crypto-op accounting into m (nil skips
// accounting): encryption counts, blinding-pool hits/misses, and the
// inline exponentiations misses cost.
func (dp *DataProvider) EncryptMetered(req uint64, x *tensor.Dense, m *obs.CostMeter) (*Envelope, error) {
	scaled := qnn.ScaleInput(x, dp.factor)
	ct, err := dp.encryptTensor(scaled, m)
	if err != nil {
		return nil, err
	}
	// Round 0 is always paillier-he regardless of plan: the raw input
	// leaves the data provider only under encryption.
	return &Envelope{Req: req, Backend: backend.PaillierHE, CT: ct, Exp: 1}, nil
}

func (dp *DataProvider) encryptTensor(t *tensor.Tensor[int64], m *obs.CostMeter) (*paillier.CipherTensor, error) {
	if dp.pool != nil {
		var st obs.CostStats
		out := tensor.New[*paillier.Ciphertext](t.Shape()...)
		for i, v := range t.Data() {
			ct, pooled, err := dp.pool.EncryptTracked(big.NewInt(v))
			if err != nil {
				return nil, err
			}
			st.Encrypts++
			st.MulMods += 2 // (1+m·n) fold + blinding apply
			if pooled {
				st.PoolHits++
			} else {
				st.PoolMisses++
				st.ModExps++ // inline r^n on the critical path
			}
			out.SetFlat(i, ct)
		}
		m.Add(st)
		return out, nil
	}
	ct, err := paillier.EncryptTensor(&dp.sk.PublicKey, nil, t, dp.workers)
	if err != nil {
		return nil, err
	}
	n := uint64(t.Size())
	m.Add(obs.CostStats{Encrypts: n, ModExps: n, MulMods: 2 * n})
	return ct, nil
}

// ProcessNonLinear executes round r's steps at the data provider:
// decrypt, apply the non-linear functions, and re-encrypt (intermediate
// rounds) or produce the final result (last round) — steps 2.1–2.4 and
// 3.5–3.7 of Figure 3.
func (dp *DataProvider) ProcessNonLinear(r int, env *Envelope) (*Envelope, error) {
	return dp.ProcessNonLinearMetered(r, env, nil)
}

// ProcessNonLinearMetered is ProcessNonLinear with crypto-op accounting
// into m (nil skips accounting): decryption counts — each CRT decryption
// is two half-size exponentiations — plus the re-encryption costs; for
// ss-gc rounds the garbled-circuit ReLU gates, extension OTs, and opened
// share words land in m instead.
func (dp *DataProvider) ProcessNonLinearMetered(r int, env *Envelope, m *obs.CostMeter) (*Envelope, error) {
	if r < 0 || r >= len(dp.stages) {
		return nil, fmt.Errorf("protocol: no non-linear stage %d", r)
	}
	st := dp.stages[r]
	kind := env.BackendKind()
	if expect := dp.RoundBackend(r); kind != expect {
		return nil, fmt.Errorf("protocol: round %d reply arrived as %q, session plan assigns %q", r, kind, expect)
	}
	last := r == len(dp.stages)-1

	// Decode the round's payload into plaintext integers at scale
	// F^Exp, per the backend that produced it.
	var bigT *tensor.Tensor[*big.Int]
	// reluDone marks that the stage's leading ReLU already ran inside the
	// garbled circuit on shares, so the plaintext loop must skip it.
	reluDone := false
	switch kind {
	case backend.PaillierHE:
		if env.CT == nil {
			return nil, fmt.Errorf("protocol: non-linear stage %d received no ciphertext", r)
		}
		var err error
		bigT, err = paillier.DecryptTensorBig(dp.sk, env.CT, st.threads)
		if err != nil {
			return nil, err
		}
		if m != nil {
			n := uint64(env.CT.Size())
			m.Add(obs.CostStats{Decrypts: n, ModExps: 2 * n})
		}
	case backend.SSGC:
		if env.Sh == nil {
			return nil, fmt.Errorf("protocol: non-linear stage %d received no shares", r)
		}
		shares := env.Sh.Data()
		if !last && len(st.layers) > 0 {
			if _, isRelu := st.layers[0].(*nn.ReLU); isRelu {
				// The two-party path: ReLU runs on the shares through the
				// garbled circuit (exact on ring integers — a sign test at
				// scale F^Exp commutes with descaling), and only the fresh
				// output shares are opened below.
				fresh, err := backend.GCReLUShares(shares, m)
				if err != nil {
					return nil, err
				}
				shares = fresh
				reluDone = true
			}
		}
		bigT = tensor.New[*big.Int](env.Sh.Shape()...)
		for i, s := range shares {
			bigT.SetFlat(i, big.NewInt(secshare.SignedOfRing(s.Reconstruct())))
		}
		if m != nil {
			m.Add(obs.CostStats{OpenedWords: 2 * uint64(len(shares))})
		}
	case backend.Clear:
		if env.Plain == nil {
			return nil, fmt.Errorf("protocol: non-linear stage %d received no plaintext values", r)
		}
		bigT = env.Plain
	default:
		return nil, fmt.Errorf("protocol: non-linear stage %d received unknown backend %q", r, kind)
	}
	vals, err := qnn.Descale(bigT, dp.factor, env.Exp)
	if err != nil {
		return nil, err
	}

	if last {
		if env.Obfuscated {
			return nil, fmt.Errorf("protocol: final stage must receive a non-obfuscated tensor")
		}
		shaped, err := vals.Reshape(st.inShape...)
		if err != nil {
			return nil, err
		}
		cur := shaped
		for _, l := range st.layers {
			cur, err = l.Forward(cur)
			if err != nil {
				return nil, err
			}
		}
		return &Envelope{Req: env.Req, Result: cur}, nil
	}

	// Intermediate stage: the tensor is permuted, so only element-wise
	// functions may run; they apply position-independently on the flat
	// vector.
	if !env.Obfuscated {
		return nil, fmt.Errorf("protocol: intermediate non-linear stage %d expects an obfuscated tensor", r)
	}
	flat := vals.Flatten()
	data := flat.Data()
	for li, l := range st.layers {
		if li == 0 && reluDone {
			continue
		}
		ew, ok := l.(nn.ElementWise)
		if !ok {
			return nil, fmt.Errorf("protocol: layer %s is not element-wise but received a permuted tensor", l.Name())
		}
		for i, v := range data {
			data[i] = ew.ApplyElement(v)
		}
	}
	rescaled := qnn.ScaleInput(flat, dp.factor)
	return dp.encodeFor(env.Req, r+1, rescaled, m)
}

// encodeFor packs the next round's scaled input in the representation
// its planned backend expects: Paillier ciphertexts, fresh additive
// shares, or plaintext integers (past the certified boundary).
func (dp *DataProvider) encodeFor(req uint64, nextRound int, scaled *tensor.Tensor[int64], m *obs.CostMeter) (*Envelope, error) {
	next := dp.RoundBackend(nextRound)
	env := &Envelope{Req: req, Backend: next, Exp: 1, Obfuscated: true}
	switch next {
	case backend.PaillierHE:
		ct, err := dp.encryptTensor(scaled, m)
		if err != nil {
			return nil, err
		}
		env.CT = ct
	case backend.SSGC:
		sh := tensor.New[secshare.Shares](scaled.Shape()...)
		for i, v := range scaled.Data() {
			s, err := secshare.SplitRandom(rand.Reader, secshare.RingOfBig(big.NewInt(v)))
			if err != nil {
				return nil, err
			}
			sh.SetFlat(i, s)
		}
		env.Sh = sh
	case backend.Clear:
		plain := tensor.New[*big.Int](scaled.Shape()...)
		for i, v := range scaled.Data() {
			plain.SetFlat(i, big.NewInt(v))
		}
		env.Plain = plain
		if m != nil {
			m.Add(obs.CostStats{PlainOps: uint64(scaled.Size())})
		}
	default:
		return nil, fmt.Errorf("protocol: round %d plans unknown backend %q", nextRound, next)
	}
	return env, nil
}

// StageComm returns the per-request stage-to-thread communication volume
// of linear stage r, in ciphertext elements, for both partitioning modes
// (Section IV-D):
//
//   - without partitioning, the stage "feeds an input tensor directly to
//     each thread, which produces one element of the output tensor at a
//     time" (Exp#2/Exp#4 baseline): outSize × inSize elements per op;
//   - with partitioning, each thread receives once the union of inputs
//     its output share needs (the whole input for fully-connected ops,
//     receptive-field sub-tensors for convolutions).
func (mp *ModelProvider) StageComm(r, threads int) (withPart, withoutPart int, err error) {
	if r < 0 || r >= len(mp.stages) {
		return 0, 0, fmt.Errorf("protocol: no linear stage %d", r)
	}
	st := mp.stages[r]
	shape := st.inShape
	for _, op := range st.ops {
		eop, ok := op.(qnn.ElementOp)
		if !ok {
			return 0, 0, fmt.Errorf("protocol: op %s lacks element accounting", op.Name())
		}
		if _, structural := op.(*qnn.QFlatten); structural {
			// Shape-only ops move no data between threads: no dispatch
			// happens for them in either partitioning mode.
			next, err := op.OutShape(shape)
			if err != nil {
				return 0, 0, err
			}
			shape = next
			continue
		}
		outN, err := eop.OutSize(shape)
		if err != nil {
			return 0, 0, err
		}
		withoutPart += outN * shape.Size()
		tasks, err := partition.PlanOp(eop, shape, threads, true)
		if err != nil {
			return 0, 0, err
		}
		for _, task := range tasks {
			if task.Inputs == nil {
				withPart += shape.Size()
			} else {
				withPart += len(task.Inputs)
			}
		}
		next, err := op.OutShape(shape)
		if err != nil {
			return 0, 0, err
		}
		shape = next
	}
	return withPart, withoutPart, nil
}
