// Package protocol implements PP-Stream's hybrid privacy-preserving
// inference workflow (paper Section III, Figure 3) between the two
// honest-but-curious parties:
//
//   - the model provider executes all linear operations homomorphically
//     over Paillier ciphertexts and obfuscates tensors (random position
//     permutation) before they return to the data provider;
//   - the data provider encrypts its input, and for each non-linear stage
//     decrypts the (permuted) tensor, applies the element-wise non-linear
//     functions in plaintext, re-encrypts, and returns it.
//
// The last round skips obfuscation so the data provider can evaluate the
// final position-dependent SoftMax and read the inference result
// (Section III-A); the model parameters of the last linear stage remain
// safe because the data provider never sees that stage's de-obfuscated
// input (Section III-D).
package protocol

import (
	"fmt"
	"math/big"
	"sync"
	"time"

	"ppstream/internal/nn"
	"ppstream/internal/obfuscate"
	"ppstream/internal/obs"
	"ppstream/internal/paillier"
	"ppstream/internal/partition"
	"ppstream/internal/qnn"
	"ppstream/internal/scaling"
	"ppstream/internal/tensor"
)

// Envelope is the in-process message flowing between protocol stages: an
// encrypted tensor plus its scale exponent, or the final plaintext
// result.
type Envelope struct {
	// Req identifies the inference request.
	Req uint64
	// CT is the encrypted tensor (nil once Result is set). Between the
	// model and data provider it is obfuscated except in the last round.
	CT *paillier.CipherTensor
	// Exp is the plaintext scale exponent: values are real·F^Exp.
	Exp int
	// Obfuscated records whether CT's element positions are permuted.
	Obfuscated bool
	// Result is the final inference output (last stage only).
	Result *tensor.Dense
}

// Config parameterizes protocol construction.
type Config struct {
	// Factor is the parameter scaling factor F (from scaling.SelectFactor).
	Factor int64
	// Workers is the default thread count used by stages when no
	// per-stage plan overrides it.
	Workers int
	// Pool, when non-nil, provides precomputed encryption blinding for
	// the data provider's re-encryption step. The model provider's linear
	// kernel also draws output re-randomization factors from it unless
	// BlindPool overrides.
	Pool *paillier.Pool
	// BlindPool, when non-nil, supplies the model provider's output
	// re-randomization factors (the kernel blinds every ciphertext before
	// it leaves the provider). Falls back to Pool, then to inline
	// crypto/rand factors.
	BlindPool *paillier.Pool
}

// Protocol binds a model provider and a data provider for one scaled
// network. Stages alternate linear (model provider) and non-linear (data
// provider), matching the merged primitive layers.
type Protocol struct {
	Model *ModelProvider
	Data  *DataProvider
	// Merged is the alternating stage list the roles were built from.
	Merged []*nn.PrimitiveLayer
	cfg    Config
}

// validateWorkflow merges the network and checks the workflow's
// structural requirements (alternation, linear start, non-linear finish,
// element-wise intermediate non-linear stages).
func validateWorkflow(net *nn.Network) ([]*nn.PrimitiveLayer, error) {
	merged, err := nn.Merge(net)
	if err != nil {
		return nil, err
	}
	if err := nn.CheckAlternating(merged); err != nil {
		return nil, err
	}
	if err := nn.ProtocolShape(merged); err != nil {
		return nil, err
	}
	// Middle non-linear stages run on permuted tensors: they must be
	// element-wise (Section III-C). The final stage may contain SoftMax.
	for i, m := range merged {
		if m.Kind == nn.NonLinear && i != len(merged)-1 && !m.ElementWiseOnly() {
			return nil, fmt.Errorf("protocol: intermediate non-linear stage %s contains position-dependent operations; replace MaxPool (nn.ReplaceMaxPool) or move SoftMax to the last layer", m.Name())
		}
	}
	return merged, nil
}

// BuildModelProvider constructs the model-provider role alone: it needs
// the network (its own weights) and only the data provider's PUBLIC key.
// This is the entry point for a real split deployment (cmd/ppserver).
func BuildModelProvider(net *nn.Network, pk *paillier.PublicKey, cfg Config) (*ModelProvider, error) {
	if cfg.Factor <= 0 {
		return nil, fmt.Errorf("protocol: scaling factor %d must be positive", cfg.Factor)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if err := pk.Validate(); err != nil {
		return nil, err
	}
	merged, err := validateWorkflow(net)
	if err != nil {
		return nil, err
	}
	var evOpts []paillier.EvalOption
	if blind := cfg.BlindPool; blind != nil {
		evOpts = append(evOpts, paillier.WithBlinder(blind))
	} else if cfg.Pool != nil {
		evOpts = append(evOpts, paillier.WithBlinder(cfg.Pool))
	}
	mp := &ModelProvider{
		pk:      pk,
		eval:    paillier.NewEvaluator(pk, evOpts...),
		factor:  cfg.Factor,
		workers: cfg.Workers,
		state:   map[uint64]*obfuscate.Rounds{},
	}
	for _, m := range merged {
		if m.Kind != nn.Linear {
			continue
		}
		ops, err := qnn.QuantizeStage(m, cfg.Factor)
		if err != nil {
			return nil, err
		}
		mp.stages = append(mp.stages, &linearStage{
			ops:      ops,
			inShape:  m.InShape.Clone(),
			outShape: m.OutShape.Clone(),
			threads:  cfg.Workers,
		})
	}
	if len(mp.stages) == 0 {
		return nil, fmt.Errorf("protocol: network has no linear stages")
	}
	return mp, nil
}

// BuildDataProvider constructs the data-provider role alone: it needs
// the private key and the network ARCHITECTURE. Linear-layer weights are
// never read — only layer kinds and shapes — so the data provider can be
// built from an architecture skeleton without the vendor's parameters.
func BuildDataProvider(net *nn.Network, sk *paillier.PrivateKey, cfg Config) (*DataProvider, error) {
	if cfg.Factor <= 0 {
		return nil, fmt.Errorf("protocol: scaling factor %d must be positive", cfg.Factor)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	merged, err := validateWorkflow(net)
	if err != nil {
		return nil, err
	}
	dp := &DataProvider{
		sk:      sk,
		factor:  cfg.Factor,
		workers: cfg.Workers,
		pool:    cfg.Pool,
	}
	for _, m := range merged {
		if m.Kind != nn.NonLinear {
			continue
		}
		dp.stages = append(dp.stages, &nonLinearStage{
			layers:   m.Layers,
			inShape:  m.InShape.Clone(),
			outShape: m.OutShape.Clone(),
			threads:  cfg.Workers,
		})
	}
	if len(dp.stages) == 0 {
		return nil, fmt.Errorf("protocol: network has no non-linear stages")
	}
	return dp, nil
}

// Build validates the network's protocol shape, quantizes its linear
// stages at cfg.Factor, and wires the two roles in one process (tests,
// the CipherBase baseline, and the single-host engine). The private key
// stays inside the data provider; the model provider receives only the
// public key.
func Build(net *nn.Network, key *paillier.PrivateKey, cfg Config) (*Protocol, error) {
	mp, err := BuildModelProvider(net, &key.PublicKey, cfg)
	if err != nil {
		return nil, err
	}
	dp, err := BuildDataProvider(net, key, cfg)
	if err != nil {
		return nil, err
	}
	if len(mp.stages) != len(dp.stages) {
		return nil, fmt.Errorf("protocol: %d linear vs %d non-linear stages — workflow requires pairs", len(mp.stages), len(dp.stages))
	}
	merged, err := validateWorkflow(net)
	if err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &Protocol{Model: mp, Data: dp, Merged: merged, cfg: cfg}, nil
}

// BuildAuto selects the scaling factor with the paper's algorithm on the
// provided training subset, then builds the protocol.
func BuildAuto(net *nn.Network, key *paillier.PrivateKey, xs []*tensor.Dense, ys []int, cfg Config) (*Protocol, *scaling.Result, error) {
	res, err := scaling.SelectFactor(net, xs, ys, 0)
	if err != nil {
		return nil, nil, err
	}
	cfg.Factor = res.Factor
	p, err := Build(net, key, cfg)
	if err != nil {
		return nil, nil, err
	}
	return p, res, nil
}

// Rounds returns the number of linear/non-linear round pairs.
func (p *Protocol) Rounds() int { return len(p.Model.stages) }

// Infer runs the full collaborative workflow sequentially for one input:
// the reference execution used by tests, the CipherBase baseline, and
// offline profiling. The streaming engine (internal/core) runs the same
// per-stage methods inside pipeline stages.
func (p *Protocol) Infer(req uint64, x *tensor.Dense) (*tensor.Dense, error) {
	env, err := p.Data.Encrypt(req, x)
	if err != nil {
		return nil, err
	}
	rounds := p.Rounds()
	for r := 0; r < rounds; r++ {
		env, err = p.Model.ProcessLinear(r, env)
		if err != nil {
			return nil, fmt.Errorf("protocol: round %d linear: %w", r, err)
		}
		env, err = p.Data.ProcessNonLinear(r, env)
		if err != nil {
			return nil, fmt.Errorf("protocol: round %d non-linear: %w", r, err)
		}
	}
	if env.Result == nil {
		return nil, fmt.Errorf("protocol: workflow ended without a result")
	}
	p.Model.Forget(req)
	return env.Result, nil
}

// linearStage is one model-provider stage: quantized ops plus runtime
// configuration.
type linearStage struct {
	ops      []qnn.Op
	inShape  tensor.Shape
	outShape tensor.Shape
	// threads is y_i from the resource allocation plan.
	threads int
	// inputPartition enables input tensor partitioning (conv stages).
	inputPartition bool
	// usePartitionExec routes execution through the partitioning
	// executor (physical per-thread input views); otherwise the stage
	// uses the shared-memory fast path.
	usePartitionExec bool
}

// ModelProvider executes linear stages homomorphically and manages
// per-request obfuscation state. It never sees the private key.
type ModelProvider struct {
	pk      *paillier.PublicKey
	eval    *paillier.Evaluator
	factor  int64
	workers int
	stages  []*linearStage

	mu      sync.Mutex
	state   map[uint64]*obfuscate.Rounds
	limiter *RateLimiter
}

// PublicKey exposes the provider's encryption key.
func (mp *ModelProvider) PublicKey() *paillier.PublicKey { return mp.pk }

// Evaluator exposes the provider's homomorphic evaluation context (key,
// blinding supply, kernel configuration).
func (mp *ModelProvider) Evaluator() *paillier.Evaluator { return mp.eval }

// Instrument publishes the linear kernel's phase timings to reg as the
// "kernel.precompute" (per-layer preprocessing: shared inverses and
// power tables) and "kernel.dot" (per-row multi-exponentiation)
// histograms.
func (mp *ModelProvider) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	pre := reg.Histogram("kernel.precompute")
	dot := reg.Histogram("kernel.dot")
	mp.eval.SetMetrics(paillier.KernelMetrics{Precompute: pre.Observe, Dot: dot.Observe})
}

// Stages returns the number of linear stages.
func (mp *ModelProvider) Stages() int { return len(mp.stages) }

// SetStagePlan overrides stage r's thread count and partitioning mode
// (from the load-balanced allocation plan).
func (mp *ModelProvider) SetStagePlan(r, threads int, inputPartition, usePartitionExec bool) error {
	if r < 0 || r >= len(mp.stages) {
		return fmt.Errorf("protocol: no linear stage %d", r)
	}
	if threads < 1 {
		return fmt.Errorf("protocol: stage %d needs ≥ 1 thread", r)
	}
	mp.stages[r].threads = threads
	mp.stages[r].inputPartition = inputPartition
	mp.stages[r].usePartitionExec = usePartitionExec
	return nil
}

func (mp *ModelProvider) rounds(req uint64) *obfuscate.Rounds {
	mp.mu.Lock()
	defer mp.mu.Unlock()
	r, ok := mp.state[req]
	if !ok {
		r = &obfuscate.Rounds{}
		mp.state[req] = r
	}
	return r
}

// Forget drops per-request obfuscation state once a request completes.
func (mp *ModelProvider) Forget(req uint64) {
	mp.mu.Lock()
	delete(mp.state, req)
	mp.mu.Unlock()
}

// LinearTiming splits one linear round's server-side work into the
// homomorphic kernel proper and the obfuscation bookkeeping around it
// (inverse permutation on entry plus permutation on exit), feeding the
// "server-kernel" / "server-permute" trace segments.
type LinearTiming struct {
	Kernel  time.Duration
	Permute time.Duration
}

// ProcessLinear executes round r's steps at the model provider: inverse
// obfuscation (rounds > 0), the homomorphic linear operations, and
// obfuscation (except the last round) — steps 1.3–1.4, 2.5–2.7, and
// 3.2–3.3 of Figure 3.
func (mp *ModelProvider) ProcessLinear(r int, env *Envelope) (*Envelope, error) {
	out, _, err := mp.ProcessLinearTimed(r, env)
	return out, err
}

// ProcessLinearTimed is ProcessLinear reporting how the round's wall
// time divided between the homomorphic kernel and permutation work.
func (mp *ModelProvider) ProcessLinearTimed(r int, env *Envelope) (*Envelope, LinearTiming, error) {
	return mp.processLinear(r, env, mp.eval)
}

// ProcessLinearMetered is ProcessLinearTimed with crypto-op accounting:
// the round runs through a metered view of the provider's evaluator so
// its op counts land in m without touching other requests sharing the
// evaluator. A nil meter falls back to the unmetered path.
func (mp *ModelProvider) ProcessLinearMetered(r int, env *Envelope, m *obs.CostMeter) (*Envelope, LinearTiming, error) {
	ev := mp.eval
	if m != nil {
		ev = ev.WithCost(m)
	}
	return mp.processLinear(r, env, ev)
}

func (mp *ModelProvider) processLinear(r int, env *Envelope, ev *paillier.Evaluator) (*Envelope, LinearTiming, error) {
	var tm LinearTiming
	if r < 0 || r >= len(mp.stages) {
		return nil, tm, fmt.Errorf("protocol: no linear stage %d", r)
	}
	st := mp.stages[r]
	ct := env.CT
	if ct == nil {
		return nil, tm, fmt.Errorf("protocol: linear stage %d received no ciphertext", r)
	}
	if r == 0 {
		if env.Obfuscated {
			return nil, tm, fmt.Errorf("protocol: first round input must not be obfuscated")
		}
		if err := mp.admit(); err != nil {
			return nil, tm, err
		}
	} else {
		if !env.Obfuscated {
			return nil, tm, fmt.Errorf("protocol: round %d input must be obfuscated", r)
		}
		permStart := time.Now()
		perm, err := mp.rounds(env.Req).Pop()
		if err != nil {
			return nil, tm, err
		}
		restored, err := obfuscate.InvertTensor(perm, ct, st.inShape)
		if err != nil {
			return nil, tm, err
		}
		tm.Permute += time.Since(permStart)
		ct = restored
	}
	if ct.Size() != st.inShape.Size() {
		return nil, tm, fmt.Errorf("protocol: linear stage %d input size %d, want %v", r, ct.Size(), st.inShape)
	}
	shaped, err := ct.Reshape(st.inShape...)
	if err != nil {
		return nil, tm, err
	}

	kernelStart := time.Now()
	var out *paillier.CipherTensor
	var outExp int
	if st.usePartitionExec {
		out, outExp, _, err = executePartitioned(ev, st, shaped, env.Exp)
	} else {
		out, outExp, err = qnn.ApplyStage(ev, st.ops, shaped, env.Exp, st.threads)
	}
	if err != nil {
		return nil, tm, err
	}
	tm.Kernel = time.Since(kernelStart)

	last := r == len(mp.stages)-1
	next := &Envelope{Req: env.Req, Exp: outExp}
	if last {
		// Step 3.4: send without obfuscation so SoftMax can run.
		next.CT = out
		next.Obfuscated = false
		return next, tm, nil
	}
	permStart := time.Now()
	perm, err := mp.rounds(env.Req).Next(out.Size())
	if err != nil {
		return nil, tm, err
	}
	obf, err := obfuscate.ApplyTensor(perm, out)
	if err != nil {
		return nil, tm, err
	}
	tm.Permute += time.Since(permStart)
	next.CT = obf
	next.Obfuscated = true
	return next, tm, nil
}

// nonLinearStage is one data-provider stage.
type nonLinearStage struct {
	layers   []nn.Layer
	inShape  tensor.Shape
	outShape tensor.Shape
	threads  int
}

// DataProvider holds the private key, encrypts inputs, and evaluates
// non-linear stages on plaintext.
type DataProvider struct {
	sk      *paillier.PrivateKey
	factor  int64
	workers int
	pool    *paillier.Pool
	stages  []*nonLinearStage
}

// SetStageThreads overrides stage r's thread count.
func (dp *DataProvider) SetStageThreads(r, threads int) error {
	if r < 0 || r >= len(dp.stages) {
		return fmt.Errorf("protocol: no non-linear stage %d", r)
	}
	if threads < 1 {
		return fmt.Errorf("protocol: stage %d needs ≥ 1 thread", r)
	}
	dp.stages[r].threads = threads
	return nil
}

// Stages returns the number of non-linear stages.
func (dp *DataProvider) Stages() int { return len(dp.stages) }

// Encrypt performs step 1.1: scale the raw input to exponent 1 and
// encrypt it element-wise.
func (dp *DataProvider) Encrypt(req uint64, x *tensor.Dense) (*Envelope, error) {
	return dp.EncryptMetered(req, x, nil)
}

// EncryptMetered is Encrypt with crypto-op accounting into m (nil skips
// accounting): encryption counts, blinding-pool hits/misses, and the
// inline exponentiations misses cost.
func (dp *DataProvider) EncryptMetered(req uint64, x *tensor.Dense, m *obs.CostMeter) (*Envelope, error) {
	scaled := qnn.ScaleInput(x, dp.factor)
	ct, err := dp.encryptTensor(scaled, m)
	if err != nil {
		return nil, err
	}
	return &Envelope{Req: req, CT: ct, Exp: 1}, nil
}

func (dp *DataProvider) encryptTensor(t *tensor.Tensor[int64], m *obs.CostMeter) (*paillier.CipherTensor, error) {
	if dp.pool != nil {
		var st obs.CostStats
		out := tensor.New[*paillier.Ciphertext](t.Shape()...)
		for i, v := range t.Data() {
			ct, pooled, err := dp.pool.EncryptTracked(big.NewInt(v))
			if err != nil {
				return nil, err
			}
			st.Encrypts++
			st.MulMods += 2 // (1+m·n) fold + blinding apply
			if pooled {
				st.PoolHits++
			} else {
				st.PoolMisses++
				st.ModExps++ // inline r^n on the critical path
			}
			out.SetFlat(i, ct)
		}
		m.Add(st)
		return out, nil
	}
	ct, err := paillier.EncryptTensor(&dp.sk.PublicKey, nil, t, dp.workers)
	if err != nil {
		return nil, err
	}
	n := uint64(t.Size())
	m.Add(obs.CostStats{Encrypts: n, ModExps: n, MulMods: 2 * n})
	return ct, nil
}

// ProcessNonLinear executes round r's steps at the data provider:
// decrypt, apply the non-linear functions, and re-encrypt (intermediate
// rounds) or produce the final result (last round) — steps 2.1–2.4 and
// 3.5–3.7 of Figure 3.
func (dp *DataProvider) ProcessNonLinear(r int, env *Envelope) (*Envelope, error) {
	return dp.ProcessNonLinearMetered(r, env, nil)
}

// ProcessNonLinearMetered is ProcessNonLinear with crypto-op accounting
// into m (nil skips accounting): decryption counts — each CRT decryption
// is two half-size exponentiations — plus the re-encryption costs.
func (dp *DataProvider) ProcessNonLinearMetered(r int, env *Envelope, m *obs.CostMeter) (*Envelope, error) {
	if r < 0 || r >= len(dp.stages) {
		return nil, fmt.Errorf("protocol: no non-linear stage %d", r)
	}
	st := dp.stages[r]
	if env.CT == nil {
		return nil, fmt.Errorf("protocol: non-linear stage %d received no ciphertext", r)
	}
	last := r == len(dp.stages)-1
	bigT, err := paillier.DecryptTensorBig(dp.sk, env.CT, st.threads)
	if err != nil {
		return nil, err
	}
	if m != nil {
		n := uint64(env.CT.Size())
		m.Add(obs.CostStats{Decrypts: n, ModExps: 2 * n})
	}
	vals, err := qnn.Descale(bigT, dp.factor, env.Exp)
	if err != nil {
		return nil, err
	}

	if last {
		if env.Obfuscated {
			return nil, fmt.Errorf("protocol: final stage must receive a non-obfuscated tensor")
		}
		shaped, err := vals.Reshape(st.inShape...)
		if err != nil {
			return nil, err
		}
		cur := shaped
		for _, l := range st.layers {
			cur, err = l.Forward(cur)
			if err != nil {
				return nil, err
			}
		}
		return &Envelope{Req: env.Req, Result: cur}, nil
	}

	// Intermediate stage: the tensor is permuted, so only element-wise
	// functions may run; they apply position-independently on the flat
	// vector.
	if !env.Obfuscated {
		return nil, fmt.Errorf("protocol: intermediate non-linear stage %d expects an obfuscated tensor", r)
	}
	flat := vals.Flatten()
	data := flat.Data()
	for _, l := range st.layers {
		ew, ok := l.(nn.ElementWise)
		if !ok {
			return nil, fmt.Errorf("protocol: layer %s is not element-wise but received a permuted tensor", l.Name())
		}
		for i, v := range data {
			data[i] = ew.ApplyElement(v)
		}
	}
	rescaled := qnn.ScaleInput(flat, dp.factor)
	ct, err := dp.encryptTensor(rescaled, m)
	if err != nil {
		return nil, err
	}
	return &Envelope{Req: env.Req, CT: ct, Exp: 1, Obfuscated: true}, nil
}

// StageComm returns the per-request stage-to-thread communication volume
// of linear stage r, in ciphertext elements, for both partitioning modes
// (Section IV-D):
//
//   - without partitioning, the stage "feeds an input tensor directly to
//     each thread, which produces one element of the output tensor at a
//     time" (Exp#2/Exp#4 baseline): outSize × inSize elements per op;
//   - with partitioning, each thread receives once the union of inputs
//     its output share needs (the whole input for fully-connected ops,
//     receptive-field sub-tensors for convolutions).
func (mp *ModelProvider) StageComm(r, threads int) (withPart, withoutPart int, err error) {
	if r < 0 || r >= len(mp.stages) {
		return 0, 0, fmt.Errorf("protocol: no linear stage %d", r)
	}
	st := mp.stages[r]
	shape := st.inShape
	for _, op := range st.ops {
		eop, ok := op.(qnn.ElementOp)
		if !ok {
			return 0, 0, fmt.Errorf("protocol: op %s lacks element accounting", op.Name())
		}
		if _, structural := op.(*qnn.QFlatten); structural {
			// Shape-only ops move no data between threads: no dispatch
			// happens for them in either partitioning mode.
			next, err := op.OutShape(shape)
			if err != nil {
				return 0, 0, err
			}
			shape = next
			continue
		}
		outN, err := eop.OutSize(shape)
		if err != nil {
			return 0, 0, err
		}
		withoutPart += outN * shape.Size()
		tasks, err := partition.PlanOp(eop, shape, threads, true)
		if err != nil {
			return 0, 0, err
		}
		for _, task := range tasks {
			if task.Inputs == nil {
				withPart += shape.Size()
			} else {
				withPart += len(task.Inputs)
			}
		}
		next, err := op.OutShape(shape)
		if err != nil {
			return 0, 0, err
		}
		shape = next
	}
	return withPart, withoutPart, nil
}

// executePartitioned routes a linear stage through the tensor
// partitioning executor (internal/partition), which materializes
// per-thread input views.
func executePartitioned(ev *paillier.Evaluator, st *linearStage, x *paillier.CipherTensor, inExp int) (*paillier.CipherTensor, int, []partition.CommStats, error) {
	return partition.ExecuteStage(ev, st.ops, x, inExp, st.threads, st.inputPartition)
}
