package protocol

import (
	mathrand "math/rand"
	"testing"
	"testing/quick"

	"ppstream/internal/nn"
	"ppstream/internal/paillier"
	"ppstream/internal/tensor"
)

// TestCorrectnessPropertyRandomArchitectures is the paper's correctness
// guarantee as a property: for random FC architectures (random depth and
// widths, ReLU/Sigmoid activations) and random inputs, the
// privacy-preserving protocol matches plain inference.
func TestCorrectnessPropertyRandomArchitectures(t *testing.T) {
	k := key(t)
	f := func(seed int64) bool {
		r := mathrand.New(mathrand.NewSource(seed))
		depth := 1 + r.Intn(3) // 1..3 hidden blocks
		in := 2 + r.Intn(5)
		var layers []nn.Layer
		width := in
		for d := 0; d < depth; d++ {
			next := 2 + r.Intn(6)
			layers = append(layers, nn.NewFC(name("fc", d), width, next, r))
			if r.Intn(2) == 0 {
				layers = append(layers, nn.NewReLU(name("relu", d)))
			} else {
				layers = append(layers, nn.NewSigmoid(name("sig", d)))
			}
			width = next
		}
		classes := 2 + r.Intn(3)
		layers = append(layers, nn.NewFC("head", width, classes, r), nn.NewSoftMax("sm"))
		net, err := nn.NewNetwork("prop", tensor.Shape{in}, layers...)
		if err != nil {
			return false
		}
		proto, err := Build(net, k, Config{Factor: 10000})
		if err != nil {
			return false
		}
		x := tensor.Zeros(in)
		for i := range x.Data() {
			x.Data()[i] = r.NormFloat64()
		}
		want, err := net.Forward(x)
		if err != nil {
			return false
		}
		got, err := proto.Infer(uint64(seed), x)
		if err != nil {
			return false
		}
		return tensor.AllClose(want, got, 5e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func name(prefix string, i int) string {
	return prefix + string(rune('0'+i%10))
}

// FuzzFromWire feeds adversarial wire envelopes into the model
// provider's frame validation: no input may panic, and malformed frames
// must be rejected.
func FuzzFromWire(f *testing.F) {
	k, err := paillier.GenerateKey(nil, 256)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(1), 4, []byte{1, 2, 3}, 1, true)
	f.Add(uint64(0), 0, []byte{}, -1, false)
	f.Add(uint64(9), 1, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 3, true)
	f.Fuzz(func(t *testing.T, req uint64, dim int, cipher []byte, exp int, obf bool) {
		w := &WireEnvelope{
			Req:        req,
			Shape:      []int{dim},
			Cipher:     [][]byte{cipher},
			Exp:        exp,
			Obfuscated: obf,
		}
		env, err := FromWire(w, &k.PublicKey)
		if err != nil {
			return // rejected: fine
		}
		// Accepted frames must be internally consistent.
		if env.CT == nil || env.CT.Size() != 1 || dim != 1 {
			t.Fatalf("accepted inconsistent frame: dim=%d", dim)
		}
	})
}
