package protocol

import (
	"context"
	cryptorand "crypto/rand"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"ppstream/internal/obs"
	"ppstream/internal/tensor"
)

// RetryPolicy bounds client-side retries of transient failures. Only
// rejections that are provably stateless — throttle and shed answers to
// a request's first round, and whole inferences on a torn session — are
// ever retried; mid-protocol rounds are non-idempotent (the server's
// permutation state advances per round) and always fail through.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget including the first try;
	// <= 0 uses DefaultRetryAttempts, 1 disables retries.
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff: attempt k sleeps a
	// uniformly jittered duration in (0, BaseBackoff*2^k], capped at
	// MaxBackoff. <= 0 uses DefaultRetryBase.
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff sleep; <= 0 uses DefaultRetryMax.
	MaxBackoff time.Duration
	// Budget caps the total time spent on one logical request including
	// all retries and backoff sleeps; <= 0 uses DefaultRetryBudget.
	Budget time.Duration
}

// Defaults for RetryPolicy zero fields.
const (
	DefaultRetryAttempts = 4
	DefaultRetryBase     = 5 * time.Millisecond
	DefaultRetryMax      = 500 * time.Millisecond
	DefaultRetryBudget   = 5 * time.Second
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultRetryBase
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultRetryMax
	}
	if p.Budget <= 0 {
		p.Budget = DefaultRetryBudget
	}
	return p
}

// backoff returns the jittered sleep before retry attempt (attempt 1 is
// the first retry). Full jitter: uniform in (0, min(base*2^(k-1), max)].
// The protocol package may only use crypto/rand (pplint cryptorand
// gate); the few bytes of entropy per retry are noise next to a Paillier
// exponentiation.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	ceil := p.BaseBackoff
	for i := 1; i < attempt && ceil < p.MaxBackoff; i++ {
		ceil *= 2
	}
	if ceil > p.MaxBackoff {
		ceil = p.MaxBackoff
	}
	if ceil <= 0 {
		return 0
	}
	n, err := cryptorand.Int(cryptorand.Reader, big.NewInt(int64(ceil)))
	if err != nil {
		return ceil // degraded: un-jittered backoff beats no backoff
	}
	return time.Duration(n.Int64()) + 1
}

// sleep waits out a backoff honouring ctx.
func retrySleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Redialer retries whole inferences across session failures: when an
// Infer fails with a retryable error it backs off, redials a fresh
// session if the previous one died, and tries again until the policy's
// attempt or time budget runs out. Safe for concurrent use; concurrent
// Infers share one live client and redial at most once per generation.
//
// Retrying a whole inference is always safe: a torn session destroys all
// per-request state on both sides, and throttle/shed rejections happen
// before the server creates any.
type Redialer struct {
	dial   func(ctx context.Context) (*Client, error)
	policy RetryPolicy

	mu     sync.Mutex
	client *Client
	gen    uint64

	attempts *obs.Counter
	redials  *obs.Counter
	giveups  *obs.Counter
}

// NewRedialer wraps dial with retry-and-redial. dial is invoked lazily
// on first use and again after a session failure. reg (may be nil)
// receives "retry.attempts", "retry.redials", and "retry.giveups".
func NewRedialer(dial func(ctx context.Context) (*Client, error), policy RetryPolicy, reg *obs.Registry) *Redialer {
	r := &Redialer{dial: dial, policy: policy.withDefaults()}
	if reg != nil {
		r.attempts = reg.Counter("retry.attempts")
		r.redials = reg.Counter("retry.redials")
		r.giveups = reg.Counter("retry.giveups")
	}
	return r
}

// get returns the live client, dialing one if needed, along with its
// generation for invalidation.
func (r *Redialer) get(ctx context.Context) (*Client, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client != nil {
		return r.client, r.gen, nil
	}
	c, err := r.dial(ctx)
	if err != nil {
		return nil, r.gen, fmt.Errorf("%w: dial: %w", ErrSessionDown, err)
	}
	if r.redials != nil && r.gen > 0 {
		r.redials.Inc()
	}
	r.client = c
	r.gen++
	return c, r.gen, nil
}

// invalidate drops the client of generation gen so the next get dials
// fresh. Concurrent failures of the same generation invalidate once.
func (r *Redialer) invalidate(gen uint64) {
	r.mu.Lock()
	if r.gen == gen && r.client != nil {
		c := r.client
		r.client = nil
		go c.Close()
	}
	r.mu.Unlock()
}

// Infer runs one inference, retrying retryable failures under the
// policy. Non-retryable errors (protocol failures, deadline expiry,
// eviction) fail immediately.
func (r *Redialer) Infer(ctx context.Context, x *tensor.Dense) (*tensor.Dense, error) {
	policy := r.policy
	deadline := time.Now().Add(policy.Budget)
	var lastErr error
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		if attempt > 1 {
			if r.attempts != nil {
				r.attempts.Inc()
			}
			if err := retrySleep(ctx, policy.backoff(attempt-1)); err != nil {
				return nil, err
			}
			if time.Now().After(deadline) {
				break
			}
		}
		c, gen, err := r.get(ctx)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, err
			}
			continue
		}
		res, err := c.Infer(ctx, x)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if errors.Is(err, ErrSessionDown) {
			r.invalidate(gen)
		}
		if !Retryable(err) || ctx.Err() != nil {
			return nil, err
		}
	}
	if r.giveups != nil {
		r.giveups.Inc()
	}
	return nil, fmt.Errorf("protocol: retries exhausted: %w", lastErr)
}

// Close tears down the live session, if any.
func (r *Redialer) Close() error {
	r.mu.Lock()
	c := r.client
	r.client = nil
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}
