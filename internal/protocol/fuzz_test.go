package protocol

import (
	"bytes"
	"encoding/gob"
	"testing"

	"ppstream/internal/paillier"
)

// FuzzWireFrameDecode drives the full receive path of a session frame
// with adversarial bytes: gob decode into roundFrame, then the same
// validation the server/client readers run — FromWire under the public
// key, span conversion, and trace-context validation. None of it may
// panic; the network is untrusted (Section II-C).
func FuzzWireFrameDecode(f *testing.F) {
	k, err := paillier.GenerateKey(nil, 256)
	if err != nil {
		f.Fatal(err)
	}
	pk := &k.PublicKey

	seed := func(rf roundFrame) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(rf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(roundFrame{
		Round: 1,
		Env: &WireEnvelope{
			Req:    7,
			Shape:  []int{2},
			Cipher: [][]byte{{0x05}, {0x09}},
			Exp:    3,
		},
		TC: &TraceContext{Ver: TraceV1, ID: "fuzz-req"},
	})
	seed(roundFrame{
		Round: 2,
		Env: &WireEnvelope{
			Req:         7,
			Result:      []float64{1.5, -2.5},
			ResultShape: []int{2},
		},
		Spans: []WireSpan{{Party: "data", Name: "relu", Round: 1, Nanos: 42}, {Party: "x", Nanos: -1}},
	})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		var rf roundFrame
		if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&rf); err != nil {
			return
		}
		_ = rf.TC.valid() // nil-safe by contract
		_ = fromWireSpans(rf.Spans)
		if rf.Env != nil {
			env, err := FromWire(rf.Env, pk)
			if err == nil && env.CT == nil && env.Result == nil {
				t.Fatal("FromWire accepted an envelope with neither ciphertext nor result")
			}
		}
	})
}
