package protocol

import (
	"context"
	mathrand "math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ppstream/internal/obs"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// TestSessionConcurrentClients: N goroutines issue interleaved Infer
// calls over ONE TCP session pair. Every request must come back correct
// (no cross-request mixups under wire-level multiplexing), at least 4
// must be in flight simultaneously, and one deliberately failing request
// must complete with its own error without disturbing the others.
// Run under -race in CI.
func TestSessionConcurrentClients(t *testing.T) {
	RegisterServiceWire()
	k := key(t)
	netw := buildNet(t)
	const factor = 1000

	serverEdge, addr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	reg := obs.NewRegistry("session")
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeSessionConfig(ctx, serverEdge, serverEdge, netw, SessionConfig{
			Factor:     factor,
			MaxWorkers: 2,
			Window:     4,
			IdleTTL:    time.Minute,
			Registry:   reg,
		})
	}()

	clientEdge, err := stream.DialEdge(addr)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClientOpts(ctx, clientEdge, clientEdge, netw, k, factor, ClientOptions{Workers: 1, Window: 8})
	if err != nil {
		t.Fatal(err)
	}

	const n = 8
	const badSlot = 3
	r := mathrand.New(mathrand.NewSource(321))
	inputs := make([]*tensor.Dense, n)
	for i := range inputs {
		x := tensor.Zeros(4)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()
		}
		inputs[i] = x
	}
	// Wrong input size: the server rejects this request's first linear
	// round; the session and the other requests must be unaffected.
	inputs[badSlot] = tensor.Zeros(9)

	var (
		wg                sync.WaitGroup
		inflight, maxSeen atomic.Int64
		results           = make([]*tensor.Dense, n)
		errs              = make([]error, n)
		start             = make(chan struct{})
	)
	for i := range inputs {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			cur := inflight.Add(1)
			for {
				prev := maxSeen.Load()
				if cur <= prev || maxSeen.CompareAndSwap(prev, cur) {
					break
				}
			}
			results[i], errs[i] = client.Infer(ctx, inputs[i])
			inflight.Add(-1)
		}()
	}
	close(start)
	wg.Wait()

	if errs[badSlot] == nil {
		t.Error("bad request did not fail")
	} else if !strings.Contains(errs[badSlot].Error(), "rejected round 0") {
		t.Errorf("bad request error: %v", errs[badSlot])
	}
	for i := range inputs {
		if i == badSlot {
			continue
		}
		if errs[i] != nil {
			t.Fatalf("request %d failed alongside the injected failure: %v", i, errs[i])
		}
		want, _ := netw.Forward(inputs[i])
		if !tensor.AllClose(want, results[i], 1e-2) {
			t.Errorf("request %d result mixed up or diverged", i)
		}
	}
	if got := maxSeen.Load(); got < 4 {
		t.Errorf("max concurrent in-flight inferences %d, want >= 4", got)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}
	s := reg.Snapshot()
	if s.Counters["requests.completed"] != n-1 {
		t.Errorf("requests.completed %d, want %d", s.Counters["requests.completed"], n-1)
	}
	if s.Counters["rounds.errors"] == 0 {
		t.Error("injected failure not counted in rounds.errors")
	}
	if s.Gauges["requests.active"] != 0 {
		t.Errorf("requests.active %d after session close, want 0 (state leak)", s.Gauges["requests.active"])
	}
}

// TestSessionIdleEviction: a request abandoned mid-protocol (round 0
// done, round 1 never sent) has its permutation state evicted after the
// session's idle TTL — the server does not leak state for crashed or
// stalled clients.
func TestSessionIdleEviction(t *testing.T) {
	RegisterServiceWire()
	k := key(t)
	netw := buildNet(t)
	const factor = 1000
	proto, err := Build(netw, k, Config{Factor: factor})
	if err != nil {
		t.Fatal(err)
	}

	serverEdge, addr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	reg := obs.NewRegistry("evict")
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeSessionConfig(ctx, serverEdge, serverEdge, netw, SessionConfig{
			Factor:   factor,
			IdleTTL:  50 * time.Millisecond,
			Registry: reg,
		})
	}()
	edge, err := stream.DialEdge(addr)
	if err != nil {
		t.Fatal(err)
	}
	hello := &Hello{N: k.N.Bytes(), Factor: factor, Workers: 1}
	if err := edge.Send(ctx, &stream.Message{Payload: hello}); err != nil {
		t.Fatal(err)
	}
	env, err := proto.Data.Encrypt(1, tensor.Zeros(4))
	if err != nil {
		t.Fatal(err)
	}
	w, err := ToWire(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := edge.Send(ctx, &stream.Message{Seq: 1, Payload: &roundFrame{Round: 0, Env: w}}); err != nil {
		t.Fatal(err)
	}
	if msg, err := edge.Recv(ctx); err != nil || msg.Err != "" {
		t.Fatalf("round 0 reply: %v %q", err, msg.Err)
	}
	// Abandon the request: never send round 1. The janitor must evict it.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := reg.Snapshot()
		if s.Counters["requests.evicted"] == 1 && s.Gauges["requests.active"] == 0 {
			edge.CloseSend()
			if err := <-serveErr; err != nil {
				t.Fatalf("server: %v", err)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("abandoned request never evicted: %+v", reg.Snapshot().Counters)
}
