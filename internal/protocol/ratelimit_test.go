package protocol

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ppstream/internal/tensor"
)

func TestRateLimiterValidation(t *testing.T) {
	if _, err := NewRateLimiter(0, time.Second); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := NewRateLimiter(5, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestRateLimiterWindow(t *testing.T) {
	rl, err := NewRateLimiter(2, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// controllable clock
	now := time.Unix(1000, 0)
	rl.now = func() time.Time { return now }

	if !rl.Allow() || !rl.Allow() {
		t.Fatal("first two requests must pass")
	}
	if rl.Allow() {
		t.Error("third request within the window passed")
	}
	if rl.InFlight() != 2 {
		t.Errorf("InFlight = %d", rl.InFlight())
	}
	// advance past the window: capacity frees up
	now = now.Add(2 * time.Minute)
	if !rl.Allow() {
		t.Error("request after window expiry rejected")
	}
	if rl.InFlight() != 1 {
		t.Errorf("InFlight after expiry = %d", rl.InFlight())
	}
}

func TestModelProviderEnforcesLimit(t *testing.T) {
	k := key(t)
	net := buildNet(t)
	proto, err := Build(net, k, Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := NewRateLimiter(1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proto.Model.SetLimiter(rl)

	x := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 4)
	// First request completes all rounds (the limit counts request
	// starts, not rounds).
	if _, err := proto.Infer(1, x); err != nil {
		t.Fatalf("first request rejected: %v", err)
	}
	// Second request start must be rejected.
	if _, err := proto.Infer(2, x); err == nil {
		t.Error("second request within the window accepted")
	} else if !strings.Contains(err.Error(), "rate limit") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestRateLimiterShrinksAfterBurst: a peak burst must not pin its
// backing array forever — once the window empties, the next Allow
// reallocates down to the live size.
func TestRateLimiterShrinksAfterBurst(t *testing.T) {
	rl, err := NewRateLimiter(4096, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1000, 0)
	rl.now = func() time.Time { return now }
	for i := 0; i < 2048; i++ {
		if !rl.Allow() {
			t.Fatalf("burst admission %d rejected", i)
		}
	}
	if cap(rl.starts) < 2048 {
		t.Fatalf("burst capacity %d, expected >= 2048", cap(rl.starts))
	}
	// The whole burst ages out; the next admission must shed the peak
	// backing array, keeping only a small multiple of the live window.
	now = now.Add(2 * time.Minute)
	if !rl.Allow() {
		t.Fatal("post-burst admission rejected")
	}
	if got := cap(rl.starts); got >= limiterShrinkMin {
		t.Errorf("backing array still %d entries after the window emptied (len %d)", got, len(rl.starts))
	}
}

// TestThrottleErrorTyped: the limiter's rejection must match
// ErrThrottled through errors.Is — the client's retry loop keys on it.
func TestThrottleErrorTyped(t *testing.T) {
	k := key(t)
	net := buildNet(t)
	proto, err := Build(net, k, Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := NewRateLimiter(1, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	proto.Model.SetLimiter(rl)
	x := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 4)
	if _, err := proto.Infer(1, x); err != nil {
		t.Fatalf("first request rejected: %v", err)
	}
	_, err = proto.Infer(2, x)
	if !errors.Is(err, ErrThrottled) {
		t.Errorf("throttle rejection not errors.Is(ErrThrottled): %v", err)
	}
	if !Retryable(err) {
		t.Error("throttle rejection must be retryable")
	}
	if codeOf(err) != CodeThrottled {
		t.Errorf("codeOf(throttle) = %d", codeOf(err))
	}
}
