package protocol

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"ppstream/internal/backend"
	"ppstream/internal/obs"
	"ppstream/internal/paillier"
	"ppstream/internal/secshare"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// TraceV1 is the current trace-context wire version. A receiver honours
// only versions it knows; unknown (future) versions are ignored rather
// than rejected, and frames without a TraceContext at all — older peers
// — keep working, so tracing never breaks interoperability.
const TraceV1 = 1

// TraceContext is the distributed-tracing header carried by every round
// frame: the request's trace ID, assigned where the request enters the
// system (protocol.Client.Infer or stream.Pipeline.Submit), under which
// both parties record their spans.
type TraceContext struct {
	Ver int
	ID  string
}

// valid reports whether a received trace context should be honoured.
func (tc *TraceContext) valid() bool {
	return tc != nil && tc.Ver == TraceV1 && tc.ID != ""
}

// WireSpan is the gob form of one server-side trace segment, shipped
// back to the client in the final round frame so it can merge both
// parties' spans into one obs.TraceTree. Cost is a gob-compatible
// additive extension: frames from peers predating it decode with the
// field nil, and old peers skip it.
type WireSpan struct {
	Party string
	Name  string
	Round int
	Nanos int64
	Cost  *WireCost
	// Backend names the crypto backend that executed the span's round
	// (additive: empty from peers predating backend negotiation).
	Backend string
}

// WireCost is the gob form of a segment's obs.CostStats crypto-cost
// profile. The field set mirrors obs.CostStats; evolution is additive
// only (wire.lock).
type WireCost struct {
	ModExps        uint64
	MulMods        uint64
	ModInverses    uint64
	Rerands        uint64
	PoolHits       uint64
	PoolMisses     uint64
	Encrypts       uint64
	Decrypts       uint64
	CipherBytesIn  uint64
	CipherBytesOut uint64
	// Additive extensions for the non-Paillier backends: Beaver triples
	// and opened share words (ss-gc linear), garbled AND gates and
	// extension OTs (gc relu), and plaintext multiply-accumulates (clear).
	Triples     uint64
	OpenedWords uint64
	GCGates     uint64
	ExtOTs      uint64
	PlainOps    uint64
}

// toWireCost converts a segment's cost annotation, nil for segments
// without one (or with nothing recorded).
func toWireCost(st *obs.CostStats) *WireCost {
	if st == nil || st.IsZero() {
		return nil
	}
	return &WireCost{
		ModExps:        st.ModExps,
		MulMods:        st.MulMods,
		ModInverses:    st.ModInverses,
		Rerands:        st.Rerands,
		PoolHits:       st.PoolHits,
		PoolMisses:     st.PoolMisses,
		Encrypts:       st.Encrypts,
		Decrypts:       st.Decrypts,
		CipherBytesIn:  st.CipherBytesIn,
		CipherBytesOut: st.CipherBytesOut,
		Triples:        st.Triples,
		OpenedWords:    st.OpenedWords,
		GCGates:        st.GCGates,
		ExtOTs:         st.ExtOTs,
		PlainOps:       st.PlainOps,
	}
}

// fromWireCost converts a received cost profile.
func fromWireCost(w *WireCost) *obs.CostStats {
	if w == nil {
		return nil
	}
	return &obs.CostStats{
		ModExps:        w.ModExps,
		MulMods:        w.MulMods,
		ModInverses:    w.ModInverses,
		Rerands:        w.Rerands,
		PoolHits:       w.PoolHits,
		PoolMisses:     w.PoolMisses,
		Encrypts:       w.Encrypts,
		Decrypts:       w.Decrypts,
		CipherBytesIn:  w.CipherBytesIn,
		CipherBytesOut: w.CipherBytesOut,
		Triples:        w.Triples,
		OpenedWords:    w.OpenedWords,
		GCGates:        w.GCGates,
		ExtOTs:         w.ExtOTs,
		PlainOps:       w.PlainOps,
	}
}

// toWireSpans converts trace segments for the result frame.
func toWireSpans(segs []obs.Segment) []WireSpan {
	if len(segs) == 0 {
		return nil
	}
	out := make([]WireSpan, len(segs))
	for i, s := range segs {
		out[i] = WireSpan{Party: s.Party, Name: s.Name, Round: s.Round, Nanos: s.Dur.Nanoseconds(), Cost: toWireCost(s.Cost), Backend: s.Backend}
	}
	return out
}

// fromWireSpans converts received spans back into trace segments,
// dropping negative durations a hostile peer might announce.
func fromWireSpans(spans []WireSpan) []obs.Segment {
	if len(spans) == 0 {
		return nil
	}
	out := make([]obs.Segment, 0, len(spans))
	for _, s := range spans {
		if s.Nanos < 0 {
			continue
		}
		out = append(out, obs.Segment{Party: s.Party, Name: s.Name, Round: s.Round, Dur: time.Duration(s.Nanos), Cost: fromWireCost(s.Cost), Backend: s.Backend})
	}
	return out
}

// CipherBytes sums the serialized activation payload of a wire envelope
// — ciphertexts, share words, or plaintext integers — the per-hop
// traffic cost accounting records.
func (w *WireEnvelope) CipherBytes() uint64 {
	if w == nil {
		return 0
	}
	var n uint64
	for _, c := range w.Cipher {
		n += uint64(len(c))
	}
	n += 8 * uint64(len(w.Shares0)+len(w.Shares1))
	for _, p := range w.Plain {
		n += uint64(len(p))
	}
	return n
}

// WireEnvelope is the gob-encodable form of Envelope for TCP edges
// between the model and data providers. Under the original protocol only
// ciphertexts (and, for the terminal hop, the final result) ever cross
// the wire: raw inputs and model parameters never leave their provider
// (Section II-C). Backend negotiation extends the frame additively: an
// ss-gc round carries the two share words per element, and a clear round
// — certified leak-free past the boundary — carries sign-magnitude
// plaintext integers. Absent fields (Backend 0) decode to the legacy
// Paillier protocol.
type WireEnvelope struct {
	Req        uint64
	Shape      []int
	Cipher     [][]byte // big-endian ciphertext ring elements
	Exp        int
	Obfuscated bool
	// Result carries the final plaintext output (terminal hop only).
	Result      []float64
	ResultShape []int
	// Backend is the backend.Kind wire code of the payload (0 =
	// paillier-he, the legacy protocol).
	Backend int32
	// Shares0/Shares1 carry the two additive share words per element for
	// ss-gc rounds, in flat tensor order.
	Shares0 []uint64
	Shares1 []uint64
	// Plain carries sign-magnitude big integers (leading sign byte, 0
	// positive / 1 negative, then big-endian magnitude) for clear rounds.
	Plain [][]byte
}

// maxPlainElementBytes bounds one clear-round integer's magnitude. Stage
// outputs at scale F^(exp+1) stay far below this; a hostile frame cannot
// make the receiver allocate unbounded integers.
const maxPlainElementBytes = 4096

// RegisterWire registers the wire types with gob. Call once per process
// before using TCP edges.
func RegisterWire() {
	stream.RegisterWireType(&WireEnvelope{})
}

// ToWire serializes an Envelope.
func ToWire(env *Envelope) (*WireEnvelope, error) {
	w := &WireEnvelope{Req: env.Req, Exp: env.Exp, Obfuscated: env.Obfuscated}
	if env.Result != nil {
		w.Result = append([]float64(nil), env.Result.Data()...)
		w.ResultShape = env.Result.Shape().Clone()
		return w, nil
	}
	kind := env.BackendKind()
	w.Backend = kind.Code()
	switch kind {
	case backend.PaillierHE:
		if env.CT == nil {
			return nil, errors.New("protocol: envelope has neither ciphertext nor result")
		}
		w.Shape = env.CT.Shape().Clone()
		w.Cipher = make([][]byte, env.CT.Size())
		for i, ct := range env.CT.Data() {
			if ct == nil {
				return nil, fmt.Errorf("protocol: nil ciphertext at %d", i)
			}
			w.Cipher[i] = ct.Value().Bytes()
		}
	case backend.SSGC:
		if env.Sh == nil {
			return nil, errors.New("protocol: ss-gc envelope has no shares")
		}
		w.Shape = env.Sh.Shape().Clone()
		w.Shares0 = make([]uint64, env.Sh.Size())
		w.Shares1 = make([]uint64, env.Sh.Size())
		for i, s := range env.Sh.Data() {
			w.Shares0[i] = s.S[0]
			w.Shares1[i] = s.S[1]
		}
	case backend.Clear:
		if env.Plain == nil {
			return nil, errors.New("protocol: clear envelope has no values")
		}
		w.Shape = env.Plain.Shape().Clone()
		w.Plain = make([][]byte, env.Plain.Size())
		for i, v := range env.Plain.Data() {
			if v == nil {
				return nil, fmt.Errorf("protocol: nil plaintext at %d", i)
			}
			sign := byte(0)
			if v.Sign() < 0 {
				sign = 1
			}
			w.Plain[i] = append([]byte{sign}, v.Bytes()...)
		}
	default:
		return nil, fmt.Errorf("protocol: cannot serialize backend %q", kind)
	}
	return w, nil
}

// FromWire deserializes and validates a WireEnvelope under the given
// public key. Malformed frames (wrong sizes, out-of-range ciphertexts,
// oversized plaintexts) are rejected — the receiving provider treats the
// network as untrusted.
func FromWire(w *WireEnvelope, pk *paillier.PublicKey) (*Envelope, error) {
	if w == nil {
		return nil, errors.New("protocol: nil wire envelope")
	}
	env := &Envelope{Req: w.Req, Exp: w.Exp, Obfuscated: w.Obfuscated}
	if w.Result != nil {
		res, err := tensor.FromSlice(append([]float64(nil), w.Result...), w.ResultShape...)
		if err != nil {
			return nil, fmt.Errorf("protocol: malformed result: %w", err)
		}
		env.Result = res
		return env, nil
	}
	kind, err := backend.KindFromCode(w.Backend)
	if err != nil {
		return nil, fmt.Errorf("protocol: %w", err)
	}
	env.Backend = kind
	shape := tensor.Shape(w.Shape)
	if err := shape.Validate(); err != nil {
		return nil, fmt.Errorf("protocol: malformed shape: %w", err)
	}
	switch kind {
	case backend.PaillierHE:
		if len(w.Cipher) != shape.Size() {
			return nil, fmt.Errorf("protocol: %d ciphertexts for shape %v", len(w.Cipher), shape)
		}
		ct := tensor.New[*paillier.Ciphertext](shape...)
		for i, raw := range w.Cipher {
			v := new(big.Int).SetBytes(raw)
			c, err := paillier.NewCiphertextFromValue(v, pk)
			if err != nil {
				return nil, fmt.Errorf("protocol: ciphertext %d: %w", i, err)
			}
			ct.SetFlat(i, c)
		}
		env.CT = ct
	case backend.SSGC:
		if len(w.Shares0) != shape.Size() || len(w.Shares1) != shape.Size() {
			return nil, fmt.Errorf("protocol: %d/%d share words for shape %v", len(w.Shares0), len(w.Shares1), shape)
		}
		sh := tensor.New[secshare.Shares](shape...)
		for i := range w.Shares0 {
			sh.SetFlat(i, secshare.Shares{S: [2]uint64{w.Shares0[i], w.Shares1[i]}})
		}
		env.Sh = sh
	case backend.Clear:
		if len(w.Plain) != shape.Size() {
			return nil, fmt.Errorf("protocol: %d plaintexts for shape %v", len(w.Plain), shape)
		}
		plain := tensor.New[*big.Int](shape...)
		for i, raw := range w.Plain {
			if len(raw) == 0 {
				return nil, fmt.Errorf("protocol: plaintext %d is empty", i)
			}
			if len(raw) > maxPlainElementBytes {
				return nil, fmt.Errorf("protocol: plaintext %d is %d bytes, limit %d", i, len(raw), maxPlainElementBytes)
			}
			if raw[0] > 1 {
				return nil, fmt.Errorf("protocol: plaintext %d has sign byte %d", i, raw[0])
			}
			v := new(big.Int).SetBytes(raw[1:])
			if raw[0] == 1 {
				v.Neg(v)
			}
			plain.SetFlat(i, v)
		}
		env.Plain = plain
	}
	return env, nil
}
