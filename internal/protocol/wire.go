package protocol

import (
	"errors"
	"fmt"
	"math/big"

	"ppstream/internal/paillier"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// WireEnvelope is the gob-encodable form of Envelope for TCP edges
// between the model and data providers. Only ciphertexts (and, for the
// terminal hop, the final result) ever cross the wire: raw inputs and
// model parameters never leave their provider (Section II-C).
type WireEnvelope struct {
	Req        uint64
	Shape      []int
	Cipher     [][]byte // big-endian ciphertext ring elements
	Exp        int
	Obfuscated bool
	// Result carries the final plaintext output (terminal hop only).
	Result      []float64
	ResultShape []int
}

// RegisterWire registers the wire types with gob. Call once per process
// before using TCP edges.
func RegisterWire() {
	stream.RegisterWireType(&WireEnvelope{})
}

// ToWire serializes an Envelope.
func ToWire(env *Envelope) (*WireEnvelope, error) {
	w := &WireEnvelope{Req: env.Req, Exp: env.Exp, Obfuscated: env.Obfuscated}
	if env.Result != nil {
		w.Result = append([]float64(nil), env.Result.Data()...)
		w.ResultShape = env.Result.Shape().Clone()
		return w, nil
	}
	if env.CT == nil {
		return nil, errors.New("protocol: envelope has neither ciphertext nor result")
	}
	w.Shape = env.CT.Shape().Clone()
	w.Cipher = make([][]byte, env.CT.Size())
	for i, ct := range env.CT.Data() {
		if ct == nil {
			return nil, fmt.Errorf("protocol: nil ciphertext at %d", i)
		}
		w.Cipher[i] = ct.Value().Bytes()
	}
	return w, nil
}

// FromWire deserializes and validates a WireEnvelope under the given
// public key. Malformed frames (wrong sizes, out-of-range ciphertexts)
// are rejected — the receiving provider treats the network as untrusted.
func FromWire(w *WireEnvelope, pk *paillier.PublicKey) (*Envelope, error) {
	if w == nil {
		return nil, errors.New("protocol: nil wire envelope")
	}
	env := &Envelope{Req: w.Req, Exp: w.Exp, Obfuscated: w.Obfuscated}
	if w.Result != nil {
		res, err := tensor.FromSlice(append([]float64(nil), w.Result...), w.ResultShape...)
		if err != nil {
			return nil, fmt.Errorf("protocol: malformed result: %w", err)
		}
		env.Result = res
		return env, nil
	}
	shape := tensor.Shape(w.Shape)
	if err := shape.Validate(); err != nil {
		return nil, fmt.Errorf("protocol: malformed shape: %w", err)
	}
	if len(w.Cipher) != shape.Size() {
		return nil, fmt.Errorf("protocol: %d ciphertexts for shape %v", len(w.Cipher), shape)
	}
	ct := tensor.New[*paillier.Ciphertext](shape...)
	for i, raw := range w.Cipher {
		v := new(big.Int).SetBytes(raw)
		c, err := paillier.NewCiphertextFromValue(v, pk)
		if err != nil {
			return nil, fmt.Errorf("protocol: ciphertext %d: %w", i, err)
		}
		ct.SetFlat(i, c)
	}
	env.CT = ct
	return env, nil
}
