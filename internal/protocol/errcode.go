package protocol

import (
	"errors"
	"fmt"
)

// Error codes classify error frames on the wire so a client can tell a
// retryable rejection (throttle, shed) from a fatal protocol error
// without parsing message text. The numeric values ride in
// stream.Message.ErrCode — additive, so frames from peers predating the
// field decode as CodeNone.
const (
	// CodeNone marks an unclassified error (or a frame from an old peer).
	CodeNone = 0
	// CodeThrottled: the model provider's rate limiter rejected the
	// request's first round. Retryable after backoff.
	CodeThrottled = 1
	// CodeShed: admission control rejected the request's first round
	// because the server is overloaded. Retryable after backoff.
	CodeShed = 2
	// CodeDeadline: the request's propagated deadline expired on the
	// server. Not retryable — the client's budget is spent.
	CodeDeadline = 3
	// CodeEvicted: a round frame arrived for a request whose per-request
	// state the janitor already evicted (idle TTL or deadline). The
	// obfuscation chain is broken; the inference cannot continue.
	CodeEvicted = 4
)

// Sentinel errors surfaced by the client for typed error frames and by
// the serving plane for local rejections. Match with errors.Is.
var (
	// ErrThrottled is the rate-limit rejection (CodeThrottled).
	ErrThrottled = errors.New("protocol: request throttled")
	// ErrShed is the overload rejection (CodeShed).
	ErrShed = errors.New("protocol: request shed by admission control")
	// ErrDeadline is the server- or client-side deadline expiry
	// (CodeDeadline).
	ErrDeadline = errors.New("protocol: request deadline exceeded")
	// ErrEvicted is the stale-request rejection (CodeEvicted).
	ErrEvicted = errors.New("protocol: request state evicted")
	// ErrSessionDown marks transport-level session failure (connection
	// reset, server gone). The whole inference may be retried on a fresh
	// session; no mid-protocol state survives.
	ErrSessionDown = errors.New("protocol: session down")
)

// codeSentinel maps a wire code to its errors.Is sentinel.
func codeSentinel(code int) error {
	switch code {
	case CodeThrottled:
		return ErrThrottled
	case CodeShed:
		return ErrShed
	case CodeDeadline:
		return ErrDeadline
	case CodeEvicted:
		return ErrEvicted
	default:
		return nil
	}
}

// codeOf classifies a server-side error into its wire code.
func codeOf(err error) int {
	switch {
	case errors.Is(err, ErrThrottled):
		return CodeThrottled
	case errors.Is(err, ErrShed):
		return CodeShed
	case errors.Is(err, ErrDeadline):
		return CodeDeadline
	case errors.Is(err, ErrEvicted):
		return CodeEvicted
	default:
		return CodeNone
	}
}

// RoundError is the client-side view of a typed error frame: the round
// it failed at, the wire code, and the server's message. Unwrap returns
// the code's sentinel, so errors.Is(err, ErrThrottled) etc. work through
// the usual chain.
type RoundError struct {
	Round int
	Code  int
	Msg   string
}

func (e *RoundError) Error() string {
	return fmt.Sprintf("protocol: server rejected round %d: %s", e.Round, e.Msg)
}

// Unwrap exposes the code's sentinel for errors.Is matching.
func (e *RoundError) Unwrap() error { return codeSentinel(e.Code) }

// Retryable reports whether err is safe to retry. Throttle and shed
// rejections happen before the server creates per-request state, and a
// downed session destroys all mid-protocol state on both sides, so a
// fresh attempt starts clean. Deadline and eviction errors are not
// retryable: the budget is spent or the obfuscation chain is broken.
func Retryable(err error) bool {
	return errors.Is(err, ErrThrottled) || errors.Is(err, ErrShed) || errors.Is(err, ErrSessionDown)
}
