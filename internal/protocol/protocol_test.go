package protocol

import (
	"crypto/rand"
	mathrand "math/rand"
	"sync"
	"testing"

	"ppstream/internal/nn"
	"ppstream/internal/paillier"
	"ppstream/internal/tensor"
)

var (
	keyOnce sync.Once
	testKey *paillier.PrivateKey
)

func key(t testing.TB) *paillier.PrivateKey {
	keyOnce.Do(func() {
		k, err := paillier.GenerateKey(rand.Reader, 256)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	})
	return testKey
}

// buildNet makes a small FC network: two rounds (L,N,L,N).
func buildNet(t *testing.T) *nn.Network {
	t.Helper()
	r := mathrand.New(mathrand.NewSource(9))
	net, err := nn.NewNetwork("proto-test", tensor.Shape{4},
		nn.NewFC("fc1", 4, 6, r),
		nn.NewReLU("relu1"),
		nn.NewFC("fc2", 6, 3, r),
		nn.NewSoftMax("softmax"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// buildConvNet makes a conv network: conv+relu+fc+softmax.
func buildConvNet(t *testing.T) *nn.Network {
	t.Helper()
	r := mathrand.New(mathrand.NewSource(10))
	p := tensor.ConvParams{InC: 1, InH: 6, InW: 6, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv, err := nn.NewConv("conv1", p, r)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewNetwork("proto-conv", tensor.Shape{1, 6, 6},
		conv,
		nn.NewReLU("relu1"),
		nn.NewFlatten("flatten"),
		nn.NewFC("fc", 2*6*6, 3, r),
		nn.NewSoftMax("softmax"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestBuildValidation(t *testing.T) {
	k := key(t)
	net := buildNet(t)
	if _, err := Build(net, k, Config{Factor: 0}); err == nil {
		t.Error("zero factor accepted")
	}
	// Network ending in a linear layer violates the protocol shape.
	r := mathrand.New(mathrand.NewSource(1))
	bad, _ := nn.NewNetwork("bad", tensor.Shape{4}, nn.NewFC("fc", 4, 2, r))
	if _, err := Build(bad, k, Config{Factor: 100}); err == nil {
		t.Error("linear-ending network accepted")
	}
	// SoftMax in the middle must be rejected (position-dependent on a
	// permuted tensor).
	mid, _ := nn.NewNetwork("mid", tensor.Shape{4},
		nn.NewFC("fc1", 4, 4, r),
		nn.NewSoftMax("sm-middle"),
		nn.NewFC("fc2", 4, 2, r),
		nn.NewSoftMax("sm"),
	)
	if _, err := Build(mid, k, Config{Factor: 100}); err == nil {
		t.Error("middle SoftMax accepted")
	}
	// MaxPool in the middle likewise.
	p := tensor.ConvParams{InC: 1, InH: 4, InW: 4, OutC: 1, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv, _ := nn.NewConv("c", p, r)
	mp, _ := nn.NewNetwork("mp", tensor.Shape{1, 4, 4},
		conv,
		nn.NewMaxPool("pool", 2, 2),
		nn.NewFlatten("fl"),
		nn.NewFC("fc", 4, 2, r),
		nn.NewSoftMax("sm"),
	)
	if _, err := Build(mp, k, Config{Factor: 100}); err == nil {
		t.Error("middle MaxPool accepted without rewrite")
	}
	// After ReplaceMaxPool it must build.
	rewritten, err := nn.ReplaceMaxPool(mp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(rewritten, k, Config{Factor: 100}); err != nil {
		t.Errorf("rewritten network rejected: %v", err)
	}
}

// TestCorrectnessGuarantee is the paper's correctness property
// (Section II-C): the privacy-preserving protocol produces the same
// result as plain inference, up to parameter-scaling quantization.
func TestCorrectnessGuarantee(t *testing.T) {
	k := key(t)
	net := buildNet(t)
	proto, err := Build(net, k, Config{Factor: 10000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if proto.Rounds() != 2 {
		t.Fatalf("rounds %d, want 2", proto.Rounds())
	}
	r := mathrand.New(mathrand.NewSource(20))
	for trial := 0; trial < 5; trial++ {
		x := tensor.Zeros(4)
		for i := range x.Data() {
			x.Data()[i] = r.NormFloat64()
		}
		want, err := net.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		got, err := proto.Infer(uint64(trial), x)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.AllClose(want, got, 1e-3) {
			t.Errorf("trial %d: protocol %v, plain %v", trial, got.Data(), want.Data())
		}
		// Class prediction must match exactly.
		if tensor.ArgMax(want) != tensor.ArgMax(got) {
			t.Errorf("trial %d: prediction differs", trial)
		}
	}
}

func TestCorrectnessConvNet(t *testing.T) {
	k := key(t)
	net := buildConvNet(t)
	proto, err := Build(net, k, Config{Factor: 1000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Zeros(1, 6, 6)
	r := mathrand.New(mathrand.NewSource(21))
	for i := range x.Data() {
		x.Data()[i] = r.Float64()
	}
	want, _ := net.Forward(x)
	got, err := proto.Infer(1, x)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(want, got, 5e-3) {
		t.Errorf("conv protocol diverges:\n got %v\nwant %v", got.Data(), want.Data())
	}
}

// TestPartitionedExecutionMatches runs the protocol with tensor
// partitioning enabled on the conv stage and checks identical results.
func TestPartitionedExecutionMatches(t *testing.T) {
	k := key(t)
	net := buildConvNet(t)
	proto, err := Build(net, k, Config{Factor: 1000, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := proto.Infer(1, onesInput())
	if err != nil {
		t.Fatal(err)
	}
	if err := proto.Model.SetStagePlan(0, 3, true, true); err != nil {
		t.Fatal(err)
	}
	partitioned, err := proto.Infer(2, onesInput())
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(baseline, partitioned, 1e-9) {
		t.Error("partitioned execution changed the result")
	}
}

func onesInput() *tensor.Dense {
	x := tensor.Zeros(1, 6, 6)
	for i := range x.Data() {
		x.Data()[i] = float64(i%4) / 4
	}
	return x
}

// TestObfuscationActuallyPermutes inspects the envelope the model
// provider emits mid-protocol: it must be a rank-1 permuted tensor, and
// the permutation must differ between requests.
func TestObfuscationActuallyPermutes(t *testing.T) {
	k := key(t)
	net := buildNet(t)
	proto, err := Build(net, k, Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{0.5, -0.25, 1, 0.75}, 4)
	env, err := proto.Data.Encrypt(7, x)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := proto.Model.ProcessLinear(0, env)
	if err != nil {
		t.Fatal(err)
	}
	if !mid.Obfuscated {
		t.Error("intermediate envelope not marked obfuscated")
	}
	if mid.CT.Shape().Rank() != 1 {
		t.Errorf("obfuscated tensor rank %d, want 1 (Section III-C reshape)", mid.CT.Shape().Rank())
	}
	// The data provider decrypts the permuted values; inverting at the
	// model provider must restore the linear-stage output order: finish
	// the round and confirm end-to-end correctness.
	next, err := proto.Data.ProcessNonLinear(0, mid)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := proto.Model.ProcessLinear(1, next)
	if err != nil {
		t.Fatal(err)
	}
	if fin.Obfuscated {
		t.Error("last round must not be obfuscated (step 3.4)")
	}
	res, err := proto.Data.ProcessNonLinear(1, fin)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := net.Forward(x)
	if !tensor.AllClose(want, res.Result, 1e-2) {
		t.Errorf("manual round walk diverges: %v vs %v", res.Result.Data(), want.Data())
	}
}

func TestProtocolStateValidation(t *testing.T) {
	k := key(t)
	net := buildNet(t)
	proto, err := Build(net, k, Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{1, 2, 3, 4}, 4)
	env, _ := proto.Data.Encrypt(1, x)
	// Round 1 without round 0's obfuscation state must fail.
	if _, err := proto.Model.ProcessLinear(1, env); err == nil {
		t.Error("round 1 accepted non-obfuscated input")
	}
	// Out-of-range rounds.
	if _, err := proto.Model.ProcessLinear(9, env); err == nil {
		t.Error("unknown linear round accepted")
	}
	if _, err := proto.Data.ProcessNonLinear(9, env); err == nil {
		t.Error("unknown non-linear round accepted")
	}
	// Obfuscated input to round 0.
	envObf := &Envelope{Req: 2, CT: env.CT, Exp: 1, Obfuscated: true}
	if _, err := proto.Model.ProcessLinear(0, envObf); err == nil {
		t.Error("round 0 accepted obfuscated input")
	}
	// Missing ciphertext.
	if _, err := proto.Model.ProcessLinear(0, &Envelope{Req: 3, Exp: 1}); err == nil {
		t.Error("empty envelope accepted")
	}
}

func TestWireRoundTrip(t *testing.T) {
	k := key(t)
	net := buildNet(t)
	proto, err := Build(net, k, Config{Factor: 1000})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{0.1, 0.2, 0.3, 0.4}, 4)
	env, err := proto.Data.Encrypt(5, x)
	if err != nil {
		t.Fatal(err)
	}
	w, err := ToWire(env)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromWire(w, &k.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if back.Req != 5 || back.Exp != env.Exp || !back.CT.Shape().Equal(env.CT.Shape()) {
		t.Error("wire metadata lost")
	}
	// Decrypts to the same scaled values.
	a, _ := paillier.DecryptTensor(k, env.CT, 1)
	b, _ := paillier.DecryptTensor(k, back.CT, 1)
	for i := range a.Data() {
		if a.AtFlat(i) != b.AtFlat(i) {
			t.Fatal("wire round trip corrupted ciphertexts")
		}
	}
	// Result-carrying envelope.
	resEnv := &Envelope{Req: 6, Result: tensor.MustFromSlice([]float64{0.9, 0.1}, 2)}
	rw, err := ToWire(resEnv)
	if err != nil {
		t.Fatal(err)
	}
	resBack, err := FromWire(rw, &k.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if resBack.Result == nil || resBack.Result.At(0) != 0.9 {
		t.Error("result envelope corrupted")
	}
}

func TestFromWireRejectsMalformed(t *testing.T) {
	k := key(t)
	if _, err := FromWire(nil, &k.PublicKey); err == nil {
		t.Error("nil frame accepted")
	}
	// shape/cipher mismatch
	w := &WireEnvelope{Shape: []int{4}, Cipher: [][]byte{{1}}}
	if _, err := FromWire(w, &k.PublicKey); err == nil {
		t.Error("cipher-count mismatch accepted")
	}
	// out-of-range ciphertext
	huge := append([]byte{0xFF}, k.N2.Bytes()...)
	w2 := &WireEnvelope{Shape: []int{1}, Cipher: [][]byte{huge}}
	if _, err := FromWire(w2, &k.PublicKey); err == nil {
		t.Error("oversized ciphertext accepted")
	}
	// invalid shape
	w3 := &WireEnvelope{Shape: []int{0}, Cipher: nil}
	if _, err := FromWire(w3, &k.PublicKey); err == nil {
		t.Error("invalid shape accepted")
	}
	if _, err := ToWire(&Envelope{Req: 1}); err == nil {
		t.Error("empty envelope serialized")
	}
}

func TestBuildAutoSelectsFactor(t *testing.T) {
	k := key(t)
	net := buildNet(t)
	r := mathrand.New(mathrand.NewSource(33))
	var xs []*tensor.Dense
	var ys []int
	for i := 0; i < 12; i++ {
		x := tensor.Zeros(4)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()
		}
		pred, err := net.Predict(x)
		if err != nil {
			t.Fatal(err)
		}
		xs, ys = append(xs, x), append(ys, pred)
	}
	proto, res, err := BuildAuto(net, k, xs, ys, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Factor < 1 {
		t.Errorf("selected factor %d", res.Factor)
	}
	// Labels were the network's own predictions, so the scaled accuracy
	// at the selected factor should be ≈ 1.
	if res.ScaledAccuracy < 0.9 {
		t.Errorf("scaled accuracy %v", res.ScaledAccuracy)
	}
	out, err := proto.Infer(1, xs[0])
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Error("no result")
	}
}
