package protocol

import (
	"context"
	"errors"
	"testing"
	"time"

	"ppstream/internal/obs"
)

// TestRetryPolicyBackoffBounds: every backoff is positive and capped by
// min(base*2^(k-1), max) — full jitter never sleeps zero or over-cap.
func TestRetryPolicyBackoffBounds(t *testing.T) {
	p := RetryPolicy{BaseBackoff: 4 * time.Millisecond, MaxBackoff: 20 * time.Millisecond}.withDefaults()
	ceil := func(attempt int) time.Duration {
		c := p.BaseBackoff
		for i := 1; i < attempt; i++ {
			c *= 2
		}
		if c > p.MaxBackoff {
			c = p.MaxBackoff
		}
		return c
	}
	for attempt := 1; attempt <= 6; attempt++ {
		for trial := 0; trial < 50; trial++ {
			d := p.backoff(attempt)
			if d <= 0 || d > ceil(attempt) {
				t.Fatalf("backoff(%d) = %v outside (0, %v]", attempt, d, ceil(attempt))
			}
		}
	}
}

// TestRetryPolicyDefaults: the zero policy fills every knob.
func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.MaxAttempts != DefaultRetryAttempts || p.BaseBackoff != DefaultRetryBase ||
		p.MaxBackoff != DefaultRetryMax || p.Budget != DefaultRetryBudget {
		t.Errorf("defaults not applied: %+v", p)
	}
}

// TestRedialerDialFailure: a dead endpoint fails every attempt with a
// retryable session-down error, counts its attempts, and gives up within
// the policy's budget instead of hanging.
func TestRedialerDialFailure(t *testing.T) {
	reg := obs.NewRegistry("redial")
	dials := 0
	r := NewRedialer(func(context.Context) (*Client, error) {
		dials++
		return nil, errors.New("connection refused")
	}, RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}, reg)
	defer r.Close()
	_, err := r.Infer(context.Background(), nil)
	if err == nil {
		t.Fatal("dead endpoint succeeded")
	}
	if !errors.Is(err, ErrSessionDown) {
		t.Fatalf("dial failure not marked session-down: %v", err)
	}
	if dials != 3 {
		t.Errorf("dialed %d times, want 3", dials)
	}
	snap := reg.Snapshot()
	if snap.Counters["retry.attempts"] != 2 {
		t.Errorf("retry.attempts = %d, want 2", snap.Counters["retry.attempts"])
	}
	if snap.Counters["retry.giveups"] != 1 {
		t.Errorf("retry.giveups = %d, want 1", snap.Counters["retry.giveups"])
	}
}

// TestRedialerCtxCancel: a cancelled context stops the retry loop
// immediately rather than burning the whole attempt budget.
func TestRedialerCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRedialer(func(context.Context) (*Client, error) {
		return nil, errors.New("refused")
	}, RetryPolicy{MaxAttempts: 10, BaseBackoff: time.Millisecond}, nil)
	defer r.Close()
	if _, err := r.Infer(ctx, nil); err == nil {
		t.Fatal("cancelled context inferred")
	}
}
