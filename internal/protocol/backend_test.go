package protocol

import (
	"context"
	"crypto/rand"
	"fmt"
	"math/big"
	mathrand "math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"ppstream/internal/backend"
	"ppstream/internal/nn"
	"ppstream/internal/obs"
	"ppstream/internal/paillier"
	"ppstream/internal/secshare"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// buildNet3 makes a three-round FC network (L,N,L,N,L,N): round 0 is
// forced Paillier, round 1 is followed by a ReLU (the garbled-circuit
// case), and round 2 can sit past a certified clear boundary.
func buildNet3(t testing.TB) *nn.Network {
	t.Helper()
	r := mathrand.New(mathrand.NewSource(41))
	net, err := nn.NewNetwork("proto-test-3r", tensor.Shape{4},
		nn.NewFC("fc1", 4, 6, r),
		nn.NewReLU("relu1"),
		nn.NewFC("fc2", 6, 5, r),
		nn.NewReLU("relu2"),
		nn.NewFC("fc3", 5, 3, r),
		nn.NewSoftMax("softmax"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestWireRoundTripSharedEnvelope round-trips an ss-gc envelope: the
// share words must survive the wire exactly and the decoded payload
// must carry the ss-gc backend tag.
func TestWireRoundTripSharedEnvelope(t *testing.T) {
	k := key(t)
	sh := tensor.New[secshare.Shares](2, 3)
	for i := range sh.Data() {
		s, err := secshare.SplitRandom(rand.Reader, uint64(1000*i)-uint64(i*i))
		if err != nil {
			t.Fatal(err)
		}
		sh.Data()[i] = s
	}
	env := &Envelope{Req: 7, Backend: backend.SSGC, Sh: sh, Exp: 2, Obfuscated: true}
	w, err := ToWire(env)
	if err != nil {
		t.Fatal(err)
	}
	if w.Backend != backend.SSGC.Code() {
		t.Fatalf("wire backend code %d, want %d", w.Backend, backend.SSGC.Code())
	}
	if len(w.Cipher) != 0 || len(w.Plain) != 0 {
		t.Fatal("ss-gc wire envelope carries foreign payloads")
	}
	got, err := FromWire(w, &k.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if got.BackendKind() != backend.SSGC || got.Exp != 2 || !got.Obfuscated {
		t.Fatalf("decoded envelope lost metadata: %+v", got)
	}
	for i, s := range got.Sh.Data() {
		if s != sh.Data()[i] {
			t.Fatalf("share %d changed across the wire: %v != %v", i, s, sh.Data()[i])
		}
	}
	if w.CipherBytes() == 0 {
		t.Error("shared envelope reports zero wire bytes")
	}
}

// TestWireRoundTripClearEnvelope round-trips a clear envelope including
// negative values (sign-magnitude encoding), and rejects malformed
// plaintext elements.
func TestWireRoundTripClearEnvelope(t *testing.T) {
	k := key(t)
	vals := []int64{0, 1, -1, 123456789, -987654321}
	pl := tensor.New[*big.Int](len(vals))
	for i, v := range vals {
		pl.Data()[i] = big.NewInt(v)
	}
	env := &Envelope{Req: 9, Backend: backend.Clear, Plain: pl, Exp: 1, Obfuscated: true}
	w, err := ToWire(env)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromWire(w, &k.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if got.BackendKind() != backend.Clear {
		t.Fatalf("decoded backend %q, want clear", got.BackendKind())
	}
	for i, v := range got.Plain.Data() {
		if v.Int64() != vals[i] {
			t.Fatalf("plain element %d: got %v, want %d", i, v, vals[i])
		}
	}

	// Malformed plaintext elements must be rejected, not decoded.
	for name, mut := range map[string]func(*WireEnvelope){
		"empty element":  func(w *WireEnvelope) { w.Plain[0] = nil },
		"bad sign byte":  func(w *WireEnvelope) { w.Plain[1] = []byte{7, 1} },
		"oversized":      func(w *WireEnvelope) { w.Plain[2] = make([]byte, 5000) },
		"count mismatch": func(w *WireEnvelope) { w.Plain = w.Plain[:2] },
	} {
		bad, err := ToWire(env)
		if err != nil {
			t.Fatal(err)
		}
		mut(bad)
		if _, err := FromWire(bad, &k.PublicKey); err == nil {
			t.Errorf("%s: FromWire accepted a malformed clear payload", name)
		}
	}
}

// TestApplyPlanDifferential is the protocol-level differential test:
// every valid backend assignment over the three-round net must produce
// the SAME output as the all-Paillier baseline, bit for bit — the
// backends compute identical integer arithmetic, only under different
// protection.
func TestApplyPlanDifferential(t *testing.T) {
	k := key(t)
	netw := buildNet3(t)
	proto, err := Build(netw, k, Config{Factor: 1000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := mathrand.New(mathrand.NewSource(43))
	x := tensor.Zeros(4)
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64()
	}

	base, err := proto.Infer(100, x)
	if err != nil {
		t.Fatal(err)
	}

	P, S, C := backend.PaillierHE, backend.SSGC, backend.Clear
	req := uint64(101)
	for _, plan := range [][]backend.Kind{
		{P, P, P},
		{P, S, P},
		{P, S, S},
		{P, P, C},
		{P, S, C},
		{P, C, C},
	} {
		if err := proto.ApplyPlan(plan); err != nil {
			t.Fatalf("plan %v: %v", plan, err)
		}
		got, err := proto.Infer(req, x)
		req++
		if err != nil {
			t.Fatalf("plan %v: infer: %v", plan, err)
		}
		for i, v := range got.Data() {
			if v != base.Data()[i] {
				t.Fatalf("plan %v: output[%d] = %v, baseline %v — backends are not plaintext-identical",
					plan, i, v, base.Data()[i])
			}
		}
	}

	// Unsafe assignments must be refused: round 0 off Paillier, and a
	// clear round before a stronger one.
	for _, plan := range [][]backend.Kind{
		{S, P, P},
		{C, P, P},
		{P, C, S},
	} {
		if err := proto.ApplyPlan(plan); err == nil {
			t.Errorf("ApplyPlan accepted unsafe assignment %v", plan)
		}
	}
}

var (
	e2eKeyOnce sync.Once
	e2eKey     *paillier.PrivateKey
	e2eKeyErr  error
)

// e2eKey1024 returns a shared 1024-bit key: large enough that the ILP's
// Paillier cost estimate genuinely loses to ss-gc on ReLU-followed
// rounds, so the mixed plan picks all three backends on its own.
func e2eKey1024(t *testing.T) *paillier.PrivateKey {
	t.Helper()
	e2eKeyOnce.Do(func() {
		e2eKey, e2eKeyErr = paillier.GenerateKey(rand.Reader, 1024)
	})
	if e2eKeyErr != nil {
		t.Fatal(e2eKeyErr)
	}
	return e2eKey
}

// TestMixedProfileEndToEndAllBackends is the tentpole acceptance test:
// a mixed-profile session over live TCP runs at least one round on each
// backend within a single request, the merged TraceTree labels every
// kernel segment with its backend, the server's registry carries
// nonzero per-backend cost counters, and the result still matches the
// plaintext forward pass.
func TestMixedProfileEndToEndAllBackends(t *testing.T) {
	RegisterServiceWire()
	netw := buildNet3(t)
	k := e2eKey1024(t)
	reg := obs.NewRegistry("mixed-e2e")

	serverEdge, addr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeSessionConfig(ctx, serverEdge, serverEdge, netw, SessionConfig{
			Factor:        1000,
			MaxWorkers:    2,
			Window:        2,
			Registry:      reg,
			Profile:       backend.ProfileLatency, // permissive policy: the client's ask decides
			ClearBoundary: 2,
		})
	}()
	clientEdge, err := stream.DialEdge(addr)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClientOpts(ctx, clientEdge, clientEdge, netw, k, 1000,
		ClientOptions{Workers: 1, Window: 2, Profile: backend.ProfileMixed})
	if err != nil {
		t.Fatal(err)
	}

	r := mathrand.New(mathrand.NewSource(47))
	x := tensor.Zeros(4)
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64()
	}
	got, tree, err := client.InferTraced(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := netw.Forward(x)
	if !tensor.AllClose(want, got, 1e-2) {
		t.Errorf("mixed-profile inference diverges from plaintext forward: got %v want %v",
			got.Data(), want.Data())
	}

	// One request, three backends: every kernel segment names its
	// backend, and all three appear.
	perRound := map[int]string{}
	for _, s := range tree.Segments {
		if s.Party == "server" && s.Name == "kernel" {
			if s.Backend == "" {
				t.Errorf("round %d kernel segment has no backend label", s.Round)
			}
			perRound[s.Round] = s.Backend
		}
	}
	wantAssign := map[int]string{0: "paillier-he", 1: "ss-gc", 2: "clear"}
	for rd, wantB := range wantAssign {
		if perRound[rd] != wantB {
			t.Errorf("round %d ran on %q, want %q (assignment %v)", rd, perRound[rd], wantB, perRound)
		}
	}
	for _, label := range []string{
		"server-kernel[paillier-he]", "server-kernel[ss-gc]", "server-kernel[clear]",
	} {
		found := false
		for _, s := range tree.Segments {
			if s.Label() == label {
				found = true
			}
		}
		if !found {
			t.Errorf("merged trace lacks a %s segment", label)
		}
	}

	client.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}

	// The server's registry carries nonzero per-backend cost counters
	// for every backend the plan used.
	snap := reg.Snapshot()
	for _, name := range []string{
		"cost.paillier_he.mulmods",
		"cost.ss_gc.triples",
		"cost.ss_gc.opened_words",
		"cost.clear.plain_ops",
	} {
		if snap.Counters[name] == 0 {
			var have []string
			for n, v := range snap.Counters {
				if strings.HasPrefix(n, "cost.") && v > 0 {
					have = append(have, fmt.Sprintf("%s=%d", n, v))
				}
			}
			t.Errorf("per-backend counter %s is zero after a mixed-profile request (nonzero: %v)", name, have)
		}
	}
}

// TestPrivacyMaxClientNeverWeakens checks negotiation from the client
// side: a privacy-max client against a permissive latency server with a
// certified boundary still gets the all-Paillier plan — the stricter
// side wins.
func TestPrivacyMaxClientNeverWeakens(t *testing.T) {
	RegisterServiceWire()
	netw := buildNet3(t)
	k := e2eKey1024(t)

	serverEdge, addr, err := stream.ListenEdge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeSessionConfig(ctx, serverEdge, serverEdge, netw, SessionConfig{
			Factor:        1000,
			MaxWorkers:    2,
			Window:        2,
			Profile:       backend.ProfileLatency,
			ClearBoundary: 2,
		})
	}()
	clientEdge, err := stream.DialEdge(addr)
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClientOpts(ctx, clientEdge, clientEdge, netw, k, 1000,
		ClientOptions{Workers: 1, Window: 2, Profile: backend.ProfilePrivacyMax})
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Zeros(4)
	x.Data()[0] = 1
	_, tree, err := client.InferTraced(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tree.Segments {
		if s.Party == "server" && s.Name == "kernel" && s.Backend != "paillier-he" {
			t.Errorf("privacy-max session ran round %d on %q", s.Round, s.Backend)
		}
	}
	client.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}
}
