package protocol

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ppstream/internal/obs"
)

// Shedder is the serving plane's admission controller: it rejects a
// request's first round — before any per-request crypto state exists —
// when the server is overloaded, so excess demand fails fast with a
// retryable typed error instead of queueing unboundedly behind work the
// server cannot finish in time.
//
// Overload is judged two ways: a hard in-flight bound (requests admitted
// but not yet released) and a latency target compared against a windowed
// p95 of recent request latencies. The window is kept inside the Shedder
// because obs.Histogram is cumulative over the process lifetime — a
// morning's fast requests would mask an afternoon collapse.
type Shedder struct {
	maxInFlight int64
	target      time.Duration

	inflight atomic.Int64

	mu      sync.Mutex
	ring    []int64 // recent latency observations, nanoseconds
	next    int
	filled  bool
	unseen  int   // observations since the cached p95 was computed
	p95     int64 // cached windowed p95, nanoseconds

	rejectedTotal    *obs.Counter
	rejectedInflight *obs.Counter
	rejectedLatency  *obs.Counter
}

// ShedConfig parameterizes a Shedder. Zero values disable the
// corresponding check; a config with both zero admits everything.
type ShedConfig struct {
	// MaxInFlight is the hard bound on admitted-but-unreleased requests;
	// <= 0 disables the in-flight check.
	MaxInFlight int64
	// LatencyTarget sheds new requests while the windowed p95 of recent
	// request latencies exceeds it; <= 0 disables the latency check.
	LatencyTarget time.Duration
	// Registry, when non-nil, receives "shed.rejected.total",
	// "shed.rejected.inflight", "shed.rejected.latency" counters and the
	// "shed.inflight" gauge.
	Registry *obs.Registry
}

// shedWindow is how many recent latency observations drive the p95.
const shedWindow = 128

// shedRecompute is how many observations may accumulate before the
// cached p95 is recomputed (amortizes the sort).
const shedRecompute = 16

// NewShedder builds an admission controller. Share one Shedder across
// every session of a server so the in-flight bound is global.
func NewShedder(cfg ShedConfig) *Shedder {
	s := &Shedder{
		maxInFlight: cfg.MaxInFlight,
		target:      cfg.LatencyTarget,
		ring:        make([]int64, shedWindow),
	}
	if reg := cfg.Registry; reg != nil {
		s.rejectedTotal = reg.Counter("shed.rejected.total")
		s.rejectedInflight = reg.Counter("shed.rejected.inflight")
		s.rejectedLatency = reg.Counter("shed.rejected.latency")
		reg.GaugeFunc("shed.inflight", s.inflight.Load)
	}
	return s
}

// Acquire admits one request or rejects it with an ErrShed-wrapped
// error. Every successful Acquire must be paired with exactly one
// Release. Nil receivers admit everything.
func (s *Shedder) Acquire() error {
	if s == nil {
		return nil
	}
	if s.maxInFlight > 0 {
		if n := s.inflight.Add(1); n > s.maxInFlight {
			s.inflight.Add(-1)
			if s.rejectedTotal != nil {
				s.rejectedTotal.Inc()
				s.rejectedInflight.Inc()
			}
			return fmt.Errorf("%w: %d requests in flight (limit %d)", ErrShed, n-1, s.maxInFlight)
		}
	} else {
		s.inflight.Add(1)
	}
	if s.target > 0 {
		if p95 := s.recentP95(); p95 > int64(s.target) {
			s.inflight.Add(-1)
			if s.rejectedTotal != nil {
				s.rejectedTotal.Inc()
				s.rejectedLatency.Inc()
			}
			return fmt.Errorf("%w: recent p95 latency %v exceeds target %v",
				ErrShed, time.Duration(p95), s.target)
		}
	}
	return nil
}

// Release returns one admitted request's slot. Nil-safe.
func (s *Shedder) Release() {
	if s == nil {
		return
	}
	s.inflight.Add(-1)
}

// Observe records one completed request's latency into the recent
// window. Nil-safe.
func (s *Shedder) Observe(d time.Duration) {
	if s == nil || s.target <= 0 {
		return
	}
	s.mu.Lock()
	s.ring[s.next] = int64(d)
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.filled = true
	}
	s.unseen++
	s.mu.Unlock()
}

// InFlight reports the currently admitted request count.
func (s *Shedder) InFlight() int64 {
	if s == nil {
		return 0
	}
	return s.inflight.Load()
}

// recentP95 returns the cached windowed p95, recomputing it when enough
// new observations have accumulated. Zero until any were recorded.
func (s *Shedder) recentP95() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.next
	if s.filled {
		n = len(s.ring)
	}
	if n == 0 {
		return 0
	}
	if s.unseen >= shedRecompute || s.p95 == 0 {
		s.unseen = 0
		buf := make([]int64, n)
		copy(buf, s.ring[:n])
		// Insertion sort: n <= 128, and this runs once per shedRecompute
		// observations, off any crypto path.
		for i := 1; i < len(buf); i++ {
			for j := i; j > 0 && buf[j-1] > buf[j]; j-- {
				buf[j-1], buf[j] = buf[j], buf[j-1]
			}
		}
		idx := (95 * (len(buf) - 1)) / 100
		s.p95 = buf[idx]
	}
	return s.p95
}
