package protocol

import (
	"fmt"
	"sync/atomic"
	"time"

	"ppstream/internal/obs"
)

// Shedder is the serving plane's admission controller: it rejects a
// request's first round — before any per-request crypto state exists —
// when the server is overloaded, so excess demand fails fast with a
// retryable typed error instead of queueing unboundedly behind work the
// server cannot finish in time.
//
// Overload is judged two ways: a hard in-flight bound (requests admitted
// but not yet released) and a latency target compared against the p95 of
// latencies observed in a sliding time window (obs.WindowedHistogram).
// The window matters because obs.Histogram is cumulative over the
// process lifetime — a morning's fast requests would mask an afternoon
// collapse; the time basis (rather than the old count-based ring) means
// a burst of fast requests cannot instantly erase the evidence of an
// overload either: the slow observations age out with the clock.
type Shedder struct {
	maxInFlight int64
	target      time.Duration
	window      time.Duration

	inflight atomic.Int64
	win      *obs.WindowedHistogram

	rejectedTotal    *obs.Counter
	rejectedInflight *obs.Counter
	rejectedLatency  *obs.Counter
}

// ShedConfig parameterizes a Shedder. Zero values disable the
// corresponding check; a config with both zero admits everything.
type ShedConfig struct {
	// MaxInFlight is the hard bound on admitted-but-unreleased requests;
	// <= 0 disables the in-flight check.
	MaxInFlight int64
	// LatencyTarget sheds new requests while the windowed p95 of recent
	// request latencies exceeds it; <= 0 disables the latency check.
	LatencyTarget time.Duration
	// Window is the sliding window the p95 is computed over; <= 0 takes
	// DefaultShedWindow.
	Window time.Duration
	// Registry, when non-nil, receives "shed.rejected.total",
	// "shed.rejected.inflight", "shed.rejected.latency" counters and the
	// "shed.inflight" gauge.
	Registry *obs.Registry
}

// DefaultShedWindow is the latency-judgment window: long enough to hold
// evidence of an overload, short enough that recovery clears it fast.
const DefaultShedWindow = 10 * time.Second

// shedBuckets is the ring resolution of the latency window.
const shedBuckets = 16

// NewShedder builds an admission controller. Share one Shedder across
// every session of a server so the in-flight bound is global.
func NewShedder(cfg ShedConfig) *Shedder {
	if cfg.Window <= 0 {
		cfg.Window = DefaultShedWindow
	}
	s := &Shedder{
		maxInFlight: cfg.MaxInFlight,
		target:      cfg.LatencyTarget,
		window:      cfg.Window,
		win:         obs.NewWindowedHistogram(cfg.Window/shedBuckets, shedBuckets),
	}
	if reg := cfg.Registry; reg != nil {
		s.rejectedTotal = reg.Counter("shed.rejected.total")
		s.rejectedInflight = reg.Counter("shed.rejected.inflight")
		s.rejectedLatency = reg.Counter("shed.rejected.latency")
		reg.GaugeFunc("shed.inflight", s.inflight.Load)
	}
	return s
}

// SetClock replaces the latency window's time source — a test hook so
// overload recovery is exercised without sleeping. Not for production
// use.
func (s *Shedder) SetClock(now func() time.Time) { s.win.SetClock(now) }

// Acquire admits one request or rejects it with an ErrShed-wrapped
// error. Every successful Acquire must be paired with exactly one
// Release. Nil receivers admit everything.
func (s *Shedder) Acquire() error {
	if s == nil {
		return nil
	}
	if s.maxInFlight > 0 {
		if n := s.inflight.Add(1); n > s.maxInFlight {
			s.inflight.Add(-1)
			if s.rejectedTotal != nil {
				s.rejectedTotal.Inc()
				s.rejectedInflight.Inc()
			}
			return fmt.Errorf("%w: %d requests in flight (limit %d)", ErrShed, n-1, s.maxInFlight)
		}
	} else {
		s.inflight.Add(1)
	}
	if s.target > 0 {
		if p95 := s.win.QuantileOver(s.window, 0.95); p95 > s.target {
			s.inflight.Add(-1)
			if s.rejectedTotal != nil {
				s.rejectedTotal.Inc()
				s.rejectedLatency.Inc()
			}
			return fmt.Errorf("%w: recent p95 latency %v exceeds target %v",
				ErrShed, p95, s.target)
		}
	}
	return nil
}

// Release returns one admitted request's slot. Nil-safe.
func (s *Shedder) Release() {
	if s == nil {
		return
	}
	s.inflight.Add(-1)
}

// Observe records one completed request's latency into the recent
// window. Nil-safe.
func (s *Shedder) Observe(d time.Duration) {
	if s == nil || s.target <= 0 {
		return
	}
	s.win.Observe(d)
}

// InFlight reports the currently admitted request count.
func (s *Shedder) InFlight() int64 {
	if s == nil {
		return 0
	}
	return s.inflight.Load()
}
