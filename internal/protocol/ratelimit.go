package protocol

import (
	"fmt"
	"sync"
	"time"
)

// RateLimiter bounds the number of inference requests a data provider
// may start per window — the countermeasure the paper suggests against
// model-stealing attacks, where a compromised data provider trains a
// surrogate model on query/answer pairs (Section II-C).
//
// It is a sliding-window limiter keyed by request start; the model
// provider calls Allow before admitting a request's first round.
type RateLimiter struct {
	mu     sync.Mutex
	limit  int
	window time.Duration
	starts []time.Time
	now    func() time.Time
}

// limiterShrinkMin is the smallest backing capacity worth shrinking, and
// limiterShrinkFactor how many times the live length the capacity must
// exceed before Allow reallocates. Together they keep steady-state churn
// allocation-free while bounding post-burst memory to a small multiple
// of the live window.
const (
	limiterShrinkMin    = 64
	limiterShrinkFactor = 4
)

// NewRateLimiter allows up to limit new requests per window.
func NewRateLimiter(limit int, window time.Duration) (*RateLimiter, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("protocol: rate limit must be positive, got %d", limit)
	}
	if window <= 0 {
		return nil, fmt.Errorf("protocol: rate window must be positive, got %v", window)
	}
	return &RateLimiter{limit: limit, window: window, now: time.Now}, nil
}

// Allow reports whether a new request may start, recording it if so.
func (rl *RateLimiter) Allow() bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	cutoff := now.Add(-rl.window)
	kept := rl.starts[:0]
	for _, t := range rl.starts {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	// Shrink when a past burst left a backing array far larger than the
	// live window: reusing starts[:0] forever would pin the peak-burst
	// allocation for the life of the limiter.
	if cap(kept) >= limiterShrinkMin && cap(kept) > limiterShrinkFactor*len(kept) {
		shrunk := make([]time.Time, len(kept))
		copy(shrunk, kept)
		kept = shrunk
	}
	rl.starts = kept
	if len(rl.starts) >= rl.limit {
		return false
	}
	rl.starts = append(rl.starts, now)
	return true
}

// InFlight reports how many admissions remain inside the window.
func (rl *RateLimiter) InFlight() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	cutoff := rl.now().Add(-rl.window)
	n := 0
	for _, t := range rl.starts {
		if t.After(cutoff) {
			n++
		}
	}
	return n
}

// SetLimiter attaches a rate limiter to the model provider. When set,
// round-0 ProcessLinear calls for new requests are rejected once the
// limit is reached.
func (mp *ModelProvider) SetLimiter(rl *RateLimiter) {
	mp.mu.Lock()
	mp.limiter = rl
	mp.mu.Unlock()
}

// admit enforces the limiter for a request's first round.
func (mp *ModelProvider) admit() error {
	mp.mu.Lock()
	rl := mp.limiter
	mp.mu.Unlock()
	if rl == nil {
		return nil
	}
	if !rl.Allow() {
		return fmt.Errorf("%w: rate limit exceeded (%d per %v)", ErrThrottled, rl.limit, rl.window)
	}
	return nil
}
