package protocol

import (
	"errors"
	"testing"
	"time"

	"ppstream/internal/obs"
)

// TestShedderInFlightBound: the hard in-flight bound rejects the N+1st
// admission with a typed retryable error and recovers on Release.
func TestShedderInFlightBound(t *testing.T) {
	reg := obs.NewRegistry("shed")
	s := NewShedder(ShedConfig{MaxInFlight: 2, Registry: reg})
	if err := s.Acquire(); err != nil {
		t.Fatal(err)
	}
	if err := s.Acquire(); err != nil {
		t.Fatal(err)
	}
	err := s.Acquire()
	if !errors.Is(err, ErrShed) {
		t.Fatalf("third acquire: %v", err)
	}
	if !Retryable(err) {
		t.Error("shed rejection must be retryable")
	}
	if s.InFlight() != 2 {
		t.Errorf("in-flight %d after rejected acquire", s.InFlight())
	}
	s.Release()
	if err := s.Acquire(); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["shed.rejected.total"] != 1 || snap.Counters["shed.rejected.inflight"] != 1 {
		t.Errorf("rejection counters: %+v", snap.Counters)
	}
}

// TestShedderLatencyTarget: sustained slow latencies trip the windowed
// p95 check; once the slow evidence ages out of the time window the
// shedder admits again — the cumulative histogram would never recover,
// the sliding window does. A burst of fast observations alone must NOT
// clear an overload verdict while the slow ones are still in-window
// (that was the count-ring's blind spot).
func TestShedderLatencyTarget(t *testing.T) {
	s := NewShedder(ShedConfig{LatencyTarget: 10 * time.Millisecond, Window: time.Second})
	now := time.Unix(1_700_000_000, 0)
	s.SetClock(func() time.Time { return now })
	for i := 0; i < 64; i++ {
		s.Observe(100 * time.Millisecond)
	}
	err := s.Acquire()
	if !errors.Is(err, ErrShed) {
		t.Fatalf("overloaded shedder admitted: %v", err)
	}
	// Fast traffic cannot whitewash the in-window overload evidence:
	// even 10× as many fast observations leave the p95 over target.
	for i := 0; i < 640; i++ {
		s.Observe(time.Millisecond)
	}
	if err := s.Acquire(); !errors.Is(err, ErrShed) {
		t.Fatalf("fast burst cleared an in-window overload: %v", err)
	}
	// The clock moving past the window ages the evidence out.
	now = now.Add(2 * time.Second)
	if err := s.Acquire(); err != nil {
		t.Fatalf("recovered shedder still rejecting: %v", err)
	}
	s.Release()
	// Healthy traffic in the fresh window keeps admissions flowing.
	for i := 0; i < 64; i++ {
		s.Observe(time.Millisecond)
	}
	if err := s.Acquire(); err != nil {
		t.Fatalf("healthy window rejecting: %v", err)
	}
	s.Release()
}

// TestShedderNil: a nil shedder admits everything — sessions without
// admission control configured pay nothing.
func TestShedderNil(t *testing.T) {
	var s *Shedder
	if err := s.Acquire(); err != nil {
		t.Fatal(err)
	}
	s.Release()
	s.Observe(time.Second)
	if s.InFlight() != 0 {
		t.Error("nil shedder reports in-flight")
	}
}
