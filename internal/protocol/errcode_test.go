package protocol

import (
	"errors"
	"fmt"
	"testing"
)

// TestRoundErrorUnwrap: a typed error frame surfaced as RoundError must
// match its sentinel through errors.Is, and unknown codes match nothing.
func TestRoundErrorUnwrap(t *testing.T) {
	cases := []struct {
		code     int
		sentinel error
	}{
		{CodeThrottled, ErrThrottled},
		{CodeShed, ErrShed},
		{CodeDeadline, ErrDeadline},
		{CodeEvicted, ErrEvicted},
	}
	for _, c := range cases {
		err := error(&RoundError{Round: 0, Code: c.code, Msg: "x"})
		if !errors.Is(err, c.sentinel) {
			t.Errorf("code %d does not match %v", c.code, c.sentinel)
		}
		for _, other := range cases {
			if other.code != c.code && errors.Is(err, other.sentinel) {
				t.Errorf("code %d wrongly matches %v", c.code, other.sentinel)
			}
		}
	}
	unknown := error(&RoundError{Code: CodeNone, Msg: "legacy peer"})
	if errors.Is(unknown, ErrThrottled) || errors.Is(unknown, ErrShed) {
		t.Error("CodeNone matched a sentinel")
	}
}

// TestCodeRoundTrip: codeOf inverts codeSentinel, including through
// wrapping — the property that keeps server-side classification and
// client-side matching in sync.
func TestCodeRoundTrip(t *testing.T) {
	for _, code := range []int{CodeThrottled, CodeShed, CodeDeadline, CodeEvicted} {
		wrapped := fmt.Errorf("context: %w", codeSentinel(code))
		if got := codeOf(wrapped); got != code {
			t.Errorf("codeOf(wrap(sentinel(%d))) = %d", code, got)
		}
	}
	if codeOf(errors.New("plain")) != CodeNone {
		t.Error("unclassified error did not map to CodeNone")
	}
}

// TestRetryableMatrix: only throttle, shed, and torn-session errors are
// retryable; deadline and eviction are terminal.
func TestRetryableMatrix(t *testing.T) {
	retryable := []error{
		ErrThrottled,
		ErrShed,
		fmt.Errorf("%w: dial: connection refused", ErrSessionDown),
		&RoundError{Code: CodeShed, Msg: "overload"},
	}
	for _, err := range retryable {
		if !Retryable(err) {
			t.Errorf("%v should be retryable", err)
		}
	}
	terminal := []error{
		ErrDeadline,
		ErrEvicted,
		&RoundError{Code: CodeEvicted, Msg: "stale"},
		errors.New("protocol violation"),
	}
	for _, err := range terminal {
		if Retryable(err) {
			t.Errorf("%v should be terminal", err)
		}
	}
}
