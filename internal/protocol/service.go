package protocol

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ppstream/internal/backend"
	"ppstream/internal/nn"
	"ppstream/internal/obs"
	"ppstream/internal/paillier"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// This file implements the network session layer used by cmd/ppserver
// and cmd/ppclient: a data provider connects to the model-provider
// service, sends a Hello carrying its public key and the agreed scaling
// factor, and then drives the Figure 3 workflow round by round over the
// same connection pair.

// Hello is the data provider's session-setup frame.
type Hello struct {
	// N is the big-endian Paillier modulus (the public key).
	N []byte
	// Factor is the agreed parameter scaling factor.
	Factor int64
	// Workers requests a per-stage thread count on the server (bounded
	// by the server's own cap).
	Workers int
	// Profile is the deployment profile the client requests (additive:
	// empty from older clients selects privacy-max, the legacy
	// all-Paillier protocol). The server takes the stricter of this and
	// its own policy.
	Profile string
}

// maxHelloKeyBytes bounds the modulus a client may announce (32768-bit
// keys), so a hostile Hello cannot make the server allocate and exponentiate
// over arbitrarily large integers.
const maxHelloKeyBytes = 4096

// helloPublicKey validates the client's announced modulus and builds the
// session public key. A zero, tiny, or mismatched modulus would otherwise
// reach the linear kernel and fail deep inside ModInverse/Exp — reject it
// at the hello with a clear error.
func helloPublicKey(hello *Hello) (*paillier.PublicKey, error) {
	if len(hello.N) == 0 {
		return nil, errors.New("protocol: hello carries no public key")
	}
	if len(hello.N) > maxHelloKeyBytes {
		return nil, fmt.Errorf("protocol: hello public key is %d bytes, limit %d", len(hello.N), maxHelloKeyBytes)
	}
	n := new(big.Int).SetBytes(hello.N)
	pk := &paillier.PublicKey{N: n, N2: new(big.Int).Mul(n, n)}
	if err := pk.Validate(); err != nil {
		return nil, fmt.Errorf("protocol: hello public key rejected: %w", err)
	}
	return pk, nil
}

// roundFrame tags a wire envelope with its round index for the service
// loop. TC carries the request's distributed trace context; Spans carries
// the server's recorded spans back to the client on the final round's
// reply. Both fields are gob-compatible extensions: frames from peers
// predating them decode with the fields nil, and old peers skip them.
type roundFrame struct {
	Round int
	Env   *WireEnvelope
	TC    *TraceContext
	Spans []WireSpan
	// DeadlineMS is the client's remaining per-request budget in
	// milliseconds at send time — relative, so no cross-party clock sync
	// is needed. Zero means no deadline (including frames from peers
	// predating the field). The server refreshes its absolute deadline
	// from this on every frame and evicts expired requests.
	DeadlineMS int64
	// Plan and Profile ride the server's round-0 reply: the session's
	// solved per-round backend assignment (backend.Kind wire codes) and
	// the effective profile it was solved under. Additive: replies from
	// servers predating backend negotiation carry neither, and the client
	// falls back to the legacy all-Paillier protocol.
	Plan    []int32
	Profile string
}

// RegisterServiceWire registers the session frame types with gob.
func RegisterServiceWire() {
	RegisterWire()
	stream.RegisterWireType(&Hello{})
	stream.RegisterWireType(&roundFrame{})
}

// SessionConfig parameterizes the server side of one multiplexed
// session.
type SessionConfig struct {
	// Factor is the parameter scaling factor the server insists on.
	Factor int64
	// MaxWorkers bounds the per-stage threads a client may request.
	MaxWorkers int
	// Window bounds how many round frames the session processes
	// concurrently (different requests interleave on one connection
	// pair); <= 0 uses DefaultSessionWindow.
	Window int
	// IdleTTL evicts per-request obfuscation state after this much
	// inactivity, so abandoned requests (client crash, mid-protocol
	// error) stop leaking permutations; <= 0 uses DefaultIdleTTL.
	IdleTTL time.Duration
	// Shed, when non-nil, is the admission controller consulted before a
	// request's first round creates any per-request state. Share one
	// Shedder across every session of a server so the in-flight bound is
	// global; rejected requests get a retryable CodeShed error frame.
	Shed *Shedder
	// Limiter, when non-nil, bounds new-request admissions per window
	// (the paper's model-extraction countermeasure). Rejections travel
	// as retryable CodeThrottled error frames.
	Limiter *RateLimiter
	// Registry, when non-nil, receives session metrics.
	Registry *obs.Registry
	// Log, when non-nil, receives structured session events — rejected
	// hellos, per-round failures, and rounds exceeding the logger's slow
	// threshold — each correlated by the request's trace ID.
	Log *obs.Logger
	// Flight, when non-nil, records every completed or failed request's
	// server-side trace (with cost profiles) into the flight recorder's
	// bounded rings for /debug/flight and SIGQUIT dumps.
	Flight *obs.FlightRecorder
	// Traces, when non-nil, offers every completed or failed request's
	// server-side trace to the tail-sampling span store (errors always
	// kept, slowest-K per window, deterministic trace-ID sample of the
	// rest) for /debug/traces.
	Traces *obs.TraceStore
	// SLO, when non-nil, receives one Observe per finished request — the
	// server-observed request latency (first-round arrival to last-round
	// completion) and whether it failed — feeding the burn-rate engine.
	// Share one engine across sessions so objectives are server-global.
	SLO *obs.SLOEngine
	// Profile is the server's deployment-profile policy. The session runs
	// under the stricter of this and the client's requested profile, so
	// the default (empty = privacy-max) preserves the paper's original
	// all-Paillier protocol unless the operator explicitly relaxes it.
	Profile backend.Profile
	// ClearBoundary is the leakage-certified clear boundary: the first
	// linear round allowed to execute in plaintext (from an offline
	// internal/leakage.CertifyClearBoundary run). <= 0 means no round is
	// certified, so the clear backend is never assigned.
	ClearBoundary int
}

// DefaultSessionWindow is the concurrent-frame bound a session uses when
// SessionConfig.Window is unset.
const DefaultSessionWindow = 8

// DefaultIdleTTL is the per-request state eviction deadline used when
// SessionConfig.IdleTTL is unset.
const DefaultIdleTTL = 2 * time.Minute

// ServeSession runs the model-provider side of one client session: it
// reads the Hello, builds the role for the client's key, and answers
// each round until the client closes. maxWorkers bounds the per-stage
// threads a client may request.
func ServeSession(ctx context.Context, in, out stream.Edge, net *nn.Network, factor int64, maxWorkers int) error {
	return ServeSessionConfig(ctx, in, out, net, SessionConfig{Factor: factor, MaxWorkers: maxWorkers})
}

// ServeSessionObserved is ServeSession publishing session metrics to reg
// (which may be nil): "sessions.total" / "sessions.active",
// "rounds.served" / "rounds.errors", "requests.completed" /
// "requests.evicted", the aggregate per-round linear processing
// histogram "round.linear", and per-round-index histograms
// "round.<idx>.linear" mirroring the paper's per-stage latency tables.
func ServeSessionObserved(ctx context.Context, in, out stream.Edge, net *nn.Network, factor int64, maxWorkers int, reg *obs.Registry) error {
	return ServeSessionConfig(ctx, in, out, net, SessionConfig{Factor: factor, MaxWorkers: maxWorkers, Registry: reg})
}

// reqState is the session's per-request bookkeeping: the last round the
// request completed, when it was last seen (feeding idle eviction), and
// the server-side trace spans accumulated so far (shipped to the client
// with the final round's reply).
type reqState struct {
	lastRound int
	lastSeen  time.Time
	// started is the request's first-round arrival; the span between it
	// and last-round completion is the server-observed request latency
	// fed to the windowed serve.latency view and the SLO engine.
	started time.Time
	// deadline is the absolute point the client's propagated budget runs
	// out, refreshed from each frame's DeadlineMS; zero means none.
	deadline time.Time
	// shedHeld marks that this request holds an admission slot in the
	// session's shared Shedder, released when the entry is removed.
	shedHeld bool
	spans    []obs.Segment
}

// sessionReqs tracks live requests under one session. Admission-slot
// release is tied to entry removal (drop, expire, session close) so a
// slot can never be released twice or leak past the request.
type sessionReqs struct {
	shed *Shedder // may be nil: admit everything
	mu   sync.Mutex
	live map[uint64]*reqState
}

// admitResult classifies what admit decided for one round frame.
type admitResult int

const (
	// admitOK: the request is live (created now or known) and may process.
	admitOK admitResult = iota
	// admitStale: a round > 0 frame for a request with no live state —
	// it was evicted (idle or deadline) or never admitted; its
	// obfuscation chain is gone, so the frame must be rejected.
	admitStale
	// admitShed: admission control rejected a new request's first round.
	admitShed
)

// admit is the session's single admission point: it creates state for a
// new request's round-0 frame (consulting the shedder first), refreshes
// bookkeeping for known requests, and rejects stale mid-protocol frames.
// arrived stamps a new request's start; deadline, when non-zero,
// replaces the request's eviction deadline.
func (s *sessionReqs) admit(req uint64, round int, arrived time.Time, deadline time.Time) (admitResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.live[req]
	if st == nil {
		if round > 0 {
			return admitStale, nil
		}
		//pplint:ignore pairedrelease the slot's ownership transfers to s.live[req] (shedHeld) on the success path; release happens at drop/expire/releaseAll when the entry leaves the live map, not in this frame
		if err := s.shed.Acquire(); err != nil {
			return admitShed, err
		}
		st = &reqState{shedHeld: s.shed != nil, started: arrived}
		s.live[req] = st
	}
	st.lastRound = round
	st.lastSeen = time.Now()
	if !deadline.IsZero() {
		st.deadline = deadline
	}
	return admitOK, nil
}

// addSpans appends server-side trace segments to a live request. The
// client keeps at most one frame of a request in flight, so per-request
// appends never race with themselves.
func (s *sessionReqs) addSpans(req uint64, segs ...obs.Segment) {
	s.mu.Lock()
	if st := s.live[req]; st != nil {
		st.spans = append(st.spans, segs...)
	}
	s.mu.Unlock()
}

// takeSpans returns the request's accumulated spans and its first-round
// arrival time (zero when the request is unknown).
func (s *sessionReqs) takeSpans(req uint64) ([]obs.Segment, time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.live[req]; st != nil {
		return st.spans, st.started
	}
	return nil, time.Time{}
}

func (s *sessionReqs) drop(req uint64) {
	s.mu.Lock()
	st := s.live[req]
	delete(s.live, req)
	s.mu.Unlock()
	if st != nil && st.shedHeld {
		s.shed.Release()
	}
}

// expire removes requests idle longer than ttl (returned in idle) and
// requests whose propagated deadline has passed (returned in expired).
func (s *sessionReqs) expire(ttl time.Duration) (idle, expired []uint64) {
	now := time.Now()
	cutoff := now.Add(-ttl)
	released := 0
	s.mu.Lock()
	for req, st := range s.live {
		switch {
		case !st.deadline.IsZero() && now.After(st.deadline):
			expired = append(expired, req)
		case st.lastSeen.Before(cutoff):
			idle = append(idle, req)
		default:
			continue
		}
		if st.shedHeld {
			released++
		}
		delete(s.live, req)
	}
	s.mu.Unlock()
	for ; released > 0; released-- {
		s.shed.Release()
	}
	return idle, expired
}

// releaseAll drops every live entry, releasing held admission slots —
// the session is ending and its shedder outlives it.
func (s *sessionReqs) releaseAll() {
	released := 0
	s.mu.Lock()
	for req, st := range s.live {
		if st.shedHeld {
			released++
		}
		delete(s.live, req)
	}
	s.mu.Unlock()
	for ; released > 0; released-- {
		s.shed.Release()
	}
}

func (s *sessionReqs) count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.live))
}

// ServeSessionConfig runs one multiplexed model-provider session: round
// frames from different in-flight requests interleave on the connection
// pair, are processed concurrently up to cfg.Window, and are answered
// tagged with the request ID they carry in Seq so the client can demux.
// Per-request obfuscation state is dropped when a request finishes its
// last round and evicted after cfg.IdleTTL of inactivity.
func ServeSessionConfig(ctx context.Context, in, out stream.Edge, net *nn.Network, cfg SessionConfig) error {
	reg := cfg.Registry
	window := cfg.Window
	if window <= 0 {
		window = DefaultSessionWindow
	}
	ttl := cfg.IdleTTL
	if ttl <= 0 {
		ttl = DefaultIdleTTL
	}
	var roundsServed, roundErrs *obs.Counter
	var roundTime, kernelTime, permuteTime *obs.Histogram
	var liveLatency *obs.WindowedHistogram
	var liveOK, liveErr, liveShed *obs.WindowedCounter
	if reg != nil {
		reg.Counter("sessions.total").Inc()
		active := reg.Gauge("sessions.active")
		active.Add(1)
		defer active.Add(-1)
		roundsServed = reg.Counter("rounds.served")
		roundErrs = reg.Counter("rounds.errors")
		roundTime = reg.Histogram("round.linear")
		kernelTime = reg.Histogram("round.kernel")
		permuteTime = reg.Histogram("round.permute")
		// Windowed views of the serving outcome: what the server is doing
		// NOW, for /debug/live, ppbench top, and the SLO engine's peers.
		liveLatency = reg.LiveHistogram("serve.latency")
		liveOK = reg.LiveCounter("serve.requests.ok")
		liveErr = reg.LiveCounter("serve.requests.err")
		liveShed = reg.LiveCounter("serve.requests.shed")
	}
	first, err := in.Recv(ctx)
	if err != nil {
		return fmt.Errorf("protocol: session hello: %w", err)
	}
	hello, ok := first.Payload.(*Hello)
	if !ok {
		return fmt.Errorf("protocol: expected Hello, got %T", first.Payload)
	}
	if hello.Factor != cfg.Factor {
		return fmt.Errorf("protocol: client factor %d does not match server's %d", hello.Factor, cfg.Factor)
	}
	pk, err := helloPublicKey(hello)
	if err != nil {
		cfg.Log.Warn("session hello rejected", "err", err.Error())
		// Reject the session but tell the client why: an error frame
		// outside any request is session-fatal on the client side.
		if out != nil {
			_ = out.Send(ctx, &stream.Message{Seq: first.Seq, Err: err.Error()})
		}
		return err
	}
	workers := hello.Workers
	if workers < 1 {
		workers = 1
	}
	if cfg.MaxWorkers > 0 && workers > cfg.MaxWorkers {
		workers = cfg.MaxWorkers
	}
	// Backend negotiation: the session runs under the stricter of the
	// server's policy and the client's request. A malformed profile is a
	// session-fatal hello error, like a bad key.
	reqProfile, err := backend.ParseProfile(hello.Profile)
	if err != nil {
		cfg.Log.Warn("session hello rejected", "err", err.Error())
		if out != nil {
			_ = out.Send(ctx, &stream.Message{Seq: first.Seq, Err: err.Error()})
		}
		return err
	}
	srvProfile, err := backend.ParseProfile(string(cfg.Profile))
	if err != nil {
		return fmt.Errorf("protocol: session profile policy: %w", err)
	}
	effProfile := backend.Stricter(srvProfile, reqProfile)
	mp, err := BuildModelProvider(net, pk, Config{Factor: cfg.Factor, Workers: workers})
	if err != nil {
		return fmt.Errorf("protocol: building provider for session: %w", err)
	}
	// Solve the per-round backend assignment for this session. An
	// uncertified boundary (<= 0) clamps to the round count: no clear
	// execution anywhere.
	boundary := cfg.ClearBoundary
	if boundary <= 0 {
		boundary = mp.Stages()
	}
	plan, err := backend.PlanFor(effProfile, mp.LayerInfos(), boundary, pk.N.BitLen())
	if err != nil {
		return fmt.Errorf("protocol: solving backend plan: %w", err)
	}
	if err := mp.SetBackendPlan(plan.Assignment); err != nil {
		return err
	}
	planCodes := plan.Codes()
	// The plan as backend-kind strings, attached to flight records so
	// /debug/flight entries join against the span store and show which
	// backend mix produced each trace.
	planStrs := make([]string, len(plan.Assignment))
	for i, k := range plan.Assignment {
		planStrs[i] = string(k)
	}
	paillierRounds := 0
	for _, k := range plan.Assignment {
		if k == backend.PaillierHE {
			paillierRounds++
		}
	}
	cfg.Log.Info("session plan solved",
		"profile", string(effProfile), "boundary", plan.Boundary,
		"paillier_rounds", paillierRounds, "rounds", mp.Stages())
	// Per-session blinding pool: the kernel re-randomizes every output
	// ciphertext, and pooled r^n factors keep those exponentiations off
	// the round-trip critical path. Each precomputed factor is one real
	// modular exponentiation the fill worker performs off-path, so it is
	// charged into the process-wide modexp counter here — per-request
	// meters only ever see the pool misses they caused inline. The pool
	// is sized to the plan's actual Paillier rounds: a mixed or latency
	// session that runs most rounds on ss-gc or clear precomputes less.
	var poolOpts []paillier.PoolOption
	if reg != nil {
		poolModExps := reg.Counter("cost.modexps")
		poolOpts = append(poolOpts, paillier.WithPrecomputeHook(poolModExps.Add))
	}
	poolSize := 24 * paillierRounds
	if poolSize > 64 {
		poolSize = 64
	}
	if poolSize < 8 {
		poolSize = 8
	}
	blind := paillier.NewPool(pk, nil, poolSize, 1, poolOpts...)
	defer blind.Close()
	if reg != nil {
		reg.GaugeFunc("pool.workers.alive", blind.AliveWorkers)
	}
	mp.SetBlindPool(blind)
	mp.Instrument(reg)
	if cfg.Limiter != nil {
		mp.SetLimiter(cfg.Limiter)
	}
	lastRound := mp.Stages() - 1

	reqs := &sessionReqs{shed: cfg.Shed, live: map[uint64]*reqState{}}
	// The shedder outlives this session: return any slots still held by
	// live requests when the session ends, whatever the reason.
	defer reqs.releaseAll()
	if reg != nil {
		reg.GaugeFunc("requests.active", reqs.count)
	}
	// Janitor: evict per-request state abandoned mid-protocol so it does
	// not accumulate for the life of the session.
	janitorDone := make(chan struct{})
	defer close(janitorDone)
	go func() {
		tick := ttl / 4
		if tick < 10*time.Millisecond {
			tick = 10 * time.Millisecond
		}
		ticker := time.NewTicker(tick)
		defer ticker.Stop()
		for {
			select {
			case <-janitorDone:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
				idle, expired := reqs.expire(ttl)
				for _, req := range idle {
					mp.Forget(req)
					if reg != nil {
						reg.Counter("requests.evicted").Inc()
					}
				}
				for _, req := range expired {
					mp.Forget(req)
					if reg != nil {
						reg.Counter("requests.deadline_evicted").Inc()
					}
				}
			}
		}
	}()

	// Frame workers: each round frame is handled in its own goroutine
	// (bounded by window) so independent requests genuinely overlap on
	// the linear stages. Per-request ordering is preserved by the client,
	// which never has more than one outstanding frame per request.
	var (
		wg      sync.WaitGroup
		sem     = make(chan struct{}, window)
		fatalMu sync.Mutex
		fatal   error
	)
	recordFatal := func(err error) {
		fatalMu.Lock()
		if fatal == nil {
			fatal = err
		}
		fatalMu.Unlock()
	}
	sessionErr := func() error {
		fatalMu.Lock()
		defer fatalMu.Unlock()
		return fatal
	}
	handle := func(msg *stream.Message, frame *roundFrame, arrived time.Time) {
		start := time.Now()
		queueWait := start.Sub(arrived)
		slog := cfg.Log
		traceID := ""
		if frame.TC.valid() {
			slog = slog.WithTrace(frame.TC.ID)
			traceID = frame.TC.ID
		}
		env, err := FromWire(frame.Env, pk)
		if err != nil {
			// Malformed client frame: reply with an error message but
			// keep the session alive.
			if roundErrs != nil {
				roundErrs.Inc()
			}
			slog.Warn("malformed round frame", "round", frame.Round, "err", err.Error())
			if sendErr := out.Send(ctx, &stream.Message{Seq: msg.Seq, Err: err.Error()}); sendErr != nil {
				recordFatal(sendErr)
			}
			return
		}
		// reject answers a frame with a typed error and no processing; the
		// code tells the client whether a retry can succeed.
		reject := func(cause error) {
			if roundErrs != nil {
				roundErrs.Inc()
			}
			slog.Warn("round rejected", "req", env.Req, "round", frame.Round, "err", cause.Error())
			if sendErr := out.Send(ctx, &stream.Message{
				Seq: msg.Seq, Err: cause.Error(), ErrCode: codeOf(cause),
			}); sendErr != nil {
				recordFatal(sendErr)
			}
		}
		var deadline time.Time
		if frame.DeadlineMS > 0 {
			deadline = arrived.Add(time.Duration(frame.DeadlineMS) * time.Millisecond)
		}
		switch verdict, admitErr := reqs.admit(env.Req, frame.Round, arrived, deadline); verdict {
		case admitStale:
			// The janitor evicted this request's state (idle or deadline)
			// while the client was still driving rounds: its permutation
			// chain is gone, so processing the frame would return garbage.
			// Answer with a clean typed error instead.
			if reg != nil {
				reg.Counter("requests.stale_rounds").Inc()
			}
			reject(fmt.Errorf("%w: no state for request %d round %d", ErrEvicted, env.Req, frame.Round))
			return
		case admitShed:
			if liveShed != nil {
				liveShed.Inc()
			}
			// A shed request is availability-bad; its empty server tree is
			// still offered to the span store (always-keep on error) so the
			// rejection is joinable by trace ID.
			cfg.SLO.Observe(0, true)
			cfg.Traces.Record(serverTree(traceID, env.Req, nil), admitErr)
			reject(admitErr)
			return
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			// The budget ran out while the frame sat in the session queue;
			// processing it would waste crypto work the client will discard.
			if reg != nil {
				reg.Counter("requests.deadline_expired").Inc()
			}
			spans, started := reqs.takeSpans(env.Req)
			if started.IsZero() {
				started = arrived
			}
			deadlineErr := fmt.Errorf("%w: request %d budget of %dms spent before round %d started",
				ErrDeadline, env.Req, frame.DeadlineMS, frame.Round)
			if liveErr != nil {
				liveErr.Inc()
			}
			cfg.SLO.Observe(time.Since(started), true)
			cfg.Traces.Record(serverTree(traceID, env.Req, spans), deadlineErr)
			reqs.drop(env.Req)
			mp.Forget(env.Req)
			reject(deadlineErr)
			return
		}
		// One meter per round frame: round index == linear-stage index, so
		// the snapshot IS the per-layer cost profile the trace segment
		// carries. Profiling labels attribute CPU samples the same way.
		var meter obs.CostMeter
		var result *Envelope
		var timing LinearTiming
		pprof.Do(ctx, pprof.Labels(
			"stage", "linear",
			"round", strconv.Itoa(frame.Round),
			"trace", traceID,
		), func(context.Context) {
			result, timing, err = mp.ProcessLinearMetered(frame.Round, env, &meter)
		})
		elapsed := time.Since(start)
		if reg != nil {
			roundTime.Observe(elapsed)
			kernelTime.Observe(timing.Kernel)
			permuteTime.Observe(timing.Permute)
			reg.Histogram(fmt.Sprintf("round.%d.linear", frame.Round)).Observe(elapsed)
		}
		if err != nil {
			if roundErrs != nil {
				roundErrs.Inc()
			}
			slog.Warn("round failed", "req", env.Req, "round", frame.Round, "err", err.Error())
			spans, started := reqs.takeSpans(env.Req)
			if started.IsZero() {
				started = arrived
			}
			tree := serverTree(traceID, env.Req, spans)
			cfg.Flight.RecordPlan(tree, planStrs, err)
			cfg.Traces.Record(tree, err)
			if liveErr != nil {
				liveErr.Inc()
			}
			cfg.SLO.Observe(time.Since(started), true)
			// The request is dead on this side: release its permutation
			// state now rather than waiting for the TTL.
			reqs.drop(env.Req)
			mp.Forget(env.Req)
			if sendErr := out.Send(ctx, &stream.Message{
				Seq: msg.Seq, Err: err.Error(), ErrCode: codeOf(err),
			}); sendErr != nil {
				recordFatal(sendErr)
			}
			return
		}
		cfg.Shed.Observe(elapsed)
		slog.Slow("slow linear round", elapsed,
			"req", env.Req, "round", frame.Round,
			"kernel_ms", float64(timing.Kernel)/float64(time.Millisecond),
			"permute_ms", float64(timing.Permute)/float64(time.Millisecond))
		wireEnv, err := ToWire(result)
		if err != nil {
			recordFatal(err)
			return
		}
		// This round's cost profile: the metered crypto ops plus the
		// activation traffic both ways. It rides on the kernel segment
		// (the work it explains) and folds into both the process-wide
		// cost counters and the executing backend's labeled counters
		// (cost.paillier_he.*, cost.ss_gc.*, cost.clear.*).
		roundKind := mp.RoundBackend(frame.Round)
		cost := meter.Snapshot()
		cost.CipherBytesIn = frame.Env.CipherBytes()
		cost.CipherBytesOut = wireEnv.CipherBytes()
		obs.AddCostToRegistry(reg, cost)
		obs.AddCostToRegistryLabeled(reg, roundKind.MetricName(), cost)
		// Record this round's server spans under the request; on the last
		// round they travel back to the client for the merged trace tree.
		// The kernel span carries the backend that executed it, so the
		// merged TraceTree shows the ILP's per-round assignment.
		reqs.addSpans(env.Req,
			obs.Segment{Party: "server", Name: "queue", Round: frame.Round, Dur: queueWait},
			obs.Segment{Party: "server", Name: "kernel", Round: frame.Round, Dur: timing.Kernel, Cost: &cost, Backend: string(roundKind)},
			obs.Segment{Party: "server", Name: "permute", Round: frame.Round, Dur: timing.Permute},
		)
		reply := &roundFrame{Round: frame.Round, Env: wireEnv, TC: frame.TC}
		if frame.Round == 0 {
			// The solved plan rides every round-0 reply (requests share the
			// session plan, so repeats are idempotent on the client).
			reply.Plan = planCodes
			reply.Profile = string(effProfile)
		}
		if frame.Round == lastRound {
			// The request's last linear round: its obfuscation state is
			// fully consumed; drop the entry instead of leaking it.
			spans, started := reqs.takeSpans(env.Req)
			if started.IsZero() {
				started = arrived
			}
			reply.Spans = toWireSpans(spans)
			tree := serverTree(traceID, env.Req, spans)
			cfg.Flight.RecordPlan(tree, planStrs, nil)
			cfg.Traces.Record(tree, nil)
			// The server-observed request latency: first-round arrival to
			// last-round completion, queueing included.
			reqLatency := time.Since(started)
			if liveLatency != nil {
				liveLatency.Observe(reqLatency)
				liveOK.Inc()
			}
			cfg.SLO.Observe(reqLatency, false)
			reqs.drop(env.Req)
			mp.Forget(env.Req)
			if reg != nil {
				reg.Counter("requests.completed").Inc()
			}
		}
		if roundsServed != nil {
			roundsServed.Inc()
		}
		if err := out.Send(ctx, &stream.Message{Seq: msg.Seq, Payload: reply}); err != nil {
			recordFatal(err)
		}
	}
	var loopErr error
	for loopErr == nil && sessionErr() == nil {
		msg, err := in.Recv(ctx)
		if err != nil {
			if !errors.Is(err, stream.ErrEdgeClosed) {
				loopErr = err
			}
			break
		}
		frame, ok := msg.Payload.(*roundFrame)
		if !ok {
			loopErr = fmt.Errorf("protocol: expected round frame, got %T", msg.Payload)
			break
		}
		arrived := time.Now()
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			loopErr = ctx.Err()
		}
		if loopErr != nil {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			handle(msg, frame, arrived)
		}()
	}
	wg.Wait()
	// Polite termination: tell the client no more replies are coming so
	// its reader goroutine unblocks.
	if out != nil {
		_ = out.CloseSend()
	}
	if loopErr != nil {
		return loopErr
	}
	return sessionErr()
}

// serverTree assembles the server-side view of one request for the
// flight recorder: the spans accumulated so far under the request's
// trace ID (or a request-derived ID for untraced clients), with Total as
// the server's summed busy time — the server cannot know the client's
// end-to-end latency.
func serverTree(traceID string, req uint64, spans []obs.Segment) *obs.TraceTree {
	if traceID == "" {
		traceID = "req-" + strconv.FormatUint(req, 10)
	}
	tree := &obs.TraceTree{ID: traceID, Segments: spans}
	tree.Total = tree.Sum()
	return tree
}

// ClientOptions parameterizes the data-provider session client.
type ClientOptions struct {
	// Workers is the per-stage thread count (local non-linear stages and
	// the requested server-side count).
	Workers int
	// Window bounds concurrent in-flight Infer calls on the session
	// (wire-level multiplexing backpressure); <= 0 uses
	// DefaultClientWindow.
	Window int
	// Deadline bounds each Infer end to end. The remaining budget is
	// propagated to the server in every round frame so it can evict the
	// request (and stop burning crypto cycles) the moment the budget is
	// spent. Zero means no deadline beyond the call's ctx, whose own
	// deadline is propagated the same way.
	Deadline time.Duration
	// Retry bounds in-session retries of a request's first round after a
	// retryable rejection (throttle, shed). Mid-protocol rounds are never
	// retried: the server's permutation state advances per round, so a
	// resend would desynchronize the obfuscation chain. The zero value
	// uses the RetryPolicy defaults.
	Retry RetryPolicy
	// Registry, when non-nil, receives "retry.attempts" and
	// "retry.giveups" counters for the in-session round-0 retries.
	Registry *obs.Registry
	// Profile is the deployment profile to request from the server
	// (empty = privacy-max, the legacy protocol). The session runs the
	// stricter of this and the server's policy; the client validates the
	// server's solved plan against that before honoring it.
	Profile backend.Profile
}

// DefaultClientWindow is the in-flight bound a client uses when
// ClientOptions.Window is unset.
const DefaultClientWindow = 8

// Client drives the data-provider side of a remote session. The session
// multiplexes one connection pair: concurrent Infer calls interleave
// their round frames on the wire, tagged by request ID, and a reader
// goroutine demuxes the server's replies — so one connection carries
// Window in-flight inferences at once.
type Client struct {
	dp       *DataProvider
	pk       *paillier.PublicKey
	in       stream.Edge // frames from the server
	out      stream.Edge // frames to the server
	rounds   int
	window   chan struct{}
	nextID   atomic.Uint64
	deadline time.Duration
	retry    RetryPolicy
	profile  backend.Profile

	planMu  sync.Mutex
	planSet bool

	retryAttempts *obs.Counter
	retryGiveups  *obs.Counter

	mu      sync.Mutex
	pending map[uint64]chan *stream.Message
	err     error

	readerDone chan struct{}
}

// NewClient builds the data-provider role, sends the Hello, and returns
// a client ready to Infer with the default in-flight window. The
// architecture network may be a skeleton; its linear weights are not
// read.
func NewClient(ctx context.Context, in, out stream.Edge, arch *nn.Network, sk *paillier.PrivateKey, factor int64, workers int) (*Client, error) {
	return NewClientOpts(ctx, in, out, arch, sk, factor, ClientOptions{Workers: workers})
}

// NewClientOpts is NewClient with an explicit in-flight window. ctx
// bounds the session's reader goroutine as well as the Hello send.
func NewClientOpts(ctx context.Context, in, out stream.Edge, arch *nn.Network, sk *paillier.PrivateKey, factor int64, opts ClientOptions) (*Client, error) {
	dp, err := BuildDataProvider(arch, sk, Config{Factor: factor, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	merged, err := validateWorkflow(arch)
	if err != nil {
		return nil, err
	}
	rounds := 0
	for _, m := range merged {
		if m.Kind == nn.Linear {
			rounds++
		}
	}
	window := opts.Window
	if window <= 0 {
		window = DefaultClientWindow
	}
	profile, err := backend.ParseProfile(string(opts.Profile))
	if err != nil {
		return nil, err
	}
	hello := &Hello{N: sk.N.Bytes(), Factor: factor, Workers: opts.Workers, Profile: string(profile)}
	if err := out.Send(ctx, &stream.Message{Payload: hello}); err != nil {
		return nil, err
	}
	c := &Client{
		dp: dp, pk: &sk.PublicKey, in: in, out: out, rounds: rounds,
		window:     make(chan struct{}, window),
		pending:    map[uint64]chan *stream.Message{},
		readerDone: make(chan struct{}),
		deadline:   opts.Deadline,
		retry:      opts.Retry.withDefaults(),
		profile:    profile,
	}
	if opts.Registry != nil {
		c.retryAttempts = opts.Registry.Counter("retry.attempts")
		c.retryGiveups = opts.Registry.Counter("retry.giveups")
	}
	go c.readLoop(ctx)
	return c, nil
}

// readLoop demuxes server replies to the Infer call that owns the
// request ID in Seq. An error frame outside any live request (e.g. a
// Hello rejection) and any transport error are session-fatal: every
// in-flight and future Infer fails with the recorded cause.
func (c *Client) readLoop(ctx context.Context) {
	defer close(c.readerDone)
	for {
		msg, err := c.in.Recv(ctx)
		if err != nil {
			if errors.Is(err, stream.ErrEdgeClosed) {
				c.fatal(errors.New("protocol: session closed by server"))
			} else {
				c.fatal(err)
			}
			return
		}
		c.mu.Lock()
		ch := c.pending[msg.Seq]
		c.mu.Unlock()
		if ch == nil {
			if msg.Err != "" {
				c.fatal(fmt.Errorf("protocol: server rejected session: %s", msg.Err))
				return
			}
			continue // stray reply for an abandoned request
		}
		ch <- msg // buffered: at most one outstanding frame per request
	}
}

// fatal records the session's terminal error and wakes every in-flight
// Infer. The error is marked ErrSessionDown: whatever tore the session
// down, no mid-protocol state survives it on either side, so a caller
// holding a Redialer may safely retry whole inferences on a fresh one.
func (c *Client) fatal(err error) {
	c.mu.Lock()
	if c.err == nil {
		if !errors.Is(err, ErrSessionDown) {
			err = fmt.Errorf("%w: %w", ErrSessionDown, err)
		}
		c.err = err
	}
	for req, ch := range c.pending {
		close(ch)
		delete(c.pending, req)
	}
	c.mu.Unlock()
}

func (c *Client) sessionErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return fmt.Errorf("%w: session closed", ErrSessionDown)
}

// Infer runs one private inference against the remote model provider.
// Safe for concurrent use: up to Window calls proceed in parallel over
// the session's single connection pair, each exchanging its own round
// frames. A server-side per-request failure fails only that call; the
// session stays alive for the others.
func (c *Client) Infer(ctx context.Context, x *tensor.Dense) (*tensor.Dense, error) {
	res, _, err := c.InferTraced(ctx, x)
	return res, err
}

// InferTraced is Infer returning the request's merged cross-party trace:
// the client's own spans (window queueing, input encryption, per-round
// non-linear evaluation), the server's spans shipped back in the final
// round frame, and per-round "wire" segments inferred as the client
// round-trip minus the server's busy time — durations only, so no clock
// synchronization between the parties is needed. The tree is nil when
// the inference fails, and degrades to client+wire spans against a
// server predating trace propagation.
func (c *Client) InferTraced(ctx context.Context, x *tensor.Dense) (*tensor.Dense, *obs.TraceTree, error) {
	begin := time.Now()
	// The effective deadline is the tighter of the client's configured
	// per-request budget (measured from entry, so window queueing counts)
	// and the caller's ctx deadline. It is re-measured at every round
	// send and the remaining budget shipped to the server.
	var deadline time.Time
	if c.deadline > 0 {
		deadline = begin.Add(c.deadline)
	}
	if ctxDeadline, ok := ctx.Deadline(); ok && (deadline.IsZero() || ctxDeadline.Before(deadline)) {
		deadline = ctxDeadline
	}
	select {
	case c.window <- struct{}{}:
	case <-ctx.Done():
		return nil, nil, ctx.Err()
	}
	defer func() { <-c.window }()
	queueWait := time.Since(begin)

	req := c.nextID.Add(1)
	tc := &TraceContext{Ver: TraceV1, ID: obs.NewTraceID()}
	ch := make(chan *stream.Message, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, nil, err
	}
	c.pending[req] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, req)
		c.mu.Unlock()
	}()

	encStart := time.Now()
	var encMeter obs.CostMeter
	env, err := c.dp.EncryptMetered(req, x, &encMeter)
	if err != nil {
		return nil, nil, err
	}
	encDur := time.Since(encStart)
	encCost := encMeter.Snapshot()

	roundtrips := make([]time.Duration, c.rounds)
	nonlinear := make([]time.Duration, c.rounds)
	wireCosts := make([]obs.CostStats, c.rounds)
	nlCosts := make([]obs.CostStats, c.rounds)
	var serverSegs []obs.Segment
	for round := 0; round < c.rounds; round++ {
		rtStart := time.Now()
		w, err := ToWire(env)
		if err != nil {
			return nil, nil, err
		}
		wireCosts[round].CipherBytesOut = w.CipherBytes()
		var msg *stream.Message
		for attempt := 1; ; attempt++ {
			frame := &roundFrame{Round: round, Env: w, TC: tc}
			if !deadline.IsZero() {
				remaining := time.Until(deadline)
				if remaining <= 0 {
					return nil, nil, fmt.Errorf("%w: budget spent before round %d", ErrDeadline, round)
				}
				if frame.DeadlineMS = remaining.Milliseconds(); frame.DeadlineMS < 1 {
					frame.DeadlineMS = 1
				}
			}
			if err := c.out.Send(ctx, &stream.Message{Seq: req, Payload: frame}); err != nil {
				if ctx.Err() != nil {
					return nil, nil, err
				}
				return nil, nil, fmt.Errorf("%w: %w", ErrSessionDown, err)
			}
			select {
			case m, ok := <-ch:
				if !ok {
					return nil, nil, c.sessionErr()
				}
				msg = m
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
			if msg.Err == "" {
				break
			}
			rerr := &RoundError{Round: round, Code: msg.ErrCode, Msg: msg.Err}
			// Only a first-round throttle/shed rejection is retryable in
			// session: the server rejected it before creating any
			// per-request state, so resending the identical frame starts
			// clean. Later rounds are non-idempotent — the server's
			// permutation state advances each round — and fail through.
			if round != 0 || !Retryable(rerr) {
				return nil, nil, rerr
			}
			if attempt >= c.retry.MaxAttempts {
				if c.retryGiveups != nil {
					c.retryGiveups.Inc()
				}
				return nil, nil, fmt.Errorf("protocol: retries exhausted: %w", rerr)
			}
			if c.retryAttempts != nil {
				c.retryAttempts.Inc()
			}
			if err := retrySleep(ctx, c.retry.backoff(attempt)); err != nil {
				return nil, nil, err
			}
		}
		frame, ok := msg.Payload.(*roundFrame)
		if !ok {
			return nil, nil, fmt.Errorf("protocol: expected round frame, got %T", msg.Payload)
		}
		if round == 0 {
			// The server's solved backend plan rides the round-0 reply;
			// validate it against the requested profile's safety rules
			// before the session honors it.
			if err := c.applyPlan(frame); err != nil {
				return nil, nil, err
			}
		}
		wireCosts[round].CipherBytesIn = frame.Env.CipherBytes()
		env, err = FromWire(frame.Env, c.pk)
		if err != nil {
			return nil, nil, err
		}
		roundtrips[round] = time.Since(rtStart)
		if len(frame.Spans) > 0 {
			serverSegs = append(serverSegs, fromWireSpans(frame.Spans)...)
		}
		env.Req = req
		nlStart := time.Now()
		var nlMeter obs.CostMeter
		env, err = c.dp.ProcessNonLinearMetered(round, env, &nlMeter)
		if err != nil {
			return nil, nil, err
		}
		nonlinear[round] = time.Since(nlStart)
		nlCosts[round] = nlMeter.Snapshot()
	}
	if env.Result == nil {
		return nil, nil, errors.New("protocol: session ended without a result")
	}
	tree := mergeTrace(tc.ID, time.Since(begin), queueWait, encDur, roundtrips, nonlinear, serverSegs, encCost, wireCosts, nlCosts, c.dp.BackendPlan())
	return env.Result, tree, nil
}

// applyPlan installs the server's solved backend plan from a round-0
// reply, once per session. A reply without a plan (a server predating
// backend negotiation) leaves the legacy all-Paillier behavior in place.
// The plan is validated under the stricter of the client's requested
// profile and the server's announced one, so a privacy-max client
// rejects any plan that takes a round off Paillier.
func (c *Client) applyPlan(frame *roundFrame) error {
	if len(frame.Plan) == 0 {
		return nil
	}
	c.planMu.Lock()
	defer c.planMu.Unlock()
	if c.planSet {
		return nil
	}
	kinds, err := backend.AssignmentFromCodes(frame.Plan)
	if err != nil {
		return fmt.Errorf("protocol: server plan: %w", err)
	}
	announced, err := backend.ParseProfile(frame.Profile)
	if err != nil {
		return fmt.Errorf("protocol: server plan: %w", err)
	}
	eff := backend.Stricter(c.profile, announced)
	if err := backend.ValidateAssignment(eff, kinds, c.rounds); err != nil {
		return fmt.Errorf("protocol: rejecting server plan: %w", err)
	}
	if err := c.dp.SetBackendPlan(kinds); err != nil {
		return err
	}
	c.planSet = true
	return nil
}

// mergeTrace builds the single cross-party TraceTree for one request:
// client spans in protocol order, the server's shipped spans slotted into
// their rounds, and a per-round "wire" segment inferred as the client's
// round-trip minus the server's busy time (clamped at zero if the
// server over-reports). Round -1 marks request-scoped client segments.
// Cost profiles ride on the segments they explain: encryption ops on
// client-encrypt, per-round ciphertext traffic on wire, decryption and
// re-encryption ops on client-nonlinear; the server's kernel costs arrive
// inside serverSegs.
func mergeTrace(id string, total, queueWait, encDur time.Duration, roundtrips, nonlinear []time.Duration, serverSegs []obs.Segment, encCost obs.CostStats, wireCosts, nlCosts []obs.CostStats, plan []backend.Kind) *obs.TraceTree {
	costOrNil := func(st obs.CostStats) *obs.CostStats {
		if st.IsZero() {
			return nil
		}
		c := st
		return &c
	}
	tree := &obs.TraceTree{ID: id, Total: total}
	tree.Segments = append(tree.Segments,
		obs.Segment{Party: "client", Name: "queue", Round: -1, Dur: queueWait},
		obs.Segment{Party: "client", Name: "encrypt", Round: -1, Dur: encDur, Cost: costOrNil(encCost)},
	)
	serverByRound := map[int]time.Duration{}
	for _, s := range serverSegs {
		serverByRound[s.Round] += s.Dur
	}
	for round := range roundtrips {
		wire := roundtrips[round] - serverByRound[round]
		if wire < 0 {
			wire = 0
		}
		wireSeg := obs.Segment{Party: "wire", Name: "wire", Round: round, Dur: wire}
		if round < len(wireCosts) {
			wireSeg.Cost = costOrNil(wireCosts[round])
		}
		tree.Segments = append(tree.Segments, wireSeg)
		for _, s := range serverSegs {
			if s.Round == round {
				tree.Segments = append(tree.Segments, s)
			}
		}
		nlSeg := obs.Segment{Party: "client", Name: "nonlinear", Round: round, Dur: nonlinear[round]}
		if round < len(nlCosts) {
			nlSeg.Cost = costOrNil(nlCosts[round])
		}
		if round < len(plan) {
			// Label the client's nonlinear work with the backend whose
			// round output it decoded (decrypt / gc-relu+open / plain).
			nlSeg.Backend = string(plan[round])
		}
		tree.Segments = append(tree.Segments, nlSeg)
	}
	return tree
}

// Close ends the session.
func (c *Client) Close() error { return c.out.CloseSend() }
