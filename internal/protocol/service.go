package protocol

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"time"

	"ppstream/internal/nn"
	"ppstream/internal/obs"
	"ppstream/internal/paillier"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// This file implements the network session layer used by cmd/ppserver
// and cmd/ppclient: a data provider connects to the model-provider
// service, sends a Hello carrying its public key and the agreed scaling
// factor, and then drives the Figure 3 workflow round by round over the
// same connection pair.

// Hello is the data provider's session-setup frame.
type Hello struct {
	// N is the big-endian Paillier modulus (the public key).
	N []byte
	// Factor is the agreed parameter scaling factor.
	Factor int64
	// Workers requests a per-stage thread count on the server (bounded
	// by the server's own cap).
	Workers int
}

// maxHelloKeyBytes bounds the modulus a client may announce (32768-bit
// keys), so a hostile Hello cannot make the server allocate and exponentiate
// over arbitrarily large integers.
const maxHelloKeyBytes = 4096

// helloPublicKey validates the client's announced modulus and builds the
// session public key. A zero, tiny, or mismatched modulus would otherwise
// reach the linear kernel and fail deep inside ModInverse/Exp — reject it
// at the hello with a clear error.
func helloPublicKey(hello *Hello) (*paillier.PublicKey, error) {
	if len(hello.N) == 0 {
		return nil, errors.New("protocol: hello carries no public key")
	}
	if len(hello.N) > maxHelloKeyBytes {
		return nil, fmt.Errorf("protocol: hello public key is %d bytes, limit %d", len(hello.N), maxHelloKeyBytes)
	}
	n := new(big.Int).SetBytes(hello.N)
	pk := &paillier.PublicKey{N: n, N2: new(big.Int).Mul(n, n)}
	if err := pk.Validate(); err != nil {
		return nil, fmt.Errorf("protocol: hello public key rejected: %w", err)
	}
	return pk, nil
}

// roundFrame tags a wire envelope with its round index for the service
// loop.
type roundFrame struct {
	Round int
	Env   *WireEnvelope
}

// RegisterServiceWire registers the session frame types with gob.
func RegisterServiceWire() {
	RegisterWire()
	stream.RegisterWireType(&Hello{})
	stream.RegisterWireType(&roundFrame{})
}

// ServeSession runs the model-provider side of one client session: it
// reads the Hello, builds the role for the client's key, and answers
// each round until the client closes. maxWorkers bounds the per-stage
// threads a client may request.
func ServeSession(ctx context.Context, in, out stream.Edge, net *nn.Network, factor int64, maxWorkers int) error {
	return ServeSessionObserved(ctx, in, out, net, factor, maxWorkers, nil)
}

// ServeSessionObserved is ServeSession publishing session metrics to reg
// (which may be nil): "sessions.total" / "sessions.active",
// "rounds.served" / "rounds.errors", the aggregate per-round linear
// processing histogram "round.linear", and per-round-index histograms
// "round.<idx>.linear" mirroring the paper's per-stage latency tables.
func ServeSessionObserved(ctx context.Context, in, out stream.Edge, net *nn.Network, factor int64, maxWorkers int, reg *obs.Registry) error {
	var roundsServed, roundErrs *obs.Counter
	var roundTime *obs.Histogram
	if reg != nil {
		reg.Counter("sessions.total").Inc()
		active := reg.Gauge("sessions.active")
		active.Add(1)
		defer active.Add(-1)
		roundsServed = reg.Counter("rounds.served")
		roundErrs = reg.Counter("rounds.errors")
		roundTime = reg.Histogram("round.linear")
	}
	first, err := in.Recv(ctx)
	if err != nil {
		return fmt.Errorf("protocol: session hello: %w", err)
	}
	hello, ok := first.Payload.(*Hello)
	if !ok {
		return fmt.Errorf("protocol: expected Hello, got %T", first.Payload)
	}
	if hello.Factor != factor {
		return fmt.Errorf("protocol: client factor %d does not match server's %d", hello.Factor, factor)
	}
	pk, err := helloPublicKey(hello)
	if err != nil {
		// Reject the session but tell the client why: the error frame is
		// consumed by its first-round Recv.
		if out != nil {
			_ = out.Send(ctx, &stream.Message{Seq: first.Seq, Err: err.Error()})
		}
		return err
	}
	workers := hello.Workers
	if workers < 1 {
		workers = 1
	}
	if maxWorkers > 0 && workers > maxWorkers {
		workers = maxWorkers
	}
	// Per-session blinding pool: the kernel re-randomizes every output
	// ciphertext, and pooled r^n factors keep those exponentiations off
	// the round-trip critical path.
	blind := paillier.NewPool(pk, nil, 64, 1)
	defer blind.Close()
	if reg != nil {
		reg.GaugeFunc("pool.workers.alive", blind.AliveWorkers)
	}
	mp, err := BuildModelProvider(net, pk, Config{Factor: factor, Workers: workers, BlindPool: blind})
	if err != nil {
		return fmt.Errorf("protocol: building provider for session: %w", err)
	}
	mp.Instrument(reg)
	for {
		msg, err := in.Recv(ctx)
		if err != nil {
			if errors.Is(err, stream.ErrEdgeClosed) {
				return nil
			}
			return err
		}
		frame, ok := msg.Payload.(*roundFrame)
		if !ok {
			return fmt.Errorf("protocol: expected round frame, got %T", msg.Payload)
		}
		env, err := FromWire(frame.Env, pk)
		if err != nil {
			// Malformed client frame: reply with an error message but
			// keep the session alive.
			if roundErrs != nil {
				roundErrs.Inc()
			}
			if sendErr := out.Send(ctx, &stream.Message{Seq: msg.Seq, Err: err.Error()}); sendErr != nil {
				return sendErr
			}
			continue
		}
		start := time.Now()
		result, err := mp.ProcessLinear(frame.Round, env)
		if reg != nil {
			elapsed := time.Since(start)
			roundTime.Observe(elapsed)
			reg.Histogram(fmt.Sprintf("round.%d.linear", frame.Round)).Observe(elapsed)
		}
		if err != nil {
			if roundErrs != nil {
				roundErrs.Inc()
			}
			if sendErr := out.Send(ctx, &stream.Message{Seq: msg.Seq, Err: err.Error()}); sendErr != nil {
				return sendErr
			}
			continue
		}
		if roundsServed != nil {
			roundsServed.Inc()
		}
		reply, err := ToWire(result)
		if err != nil {
			return err
		}
		if err := out.Send(ctx, &stream.Message{Seq: msg.Seq, Payload: &roundFrame{Round: frame.Round, Env: reply}}); err != nil {
			return err
		}
	}
}

// Client drives the data-provider side of a remote session. A session
// multiplexes one connection pair, so concurrent Infer calls are
// serialized internally; for parallel inference open one Client per
// connection.
type Client struct {
	dp     *DataProvider
	pk     *paillier.PublicKey
	in     stream.Edge // frames from the server
	out    stream.Edge // frames to the server
	rounds int

	// mu serializes Infer: rounds interleave request/reply frames on the
	// shared edges, and nextID must not race.
	mu     sync.Mutex
	nextID uint64
}

// NewClient builds the data-provider role, sends the Hello, and returns
// a client ready to Infer. The architecture network may be a skeleton;
// its linear weights are not read.
func NewClient(ctx context.Context, in, out stream.Edge, arch *nn.Network, sk *paillier.PrivateKey, factor int64, workers int) (*Client, error) {
	dp, err := BuildDataProvider(arch, sk, Config{Factor: factor, Workers: workers})
	if err != nil {
		return nil, err
	}
	merged, err := validateWorkflow(arch)
	if err != nil {
		return nil, err
	}
	rounds := 0
	for _, m := range merged {
		if m.Kind == nn.Linear {
			rounds++
		}
	}
	hello := &Hello{N: sk.N.Bytes(), Factor: factor, Workers: workers}
	if err := out.Send(ctx, &stream.Message{Payload: hello}); err != nil {
		return nil, err
	}
	return &Client{dp: dp, pk: &sk.PublicKey, in: in, out: out, rounds: rounds, nextID: 1}, nil
}

// Infer runs one private inference against the remote model provider.
// Safe for concurrent use: calls are serialized on the session's single
// connection pair.
func (c *Client) Infer(ctx context.Context, x *tensor.Dense) (*tensor.Dense, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	req := c.nextID
	c.nextID++
	env, err := c.dp.Encrypt(req, x)
	if err != nil {
		return nil, err
	}
	for round := 0; round < c.rounds; round++ {
		w, err := ToWire(env)
		if err != nil {
			return nil, err
		}
		if err := c.out.Send(ctx, &stream.Message{Seq: req, Payload: &roundFrame{Round: round, Env: w}}); err != nil {
			return nil, err
		}
		msg, err := c.in.Recv(ctx)
		if err != nil {
			return nil, err
		}
		if msg.Err != "" {
			return nil, fmt.Errorf("protocol: server rejected round %d: %s", round, msg.Err)
		}
		frame, ok := msg.Payload.(*roundFrame)
		if !ok {
			return nil, fmt.Errorf("protocol: expected round frame, got %T", msg.Payload)
		}
		env, err = FromWire(frame.Env, c.pk)
		if err != nil {
			return nil, err
		}
		env.Req = req
		env, err = c.dp.ProcessNonLinear(round, env)
		if err != nil {
			return nil, err
		}
	}
	if env.Result == nil {
		return nil, errors.New("protocol: session ended without a result")
	}
	return env.Result, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.out.CloseSend() }
