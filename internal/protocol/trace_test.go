package protocol

import (
	"bytes"
	"context"
	mathrand "math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ppstream/internal/obs"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// traceSession starts a served session over a wire-encoded connection
// pair and returns the client plus the server's error channel.
func traceSession(t *testing.T, cfg SessionConfig) (*Client, chan error, context.Context) {
	t.Helper()
	RegisterServiceWire()
	k := key(t)
	netw := buildNet(t)
	cfg.Factor = 1000
	if cfg.MaxWorkers == 0 {
		cfg.MaxWorkers = 4
	}

	c2s1, s2c1 := net.Pipe()
	c2s2, s2c2 := net.Pipe()
	serverIn := stream.NewTCPEdge(s2c1)
	serverOut := stream.NewTCPEdge(c2s2)
	clientOut := stream.NewTCPEdge(c2s1)
	clientIn := stream.NewTCPEdge(s2c2)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeSessionConfig(ctx, serverIn, serverOut, netw, cfg)
	}()
	client, err := NewClient(ctx, clientIn, clientOut, netw, k, cfg.Factor, 2)
	if err != nil {
		t.Fatal(err)
	}
	return client, serveErr, ctx
}

// TestInferTracedMergesBothParties runs real inferences through the
// session layer and checks the tentpole invariant: one trace, one ID,
// spans from BOTH parties, and segment durations that account for the
// client-observed latency up to merge bookkeeping. Run under -race in
// CI, it also exercises the concurrent span-accumulation paths.
func TestInferTracedMergesBothParties(t *testing.T) {
	var logBuf bytes.Buffer
	logMu := &sync.Mutex{}
	logger := obs.NewLogger(&lockedWriter{mu: logMu, b: &logBuf}, obs.LevelDebug).
		SetSlowThreshold(time.Nanosecond) // every round is "slow": forces trace-correlated log lines
	reg := obs.NewRegistry("trace-test")
	client, serveErr, ctx := traceSession(t, SessionConfig{Registry: reg, Log: logger})

	netw := buildNet(t)
	r := mathrand.New(mathrand.NewSource(77))
	x := tensor.Zeros(4)
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64()
	}

	got, tree, err := client.InferTraced(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := netw.Forward(x)
	if !tensor.AllClose(want, got, 1e-2) {
		t.Error("traced inference diverges from plaintext forward")
	}
	if tree == nil {
		t.Fatal("no trace tree for a successful inference")
	}
	if len(tree.ID) != 16 {
		t.Errorf("trace ID %q is not 16 hex chars", tree.ID)
	}

	// Both parties (plus the inferred wire gap) appear under one ID.
	parties := map[string]bool{}
	for _, p := range tree.Parties() {
		parties[p] = true
	}
	for _, p := range []string{"client", "server", "wire"} {
		if !parties[p] {
			t.Errorf("party %q missing from merged trace (have %v)", p, tree.Parties())
		}
	}

	// The test net has two linear rounds: expect per-round server kernel
	// and permute spans, per-round wire spans, per-round client
	// non-linear spans, and the request-scoped client spans.
	counts := map[string]int{}
	for _, s := range tree.Segments {
		counts[s.Label()]++
		if s.Dur < 0 {
			t.Errorf("segment %s has negative duration %v", s.Label(), s.Dur)
		}
	}
	const rounds = 2
	for label, want := range map[string]int{
		"client-queue":   1,
		"client-encrypt": 1,
		"wire":           rounds,
		"server-queue":   rounds,
		// Kernel and nonlinear spans carry the executing backend's label;
		// the default session runs the all-Paillier plan.
		"server-kernel[paillier-he]":    rounds,
		"server-permute":                rounds,
		"client-nonlinear[paillier-he]": rounds,
	} {
		if counts[label] != want {
			t.Errorf("segment %s appears %d times, want %d", label, counts[label], want)
		}
	}
	if tree.SegmentTotal("server-kernel") <= 0 {
		t.Error("server kernel time is zero: server spans did not cross the wire")
	}

	// Durations account for the client-observed latency: every slice of
	// the request's life is measured, so the unattributed remainder is
	// only loop bookkeeping (plus any wire clamping), far below the
	// crypto-dominated total.
	if tree.Sum() > tree.Total {
		t.Errorf("segment sum %v exceeds client-observed total %v", tree.Sum(), tree.Total)
	}
	if gap := tree.Total - tree.Sum(); gap > 50*time.Millisecond && gap > tree.Total/10 {
		t.Errorf("unattributed gap %v too large (total %v, sum %v)", gap, tree.Total, tree.Sum())
	}

	client.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}

	// The server's slow-round log lines carry the SAME trace ID the
	// client assigned — the cross-party correlation the log exists for.
	logMu.Lock()
	lines := logBuf.String()
	logMu.Unlock()
	if !strings.Contains(lines, `"trace_id":"`+tree.ID+`"`) {
		t.Errorf("server log lacks the client's trace ID %s:\n%s", tree.ID, lines)
	}
	if !strings.Contains(lines, `"slow":true`) {
		t.Errorf("server log lacks slow-round lines:\n%s", lines)
	}

	// Server-side round histograms observed the kernel/permute split.
	snap := reg.Snapshot()
	if snap.Histograms["round.kernel"].Count != rounds {
		t.Errorf("round.kernel histogram count %d, want %d", snap.Histograms["round.kernel"].Count, rounds)
	}
	if snap.Histograms["round.permute"].Count != rounds {
		t.Errorf("round.permute count %d, want %d", snap.Histograms["round.permute"].Count, rounds)
	}
}

// TestInferTracedConcurrent interleaves traced inferences on one
// multiplexed session and checks every request keeps its own trace
// identity — the demux + per-request span accumulation under load.
func TestInferTracedConcurrent(t *testing.T) {
	client, serveErr, ctx := traceSession(t, SessionConfig{Window: 4})
	const n = 4
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		trees []*obs.TraceTree
	)
	r := mathrand.New(mathrand.NewSource(78))
	inputs := make([]*tensor.Dense, n)
	for i := range inputs {
		x := tensor.Zeros(4)
		for j := range x.Data() {
			x.Data()[j] = r.NormFloat64()
		}
		inputs[i] = x
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(x *tensor.Dense) {
			defer wg.Done()
			_, tree, err := client.InferTraced(ctx, x)
			if err != nil {
				t.Errorf("traced infer: %v", err)
				return
			}
			mu.Lock()
			trees = append(trees, tree)
			mu.Unlock()
		}(inputs[i])
	}
	wg.Wait()
	client.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}

	ids := map[string]bool{}
	for _, tree := range trees {
		if tree == nil {
			t.Fatal("nil tree from successful inference")
		}
		ids[tree.ID] = true
		if tree.SegmentTotal("server-kernel") <= 0 {
			t.Errorf("trace %s has no server kernel time", tree.ID)
		}
	}
	if len(ids) != n {
		t.Errorf("%d distinct trace IDs across %d requests", len(ids), n)
	}

	rows := obs.Breakdown(trees)
	if len(rows) == 0 {
		t.Fatal("empty breakdown from merged trees")
	}
	var sawKernel bool
	for _, row := range rows {
		if row.Label == "server-kernel[paillier-he]" && row.Count == n && row.P50 > 0 {
			sawKernel = true
		}
	}
	if !sawKernel {
		t.Errorf("breakdown lacks a server-kernel row covering all %d requests: %+v", n, rows)
	}
}

// lockedWriter serializes buffer access between the logger's writes and
// the test's final read (the logger locks per line, but the test reads
// concurrently with late server goroutines under -race).
type lockedWriter struct {
	mu *sync.Mutex
	b  *bytes.Buffer
}

func (w *lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}
