package protocol

import (
	"context"
	"net"
	"testing"
	"time"

	"ppstream/internal/obs"
	"ppstream/internal/stream"
	"ppstream/internal/tensor"
)

// TestServeSessionObservedMetrics runs a session over instrumented TCP
// edges and checks the registry records rounds, session counts, and
// wire bytes.
func TestServeSessionObservedMetrics(t *testing.T) {
	RegisterServiceWire()
	k := key(t)
	netw := buildNet(t)
	const factor = 1000
	reg := obs.NewRegistry("server")

	c2s1, s2c1 := net.Pipe()
	c2s2, s2c2 := net.Pipe()
	serverIn := stream.NewInstrumentedTCPEdge(s2c1, reg, "tcp")
	serverOut := stream.NewInstrumentedTCPEdge(c2s2, reg, "tcp")
	clientOut := stream.NewTCPEdge(c2s1)
	clientIn := stream.NewTCPEdge(s2c2)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- ServeSessionObserved(ctx, serverIn, serverOut, netw, factor, 4, reg)
	}()
	client, err := NewClient(ctx, clientIn, clientOut, netw, k, factor, 2)
	if err != nil {
		t.Fatal(err)
	}
	const inferences = 2
	for i := 0; i < inferences; i++ {
		if _, err := client.Infer(ctx, tensor.Zeros(4)); err != nil {
			t.Fatal(err)
		}
	}
	client.Close()
	if err := <-serveErr; err != nil {
		t.Fatalf("server: %v", err)
	}

	s := reg.Snapshot()
	if s.Counters["sessions.total"] != 1 {
		t.Errorf("sessions.total %d, want 1", s.Counters["sessions.total"])
	}
	if s.Gauges["sessions.active"] != 0 {
		t.Errorf("sessions.active %d after close, want 0", s.Gauges["sessions.active"])
	}
	rounds := s.Counters["rounds.served"]
	if rounds == 0 || rounds%inferences != 0 {
		t.Errorf("rounds.served %d, want a positive multiple of %d", rounds, inferences)
	}
	h := s.Histograms["round.linear"]
	if h.Count != rounds || h.P50 <= 0 {
		t.Errorf("round.linear histogram %+v, want count %d with positive p50", h, rounds)
	}
	if _, ok := s.Histograms["round.0.linear"]; !ok {
		t.Error("per-round histogram round.0.linear missing")
	}
	kd := s.Histograms["kernel.dot"]
	if kd.Count == 0 {
		t.Error("kernel.dot histogram empty: linear kernel not instrumented")
	}
	kp := s.Histograms["kernel.precompute"]
	if kp.Count == 0 {
		t.Error("kernel.precompute histogram empty: linear kernel not instrumented")
	}
	alive, ok := s.Gauges["pool.workers.alive"]
	if !ok {
		t.Error("pool.workers.alive gauge missing")
	} else if alive != 0 {
		t.Errorf("pool.workers.alive %d after session close, want 0", alive)
	}
	if s.Counters["tcp.bytes_recv"] == 0 || s.Counters["tcp.bytes_sent"] == 0 {
		t.Errorf("wire byte counters not recorded: %v", s.Counters)
	}
	if s.Counters["tcp.frames_recv"] == 0 || s.Counters["tcp.frames_sent"] == 0 {
		t.Errorf("wire frame counters not recorded: %v", s.Counters)
	}
}
