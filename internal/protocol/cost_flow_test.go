package protocol

import (
	"math/rand"
	"sync"
	"testing"

	"ppstream/internal/obs"
	"ppstream/internal/tensor"
)

// deterministicCost strips the fields whose values depend on blinding-
// pool fill timing (a miss converts a pooled factor into an inline
// modexp) or on the random blinding factors themselves (ciphertext byte
// lengths shift by a byte when a residue has leading zeros), leaving the
// fields that are a pure function of the model and input shape. Used to
// compare per-request profiles for cross-request bleed: any bleed
// inflates these deterministic counts.
func deterministicCost(st obs.CostStats) obs.CostStats {
	st.ModExps = 0
	st.PoolHits = 0
	st.PoolMisses = 0
	st.CipherBytesIn = 0
	st.CipherBytesOut = 0
	return st
}

func costInput(seed int64) *tensor.Dense {
	r := rand.New(rand.NewSource(seed))
	x := tensor.Zeros(4)
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64()
	}
	return x
}

// TestInferTracedCarriesCostAnnotations checks the tentpole invariant
// end to end over the session layer: a traced inference's segments carry
// crypto-cost profiles from both parties, ciphertext traffic is counted
// on the wire segments, the server folds costs into its registry, and
// the flight recorder holds the request's record.
func TestInferTracedCarriesCostAnnotations(t *testing.T) {
	reg := obs.NewRegistry("cost-flow-test")
	flight := obs.NewFlightRecorder(8, 4, 8)
	client, _, ctx := traceSession(t, SessionConfig{Registry: reg, Flight: flight})
	defer client.Close()

	_, tree, err := client.InferTraced(ctx, costInput(99))
	if err != nil {
		t.Fatal(err)
	}
	if tree == nil {
		t.Fatal("no trace tree")
	}

	var kernelCost, encCost, nlCost, wireCost obs.CostStats
	for _, s := range tree.Segments {
		if s.Cost == nil {
			continue
		}
		switch s.Label() {
		case "server-kernel[paillier-he]":
			kernelCost.Add(*s.Cost)
		case "client-encrypt":
			encCost.Add(*s.Cost)
		case "client-nonlinear[paillier-he]":
			nlCost.Add(*s.Cost)
		case "wire":
			wireCost.Add(*s.Cost)
		}
	}
	if kernelCost.MulMods == 0 || kernelCost.Rerands == 0 {
		t.Errorf("server-kernel segments carry no kernel cost: %+v", kernelCost)
	}
	if kernelCost.CipherBytesIn == 0 || kernelCost.CipherBytesOut == 0 {
		t.Errorf("server-kernel segments carry no ciphertext traffic: %+v", kernelCost)
	}
	if encCost.Encrypts == 0 {
		t.Errorf("client-encrypt segment carries no encryption cost: %+v", encCost)
	}
	if nlCost.Decrypts == 0 || nlCost.Encrypts == 0 {
		t.Errorf("client-nonlinear segments carry no decrypt/re-encrypt cost: %+v", nlCost)
	}
	if wireCost.CipherBytesIn == 0 || wireCost.CipherBytesOut == 0 {
		t.Errorf("wire segments carry no ciphertext byte counts: %+v", wireCost)
	}
	if total := tree.Cost(); total.ModExps == 0 {
		t.Errorf("request total records no modexps: %+v", total)
	}

	// The server folded this request's costs into its registry.
	snap := reg.Snapshot()
	for _, name := range []string{"cost.mulmods", "cost.rerands", "cost.cipher_bytes_in", "cost.cipher_bytes_out"} {
		if snap.Counters[name] == 0 {
			t.Errorf("registry counter %s is zero after a traced inference", name)
		}
	}

	// The flight recorder holds the request, keyed by its trace ID.
	dump := flight.Dump()
	if dump.Recorded == 0 || len(dump.Recent) == 0 {
		t.Fatalf("flight recorder empty after a completed request: %+v", dump)
	}
	found := false
	for _, rec := range dump.Recent {
		if rec.Trace.ID == tree.ID {
			found = true
			if rec.Err != "" {
				t.Errorf("successful request recorded with error %q", rec.Err)
			}
			if c := rec.Trace.Cost(); c.MulMods == 0 {
				t.Errorf("flight record carries no cost profile: %+v", c)
			}
		}
	}
	if !found {
		t.Errorf("trace %s not in flight recorder recent ring", tree.ID)
	}
}

// TestCostNoCrossRequestBleed runs concurrent inferences over one
// multiplexed session and requires every request's deterministic cost
// profile to equal a sequential baseline: requests sharing the session's
// evaluator and pool must not leak counts into each other. Run under
// -race in CI this also exercises the concurrent metering paths.
func TestCostNoCrossRequestBleed(t *testing.T) {
	reg := obs.NewRegistry("bleed-test")
	client, _, ctx := traceSession(t, SessionConfig{Registry: reg})
	defer client.Close()

	x := costInput(7)
	_, baseTree, err := client.InferTraced(ctx, x)
	if err != nil {
		t.Fatal(err)
	}
	base := deterministicCost(baseTree.Cost())
	if base.IsZero() {
		t.Fatal("baseline request recorded no deterministic cost")
	}
	baseDraws := func(tr *obs.TraceTree) uint64 {
		c := tr.Cost()
		return c.PoolHits + c.PoolMisses
	}
	wantDraws := baseDraws(baseTree)

	const concurrent = 6
	var wg sync.WaitGroup
	trees := make([]*obs.TraceTree, concurrent)
	errs := make([]error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, trees[i], errs[i] = client.InferTraced(ctx, x)
		}(i)
	}
	wg.Wait()
	for i := 0; i < concurrent; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		got := deterministicCost(trees[i].Cost())
		if got != base {
			t.Errorf("request %d cost %+v differs from baseline %+v — cross-request bleed", i, got, base)
		}
		if draws := baseDraws(trees[i]); draws != wantDraws {
			t.Errorf("request %d drew %d blinding factors, baseline drew %d", i, draws, wantDraws)
		}
		if c := trees[i].Cost(); c.CipherBytesIn == 0 || c.CipherBytesOut == 0 {
			t.Errorf("request %d recorded no ciphertext traffic: %+v", i, c)
		}
	}
}
