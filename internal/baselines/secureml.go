package baselines

import (
	"fmt"
	"math"
	"time"

	"ppstream/internal/nn"
	"ppstream/internal/qnn"
	"ppstream/internal/secshare"
	"ppstream/internal/tensor"
)

// SecureML is a SecureML-style two-party engine: linear layers over
// additive shares with Beaver triples, and — as in SecureML's
// MPC-friendly design — polynomial activations evaluated arithmetically
// (x² here) instead of garbled-circuit ReLU. It avoids EzPC's protocol
// transitions at the cost of changing the activation function, the
// generality loss Table I attributes to SecureML.
type SecureML struct {
	net   *nn.Network
	eng   *secshare.Engine
	Stats secshare.Stats
}

// NewSecureML builds the engine; ReLU layers evaluate as x².
func NewSecureML(net *nn.Network, seed int64) (*SecureML, error) {
	if err := checkSupported(net, false); err != nil {
		return nil, err
	}
	return &SecureML{net: net, eng: secshare.NewEngine(seed)}, nil
}

// Infer runs one private inference. The output is the SoftMax over the
// opened final scores of the square-activation network.
func (s *SecureML) Infer(x *tensor.Dense) (*tensor.Dense, time.Duration, error) {
	start := time.Now()
	if !x.Shape().Equal(s.net.InputShape) {
		return nil, 0, fmt.Errorf("baselines: input shape %v, want %v", x.Shape(), s.net.InputShape)
	}
	shares := s.eng.ShareVec(x.Flatten().Data())
	shape := s.net.InputShape
	var result *tensor.Dense
	for i, l := range s.net.Layers {
		last := i == len(s.net.Layers)-1
		switch v := l.(type) {
		case *nn.FC:
			w := make([][]float64, v.Out())
			for o := 0; o < v.Out(); o++ {
				w[o] = v.W.Data()[o*v.In() : (o+1)*v.In()]
			}
			out, err := s.eng.MatVecPrivate(w, v.B.Data(), shares)
			if err != nil {
				return nil, 0, err
			}
			shares, shape = out, tensor.Shape{v.Out()}
		case *nn.Conv:
			out, newShape, err := s.applyConv(v, shares, shape)
			if err != nil {
				return nil, 0, err
			}
			shares, shape = out, newShape
		case *nn.Flatten:
			shape = tensor.Shape{shape.Size()}
		case *nn.ReLU:
			out, err := s.eng.SquareVec(shares)
			if err != nil {
				return nil, 0, err
			}
			shares = out
		case *nn.BatchNorm:
			out, err := s.applyBatchNorm(v, shares, shape)
			if err != nil {
				return nil, 0, err
			}
			shares = out
		case *nn.SoftMax:
			if !last {
				return nil, 0, fmt.Errorf("baselines: SoftMax must be final")
			}
			vals := s.eng.OpenVec(shares)
			logits, err := tensor.FromSlice(vals, shape...)
			if err != nil {
				return nil, 0, err
			}
			result, err = v.Forward(logits)
			if err != nil {
				return nil, 0, err
			}
		default:
			return nil, 0, fmt.Errorf("baselines: secureml unsupported layer %T", l)
		}
	}
	s.Stats = s.eng.Stats
	if result == nil {
		return nil, 0, fmt.Errorf("baselines: secureml ended without a result")
	}
	return result, time.Since(start), nil
}

func (s *SecureML) applyConv(v *nn.Conv, x []secshare.Shares, shape tensor.Shape) ([]secshare.Shares, tensor.Shape, error) {
	p := v.P
	if shape.Size() != p.InC*p.InH*p.InW {
		return nil, nil, fmt.Errorf("conv input %v", shape)
	}
	rows := qnn.GatherRows(p)
	oh, ow := p.OutH(), p.OutW()
	out := make([]secshare.Shares, p.OutC*oh*ow)
	rowLen := p.InC * p.KH * p.KW
	s.eng.Stats.Rounds++
	for f := 0; f < p.OutC; f++ {
		filt := v.W.Data()[f*rowLen : (f+1)*rowLen]
		for pos := 0; pos < oh*ow; pos++ {
			var ws []float64
			var xs []secshare.Shares
			for k, off := range rows[pos] {
				if off < 0 || filt[k] == 0 {
					continue
				}
				ws = append(ws, filt[k])
				xs = append(xs, x[off])
			}
			sOut, err := s.eng.DotPrivate(ws, xs, v.B.Data()[f])
			if err != nil {
				return nil, nil, err
			}
			out[f*oh*ow+pos] = sOut
		}
	}
	return out, tensor.Shape{p.OutC, oh, ow}, nil
}

func (s *SecureML) applyBatchNorm(v *nn.BatchNorm, x []secshare.Shares, shape tensor.Shape) ([]secshare.Shares, error) {
	per := 1
	if shape.Rank() == 3 {
		per = shape[1] * shape[2]
	}
	out := make([]secshare.Shares, len(x))
	s.eng.Stats.Rounds++
	for i := range x {
		c := i / per
		if c >= v.Channels {
			return nil, fmt.Errorf("batchnorm shape mismatch")
		}
		a, b := affineOf(v, c)
		sOut, err := s.eng.DotPrivate([]float64{a}, []secshare.Shares{x[i]}, b)
		if err != nil {
			return nil, err
		}
		out[i] = sOut
	}
	return out, nil
}

func affineOf(v *nn.BatchNorm, c int) (a, b float64) {
	inv := 1 / math.Sqrt(v.Var.At(c)+v.Eps)
	a = v.Gamma.At(c) * inv
	return a, v.Beta.At(c) - a*v.Mean.At(c)
}
