package baselines

import (
	mathrand "math/rand"
	"testing"

	"ppstream/internal/nn"
	"ppstream/internal/secshare"
	"ppstream/internal/tensor"
)

// TestSecureMLConvNet runs the SecureML-style engine on a conv network
// (conv path + batched rounds accounting).
func TestSecureMLConvNet(t *testing.T) {
	net := convNet(t)
	s, err := NewSecureML(net, 11)
	if err != nil {
		t.Fatal(err)
	}
	x := sampleInput(net.InputShape, 7)
	out, lat, err := s.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || out.Size() != 3 {
		t.Errorf("lat %v size %d", lat, out.Size())
	}
	var sum float64
	for _, v := range out.Data() {
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("output not a distribution: sum %v", sum)
	}
	if s.Stats.TriplesUsed == 0 {
		t.Error("conv used no triples")
	}
}

// TestSecureMLBatchNorm covers the BN affine path.
func TestSecureMLBatchNorm(t *testing.T) {
	r := mathrand.New(mathrand.NewSource(74))
	bn := nn.NewBatchNorm("bn", 2)
	bn.Gamma = tensor.MustFromSlice([]float64{2, 0.5}, 2)
	bn.Beta = tensor.MustFromSlice([]float64{0.1, -0.1}, 2)
	net, err := nn.NewNetwork("bn-net", tensor.Shape{2},
		nn.NewFC("fc", 2, 2, r),
		bn,
		nn.NewReLU("relu"),
		nn.NewFC("fc2", 2, 2, r),
		nn.NewSoftMax("sm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSecureML(net, 12)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{0.3, -0.6}, 2)
	out, _, err := s.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: same network with ReLU→square.
	h, _ := net.Layers[0].Forward(x)
	h, _ = bn.Forward(h)
	sq := tensor.Map(h, func(v float64) float64 { return v * v })
	logits, _ := net.Layers[3].Forward(sq)
	want, _ := net.Layers[4].Forward(logits)
	if !tensor.AllClose(want, out, 0.05) {
		t.Errorf("BN path diverges: %v vs %v", out.Data(), want.Data())
	}
}

func TestSecureMLInputShape(t *testing.T) {
	net := fcNet(t)
	s, err := NewSecureML(net, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Infer(tensor.Zeros(5)); err == nil {
		t.Error("wrong shape accepted")
	}
}

// TestEzPCBatchNorm covers the EzPC BN path on a conv+BN model.
func TestEzPCBatchNorm(t *testing.T) {
	r := mathrand.New(mathrand.NewSource(75))
	p := tensor.ConvParams{InC: 1, InH: 4, InW: 4, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv, err := nn.NewConv("c", p, r)
	if err != nil {
		t.Fatal(err)
	}
	bn := nn.NewBatchNorm("bn", 2)
	bn.Gamma = tensor.MustFromSlice([]float64{1.2, 0.8}, 2)
	net, err := nn.NewNetwork("ezpc-bn", tensor.Shape{1, 4, 4},
		conv,
		bn,
		nn.NewReLU("relu"),
		nn.NewFlatten("fl"),
		nn.NewFC("fc", 32, 2, r),
		nn.NewSoftMax("sm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEzPC(net, 14)
	if err != nil {
		t.Fatal(err)
	}
	x := sampleInput(net.InputShape, 8)
	out, _, err := e.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := net.Forward(x)
	if !tensor.AllClose(want, out, 0.05) {
		t.Errorf("EzPC BN diverges:\n got %v\nwant %v", out.Data(), want.Data())
	}
}

// TestDotPrivateAccounting checks the private-weight linear op uses
// triples and stays accurate over longer dot products.
func TestDotPrivateAccounting(t *testing.T) {
	eng := secshare.NewEngine(15)
	n := 64
	w := make([]float64, n)
	xs := make([]float64, n)
	var want float64
	for i := 0; i < n; i++ {
		w[i] = float64(i%7)/7 - 0.5
		xs[i] = float64(i%5)/5 - 0.4
		want += w[i] * xs[i]
	}
	shares := eng.ShareVec(xs)
	dot, err := eng.DotPrivate(w, shares, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	got := secshare.Decode(dot.Reconstruct())
	want += 0.25
	if diff := got - want; diff > 0.01 || diff < -0.01 {
		t.Errorf("DotPrivate = %v, want %v", got, want)
	}
	if eng.Stats.TriplesUsed == 0 {
		t.Error("private dot consumed no triples (weights would leak)")
	}
	if _, err := eng.DotPrivate(w[:3], shares, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := eng.MatVecPrivate([][]float64{w}, []float64{1, 2}, shares); err == nil {
		t.Error("bias mismatch accepted")
	}
}

// TestCipherBaseRejectsBadModel: CipherBase inherits the protocol's
// structural validation.
func TestCipherBaseRejectsBadModel(t *testing.T) {
	k := key(t)
	r := mathrand.New(mathrand.NewSource(76))
	bad, _ := nn.NewNetwork("bad", tensor.Shape{4}, nn.NewFC("fc", 4, 2, r))
	if _, err := NewCipherBase(bad, k, 100); err == nil {
		t.Error("linear-only network accepted")
	}
}
