package baselines

import (
	"fmt"
	"math"
	"time"

	"ppstream/internal/garble"
	"ppstream/internal/nn"
	"ppstream/internal/qnn"
	"ppstream/internal/secshare"
	"ppstream/internal/tensor"
)

// EzPCStats accounts the two-party engine's protocol costs — the
// quantities behind the paper's explanation of EzPC's latency: frequent
// transitions between secret sharing and garbled circuits, and multiple
// interaction rounds per layer.
type EzPCStats struct {
	// Transitions counts arithmetic↔boolean protocol switches.
	Transitions int
	// GCExecutions counts garbled circuits evaluated.
	GCExecutions int
	// ANDGates counts total garbled AND gates (4 table rows each).
	ANDGates int
	// BaseOTs counts public-key base OTs consumed by the extensions.
	BaseOTs int
	// ExtOTs counts extended oblivious transfers.
	ExtOTs int
	// Share/open statistics come from the arithmetic engine.
	Arithmetic secshare.Stats
}

// EzPC is the EzPC-style two-party inference engine: linear layers over
// additive shares with party-0-private weights, ReLU through garbled
// circuits, SoftMax on the opened final scores.
type EzPC struct {
	net        *nn.Network
	eng        *secshare.Engine
	ot         *garble.OT
	relu       *garble.Circuit
	rng        func() uint64
	lastOutput *tensor.Dense
	Stats      EzPCStats
}

// NewEzPC builds the engine for a supported network (FC/Conv/BatchNorm/
// Flatten/ReLU with a final SoftMax).
func NewEzPC(net *nn.Network, seed int64) (*EzPC, error) {
	if err := checkSupported(net, false); err != nil {
		return nil, err
	}
	relu, err := garble.ReLUShares()
	if err != nil {
		return nil, err
	}
	ot, err := garble.NewOT(256)
	if err != nil {
		return nil, err
	}
	eng := secshare.NewEngine(seed)
	cnt := uint64(seed)
	return &EzPC{
		net:  net,
		eng:  eng,
		ot:   ot,
		relu: relu,
		rng: func() uint64 {
			cnt = cnt*6364136223846793005 + 1442695040888963407
			return cnt
		},
	}, nil
}

// Infer runs one private inference and reports the output distribution
// and latency.
func (e *EzPC) Infer(x *tensor.Dense) (*tensor.Dense, time.Duration, error) {
	start := time.Now()
	if !x.Shape().Equal(e.net.InputShape) {
		return nil, 0, fmt.Errorf("baselines: input shape %v, want %v", x.Shape(), e.net.InputShape)
	}
	shares := e.eng.ShareVec(x.Flatten().Data())
	shape := e.net.InputShape
	for i, l := range e.net.Layers {
		var err error
		shares, shape, err = e.applyLayer(l, shares, shape, i == len(e.net.Layers)-1)
		if err != nil {
			return nil, 0, fmt.Errorf("baselines: ezpc layer %d (%s): %w", i, l.Name(), err)
		}
		if shares == nil {
			// The final SoftMax produced the plaintext result.
			break
		}
	}
	out := e.lastOutput
	e.lastOutput = nil
	if out == nil {
		return nil, 0, fmt.Errorf("baselines: ezpc inference ended without a result")
	}
	return out, time.Since(start), nil
}

func (e *EzPC) applyLayer(l nn.Layer, x []secshare.Shares, shape tensor.Shape, last bool) ([]secshare.Shares, tensor.Shape, error) {
	switch v := l.(type) {
	case *nn.FC:
		w := make([][]float64, v.Out())
		for o := 0; o < v.Out(); o++ {
			w[o] = v.W.Data()[o*v.In() : (o+1)*v.In()]
		}
		out, err := e.eng.MatVecPrivate(w, v.B.Data(), x)
		if err != nil {
			return nil, nil, err
		}
		return out, tensor.Shape{v.Out()}, nil
	case *nn.Conv:
		return e.applyConv(v, x, shape)
	case *nn.BatchNorm:
		return e.applyBatchNorm(v, x, shape)
	case *nn.Flatten:
		return x, tensor.Shape{shape.Size()}, nil
	case *nn.ReLU:
		out, err := e.applyReLU(x)
		return out, shape, err
	case *nn.SoftMax:
		if !last {
			return nil, nil, fmt.Errorf("SoftMax only supported as the final layer")
		}
		// Open the final scores to the client and finish in plaintext —
		// standard in 2PC inference (the client learns the result).
		vals := e.eng.OpenVec(x)
		logits, err := tensor.FromSlice(vals, shape...)
		if err != nil {
			return nil, nil, err
		}
		res, err := v.Forward(logits)
		if err != nil {
			return nil, nil, err
		}
		e.lastOutput = res
		return nil, shape, nil
	default:
		return nil, nil, fmt.Errorf("unsupported layer type %T", l)
	}
}

func (e *EzPC) applyConv(v *nn.Conv, x []secshare.Shares, shape tensor.Shape) ([]secshare.Shares, tensor.Shape, error) {
	p := v.P
	want := tensor.Shape{p.InC, p.InH, p.InW}
	if shape.Size() != want.Size() {
		return nil, nil, fmt.Errorf("conv input %v, want %v", shape, want)
	}
	rows := qnn.GatherRows(p)
	oh, ow := p.OutH(), p.OutW()
	out := make([]secshare.Shares, p.OutC*oh*ow)
	rowLen := p.InC * p.KH * p.KW
	e.Stats.Arithmetic = e.eng.Stats
	for f := 0; f < p.OutC; f++ {
		filt := v.W.Data()[f*rowLen : (f+1)*rowLen]
		for pos := 0; pos < oh*ow; pos++ {
			// Gather the receptive field (zero share for padding).
			var ws []float64
			var xs []secshare.Shares
			for k, off := range rows[pos] {
				if off < 0 || filt[k] == 0 {
					continue
				}
				ws = append(ws, filt[k])
				xs = append(xs, x[off])
			}
			s, err := e.eng.DotPrivate(ws, xs, v.B.Data()[f])
			if err != nil {
				return nil, nil, err
			}
			out[f*oh*ow+pos] = s
		}
	}
	e.eng.Stats.Rounds++ // one batched opening round for the layer
	return out, tensor.Shape{p.OutC, oh, ow}, nil
}

func (e *EzPC) applyBatchNorm(v *nn.BatchNorm, x []secshare.Shares, shape tensor.Shape) ([]secshare.Shares, tensor.Shape, error) {
	per := 1
	if shape.Rank() == 3 {
		if shape[0] != v.Channels {
			return nil, nil, fmt.Errorf("batchnorm channels %d, input %v", v.Channels, shape)
		}
		per = shape[1] * shape[2]
	} else if shape.Size() != v.Channels {
		return nil, nil, fmt.Errorf("batchnorm features %d, input %v", v.Channels, shape)
	}
	out := make([]secshare.Shares, len(x))
	e.eng.Stats.Rounds++
	for i := range x {
		c := i / per
		inv := 1 / math.Sqrt(v.Var.At(c)+v.Eps)
		a := v.Gamma.At(c) * inv
		b := v.Beta.At(c) - a*v.Mean.At(c)
		s, err := e.eng.DotPrivate([]float64{a}, []secshare.Shares{x[i]}, b)
		if err != nil {
			return nil, nil, err
		}
		out[i] = s
	}
	return out, shape, nil
}

// applyReLU converts every element through a garbled circuit: the
// arithmetic→boolean→arithmetic round trip that EzPC pays at each
// non-linear layer. One OT extension covers the whole layer.
func (e *EzPC) applyReLU(x []secshare.Shares) ([]secshare.Shares, error) {
	n := len(x)
	e.Stats.Transitions += 2 // arith→GC and GC→arith

	// Collect the evaluator's (party 1's) choice bits for all elements.
	choice := make([]bool, 0, n*64)
	for _, s := range x {
		choice = append(choice, garble.Bits64(s.S[1])...)
	}
	sender, receiver, baseOTs, err := garble.NewOTExtension(e.ot, len(choice), choice)
	if err != nil {
		return nil, err
	}
	e.Stats.BaseOTs += baseOTs
	e.Stats.ExtOTs += len(choice)

	out := make([]secshare.Shares, n)
	for i, s := range x {
		// Half-gates garbling (as in EzPC's ABY backend): two table rows
		// per AND gate instead of four.
		g, err := garble.GarbleHG(e.relu)
		if err != nil {
			return nil, err
		}
		e.Stats.GCExecutions++
		e.Stats.ANDGates += e.relu.ANDCount()
		r := e.rng()
		gl, err := g.GarblerLabels(append(garble.Bits64(s.S[0]), garble.Bits64(-r)...))
		if err != nil {
			return nil, err
		}
		el := make([]garble.Label, 64)
		for b := 0; b < 64; b++ {
			idx := i*64 + b
			m0, m1, err := g.EvalLabelPair(b)
			if err != nil {
				return nil, err
			}
			y0, y1, err := sender.Transfer(idx, m0, m1)
			if err != nil {
				return nil, err
			}
			el[b], err = receiver.Receive(idx, y0, y1)
			if err != nil {
				return nil, err
			}
		}
		bits, err := garble.EvaluateHG(e.relu, g.Public(), gl, el)
		if err != nil {
			return nil, err
		}
		out[i] = secshare.Shares{S: [2]uint64{r, garble.FromBits64(bits)}}
	}
	e.Stats.Arithmetic = e.eng.Stats
	return out, nil
}
