package baselines

import (
	"crypto/rand"
	"math"
	mathrand "math/rand"
	"sync"
	"testing"

	"ppstream/internal/nn"
	"ppstream/internal/paillier"
	"ppstream/internal/tensor"
)

var (
	keyOnce sync.Once
	testKey *paillier.PrivateKey
)

func key(t testing.TB) *paillier.PrivateKey {
	keyOnce.Do(func() {
		k, err := paillier.GenerateKey(rand.Reader, 256)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	})
	return testKey
}

func fcNet(t testing.TB) *nn.Network {
	r := mathrand.New(mathrand.NewSource(71))
	net, err := nn.NewNetwork("bl-fc", tensor.Shape{4},
		nn.NewFC("fc1", 4, 6, r),
		nn.NewReLU("relu1"),
		nn.NewFC("fc2", 6, 3, r),
		nn.NewSoftMax("sm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func convNet(t testing.TB) *nn.Network {
	r := mathrand.New(mathrand.NewSource(72))
	p := tensor.ConvParams{InC: 1, InH: 5, InW: 5, OutC: 2, KH: 3, KW: 3, Stride: 2, Pad: 1}
	conv, err := nn.NewConv("c", p, r)
	if err != nil {
		t.Fatal(err)
	}
	net, err := nn.NewNetwork("bl-conv", tensor.Shape{1, 5, 5},
		conv,
		nn.NewReLU("relu"),
		nn.NewFlatten("fl"),
		nn.NewFC("fc", 2*3*3, 3, r),
		nn.NewSoftMax("sm"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func sampleInput(shape tensor.Shape, seed int64) *tensor.Dense {
	r := mathrand.New(mathrand.NewSource(seed))
	x := tensor.Zeros(shape...)
	for i := range x.Data() {
		x.Data()[i] = r.NormFloat64() * 0.5
	}
	return x
}

func TestReportedLatencies(t *testing.T) {
	rep := ReportedLatencies()
	if len(rep) != 3 {
		t.Fatalf("%d reported rows, want 3 (Table VII stars)", len(rep))
	}
	want := map[string]float64{"SecureML": 4.88, "CryptoNets": 297.5, "CryptoDL": 320}
	for _, r := range rep {
		if want[r.System] != r.Seconds {
			t.Errorf("%s reported %v, want %v", r.System, r.Seconds, want[r.System])
		}
		if r.Source == "" {
			t.Errorf("%s missing source", r.System)
		}
	}
}

func TestPlainBase(t *testing.T) {
	net := fcNet(t)
	x := sampleInput(net.InputShape, 1)
	out, lat, err := PlainBase(net, x)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := net.Forward(x)
	if !tensor.AllClose(want, out, 0) {
		t.Error("PlainBase diverges from Forward")
	}
	if lat < 0 {
		t.Error("negative latency")
	}
}

func TestCipherBaseMatchesPlain(t *testing.T) {
	k := key(t)
	net := fcNet(t)
	cb, err := NewCipherBase(net, k, 1000)
	if err != nil {
		t.Fatal(err)
	}
	x := sampleInput(net.InputShape, 2)
	out, lat, err := cb.Infer(1, x)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := net.Forward(x)
	if !tensor.AllClose(want, out, 1e-2) {
		t.Errorf("CipherBase %v vs plain %v", out.Data(), want.Data())
	}
	if lat <= 0 {
		t.Error("no latency measured")
	}
}

// TestEzPCMatchesPlain is the key baseline correctness check: the full
// 2PC engine (shares + Beaver triples + garbled-circuit ReLU + OT
// extension) reproduces plain inference.
func TestEzPCMatchesPlain(t *testing.T) {
	net := fcNet(t)
	e, err := NewEzPC(net, 5)
	if err != nil {
		t.Fatal(err)
	}
	x := sampleInput(net.InputShape, 3)
	out, lat, err := e.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := net.Forward(x)
	if !tensor.AllClose(want, out, 0.02) {
		t.Errorf("EzPC %v vs plain %v", out.Data(), want.Data())
	}
	if lat <= 0 {
		t.Error("no latency")
	}
	if e.Stats.Transitions != 2 {
		t.Errorf("transitions %d, want 2 (one ReLU layer)", e.Stats.Transitions)
	}
	if e.Stats.GCExecutions != 6 {
		t.Errorf("GC executions %d, want 6 (ReLU over 6 elements)", e.Stats.GCExecutions)
	}
	if e.Stats.ExtOTs != 6*64 {
		t.Errorf("ext OTs %d, want %d", e.Stats.ExtOTs, 6*64)
	}
	if e.Stats.BaseOTs == 0 || e.Stats.ANDGates == 0 {
		t.Error("missing cost accounting")
	}
}

func TestEzPCConvNet(t *testing.T) {
	net := convNet(t)
	e, err := NewEzPC(net, 6)
	if err != nil {
		t.Fatal(err)
	}
	x := sampleInput(net.InputShape, 4)
	out, _, err := e.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := net.Forward(x)
	if !tensor.AllClose(want, out, 0.05) {
		t.Errorf("EzPC conv diverges:\n got %v\nwant %v", out.Data(), want.Data())
	}
	if tensor.ArgMax(want) != tensor.ArgMax(out) {
		t.Error("prediction differs")
	}
}

func TestEzPCRejectsUnsupported(t *testing.T) {
	r := mathrand.New(mathrand.NewSource(73))
	mp, _ := nn.NewNetwork("mp", tensor.Shape{1, 4, 4},
		nn.NewMaxPool("pool", 2, 2),
		nn.NewFlatten("fl"),
		nn.NewFC("fc", 4, 2, r),
		nn.NewSoftMax("sm"),
	)
	if _, err := NewEzPC(mp, 1); err == nil {
		t.Error("MaxPool network accepted")
	}
	midSM, _ := nn.NewNetwork("msm", tensor.Shape{4},
		nn.NewFC("fc", 4, 4, r),
		nn.NewSoftMax("mid"),
		nn.NewFC("fc2", 4, 2, r),
		nn.NewSoftMax("sm"),
	)
	if _, err := NewEzPC(midSM, 1); err == nil {
		t.Error("middle SoftMax accepted")
	}
}

func TestEzPCInputShapeCheck(t *testing.T) {
	net := fcNet(t)
	e, err := NewEzPC(net, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Infer(tensor.Zeros(5)); err == nil {
		t.Error("wrong input shape accepted")
	}
}

// TestSecureMLRunsSquareActivation checks the SecureML-style engine
// computes the square-activation network correctly (its outputs match a
// manual square-activation forward pass, not the ReLU network).
func TestSecureMLRunsSquareActivation(t *testing.T) {
	net := fcNet(t)
	s, err := NewSecureML(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := sampleInput(net.InputShape, 5)
	out, _, err := s.Infer(x)
	if err != nil {
		t.Fatal(err)
	}
	// manual reference with x² activation
	fc1 := net.Layers[0].(*nn.FC)
	fc2 := net.Layers[2].(*nn.FC)
	sm := net.Layers[3].(*nn.SoftMax)
	h, _ := fc1.Forward(x)
	sq := tensor.Map(h, func(v float64) float64 { return v * v })
	logits, _ := fc2.Forward(sq)
	want, _ := sm.Forward(logits)
	if !tensor.AllClose(want, out, 0.05) {
		t.Errorf("SecureML %v vs square reference %v", out.Data(), want.Data())
	}
	if s.Stats.TriplesUsed == 0 || s.Stats.Rounds == 0 {
		t.Error("missing cost accounting")
	}
}

// TestEzPCIsSlowerThanPPStreamShape sanity-checks the Table VII shape on
// a tiny model: the EzPC-style engine should cost more protocol machinery
// than the hybrid protocol for the same network. We compare structural
// cost (GC + OT work exists) rather than asserting wall-clock, which is
// environment-dependent.
func TestEzPCIsSlowerThanPPStreamShape(t *testing.T) {
	net := fcNet(t)
	e, err := NewEzPC(net, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := sampleInput(net.InputShape, 6)
	if _, _, err := e.Infer(x); err != nil {
		t.Fatal(err)
	}
	if e.Stats.ANDGates < 6*100 {
		t.Errorf("expected heavy GC cost, got %d AND gates", e.Stats.ANDGates)
	}
	if math.IsNaN(float64(e.Stats.ExtOTs)) || e.Stats.ExtOTs == 0 {
		t.Error("no OT work recorded")
	}
}
