// Package baselines implements the comparison systems of the paper's
// evaluation:
//
//   - PlainBase and CipherBase, the centralized variants of Exp#2
//     (Fig. 8): plaintext inference on one server, and single-threaded
//     homomorphic inference on one server.
//   - An EzPC-style two-party engine for Exp#6 (Table VII): additive
//     secret sharing for linear layers and garbled circuits (with IKNP
//     OT extension) for ReLU, paying a protocol transition at every
//     linear/non-linear boundary — the overhead the paper identifies as
//     EzPC's bottleneck.
//   - A SecureML-style engine: the same arithmetic substrate with the
//     square activation SecureML's protocols favour.
//   - The reported latencies of SecureML, CryptoNets, and CryptoDL from
//     their publications, which the paper itself compares against
//     (starred rows of Table VII).
package baselines

import (
	"fmt"
	"time"

	"ppstream/internal/nn"
	"ppstream/internal/paillier"
	"ppstream/internal/protocol"
	"ppstream/internal/tensor"
)

// Reported holds latencies (seconds) published by the corresponding
// papers for the paper's Table VII starred entries.
type Reported struct {
	System  string
	Model   string
	Seconds float64
	Source  string
}

// ReportedLatencies returns the starred Table VII rows.
func ReportedLatencies() []Reported {
	return []Reported{
		{System: "SecureML", Model: "MNIST-1", Seconds: 4.88, Source: "Mohassel & Zhang, S&P 2017 (2× EC2 c4.8xlarge)"},
		{System: "CryptoNets", Model: "MNIST-2", Seconds: 297.5, Source: "Gilad-Bachrach et al., ICML 2016 (Xeon E5-1620)"},
		{System: "CryptoDL", Model: "MNIST-2", Seconds: 320, Source: "Hesamifard et al., PETS 2018 (12-core VM)"},
	}
}

// PlainBase runs centralized plaintext inference (Fig. 8's PlainBase).
func PlainBase(net *nn.Network, x *tensor.Dense) (*tensor.Dense, time.Duration, error) {
	start := time.Now()
	out, err := net.Forward(x)
	return out, time.Since(start), err
}

// CipherBase is Fig. 8's centralized ciphertext baseline: the full
// hybrid protocol executed sequentially with single-threaded stages on
// "one server" (no pipelining, no multi-threading, no partitioning).
type CipherBase struct {
	proto *protocol.Protocol
}

// NewCipherBase builds the baseline from a network and scaling factor.
func NewCipherBase(net *nn.Network, key *paillier.PrivateKey, factor int64) (*CipherBase, error) {
	proto, err := protocol.Build(net, key, protocol.Config{Factor: factor, Workers: 1})
	if err != nil {
		return nil, err
	}
	return &CipherBase{proto: proto}, nil
}

// Infer runs one request and reports its latency.
func (c *CipherBase) Infer(req uint64, x *tensor.Dense) (*tensor.Dense, time.Duration, error) {
	start := time.Now()
	out, err := c.proto.Infer(req, x)
	return out, time.Since(start), err
}

// Protocol exposes the underlying protocol (tests).
func (c *CipherBase) Protocol() *protocol.Protocol { return c.proto }

// checkSupported verifies a network uses only the layers the 2PC
// baselines implement.
func checkSupported(net *nn.Network, allowSquareOnly bool) error {
	for i, l := range net.Layers {
		switch l.(type) {
		case *nn.FC, *nn.Conv, *nn.BatchNorm, *nn.Flatten:
		case *nn.ReLU:
			if allowSquareOnly {
				return fmt.Errorf("baselines: SecureML-style engine replaces ReLU with square; layer %d (%s) should be pre-rewritten", i, l.Name())
			}
		case *nn.SoftMax:
			if i != len(net.Layers)-1 {
				return fmt.Errorf("baselines: SoftMax must be the final layer (layer %d)", i)
			}
		default:
			return fmt.Errorf("baselines: unsupported layer %d (%s, %T)", i, l.Name(), l)
		}
	}
	return nil
}
