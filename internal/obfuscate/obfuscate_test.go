package obfuscate

import (
	"math"
	"testing"
	"testing/quick"

	"ppstream/internal/tensor"
)

func TestNewSeededDeterministic(t *testing.T) {
	a, err := NewSeeded(16, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewSeeded(16, 42)
	for i, v := range a.Forward() {
		if b.Forward()[i] != v {
			t.Fatal("same seed produced different permutations")
		}
	}
	c, _ := NewSeeded(16, 43)
	same := true
	for i, v := range a.Forward() {
		if c.Forward()[i] != v {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical permutations")
	}
}

func TestNewSeededValidation(t *testing.T) {
	if _, err := NewSeeded(0, 1); err == nil {
		t.Error("zero length accepted")
	}
	if _, err := NewSeeded(-3, 1); err == nil {
		t.Error("negative length accepted")
	}
}

func TestFromSliceValidation(t *testing.T) {
	if _, err := FromSlice([]int{}); err == nil {
		t.Error("empty mapping accepted")
	}
	if _, err := FromSlice([]int{0, 2}); err == nil {
		t.Error("out-of-range mapping accepted")
	}
	if _, err := FromSlice([]int{0, 0}); err == nil {
		t.Error("non-bijective mapping accepted")
	}
	p, err := FromSlice([]int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestApplyInvertRoundTrip(t *testing.T) {
	p, _ := NewSeeded(10, 7)
	in := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	perm, err := Apply(p, in)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Invert(p, perm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if back[i] != in[i] {
			t.Fatalf("round trip failed: %v -> %v -> %v", in, perm, back)
		}
	}
}

func TestApplyLengthMismatch(t *testing.T) {
	p, _ := NewSeeded(4, 1)
	if _, err := Apply(p, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted in Apply")
	}
	if _, err := Invert(p, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted in Invert")
	}
}

// TestElementwiseCommutes verifies the core correctness argument of
// Section III-C: for element-wise functions f, f(permute(x)) =
// permute(f(x)), so ReLU/Sigmoid on obfuscated tensors is correct after
// inverse obfuscation.
func TestElementwiseCommutes(t *testing.T) {
	p, _ := NewSeeded(32, 99)
	x := make([]float64, 32)
	for i := range x {
		x[i] = float64(i) - 16
	}
	relu := func(v float64) float64 { return math.Max(0, v) }

	perm, _ := Apply(p, x)
	for i := range perm {
		perm[i] = relu(perm[i])
	}
	viaProtocol, _ := Invert(p, perm)

	for i := range x {
		if viaProtocol[i] != relu(x[i]) {
			t.Fatalf("element-wise op does not commute with permutation at %d", i)
		}
	}
}

func TestApplyTensorLexicographicOrder(t *testing.T) {
	// Identity permutation: ApplyTensor must equal the row-major
	// flattening described in Section III-C.
	id := make([]int, 6)
	for i := range id {
		id[i] = i
	}
	p, _ := FromSlice(id)
	tt := tensor.MustFromSlice([]int{1, 2, 3, 4, 5, 6}, 2, 3)
	v, err := ApplyTensor(p, tt)
	if err != nil {
		t.Fatal(err)
	}
	if v.Shape().Rank() != 1 {
		t.Fatalf("obfuscated tensor must be rank 1, got %v", v.Shape())
	}
	for i, want := range []int{1, 2, 3, 4, 5, 6} {
		if v.AtFlat(i) != want {
			t.Fatalf("lexicographic order violated: %v", v.Data())
		}
	}
}

func TestApplyInvertTensorRoundTrip(t *testing.T) {
	p, _ := NewSeeded(24, 5)
	orig := tensor.New[int](2, 3, 4)
	for i := 0; i < orig.Size(); i++ {
		orig.SetFlat(i, i*i)
	}
	obf, err := ApplyTensor(p, orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := InvertTensor(p, obf, orig.Shape())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Shape().Equal(orig.Shape()) {
		t.Fatalf("restored shape %v", back.Shape())
	}
	for i := 0; i < orig.Size(); i++ {
		if back.AtFlat(i) != orig.AtFlat(i) {
			t.Fatal("tensor round trip corrupted data")
		}
	}
}

func TestRoundsFIFO(t *testing.T) {
	var r Rounds
	p1, err := r.Next(8)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Next(16)
	if err != nil {
		t.Fatal(err)
	}
	if r.Outstanding() != 2 {
		t.Errorf("Outstanding = %d", r.Outstanding())
	}
	got1, err := r.Pop()
	if err != nil || got1 != p1 {
		t.Error("Pop did not return first permutation")
	}
	got2, _ := r.Pop()
	if got2 != p2 {
		t.Error("Pop did not return second permutation")
	}
	if _, err := r.Pop(); err == nil {
		t.Error("Pop on empty Rounds succeeded")
	}
}

func TestRoundsFreshSeeds(t *testing.T) {
	// Two consecutive rounds of the same length should (overwhelmingly
	// likely) produce different permutations — the paper requires fresh
	// seeds per round.
	var r Rounds
	const n = 64
	a, _ := r.Next(n)
	b, _ := r.Next(n)
	same := true
	for i, v := range a.Forward() {
		if b.Forward()[i] != v {
			same = false
			break
		}
	}
	if same {
		t.Error("two rounds produced identical permutations")
	}
}

// Property: Invert ∘ Apply is the identity for random permutations and
// random data.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, raw []int32) bool {
		if len(raw) == 0 {
			return true
		}
		p, err := NewSeeded(len(raw), seed)
		if err != nil {
			return false
		}
		perm, err := Apply(p, raw)
		if err != nil {
			return false
		}
		back, err := Invert(p, perm)
		if err != nil {
			return false
		}
		for i := range raw {
			if back[i] != raw[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a permutation's forward mapping is always a bijection.
func TestBijectionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p, err := NewSeeded(n, seed)
		if err != nil {
			return false
		}
		seen := make([]bool, n)
		for _, j := range p.Forward() {
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
