package obfuscate

import (
	"fmt"
	"testing"
)

// FuzzPermutationFromSlice feeds adversarial forward mappings to
// FromSlice: it must never panic, must reject everything that is not a
// bijection on [0, n), and every accepted permutation must satisfy
// Invert ∘ Apply = identity.
func FuzzPermutationFromSlice(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 0, 2})
	f.Add([]byte{3, 2, 1, 0})
	f.Add([]byte{0, 0})       // repeated value
	f.Add([]byte{7, 1})       // out of range
	f.Add([]byte{0xFF, 0x01}) // negative after int8 mapping
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1024 {
			return
		}
		forward := make([]int, len(data))
		for i, b := range data {
			// int8 mapping exercises negatives and values >= n at small n.
			forward[i] = int(int8(b))
		}
		p, err := FromSlice(forward)
		if err != nil {
			return
		}
		in := make([]int, p.Len())
		for i := range in {
			in[i] = i * 31
		}
		applied, err := Apply(p, in)
		if err != nil {
			t.Fatalf("Apply on accepted permutation: %v", err)
		}
		restored, err := Invert(p, applied)
		if err != nil {
			t.Fatalf("Invert on accepted permutation: %v", err)
		}
		for i := range in {
			if restored[i] != in[i] {
				t.Fatalf("Invert(Apply(x)) != x at %d: got %d want %d (forward=%v)", i, restored[i], in[i], forward)
			}
		}
	})
}

// TestNewRandomCoversAllPermutations is the regression test for the
// 64-bit-seed bug: with direct crypto/rand Fisher–Yates every one of
// the n! permutations must actually occur. For n = 4 the coupon
// collector needs ~92 draws in expectation; 20000 draws make a missing
// permutation astronomically unlikely.
func TestNewRandomCoversAllPermutations(t *testing.T) {
	const n = 4
	want := 24 // 4!
	seen := map[string]bool{}
	for i := 0; i < 20000 && len(seen) < want; i++ {
		p, err := NewRandom(n)
		if err != nil {
			t.Fatal(err)
		}
		seen[fmt.Sprint(p.Forward())] = true
	}
	if len(seen) != want {
		t.Fatalf("observed %d/%d permutations of %d elements — the full space is not reachable", len(seen), want, n)
	}
}

func TestNewRandomRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewRandom(n); err == nil {
			t.Errorf("NewRandom(%d) accepted", n)
		}
	}
}

// TestUniformIndexBounds checks the rejection sampler stays in range
// across moduli, including ones that do not divide 2^64.
func TestUniformIndexBounds(t *testing.T) {
	for _, m := range []int{1, 2, 3, 5, 7, 64, 1000} {
		for i := 0; i < 200; i++ {
			v, err := uniformIndex(m)
			if err != nil {
				t.Fatal(err)
			}
			if v < 0 || v >= m {
				t.Fatalf("uniformIndex(%d) = %d out of range", m, v)
			}
		}
	}
}
