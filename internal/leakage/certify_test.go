package leakage

import (
	"math"
	"math/rand"
	"testing"

	"ppstream/internal/nn"
	"ppstream/internal/tensor"
)

// TestDistanceCorrelationEdgeCases is the table-driven regression for
// the NaN-producing inputs the hardened implementation must absorb:
// constants, near-zero variance, cancellation-driven negative
// covariance, and non-finite observations.
func TestDistanceCorrelationEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		x, y    []float64
		want    float64
		wantErr bool
	}{
		{name: "constant x", x: []float64{5, 5, 5, 5}, y: []float64{1, 2, 3, 4}, want: 0},
		{name: "constant y", x: []float64{1, 2, 3, 4}, y: []float64{-7, -7, -7, -7}, want: 0},
		{name: "both constant", x: []float64{0, 0, 0}, y: []float64{9, 9, 9}, want: 0},
		{name: "near-zero variance", x: []float64{1, 1 + 1e-300, 1, 1 - 1e-300}, y: []float64{1, 2, 3, 4}, want: 0},
		{name: "tiny spread both", x: []float64{1e-200, 2e-200, 3e-200}, y: []float64{3e-200, 1e-200, 2e-200}},
		{name: "NaN in x", x: []float64{1, math.NaN(), 3}, y: []float64{1, 2, 3}, wantErr: true},
		{name: "Inf in y", x: []float64{1, 2, 3}, y: []float64{1, math.Inf(1), 3}, wantErr: true},
		{name: "neg Inf in x", x: []float64{math.Inf(-1), 2, 3}, y: []float64{1, 2, 3}, wantErr: true},
		{name: "huge magnitudes", x: []float64{1e150, -1e150, 5e149}, y: []float64{-1e150, 1e150, 2e149}},
		{name: "identical", x: []float64{2, 7, 1, 8}, y: []float64{2, 7, 1, 8}, want: 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d, err := DistanceCorrelation(c.x, c.y)
			if c.wantErr {
				if err == nil {
					t.Fatalf("dcor = %v, want error", d)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 || d > 1 {
				t.Fatalf("dcor = %v, want finite value in [0,1]", d)
			}
			if c.want != 0 || c.name == "constant x" || c.name == "constant y" || c.name == "both constant" || c.name == "near-zero variance" {
				if math.Abs(d-c.want) > 1e-9 {
					t.Fatalf("dcor = %v, want %v", d, c.want)
				}
			}
		})
	}
}

func TestDistanceCorrelationVecMatchesScalar(t *testing.T) {
	// Width-1 vectors must agree with the scalar implementation.
	x := []float64{1, 5, 2, 8, 3}
	y := []float64{2, 1, 9, 4, 6}
	xv := make([][]float64, len(x))
	yv := make([][]float64, len(y))
	for i := range x {
		xv[i] = []float64{x[i]}
		yv[i] = []float64{y[i]}
	}
	ds, err := DistanceCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := DistanceCorrelationVec(xv, yv)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ds-dv) > 1e-12 {
		t.Fatalf("vec %v != scalar %v", dv, ds)
	}
}

func TestDistanceCorrelationVecDependence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, w := 256, 4
	x := make([][]float64, n)
	rot := make([][]float64, n)  // an orthogonal-ish transform of x
	indep := make([][]float64, n)
	for i := 0; i < n; i++ {
		x[i] = make([]float64, w)
		rot[i] = make([]float64, w)
		indep[i] = make([]float64, w)
		for k := 0; k < w; k++ {
			x[i][k] = rng.NormFloat64()
			indep[i][k] = rng.NormFloat64()
		}
		for k := 0; k < w; k++ {
			rot[i][k] = x[i][(k+1)%w] - x[i][(k+2)%w]
		}
	}
	dDep, err := DistanceCorrelationVec(x, rot)
	if err != nil {
		t.Fatal(err)
	}
	dInd, err := DistanceCorrelationVec(x, indep)
	if err != nil {
		t.Fatal(err)
	}
	// The biased sample estimator does not reach 0 for independent
	// multivariate data at modest n, so assert the separation rather
	// than absolute smallness.
	if dDep < 0.5 {
		t.Errorf("dependent transform dcor = %v, expected substantial", dDep)
	}
	if dInd >= dDep-0.2 {
		t.Errorf("independent (%v) not clearly below dependent (%v)", dInd, dDep)
	}
}

func TestDistanceCorrelationVecErrors(t *testing.T) {
	good := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	if _, err := DistanceCorrelationVec(good, good[:2]); err == nil {
		t.Error("sample count mismatch accepted")
	}
	if _, err := DistanceCorrelationVec(good[:1], good[:1]); err == nil {
		t.Error("single observation accepted")
	}
	if _, err := DistanceCorrelationVec([][]float64{{1, 2}, {3}}, good[:2]); err == nil {
		t.Error("ragged observations accepted")
	}
	if _, err := DistanceCorrelationVec([][]float64{{1, 2}, {math.NaN(), 4}}, good[:2]); err == nil {
		t.Error("non-finite observation accepted")
	}
}

// certTestNet builds a 3-FC network (three linear rounds) whose weights
// come from a seeded RNG — the same shape as the Heart model the
// serving plane certifies.
func certTestNet(t *testing.T, seed int64) *nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := nn.NewNetwork("cert-test", tensor.Shape{8},
		nn.NewFC("fc1", 8, 10, rng), nn.NewReLU("r1"),
		nn.NewFC("fc2", 10, 6, rng), nn.NewReLU("r2"),
		nn.NewFC("fc3", 6, 2, rng), nn.NewSigmoid("out"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func certSamples(n, dim int, seed int64) []*tensor.Dense {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*tensor.Dense, n)
	for i := range out {
		s := tensor.Zeros(dim)
		for k := range s.Data() {
			s.Data()[k] = rng.NormFloat64()
		}
		out[i] = s
	}
	return out
}

func TestCertifyClearBoundary(t *testing.T) {
	net := certTestNet(t, 21)
	samples := certSamples(32, 8, 22)

	// tau = 1 certifies everything past round 0: every score is ≤ 1.
	cert, err := CertifyClearBoundary(net, samples, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Scores) != 3 {
		t.Fatalf("scores for %d rounds, want 3", len(cert.Scores))
	}
	if cert.Scores[0] != 1 {
		t.Fatalf("round-0 score = %v, want 1 (input vs itself)", cert.Scores[0])
	}
	if cert.Boundary != 1 {
		t.Fatalf("tau=1 boundary = %d, want 1", cert.Boundary)
	}
	if cert.Certified(0) {
		t.Error("round 0 must never certify")
	}
	if !cert.Certified(1) || !cert.Certified(2) {
		t.Errorf("rounds 1,2 should certify at tau=1: %+v", cert)
	}

	// tau = 0 certifies nothing (real activations always correlate a bit).
	cert, err = CertifyClearBoundary(net, samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Boundary != len(cert.Scores) {
		t.Fatalf("tau=0 boundary = %d, want %d (none)", cert.Boundary, len(cert.Scores))
	}
	for r := 0; r < 3; r++ {
		if cert.Certified(r) {
			t.Errorf("round %d certified at tau=0", r)
		}
	}

	// Scores must be finite, in [0,1], and the suffix rule must hold at
	// an intermediate threshold.
	for r, s := range cert.Scores {
		if math.IsNaN(s) || s < 0 || s > 1 {
			t.Fatalf("score[%d] = %v out of [0,1]", r, s)
		}
	}
	mid := (cert.Scores[1] + cert.Scores[2]) / 2
	cert, err = CertifyClearBoundary(net, samples, mid)
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < len(cert.Scores); r++ {
		inSuffix := r >= cert.Boundary
		below := cert.Scores[r] <= mid
		if inSuffix {
			if !below {
				t.Fatalf("round %d in certified suffix but score %v > tau %v", r, cert.Scores[r], mid)
			}
		}
	}
	if cert.Boundary > 1 && cert.Scores[cert.Boundary-1] <= mid && cert.Boundary-1 >= 1 {
		t.Fatalf("boundary %d not minimal: round %d also below tau", cert.Boundary, cert.Boundary-1)
	}
}

func TestCertifyClearBoundaryErrors(t *testing.T) {
	net := certTestNet(t, 31)
	if _, err := CertifyClearBoundary(net, certSamples(1, 8, 1), 0.5); err == nil {
		t.Error("single calibration sample accepted")
	}
	if _, err := CertifyClearBoundary(net, certSamples(4, 8, 1), -0.1); err == nil {
		t.Error("negative threshold accepted")
	}
	// Wrong input width must surface the forward error.
	if _, err := CertifyClearBoundary(net, certSamples(4, 5, 1), 0.5); err == nil {
		t.Error("mis-shaped calibration samples accepted")
	}
}
