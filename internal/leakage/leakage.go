// Package leakage quantifies the information leakage of PP-Stream's
// obfuscation using distance correlation (Székely, Rizzo & Bakirov 2007),
// the metric of the paper's Exp#5 (Table VI): the obfuscation permutes
// positions but not values, so some statistical dependence between the
// before- and after-obfuscation tensors remains; distance correlation
// measures it, with 1 for identical tensors and 0 for full independence.
package leakage

import (
	"errors"
	"fmt"
	"math"

	"ppstream/internal/obfuscate"
	"ppstream/internal/tensor"
)

// DistanceCorrelation computes the sample distance correlation between
// two paired scalar sequences of equal length n ≥ 2.
func DistanceCorrelation(x, y []float64) (float64, error) {
	n := len(x)
	if n != len(y) {
		return 0, fmt.Errorf("leakage: length mismatch %d vs %d", n, len(y))
	}
	if n < 2 {
		return 0, errors.New("leakage: need at least two observations")
	}
	for i := range x {
		if !isFinite(x[i]) || !isFinite(y[i]) {
			return 0, fmt.Errorf("leakage: non-finite observation at index %d", i)
		}
	}
	ax := centeredDistances(x)
	ay := centeredDistances(y)
	return dcorFromCentered(ax, ay), nil
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// dcorFromCentered finishes the distance-correlation computation from
// two double-centered distance matrices, hardened against the float
// edge cases that would otherwise surface as NaN: constant or
// near-constant sequences (zero distance variance), covariance driven
// slightly negative by cancellation, and rounding pushing the ratio
// above one. The result is always a finite value in [0, 1].
func dcorFromCentered(ax, ay [][]float64) float64 {
	n := len(ax)
	var cov, vx, vy float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cov += ax[i][j] * ay[i][j]
			vx += ax[i][j] * ax[i][j]
			vy += ay[i][j] * ay[i][j]
		}
	}
	n2 := float64(n * n)
	cov /= n2
	vx /= n2
	vy /= n2
	if vx <= 0 || vy <= 0 {
		// A constant sequence has zero distance variance; correlation is
		// conventionally zero. Treating ≤0 (not just ==0) also absorbs
		// negative rounding residue from the centering sums.
		return 0
	}
	ratio := cov / math.Sqrt(vx*vy)
	if math.IsNaN(ratio) || ratio <= 0 {
		// Sample distance covariance can round below zero for (near-)
		// independent data; the population quantity is nonnegative.
		return 0
	}
	dcor := math.Sqrt(ratio)
	if math.IsNaN(dcor) || dcor > 1 {
		return 1
	}
	return dcor
}

// centeredDistances builds the double-centered distance matrix
// A_ij = a_ij − ā_i· − ā_·j + ā_·· for a scalar sequence.
func centeredDistances(x []float64) [][]float64 {
	n := len(x)
	a := make([][]float64, n)
	rowMean := make([]float64, n)
	var grand float64
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			d := math.Abs(x[i] - x[j])
			a[i][j] = d
			rowMean[i] += d
		}
		rowMean[i] /= float64(n)
		grand += rowMean[i]
	}
	grand /= float64(n)
	for i := range a {
		for j := range a[i] {
			a[i][j] = a[i][j] - rowMean[i] - rowMean[j] + grand
		}
	}
	return a
}

// MeasureObfuscation obfuscates the tensor with a fresh random
// permutation and returns the distance correlation between the original
// (lexicographically flattened) and permuted sequences — one sample of
// Exp#5's measurement.
func MeasureObfuscation(t *tensor.Dense) (float64, error) {
	perm, err := obfuscate.NewRandom(t.Size())
	if err != nil {
		return 0, err
	}
	return MeasureWithPermutation(t, perm)
}

// MeasureWithPermutation measures leakage under a specific permutation
// (deterministic variant for tests and reproducible tables).
func MeasureWithPermutation(t *tensor.Dense, perm *obfuscate.Permutation) (float64, error) {
	obf, err := obfuscate.ApplyTensor(perm, t)
	if err != nil {
		return 0, err
	}
	return DistanceCorrelation(t.Flatten().Data(), obf.Data())
}

// MeasureMean averages the leakage over trials fresh random
// permutations, as Exp#5 does across the inference runs of all models.
func MeasureMean(t *tensor.Dense, trials int) (float64, error) {
	if trials <= 0 {
		trials = 1
	}
	var sum float64
	for i := 0; i < trials; i++ {
		d, err := MeasureObfuscation(t)
		if err != nil {
			return 0, err
		}
		sum += d
	}
	return sum / float64(trials), nil
}
