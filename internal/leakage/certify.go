package leakage

import (
	"errors"
	"fmt"
	"math"

	"ppstream/internal/nn"
	"ppstream/internal/tensor"
)

// This file certifies where a model's crypto-clear boundary may sit:
// the linear round from which onward the stage inputs carry so little
// statistical dependence on the raw model input that running them in
// the clear leaks nothing an adversary could invert (the C2PI
// observation: deep activations decorrelate from the input). The
// measurement is multivariate distance correlation between the raw
// input and each linear stage's input across a calibration sample set;
// the serving plane consults the certified boundary before the ILP is
// allowed to assign the `clear` backend to a trailing round.

// DistanceCorrelationVec computes the sample distance correlation
// between two paired multivariate sequences: x[i] and y[i] are the i-th
// paired observations (feature vectors, possibly of different widths),
// with pairwise Euclidean distances replacing the scalar absolute
// differences. Needs n ≥ 2 samples; every coordinate must be finite.
func DistanceCorrelationVec(x, y [][]float64) (float64, error) {
	n := len(x)
	if n != len(y) {
		return 0, fmt.Errorf("leakage: sample count mismatch %d vs %d", n, len(y))
	}
	if n < 2 {
		return 0, errors.New("leakage: need at least two observations")
	}
	for i := 0; i < n; i++ {
		if len(x[i]) != len(x[0]) || len(y[i]) != len(y[0]) {
			return 0, fmt.Errorf("leakage: ragged observation at index %d", i)
		}
		for _, v := range x[i] {
			if !isFinite(v) {
				return 0, fmt.Errorf("leakage: non-finite observation at index %d", i)
			}
		}
		for _, v := range y[i] {
			if !isFinite(v) {
				return 0, fmt.Errorf("leakage: non-finite observation at index %d", i)
			}
		}
	}
	ax := centeredEuclidean(x)
	ay := centeredEuclidean(y)
	return dcorFromCentered(ax, ay), nil
}

// centeredEuclidean double-centers the pairwise Euclidean distance
// matrix of a multivariate sample, mirroring centeredDistances.
func centeredEuclidean(x [][]float64) [][]float64 {
	n := len(x)
	a := make([][]float64, n)
	rowMean := make([]float64, n)
	var grand float64
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			var s float64
			for k := range x[i] {
				d := x[i][k] - x[j][k]
				s += d * d
			}
			d := math.Sqrt(s)
			a[i][j] = d
			rowMean[i] += d
		}
		rowMean[i] /= float64(n)
		grand += rowMean[i]
	}
	grand /= float64(n)
	for i := range a {
		for j := range a[i] {
			a[i][j] = a[i][j] - rowMean[i] - rowMean[j] + grand
		}
	}
	return a
}

// Certification is the result of CertifyClearBoundary: the per-linear-
// round distance correlations against the raw input and the smallest
// round index from which every later round is below the threshold.
type Certification struct {
	// Scores[r] is dcor(raw input, input of linear round r) across the
	// calibration samples. Scores[0] is 1 by construction (the round-0
	// input IS the raw input) and recorded only for completeness.
	Scores []float64
	// Boundary is the smallest linear round index r ≥ 1 such that
	// Scores[r'] ≤ Tau for all r' ≥ r. When no suffix qualifies it
	// equals len(Scores) — i.e. no round may run in the clear.
	Boundary int
	// Tau is the threshold the certification was issued against.
	Tau float64
}

// Certified reports whether linear round r may execute in the clear
// under this certification.
func (c Certification) Certified(r int) bool {
	return r >= c.Boundary && c.Boundary < len(c.Scores)
}

// CertifyClearBoundary runs the calibration samples through the
// network's merged stages and measures, for each linear round, the
// multivariate distance correlation between the raw input and that
// round's input tensor. Round 0 is never certifiable (its input is the
// input itself, and the protocol encrypts it unconditionally); the
// returned boundary is the earliest round whose entire suffix measures
// at or below tau.
func CertifyClearBoundary(net *nn.Network, samples []*tensor.Dense, tau float64) (Certification, error) {
	if len(samples) < 2 {
		return Certification{}, errors.New("leakage: certification needs at least two calibration samples")
	}
	if tau < 0 {
		return Certification{}, fmt.Errorf("leakage: negative threshold %v", tau)
	}
	merged, err := nn.Merge(net)
	if err != nil {
		return Certification{}, err
	}
	// stageInputs[r][i] is sample i's flattened input to linear round r.
	var stageInputs [][][]float64
	raw := make([][]float64, len(samples))
	for i, s := range samples {
		cur := s
		round := 0
		raw[i] = append([]float64(nil), cur.Flatten().Data()...)
		for _, st := range merged {
			if st.Kind == nn.Linear {
				for len(stageInputs) <= round {
					stageInputs = append(stageInputs, make([][]float64, len(samples)))
				}
				stageInputs[round][i] = append([]float64(nil), cur.Flatten().Data()...)
				round++
			}
			out, err := st.Forward(cur)
			if err != nil {
				return Certification{}, fmt.Errorf("leakage: calibration forward: %w", err)
			}
			cur = out
		}
	}
	cert := Certification{Scores: make([]float64, len(stageInputs)), Tau: tau}
	for r := range stageInputs {
		if r == 0 {
			cert.Scores[0] = 1 // the round-0 input is the raw input
			continue
		}
		d, err := DistanceCorrelationVec(raw, stageInputs[r])
		if err != nil {
			return Certification{}, fmt.Errorf("leakage: round %d: %w", r, err)
		}
		cert.Scores[r] = d
	}
	// Walk backward: the boundary is the start of the longest suffix of
	// rounds ≥ 1 all measuring at or below tau.
	cert.Boundary = len(cert.Scores)
	for r := len(cert.Scores) - 1; r >= 1; r-- {
		if cert.Scores[r] > tau {
			break
		}
		cert.Boundary = r
	}
	return cert, nil
}
