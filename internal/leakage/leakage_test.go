package leakage

import (
	"math"
	"math/rand"
	"testing"

	"ppstream/internal/obfuscate"
	"ppstream/internal/tensor"
)

func TestDistanceCorrelationIdentical(t *testing.T) {
	x := []float64{1, 5, 2, 8, 3, 9, 4, 7}
	d, err := DistanceCorrelation(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-9 {
		t.Errorf("dcor(x,x) = %v, want 1", d)
	}
}

func TestDistanceCorrelationLinear(t *testing.T) {
	// Perfect linear dependence also yields 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 20, 30, 40, 50}
	d, err := DistanceCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-9 {
		t.Errorf("dcor(linear) = %v, want 1", d)
	}
}

func TestDistanceCorrelationIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 512
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	d, err := DistanceCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.15 {
		t.Errorf("dcor(independent) = %v, expected near 0", d)
	}
}

func TestDistanceCorrelationErrors(t *testing.T) {
	if _, err := DistanceCorrelation([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := DistanceCorrelation([]float64{1}, []float64{2}); err == nil {
		t.Error("single observation accepted")
	}
	// constant sequence: zero distance variance, defined as 0
	d, err := DistanceCorrelation([]float64{5, 5, 5}, []float64{1, 2, 3})
	if err != nil || d != 0 {
		t.Errorf("constant sequence dcor = %v (%v)", d, err)
	}
}

func TestDistanceCorrelationBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 16 + rng.Intn(64)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = 0.5*x[i] + rng.NormFloat64()
		}
		d, err := DistanceCorrelation(x, y)
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 || d > 1+1e-9 {
			t.Fatalf("dcor %v out of [0,1]", d)
		}
	}
}

func TestMeasureWithPermutationIdentity(t *testing.T) {
	x := tensor.MustFromSlice([]float64{3, 1, 4, 1, 5, 9, 2, 6}, 8)
	id := make([]int, 8)
	for i := range id {
		id[i] = i
	}
	perm, err := obfuscate.FromSlice(id)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MeasureWithPermutation(x, perm)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1) > 1e-9 {
		t.Errorf("identity permutation leaks dcor %v, want 1 (no obfuscation)", d)
	}
}

// TestTableVIShape reproduces the shape of the paper's Table VI: the
// distance correlation between original and permuted tensors decreases
// as the tensor length grows from 2^5 to 2^10 (we cap the length for
// test speed; the harness runs the full sweep to 2^13).
func TestTableVIShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var prev float64 = 2
	for _, logN := range []int{5, 7, 9} {
		n := 1 << logN
		x := tensor.Zeros(n)
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64()
		}
		d, err := MeasureMean(x, 5)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("length 2^%d: dcor = %.4f", logN, d)
		if d >= prev {
			t.Errorf("dcor did not decrease at length 2^%d: %v >= %v", logN, d, prev)
		}
		if d > 0.5 {
			t.Errorf("dcor %v unexpectedly high — obfuscation should weaken correlation", d)
		}
		prev = d
	}
}

func TestMeasureMeanTrialsDefault(t *testing.T) {
	x := tensor.MustFromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 8)
	if _, err := MeasureMean(x, 0); err != nil {
		t.Errorf("zero trials should default to 1: %v", err)
	}
}
