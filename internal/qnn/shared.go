package qnn

import (
	"fmt"

	"ppstream/internal/secshare"
	"ppstream/internal/tensor"
)

// This file is the secret-shared execution form of the quantized linear
// ops: the same integer arithmetic ApplyPlain performs over big
// integers, carried out over additive shares in Z_{2^64} with Beaver
// triples and NO truncation (secshare's integer-exact ring ops). While
// magnitudes stay below 2^63 — which the protocol's scale guard already
// enforces for the Paillier path — reconstruction is bit-identical to
// the plaintext reference, so the ss-gc backend slots into the protocol
// without changing results.

// SharedOp is implemented by quantized ops that can evaluate over
// additive secret shares; every built-in op qualifies.
type SharedOp interface {
	// ApplyShared evaluates the op over a shared tensor whose underlying
	// integers are at scale F^inExp, returning shares at scale
	// F^(inExp+ScaleSteps()). The engine supplies Beaver triples and
	// accounts openings.
	ApplyShared(e *secshare.Engine, x *tensor.Tensor[secshare.Shares], inExp int) (*tensor.Tensor[secshare.Shares], error)
}

// ApplyShared implements SharedOp: row o is the untruncated Beaver dot
// product of the private weight row with the shared activations.
func (q *QFC) ApplyShared(e *secshare.Engine, x *tensor.Tensor[secshare.Shares], inExp int) (*tensor.Tensor[secshare.Shares], error) {
	xs := x.Flatten().Data()
	if len(xs) != len(q.W[0]) {
		return nil, fmt.Errorf("qnn: %s expects %d inputs, got %d", q.name, len(q.W[0]), len(xs))
	}
	out := tensor.New[secshare.Shares](len(q.W))
	for o := range q.W {
		s, err := e.DotPrivateInt(q.W[o], xs, biasAt(q.B[o], q.F, inExp+1))
		if err != nil {
			return nil, fmt.Errorf("qnn: %s: %w", q.name, err)
		}
		out.SetFlat(o, s)
	}
	e.Stats.Rounds++ // one batched Beaver opening round per layer
	return out, nil
}

// ApplyShared implements SharedOp: each output element gathers its
// receptive field (padding and zero weights contribute nothing, exactly
// as in ApplyPlain) and runs one untruncated shared dot product.
func (q *QConv) ApplyShared(e *secshare.Engine, x *tensor.Tensor[secshare.Shares], inExp int) (*tensor.Tensor[secshare.Shares], error) {
	xs := x.Flatten().Data()
	if len(xs) != q.P.InC*q.P.InH*q.P.InW {
		return nil, fmt.Errorf("qnn: %s expects %d inputs, got %d", q.name, q.P.InC*q.P.InH*q.P.InW, len(xs))
	}
	oh, ow := q.P.OutH(), q.P.OutW()
	out := tensor.New[secshare.Shares](q.P.OutC, oh, ow)
	for f := 0; f < q.P.OutC; f++ {
		bias := biasAt(q.B[f], q.F, inExp+1)
		for pos := 0; pos < oh*ow; pos++ {
			row := q.Rows[pos]
			ws := make([]int64, 0, len(row))
			in := make([]secshare.Shares, 0, len(row))
			for k, off := range row {
				if off < 0 || q.W[f][k] == 0 {
					continue
				}
				ws = append(ws, q.W[f][k])
				in = append(in, xs[off])
			}
			s, err := e.DotPrivateInt(ws, in, bias)
			if err != nil {
				return nil, fmt.Errorf("qnn: %s: %w", q.name, err)
			}
			out.SetFlat(f*oh*ow+pos, s)
		}
	}
	e.Stats.Rounds++
	return out, nil
}

// ApplyShared implements SharedOp: per-element private scale and shift.
func (q *QAffine) ApplyShared(e *secshare.Engine, x *tensor.Tensor[secshare.Shares], inExp int) (*tensor.Tensor[secshare.Shares], error) {
	idx, err := q.coeffIndex(x.Shape())
	if err != nil {
		return nil, err
	}
	out := tensor.New[secshare.Shares](x.Shape()...)
	xd := x.Data()
	for i, v := range xd {
		c := idx(i)
		if q.Shift != nil && q.Shift[c] != 0 {
			out.SetFlat(i, e.ScalePrivateInt(q.Scale[c], biasAt(q.Shift[c], q.F, inExp+1), v))
		} else {
			out.SetFlat(i, e.ScalePrivateInt(q.Scale[c], nil, v))
		}
	}
	e.Stats.Rounds++
	return out, nil
}

// ApplyShared implements SharedOp: reshape only.
func (q *QFlatten) ApplyShared(_ *secshare.Engine, x *tensor.Tensor[secshare.Shares], _ int) (*tensor.Tensor[secshare.Shares], error) {
	return x.Flatten(), nil
}

// ApplyStageShared runs a stage's ops in sequence over a shared tensor,
// returning the result and the output scale exponent. Every built-in op
// implements SharedOp; a custom op that does not triggers an error.
func ApplyStageShared(e *secshare.Engine, ops []Op, x *tensor.Tensor[secshare.Shares], inExp int) (*tensor.Tensor[secshare.Shares], int, error) {
	cur, exp := x, inExp
	for _, op := range ops {
		so, ok := op.(SharedOp)
		if !ok {
			return nil, 0, fmt.Errorf("qnn: op %s (%T) has no shared execution form", op.Name(), op)
		}
		out, err := so.ApplyShared(e, cur, exp)
		if err != nil {
			return nil, 0, fmt.Errorf("qnn: applying %s (shared): %w", op.Name(), err)
		}
		cur = out
		exp += op.ScaleSteps()
	}
	return cur, exp, nil
}

// MulCount reports the number of non-zero weight multiplications the op
// performs for the given input shape — the size term of every backend's
// cost model (Paillier modexps, Beaver triples, and plain big-int muls
// all scale with it).
func MulCount(op Op, in tensor.Shape) int {
	switch q := op.(type) {
	case *QFC:
		n := 0
		for _, row := range q.W {
			for _, w := range row {
				if w != 0 {
					n++
				}
			}
		}
		return n
	case *QConv:
		n := 0
		for f := range q.W {
			for _, row := range q.Rows {
				for k, off := range row {
					if off >= 0 && q.W[f][k] != 0 {
						n++
					}
				}
			}
		}
		return n
	case *QAffine:
		return in.Size()
	default:
		return 0
	}
}
