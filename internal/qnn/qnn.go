// Package qnn holds the quantized, homomorphically-executable form of a
// network's linear layers. After parameter scaling (internal/scaling)
// selects F = 10^f, each linear layer's weights become integers ≈ w·F and
// the layer evaluates over Paillier ciphertexts on the model provider.
//
// Scale-exponent bookkeeping: the data provider encrypts activations at
// scale F¹ (x_int = round(x·F)). Every parameterized linear op multiplies
// by weights at scale F, raising the result's exponent by one; biases are
// materialized at the output exponent. The data provider divides by
// F^exp after decryption to recover real values, applies the non-linear
// functions in plaintext, and re-scales to F¹ for the next round. Paillier
// plaintexts are big integers, so growing magnitudes stay exact as long
// as they remain below n/2 — Guard checks that bound.
package qnn

import (
	"fmt"
	"math"
	"math/big"

	"ppstream/internal/nn"
	"ppstream/internal/paillier"
	"ppstream/internal/tensor"
)

// Op is a quantized linear operation evaluated over ciphertexts.
type Op interface {
	// Name identifies the op, matching the source layer's name.
	Name() string
	// OutShape computes the output tensor shape.
	OutShape(in tensor.Shape) (tensor.Shape, error)
	// ScaleSteps reports how many powers of F the op multiplies into the
	// result (1 for parameterized ops, 0 for structural ones).
	ScaleSteps() int
	// Apply evaluates the op over an encrypted tensor whose plaintexts
	// are at scale F^inExp, using up to workers goroutines, and returns
	// the encrypted result at scale F^(inExp+ScaleSteps()). The evaluator
	// supplies the public key plus the blinding factors used to
	// re-randomize every output ciphertext.
	Apply(ev *paillier.Evaluator, x *paillier.CipherTensor, inExp int, workers int) (*paillier.CipherTensor, error)
	// ApplyPlain evaluates the same arithmetic over plaintext big
	// integers; CipherBase/PlainBase baselines and tests use it to check
	// the ciphertext path bit-for-bit.
	ApplyPlain(x *tensor.Tensor[*big.Int], inExp int) (*tensor.Tensor[*big.Int], error)
}

// Quantize converts a linear nn layer into its homomorphic form with
// scaling factor F.
func Quantize(l nn.Layer, F int64) (Op, error) {
	if F <= 0 {
		return nil, fmt.Errorf("qnn: scaling factor must be positive, got %d", F)
	}
	switch v := l.(type) {
	case *nn.FC:
		return quantizeFC(v, F), nil
	case *nn.Conv:
		return quantizeConv(v, F), nil
	case *nn.BatchNorm:
		return quantizeBatchNorm(v, F), nil
	case *nn.ElemScale:
		return quantizeElemScale(v, F), nil
	case *nn.Flatten:
		return &QFlatten{name: v.Name()}, nil
	default:
		return nil, fmt.Errorf("qnn: layer %s (%T) is not a supported linear layer", l.Name(), l)
	}
}

// QuantizeStage converts a merged linear primitive layer into its op
// sequence.
func QuantizeStage(p *nn.PrimitiveLayer, F int64) ([]Op, error) {
	if p.Kind != nn.Linear {
		return nil, fmt.Errorf("qnn: stage %s is %v, want linear", p.Name(), p.Kind)
	}
	ops := make([]Op, len(p.Layers))
	for i, l := range p.Layers {
		op, err := Quantize(l, F)
		if err != nil {
			return nil, err
		}
		ops[i] = op
	}
	return ops, nil
}

// StageScaleSteps sums the scale steps of a stage's ops.
func StageScaleSteps(ops []Op) int {
	total := 0
	for _, op := range ops {
		total += op.ScaleSteps()
	}
	return total
}

// ApplyStage runs a stage's ops in sequence over ciphertexts, returning
// the result and the output scale exponent.
func ApplyStage(ev *paillier.Evaluator, ops []Op, x *paillier.CipherTensor, inExp, workers int) (*paillier.CipherTensor, int, error) {
	cur, exp := x, inExp
	for _, op := range ops {
		out, err := op.Apply(ev, cur, exp, workers)
		if err != nil {
			return nil, 0, fmt.Errorf("qnn: applying %s: %w", op.Name(), err)
		}
		cur = out
		exp += op.ScaleSteps()
	}
	return cur, exp, nil
}

// ApplyStagePlain is ApplyStage over plaintext big integers.
func ApplyStagePlain(ops []Op, x *tensor.Tensor[*big.Int], inExp int) (*tensor.Tensor[*big.Int], int, error) {
	cur, exp := x, inExp
	for _, op := range ops {
		out, err := op.ApplyPlain(cur, exp)
		if err != nil {
			return nil, 0, fmt.Errorf("qnn: applying %s (plain): %w", op.Name(), err)
		}
		cur = out
		exp += op.ScaleSteps()
	}
	return cur, exp, nil
}

// ScaleInput converts a float tensor to the integer representation at
// scale F (exponent 1): round(x·F).
func ScaleInput(x *tensor.Dense, F int64) *tensor.Tensor[int64] {
	return tensor.Map(x, func(v float64) int64 {
		return int64(math.Round(v * float64(F)))
	})
}

// Descale converts a big-integer tensor at scale F^exp back to floats.
func Descale(x *tensor.Tensor[*big.Int], F int64, exp int) (*tensor.Dense, error) {
	if exp < 0 {
		return nil, fmt.Errorf("qnn: negative scale exponent %d", exp)
	}
	div := new(big.Float).SetInt(powF(F, exp))
	out := tensor.Zeros(x.Shape()...)
	od := out.Data()
	for i, v := range x.Data() {
		if v == nil {
			return nil, fmt.Errorf("qnn: nil value at offset %d", i)
		}
		q := new(big.Float).Quo(new(big.Float).SetInt(v), div)
		f, _ := q.Float64()
		od[i] = f
	}
	return out, nil
}

// Guard reports an error if a value at the given magnitude bound and
// exponent could overflow the Paillier message space n/2.
func Guard(pk *paillier.PublicKey, maxAbs float64, F int64, exp int) error {
	bound := new(big.Float).SetFloat64(maxAbs)
	bound.Mul(bound, new(big.Float).SetInt(powF(F, exp)))
	limit := new(big.Float).SetInt(new(big.Int).Rsh(pk.N, 1))
	if bound.Cmp(limit) >= 0 {
		return fmt.Errorf("qnn: magnitude %.3g at scale F^%d exceeds the message space of a %d-bit key", maxAbs, exp, pk.Bits())
	}
	return nil
}

func powF(F int64, exp int) *big.Int {
	out := big.NewInt(1)
	f := big.NewInt(F)
	for i := 0; i < exp; i++ {
		out.Mul(out, f)
	}
	return out
}

// roundToInt64 rounds w·F to the nearest integer weight.
func roundToInt64(w float64, F int64) int64 {
	return int64(math.Round(w * float64(F)))
}

// biasAt materializes a float bias at scale F^exp as a big integer.
func biasAt(b float64, F int64, exp int) *big.Int {
	bf := new(big.Float).SetFloat64(b)
	bf.Mul(bf, new(big.Float).SetInt(powF(F, exp)))
	out, _ := bf.Int(nil)
	return out
}
