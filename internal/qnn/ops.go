package qnn

import (
	"fmt"
	"math"
	"math/big"
	"sync"

	"ppstream/internal/nn"
	"ppstream/internal/obs"
	"ppstream/internal/paillier"
	"ppstream/internal/tensor"
)

// QFC is the quantized fully-connected layer.
type QFC struct {
	name string
	F    int64
	W    [][]int64 // [out][in], weights at scale F
	B    []float64 // original float biases, materialized per call
}

func quantizeFC(l *nn.FC, F int64) *QFC {
	out, in := l.Out(), l.In()
	w := make([][]int64, out)
	for o := 0; o < out; o++ {
		row := make([]int64, in)
		for i := 0; i < in; i++ {
			row[i] = roundToInt64(l.W.At(o, i), F)
		}
		w[o] = row
	}
	b := make([]float64, out)
	copy(b, l.B.Data())
	return &QFC{name: l.Name(), F: F, W: w, B: b}
}

// Name implements Op.
func (q *QFC) Name() string { return q.name }

// ScaleSteps implements Op.
func (q *QFC) ScaleSteps() int { return 1 }

// OutShape implements Op.
func (q *QFC) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if in.Size() != len(q.W[0]) {
		return nil, fmt.Errorf("qnn: %s expects %d inputs, got %v", q.name, len(q.W[0]), in)
	}
	return tensor.Shape{len(q.W)}, nil
}

// Apply implements Op: row o computes Π E(x_i)^{W[o][i]} · E(b_o·F^(exp+1)),
// re-randomized. One kernel preprocessing pass (shared inverses, windowed
// power tables) serves every row.
func (q *QFC) Apply(ev *paillier.Evaluator, x *paillier.CipherTensor, inExp, workers int) (*paillier.CipherTensor, error) {
	xs := x.Flatten().Data()
	if len(xs) != len(q.W[0]) {
		return nil, fmt.Errorf("qnn: %s expects %d inputs, got %d", q.name, len(q.W[0]), len(xs))
	}
	use, maxBits, err := paillier.ScanColumnUse(q.W, len(xs))
	if err != nil {
		return nil, err
	}
	kern, err := ev.NewLinearKernel(xs, use, len(q.W), maxBits, workers)
	if err != nil {
		return nil, err
	}
	out := tensor.New[*paillier.Ciphertext](len(q.W))
	od := out.Data()
	var mu sync.Mutex
	var firstErr error
	parallelRange(len(q.W), workers, func(o int) {
		var bias *big.Int
		if q.B[o] != 0 {
			bias = biasAt(q.B[o], q.F, inExp+1)
		}
		ct, err := kern.Dot(nil, q.W[o], bias)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		od[o] = ct
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// ApplyPlain implements Op over big integers.
func (q *QFC) ApplyPlain(x *tensor.Tensor[*big.Int], inExp int) (*tensor.Tensor[*big.Int], error) {
	xs := x.Flatten().Data()
	if len(xs) != len(q.W[0]) {
		return nil, fmt.Errorf("qnn: %s expects %d inputs, got %d", q.name, len(q.W[0]), len(xs))
	}
	out := tensor.New[*big.Int](len(q.W))
	for o := range q.W {
		acc := biasAt(q.B[o], q.F, inExp+1)
		t := new(big.Int)
		for i, w := range q.W[o] {
			if w == 0 {
				continue
			}
			acc.Add(acc, t.Mul(xs[i], big.NewInt(w)))
		}
		out.SetFlat(o, acc)
	}
	return out, nil
}

// QConv is the quantized convolution layer. The im2col gather indices are
// precomputed, so applying the layer is pure index gathering plus
// homomorphic dot products — each output element reads exactly one input
// sub-tensor, which is what makes the paper's input tensor partitioning
// possible (Section IV-D).
type QConv struct {
	name string
	F    int64
	P    tensor.ConvParams
	W    [][]int64 // [outC][rowLen], filters at scale F
	B    []float64
	// Rows[pos] lists the flat input offsets forming output position
	// pos's receptive field; -1 marks padding (contributes zero).
	Rows [][]int
}

func quantizeConv(l *nn.Conv, F int64) *QConv {
	p := l.P
	rowLen := p.InC * p.KH * p.KW
	w := make([][]int64, p.OutC)
	for f := 0; f < p.OutC; f++ {
		row := make([]int64, rowLen)
		k := 0
		for c := 0; c < p.InC; c++ {
			for ky := 0; ky < p.KH; ky++ {
				for kx := 0; kx < p.KW; kx++ {
					row[k] = roundToInt64(l.W.At(f, c, ky, kx), F)
					k++
				}
			}
		}
		w[f] = row
	}
	b := make([]float64, p.OutC)
	copy(b, l.B.Data())
	return &QConv{name: l.Name(), F: F, P: p, W: w, B: b, Rows: GatherRows(p)}
}

// GatherRows computes, for every output spatial position of a
// convolution, the flat input offsets of its receptive field (-1 for
// padded positions). This is the index form of Im2Col and the basis of
// input tensor partitioning.
func GatherRows(p tensor.ConvParams) [][]int {
	oh, ow := p.OutH(), p.OutW()
	rowLen := p.InC * p.KH * p.KW
	rows := make([][]int, oh*ow)
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			row := make([]int, rowLen)
			k := 0
			for c := 0; c < p.InC; c++ {
				for ky := 0; ky < p.KH; ky++ {
					iy := oy*p.Stride + ky - p.Pad
					for kx := 0; kx < p.KW; kx++ {
						ix := ox*p.Stride + kx - p.Pad
						if iy >= 0 && iy < p.InH && ix >= 0 && ix < p.InW {
							row[k] = (c*p.InH+iy)*p.InW + ix
						} else {
							row[k] = -1
						}
						k++
					}
				}
			}
			rows[oy*ow+ox] = row
		}
	}
	return rows
}

// Name implements Op.
func (q *QConv) Name() string { return q.name }

// ScaleSteps implements Op.
func (q *QConv) ScaleSteps() int { return 1 }

// OutShape implements Op.
func (q *QConv) OutShape(in tensor.Shape) (tensor.Shape, error) {
	want := tensor.Shape{q.P.InC, q.P.InH, q.P.InW}
	if in.Size() != want.Size() {
		return nil, fmt.Errorf("qnn: %s expects input %v (size %d), got %v", q.name, want, want.Size(), in)
	}
	return tensor.Shape{q.P.OutC, q.P.OutH(), q.P.OutW()}, nil
}

// Apply implements Op. A single kernel preprocessing pass over the input
// tensor serves every (filter, position) output element: each input
// ciphertext's inverse and power tables are computed once even though
// overlapping receptive fields read it many times.
func (q *QConv) Apply(ev *paillier.Evaluator, x *paillier.CipherTensor, inExp, workers int) (*paillier.CipherTensor, error) {
	xs := x.Flatten().Data()
	if len(xs) != q.P.InC*q.P.InH*q.P.InW {
		return nil, fmt.Errorf("qnn: %s expects %d inputs, got %d", q.name, q.P.InC*q.P.InH*q.P.InW, len(xs))
	}
	oh, ow := q.P.OutH(), q.P.OutW()
	use, maxBits := q.scanUse(len(xs))
	total := q.P.OutC * oh * ow
	kern, err := ev.NewLinearKernel(xs, use, total, maxBits, workers)
	if err != nil {
		return nil, err
	}
	out := tensor.New[*paillier.Ciphertext](q.P.OutC, oh, ow)
	od := out.Data()
	var mu sync.Mutex
	var firstErr error
	parallelRange(total, workers, func(idx int) {
		f := idx / (oh * ow)
		pos := idx % (oh * ow)
		ct, err := q.applyOne(kern, f, pos, inExp)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		od[idx] = ct
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// scanUse derives the per-input-offset column usage of the convolution:
// kernel position k's sign profile across filters, scattered through the
// receptive-field offsets of every output position.
func (q *QConv) scanUse(inputs int) ([]paillier.ColumnUse, int) {
	rowLen := q.P.InC * q.P.KH * q.P.KW
	colUse := make([]paillier.ColumnUse, rowLen)
	maxBits := 0
	for f := range q.W {
		for k, w := range q.W[f] {
			if w == 0 {
				continue
			}
			if w > 0 {
				colUse[k] |= paillier.UsePos
			} else {
				colUse[k] |= paillier.UseNeg
			}
			if b := paillier.WeightBits(w); b > maxBits {
				maxBits = b
			}
		}
	}
	use := make([]paillier.ColumnUse, inputs)
	for _, row := range q.Rows {
		for k, off := range row {
			if off >= 0 {
				use[off] |= colUse[k]
			}
		}
	}
	return use, maxBits
}

// applyOne computes one output element: the homomorphic dot product of
// filter f with the receptive field at output position pos, through the
// shared kernel.
func (q *QConv) applyOne(kern *paillier.LinearKernel, f, pos, inExp int) (*paillier.Ciphertext, error) {
	row := q.Rows[pos]
	idx := make([]int, 0, len(row))
	weights := make([]int64, 0, len(row))
	for k, off := range row {
		if off < 0 || q.W[f][k] == 0 {
			continue // padding or zero weight contributes nothing
		}
		idx = append(idx, off)
		weights = append(weights, q.W[f][k])
	}
	var bias *big.Int
	if q.B[f] != 0 {
		bias = biasAt(q.B[f], q.F, inExp+1)
	}
	return kern.Dot(idx, weights, bias)
}

// ApplyPlain implements Op.
func (q *QConv) ApplyPlain(x *tensor.Tensor[*big.Int], inExp int) (*tensor.Tensor[*big.Int], error) {
	xs := x.Flatten().Data()
	if len(xs) != q.P.InC*q.P.InH*q.P.InW {
		return nil, fmt.Errorf("qnn: %s expects %d inputs, got %d", q.name, q.P.InC*q.P.InH*q.P.InW, len(xs))
	}
	oh, ow := q.P.OutH(), q.P.OutW()
	out := tensor.New[*big.Int](q.P.OutC, oh, ow)
	t := new(big.Int)
	for f := 0; f < q.P.OutC; f++ {
		for pos := 0; pos < oh*ow; pos++ {
			acc := biasAt(q.B[f], q.F, inExp+1)
			for k, off := range q.Rows[pos] {
				if off < 0 || q.W[f][k] == 0 {
					continue
				}
				acc.Add(acc, t.Mul(xs[off], big.NewInt(q.W[f][k])))
			}
			out.SetFlat(f*oh*ow+pos, acc)
		}
	}
	return out, nil
}

// QAffine is the quantized element-wise affine op covering BatchNorm
// (per-channel scale and shift) and ElemScale (per-element scale, no
// shift).
type QAffine struct {
	name string
	F    int64
	// Scale[i] applies to element i (expanded per element at build
	// time), at scale F.
	Scale []int64
	// Shift[i] is the float shift applied to element i (may be nil for
	// pure scaling).
	Shift []float64
	shape tensor.Shape
}

func quantizeBatchNorm(l *nn.BatchNorm, F int64) *QAffine {
	// y = a·x + c with a = γ/√(σ²+ε), c = β − a·μ, per channel. The
	// per-element expansion happens lazily in Apply since the spatial
	// size is known from the input.
	a := make([]int64, l.Channels)
	c := make([]float64, l.Channels)
	for ch := 0; ch < l.Channels; ch++ {
		inv := 1 / math.Sqrt(l.Var.At(ch)+l.Eps)
		af := l.Gamma.At(ch) * inv
		a[ch] = roundToInt64(af, F)
		c[ch] = l.Beta.At(ch) - af*l.Mean.At(ch)
	}
	return &QAffine{name: l.Name(), F: F, Scale: a, Shift: c}
}

func quantizeElemScale(l *nn.ElemScale, F int64) *QAffine {
	s := make([]int64, l.Scale.Size())
	for i, v := range l.Scale.Data() {
		s[i] = roundToInt64(v, F)
	}
	return &QAffine{name: l.Name(), F: F, Scale: s, Shift: nil, shape: l.Scale.Shape().Clone()}
}

// Name implements Op.
func (q *QAffine) Name() string { return q.name }

// ScaleSteps implements Op.
func (q *QAffine) ScaleSteps() int { return 1 }

// OutShape implements Op.
func (q *QAffine) OutShape(in tensor.Shape) (tensor.Shape, error) {
	if _, err := q.coeffIndex(in); err != nil {
		return nil, err
	}
	return in.Clone(), nil
}

// coeffIndex returns a function mapping flat element offsets to indices
// into Scale/Shift for the given input shape.
func (q *QAffine) coeffIndex(in tensor.Shape) (func(int) int, error) {
	switch {
	case len(q.Scale) == in.Size():
		return func(i int) int { return i }, nil
	case in.Rank() == 3 && in[0] == len(q.Scale):
		per := in[1] * in[2]
		return func(i int) int { return i / per }, nil
	case in.Rank() == 1 && in[0] == len(q.Scale):
		return func(i int) int { return i }, nil
	default:
		return nil, fmt.Errorf("qnn: %s cannot map %d coefficients onto shape %v", q.name, len(q.Scale), in)
	}
}

// Apply implements Op: element i becomes E(x_i)^{Scale[c]}·E(Shift[c]),
// re-randomized with a fresh blinding factor (a zero scale would
// otherwise emit a deterministic ciphertext).
func (q *QAffine) Apply(ev *paillier.Evaluator, x *paillier.CipherTensor, inExp, workers int) (*paillier.CipherTensor, error) {
	idx, err := q.coeffIndex(x.Shape())
	if err != nil {
		return nil, err
	}
	pk := ev.PublicKey()
	out := tensor.New[*paillier.Ciphertext](x.Shape()...)
	xd, od := x.Data(), out.Data()
	var mu sync.Mutex
	var firstErr error
	parallelRange(len(xd), workers, func(i int) {
		c := idx(i)
		ct, err := pk.MulScalarInt64(xd[i], q.Scale[c])
		if err == nil && q.Shift != nil && q.Shift[c] != 0 {
			ct, err = pk.AddPlain(ct, biasAt(q.Shift[c], q.F, inExp+1))
		}
		if err == nil {
			var rn *big.Int
			rn, err = ev.Blinding()
			if err == nil {
				ct = pk.RerandomizeWith(ct, rn)
			}
		}
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		od[i] = ct
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if m := ev.CostMeter(); m != nil {
		// The affine op's cost outside Blinding (which counts its own
		// rerands and pool hits/misses) is deterministic per element: one
		// scalar exponentiation, an inverse for negative scales, one mulmod
		// per non-zero shift, one mulmod applying the blinding factor.
		var st obs.CostStats
		for i := range xd {
			c := idx(i)
			st.ModExps++
			if q.Scale[c] < 0 {
				st.ModInverses++
			}
			if q.Shift != nil && q.Shift[c] != 0 {
				st.MulMods++
			}
			st.MulMods++
		}
		m.Add(st)
	}
	return out, nil
}

// ApplyPlain implements Op.
func (q *QAffine) ApplyPlain(x *tensor.Tensor[*big.Int], inExp int) (*tensor.Tensor[*big.Int], error) {
	idx, err := q.coeffIndex(x.Shape())
	if err != nil {
		return nil, err
	}
	out := tensor.New[*big.Int](x.Shape()...)
	for i, v := range x.Data() {
		c := idx(i)
		acc := new(big.Int).Mul(v, big.NewInt(q.Scale[c]))
		if q.Shift != nil && q.Shift[c] != 0 {
			acc.Add(acc, biasAt(q.Shift[c], q.F, inExp+1))
		}
		out.SetFlat(i, acc)
	}
	return out, nil
}

// QFlatten reshapes the encrypted tensor to rank 1 without touching the
// ciphertexts.
type QFlatten struct {
	name string
}

// Name implements Op.
func (q *QFlatten) Name() string { return q.name }

// ScaleSteps implements Op.
func (q *QFlatten) ScaleSteps() int { return 0 }

// OutShape implements Op.
func (q *QFlatten) OutShape(in tensor.Shape) (tensor.Shape, error) {
	return tensor.Shape{in.Size()}, nil
}

// Apply implements Op.
func (q *QFlatten) Apply(_ *paillier.Evaluator, x *paillier.CipherTensor, _, _ int) (*paillier.CipherTensor, error) {
	return x.Flatten(), nil
}

// ApplyPlain implements Op.
func (q *QFlatten) ApplyPlain(x *tensor.Tensor[*big.Int], _ int) (*tensor.Tensor[*big.Int], error) {
	return x.Flatten(), nil
}

// parallelRange runs f(i) for i in [0,n) over up to workers goroutines.
func parallelRange(n, workers int, f func(int)) {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
