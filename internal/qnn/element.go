package qnn

import (
	"fmt"
	"math/big"

	"ppstream/internal/paillier"
	"ppstream/internal/tensor"
)

// ElementOp is implemented by quantized ops that can compute output
// elements independently, the property behind the paper's tensor
// partitioning (Section IV-D): each thread produces a slice of the
// output tensor and needs only the input sub-tensor its elements read.
type ElementOp interface {
	Op
	// OutSize returns the number of output elements for an input shape.
	OutSize(in tensor.Shape) (int, error)
	// InputNeeds lists the flat input offsets that output element
	// outIdx reads. A nil return means the whole input is required
	// (fully-connected operations support only output partitioning).
	InputNeeds(in tensor.Shape, outIdx int) []int
	// ComputeElement evaluates one output element through an input
	// accessor, allowing the caller to substitute a partitioned
	// sub-tensor view. The evaluator re-randomizes the element before it
	// is returned.
	ComputeElement(ev *paillier.Evaluator, get func(int) *paillier.Ciphertext, in tensor.Shape, outIdx, inExp int) (*paillier.Ciphertext, error)
}

// OutSize implements ElementOp for QFC.
func (q *QFC) OutSize(in tensor.Shape) (int, error) {
	if in.Size() != len(q.W[0]) {
		return 0, fmt.Errorf("qnn: %s expects %d inputs, got %v", q.name, len(q.W[0]), in)
	}
	return len(q.W), nil
}

// InputNeeds implements ElementOp: fully-connected rows read everything.
func (q *QFC) InputNeeds(tensor.Shape, int) []int { return nil }

// ComputeElement implements ElementOp.
func (q *QFC) ComputeElement(ev *paillier.Evaluator, get func(int) *paillier.Ciphertext, in tensor.Shape, outIdx, inExp int) (*paillier.Ciphertext, error) {
	n := in.Size()
	xs := make([]*paillier.Ciphertext, 0, n)
	ws := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		w := q.W[outIdx][i]
		if w == 0 {
			continue
		}
		xs = append(xs, get(i))
		ws = append(ws, w)
	}
	var bias *big.Int
	if q.B[outIdx] != 0 {
		bias = biasAt(q.B[outIdx], q.F, inExp+1)
	}
	return ev.Dot(xs, ws, bias)
}

// OutSize implements ElementOp for QConv.
func (q *QConv) OutSize(in tensor.Shape) (int, error) {
	want := q.P.InC * q.P.InH * q.P.InW
	if in.Size() != want {
		return 0, fmt.Errorf("qnn: %s expects %d inputs, got %v", q.name, want, in)
	}
	return q.P.OutC * q.P.OutH() * q.P.OutW(), nil
}

// InputNeeds implements ElementOp: a conv output element reads exactly
// its receptive field — the sub-tensor of Figure 5.
func (q *QConv) InputNeeds(_ tensor.Shape, outIdx int) []int {
	positions := q.P.OutH() * q.P.OutW()
	pos := outIdx % positions
	row := q.Rows[pos]
	needs := make([]int, 0, len(row))
	for _, off := range row {
		if off >= 0 {
			needs = append(needs, off)
		}
	}
	return needs
}

// ComputeElement implements ElementOp.
func (q *QConv) ComputeElement(ev *paillier.Evaluator, get func(int) *paillier.Ciphertext, _ tensor.Shape, outIdx, inExp int) (*paillier.Ciphertext, error) {
	positions := q.P.OutH() * q.P.OutW()
	f := outIdx / positions
	pos := outIdx % positions
	row := q.Rows[pos]
	xs := make([]*paillier.Ciphertext, 0, len(row))
	ws := make([]int64, 0, len(row))
	for k, off := range row {
		if off < 0 || q.W[f][k] == 0 {
			continue
		}
		xs = append(xs, get(off))
		ws = append(ws, q.W[f][k])
	}
	var bias *big.Int
	if q.B[f] != 0 {
		bias = biasAt(q.B[f], q.F, inExp+1)
	}
	return ev.Dot(xs, ws, bias)
}

// OutSize implements ElementOp for QAffine.
func (q *QAffine) OutSize(in tensor.Shape) (int, error) {
	if _, err := q.coeffIndex(in); err != nil {
		return 0, err
	}
	return in.Size(), nil
}

// InputNeeds implements ElementOp: element-wise ops read one element.
func (q *QAffine) InputNeeds(_ tensor.Shape, outIdx int) []int { return []int{outIdx} }

// ComputeElement implements ElementOp.
func (q *QAffine) ComputeElement(ev *paillier.Evaluator, get func(int) *paillier.Ciphertext, in tensor.Shape, outIdx, inExp int) (*paillier.Ciphertext, error) {
	idx, err := q.coeffIndex(in)
	if err != nil {
		return nil, err
	}
	pk := ev.PublicKey()
	c := idx(outIdx)
	ct, err := pk.MulScalarInt64(get(outIdx), q.Scale[c])
	if err != nil {
		return nil, err
	}
	if q.Shift != nil && q.Shift[c] != 0 {
		ct, err = pk.AddPlain(ct, biasAt(q.Shift[c], q.F, inExp+1))
		if err != nil {
			return nil, err
		}
	}
	rn, err := ev.Blinding()
	if err != nil {
		return nil, err
	}
	return pk.RerandomizeWith(ct, rn), nil
}

// OutSize implements ElementOp for QFlatten.
func (q *QFlatten) OutSize(in tensor.Shape) (int, error) { return in.Size(), nil }

// InputNeeds implements ElementOp.
func (q *QFlatten) InputNeeds(_ tensor.Shape, outIdx int) []int { return []int{outIdx} }

// ComputeElement implements ElementOp: identity.
func (q *QFlatten) ComputeElement(_ *paillier.Evaluator, get func(int) *paillier.Ciphertext, _ tensor.Shape, outIdx, _ int) (*paillier.Ciphertext, error) {
	return get(outIdx), nil
}
