package qnn

import (
	"crypto/rand"
	"math/big"
	"testing"

	"ppstream/internal/nn"
	"ppstream/internal/paillier"
	"ppstream/internal/tensor"
)

// TestElementOpsMatchApply verifies each op's per-element path equals its
// bulk Apply path — the invariant the partitioning executor relies on.
func TestElementOpsMatchApply(t *testing.T) {
	k := key(t)
	const F = 100
	r := rng()
	cases := []struct {
		name  string
		layer nn.Layer
		in    tensor.Shape
	}{
		{"fc", nn.NewFC("fc", 6, 4, r), tensor.Shape{6}},
		{"flatten", nn.NewFlatten("fl"), tensor.Shape{2, 3}},
	}
	conv, err := nn.NewConv("c", tensor.ConvParams{InC: 1, InH: 4, InW: 4, OutC: 2, KH: 2, KW: 2, Stride: 2}, r)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name  string
		layer nn.Layer
		in    tensor.Shape
	}{"conv", conv, tensor.Shape{1, 4, 4}})
	bn := nn.NewBatchNorm("bn", 2)
	bn.Gamma = tensor.MustFromSlice([]float64{1.5, 0.5}, 2)
	cases = append(cases, struct {
		name  string
		layer nn.Layer
		in    tensor.Shape
	}{"batchnorm", bn, tensor.Shape{2, 2, 2}})

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			op, err := Quantize(c.layer, F)
			if err != nil {
				t.Fatal(err)
			}
			eop, ok := op.(ElementOp)
			if !ok {
				t.Fatalf("%s does not implement ElementOp", c.name)
			}
			x := tensor.Zeros(c.in...)
			for i := range x.Data() {
				x.Data()[i] = r.Float64() - 0.5
			}
			ct, err := paillier.EncryptTensor(&k.PublicKey, rand.Reader, ScaleInput(x, F), 2)
			if err != nil {
				t.Fatal(err)
			}
			bulk, err := op.Apply(paillier.NewEvaluator(&k.PublicKey), ct, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			bulkDec, err := paillier.DecryptTensorBig(k, bulk, 2)
			if err != nil {
				t.Fatal(err)
			}
			n, err := eop.OutSize(c.in)
			if err != nil {
				t.Fatal(err)
			}
			if n != bulk.Size() {
				t.Fatalf("OutSize %d vs Apply size %d", n, bulk.Size())
			}
			xs := ct.Flatten().Data()
			get := func(i int) *paillier.Ciphertext { return xs[i] }
			for idx := 0; idx < n; idx++ {
				elem, err := eop.ComputeElement(paillier.NewEvaluator(&k.PublicKey), get, c.in, idx, 1)
				if err != nil {
					t.Fatal(err)
				}
				got, err := k.Decrypt(elem)
				if err != nil {
					t.Fatal(err)
				}
				if got.Cmp(bulkDec.AtFlat(idx)) != 0 {
					t.Fatalf("%s element %d: %v vs bulk %v", c.name, idx, got, bulkDec.AtFlat(idx))
				}
				// InputNeeds must cover every offset ComputeElement reads.
				needs := eop.InputNeeds(c.in, idx)
				if needs != nil {
					allowed := map[int]bool{}
					for _, off := range needs {
						allowed[off] = true
					}
					guarded := func(i int) *paillier.Ciphertext {
						if !allowed[i] {
							t.Fatalf("%s element %d read offset %d outside InputNeeds", c.name, idx, i)
						}
						return xs[i]
					}
					if _, err := eop.ComputeElement(paillier.NewEvaluator(&k.PublicKey), guarded, c.in, idx, 1); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestApplyPlainMatchesCipherAllOps checks the plaintext big-int path for
// conv and affine ops (the FC case is covered in qnn_test.go).
func TestApplyPlainMatchesCipherAllOps(t *testing.T) {
	k := key(t)
	const F = 100
	r := rng()
	conv, err := nn.NewConv("c", tensor.ConvParams{InC: 1, InH: 3, InW: 3, OutC: 1, KH: 2, KW: 2, Stride: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	bn := nn.NewBatchNorm("bn", 1)
	bn.Beta = tensor.MustFromSlice([]float64{0.5}, 1)
	for _, layer := range []nn.Layer{conv, bn, nn.NewFlatten("fl")} {
		op, err := Quantize(layer, F)
		if err != nil {
			t.Fatal(err)
		}
		x := tensor.Zeros(1, 3, 3)
		for i := range x.Data() {
			x.Data()[i] = r.Float64()
		}
		scaled := ScaleInput(x, F)
		bigIn := tensor.Map(scaled, func(v int64) *big.Int { return big.NewInt(v) })
		plain, err := op.ApplyPlain(bigIn, 1)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := paillier.EncryptTensor(&k.PublicKey, rand.Reader, scaled, 2)
		if err != nil {
			t.Fatal(err)
		}
		cipher, err := op.Apply(paillier.NewEvaluator(&k.PublicKey), ct, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := paillier.DecryptTensorBig(k, cipher, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain.Data() {
			if plain.AtFlat(i).Cmp(dec.AtFlat(i)) != 0 {
				t.Fatalf("%s element %d: plain %v cipher %v", op.Name(), i, plain.AtFlat(i), dec.AtFlat(i))
			}
		}
	}
}

func TestOpShapeErrors(t *testing.T) {
	r := rng()
	fc, _ := Quantize(nn.NewFC("fc", 4, 2, r), 10)
	if _, err := fc.OutShape(tensor.Shape{5}); err == nil {
		t.Error("FC wrong input shape accepted")
	}
	if _, err := fc.(ElementOp).OutSize(tensor.Shape{5}); err == nil {
		t.Error("FC OutSize wrong shape accepted")
	}
	conv, err := nn.NewConv("c", tensor.ConvParams{InC: 1, InH: 3, InW: 3, OutC: 1, KH: 2, KW: 2, Stride: 1}, r)
	if err != nil {
		t.Fatal(err)
	}
	qc, _ := Quantize(conv, 10)
	if _, err := qc.OutShape(tensor.Shape{2, 3, 3}); err == nil {
		t.Error("conv wrong input size accepted")
	}
	bn, _ := Quantize(nn.NewBatchNorm("bn", 3), 10)
	if _, err := bn.OutShape(tensor.Shape{2, 2}); err == nil {
		t.Error("affine unmappable shape accepted")
	}
	k := key(t)
	if _, err := bn.Apply(paillier.NewEvaluator(&k.PublicKey), tensor.New[*paillier.Ciphertext](2, 2), 1, 1); err == nil {
		t.Error("affine apply with unmappable shape accepted")
	}
}

func TestQuantizeStageRejectsNonLinear(t *testing.T) {
	p := &nn.PrimitiveLayer{Kind: nn.NonLinear, Layers: []nn.Layer{nn.NewReLU("r")}}
	if _, err := QuantizeStage(p, 10); err == nil {
		t.Error("non-linear stage quantized")
	}
}
