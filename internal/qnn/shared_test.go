package qnn

import (
	"crypto/rand"
	"math/big"
	mrand "math/rand"
	"testing"

	"ppstream/internal/nn"
	"ppstream/internal/secshare"
	"ppstream/internal/tensor"
)

// shareBigTensor splits a big-integer tensor (already at some scale
// F^exp) into additive ring shares.
func shareBigTensor(t *testing.T, x *tensor.Tensor[*big.Int]) *tensor.Tensor[secshare.Shares] {
	t.Helper()
	out := tensor.New[secshare.Shares](x.Shape()...)
	for i, v := range x.Data() {
		s, err := secshare.SplitRandom(rand.Reader, secshare.RingOfBig(v))
		if err != nil {
			t.Fatal(err)
		}
		out.SetFlat(i, s)
	}
	return out
}

// reconstructBigTensor opens a shared tensor back into signed big
// integers for comparison against the plaintext reference.
func reconstructBigTensor(x *tensor.Tensor[secshare.Shares]) *tensor.Tensor[*big.Int] {
	out := tensor.New[*big.Int](x.Shape()...)
	for i, s := range x.Data() {
		out.SetFlat(i, big.NewInt(secshare.SignedOfRing(s.Reconstruct())))
	}
	return out
}

// randomBigInput builds an integer input tensor at scale F (exponent 1)
// from small float activations, as the data provider would.
func randomBigInput(rng *mrand.Rand, F int64, shape ...int) *tensor.Tensor[*big.Int] {
	x := tensor.Zeros(shape...)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	xi := ScaleInput(x, F)
	return tensor.Map(xi, func(v int64) *big.Int { return big.NewInt(v) })
}

// TestApplyStageSharedMatchesPlain is the qnn half of the backend
// differential guarantee: executing a randomized linear stage over
// secret shares reconstructs bit-identically to the big-integer
// reference, for each supported op type.
func TestApplyStageSharedMatchesPlain(t *testing.T) {
	const F = 100
	rng := mrand.New(mrand.NewSource(77))

	stages := []struct {
		name   string
		layers []nn.Layer
		shape  tensor.Shape
	}{
		{"fc", []nn.Layer{nn.NewFC("fc", 9, 7, rng)}, tensor.Shape{9}},
		{"fc+fc", []nn.Layer{nn.NewFC("a", 6, 8, rng), nn.NewFC("b", 8, 4, rng)}, tensor.Shape{6}},
		{"flatten+fc", []nn.Layer{nn.NewFlatten("fl"), nn.NewFC("fc", 12, 5, rng)}, tensor.Shape{3, 2, 2}},
	}
	if conv, err := nn.NewConv("cv", tensor.ConvParams{InC: 2, InH: 5, InW: 5, OutC: 3, KH: 3, KW: 3, Stride: 1, Pad: 1}, rng); err == nil {
		stages = append(stages, struct {
			name   string
			layers []nn.Layer
			shape  tensor.Shape
		}{"conv", []nn.Layer{conv}, tensor.Shape{2, 5, 5}})
	} else {
		t.Fatal(err)
	}
	bn := nn.NewBatchNorm("bn", 3)
	for ch := 0; ch < 3; ch++ {
		bn.Gamma.Set(0.5+rng.Float64(), ch)
		bn.Beta.Set(rng.NormFloat64(), ch)
		bn.Mean.Set(rng.NormFloat64(), ch)
		bn.Var.Set(0.5+rng.Float64(), ch)
	}
	stages = append(stages, struct {
		name   string
		layers []nn.Layer
		shape  tensor.Shape
	}{"batchnorm", []nn.Layer{bn}, tensor.Shape{3, 4, 4}})

	for _, st := range stages {
		t.Run(st.name, func(t *testing.T) {
			ops := make([]Op, len(st.layers))
			for i, l := range st.layers {
				op, err := Quantize(l, F)
				if err != nil {
					t.Fatal(err)
				}
				ops[i] = op
			}
			for trial := 0; trial < 3; trial++ {
				x := randomBigInput(rng, F, st.shape...)
				want, wantExp, err := ApplyStagePlain(ops, x, 1)
				if err != nil {
					t.Fatal(err)
				}
				eng := secshare.NewEngine(int64(trial) + 1)
				xs := shareBigTensor(t, x)
				got, gotExp, err := ApplyStageShared(eng, ops, xs, 1)
				if err != nil {
					t.Fatal(err)
				}
				if gotExp != wantExp {
					t.Fatalf("exp %d, want %d", gotExp, wantExp)
				}
				rec := reconstructBigTensor(got)
				for i, w := range want.Data() {
					if rec.Data()[i].Cmp(w) != 0 {
						t.Fatalf("trial %d elem %d: shared %s != plain %s", trial, i, rec.Data()[i], w)
					}
				}
				if eng.Stats.TriplesUsed == 0 && st.name != "flatten" {
					t.Fatal("no Beaver triples consumed")
				}
			}
		})
	}
}

func TestMulCount(t *testing.T) {
	rng := mrand.New(mrand.NewSource(3))
	fc := nn.NewFC("fc", 4, 3, rng)
	op, err := Quantize(fc, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got := MulCount(op, tensor.Shape{4}); got <= 0 || got > 12 {
		t.Fatalf("fc MulCount = %d, want in (0,12]", got)
	}
	fl, _ := Quantize(nn.NewFlatten("fl"), 100)
	if got := MulCount(fl, tensor.Shape{4}); got != 0 {
		t.Fatalf("flatten MulCount = %d, want 0", got)
	}
}
