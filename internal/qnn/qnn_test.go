package qnn

import (
	"crypto/rand"
	"math/big"
	mathrand "math/rand"
	"sync"
	"testing"

	"ppstream/internal/nn"
	"ppstream/internal/paillier"
	"ppstream/internal/tensor"
)

var (
	keyOnce sync.Once
	testKey *paillier.PrivateKey
)

func key(t testing.TB) *paillier.PrivateKey {
	keyOnce.Do(func() {
		k, err := paillier.GenerateKey(rand.Reader, 256)
		if err != nil {
			t.Fatalf("GenerateKey: %v", err)
		}
		testKey = k
	})
	return testKey
}

func rng() *mathrand.Rand { return mathrand.New(mathrand.NewSource(3)) }

// encryptFloats scales a float tensor to exponent 1 and encrypts it.
func encryptFloats(t *testing.T, k *paillier.PrivateKey, x *tensor.Dense, F int64) *paillier.CipherTensor {
	t.Helper()
	scaled := ScaleInput(x, F)
	ct, err := paillier.EncryptTensor(&k.PublicKey, rand.Reader, scaled, 4)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

// decryptFloats decrypts and descales back to floats.
func decryptFloats(t *testing.T, k *paillier.PrivateKey, ct *paillier.CipherTensor, F int64, exp int) *tensor.Dense {
	t.Helper()
	bigT, err := paillier.DecryptTensorBig(k, ct, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Descale(bigT, F, exp)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestQuantizeRejects(t *testing.T) {
	if _, err := Quantize(nn.NewReLU("r"), 100); err == nil {
		t.Error("non-linear layer accepted")
	}
	if _, err := Quantize(nn.NewFC("fc", 2, 2, rng()), 0); err == nil {
		t.Error("zero factor accepted")
	}
}

// TestQFCMatchesPlaintext verifies the homomorphic FC equals the float FC
// up to quantization error.
func TestQFCMatchesPlaintext(t *testing.T) {
	k := key(t)
	const F = 1000
	fc := nn.NewFC("fc", 4, 3, rng())
	op, err := Quantize(fc, F)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{0.5, -1.25, 2, 0.125}, 4)
	want, err := fc.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	ct := encryptFloats(t, k, x, F)
	outCT, err := op.Apply(paillier.NewEvaluator(&k.PublicKey), ct, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := decryptFloats(t, k, outCT, F, 1+op.ScaleSteps())
	if !tensor.AllClose(want, got, 0.01) {
		t.Errorf("homomorphic FC %v, plaintext %v", got.Data(), want.Data())
	}
}

// TestQConvMatchesPlaintext does the same for convolution, padding
// included.
func TestQConvMatchesPlaintext(t *testing.T) {
	k := key(t)
	const F = 1000
	p := tensor.ConvParams{InC: 1, InH: 4, InW: 4, OutC: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv, err := nn.NewConv("c", p, rng())
	if err != nil {
		t.Fatal(err)
	}
	op, err := Quantize(conv, F)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.Zeros(1, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = float64(i%5)/4 - 0.5
	}
	want, err := conv.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	ct := encryptFloats(t, k, x, F)
	outCT, err := op.Apply(paillier.NewEvaluator(&k.PublicKey), ct, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !outCT.Shape().Equal(want.Shape()) {
		t.Fatalf("cipher conv shape %v, want %v", outCT.Shape(), want.Shape())
	}
	got := decryptFloats(t, k, outCT, F, 2)
	if !tensor.AllClose(want, got, 0.02) {
		t.Errorf("homomorphic conv diverges:\n got %v\nwant %v", got.Data(), want.Data())
	}
}

func TestQBatchNormMatchesPlaintext(t *testing.T) {
	k := key(t)
	const F = 10000
	bn := nn.NewBatchNorm("bn", 2)
	bn.Mean = tensor.MustFromSlice([]float64{0.5, -1}, 2)
	bn.Var = tensor.MustFromSlice([]float64{2, 0.5}, 2)
	bn.Gamma = tensor.MustFromSlice([]float64{1.5, 0.7}, 2)
	bn.Beta = tensor.MustFromSlice([]float64{-0.25, 0.9}, 2)
	op, err := Quantize(bn, F)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{1, -2, 0.5, 3, -1, 0, 2, 1}, 2, 2, 2)
	want, err := bn.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	ct := encryptFloats(t, k, x, F)
	outCT, err := op.Apply(paillier.NewEvaluator(&k.PublicKey), ct, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := decryptFloats(t, k, outCT, F, 2)
	if !tensor.AllClose(want, got, 0.01) {
		t.Errorf("homomorphic BN diverges:\n got %v\nwant %v", got.Data(), want.Data())
	}
}

func TestQElemScale(t *testing.T) {
	k := key(t)
	const F = 1000
	es := &nn.ElemScale{LayerName: "es", Scale: tensor.MustFromSlice([]float64{2, -0.5, 1}, 3)}
	op, err := Quantize(es, F)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{1, 4, -2}, 3)
	want, _ := es.Forward(x)
	ct := encryptFloats(t, k, x, F)
	outCT, err := op.Apply(paillier.NewEvaluator(&k.PublicKey), ct, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := decryptFloats(t, k, outCT, F, 2)
	if !tensor.AllClose(want, got, 0.01) {
		t.Errorf("elem scale diverges: got %v want %v", got.Data(), want.Data())
	}
}

func TestQFlattenNoScaleStep(t *testing.T) {
	op, err := Quantize(nn.NewFlatten("f"), 10)
	if err != nil {
		t.Fatal(err)
	}
	if op.ScaleSteps() != 0 {
		t.Error("flatten must not change scale")
	}
	out, err := op.OutShape(tensor.Shape{2, 3})
	if err != nil || !out.Equal(tensor.Shape{6}) {
		t.Errorf("flatten out shape %v (%v)", out, err)
	}
}

// TestApplyStageMergedLinear runs a conv+flatten+FC merged stage
// homomorphically and checks against the float pipeline, verifying scale
// exponent accumulation across ops.
func TestApplyStageMergedLinear(t *testing.T) {
	k := key(t)
	const F = 100
	r := rng()
	p := tensor.ConvParams{InC: 1, InH: 4, InW: 4, OutC: 2, KH: 2, KW: 2, Stride: 2}
	conv, err := nn.NewConv("c", p, r)
	if err != nil {
		t.Fatal(err)
	}
	fl := nn.NewFlatten("fl")
	fc := nn.NewFC("fc", 8, 3, r)
	stage := &nn.PrimitiveLayer{Kind: nn.Linear, Layers: []nn.Layer{conv, fl, fc}}
	ops, err := QuantizeStage(stage, F)
	if err != nil {
		t.Fatal(err)
	}
	if got := StageScaleSteps(ops); got != 2 {
		t.Fatalf("stage scale steps %d, want 2", got)
	}
	x := tensor.Zeros(1, 4, 4)
	for i := range x.Data() {
		x.Data()[i] = r.Float64() - 0.5
	}
	want, err := stage.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	ct := encryptFloats(t, k, x, F)
	outCT, outExp, err := ApplyStage(paillier.NewEvaluator(&k.PublicKey), ops, ct, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if outExp != 3 {
		t.Fatalf("out exponent %d, want 3", outExp)
	}
	got := decryptFloats(t, k, outCT, F, outExp)
	// F=100 is coarse; tolerance reflects quantization error.
	if !tensor.AllClose(want, got, 0.15) {
		t.Errorf("merged stage diverges:\n got %v\nwant %v", got.Data(), want.Data())
	}
}

// TestApplyStagePlainMatchesCipher checks the plaintext big-int path and
// the ciphertext path produce identical integers.
func TestApplyStagePlainMatchesCipher(t *testing.T) {
	k := key(t)
	const F = 100
	fc := nn.NewFC("fc", 3, 2, rng())
	ops, err := QuantizeStage(&nn.PrimitiveLayer{Kind: nn.Linear, Layers: []nn.Layer{fc}}, F)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{0.25, -0.75, 1.5}, 3)
	scaled := ScaleInput(x, F)
	bigIn := tensor.Map(scaled, func(v int64) *big.Int { return big.NewInt(v) })
	plainOut, plainExp, err := ApplyStagePlain(ops, bigIn, 1)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := paillier.EncryptTensor(&k.PublicKey, rand.Reader, scaled, 2)
	if err != nil {
		t.Fatal(err)
	}
	cipherOut, cipherExp, err := ApplyStage(paillier.NewEvaluator(&k.PublicKey), ops, ct, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plainExp != cipherExp {
		t.Fatalf("exponent mismatch %d vs %d", plainExp, cipherExp)
	}
	dec, err := paillier.DecryptTensorBig(k, cipherOut, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plainOut.Data() {
		if plainOut.AtFlat(i).Cmp(dec.AtFlat(i)) != 0 {
			t.Errorf("element %d: plain %v, cipher %v", i, plainOut.AtFlat(i), dec.AtFlat(i))
		}
	}
}

func TestScaleInputDescaleRoundTrip(t *testing.T) {
	const F = 1000
	x := tensor.MustFromSlice([]float64{0.125, -3.5, 7}, 3)
	scaled := ScaleInput(x, F)
	bigT := tensor.Map(scaled, func(v int64) *big.Int { return big.NewInt(v) })
	back, err := Descale(bigT, F, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(x, back, 1.0/F) {
		t.Errorf("round trip %v -> %v", x.Data(), back.Data())
	}
	if _, err := Descale(bigT, F, -1); err == nil {
		t.Error("negative exponent accepted")
	}
}

func TestGuard(t *testing.T) {
	k := key(t)
	if err := Guard(&k.PublicKey, 100, 1_000_000, 3); err != nil {
		t.Errorf("reasonable magnitude rejected: %v", err)
	}
	if err := Guard(&k.PublicKey, 1e45, 1_000_000, 6); err == nil {
		t.Error("overflow-scale magnitude accepted")
	}
}

func TestGatherRowsMatchesIm2Col(t *testing.T) {
	p := tensor.ConvParams{InC: 2, InH: 5, InW: 5, OutC: 1, KH: 3, KW: 3, Stride: 2, Pad: 1}
	x := tensor.Zeros(p.InC, p.InH, p.InW)
	for i := range x.Data() {
		x.Data()[i] = float64(i)
	}
	cols, err := tensor.Im2Col(x, p)
	if err != nil {
		t.Fatal(err)
	}
	rows := GatherRows(p)
	if len(rows) != cols.Shape()[0] {
		t.Fatalf("row count %d vs %d", len(rows), cols.Shape()[0])
	}
	for pos, row := range rows {
		for k, off := range row {
			want := cols.At(pos, k)
			var got float64
			if off >= 0 {
				got = x.Data()[off]
			}
			if got != want {
				t.Fatalf("pos %d k %d: gather %v, im2col %v", pos, k, got, want)
			}
		}
	}
}
