package stream

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func addHandler(name string, delta int) Handler {
	return HandlerFunc{StageName: name, Fn: func(_ context.Context, m *Message) (*Message, error) {
		return &Message{Payload: m.Payload.(int) + delta}, nil
	}}
}

func TestPipelineOrderAndValues(t *testing.T) {
	p, err := NewPipeline(4, addHandler("plus1", 1), addHandler("plus10", 10))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := p.Start(ctx); err != nil {
		t.Fatal(err)
	}
	const n = 20
	go func() {
		for i := 0; i < n; i++ {
			if _, err := p.Submit(ctx, i); err != nil {
				t.Error(err)
			}
		}
		p.Close()
	}()
	for i := 0; i < n; i++ {
		m, err := p.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Seq != uint64(i) {
			t.Fatalf("message %d arrived with seq %d — order broken", i, m.Seq)
		}
		if got := m.Payload.(int); got != i+11 {
			t.Fatalf("payload %d, want %d", got, i+11)
		}
	}
	if _, err := p.Recv(ctx); !errors.Is(err, ErrEdgeClosed) {
		t.Errorf("expected closed edge, got %v", err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineIsActuallyPipelined(t *testing.T) {
	// Two stages each sleeping d: n items through a pipeline should take
	// ≈ (n+1)·d, not 2·n·d.
	const d = 20 * time.Millisecond
	sleepy := func(name string) Handler {
		return HandlerFunc{StageName: name, Fn: func(_ context.Context, m *Message) (*Message, error) {
			time.Sleep(d)
			return m, nil
		}}
	}
	p, _ := NewPipeline(4, sleepy("a"), sleepy("b"))
	ctx := context.Background()
	p.Start(ctx)
	const n = 6
	start := time.Now()
	go func() {
		for i := 0; i < n; i++ {
			p.Submit(ctx, i)
		}
		p.Close()
	}()
	for i := 0; i < n; i++ {
		if _, err := p.Recv(ctx); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	serial := 2 * n * d
	if elapsed > serial*3/4 {
		t.Errorf("pipeline took %v, serial would be %v — no overlap achieved", elapsed, serial)
	}
}

func TestStageErrorPropagatesAndContains(t *testing.T) {
	boom := HandlerFunc{StageName: "boom", Fn: func(_ context.Context, m *Message) (*Message, error) {
		if m.Payload.(int) == 1 {
			return nil, fmt.Errorf("injected failure")
		}
		return m, nil
	}}
	seen := atomic.Int64{}
	after := HandlerFunc{StageName: "after", Fn: func(_ context.Context, m *Message) (*Message, error) {
		seen.Add(1)
		return m, nil
	}}
	p, _ := NewPipeline(2, boom, after)
	ctx := context.Background()
	p.Start(ctx)
	go func() {
		for i := 0; i < 3; i++ {
			p.Submit(ctx, i)
		}
		p.Close()
	}()
	var errCount, okCount int
	for i := 0; i < 3; i++ {
		m, err := p.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m.Err != "" {
			errCount++
			if !strings.Contains(m.Err, "injected failure") {
				t.Errorf("error message %q lost cause", m.Err)
			}
		} else {
			okCount++
		}
	}
	if errCount != 1 || okCount != 2 {
		t.Errorf("errCount=%d okCount=%d, want 1/2 — failure not contained", errCount, okCount)
	}
	if p.Stages()[0].Metrics().Snapshot().Errors != 1 {
		t.Error("error metric not recorded")
	}
}

func TestContextCancellation(t *testing.T) {
	block := HandlerFunc{StageName: "block", Fn: func(ctx context.Context, m *Message) (*Message, error) {
		<-ctx.Done()
		return m, nil
	}}
	p, _ := NewPipeline(1, block)
	ctx, cancel := context.WithCancel(context.Background())
	p.Start(ctx)
	p.Submit(ctx, 1)
	cancel()
	done := make(chan struct{})
	go func() { p.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("pipeline did not shut down on cancellation")
	}
}

func TestMetrics(t *testing.T) {
	p, _ := NewPipeline(2, addHandler("a", 1))
	ctx := context.Background()
	p.Start(ctx)
	go func() {
		for i := 0; i < 5; i++ {
			p.Submit(ctx, i)
		}
		p.Close()
	}()
	for i := 0; i < 5; i++ {
		p.Recv(ctx)
	}
	snap := p.Stages()[0].Metrics().Snapshot()
	if snap.Processed != 5 {
		t.Errorf("processed %d, want 5", snap.Processed)
	}
	if snap.Errors != 0 {
		t.Errorf("errors %d", snap.Errors)
	}
}

func TestNewPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(1); err == nil {
		t.Error("empty pipeline accepted")
	}
	if _, err := NewStage("s", nil, NewChannelEdge(1), NewChannelEdge(1)); err == nil {
		t.Error("nil handler accepted")
	}
	if _, err := NewStage("s", addHandler("a", 0), nil, NewChannelEdge(1)); err == nil {
		t.Error("nil edge accepted")
	}
	p, _ := NewPipeline(1, addHandler("a", 0))
	if err := p.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(context.Background()); err == nil {
		t.Error("double start accepted")
	}
	p.Close()
}

type wirePayload struct {
	Value int
	Note  string
}

func TestTCPEdgeRoundTrip(t *testing.T) {
	RegisterWireType(&wirePayload{})
	recvEdge, addr, err := ListenEdge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sendEdge, err := DialEdge(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	go func() {
		for i := 0; i < 3; i++ {
			sendEdge.Send(ctx, &Message{Seq: uint64(i), Payload: &wirePayload{Value: i * 7, Note: "hi"}})
		}
		sendEdge.CloseSend()
	}()
	for i := 0; i < 3; i++ {
		m, err := recvEdge.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		pl, ok := m.Payload.(*wirePayload)
		if !ok {
			t.Fatalf("payload type %T", m.Payload)
		}
		if pl.Value != i*7 || m.Seq != uint64(i) {
			t.Errorf("frame %d corrupted: %+v", i, pl)
		}
	}
	if _, err := recvEdge.Recv(ctx); !errors.Is(err, ErrEdgeClosed) {
		t.Errorf("expected close frame, got %v", err)
	}
}

func TestTCPEdgeErrorMessage(t *testing.T) {
	RegisterWireType(&wirePayload{})
	recvEdge, addr, err := ListenEdge("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sendEdge, err := DialEdge(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	go sendEdge.Send(ctx, &Message{Seq: 9, Err: "remote failure"})
	m, err := recvEdge.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Err != "remote failure" || m.Seq != 9 {
		t.Errorf("error frame corrupted: %+v", m)
	}
}

func TestDialEdgeFailure(t *testing.T) {
	if _, err := DialEdge("127.0.0.1:1"); err == nil {
		t.Error("dialing a dead port succeeded")
	}
}
