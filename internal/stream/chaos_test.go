package stream

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// chaosDrive pushes n messages through a fresh seeded ChaosEdge over an
// in-process channel edge and returns which ones the receiver saw plus
// the final stats.
func chaosDrive(t *testing.T, cfg ChaosConfig, n int) ([]uint64, ChaosStats) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	e := NewChaosEdge(NewChannelEdge(n), cfg)
	var delivered []uint64
	for i := 0; i < n; i++ {
		if err := e.Send(ctx, &Message{Seq: uint64(i)}); err != nil {
			if errors.Is(err, ErrChaosReset) {
				break
			}
			t.Fatalf("send %d: %v", i, err)
		}
	}
	e.inner.CloseSend()
	for {
		m, err := e.inner.Recv(ctx)
		if err != nil {
			break
		}
		delivered = append(delivered, m.Seq)
	}
	return delivered, e.Stats()
}

// TestChaosEdgeDeterministic: the same seed produces the identical fault
// schedule; a different seed produces a different one.
func TestChaosEdgeDeterministic(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, DropProb: 0.3, ResetProb: 0.02}
	a, sa := chaosDrive(t, cfg, 200)
	b, sb := chaosDrive(t, cfg, 200)
	if len(a) != len(b) || sa != sb {
		t.Fatalf("same seed diverged: %d/%v vs %d/%v", len(a), sa, len(b), sb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
	cfg.Seed = 8
	c, sc := chaosDrive(t, cfg, 200)
	if len(c) == len(a) && sc == sa {
		t.Fatalf("different seeds produced the identical schedule: %v", sc)
	}
	if sa.Drops == 0 {
		t.Fatal("drop probability 0.3 over 200 sends injected nothing")
	}
}

// TestChaosEdgeReset: after an injected reset every operation fails with
// ErrChaosReset — the transport is dead for good.
func TestChaosEdgeReset(t *testing.T) {
	ctx := context.Background()
	e := NewChaosEdge(NewChannelEdge(4), ChaosConfig{Seed: 1, ResetProb: 1})
	if err := e.Send(ctx, &Message{Seq: 1}); !errors.Is(err, ErrChaosReset) {
		t.Fatalf("first send: %v", err)
	}
	if err := e.Send(ctx, &Message{Seq: 2}); !errors.Is(err, ErrChaosReset) {
		t.Fatalf("send after reset: %v", err)
	}
	if _, err := e.Recv(ctx); !errors.Is(err, ErrChaosReset) {
		t.Fatalf("recv after reset: %v", err)
	}
	if st := e.Stats(); st.Resets != 1 {
		t.Fatalf("resets counted %d, want 1 (dead transport injects no further faults)", st.Resets)
	}
}

// TestChaosConnCorrupt: a corrupted write leaves the peer's gob stream
// undecodable — the frame-level symptom a bit flip on the wire causes —
// while the sender's buffer is untouched.
func TestChaosConnCorrupt(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	cc := NewChaosConn(client, ChaosConfig{Seed: 3, CorruptProb: 1})
	payload := []byte("round frame bytes")
	kept := string(payload)
	recvErr := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(payload))
		n, _ := server.Read(buf)
		recvErr <- buf[:n]
	}()
	if _, err := cc.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := <-recvErr
	if string(got) == kept {
		t.Fatal("corruption injected but bytes arrived intact")
	}
	if string(payload) != kept {
		t.Fatal("sender's buffer was mutated in place")
	}
	if st := cc.Stats(); st.Corrupts != 1 {
		t.Fatalf("corrupts counted %d", st.Corrupts)
	}
}

// TestChaosConnReset: an injected reset closes the underlying conn so
// the peer sees the tear, and later operations fail immediately.
func TestChaosConnReset(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	cc := NewChaosConn(client, ChaosConfig{Seed: 5, ResetProb: 1})
	peerErr := make(chan error, 1)
	go func() {
		_, err := server.Read(make([]byte, 8))
		peerErr <- err
	}()
	if _, err := cc.Write([]byte("x")); !errors.Is(err, ErrChaosReset) {
		t.Fatalf("write: %v", err)
	}
	if err := <-peerErr; err == nil {
		t.Fatal("peer did not observe the reset")
	}
	if _, err := cc.Read(make([]byte, 8)); !errors.Is(err, ErrChaosReset) {
		t.Fatalf("read after reset: %v", err)
	}
}
