package stream

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestChannelEdgeBackpressure(t *testing.T) {
	e := NewChannelEdge(1)
	ctx := context.Background()
	if err := e.Send(ctx, &Message{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// Second send must block until a Recv frees the slot; use a short
	// deadline to verify the blocking behaviour.
	dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := e.Send(dctx, &Message{Seq: 2}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expected deadline on full edge, got %v", err)
	}
	if m, err := e.Recv(ctx); err != nil || m.Seq != 1 {
		t.Fatalf("recv %v %v", m, err)
	}
	if err := e.Send(ctx, &Message{Seq: 3}); err != nil {
		t.Errorf("send after drain failed: %v", err)
	}
}

func TestChannelEdgeCloseIdempotent(t *testing.T) {
	e := NewChannelEdge(1)
	if err := e.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if err := e.CloseSend(); err != nil {
		t.Fatal("second close failed")
	}
	if _, err := e.Recv(context.Background()); !errors.Is(err, ErrEdgeClosed) {
		t.Errorf("recv on closed edge: %v", err)
	}
}

func TestRecvCancelled(t *testing.T) {
	e := NewChannelEdge(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Recv(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("recv on cancelled ctx: %v", err)
	}
	if err := e.Send(ctx, &Message{}); err == nil {
		// buffered send may succeed with capacity; only the blocked
		// path must observe cancellation, so a nil error is acceptable
		// here when the buffer has room.
		_ = err
	}
}

func TestAssembleValidation(t *testing.T) {
	if _, err := Assemble(nil, NewChannelEdge(1), NewChannelEdge(1)); err == nil {
		t.Error("empty stage list accepted")
	}
	h := HandlerFunc{StageName: "s", Fn: func(_ context.Context, m *Message) (*Message, error) { return m, nil }}
	st, err := NewStage("s", h, NewChannelEdge(1), NewChannelEdge(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble([]*Stage{st}, nil, NewChannelEdge(1)); err == nil {
		t.Error("nil boundary edge accepted")
	}
	if st.Name() != "s" {
		t.Errorf("stage name %q", st.Name())
	}
}
