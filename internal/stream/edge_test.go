package stream

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"ppstream/internal/obs"
)

func TestChannelEdgeBackpressure(t *testing.T) {
	e := NewChannelEdge(1)
	ctx := context.Background()
	if err := e.Send(ctx, &Message{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// Second send must block until a Recv frees the slot; use a short
	// deadline to verify the blocking behaviour.
	dctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := e.Send(dctx, &Message{Seq: 2}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expected deadline on full edge, got %v", err)
	}
	if m, err := e.Recv(ctx); err != nil || m.Seq != 1 {
		t.Fatalf("recv %v %v", m, err)
	}
	if err := e.Send(ctx, &Message{Seq: 3}); err != nil {
		t.Errorf("send after drain failed: %v", err)
	}
}

func TestChannelEdgeCloseIdempotent(t *testing.T) {
	e := NewChannelEdge(1)
	if err := e.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if err := e.CloseSend(); err != nil {
		t.Fatal("second close failed")
	}
	if _, err := e.Recv(context.Background()); !errors.Is(err, ErrEdgeClosed) {
		t.Errorf("recv on closed edge: %v", err)
	}
}

func TestRecvCancelled(t *testing.T) {
	e := NewChannelEdge(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Recv(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("recv on cancelled ctx: %v", err)
	}
	if err := e.Send(ctx, &Message{}); err == nil {
		// buffered send may succeed with capacity; only the blocked
		// path must observe cancellation, so a nil error is acceptable
		// here when the buffer has room.
		_ = err
	}
}

// tcpEdgePair builds an instrumented sender and receiver over one real
// TCP connection, both publishing to reg under distinct prefixes.
func tcpEdgePair(t *testing.T, reg *obs.Registry) (send, recv Edge) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, aerr := l.Accept()
		l.Close()
		if aerr != nil {
			close(accepted)
			return
		}
		accepted <- conn
	}()
	dialConn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srvConn, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { dialConn.Close(); srvConn.Close() })
	return NewInstrumentedTCPEdge(dialConn, reg, "client"),
		NewInstrumentedTCPEdge(srvConn, reg, "server")
}

// TestTCPEdgeCountersAndFailureMetadata drives a real TCP edge and
// checks (a) byte/frame counters on both ends, and (b) that a failed
// message's FailedStage/FailedPayload and trace ID survive the hop —
// the submitter on the far side needs them to diagnose remote errors.
func TestTCPEdgeCountersAndFailureMetadata(t *testing.T) {
	RegisterWireType(&wirePayload{})
	reg := obs.NewRegistry("edge")
	send, recv := tcpEdgePair(t, reg)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	msgs := []*Message{
		{Seq: 1, Payload: &wirePayload{Value: 7, Note: "ok"}, Trace: &Trace{ID: "feedc0de00000001"}},
		{
			Seq:           2,
			Err:           "stage linear-0: boom",
			FailedStage:   "linear-0",
			FailedPayload: &wirePayload{Value: 9, Note: "poison"},
			Trace:         &Trace{ID: "feedc0de00000002"},
		},
	}
	go func() {
		for _, m := range msgs {
			send.Send(ctx, m)
		}
		send.CloseSend()
	}()

	got1, err := recv.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got1.Seq != 1 || got1.Trace == nil || got1.Trace.ID != "feedc0de00000001" {
		t.Errorf("healthy frame lost its trace ID: %+v", got1)
	}
	got2, err := recv.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Err != "stage linear-0: boom" {
		t.Errorf("err %q", got2.Err)
	}
	if got2.FailedStage != "linear-0" {
		t.Errorf("FailedStage %q did not survive the TCP hop", got2.FailedStage)
	}
	fp, ok := got2.FailedPayload.(*wirePayload)
	if !ok || fp.Value != 9 || fp.Note != "poison" {
		t.Errorf("FailedPayload did not survive the TCP hop: %#v", got2.FailedPayload)
	}
	if got2.Trace == nil || got2.Trace.ID != "feedc0de00000002" {
		t.Errorf("failed frame lost its trace ID: %+v", got2.Trace)
	}
	if _, err := recv.Recv(ctx); !errors.Is(err, ErrEdgeClosed) {
		t.Fatalf("after close: %v", err)
	}

	s := reg.Snapshot()
	if got := s.Counters["client.frames_sent"]; got != uint64(len(msgs)) {
		t.Errorf("client.frames_sent %d, want %d", got, len(msgs))
	}
	if got := s.Counters["server.frames_recv"]; got != uint64(len(msgs)) {
		t.Errorf("server.frames_recv %d, want %d", got, len(msgs))
	}
	if s.Counters["client.bytes_sent"] == 0 {
		t.Error("client.bytes_sent is zero")
	}
	// The close frame is bytes but not a message frame.
	if s.Counters["server.bytes_recv"] < s.Counters["client.bytes_sent"]/2 {
		t.Errorf("server.bytes_recv %d implausibly low vs client.bytes_sent %d",
			s.Counters["server.bytes_recv"], s.Counters["client.bytes_sent"])
	}
	if s.Counters["server.frames_sent"] != 0 || s.Counters["client.frames_recv"] != 0 {
		t.Error("reverse-direction frame counters moved on a one-way edge")
	}
}

func TestAssembleValidation(t *testing.T) {
	if _, err := Assemble(nil, NewChannelEdge(1), NewChannelEdge(1)); err == nil {
		t.Error("empty stage list accepted")
	}
	h := HandlerFunc{StageName: "s", Fn: func(_ context.Context, m *Message) (*Message, error) { return m, nil }}
	st, err := NewStage("s", h, NewChannelEdge(1), NewChannelEdge(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Assemble([]*Stage{st}, nil, NewChannelEdge(1)); err == nil {
		t.Error("nil boundary edge accepted")
	}
	if st.Name() != "s" {
		t.Errorf("stage name %q", st.Name())
	}
}
