package stream

import (
	"context"
	"errors"
	"fmt"
	mathrand "math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the fault-injection harness for the serving plane: a
// deterministic wrapper around an Edge or a net.Conn that injects the
// failures hostile reality produces — latency spikes, silent message
// loss, connection resets, corrupted byte streams — so tests and
// `ppbench chaos` can prove the runtime degrades gracefully instead of
// only ever exercising the happy path.
//
// Determinism follows the obfuscate.NewSeeded contract: every injection
// decision is drawn from a math/rand generator seeded by ChaosConfig.Seed,
// so a single-goroutine schedule replays exactly and a concurrent one
// replays statistically. Chaos wrappers must never feed a production
// code path — they exist to break things on purpose.

// ErrChaosReset is returned by chaos wrappers after an injected
// connection reset; the underlying transport is dead from that point on.
var ErrChaosReset = errors.New("stream: chaos injected connection reset")

// ChaosConfig parameterizes fault injection. All probabilities are per
// operation (one Send/Recv for edges, one Read/Write for conns) in
// [0, 1]; zero disables that fault class.
type ChaosConfig struct {
	// Seed makes the injection schedule reproducible (NewSeeded-style:
	// same seed, same operation sequence, same faults).
	Seed int64
	// DelayProb injects a uniform delay in [DelayMin, DelayMax].
	DelayProb float64
	DelayMin  time.Duration
	DelayMax  time.Duration
	// DropProb silently discards a message (edges only): the sender
	// believes it was delivered, the receiver never sees it.
	DropProb float64
	// ResetProb kills the transport: the operation fails with
	// ErrChaosReset, the underlying conn (if any) is closed, and every
	// later operation fails the same way.
	ResetProb float64
	// CorruptProb flips one random bit of a written buffer (conns only),
	// corrupting the peer's gob stream mid-frame.
	CorruptProb float64
}

// ChaosStats counts the faults a wrapper actually injected.
type ChaosStats struct {
	Delays   uint64
	Drops    uint64
	Resets   uint64
	Corrupts uint64
}

// chaosCore is the shared decision engine: a seeded generator behind a
// mutex (Send/Recv and Read/Write may race) plus injection counters.
type chaosCore struct {
	cfg ChaosConfig

	mu  sync.Mutex
	rng *mathrand.Rand

	delays   atomic.Uint64
	drops    atomic.Uint64
	resets   atomic.Uint64
	corrupts atomic.Uint64
	dead     atomic.Bool
}

func newChaosCore(cfg ChaosConfig) *chaosCore {
	if cfg.DelayMax < cfg.DelayMin {
		cfg.DelayMax = cfg.DelayMin
	}
	return &chaosCore{cfg: cfg, rng: mathrand.New(mathrand.NewSource(cfg.Seed))}
}

// roll draws one injection decision: a delay to sleep (0 = none), a drop,
// and/or a reset. Exactly one lock acquisition per operation.
func (c *chaosCore) roll(drop, corrupt bool) (delay time.Duration, dropped, reset, corrupted bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cfg := c.cfg
	if cfg.DelayProb > 0 && c.rng.Float64() < cfg.DelayProb {
		delay = cfg.DelayMin
		if span := cfg.DelayMax - cfg.DelayMin; span > 0 {
			delay += time.Duration(c.rng.Int63n(int64(span) + 1))
		}
	}
	if drop && cfg.DropProb > 0 && c.rng.Float64() < cfg.DropProb {
		dropped = true
	}
	if corrupt && cfg.CorruptProb > 0 && c.rng.Float64() < cfg.CorruptProb {
		corrupted = true
	}
	if cfg.ResetProb > 0 && c.rng.Float64() < cfg.ResetProb {
		reset = true
	}
	return delay, dropped, reset, corrupted
}

func (c *chaosCore) stats() ChaosStats {
	return ChaosStats{
		Delays:   c.delays.Load(),
		Drops:    c.drops.Load(),
		Resets:   c.resets.Load(),
		Corrupts: c.corrupts.Load(),
	}
}

// ChaosEdge wraps an Edge with fault injection on both directions:
// delays and resets on Send and Recv, silent drops on Send. After an
// injected reset every operation fails with ErrChaosReset, mimicking a
// torn connection.
type ChaosEdge struct {
	inner Edge
	core  *chaosCore
}

// NewChaosEdge wraps inner with deterministic fault injection.
func NewChaosEdge(inner Edge, cfg ChaosConfig) *ChaosEdge {
	return &ChaosEdge{inner: inner, core: newChaosCore(cfg)}
}

// Stats reports the faults injected so far.
func (e *ChaosEdge) Stats() ChaosStats { return e.core.stats() }

// sleep waits out an injected delay, honouring ctx.
func chaosSleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Send implements Edge.
func (e *ChaosEdge) Send(ctx context.Context, m *Message) error {
	if e.core.dead.Load() {
		return ErrChaosReset
	}
	delay, dropped, reset, _ := e.core.roll(true, false)
	if delay > 0 {
		e.core.delays.Add(1)
		if err := chaosSleep(ctx, delay); err != nil {
			return err
		}
	}
	if reset {
		e.core.resets.Add(1)
		e.core.dead.Store(true)
		return ErrChaosReset
	}
	if dropped {
		e.core.drops.Add(1)
		return nil // the caller believes the message was delivered
	}
	return e.inner.Send(ctx, m)
}

// Recv implements Edge.
func (e *ChaosEdge) Recv(ctx context.Context) (*Message, error) {
	if e.core.dead.Load() {
		return nil, ErrChaosReset
	}
	m, err := e.inner.Recv(ctx)
	if err != nil {
		return nil, err
	}
	delay, _, reset, _ := e.core.roll(false, false)
	if delay > 0 {
		e.core.delays.Add(1)
		if err := chaosSleep(ctx, delay); err != nil {
			return nil, err
		}
	}
	if reset {
		e.core.resets.Add(1)
		e.core.dead.Store(true)
		return nil, ErrChaosReset
	}
	return m, nil
}

// CloseSend implements Edge. A reset edge swallows the close: the peer
// already sees the transport as torn.
func (e *ChaosEdge) CloseSend() error {
	if e.core.dead.Load() {
		return nil
	}
	return e.inner.CloseSend()
}

// ChaosConn wraps a net.Conn with byte-level fault injection: delays on
// both directions, single-bit corruption of written buffers (the peer's
// gob decoder sees a poisoned stream), and connection resets that close
// the underlying conn. Wrap the conn BEFORE handing it to NewTCPEdge so
// the whole frame codec rides the injected transport.
type ChaosConn struct {
	net.Conn
	core *chaosCore
}

// NewChaosConn wraps conn with deterministic fault injection.
func NewChaosConn(conn net.Conn, cfg ChaosConfig) *ChaosConn {
	return &ChaosConn{Conn: conn, core: newChaosCore(cfg)}
}

// Stats reports the faults injected so far.
func (c *ChaosConn) Stats() ChaosStats { return c.core.stats() }

func (c *ChaosConn) reset() error {
	c.core.resets.Add(1)
	c.core.dead.Store(true)
	c.Conn.Close()
	return fmt.Errorf("stream: chaos conn: %w", ErrChaosReset)
}

// Read implements net.Conn.
func (c *ChaosConn) Read(p []byte) (int, error) {
	if c.core.dead.Load() {
		return 0, fmt.Errorf("stream: chaos conn: %w", ErrChaosReset)
	}
	delay, _, reset, _ := c.core.roll(false, false)
	if delay > 0 {
		c.core.delays.Add(1)
		time.Sleep(delay)
	}
	if reset {
		return 0, c.reset()
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *ChaosConn) Write(p []byte) (int, error) {
	if c.core.dead.Load() {
		return 0, fmt.Errorf("stream: chaos conn: %w", ErrChaosReset)
	}
	delay, _, reset, corrupted := c.core.roll(false, true)
	if delay > 0 {
		c.core.delays.Add(1)
		time.Sleep(delay)
	}
	if reset {
		return 0, c.reset()
	}
	if corrupted && len(p) > 0 {
		c.core.corrupts.Add(1)
		c.core.mu.Lock()
		bit := c.core.rng.Intn(len(p) * 8)
		c.core.mu.Unlock()
		mutated := make([]byte, len(p))
		copy(mutated, p)
		mutated[bit/8] ^= 1 << (bit % 8)
		p = mutated
	}
	return c.Conn.Write(p)
}
